#pragma once
// ReschedulerRuntime: the paper's full deployment in one object.
//
// Owns the simulation engine, the cluster (hosts + network), the MPI-2
// runtime, the HPCM middleware, the registry/scheduler, and one monitor and
// commander per host.  Experiments construct a runtime from a ClusterConfig,
// launch migration-enabled applications, inject load, and read the traces.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ars/commander/commander.hpp"
#include "ars/core/trace.hpp"
#include "ars/host/host.hpp"
#include "ars/hpcm/migration.hpp"
#include "ars/malleable/malleable.hpp"
#include "ars/monitor/monitor.hpp"
#include "ars/mpi/mpi.hpp"
#include "ars/net/network.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/registry/registry.hpp"
#include "ars/rules/policy.hpp"
#include "ars/sim/engine.hpp"

namespace ars::core {

struct ClusterConfig {
  std::vector<host::HostSpec> hosts;
  net::Network::Options network{};
  mpi::MpiSystem::Options mpi{};
  hpcm::MigrationEngine::Options hpcm{};
  /// Host carrying the registry/scheduler (defaults to the first host).
  std::string registry_host;
  rules::MigrationPolicy policy;
  double lease_ttl = 35.0;
  double decision_delay = 0.002;
  double per_process_cooldown = 30.0;
  /// Baseline load-average contribution of each workstation's daemons
  /// (~0.26 on the paper's otherwise-idle Sun Blades).
  double ambient_runnable = 0.0;
  /// `ps` process count of a freshly booted workstation.
  int ambient_processes = 60;
  /// CPU cost of one monitoring cycle on each host (sensor scripts).
  double monitor_cycle_cpu_cost = 0.08;
  /// Destination-choice strategy (the paper uses first-fit).
  registry::DestinationStrategy strategy =
      registry::DestinationStrategy::kFirstFit;
  /// Relaunch the processes of crashed hosts from their checkpoints.
  bool auto_restart = false;
  /// Registry decision-path options: audit-trail policy and the legacy
  /// full-table reference scan (for equivalence checks and benches).
  registry::AuditMode registry_audit = registry::AuditMode::kAuto;
  bool registry_legacy_scan = false;
  /// Monitors coalesce unchanged-state heartbeats into compact lease
  /// renewals (UpdateBatchMsg); full status still goes out on state
  /// changes and every `monitor_full_status_every` cycles.
  bool monitor_delta_heartbeats = false;
  int monitor_full_status_every = 6;
  /// Bounded retry for failed commander deliveries (see
  /// commander::Commander::Config): extra attempts and initial backoff.
  int command_retry_limit = 2;
  double command_retry_backoff = 0.25;
  /// Monitors re-announce static info + process table every this many
  /// seconds (0 disables) so a cold-restarted registry rebuilds its
  /// soft-state tables from heartbeats alone.
  double monitor_reregister_period = 0.0;
  /// Event-trace buffer options (ars::obs).  Tracing is on by default; it
  /// is cheap in virtual time and the ring bound caps memory.
  obs::Tracer::Options trace{};
  /// Also mirror every support::Logger record into the trace as instant
  /// events (installs the global LogBridge — at most one runtime at a time
  /// should enable this).
  bool forward_logs_to_trace = false;
  /// Malleable-job engine options (timeouts, merge overhead, sabotage).
  malleable::MalleableEngine::Options malleable{};
  /// Let the registry's sweep plan expand/shrink commands for registered
  /// malleable jobs from the host-state indexes.
  bool enable_resize_planner = false;
  double resize_cooldown = 30.0;
  int max_expand_step = 4;
  /// Central checkpoint-write admission in the registry (DESIGN.md §17).
  /// Enabled automatically when hpcm.ckpt_strategy == "cooperative"; the
  /// knobs below shape the I/O scheduler either way.
  int ckpt_max_concurrent = 2;
  double ckpt_defer_retry = 5.0;
  double ckpt_preempt_risk = 2.0;
  double ckpt_slot_ttl = 120.0;
};

/// Convenience builder for uniform Sun-Blade-100-like clusters.
[[nodiscard]] ClusterConfig make_cluster(int host_count,
                                         rules::MigrationPolicy policy);

class ReschedulerRuntime {
 public:
  explicit ReschedulerRuntime(ClusterConfig config);
  ~ReschedulerRuntime();
  ReschedulerRuntime(const ReschedulerRuntime&) = delete;
  ReschedulerRuntime& operator=(const ReschedulerRuntime&) = delete;

  // -- plumbing -------------------------------------------------------------
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] mpi::MpiSystem& mpi() noexcept { return *mpi_; }
  [[nodiscard]] hpcm::MigrationEngine& middleware() noexcept {
    return *hpcm_;
  }
  [[nodiscard]] registry::Registry& scheduler() noexcept {
    return *registry_;
  }
  [[nodiscard]] malleable::MalleableEngine& malleable() noexcept {
    return *malleable_;
  }
  [[nodiscard]] host::Host& host(const std::string& name);
  [[nodiscard]] monitor::Monitor& monitor_on(const std::string& name);
  [[nodiscard]] commander::Commander& commander_on(const std::string& name);
  [[nodiscard]] std::vector<std::string> host_names() const;
  [[nodiscard]] TraceRecorder& trace() noexcept { return *trace_; }

  /// Structured event trace (ars::obs): migration phase spans, scheduler
  /// decision audits, monitor state transitions, commander signals.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const noexcept { return tracer_; }
  /// Runtime-wide metrics (counters/gauges/histograms).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Start the rescheduler entities (registry, monitors, commanders).
  /// Without this call the cluster runs "without the rescheduler" — the
  /// Figure 5/6 baseline.
  void start_rescheduler();
  [[nodiscard]] bool rescheduler_running() const noexcept {
    return rescheduler_running_;
  }

  /// Launch a migration-enabled application and register its schema with
  /// the registry/scheduler.
  mpi::RankId launch_app(const std::string& host_name,
                         hpcm::MigrationEngine::MigratableApp app,
                         const std::string& name,
                         hpcm::ApplicationSchema schema);

  /// Launch a resizable job (hosts[0] is the root) and register it with the
  /// registry so its sweep can plan expand/shrink commands.  Returns the
  /// initial members in rank order.
  std::vector<mpi::RankId> launch_malleable_job(
      const malleable::JobSpec& spec, const std::vector<std::string>& hosts);

  /// Fault-tolerance path: migrate everything off `host_name` (planned
  /// shutdown / detected intrusion) and never place work there again.
  void evacuate_host(const std::string& host_name,
                     const std::string& reason = "administrative");

  /// Failure injection: the host dies without warning — its processes and
  /// rescheduler entities vanish.  With `auto_restart` configured, the
  /// registry notices the lease lapse and relaunches the lost processes
  /// from their checkpoints.  Returns how many processes were lost.
  /// A co-located registry dies with its host (use restart_host to bring
  /// it back, cold).
  int fail_host(const std::string& host_name);

  /// Bring a failed host's rescheduler entities back up (the machine
  /// rebooted).  Its monitor re-registers on the next cycle; processes lost
  /// in the crash are NOT resurrected here — that is the registry's
  /// auto-restart path.  A co-located registry restarts cold (soft state
  /// wiped, rebuilt from heartbeats).
  void restart_host(const std::string& host_name);

  /// Kill only the registry/scheduler process (its host stays up).
  void crash_registry();
  /// Cold-restart the registry: soft-state tables are gone and must be
  /// rebuilt purely from subsequent monitor traffic (paper §3).
  void restart_registry();

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

  /// Advance virtual time.
  void run_until(double t) { engine_.run_until(t); }

 private:
  ClusterConfig config_;
  sim::Engine engine_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::LogBridge> log_bridge_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::map<std::string, host::Host*> hosts_by_name_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<mpi::MpiSystem> mpi_;
  std::unique_ptr<hpcm::MigrationEngine> hpcm_;
  std::unique_ptr<malleable::MalleableEngine> malleable_;
  std::unique_ptr<registry::Registry> registry_;
  std::map<std::string, std::unique_ptr<monitor::Monitor>> monitors_;
  std::map<std::string, std::unique_ptr<commander::Commander>> commanders_;
  std::unique_ptr<TraceRecorder> trace_;
  bool rescheduler_running_ = false;
};

}  // namespace ars::core
