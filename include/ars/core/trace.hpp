#pragma once
// Experiment trace recorder: samples per-host metrics on a fixed interval
// (the paper gathers performance data every 10 s) and collects the series
// behind Figures 5-8.

#include <map>
#include <string>
#include <vector>

#include "ars/host/host.hpp"
#include "ars/net/network.hpp"
#include "ars/sim/task.hpp"

namespace ars::core {

struct TraceSample {
  double t = 0.0;
  std::string host;
  double load1 = 0.0;
  double load5 = 0.0;
  double cpu_util = 0.0;   // [0,1] over the sampling interval
  double tx_bps = 0.0;
  double rx_bps = 0.0;
  int processes = 0;
};

class TraceRecorder {
 public:
  TraceRecorder(sim::Engine& engine, net::Network& network)
      : engine_(&engine), network_(&network) {}
  ~TraceRecorder() { stop(); }
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Begin sampling every `interval` seconds (paper: 10 s).
  void start(double interval = 10.0);
  void stop();

  [[nodiscard]] const std::vector<TraceSample>& samples() const noexcept {
    return samples_;
  }

  /// Samples of one host, in time order.
  [[nodiscard]] std::vector<TraceSample> series(
      const std::string& host) const;

  /// Mean of a field over one host's series within [t0, t1].
  [[nodiscard]] double mean(const std::string& host, double t0, double t1,
                            double TraceSample::* field) const;

  void clear() { samples_.clear(); }

  /// The whole trace as CSV (header + one row per sample), for plotting.
  [[nodiscard]] std::string to_csv() const;

 private:
  void sample_all();

  sim::Engine* engine_;
  net::Network* network_;
  double interval_ = 10.0;
  std::vector<TraceSample> samples_;
  sim::Engine::EventHandle timer_;
  bool running_ = false;
};

}  // namespace ars::core
