#pragma once
// ShardedCluster: the 100k-host scaling scenario on the parallel DES core.
//
// Assembles one sim::ShardGroup (one Engine per worker thread), one
// net::Network + obs::Tracer + obs::MetricsRegistry per shard (single-writer
// confinement), a block-partitioned fleet of monitored workstations, and the
// registry tier:
//
//   * hierarchical (default): each shard runs a child registry ("reg<s>",
//     port 5100) for its own hosts; the children report health to a root
//     registry ("root", port 5000, shard 0) over the cross-shard fabric.
//     This mirrors the paper's §3 hierarchical-domain deployment and keeps
//     heartbeat traffic shard-local — only periodic HealthReportMsg crosses.
//   * flat: every monitor heartbeats the single root registry directly, so
//     most traffic crosses shards — the determinism / router stress shape.
//
// Host load is static and deterministic: each host's LoadAverage is seeded
// via set_ambient_runnable() and sampling is never started, so a configured
// fraction of hosts sits permanently overloaded (consulting the registry at
// the policy's overloaded frequency) without any per-host CPU events.  That
// keeps the per-event cost at 100k hosts down to heartbeat + registry work,
// which is exactly what the scaling benchmark wants to measure.
//
// Determinism: for a fixed shard count, runs are byte-identical — every
// stochastic choice draws from shard-salted xoshiro streams, cross-shard
// delivery is merge-sorted by (timestamp, source shard, sequence), and the
// merged trace orders by (timestamp, shard, recording order).  With
// shards=1 the group runs inline on the caller thread (no threads, no
// epochs), matching the legacy single-engine composition bit for bit.
//
// Thread contract: construct, run(), and inspect from one thread; worker
// threads only ever touch their own shard's engine/network/tracer/metrics
// inside ShardGroup::run_until.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ars/host/host.hpp"
#include "ars/monitor/monitor.hpp"
#include "ars/net/network.hpp"
#include "ars/net/shard_router.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/registry/registry.hpp"
#include "ars/sim/shard.hpp"
#include "ars/support/expected.hpp"
#include "ars/support/rng.hpp"

namespace ars::core {

struct ShardedClusterOptions {
  std::string name = "sharded-cluster";
  int shards = 1;
  int hosts = 64;
  /// Virtual seconds to simulate.
  double duration = 120.0;
  /// Inter-domain fabric latency (also the conservative lookahead bound).
  double cross_latency = 0.005;
  /// Child registry per shard under a root (see header comment); false
  /// sends every heartbeat cross-shard to the single root registry.
  bool hierarchical = true;
  /// Monitors coalesce unchanged-state heartbeats (UpdateBatchMsg).
  bool delta_heartbeats = true;
  /// Base seed; each shard's fault stream is salted with its shard index.
  std::uint64_t seed = 1;
  /// Fractions of the fleet pinned busy / overloaded (rest stay free).
  double busy_fraction = 0.30;
  double overloaded_fraction = 0.05;
  /// Message-loss chaos: drop probability inside [loss_from, loss_until).
  double message_loss = 0.0;
  double loss_from = 0.0;
  double loss_until = 0.0;
  /// Crash chaos: the first `crash_hosts` hosts of every shard stop their
  /// monitors (host goes silent; lease expires) during [crash_at,
  /// crash_until).
  int crash_hosts = 0;
  double crash_at = 0.0;
  double crash_until = 0.0;
  /// Per-shard trace ring capacity; tracing off makes bench runs cheaper.
  bool tracing = true;
  std::size_t trace_capacity = std::size_t{1} << 12;
};

/// Parse a cluster-plan JSON document (scripts/gen_cluster_plan.py writes
/// them; plans/huge-cluster.json is the committed 100k-host instance).
/// Unknown keys are ignored so plans stay forward-compatible.
[[nodiscard]] support::Expected<ShardedClusterOptions> load_cluster_plan(
    const std::string& json_text);

/// What one run() observed — everything the determinism tests compare and
/// the scaling bench reports.
struct ShardedClusterReport {
  std::uint64_t events = 0;          // engine events, summed over shards
  std::vector<std::uint64_t> shard_events;
  std::uint64_t epochs = 0;          // 0 on the inline 1-shard path
  std::uint64_t cross_messages = 0;  // datagrams the router forwarded
  std::uint64_t dropped = 0;         // datagrams dropped (chaos + unbound)
  int consults = 0;                  // overload consults sent by monitors
  int registered_hosts = 0;          // live leases at the monitors' registry
  double final_now = 0.0;            // max engine clock after the run
  std::uint64_t trace_hash = 0;      // FNV-1a of merged_trace
  std::size_t trace_events = 0;
  std::string merged_trace;          // merged_jsonl over the shard tracers
  std::string metrics_json;          // merged MetricsRegistry, to_json()
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterOptions options);
  ~ShardedCluster();
  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  /// Simulate `options().duration` virtual seconds and collect the report.
  /// Call once per instance.
  ShardedClusterReport run();

  [[nodiscard]] const ShardedClusterOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] sim::ShardGroup& group() noexcept { return group_; }
  [[nodiscard]] net::ShardRouter& router() noexcept { return *router_; }
  [[nodiscard]] net::Network& network(std::size_t shard) {
    return *shards_.at(shard)->net;
  }
  [[nodiscard]] obs::Tracer& tracer(std::size_t shard) {
    return *shards_.at(shard)->tracer;
  }
  /// The root registry ("root" host, shard 0).
  [[nodiscard]] registry::Registry& root_registry();
  /// The registry the shard's monitors report to (the child in
  /// hierarchical mode, the root otherwise).
  [[nodiscard]] registry::Registry& shard_registry(std::size_t shard);

 private:
  /// Deterministic message-loss injector, one per shard so the random
  /// stream is single-writer and independent of other shards' traffic.
  class LossPolicy final : public net::FaultPolicy {
   public:
    LossPolicy(sim::Engine& engine, double probability, double from,
               double until, std::uint64_t seed)
        : engine_(&engine),
          probability_(probability),
          from_(from),
          until_(until),
          rng_(seed) {}

    PostVerdict on_post(const net::Message&) override {
      PostVerdict verdict;
      const double now = engine_->now();
      if (now >= from_ && now < until_ && rng_.uniform() < probability_) {
        verdict.drop = true;
      }
      return verdict;
    }
    double bandwidth_factor(const std::string&, const std::string&) override {
      return 1.0;
    }

   private:
    sim::Engine* engine_;
    double probability_;
    double from_;
    double until_;
    support::Rng rng_;
  };

  // Declaration order is destruction order in reverse: engines (group_)
  // die last; within a shard, hosts outlive the network, which outlives
  // the monitors and registries that reference it.
  struct Shard {
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<LossPolicy> faults;
    std::vector<std::unique_ptr<host::Host>> hosts;
    std::unique_ptr<net::Network> net;
    std::vector<std::unique_ptr<monitor::Monitor>> monitors;
    std::unique_ptr<registry::Registry> registry;  // child / flat root
    std::unique_ptr<registry::Registry> root;      // shard 0 only
  };

  void build_shard(std::size_t shard);

  ShardedClusterOptions options_;
  sim::ShardGroup group_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<net::ShardRouter> router_;
  bool ran_ = false;
};

}  // namespace ars::core
