#pragma once
// Checkpoint scheduling strategies and failure-waste accounting
// (DESIGN.md §17).
//
// Two strategies from the InterferingCheckpoints line of work (Herault et
// al., INRIA RR-9109):
//
//   periodic    — every process checkpoints on its own Young/Daly-optimal
//                 interval W = sqrt(2 C M) derived from the host-crash MTBF
//                 and its own write cost.  Uncoordinated: when many jobs
//                 share one store, their writes collide and stretch.
//   cooperative — a central I/O scheduler (living in the registry, next to
//                 consult routing) admits at most K concurrent writes,
//                 defers the rest, and preempts a low-risk write when a
//                 much riskier one shows up.  Risk is elapsed-over-interval:
//                 how overdue the requester already is.
//
// The WasteLedger measures what either strategy costs: checkpoint overhead
// (time the store spent on writes that committed), work lost to failures
// (progress since the last committed checkpoint), and restart/rework time.

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace ars::ckpt {

/// Young/Daly first-order optimal checkpoint interval: W = sqrt(2 C M) for
/// write cost C and mean time between failures M (both seconds).  Returns
/// +inf when either input is non-positive (checkpointing never becomes
/// due) — callers clamp with their own minimum.
inline double young_daly_interval(double mtbf, double write_cost) {
  if (mtbf <= 0.0 || write_cost <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::sqrt(2.0 * write_cost * mtbf);
}

// -- cooperative admission ---------------------------------------------------

/// The I/O scheduler's verdict on one checkpoint write request.
struct Admission {
  enum class Verb { kAdmit, kDefer, kPreempt };
  Verb verb = Verb::kDefer;
  double retry_after = 0.0;   // defer: when the requester should re-ask
  /// Admit-by-preemption: the active write that must be aborted to make
  /// room (empty otherwise).  The caller notifies the victim.
  std::string preempt_victim;
  std::string victim_host;
};

/// Deterministic central admission for checkpoint writes.  Pure state
/// machine — no engine, no wire format — so it unit-tests in isolation and
/// the registry drives it from its message handlers and sweep loop.
class IoScheduler {
 public:
  struct Config {
    /// Concurrent writes admitted before the store is declared saturated.
    int max_concurrent = 2;
    /// Base defer backoff; scaled by how crowded the store is.
    double defer_retry = 5.0;
    /// A requester this many times riskier than the least-risky active
    /// write preempts it (risk = elapsed / Young-Daly interval).
    double preempt_risk_ratio = 2.0;
    /// Admitted writes are reaped after this long without a done/abort
    /// (lost message, crashed host) so slots cannot leak.
    double slot_ttl = 120.0;
  };

  IoScheduler() : IoScheduler(Config{}) {}
  explicit IoScheduler(Config config) : config_(config) {}

  /// One write request: admit, defer, or admit-by-preempting a victim.
  Admission request(const std::string& process, const std::string& host,
                    double risk, double now);

  /// The write of `process` finished or was dropped; free its slot.
  /// Idempotent (stale done/abort reports are normal under loss).
  void release(const std::string& process);

  /// Reap slots older than slot_ttl; returns the reaped process names.
  std::vector<std::string> expire(double now);

  [[nodiscard]] std::size_t active() const { return active_.size(); }
  [[nodiscard]] bool holds_slot(const std::string& process) const {
    return active_.contains(process);
  }
  [[nodiscard]] int admitted() const noexcept { return admitted_; }
  [[nodiscard]] int deferred() const noexcept { return deferred_; }
  [[nodiscard]] int preemptions() const noexcept { return preemptions_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct Slot {
    std::string host;
    double risk = 0.0;
    double admitted_at = 0.0;
  };

  Config config_;
  std::map<std::string, Slot> active_;  // stable order: determinism
  int admitted_ = 0;
  int deferred_ = 0;
  int preemptions_ = 0;
};

// -- waste accounting --------------------------------------------------------

/// Failure-waste breakdown for one process (all seconds).
struct Waste {
  /// Store time spent on checkpoint writes (committed and aborted).
  double overhead_s = 0.0;
  /// Work lost to crashes: progress since the last committed checkpoint.
  double lost_work_s = 0.0;
  /// Restart cost: checkpoint read-back on relaunch.
  double restart_s = 0.0;

  [[nodiscard]] double total() const {
    return overhead_s + lost_work_s + restart_s;
  }
};

/// Per-process and cluster-wide waste ledger; the obs export and the
/// campaign read it after the run.
class WasteLedger {
 public:
  void record_overhead(const std::string& process, double seconds);
  void record_lost_work(const std::string& process, double seconds);
  void record_restart(const std::string& process, double seconds);

  [[nodiscard]] Waste of(const std::string& process) const;
  [[nodiscard]] Waste cluster() const;
  [[nodiscard]] const std::map<std::string, Waste>& per_process() const {
    return per_process_;
  }

 private:
  std::map<std::string, Waste> per_process_;
};

}  // namespace ars::ckpt
