#pragma once
// Shared checkpoint I/O resource (DESIGN.md §17).
//
// PR 5 made checkpoint-restart load-bearing, but writes were free of
// contention: every process paid a fixed `bytes / checkpoint_store_bps`
// regardless of who else was writing.  This module models the stable store
// the way `net/` models links: a parallel-filesystem / burst-buffer with a
// finite AGGREGATE bandwidth shared fluid-flow style across the N active
// writes, on top of the per-host link cap.  Each write's instantaneous rate
// is min(per_host_bps, aggregate_bps / N), re-evaluated whenever the active
// set changes — so concurrent checkpoints stretch each other out and
// checkpoint *duration* becomes a first-class simulated cost.
//
// The store itself is payload-agnostic: callers hand it (process, host,
// bytes) plus commit/abort callbacks, and the HPCM engine keeps the actual
// Checkpoint object in its CheckpointStore shadow slot until the write
// lands (atomic shadow-commit: a crash mid-write aborts the write and the
// previous complete checkpoint stays the restorable one).

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ars/sim/engine.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::ckpt {

struct IoOptions {
  /// Per-host link bandwidth into the store (the legacy
  /// `checkpoint_store_bps`: 2004-era NFS-backed disk).
  double per_host_bps = 20.0e6;
  /// Aggregate store bandwidth shared by all concurrent writes.
  /// 0 disables the shared limit: each write gets the per-host rate (the
  /// pre-interference behavior, kept as the default for compatibility).
  double aggregate_bps = 0.0;
  /// Optional observability hooks (not owned): ckpt.write spans plus the
  /// ars_ckpt_* counters/histograms.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Terminal record of one write, handed to its commit/abort callback.
struct WriteOutcome {
  std::string process;
  std::string host;
  std::uint64_t bytes = 0;
  double started_at = 0.0;
  double finished_at = 0.0;  // commit or abort time

  [[nodiscard]] double duration() const { return finished_at - started_at; }
};

/// The shared checkpoint I/O resource.  One write per process at a time;
/// writes progress via engine events (fluid-flow: advance remaining bytes
/// at the old rate, re-rate, reschedule the next completion).
class SharedStore {
 public:
  using OutcomeFn = std::function<void(const WriteOutcome&)>;

  SharedStore(sim::Engine& engine, IoOptions options);
  SharedStore(const SharedStore&) = delete;
  SharedStore& operator=(const SharedStore&) = delete;
  ~SharedStore();

  /// Start an asynchronous write.  `on_commit` fires (at the simulated
  /// completion time) when all bytes landed; `on_abort` fires if the write
  /// is dropped first.  Returns false (and calls neither) when a write for
  /// `process` is already in flight.
  bool begin_write(const std::string& process, const std::string& host,
                   std::uint64_t bytes, OutcomeFn on_commit,
                   OutcomeFn on_abort);

  /// Drop the in-flight write of `process` (crash, preemption).  The
  /// bytes written so far are lost; `on_abort` fires.  Returns false when
  /// no write is in flight.
  bool abort_write(const std::string& process);

  /// Drop every in-flight write sourced from `host` (host failure).
  /// Returns how many writes were aborted.
  int abort_host_writes(const std::string& host);

  [[nodiscard]] bool writing(const std::string& process) const {
    return active_.contains(process);
  }
  [[nodiscard]] std::size_t active_writes() const { return active_.size(); }
  /// Current per-write rate (what one more byte would flow at).
  [[nodiscard]] double current_rate() const { return rate_; }
  /// Rate a hypothetical (N+1)th write would get — the admission
  /// scheduler's saturation signal.
  [[nodiscard]] double rate_with_one_more() const;

  [[nodiscard]] int commits() const noexcept { return commits_; }
  [[nodiscard]] int aborts() const noexcept { return aborts_; }
  [[nodiscard]] const IoOptions& options() const noexcept { return options_; }

 private:
  struct Write {
    std::string host;
    std::uint64_t bytes = 0;
    double remaining = 0.0;
    double started_at = 0.0;
    OutcomeFn on_commit;
    OutcomeFn on_abort;
    std::uint64_t span = 0;  // ckpt.write span (0: tracing off)
  };

  [[nodiscard]] double fair_rate(std::size_t writers) const;
  /// Fluid-flow step: charge progress since `last_update_` at the old
  /// rate, commit writes that finished, recompute the shared rate, and
  /// reschedule the single next-completion event.
  void advance();
  void rerate_and_reschedule();
  void finish(const std::string& process, double finished_at);
  void drop(std::map<std::string, Write>::iterator it);

  sim::Engine* engine_;
  IoOptions options_;
  std::map<std::string, Write> active_;  // keyed by process name
  double rate_ = 0.0;                    // current per-write rate
  double last_update_ = 0.0;
  sim::Engine::EventHandle completion_;
  int commits_ = 0;
  int aborts_ = 0;
};

}  // namespace ars::ckpt
