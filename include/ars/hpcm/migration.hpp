#pragma once
// HPCM migration engine: poll-points, state collection/restoration, and the
// MPI-2 DPM-based migration protocol (paper §3, §5.2).
//
// A migration-enabled application is a coroutine over (Proc&,
// MigrationContext&).  It keeps its live data registered (via an on_save
// callback filling the StateRegistry) and calls `co_await ctx.poll_point()`
// at the pre-defined points where a migration may occur.  When the
// commander's user-defined signal is pending, the poll-point executes the
// protocol:
//
//   1. read the destination from the temp file the commander wrote;
//   2. create the *initialized process* on the destination through MPI-2
//      dynamic process management (Comm_spawn — or Comm_connect to a
//      pre-initialized daemon when that optimization is enabled) and join
//      the communicators (Intercomm_merge);
//   3. send the execution state + eager data over the merged communicator;
//   4. keep collecting/sending the bulk of the memory state from the source
//      while the destination restores and RESUMES the application in
//      parallel (the paper's §5.2 overlap);
//   5. unwind the source fiber (ProcMoved) — the logical MPI process has
//      been relocated, so in-flight messages are forwarded.
//
// Every phase is timestamped in a MigrationTimeline so the §5.2 breakdown
// and Figures 7/8 can be regenerated.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ars/hpcm/checkpoint.hpp"
#include "ars/hpcm/schema.hpp"
#include "ars/hpcm/stateregistry.hpp"
#include "ars/mpi/mpi.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::hpcm {

class MigrationEngine;

struct MigrationTimeline {
  std::string process;
  std::string source;
  std::string destination;
  double requested_at = -1.0;    // commander signal delivered
  double poll_point_at = -1.0;   // migrating process reached its poll-point
  double init_done_at = -1.0;    // initialized process ready (DPM done)
  double eager_done_at = -1.0;   // execution state + eager data landed
  double resumed_at = -1.0;      // application resumed on the destination
  double completed_at = -1.0;    // background restoration finished
  double state_bytes = 0.0;      // total state moved
  bool succeeded = false;

  [[nodiscard]] double reach_poll_point() const {
    return poll_point_at - requested_at;
  }
  [[nodiscard]] double initialization() const {
    return init_done_at - poll_point_at;
  }
  [[nodiscard]] double resume_latency() const {
    return resumed_at - init_done_at;
  }
  [[nodiscard]] double total() const { return completed_at - requested_at; }
};

/// Persistent per-process migration state; survives fiber swaps across
/// hosts.  Handed to the application as `MigrationContext&`.
class MigrationContext {
 public:
  [[nodiscard]] StateRegistry& state() noexcept { return state_; }
  [[nodiscard]] const StateRegistry& state() const noexcept { return state_; }

  /// True when the current fiber resumed from migrated state (the app must
  /// restore its variables from state() instead of initializing).
  [[nodiscard]] bool restored() const noexcept { return restored_; }

  /// Number of completed migrations of this process.
  [[nodiscard]] int migrations() const noexcept { return migration_count_; }

  /// Register the collection callback: invoked at a migrating poll-point to
  /// snapshot live variables into state().  (This is the code HPCM's
  /// precompiler would have generated.)
  void on_save(std::function<void()> save) { save_ = std::move(save); }

  /// The poll-point: cheap when no migration is pending; otherwise runs the
  /// migration protocol and never returns on the source (throws ProcMoved).
  [[nodiscard]] sim::Task<> poll_point();

  /// Write a checkpoint of the registered state to the stable store
  /// (checkpointing-based fault tolerance; blocks for the write time).
  [[nodiscard]] sim::Task<> checkpoint();

  /// True when the current fiber was relaunched from a checkpoint (subset
  /// of restored(): restored() is also true after a live migration).
  [[nodiscard]] bool restarted_from_checkpoint() const noexcept {
    return restarted_from_checkpoint_;
  }

  [[nodiscard]] mpi::Proc& proc() const noexcept { return *proc_; }
  [[nodiscard]] MigrationEngine& engine() const noexcept { return *engine_; }

 private:
  friend class MigrationEngine;

  MigrationEngine* engine_ = nullptr;
  mpi::Proc* proc_ = nullptr;
  StateRegistry state_;
  std::function<void()> save_;
  bool restored_ = false;
  bool restarted_from_checkpoint_ = false;
  int migration_count_ = 0;
  double requested_at = -1.0;
  double launched_at = 0.0;
  std::string schema_name_;
};

class MigrationEngine {
 public:
  struct Options {
    /// Bytes of bulk data shipped with the execution state before resume.
    double eager_bytes = 64.0 * 1024;
    /// Background transfer chunk size.
    double chunk_bytes = 256.0 * 1024;
    /// Destination-side decode/restore latency before the app resumes.
    double restore_delay = 1.0;
    /// Stable-store bandwidth for checkpoint writes/reads (2004-era
    /// NFS-backed disk).
    double checkpoint_store_bps = 20.0e6;
    /// Optional observability hooks (not owned).  When set, every
    /// migration phase is recorded as a span (signal, poll-point, spawn,
    /// collect, restore) and timing/volume metrics are published.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit MigrationEngine(mpi::MpiSystem& mpi);
  MigrationEngine(mpi::MpiSystem& mpi, Options options);
  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;
  ~MigrationEngine();

  using MigratableApp =
      std::function<sim::Task<>(mpi::Proc&, MigrationContext&)>;

  /// Launch a migration-enabled application; registers it (and its schema)
  /// with the host process table.
  mpi::RankId launch(const std::string& host_name, MigratableApp app,
                     const std::string& name, ApplicationSchema schema);

  /// Launch an n-rank migration-enabled MPI world (one rank per entry of
  /// `hosts`); every rank gets its own MigrationContext and can migrate
  /// independently while the others keep communicating with it.
  std::vector<mpi::RankId> launch_world(const std::vector<std::string>& hosts,
                                        MigratableApp app,
                                        const std::string& name,
                                        ApplicationSchema schema);

  /// Commander entry point: write the destination temp file and raise the
  /// user-defined signal at (host, pid).  Returns false for unknown pids.
  bool request_migration(const std::string& host_name, host::Pid pid,
                         const std::string& dest_host);

  /// Test/bench convenience: request by rank id.
  bool request_migration(mpi::RankId id, const std::string& dest_host);

  /// Pre-initialize a receiver daemon on `host_name` (paper §5.2's proposed
  /// optimization): later migrations to that host skip the DPM spawn cost.
  void pre_initialize_on(const std::string& host_name);
  [[nodiscard]] bool has_pre_initialized(const std::string& host_name) const;

  // -- checkpoint/restart (the paper's checkpointing-based alternative) ----

  [[nodiscard]] CheckpointStore& checkpoints() noexcept {
    return checkpoint_store_;
  }

  /// Simulate a process crash (host failure, kill -9): the fiber dies on
  /// the spot, the logical process disappears, nothing is collected.  The
  /// application (and its context shell) is parked for relaunch.
  /// Returns false for unknown ids.
  bool crash(mpi::RankId id);

  /// Relaunch a crashed application on `host_name`.  Restores from its
  /// latest checkpoint if one exists (paying the store read time),
  /// otherwise restarts from scratch — the paper's "loss of all partial
  /// results".  Returns the new rank id, or 0 if the name is unknown.
  mpi::RankId relaunch(const std::string& process_name,
                       const std::string& host_name);

  /// Crash every launched application currently on `host_name` (host
  /// failure).  Returns how many were crashed (and parked for relaunch).
  int crash_host(const std::string& host_name);

  [[nodiscard]] const std::vector<MigrationTimeline>& history() const {
    return history_;
  }
  [[nodiscard]] ApplicationSchema* schema(const std::string& name);
  [[nodiscard]] const std::map<std::string, ApplicationSchema>& schemas()
      const {
    return schemas_;
  }

  [[nodiscard]] mpi::MpiSystem& mpi() const noexcept { return *mpi_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  friend class MigrationContext;

  struct ProcState {
    MigrationContext context;
    MigrationEngine::MigratableApp app;
  };

  /// The source-side protocol; runs inside the migrating fiber.
  [[nodiscard]] sim::Task<> migrate(MigrationContext& ctx,
                                    std::string dest_host);

  /// Destination-side protocol shared by spawned initialized processes and
  /// pre-initialized daemons.
  [[nodiscard]] sim::Task<> receiver_main(mpi::Proc& helper, mpi::Comm merged);

  /// Source-side background bulk transfer ("the process resumes execution
  /// at the destination before the migration ends").  Parameters are taken
  /// by value: this coroutine outlives the migrating fiber.
  [[nodiscard]] sim::Task<> run_collector(std::string source_host,
                                          std::string dest_host,
                                          double remaining,
                                          mpi::RankId helper_id,
                                          mpi::Comm merged);

  /// Destination-side takeover: relocate the proc and start the restored
  /// fiber.
  void takeover(mpi::RankId id, host::Host& destination,
                StateRegistry restored_state, std::size_t timeline_index);

  void finish_normal_exit(mpi::RankId id);

  [[nodiscard]] obs::Tracer* tracer() const noexcept {
    return options_.tracer;
  }
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return options_.metrics;
  }

  mpi::MpiSystem* mpi_;
  Options options_;
  std::map<mpi::RankId, std::unique_ptr<ProcState>> procs_;
  std::map<std::string, ApplicationSchema> schemas_;
  std::map<std::string, std::string> pre_initialized_;  // host -> port
  std::vector<sim::Fiber> collector_fibers_;  // background bulk transfers
  std::vector<MigrationTimeline> history_;
  CheckpointStore checkpoint_store_;
  /// Crashed applications parked for relaunch, keyed by process name.
  std::map<std::string, std::unique_ptr<ProcState>> crashed_;

  // -- tracing bookkeeping (ids are 0 when no tracer is attached) ----------
  struct TimelineSpans {
    std::uint64_t migration = 0;  // requested -> background restore done
    std::uint64_t restore = 0;    // eager state landed -> restore done
  };
  std::map<mpi::RankId, std::uint64_t> signal_spans_;  // signal -> poll-point
  std::map<std::size_t, TimelineSpans> timeline_spans_;
};

}  // namespace ars::hpcm
