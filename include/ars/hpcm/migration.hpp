#pragma once
// HPCM migration engine: poll-points, state collection/restoration, and the
// MPI-2 DPM-based migration protocol (paper §3, §5.2).
//
// A migration-enabled application is a coroutine over (Proc&,
// MigrationContext&).  It keeps its live data registered (via an on_save
// callback filling the StateRegistry) and calls `co_await ctx.poll_point()`
// at the pre-defined points where a migration may occur.  When the
// commander's user-defined signal is pending, the poll-point executes the
// protocol as an explicit phased *transaction*:
//
//   1. "init"   — create the *initialized process* on the destination
//      through MPI-2 dynamic process management (Comm_spawn — or
//      Comm_connect to a pre-initialized daemon when that optimization is
//      enabled) and join the communicators (Intercomm_merge);
//   2. collect  — snapshot live variables into the StateRegistry;
//   3. "eager"  — send the execution state + eager data over the merged
//      communicator;
//   4. "ack"    — wait for the destination's resume acknowledgement.  This
//      is the transaction's HARD COMMIT POINT: until the ACK lands, the
//      source fiber stays authoritative and any failure (phase timeout,
//      destination crash, severed link) aborts the transaction and rolls
//      the process back to source-side execution with its state intact;
//   5. commit   — relocate the logical process, resume it on the
//      destination, and keep shipping the bulk of the memory state in the
//      background (the paper's §5.2 overlap).  A destination failure after
//      the commit but before background restoration finishes rolls the
//      transaction back to the checkpoint-restart path instead of silently
//      losing the process.
//
// Every phase carries a configurable timeout; every terminal outcome
// (committed / aborted{reason} / rolled-back) is timestamped in a
// MigrationTimeline and reported through the outcome listener so the
// registry can credit back its in-flight placement debit and mark failed
// destinations suspect (DESIGN.md §12).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ars/ckpt/io.hpp"
#include "ars/ckpt/strategy.hpp"
#include "ars/hpcm/checkpoint.hpp"
#include "ars/hpcm/schema.hpp"
#include "ars/hpcm/stateregistry.hpp"
#include "ars/mpi/mpi.hpp"
#include "ars/obs/trace_ctx.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::hpcm {

class MigrationEngine;

struct MigrationTimeline {
  std::string process;
  std::string source;
  std::string destination;
  double requested_at = -1.0;    // commander signal delivered
  double poll_point_at = -1.0;   // migrating process reached its poll-point
  double init_done_at = -1.0;    // initialized process ready (DPM done)
  double eager_done_at = -1.0;   // execution state + eager data landed
  double resumed_at = -1.0;      // application resumed on the destination
  double completed_at = -1.0;    // background restoration finished
  double state_bytes = 0.0;      // total state moved
  /// When the stop-the-world window opened.  Stop-and-copy freezes from the
  /// poll-point; iterative pre-copy keeps computing through its rounds and
  /// freezes only for the final dirty delta.
  double freeze_begin_at = -1.0;
  /// Pre-copy rounds shipped before the freeze (0: stop-and-copy).
  int precopy_rounds = 0;
  /// Bytes shipped by the overlapped pre-copy rounds (not counting the
  /// final frozen delta).
  double precopy_bytes = 0.0;
  bool succeeded = false;
  /// Transaction outcome: "in-flight" while the protocol runs, then one of
  /// "committed", "aborted" (pre-commit rollback to the source), or
  /// "rolled-back" (destination lost after the commit point; the process
  /// falls back to checkpoint-restart).
  std::string outcome = "in-flight";
  std::string abort_reason;  // set when outcome != "committed"
  std::string abort_phase;   // protocol phase the failure hit
  /// Causal transaction id carried by the MigrateCmd that triggered this
  /// migration (0 when the request was untraced).
  std::uint64_t txn = 0;

  [[nodiscard]] double reach_poll_point() const {
    return poll_point_at - requested_at;
  }
  [[nodiscard]] double initialization() const {
    return init_done_at - poll_point_at;
  }
  [[nodiscard]] double resume_latency() const {
    return resumed_at - init_done_at;
  }
  [[nodiscard]] double total() const { return completed_at - requested_at; }
  /// Stop-the-world duration: freeze open -> application resumed.
  [[nodiscard]] double freeze_window() const {
    return resumed_at - (freeze_begin_at >= 0.0 ? freeze_begin_at
                                                : poll_point_at);
  }
};

/// Terminal transaction outcome handed to the outcome listener (the runtime
/// forwards it to the source host's commander as a MigrationOutcomeMsg).
struct MigrationOutcome {
  std::string process;
  std::string source;
  std::string destination;
  std::string outcome;  // "committed" | "aborted" | "rolled-back"
  std::string reason;   // empty for committed
  std::string phase;    // protocol phase the failure hit (empty for committed)
  /// Pre-copy rounds shipped before the terminal outcome (0: stop-and-copy).
  int precopy_rounds = 0;
  /// Bytes the overlapped pre-copy rounds moved.
  double precopy_bytes = 0.0;
  /// Causal context of the transaction; rides on the MigrationOutcomeMsg
  /// envelope so the registry links the report to the original decision.
  obs::TraceCtx trace;
};

/// Phase-entry notification ("init", "precopy", "eager", "ack", "restore")
/// fired from inside the migrating fiber.  Listeners must not reenter the
/// engine inline — schedule an event instead (ars::chaos does).
struct PhaseEvent {
  std::string process;
  std::string source;
  std::string destination;
  std::string phase;
};

/// Persistent per-process migration state; survives fiber swaps across
/// hosts.  Handed to the application as `MigrationContext&`.
class MigrationContext {
 public:
  [[nodiscard]] StateRegistry& state() noexcept { return state_; }
  [[nodiscard]] const StateRegistry& state() const noexcept { return state_; }

  /// True when the current fiber resumed from migrated state (the app must
  /// restore its variables from state() instead of initializing).
  [[nodiscard]] bool restored() const noexcept { return restored_; }

  /// Number of completed migrations of this process.
  [[nodiscard]] int migrations() const noexcept { return migration_count_; }

  /// Register the collection callback: invoked at a migrating poll-point to
  /// snapshot live variables into state().  (This is the code HPCM's
  /// precompiler would have generated.)
  void on_save(std::function<void()> save) { save_ = std::move(save); }

  /// The poll-point: cheap when no migration is pending; otherwise runs the
  /// migration protocol.  Never returns on the source when the transaction
  /// commits (throws ProcMoved); returns normally — the process keeps
  /// computing on the source — when it aborts.
  [[nodiscard]] sim::Task<> poll_point();

  /// Write a checkpoint of the registered state to the stable store
  /// (checkpointing-based fault tolerance).  Blocks only for the snapshot;
  /// the write itself streams asynchronously through the shared checkpoint
  /// I/O resource and replaces the previous checkpoint atomically when it
  /// commits (DESIGN.md §17).  A no-op while a write is already in flight.
  [[nodiscard]] sim::Task<> checkpoint();

  /// Strategy-driven checkpointing hook for poll-point loops: consults the
  /// engine's checkpoint plan (ckpt_strategy / Young-Daly interval /
  /// cooperative admission) and checkpoints when one is due.  Cheap when
  /// nothing is due; a no-op when the strategy is "none".
  [[nodiscard]] sim::Task<> maybe_checkpoint();

  /// True when the current fiber was relaunched from a checkpoint (subset
  /// of restored(): restored() is also true after a live migration).
  [[nodiscard]] bool restarted_from_checkpoint() const noexcept {
    return restarted_from_checkpoint_;
  }

  [[nodiscard]] mpi::Proc& proc() const noexcept { return *proc_; }
  [[nodiscard]] MigrationEngine& engine() const noexcept { return *engine_; }

 private:
  friend class MigrationEngine;

  MigrationEngine* engine_ = nullptr;
  mpi::Proc* proc_ = nullptr;
  StateRegistry state_;
  std::function<void()> save_;
  bool restored_ = false;
  bool restarted_from_checkpoint_ = false;
  int migration_count_ = 0;
  double requested_at = -1.0;
  double launched_at = 0.0;
  /// Context delivered with the latest migration request; consumed by
  /// migrate() so the whole transaction links back to the decision.
  obs::TraceCtx pending_trace_;
  std::string schema_name_;
  /// Timeline index of the in-flight pre-copy transaction of this process
  /// (kNoPrecopy when none).  While set, poll-points advance the pre-copy
  /// loop instead of starting a new migration.
  static constexpr std::size_t kNoPrecopy = static_cast<std::size_t>(-1);
  std::size_t precopy_tx_ = kNoPrecopy;
};

class MigrationEngine {
 public:
  struct Options {
    /// Bytes of bulk data shipped with the execution state before resume.
    double eager_bytes = 64.0 * 1024;
    /// Background transfer chunk size.
    double chunk_bytes = 256.0 * 1024;
    /// Destination-side decode/restore latency before the app resumes.
    double restore_delay = 1.0;
    /// Stable-store bandwidth for checkpoint writes/reads (2004-era
    /// NFS-backed disk).  This is the PER-HOST link into the store; see
    /// ckpt_aggregate_bps for the shared limit.
    double checkpoint_store_bps = 20.0e6;
    /// Aggregate checkpoint-store bandwidth shared fluid-flow style by all
    /// concurrent writes (DESIGN.md §17).  0 disables the shared limit:
    /// every write gets the per-host rate (legacy, interference-free).
    double ckpt_aggregate_bps = 0.0;
    /// Memory-speed snapshot bandwidth: the only part of a checkpoint that
    /// blocks the application (the write streams in the background).
    double ckpt_snapshot_bps = 400.0e6;
    /// Checkpoint scheduling strategy driving maybe_checkpoint():
    /// "none" (apps checkpoint explicitly), "periodic" (per-process
    /// Young/Daly intervals from ckpt_mtbf), or "cooperative" (periodic
    /// due-times, but writes ask the registry's I/O scheduler first).
    std::string ckpt_strategy = "none";
    /// Host MTBF feeding the Young/Daly interval (seconds; 0: checkpoints
    /// never become due).
    double ckpt_mtbf = 0.0;
    /// Floor for the Young/Daly interval (tiny states would otherwise
    /// checkpoint every poll-point).
    double ckpt_min_interval = 5.0;
    /// Cooperative mode: how long to wait for an admission grant before
    /// falling back to local admission (the registry may be down — the
    /// process must keep covering itself).
    double ckpt_grant_timeout = 15.0;
    /// Sabotage knob for the chaos checker: an aborted in-flight write
    /// REPLACES the previous checkpoint with the torn partial (a store
    /// without atomic rename) — the bug class the no-torn-checkpoint
    /// invariant exists to catch.  Never set outside tests.
    bool sabotage_torn_commit = false;
    /// Per-phase transaction timeouts (seconds).  A phase that neither
    /// completes nor fails within its budget aborts the transaction and the
    /// process keeps computing on the source.
    double init_timeout = 10.0;
    double eager_timeout = 60.0;
    double ack_timeout = 10.0;
    /// Iterative pre-copy (live-VM style): ship the full state in round 0
    /// and dirty deltas in later rounds while the process keeps computing;
    /// freeze only for the final delta + comm-state handoff.  Off by
    /// default: stop-and-copy keeps its exact legacy wire behavior.
    bool precopy = false;
    /// Give up converging and freeze after this many rounds.
    int precopy_max_rounds = 8;
    /// Freeze once the next delta would be at most this fraction of
    /// round 0's bytes.
    double precopy_convergence = 0.05;
    /// Sabotage knob for the chaos checker: skip the abort path's rollback
    /// so an aborted migration LOSES the logical process (the bug class the
    /// no-lost-process invariant exists to catch).  Never set outside tests.
    bool sabotage_skip_rollback = false;
    /// Optional observability hooks (not owned).  When set, every
    /// migration phase is recorded as a span (signal, poll-point, spawn,
    /// collect, restore) and timing/volume metrics are published.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit MigrationEngine(mpi::MpiSystem& mpi);
  MigrationEngine(mpi::MpiSystem& mpi, Options options);
  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;
  ~MigrationEngine();

  using MigratableApp =
      std::function<sim::Task<>(mpi::Proc&, MigrationContext&)>;
  using OutcomeListener = std::function<void(const MigrationOutcome&)>;
  using PhaseListener = std::function<void(const PhaseEvent&)>;

  /// Launch a migration-enabled application; registers it (and its schema)
  /// with the host process table.
  mpi::RankId launch(const std::string& host_name, MigratableApp app,
                     const std::string& name, ApplicationSchema schema);

  /// Launch an n-rank migration-enabled MPI world (one rank per entry of
  /// `hosts`); every rank gets its own MigrationContext and can migrate
  /// independently while the others keep communicating with it.
  std::vector<mpi::RankId> launch_world(const std::vector<std::string>& hosts,
                                        MigratableApp app,
                                        const std::string& name,
                                        ApplicationSchema schema);

  /// Commander entry point: write the destination temp file and raise the
  /// user-defined signal at (host, pid).  Returns false for unknown pids.
  /// `ctx` is the causal context of the MigrateCmd (unset for untraced
  /// requests); the whole transaction inherits it.
  bool request_migration(const std::string& host_name, host::Pid pid,
                         const std::string& dest_host,
                         obs::TraceCtx ctx = {});

  /// Test/bench convenience: request by rank id.
  bool request_migration(mpi::RankId id, const std::string& dest_host,
                         obs::TraceCtx ctx = {});

  /// Pre-initialize a receiver daemon on `host_name` (paper §5.2's proposed
  /// optimization): later migrations to that host skip the DPM spawn cost.
  void pre_initialize_on(const std::string& host_name);
  [[nodiscard]] bool has_pre_initialized(const std::string& host_name) const;

  /// Terminal transaction outcomes (committed / aborted / rolled-back); the
  /// runtime forwards them to the registry.  At most one listener.
  void set_outcome_listener(OutcomeListener listener) {
    outcome_listener_ = std::move(listener);
  }
  /// Phase-entry notifications, for migration-window fault injection.
  void set_phase_listener(PhaseListener listener) {
    phase_listener_ = std::move(listener);
  }
  /// Chaos hook: delay the start of every protocol phase named `phase` by
  /// `seconds` (0 clears).  Today only "precopy" rounds honor it — a stall
  /// long enough drives the round into its timeout and aborts the
  /// transaction, which is exactly what the chaos campaign needs to prove.
  void set_phase_stall(const std::string& phase, double seconds) {
    if (seconds > 0.0) {
      phase_stalls_[phase] = seconds;
    } else {
      phase_stalls_.erase(phase);
    }
  }

  // -- checkpoint/restart (the paper's checkpointing-based alternative) ----

  [[nodiscard]] CheckpointStore& checkpoints() noexcept {
    return checkpoint_store_;
  }

  /// The shared checkpoint I/O resource all writes flow through.
  [[nodiscard]] ckpt::SharedStore& shared_store() noexcept {
    return *shared_store_;
  }

  /// Failure-waste ledger: checkpoint overhead + lost work + restart cost.
  [[nodiscard]] const ckpt::WasteLedger& waste() const noexcept {
    return waste_;
  }

  /// Cooperative checkpoint I/O: the engine's side of the admission
  /// protocol.  Requests ("request"/"done"/"abort") leave through the
  /// sender (the runtime wires it to the host's commander); grants
  /// ("admit"/"defer"/"preempt") come back via deliver_ckpt_grant.
  struct CkptIoRequest {
    std::string host;     // requesting process's current host
    std::string process;
    std::string verb;     // "request" | "done" | "abort"
    std::uint64_t bytes = 0;
    double risk = 0.0;    // elapsed / Young-Daly interval
  };
  using CkptRequestSender = std::function<void(const CkptIoRequest&)>;
  void set_ckpt_request_sender(CkptRequestSender sender) {
    ckpt_request_sender_ = std::move(sender);
  }
  /// Commander entry point for a CkptIoGrantMsg.  Safe to call inline from
  /// a serving fiber: it only mutates plan state (and may abort an
  /// in-flight write on "preempt").  Unknown processes are ignored.
  void deliver_ckpt_grant(const std::string& process, const std::string& verb,
                          double retry_after);

  [[nodiscard]] int ckpt_deferred() const noexcept { return ckpt_deferred_; }
  [[nodiscard]] int ckpt_preempted() const noexcept {
    return ckpt_preempted_;
  }
  /// Relaunches that restored a torn checkpoint (0 unless sabotaged).
  [[nodiscard]] int torn_restores() const noexcept { return torn_restores_; }

  /// Simulate a process crash (host failure, kill -9): the fiber dies on
  /// the spot, the logical process disappears, nothing is collected.  The
  /// application (and its context shell) is parked for relaunch.  An
  /// in-flight migration transaction of the process is aborted.
  /// Returns false for unknown ids.
  bool crash(mpi::RankId id);

  /// Relaunch a crashed application on `host_name`.  Restores from its
  /// latest checkpoint if one exists (paying the store read time),
  /// otherwise restarts from scratch — the paper's "loss of all partial
  /// results".  Returns the new rank id, or 0 if the name is unknown.
  /// `ctx` links the relaunch to the registry's recovery transaction.
  mpi::RankId relaunch(const std::string& process_name,
                       const std::string& host_name, obs::TraceCtx ctx = {});

  /// Crash every launched application currently on `host_name` (host
  /// failure).  In-flight transactions with this host as destination are
  /// aborted (pre-commit) or rolled back to checkpoint-restart
  /// (post-commit); a pre-initialized daemon on the host is dropped.
  /// Returns how many applications were crashed (and parked for relaunch).
  int crash_host(const std::string& host_name);

  [[nodiscard]] const std::vector<MigrationTimeline>& history() const {
    return history_;
  }
  /// Names of crashed applications currently parked for relaunch (the
  /// chaos no-lost-process invariant counts these as restartable).
  [[nodiscard]] std::vector<std::string> parked_for_relaunch() const;
  /// True when `process_name` ran to completion and exited normally — a
  /// relaunch request for it is stale (e.g. a falsely expired lease) and
  /// the registry should abandon the retry, not park it as stranded.
  [[nodiscard]] bool exited_normally(const std::string& process_name) const;
  [[nodiscard]] ApplicationSchema* schema(const std::string& name);
  [[nodiscard]] const std::map<std::string, ApplicationSchema>& schemas()
      const {
    return schemas_;
  }

  [[nodiscard]] mpi::MpiSystem& mpi() const noexcept { return *mpi_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  friend class MigrationContext;

  struct ProcState {
    MigrationContext context;
    MigrationEngine::MigratableApp app;
  };

  enum class PhaseResult { kDone, kTimeout, kDestFailed, kError };

  /// One in-flight migration transaction, keyed by timeline index.  Heap
  /// allocated so phase fibers and timeout events can hold stable pointers.
  struct PendingTx {
    explicit PendingTx(sim::Engine& engine) : wake(engine) {}

    std::size_t timeline_index = 0;
    mpi::RankId proc_id = 0;
    std::string process;
    std::string source;
    std::string dest;
    bool pre_init = false;
    std::string port;  // daemon port when pre_init
    mpi::RankId helper_id = 0;
    mpi::Comm merged;

    // Phase machinery: the protocol phase runs in a sub-fiber while the
    // migrating fiber waits on `wake` with a cancellable timeout event.
    std::string phase = "init";
    sim::WaitQueue wake;
    sim::Fiber phase_fiber;
    sim::Engine::EventHandle timeout_event;
    bool phase_done = false;
    bool timed_out = false;
    bool dest_failed = false;
    bool committed = false;
    std::string phase_error;
    /// Context for spans/instants of this transaction: the request's txn
    /// with the migration span as parent (set once the span opens).
    obs::TraceCtx trace;

    // Collected state (filled by the collect step / the receiver).
    std::vector<std::byte> encoded;
    double opaque = 0.0;
    double eager_opaque = 0.0;
    double eager_wire = 0.0;
    /// Eager-message `values` override; empty = legacy [id, timeline].
    /// Pre-copy frames carry [id, timeline, round, final-flag].
    std::vector<double> eager_values;
    StateRegistry restored_state;
    bool state_ready = false;

    // Pre-copy loop state (source side).
    bool precopy = false;
    int rounds_sent = 0;
    /// Registry generation covered by the rounds shipped so far.
    std::uint64_t shipped_gen = 0;
    double round0_bytes = 0.0;
    double precopy_bytes = 0.0;
    /// A round fiber is still shipping; the app keeps computing past its
    /// poll-points until it lands.
    bool round_in_flight = false;
    /// A round failed (timeout / error); the next poll-point aborts the
    /// transaction from the app fiber (a round fiber never unwinds itself).
    bool precopy_failed = false;
    PhaseResult precopy_result = PhaseResult::kError;
  };

  /// The source-side protocol; runs inside the migrating fiber.
  [[nodiscard]] sim::Task<> migrate(MigrationContext& ctx,
                                    std::string dest_host);

  // -- iterative pre-copy (source side) ------------------------------------
  /// Advance an in-flight pre-copy transaction at a poll-point: spawn the
  /// next round when the previous one landed, abort on a failed round, or
  /// freeze-and-commit once the dirty delta converged.  Throws ProcMoved
  /// when the transaction commits.
  [[nodiscard]] sim::Task<> continue_precopy(MigrationContext& ctx);
  /// Snapshot this round's payload in the app fiber (round 0: full state;
  /// later: dirty delta) and spawn the round fiber that ships it.
  void start_precopy_round(MigrationContext& ctx, PendingTx& tx);
  /// The round fiber body: (round 0 only) run init/DPM, then ship the
  /// frame.  Failures are flagged on the transaction, never thrown out.
  [[nodiscard]] sim::Task<> run_precopy_round(PendingTx* tx, int round,
                                              double charge_bytes);
  /// Stop-the-world tail of a converged pre-copy: final dirty delta +
  /// resume handshake + commit.  Throws ProcMoved on commit.
  [[nodiscard]] sim::Task<> freeze_and_commit(MigrationContext& ctx,
                                              PendingTx& tx);
  /// Shared frozen epilogue of both protocols: eager send -> resume ACK ->
  /// commit (relocate + background transfer of `remaining` bytes).  Returns
  /// normally only when a phase failed and the transaction aborted; throws
  /// ProcMoved on commit.
  [[nodiscard]] sim::Task<> freeze_tail(MigrationContext& ctx, PendingTx& tx,
                                        double remaining);

  // Phase bodies (member coroutines — lambda coroutines would dangle their
  // captures once the spawning frame unwinds).
  [[nodiscard]] sim::Task<> phase_init(PendingTx& tx, mpi::Proc& proc);
  [[nodiscard]] sim::Task<> phase_eager(PendingTx& tx, mpi::Proc& proc);
  [[nodiscard]] sim::Task<> phase_ack(PendingTx& tx, mpi::Proc& proc);
  /// Drives one phase body inside its own fiber; flags completion/failure
  /// on the transaction and wakes the migrating fiber.
  [[nodiscard]] sim::Task<> run_phase(PendingTx* tx, sim::Task<> body);
  /// Runs `body` as phase `phase` with a timeout; returns how it ended.
  [[nodiscard]] sim::Task<PhaseResult> await_phase(PendingTx& tx,
                                                   sim::Task<> body,
                                                   const char* phase,
                                                   double timeout);

  /// Shared phase-failure epilogue: log, abort the transaction with the
  /// reason derived from `result`, and (sabotaged builds only) lose the
  /// process by unwinding the source fiber without rollback.
  void fail_phase(PendingTx& tx, mpi::Proc& proc, PhaseResult result);
  /// Pre-commit abort: tear down the destination helper, stamp the timeline
  /// (aborted{reason}), publish metrics/spans, and report the outcome.  The
  /// process keeps computing on the source (unless sabotaged).
  void abort_transaction(std::size_t timeline_index, std::string reason);
  /// Post-commit destination failure during background restoration: kill
  /// the collector and helper, stamp the timeline rolled-back, and report.
  void rollback_restore(std::size_t timeline_index, std::string reason);
  /// Close the timeline's restore + migration spans with a terminal
  /// outcome attribute and forget them.
  void end_transaction_spans(std::size_t timeline_index, const char* outcome,
                             const std::string& reason);
  /// Kill a pre-initialized daemon and forget its port (future migrations
  /// to the host fall back to MPI_Comm_spawn).
  void drop_daemon(const std::string& host_name);

  /// Destination-side protocol shared by spawned initialized processes and
  /// pre-initialized daemons.
  [[nodiscard]] sim::Task<> receiver_main(mpi::Proc& helper, mpi::Comm merged);

  /// Source-side background bulk transfer ("the process resumes execution
  /// at the destination before the migration ends").  Parameters are taken
  /// by value: this coroutine outlives the migrating fiber.
  [[nodiscard]] sim::Task<> run_collector(std::string source_host,
                                          std::string dest_host,
                                          double remaining,
                                          mpi::RankId helper_id,
                                          mpi::Comm merged);

  /// Destination-side takeover: relocate the proc and start the restored
  /// fiber.
  void takeover(mpi::RankId id, host::Host& destination,
                StateRegistry restored_state, std::size_t timeline_index);

  /// Background restoration finished: close the transaction as committed.
  void finish_restore(std::size_t timeline_index);

  void finish_normal_exit(mpi::RankId id);

  /// Close (and forget) the open migration.signal span of a process, if
  /// any; `closed_by` says why ("poll-point", "crash", "exit", ...).
  void close_signal_span(mpi::RankId id, const char* closed_by);

  // -- shared checkpoint I/O (DESIGN.md §17) -------------------------------
  /// Per-process checkpoint plan state (strategy-driven checkpointing).
  struct CkptPlan {
    /// Progress baseline: last snapshot start (-1: re-baselined at the
    /// next poll — fresh launches and relaunches both start here).
    double last_mark = -1.0;
    double retry_at = 0.0;        // cooperative defer/preempt backoff
    bool awaiting_grant = false;  // request sent, no grant yet
    double requested_at = 0.0;
    bool granted = false;         // admit received, write not started yet
  };

  /// maybe_checkpoint() body: due-check against the Young/Daly interval,
  /// then either write directly (periodic) or run the admission protocol
  /// (cooperative).
  [[nodiscard]] sim::Task<> ckpt_poll(MigrationContext& ctx);
  /// checkpoint() body: blocking snapshot, then the asynchronous shared
  /// write with shadow-commit.
  [[nodiscard]] sim::Task<> write_checkpoint(MigrationContext& ctx);
  /// Uncontended write cost estimate feeding Young/Daly (last committed
  /// checkpoint's bytes, or the registry's current footprint).
  [[nodiscard]] double ckpt_write_cost(const MigrationContext& ctx) const;
  void on_ckpt_commit(const std::string& process,
                      const ckpt::WriteOutcome& outcome);
  void on_ckpt_abort(const std::string& process,
                     const ckpt::WriteOutcome& outcome);
  void send_ckpt_io(const std::string& process, const std::string& host,
                    const char* verb, std::uint64_t bytes, double risk);
  void observe_waste_s(double seconds);

  void notify_phase(const PendingTx& tx, const char* phase);
  void notify_outcome(const MigrationTimeline& timeline,
                      const obs::TraceCtx& trace);
  /// Record one protocol phase's wall-clock into migration.phase_ms{phase}.
  void observe_phase_ms(const char* phase, double seconds);

  [[nodiscard]] obs::Tracer* tracer() const noexcept {
    return options_.tracer;
  }
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return options_.metrics;
  }

  mpi::MpiSystem* mpi_;
  Options options_;
  std::map<mpi::RankId, std::unique_ptr<ProcState>> procs_;
  std::map<std::string, ApplicationSchema> schemas_;
  std::map<std::string, std::string> pre_initialized_;  // host -> port
  std::map<std::string, mpi::RankId> daemon_ids_;       // host -> daemon
  /// Background bulk transfers, keyed by timeline index so a post-commit
  /// rollback can kill exactly the right one.
  std::map<std::size_t, sim::Fiber> collectors_;
  /// In-flight transactions, keyed by timeline index.
  std::map<std::size_t, std::unique_ptr<PendingTx>> pending_;
  std::vector<MigrationTimeline> history_;
  CheckpointStore checkpoint_store_;
  /// The shared I/O resource (declared after the CheckpointStore it commits
  /// into, so it tears down first).
  std::unique_ptr<ckpt::SharedStore> shared_store_;
  ckpt::WasteLedger waste_;
  std::map<std::string, CkptPlan> ckpt_plans_;  // keyed by process name
  CkptRequestSender ckpt_request_sender_;
  int ckpt_deferred_ = 0;
  int ckpt_preempted_ = 0;
  int torn_restores_ = 0;
  /// Crashed applications parked for relaunch, keyed by process name.
  std::map<std::string, std::unique_ptr<ProcState>> crashed_;
  /// Processes that ran to completion (normal exit); cleared if the name
  /// is reused by a fresh launch.
  std::set<std::string> exited_;
  OutcomeListener outcome_listener_;
  PhaseListener phase_listener_;
  /// Chaos-injected per-phase start delays (see set_phase_stall).
  std::map<std::string, double> phase_stalls_;

  // -- tracing bookkeeping (ids are 0 when no tracer is attached) ----------
  struct TimelineSpans {
    std::uint64_t migration = 0;  // requested -> background restore done
    std::uint64_t restore = 0;    // eager state landed -> restore done
    std::uint64_t transfer = 0;   // commit -> background bulk transfer done
    std::uint64_t precopy = 0;    // overlapped rounds: poll-point -> freeze
  };
  std::map<mpi::RankId, std::uint64_t> signal_spans_;  // signal -> poll-point
  std::map<std::size_t, TimelineSpans> timeline_spans_;
};

}  // namespace ars::hpcm
