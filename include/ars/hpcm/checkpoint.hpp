#pragma once
// Checkpoint/restart support.
//
// The paper contrasts its live-migration approach with checkpointing-based
// systems (Condor, Zap): "the design of the system is general and can be
// extended for checkpointing-based ... systems".  This module provides that
// extension: applications may checkpoint their state registry to a stable
// store at poll-points; after a crash, the process is relaunched from its
// latest checkpoint — losing only the work since it.  Restarting from
// scratch (the "static allocation" strawman of §1: "a reassignment means
// the loss of all partial results") falls out as the no-checkpoint case.
//
// Writes are ATOMIC (DESIGN.md §17): an asynchronous write lands first in a
// shadow slot and replaces the previous checkpoint only at commit_shadow()
// — the classic write-to-temp-then-rename.  A crash racing an in-flight
// write aborts the shadow and latest() keeps returning the previous
// complete checkpoint; a torn (incomplete) checkpoint can only enter the
// store through the sabotage path chaos uses to validate its
// no-torn-checkpoint invariant.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ars/hpcm/stateregistry.hpp"

namespace ars::hpcm {

struct Checkpoint {
  std::string process;     // application name (stable across hosts)
  double taken_at = 0.0;   // when the snapshot was taken (consistency point)
  std::vector<std::byte> state;  // encoded registry
  std::uint64_t bytes = 0;       // stable-storage footprint (incl. opaque)
  /// False only for a torn write committed by the sabotage path; a clean
  /// store never exposes an incomplete checkpoint.
  bool complete = true;
  double committed_at = 0.0;  // when the write finished (0: direct put)
};

/// Stable checkpoint storage (an NFS server in the paper's world: writes
/// cost disk/network time, survive host crashes).
class CheckpointStore {
 public:
  /// Record a checkpoint, replacing any previous one for the process.
  /// (The synchronous path: tests and tools that do not model write time.)
  void put(Checkpoint checkpoint);

  // -- atomic shadow-commit (asynchronous writes) ---------------------------

  /// Stage an in-flight write.  Invisible to latest() until committed;
  /// replaces any previous shadow for the process.
  void begin_shadow(Checkpoint checkpoint);

  /// Atomically promote the shadow to the visible checkpoint (the rename).
  /// Returns false when no shadow is staged (stale completion).
  bool commit_shadow(const std::string& process, double committed_at);

  /// Drop an in-flight write (crash, preemption): the previous complete
  /// checkpoint stays the restorable one.  With `sabotage_torn` the partial
  /// write replaces it anyway, marked incomplete — the storage-bug model
  /// the chaos no-torn-checkpoint invariant exists to catch.
  bool abort_shadow(const std::string& process, bool sabotage_torn = false);

  [[nodiscard]] const Checkpoint* latest(const std::string& process) const;
  [[nodiscard]] bool shadow_pending(const std::string& process) const {
    return shadows_.contains(process);
  }

  void erase(const std::string& process) { checkpoints_.erase(process); }
  [[nodiscard]] std::size_t size() const noexcept {
    return checkpoints_.size();
  }

  /// Total checkpoints ever written (for overhead accounting).
  [[nodiscard]] int writes() const noexcept { return writes_; }
  /// Shadow writes dropped before their commit.
  [[nodiscard]] int aborted_shadows() const noexcept {
    return aborted_shadows_;
  }
  /// Torn checkpoints committed by the sabotage path (0 on clean stores).
  [[nodiscard]] int torn() const noexcept { return torn_; }
  /// Stable-storage footprint of all visible checkpoints.
  [[nodiscard]] std::uint64_t total_bytes() const;

 private:
  std::map<std::string, Checkpoint> checkpoints_;
  std::map<std::string, Checkpoint> shadows_;  // in-flight writes
  int writes_ = 0;
  int aborted_shadows_ = 0;
  int torn_ = 0;
};

}  // namespace ars::hpcm
