#pragma once
// Checkpoint/restart support.
//
// The paper contrasts its live-migration approach with checkpointing-based
// systems (Condor, Zap): "the design of the system is general and can be
// extended for checkpointing-based ... systems".  This module provides that
// extension: applications may checkpoint their state registry to a stable
// store at poll-points; after a crash, the process is relaunched from its
// latest checkpoint — losing only the work since it.  Restarting from
// scratch (the "static allocation" strawman of §1: "a reassignment means
// the loss of all partial results") falls out as the no-checkpoint case.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ars/hpcm/stateregistry.hpp"

namespace ars::hpcm {

struct Checkpoint {
  std::string process;     // application name (stable across hosts)
  double taken_at = 0.0;
  std::vector<std::byte> state;  // encoded registry
  std::uint64_t bytes = 0;       // stable-storage footprint (incl. opaque)
};

/// Stable checkpoint storage (an NFS server in the paper's world: writes
/// cost disk/network time, survive host crashes).
class CheckpointStore {
 public:
  /// Record a checkpoint, replacing any previous one for the process.
  void put(Checkpoint checkpoint);

  [[nodiscard]] const Checkpoint* latest(const std::string& process) const;

  void erase(const std::string& process) { checkpoints_.erase(process); }
  [[nodiscard]] std::size_t size() const noexcept {
    return checkpoints_.size();
  }

  /// Total checkpoints ever written (for overhead accounting).
  [[nodiscard]] int writes() const noexcept { return writes_; }

 private:
  std::map<std::string, Checkpoint> checkpoints_;
  int writes_ = 0;
};

}  // namespace ars::hpcm
