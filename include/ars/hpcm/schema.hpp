#pragma once
// Application schema (paper §3.3): the XML document describing an
// application to the rescheduler — its characteristics (data, communication
// or computing intensive), estimated communication data size, resource
// requirements, and estimated execution time on a workstation of given
// computing power.  "Initially provided by the users and updated according
// to the statistics of actual executions."

#include <cstdint>
#include <string>

#include "ars/support/expected.hpp"

namespace ars::hpcm {

enum class AppCharacteristic {
  kComputeIntensive,
  kCommunicationIntensive,
  kDataIntensive,
};

[[nodiscard]] std::string_view to_string(AppCharacteristic c) noexcept;
[[nodiscard]] support::Expected<AppCharacteristic> characteristic_from_string(
    std::string_view name);

struct ResourceRequirements {
  std::uint64_t min_memory_bytes = 0;
  std::uint64_t min_disk_bytes = 0;
  double min_cpu_speed = 0.0;  // relative to the reference workstation
};

class ApplicationSchema {
 public:
  ApplicationSchema() = default;
  explicit ApplicationSchema(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] AppCharacteristic characteristic() const noexcept {
    return characteristic_;
  }
  void set_characteristic(AppCharacteristic c) noexcept {
    characteristic_ = c;
  }

  /// Estimated process-state size a migration must move.
  [[nodiscard]] std::uint64_t est_comm_bytes() const noexcept {
    return est_comm_bytes_;
  }
  void set_est_comm_bytes(std::uint64_t bytes) noexcept {
    est_comm_bytes_ = bytes;
  }

  [[nodiscard]] const ResourceRequirements& requirements() const noexcept {
    return requirements_;
  }
  void set_requirements(ResourceRequirements r) noexcept {
    requirements_ = r;
  }

  /// Estimated total execution time on the reference workstation.
  [[nodiscard]] double est_exec_time() const noexcept {
    return est_exec_time_;
  }
  void set_est_exec_time(double seconds) noexcept {
    est_exec_time_ = seconds;
  }

  /// Data-locality weight in [0,1]: how strongly the process depends on
  /// host-local data (§5.3: "if a process involves a lot in a local data
  /// access, the process is not to be migrated for slight performance
  /// degradation").
  [[nodiscard]] double data_locality() const noexcept {
    return data_locality_;
  }
  void set_data_locality(double weight) noexcept { data_locality_ = weight; }

  [[nodiscard]] int observed_runs() const noexcept { return observed_runs_; }

  /// Fold an actual execution (normalized to the reference CPU) into the
  /// estimate — exponential smoothing over observed runs.
  void record_execution(double actual_seconds);

  [[nodiscard]] std::string to_xml() const;
  [[nodiscard]] static support::Expected<ApplicationSchema> from_xml(
      std::string_view xml);

 private:
  std::string name_ = "unnamed";
  AppCharacteristic characteristic_ = AppCharacteristic::kComputeIntensive;
  std::uint64_t est_comm_bytes_ = 0;
  ResourceRequirements requirements_;
  double est_exec_time_ = 0.0;
  double data_locality_ = 0.0;
  int observed_runs_ = 0;
};

}  // namespace ars::hpcm
