#pragma once
// HPCM memory-state registry.
//
// HPCM is "a precompiler aided middleware": the precompiler identifies the
// live data of a process and emits collection/restoration code around
// poll-points.  Here, applications register their live variables by name in
// a StateRegistry; encode() produces the machine-independent representation
// (fixed-width, big-endian, type-tagged) that crosses heterogeneous hosts,
// and decode() rebuilds it on any architecture.
//
// "Opaque" entries model bulk memory regions (the tree nodes, matrices...)
// whose *transfer cost* matters but whose bytes need not be materialized in
// the simulation: they carry a logical size that the migration engine
// charges to the network.
//
// For iterative pre-copy migration the registry tracks *dirtiness*: every
// mutation stamps the entry with a monotonically increasing generation
// counter (value-identical re-registrations do not re-dirty, so an on_save
// callback that rewrites every variable each round only marks what actually
// changed).  Opaque regions are dirtied at kOpaqueRegionBytes granularity
// through touch_opaque().  collect_delta() encodes only the entries (and
// charges only the opaque regions) dirtied since a snapshot generation,
// together with explicit tombstones for names erased since — so a stale
// entry can never resurrect at the destination.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ars/support/byteorder.hpp"
#include "ars/support/expected.hpp"

namespace ars::hpcm {

enum class EntryType : std::uint8_t {
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kDoubleVector = 4,
  kIntVector = 5,
  kOpaque = 6,
};

class StateRegistry {
 public:
  /// Dirty-tracking granularity for opaque bulk regions.
  static constexpr std::uint64_t kOpaqueRegionBytes = 256 * 1024;

  void set_int(const std::string& name, std::int64_t value);
  void set_double(const std::string& name, double value);
  void set_string(const std::string& name, std::string value);
  void set_doubles(const std::string& name, std::vector<double> values);
  void set_ints(const std::string& name, std::vector<std::int64_t> values);
  /// Register a bulk region of `logical_bytes` (content not materialized).
  /// Re-registering the same size is a no-op (the region's dirty state is
  /// carried by touch_opaque); a size change re-dirties the whole entry.
  void set_opaque(const std::string& name, std::uint64_t logical_bytes);

  /// Mark `[offset, offset+length)` of an opaque entry dirty, at
  /// kOpaqueRegionBytes granularity.  No-op for unknown or non-opaque names.
  void touch_opaque(const std::string& name, std::uint64_t offset,
                    std::uint64_t length);

  [[nodiscard]] support::Expected<std::int64_t> get_int(
      const std::string& name) const;
  [[nodiscard]] support::Expected<double> get_double(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::string> get_string(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::vector<double>> get_doubles(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::vector<std::int64_t>> get_ints(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::uint64_t> get_opaque_size(
      const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.contains(name);
  }
  /// Remove an entry; a tombstone records the erase so in-flight pre-copy
  /// deltas propagate the removal instead of resurrecting the old value.
  void erase(const std::string& name);
  void clear();
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  // -- dirty tracking --------------------------------------------------------

  /// Generation of the latest mutation; 0 for a never-mutated registry.
  /// Pass to dirty_since()/collect_delta() to scope "changed since when".
  [[nodiscard]] std::uint64_t snapshot_generation() const noexcept {
    return generation_;
  }

  /// Names of entries mutated (or opaque-touched) after `gen`, in map order.
  [[nodiscard]] std::vector<std::string> dirty_since(std::uint64_t gen) const;

  /// Names erased after `gen` and not since re-registered.
  [[nodiscard]] std::vector<std::string> tombstones_since(
      std::uint64_t gen) const;

  /// Wire + charged-opaque size a collect_delta(gen) would ship: cheap
  /// (no encoding) so the pre-copy loop can test convergence every round.
  [[nodiscard]] std::uint64_t delta_bytes_since(std::uint64_t gen) const;

  /// One pre-copy round's payload: the dirty entries encoded on the wire,
  /// the opaque bytes to charge the network (dirty regions only, unless the
  /// whole entry is dirty), and the tombstones of erased names.
  struct Delta {
    std::uint64_t base_generation = 0;  // covers (base, to]
    std::uint64_t to_generation = 0;
    std::vector<std::byte> wire;          // encoded entries + tombstones
    std::uint64_t dirty_opaque_bytes = 0; // charged to the network
    std::size_t entries = 0;
    std::size_t tombstones = 0;
  };

  /// Encode everything dirtied after `since` (entries + tombstones) as a
  /// delta frame.  apply_delta() on the destination's staged registry
  /// upserts the entries and erases the tombstoned names.
  [[nodiscard]] Delta collect_delta(
      std::uint64_t since,
      support::ByteOrder origin = support::ByteOrder::kBigEndian) const;

  /// Apply a delta frame produced by collect_delta().  All-or-nothing: a
  /// malformed frame leaves this registry untouched.
  [[nodiscard]] support::Status apply_delta(std::span<const std::byte> wire);

  // -- wire format -----------------------------------------------------------

  /// Encoded (wire) size of the typed entries, in bytes.  Computed
  /// analytically — encode().size() is asserted equal in tests, and the
  /// network is charged from this number.
  [[nodiscard]] std::uint64_t encoded_bytes() const;
  /// Total logical size of opaque bulk regions.
  [[nodiscard]] std::uint64_t opaque_bytes() const;
  /// Everything a migration must move: encoded + opaque.
  [[nodiscard]] std::uint64_t total_transfer_bytes() const {
    return encoded_bytes() + opaque_bytes();
  }

  /// Canonical machine-independent serialization.  `origin` is recorded in
  /// the header for diagnostics; the representation itself is always
  /// big-endian fixed-width.
  [[nodiscard]] std::vector<std::byte> encode(
      support::ByteOrder origin = support::ByteOrder::kBigEndian) const;

  /// Serialize into a caller-owned buffer (cleared first): the pre-copy
  /// loop reuses one buffer across rounds instead of allocating a fresh
  /// canonical copy per round.  Bulk payloads (vectors, strings) are
  /// block-copied, not appended byte by byte.
  void encode_into(
      std::vector<std::byte>& out,
      support::ByteOrder origin = support::ByteOrder::kBigEndian) const;

  [[nodiscard]] static support::Expected<StateRegistry> decode(
      std::span<const std::byte> wire);

  /// Byte order recorded by the encoding host (after decode()).
  [[nodiscard]] support::ByteOrder origin() const noexcept { return origin_; }

 private:
  struct Entry {
    EntryType type = EntryType::kInt;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    std::vector<double> doubles;
    std::vector<std::int64_t> ints;
    std::uint64_t opaque_size = 0;
    /// Generation of the last whole-entry mutation (0: placeholder).
    std::uint64_t gen = 0;
    /// Opaque only: region index -> generation of the last touch.
    std::map<std::uint64_t, std::uint64_t> opaque_regions;
    /// Max generation across opaque_regions (0: never touched).
    std::uint64_t regions_gen = 0;
  };

  [[nodiscard]] support::Expected<const Entry*> find_typed(
      const std::string& name, EntryType type) const;

  /// Store `entry` under `name` stamped with a fresh generation and drop
  /// any tombstone for the name.
  void store(const std::string& name, Entry entry);

  [[nodiscard]] bool entry_dirty_since(const Entry& entry,
                                       std::uint64_t gen) const;
  /// Opaque bytes a delta since `gen` charges for `entry` (whole size when
  /// the entry itself is dirty, else dirty regions clamped to the size).
  [[nodiscard]] std::uint64_t charged_opaque_since(const Entry& entry,
                                                   std::uint64_t gen) const;
  /// Wire bytes of one encoded entry (name + type tag + payload).
  [[nodiscard]] static std::uint64_t entry_wire_bytes(const std::string& name,
                                                      const Entry& entry);
  static void encode_entry(std::vector<std::byte>& out,
                           const std::string& name, const Entry& entry);
  /// Shared entry parser for decode()/apply_delta(); hardened: every length
  /// prefix is validated against the remaining buffer before allocation.
  [[nodiscard]] static support::Expected<std::pair<std::string, Entry>>
  decode_entry(std::span<const std::byte> wire, std::size_t& offset);

  std::map<std::string, Entry> entries_;
  /// Name -> generation of the erase; dropped when the name is re-set.
  std::map<std::string, std::uint64_t> tombstones_;
  std::uint64_t generation_ = 0;
  support::ByteOrder origin_ = support::ByteOrder::kBigEndian;
};

}  // namespace ars::hpcm
