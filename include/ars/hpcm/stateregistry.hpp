#pragma once
// HPCM memory-state registry.
//
// HPCM is "a precompiler aided middleware": the precompiler identifies the
// live data of a process and emits collection/restoration code around
// poll-points.  Here, applications register their live variables by name in
// a StateRegistry; encode() produces the machine-independent representation
// (fixed-width, big-endian, type-tagged) that crosses heterogeneous hosts,
// and decode() rebuilds it on any architecture.
//
// "Opaque" entries model bulk memory regions (the tree nodes, matrices...)
// whose *transfer cost* matters but whose bytes need not be materialized in
// the simulation: they carry a logical size that the migration engine
// charges to the network.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ars/support/byteorder.hpp"
#include "ars/support/expected.hpp"

namespace ars::hpcm {

enum class EntryType : std::uint8_t {
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kDoubleVector = 4,
  kIntVector = 5,
  kOpaque = 6,
};

class StateRegistry {
 public:
  void set_int(const std::string& name, std::int64_t value);
  void set_double(const std::string& name, double value);
  void set_string(const std::string& name, std::string value);
  void set_doubles(const std::string& name, std::vector<double> values);
  void set_ints(const std::string& name, std::vector<std::int64_t> values);
  /// Register a bulk region of `logical_bytes` (content not materialized).
  void set_opaque(const std::string& name, std::uint64_t logical_bytes);

  [[nodiscard]] support::Expected<std::int64_t> get_int(
      const std::string& name) const;
  [[nodiscard]] support::Expected<double> get_double(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::string> get_string(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::vector<double>> get_doubles(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::vector<std::int64_t>> get_ints(
      const std::string& name) const;
  [[nodiscard]] support::Expected<std::uint64_t> get_opaque_size(
      const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.contains(name);
  }
  void erase(const std::string& name) { entries_.erase(name); }
  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Encoded (wire) size of the typed entries, in bytes.
  [[nodiscard]] std::uint64_t encoded_bytes() const;
  /// Total logical size of opaque bulk regions.
  [[nodiscard]] std::uint64_t opaque_bytes() const;
  /// Everything a migration must move: encoded + opaque.
  [[nodiscard]] std::uint64_t total_transfer_bytes() const {
    return encoded_bytes() + opaque_bytes();
  }

  /// Canonical machine-independent serialization.  `origin` is recorded in
  /// the header for diagnostics; the representation itself is always
  /// big-endian fixed-width.
  [[nodiscard]] std::vector<std::byte> encode(
      support::ByteOrder origin = support::ByteOrder::kBigEndian) const;

  [[nodiscard]] static support::Expected<StateRegistry> decode(
      std::span<const std::byte> wire);

  /// Byte order recorded by the encoding host (after decode()).
  [[nodiscard]] support::ByteOrder origin() const noexcept { return origin_; }

 private:
  struct Entry {
    EntryType type = EntryType::kInt;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    std::vector<double> doubles;
    std::vector<std::int64_t> ints;
    std::uint64_t opaque_size = 0;
  };

  [[nodiscard]] support::Expected<const Entry*> find_typed(
      const std::string& name, EntryType type) const;

  std::map<std::string, Entry> entries_;
  support::ByteOrder origin_ = support::ByteOrder::kBigEndian;
};

}  // namespace ars::hpcm
