#pragma once
// Declarative fault plans for the chaos subsystem (ars::chaos layer 1).
//
// A FaultPlan is an ordered list of FaultSpecs, each describing one fault
// in sim time: control-plane message loss/duplication/extra-delay, link
// bandwidth degradation, full network partitions with heal, host crash &
// restart, CPU slowdown, monitor stall, and registry crash + cold restart.
// Plans are built programmatically (fluent builder) or loaded from a strict
// JSON file; both forms round-trip through to_json()/from_json(), and the
// shipped plans/*.json files are exactly the builtins' serialization.
//
// A plan is pure data — the FaultInjector turns it into scheduled engine
// events and a net::FaultPolicy.  Everything that consumes randomness does
// so from an explicit seed, so (plan, seed) fully determines a run.

#include <string>
#include <string_view>
#include <vector>

#include "ars/support/expected.hpp"

namespace ars::chaos {

enum class FaultKind {
  kMessageLoss,       // control datagrams dropped with `probability`
  kMessageDuplicate,  // delivered twice with `probability`
  kMessageDelay,      // `delay` extra seconds with `probability`
  kLinkDegrade,       // link bandwidth multiplied by `factor`
  kPartition,         // traffic between side A and side B fully cut
  kHostCrash,         // host dies at `at`; reboots at `until` if set
  kHostCrashRate,     // exponential crash arrivals with mean `mtbf` on each
                      // matching host inside [at, until); each crash
                      // reboots after `delay` seconds (0 = stays down) —
                      // the failure driver of the checkpoint-waste campaign
  kCpuSlowdown,       // host CPU speed multiplied by `factor`
  kMonitorStall,      // the host's monitor stops heartbeating
  kRegistryCrash,     // registry process dies; cold restart at `until`
  // Migration-window faults: triggered by a live migration transaction
  // entering the named `phase` (init/eager/ack/restore) inside [at, until),
  // not at a wall-clock instant.
  kMigrationDestCrash,  // crash the destination host when a migration
                        // targeting it reaches `phase`; reboot after `delay`
                        // seconds if delay > 0
  kMigrationLinkCut,    // sever the source<->destination link when a
                        // migration reaches `phase`; heal after `delay`
                        // seconds (or at `until` when delay == 0)
  kMigrationPrecopyStall,  // stall every pre-copy round entered inside
                           // [at, until) by `delay` seconds — drives the
                           // round into its timeout and the abort path
  // Resize-window faults: aimed at malleable jobs' grow/shrink
  // transactions instead of migrations.
  kResizeStall,        // stall every resize `phase` ("spawn" |
                       // "redistribute") entered inside [at, until) by
                       // `delay` seconds — drives the phase into timeout
  kResizeTargetCrash,  // crash one spawn-target host when an expand
                       // reaches `phase` inside [at, until) with
                       // `probability`; reboot after `delay` seconds
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;
[[nodiscard]] support::Expected<FaultKind> fault_kind_from_string(
    std::string_view text);

struct FaultSpec {
  FaultKind kind = FaultKind::kMessageLoss;
  double at = 0.0;      // activation, sim seconds
  double until = -1.0;  // deactivation; negative = permanent
  /// Primary host (crash/slowdown/stall) or the message source side /
  /// partition side A for link-level faults.  "*" matches any host.
  std::string host_a = "*";
  /// Peer host: message destination side / partition side B.
  std::string host_b = "*";
  double probability = 1.0;  // per-message, for the message faults
  double factor = 1.0;       // bandwidth or CPU multiplier
  double delay = 0.0;        // extra seconds, for kMessageDelay
  /// Migration-window faults only: the transaction phase ("init",
  /// "precopy", "eager", "ack", "restore") that triggers the fault.  Empty
  /// matches every phase.
  std::string phase;
  /// kHostCrashRate only: mean time between crashes per matching host.
  double mtbf = 0.0;

  [[nodiscard]] bool permanent() const noexcept { return until < 0.0; }
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::string name) : name_(std::move(name)) {}

  // -- fluent builder -------------------------------------------------------
  FaultPlan& add(FaultSpec spec);
  FaultPlan& message_loss(double at, double until, double probability,
                          std::string src = "*", std::string dst = "*");
  FaultPlan& message_duplicate(double at, double until, double probability,
                               std::string src = "*", std::string dst = "*");
  FaultPlan& message_delay(double at, double until, double probability,
                           double delay, std::string src = "*",
                           std::string dst = "*");
  FaultPlan& link_degrade(double at, double until, double factor,
                          std::string a = "*", std::string b = "*");
  FaultPlan& partition(double at, double heal_at, std::string side_a,
                       std::string side_b = "*");
  FaultPlan& host_crash(double at, double restart_at, std::string host);
  /// Exponential crash arrivals (mean `mtbf` seconds between crashes) on
  /// each host matching `host` inside [at, until); every crash reboots
  /// `reboot_after` seconds later (0 = the host stays down).
  FaultPlan& host_crash_rate(double at, double until, double mtbf,
                             std::string host = "*",
                             double reboot_after = 30.0);
  FaultPlan& cpu_slowdown(double at, double until, double factor,
                          std::string host);
  FaultPlan& monitor_stall(double at, double until, std::string host);
  FaultPlan& registry_crash(double at, double restart_at);
  /// Crash the destination host of any migration that reaches `phase`
  /// inside [at, until) with `probability`; the host reboots `reboot_after`
  /// seconds later (0 = stays down).  `dest` = "*" matches any destination.
  FaultPlan& migration_dest_crash(double at, double until, std::string phase,
                                  double probability = 1.0,
                                  double reboot_after = 0.0,
                                  std::string dest = "*");
  /// Sever the source<->destination link of any migration reaching `phase`
  /// inside [at, until) with `probability`; the cut heals after
  /// `heal_after` seconds.
  FaultPlan& migration_link_cut(double at, double until, std::string phase,
                                double probability = 1.0,
                                double heal_after = 5.0,
                                std::string dest = "*");
  /// Stall every pre-copy round started inside [at, until) by
  /// `stall_seconds` — long stalls drive the round into its timeout and
  /// exercise the abort-to-source path with rounds already shipped.
  FaultPlan& migration_precopy_stall(double at, double until,
                                     double stall_seconds);
  /// Stall every resize `phase` ("spawn" | "redistribute") entered inside
  /// [at, until) by `stall_seconds` — long stalls drive the phase into its
  /// timeout and exercise the abort/rollback paths.
  FaultPlan& resize_stall(double at, double until, std::string phase,
                          double stall_seconds);
  /// Crash one spawn-target host when an expand reaches `phase` (usually
  /// "spawn") inside [at, until) with `probability`; the host reboots
  /// `reboot_after` seconds later (0 = stays down).
  FaultPlan& resize_target_crash(double at, double until,
                                 std::string phase = "spawn",
                                 double probability = 1.0,
                                 double reboot_after = 0.0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }

  /// Latest instant at which any fault activates or heals — after this the
  /// cluster is undisturbed (lease-convergence checks wait this out).
  [[nodiscard]] double last_disruption_end() const noexcept;

  // -- JSON (strict; parsed with the obs parser) ----------------------------
  /// {"name": "...", "faults": [{"kind": "message_loss", "at": 40, ...}]}
  /// Unknown keys, unknown kinds, and missing "kind"/"at" are errors.
  [[nodiscard]] static support::Expected<FaultPlan> from_json(
      std::string_view text);
  [[nodiscard]] std::string to_json() const;

  // -- shipped plans --------------------------------------------------------
  /// Builtin plan by name (also shipped as plans/<name>.json); error when
  /// unknown — see builtin_names().
  [[nodiscard]] static support::Expected<FaultPlan> builtin(
      const std::string& name);
  [[nodiscard]] static std::vector<std::string> builtin_names();

 private:
  std::string name_;
  std::vector<FaultSpec> specs_;
};

}  // namespace ars::chaos
