#pragma once
// Black-box flight recorder (tentpole part 3): when a chaos run trips an
// invariant, mismatches on replay, or hits a sabotage check, everything
// needed for the post-mortem is dumped into ONE self-contained JSON bundle:
// the scenario options and seed, the fault plan, the violations, the full
// trace ring (JSONL), and the metrics snapshot.  Because one ScenarioOptions
// value fully determines a run, the bundle doubles as a reproducer:
// replay_bundle() re-runs the recorded scenario and checks that it
// reproduces the same trace hash and the same violations.

#include <cstdint>
#include <string>
#include <string_view>

#include "ars/chaos/scenario.hpp"
#include "ars/obs/json.hpp"
#include "ars/support/expected.hpp"

namespace ars::chaos {

/// What tripped the recorder ("invariant-violation", "replay-mismatch",
/// "watchdog", ...) plus free-form detail.
struct FlightTrigger {
  std::string kind;
  std::string detail;
};

/// Assemble the post-mortem bundle for a finished (failed) run.  The report
/// must carry its trace (keep_trace, or any violation — run_scenario keeps
/// the evidence automatically on failure).
[[nodiscard]] obs::JsonValue make_bundle(const ScenarioOptions& options,
                                         const ScenarioReport& report,
                                         const FlightTrigger& trigger);

/// Serialize `bundle` to `path` (parent directories are created).
[[nodiscard]] support::Status write_bundle(const std::string& path,
                                           const obs::JsonValue& bundle);

/// Outcome of re-running a bundle's recorded scenario.
struct BundleReplay {
  FlightTrigger trigger;                 // as recorded
  std::uint64_t recorded_trace_hash = 0;
  std::string recorded_violations;       // InvariantReport::summary()
  ScenarioReport report;                 // the fresh run
  bool trace_identical = false;
  bool violations_match = false;

  /// The bundle reproduces: same trace bytes, same violation summary.
  [[nodiscard]] bool reproduced() const noexcept {
    return trace_identical && violations_match;
  }
};

/// Parse a bundle document, reconstruct its ScenarioOptions (including the
/// embedded fault plan), re-run the scenario, and compare.
[[nodiscard]] support::Expected<BundleReplay> replay_bundle(
    std::string_view bundle_json);

}  // namespace ars::chaos
