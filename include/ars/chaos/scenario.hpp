#pragma once
// Standard chaos scenario (ars::chaos layer 3, shared by the campaign
// runner and the tests): a small cluster running several checkpointing
// applications under a CPU hog (to provoke real migrations), with a
// FaultPlan armed against it and the invariants checked at the horizon.
//
// One ScenarioOptions value — cluster shape, seed, plan — fully determines
// the run, including the trace: run_scenario(options) twice and the
// returned trace hashes are identical.

#include <cstdint>
#include <string>

#include "ars/chaos/faultplan.hpp"
#include "ars/chaos/injector.hpp"
#include "ars/chaos/invariants.hpp"

namespace ars::chaos {

struct ScenarioOptions {
  int hosts = 4;  // ws1..wsN; the registry lives on ws1
  int apps = 3;   // checkpointing counter apps, staggered starts
  int iterations = 60;
  int checkpoint_every = 10;
  double horizon = 700.0;
  std::uint64_t seed = 1;
  FaultPlan plan;
  /// Deliberately breaks the rescheduler (the lease sweeper never fires) to
  /// prove the invariant checker catches a broken build — crash faults then
  /// strand their applications forever.
  bool sabotage_lease_expiry = false;
  /// Deliberately breaks the migration transaction (aborts skip the
  /// roll-back to source-side execution) to prove the no-lost-process
  /// invariant catches a broken protocol.
  bool sabotage_migration_rollback = false;
  /// CPU hog on ws1 so the run exercises real migrations, not just faults.
  bool with_load = true;
  /// Copy the full JSON-lines trace into the report (hashing is always on).
  bool keep_trace = false;
  /// Force the registry's pre-index full-table scan (the reference path).
  bool legacy_scan = false;
  /// Produce the per-host audit trail on every decision.  Turn OFF for
  /// indexed-vs-legacy equivalence runs: the audit forces the legacy scan,
  /// and without it the traces of both modes are directly comparable.
  bool audit_decisions = true;
  /// Monitors send compact lease renewals between full-status keyframes.
  bool delta_heartbeats = false;
  /// Malleable (resizable) jobs riding alongside the checkpointing apps;
  /// > 0 also enables the registry's resize planner, so the run exercises
  /// grow/shrink transactions that resize-window faults can hit.
  int malleable_jobs = 0;
  /// Deliberately leaks freshly spawned ranks on a failed redistribution
  /// (no rollback) to prove the no-lost-rank invariant catches it.
  bool sabotage_resize_rollback = false;
  /// Iterative pre-copy migration: the apps carry a block-structured state
  /// large enough for multi-round pre-copy (plus an entry erased mid-run to
  /// exercise tombstones), and the middleware ships dirty deltas in the
  /// background instead of stop-and-copy.
  bool precopy = false;
  /// Checkpoint scheduling strategy driven from poll-points ("periodic" |
  /// "cooperative"; empty keeps the legacy every-N-iterations checkpoint).
  /// DESIGN.md §17: checkpoints flow through the shared store and the
  /// waste ledger; "cooperative" also enables the registry's I/O scheduler.
  std::string ckpt_strategy;
  /// Per-host MTBF assumed by the Young/Daly interval (seconds).
  double ckpt_mtbf = 300.0;
  /// Aggregate shared-store bandwidth in MB/s (0 = unlimited): the
  /// interference knob — N concurrent writers share this fluid-flow.
  double ckpt_aggregate_mbps = 0.0;
  /// Opaque state each app drags along (MB): sizes the checkpoint writes.
  double ckpt_state_mb = 0.0;
  /// Deliberately breaks the store's atomic shadow-commit (an aborted
  /// write replaces the previous checkpoint, torn) to prove the
  /// no-torn-checkpoint invariant catches it.
  bool sabotage_torn_checkpoint = false;
};

struct ScenarioReport {
  InvariantReport invariants;
  std::uint64_t trace_hash = 0;  // FNV-1a of the full JSON-lines trace
  /// Captured when keep_trace is set OR any invariant was violated: a
  /// failing run always yields its black-box trace for the flight
  /// recorder, no re-run needed.
  std::string trace_jsonl;
  /// Metrics snapshot (MetricsRegistry::to_json), captured alongside the
  /// trace under the same rule.
  std::string metrics_json;
  std::uint64_t events_executed = 0;
  double final_time = 0.0;
  std::size_t migration_attempts = 0;
  std::size_t migrations_succeeded = 0;
  std::size_t migrations_aborted = 0;      // pre-commit, rolled back to source
  std::size_t migrations_rolled_back = 0;  // post-commit destination loss
  std::size_t precopy_rounds = 0;          // pre-copy rounds shipped, all txns
  std::size_t resizes_attempted = 0;   // terminal resize outcomes
  std::size_t resizes_committed = 0;
  std::size_t resizes_aborted = 0;
  std::size_t resizes_rolled_back = 0;  // partial-rollback expands
  long long ghost_ranks = 0;            // must stay 0 (no-lost-rank)
  FaultInjector::Stats faults;
  std::uint64_t messages_dropped = 0;  // network total (all reasons)
  // -- checkpoint I/O and failure waste (DESIGN.md §17) ----------------------
  std::size_t ckpt_commits = 0;    // shared-store writes that committed
  std::size_t ckpt_aborts = 0;     // in-flight writes dropped (crash/preempt)
  std::size_t ckpt_deferred = 0;   // cooperative defer verdicts honoured
  std::size_t ckpt_preempted = 0;  // cooperative preemptions suffered
  std::size_t torn_restores = 0;   // must stay 0 (no-torn-checkpoint)
  double waste_overhead_s = 0.0;   // store time burned on writes
  double waste_lost_work_s = 0.0;  // progress lost to crashes
  double waste_restart_s = 0.0;    // checkpoint read-back on relaunch
  [[nodiscard]] double waste_total_s() const noexcept {
    return waste_overhead_s + waste_lost_work_s + waste_restart_s;
  }
  /// Canonical decision log (registry::Registry::decision_log) and its
  /// FNV-1a digest — the byte-identical comparison for scan equivalence.
  std::size_t decisions = 0;
  std::uint64_t decision_log_hash = 0;

  [[nodiscard]] bool ok() const noexcept { return invariants.ok(); }
};

/// FNV-1a digest used for the byte-identical replay comparison.
[[nodiscard]] std::uint64_t fnv1a(const std::string& data) noexcept;

[[nodiscard]] ScenarioReport run_scenario(const ScenarioOptions& options);

}  // namespace ars::chaos
