#pragma once
// Invariant checker (ars::chaos layer 2): consumes the obs trace, the
// registry's soft state, the middleware's migration history, and the hosts'
// process tables after a run, and asserts the rescheduler's safety and
// liveness properties:
//
//   * exactly-once completion — every expected application emits exactly
//     one process.exit, and no name is ever live on two hosts at once;
//   * exactly-once migration — every successful migration in the
//     middleware history has exactly one migration.resumed trace event;
//   * lease convergence — hosts expected alive at the horizon are not
//     stuck `unavailable` after all faults healed;
//   * no stranded work — every restart parked on the registry's retry
//     list (no capacity at crash time) has drained by the horizon;
//   * deadlock watchdog — virtual time must not quiesce (empty event
//     queue) while expected applications are unfinished;
//   * no lost rank — every terminal resize outcome leaves zero ghost
//     ranks (spawned children alive outside membership), every aborted
//     resize restores the original world size, and no malleable job is
//     left unfinished (unless its root died) at the horizon;
//   * no lost process — every aborted or rolled-back migration leaves
//     exactly one live or restartable instance: the process finished,
//     is live on some host, is parked for relaunch in the middleware,
//     or sits on the registry's retry list.  An abort must never
//     silently destroy the application.
//   * no torn checkpoint — no relaunch ever restores an incomplete
//     checkpoint (a ckpt.torn_restore trace event): the shared store's
//     shadow-commit must make a crash mid-write keep the previous
//     complete checkpoint.
//
// The checker is read-only: run the scenario, then call check().

#include <string>
#include <vector>

#include "ars/core/runtime.hpp"

namespace ars::chaos {

struct Violation {
  std::string invariant;  // e.g. "exactly-once-finish"
  std::string subject;    // application or host name
  std::string detail;
};

struct InvariantReport {
  std::vector<Violation> violations;
  std::size_t apps_checked = 0;
  std::size_t exits_seen = 0;
  std::size_t migrations_succeeded = 0;
  std::size_t migrations_aborted = 0;      // pre-commit rollbacks to source
  std::size_t migrations_rolled_back = 0;  // post-commit destination loss
  std::size_t relaunches_seen = 0;
  std::size_t hosts_checked = 0;
  std::size_t resizes_checked = 0;  // terminal resize outcomes examined
  long long ghost_ranks = 0;        // leaked ranks found at outcome time
  std::size_t torn_restores = 0;    // incomplete checkpoints restored

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// One line per violation (or "ok"), for logs and gtest messages.
  [[nodiscard]] std::string summary() const;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(core::ReschedulerRuntime& runtime)
      : runtime_(&runtime) {}

  /// Expect `process_name` (the mpi-level name, e.g. "job1.0") to finish
  /// exactly once by the horizon.
  void expect_app(std::string process_name);
  /// Expect `host_name` to be lease-available at the horizon (do not call
  /// for hosts a permanent fault leaves dead).
  void expect_alive(std::string host_name);

  [[nodiscard]] InvariantReport check() const;

 private:
  core::ReschedulerRuntime* runtime_;
  std::vector<std::string> expected_apps_;
  std::vector<std::string> expected_alive_;
};

}  // namespace ars::chaos
