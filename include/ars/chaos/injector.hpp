#pragma once
// Fault injector (ars::chaos layer 1, execution half): turns a FaultPlan
// into scheduled engine events against a live ReschedulerRuntime and serves
// as the network's per-link FaultPolicy.
//
// Determinism: all randomness comes from one seeded Rng consumed in event
// order, and every activation/deactivation is a normal engine event — so
// (cluster config, plan, seed) fully determines the run, and a failing seed
// replays byte-identically.
//
// Lifetime: construct after the runtime, arm() before running, destroy
// before the runtime (the destructor cancels pending fault events and
// uninstalls the network policy).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ars/chaos/faultplan.hpp"
#include "ars/core/runtime.hpp"
#include "ars/net/network.hpp"
#include "ars/support/rng.hpp"

namespace ars::chaos {

class FaultInjector final : public net::FaultPolicy {
 public:
  struct Stats {
    std::uint64_t messages_dropped = 0;     // by loss faults + partitions
    std::uint64_t messages_duplicated = 0;  // extra copies injected
    std::uint64_t messages_delayed = 0;
    int host_crashes = 0;
    int host_restarts = 0;
    int cpu_slowdowns = 0;
    int monitor_stalls = 0;
    int registry_crashes = 0;
    int partitions = 0;
    int link_degrades = 0;
    int migration_dest_crashes = 0;  // destinations killed mid-transaction
    int migration_link_cuts = 0;     // src<->dst links severed mid-transfer
    int migration_precopy_stalls = 0;  // pre-copy rounds stalled to timeout
    int resize_stalls = 0;           // resize phases stalled toward timeout
    int resize_target_crashes = 0;   // spawn targets killed mid-expand
    int rate_crashes = 0;            // crashes from host_crash_rate arrivals
  };

  FaultInjector(core::ReschedulerRuntime& runtime, FaultPlan plan,
                std::uint64_t seed);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install the network policy and schedule every fault's activation and
  /// deactivation.  Must run before the faults' activation times; throws
  /// std::invalid_argument when a spec names an unknown host.
  void arm();

  // -- net::FaultPolicy -----------------------------------------------------
  PostVerdict on_post(const net::Message& message) override;
  double bandwidth_factor(const std::string& src,
                          const std::string& dst) override;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] double last_disruption_end() const noexcept {
    return plan_.last_disruption_end();
  }

 private:
  [[nodiscard]] bool spec_active(const FaultSpec& spec) const;
  /// Directional source->destination match for the message faults.
  [[nodiscard]] static bool direction_matches(const FaultSpec& spec,
                                              const std::string& src,
                                              const std::string& dst);
  /// Symmetric cut/degrade match for partitions and link faults.
  [[nodiscard]] static bool link_matches(const FaultSpec& spec,
                                         const std::string& a,
                                         const std::string& b);
  void activate(std::size_t index);
  void deactivate(std::size_t index);
  void trace_fault(const FaultSpec& spec, const char* phase);
  /// Migration-window faults: called (via the middleware's phase listener)
  /// whenever a live transaction enters a phase; schedules the matching
  /// reactions as zero-delay engine events (listeners must not reenter the
  /// migration engine inline).
  void on_migration_phase(const hpcm::PhaseEvent& event);
  /// Resize-window faults: called from the malleable engine's phase
  /// listener; crashes a spawn target as a zero-delay engine event.
  void on_resize_phase(const malleable::ResizePhaseEvent& event);
  void crash_resize_target(const std::string& host, double reboot_after);
  /// kHostCrashRate: pre-draw every exponential crash arrival in
  /// [at, until) per matching host at arm() time (stable rng order) and
  /// schedule them as plain engine events.
  void schedule_crash_arrivals(const FaultSpec& spec);
  void rate_crash(const std::string& host, double reboot_after);
  void crash_migration_destination(const std::string& dest,
                                   double reboot_after);
  void cut_migration_link(const std::string& a, const std::string& b,
                          double heal_after);

  /// An active dynamic link cut between a migration's source and
  /// destination (symmetric, like a partition).
  struct LinkCut {
    std::string a;
    std::string b;
  };

  core::ReschedulerRuntime* runtime_;
  FaultPlan plan_;
  support::Rng rng_;
  Stats stats_;
  std::vector<sim::Engine::EventHandle> events_;
  std::map<std::string, double> saved_cpu_speed_;
  /// Hosts currently down (scheduled crash or migration-triggered) — makes
  /// crash/restart idempotent when a timed host_crash and a
  /// migration_dest_crash hit the same machine.
  std::set<std::string> down_hosts_;
  std::vector<LinkCut> link_cuts_;
  bool armed_ = false;
  bool phase_listener_installed_ = false;
  bool resize_listener_installed_ = false;
};

}  // namespace ars::chaos
