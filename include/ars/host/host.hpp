#pragma once
// A simulated workstation: CPU, load averages, memory, disk, process table,
// temp-file store, and the counters the monitor's sensors read.  The paper's
// testbed node (Sun Blade 100: 500 MHz UltraSPARC-IIe, 128 MB) is the
// reference configuration.

#include <cstdint>
#include <memory>
#include <string>

#include "ars/host/accounts.hpp"
#include "ars/host/cpu.hpp"
#include "ars/host/loadavg.hpp"
#include "ars/host/process.hpp"
#include "ars/sim/engine.hpp"
#include "ars/support/byteorder.hpp"

namespace ars::host {

struct HostSpec {
  std::string name;
  /// CPU speed relative to the reference workstation (1.0 = Sun Blade 100).
  double cpu_speed = 1.0;
  std::uint64_t memory_bytes = 128ULL * 1024 * 1024;
  std::uint64_t disk_bytes = 20ULL * 1024 * 1024 * 1024;
  support::ByteOrder byte_order = support::ByteOrder::kBigEndian;
  std::string os = "SunOS 5.8";
  std::string ip_address;  // filled in by the network when attached
};

class Host {
 public:
  Host(sim::Engine& engine, HostSpec spec);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const HostSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return spec_.name;
  }
  [[nodiscard]] sim::Engine& engine() const noexcept { return *engine_; }

  [[nodiscard]] CpuModel& cpu() noexcept { return cpu_; }
  [[nodiscard]] const CpuModel& cpu() const noexcept { return cpu_; }
  [[nodiscard]] LoadAverage& loadavg() noexcept { return loadavg_; }
  [[nodiscard]] const LoadAverage& loadavg() const noexcept {
    return loadavg_;
  }
  [[nodiscard]] ProcessTable& processes() noexcept { return processes_; }
  [[nodiscard]] const ProcessTable& processes() const noexcept {
    return processes_;
  }
  [[nodiscard]] MemoryAccount& memory() noexcept { return memory_; }
  [[nodiscard]] const MemoryAccount& memory() const noexcept {
    return memory_;
  }
  [[nodiscard]] DiskAccount& disk() noexcept { return disk_; }
  [[nodiscard]] const DiskAccount& disk() const noexcept { return disk_; }
  [[nodiscard]] KvStore& tmpfiles() noexcept { return tmpfiles_; }

  /// CPU utilization over the window ending now (busy fraction in [0,1]).
  /// Backed by the cumulative busy-time integral, so any window works.
  [[nodiscard]] double cpu_utilization(double window) noexcept;

  /// Idle percentage as `vmstat` reports it (100 - 100*utilization), over
  /// the sensor's sampling window.
  [[nodiscard]] double cpu_idle_percent(double window) noexcept {
    return 100.0 * (1.0 - cpu_utilization(window));
  }

  /// Ambient processes beyond the registered table (system daemons etc.),
  /// included in the `ps`-style process-count sensor.
  void set_ambient_process_count(int count) noexcept {
    ambient_processes_ = count;
  }
  [[nodiscard]] int ambient_process_count() const noexcept {
    return ambient_processes_;
  }
  [[nodiscard]] int total_process_count() const noexcept {
    return static_cast<int>(processes_.count()) + ambient_processes_;
  }

  /// Open IPv4 sockets in ESTABLISHED state (`netstat` sensor); the network
  /// layer and traffic generators adjust this.
  void adjust_established_sockets(int delta) noexcept {
    established_sockets_ += delta;
  }
  void set_established_sockets(int value) noexcept {
    established_sockets_ = value;
  }
  [[nodiscard]] int established_sockets() const noexcept {
    return established_sockets_;
  }

 private:
  sim::Engine* engine_;
  HostSpec spec_;
  CpuModel cpu_;
  LoadAverage loadavg_;
  ProcessTable processes_;
  MemoryAccount memory_;
  DiskAccount disk_;
  KvStore tmpfiles_;
  int ambient_processes_ = 0;
  int established_sockets_ = 0;
};

}  // namespace ars::host
