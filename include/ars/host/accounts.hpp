#pragma once
// Memory and disk accounting used by monitor sensors and by the registry's
// resource-requirement checks (application schema).

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace ars::host {

/// Simple reserve/release account (physical or virtual memory).
class MemoryAccount {
 public:
  explicit MemoryAccount(std::uint64_t total_bytes) : total_(total_bytes) {}

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t available() const noexcept {
    return total_ - used_;
  }
  [[nodiscard]] double percent_available() const noexcept {
    return total_ == 0 ? 0.0
                       : 100.0 * static_cast<double>(available()) /
                             static_cast<double>(total_);
  }

  /// Reserve bytes; returns false (no change) if not enough is available.
  bool reserve(std::uint64_t bytes) noexcept {
    if (bytes > available()) {
      return false;
    }
    used_ += bytes;
    return true;
  }

  void release(std::uint64_t bytes) noexcept {
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }

 private:
  std::uint64_t total_;
  std::uint64_t used_ = 0;
};

/// Disk usage per mount point (the monitor "gathers the disk usage
/// parameters of the various mount points", §3.1).
class DiskAccount {
 public:
  void add_mount(const std::string& mount_point, std::uint64_t total_bytes) {
    mounts_.emplace(mount_point, MemoryAccount{total_bytes});
  }

  [[nodiscard]] MemoryAccount& mount(const std::string& mount_point) {
    const auto it = mounts_.find(mount_point);
    if (it == mounts_.end()) {
      throw std::out_of_range("unknown mount point: " + mount_point);
    }
    return it->second;
  }
  [[nodiscard]] const MemoryAccount& mount(
      const std::string& mount_point) const {
    const auto it = mounts_.find(mount_point);
    if (it == mounts_.end()) {
      throw std::out_of_range("unknown mount point: " + mount_point);
    }
    return it->second;
  }

  [[nodiscard]] bool has_mount(const std::string& mount_point) const {
    return mounts_.contains(mount_point);
  }

  [[nodiscard]] std::uint64_t total_available() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& [name, account] : mounts_) {
      sum += account.available();
    }
    return sum;
  }

  [[nodiscard]] const std::map<std::string, MemoryAccount>& mounts() const {
    return mounts_;
  }

 private:
  std::map<std::string, MemoryAccount> mounts_;
};

/// Small host-local key/value store standing in for the filesystem temp
/// files the commander and migrating process exchange (paper §3.3).
class KvStore {
 public:
  void write(const std::string& key, std::string value) {
    data_[key] = std::move(value);
  }
  [[nodiscard]] bool contains(const std::string& key) const {
    return data_.contains(key);
  }
  [[nodiscard]] std::string read(const std::string& key) const {
    const auto it = data_.find(key);
    if (it == data_.end()) {
      throw std::out_of_range("no temp file: " + key);
    }
    return it->second;
  }
  void erase(const std::string& key) { data_.erase(key); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

 private:
  std::map<std::string, std::string> data_;
};

}  // namespace ars::host
