#pragma once
// Per-host process table: pid allocation, registration of migration-enabled
// processes, and user-defined-signal delivery — the mechanism the paper's
// commander uses to tell a process to migrate.

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ars/sim/task.hpp"

namespace ars::host {

using Pid = int;

/// The "user-defined signal" (paper §3.3); value mirrors POSIX SIGUSR1.
inline constexpr int kSigMigrate = 10;

struct ProcessInfo {
  Pid pid = 0;
  std::string name;
  double start_time = 0.0;
  bool migration_enabled = false;
  std::string schema_name;  // application-schema key; empty if none
  std::function<void(int)> signal_handler;
  std::set<int> pending_signals;
};

class ProcessTable {
 public:
  /// Register a process and return its pid.  `start_time` plays the role of
  /// the pid-file timestamp the paper's selector reads.
  Pid register_process(std::string name, double start_time,
                       bool migration_enabled = false,
                       std::string schema_name = {});

  void deregister(Pid pid);

  [[nodiscard]] ProcessInfo* find(Pid pid);
  [[nodiscard]] const ProcessInfo* find(Pid pid) const;

  /// Deliver a signal: runs the handler if installed, otherwise marks it
  /// pending for `consume_signal`.  Returns false for unknown pids.
  bool raise(Pid pid, int signo);

  /// Poll-point style consumption: returns true (and clears) if pending.
  bool consume_signal(Pid pid, int signo);

  void set_signal_handler(Pid pid, std::function<void(int)> handler);

  [[nodiscard]] std::size_t count() const noexcept { return table_.size(); }

  /// Snapshot of all registered processes (for the registry's selector).
  [[nodiscard]] std::vector<ProcessInfo> snapshot() const;

 private:
  Pid next_pid_ = 1000;
  std::map<Pid, ProcessInfo> table_;
};

}  // namespace ars::host
