#pragma once
// UNIX-style exponentially damped load averages.
//
// Like the kernels the paper measured with `vmstat`, the run-queue length is
// sampled on a fixed period (5 s by default) and folded into 1-, 5- and
// 15-minute EMAs: load := load * e + n * (1 - e), with e = exp(-period/T).

#include <algorithm>
#include <array>
#include <cmath>

#include "ars/host/cpu.hpp"
#include "ars/sim/engine.hpp"

namespace ars::host {

class LoadAverage {
 public:
  LoadAverage(sim::Engine& engine, const CpuModel& cpu,
              double sample_period = 5.0);
  LoadAverage(const LoadAverage&) = delete;
  LoadAverage& operator=(const LoadAverage&) = delete;
  ~LoadAverage() { stop(); }

  /// Begin periodic sampling (idempotent).
  void start();
  void stop();

  [[nodiscard]] double one_minute() const noexcept { return loads_[0]; }
  [[nodiscard]] double five_minute() const noexcept { return loads_[1]; }
  [[nodiscard]] double fifteen_minute() const noexcept { return loads_[2]; }
  [[nodiscard]] double sample_period() const noexcept {
    return sample_period_;
  }

  /// Extra runnable entities outside the CPU model (daemons, interactive
  /// shells); lets experiments shape the baseline the paper observed
  /// (~0.26 on an otherwise idle workstation).  The averages are seeded to
  /// the ambient level: the workstation has been up for a while.
  void set_ambient_runnable(double value) noexcept {
    ambient_ = value;
    for (double& load : loads_) {
      load = std::max(load, value);
    }
  }
  [[nodiscard]] double ambient_runnable() const noexcept { return ambient_; }

 private:
  void sample();

  sim::Engine* engine_;
  const CpuModel* cpu_;
  double sample_period_;
  std::array<double, 3> decay_{};
  std::array<double, 3> loads_{};
  double ambient_ = 0.0;
  double last_job_seconds_ = 0.0;
  bool running_ = false;
  sim::Engine::EventHandle timer_;
};

}  // namespace ars::host
