#pragma once
// Processor-sharing CPU model.
//
// Jobs submit `work` in *reference-CPU seconds*.  A host of speed `s` running
// `n` jobs gives each job rate s/n, matching an egalitarian UNIX scheduler at
// the timescale the paper's metrics observe.  Run-queue length feeds the
// load-average EMA, and cumulative busy time feeds the utilization meter.

#include <coroutine>
#include <vector>

#include "ars/sim/engine.hpp"
#include "ars/support/ringbuffer.hpp"

namespace ars::host {

class CpuModel {
 public:
  CpuModel(sim::Engine& engine, double speed);
  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;
  ~CpuModel();

  /// Awaitable that completes after `work` reference-seconds of CPU time.
  /// Destroying the awaiter (fiber kill / migration) withdraws the job.
  class ComputeAwaiter {
   public:
    ComputeAwaiter(CpuModel& cpu, double work) noexcept
        : cpu_(&cpu), work_(work) {}
    ComputeAwaiter(const ComputeAwaiter&) = delete;
    ComputeAwaiter& operator=(const ComputeAwaiter&) = delete;
    ~ComputeAwaiter();

    [[nodiscard]] bool await_ready() const noexcept { return work_ <= 0.0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

   private:
    friend class CpuModel;
    CpuModel* cpu_;
    double work_;
    std::coroutine_handle<> handle_;
    double remaining_ = 0.0;
    bool registered_ = false;
    bool completed_ = false;
    sim::Engine::EventHandle resume_event_;
  };

  [[nodiscard]] ComputeAwaiter compute(double work) noexcept {
    return ComputeAwaiter{*this, work};
  }

  /// Number of runnable jobs right now (the instantaneous run-queue length).
  [[nodiscard]] std::size_t runnable_count() const noexcept {
    return jobs_.size();
  }

  /// Total busy (non-idle) CPU time accumulated up to the current instant.
  [[nodiscard]] double cumulative_busy() const noexcept;

  /// Integral of the run-queue length over time (job-seconds) up to now;
  /// the load average samples its rate, which is alias-free for periodic
  /// workloads (unlike point sampling).
  [[nodiscard]] double cumulative_job_seconds() const noexcept;

  /// Busy time that fell inside [t0, t1], including any ongoing busy period.
  /// History is retained for `history_retention()` seconds.
  [[nodiscard]] double busy_between(double t0, double t1) const noexcept;

  [[nodiscard]] double history_retention() const noexcept {
    return history_retention_;
  }
  void set_history_retention(double seconds) noexcept {
    history_retention_ = seconds;
  }

  [[nodiscard]] double speed() const noexcept { return speed_; }

  /// Change the effective speed mid-run (chaos CPU slowdown / thermal
  /// throttling).  In-flight jobs keep their accrued progress and finish at
  /// the new rate.
  void set_speed(double speed);

  [[nodiscard]] sim::Engine& engine() const noexcept { return *engine_; }

 private:
  struct BusySegment {
    double begin = 0.0;
    double end = 0.0;
  };

  void advance();
  void record_busy(double begin, double end);
  void reschedule_completion();
  void add_job(ComputeAwaiter* job);
  void remove_job(ComputeAwaiter* job);
  void on_completion_event();

  sim::Engine* engine_;
  double speed_;
  std::vector<ComputeAwaiter*> jobs_;
  support::RingBuffer<BusySegment> busy_segments_;
  double history_retention_ = 3600.0;
  double last_update_ = 0.0;
  double busy_accum_ = 0.0;
  double job_seconds_ = 0.0;
  sim::Engine::EventHandle completion_event_;
};

}  // namespace ars::host
