#pragma once
// Background workload generators used by the experiments: the "additional
// application, which causes a dramatic load increase" of §5.2 and the
// competing load on workstations 1 and 3 of Table 2.

#include <string>
#include <vector>

#include "ars/host/host.hpp"
#include "ars/sim/task.hpp"

namespace ars::host {

/// CPU load generator: `threads` runnable loops, each burning CPU until the
/// duration elapses (or forever if duration <= 0).  One thread raises the
/// 1-minute load average toward ~1, two toward ~2, and so on.
class CpuHog {
 public:
  struct Options {
    int threads = 1;
    double duration = -1.0;        // seconds of wall time; <0 means unbounded
    double slice = 1.0;            // compute-chunk granularity (ref-seconds)
    std::string name = "cpu_hog";
    int ambient_process_delta = 0;  // extra `ps` processes to simulate
  };

  CpuHog(Host& target, Options options);
  ~CpuHog() { stop(); }
  CpuHog(const CpuHog&) = delete;
  CpuHog& operator=(const CpuHog&) = delete;

  /// Begin generating load (idempotent).
  void start();

  /// Kill all generator threads and undo process-count adjustments.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  [[nodiscard]] sim::Task<> worker(double until);

  Host* host_;
  Options options_;
  std::vector<sim::Fiber> fibers_;
  std::vector<Pid> pids_;
  bool running_ = false;
};

/// Duty-cycle load generator: keeps the CPU busy a fixed fraction of the
/// time (interactive daemons, cron jobs).  A 26 % duty cycle reproduces the
/// paper's idle-workstation baseline (load average ~0.256, CPU ~26 %).
class DutyCycleHog {
 public:
  struct Options {
    double duty = 0.26;    // busy fraction in [0, 1]
    double period = 1.0;   // seconds per on/off cycle
    std::string name = "ambient";
  };

  DutyCycleHog(Host& target, Options options);
  ~DutyCycleHog() { stop(); }
  DutyCycleHog(const DutyCycleHog&) = delete;
  DutyCycleHog& operator=(const DutyCycleHog&) = delete;

  void start();
  void stop();

 private:
  [[nodiscard]] sim::Task<> worker();

  Host* host_;
  Options options_;
  sim::Fiber fiber_;
  bool running_ = false;
};

}  // namespace ars::host
