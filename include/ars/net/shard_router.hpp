#pragma once
// Cross-shard datagram routing for the sharded simulation (ISSUE 7).
//
// Each shard owns one Network (its intra-shard switched Ethernet, default
// 0.0001 s latency); shards are connected by an inter-domain fabric with a
// higher one-way latency.  That fabric latency doubles as the conservative
// lookahead bound of the shard group: a datagram posted at source time t
// arrives at t + cross_latency >= t + lookahead, so exchanging messages at
// the epoch barriers never delivers into a peer's past (sim/shard.hpp).
//
// The router holds the host -> shard map.  Network::post() keeps its local
// fast path (destination attached to the same network: bit-identical to the
// unsharded build); only when the destination is foreign does it consult the
// router, apply the source-side fault verdict, and forward.  The destination
// shard's network finishes the delivery with deliver_local() — endpoint
// lookup, net.recv stamp on the *destination's* tracer, drop accounting —
// on the destination's own thread.
//
// Cross-shard datagrams pay the fabric latency but not fluid bandwidth
// sharing: the control plane's messages are hundreds of bytes, far below
// the regime where NIC contention matters, and modeling them latency-only
// keeps each shard's bandwidth state thread-local.  Bulk transfer() across
// shards is not supported (unknown host, as before).
//
// Thread contract: build the map (attach/assign_host) before the run; it is
// read-only while epochs are in flight.  forward() runs on the source
// shard's worker; the delivery callback runs on the destination's.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ars/net/network.hpp"
#include "ars/sim/shard.hpp"

namespace ars::net {

class ShardRouter {
 public:
  struct Options {
    /// One-way latency of the inter-shard fabric, seconds.  Must be >= the
    /// shard group's lookahead (it is the natural bound to construct the
    /// group with).
    double cross_latency = 0.005;
  };

  explicit ShardRouter(sim::ShardGroup& group);
  ShardRouter(sim::ShardGroup& group, Options options);
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;
  ~ShardRouter();

  /// Wire shard `shard`'s network to the fabric: installs this router as the
  /// network's cross-shard hook and registers every host already attached to
  /// it (attach later hosts with assign_host).
  void attach(std::size_t shard, Network& network);

  /// Declare that `host` lives on `shard` (setup time only).
  void assign_host(const std::string& host, std::size_t shard);

  [[nodiscard]] std::optional<std::size_t> shard_of(
      const std::string& host) const;
  [[nodiscard]] double cross_latency() const noexcept {
    return options_.cross_latency;
  }
  [[nodiscard]] sim::ShardGroup& group() const noexcept { return *group_; }

  /// True when `host` is reachable through the fabric from `from_shard`
  /// (known, and on a different shard).
  [[nodiscard]] bool routes(const std::string& host,
                            std::size_t from_shard) const;

  /// Ship `copies` copies of `message` to its destination shard, arriving
  /// cross_latency + extra_delay after the source shard's current time.
  /// The caller (Network::post) has already applied the fault verdict.
  void forward(std::size_t src_shard, Message message, double extra_delay,
               int copies);

  /// Datagrams forwarded through the fabric so far (all sources).  Stable
  /// only while no epoch is in flight.
  [[nodiscard]] std::uint64_t forwarded() const;

 private:
  struct alignas(64) Counter {  // one writer per shard; avoid shared lines
    std::uint64_t value = 0;
  };

  sim::ShardGroup* group_;
  Options options_;
  std::vector<Network*> networks_;        // by shard id
  std::map<std::string, std::size_t> hosts_;  // host -> shard, frozen at run
  std::vector<Counter> forwarded_;        // by source shard
};

}  // namespace ars::net
