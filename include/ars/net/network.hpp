#pragma once
// Simulated workstation network.
//
// Model: full-duplex NICs of fixed capacity (default 100 Mb/s, the paper's
// switched Ethernet), fixed propagation latency, and fluid bandwidth
// sharing — an active transfer's rate is min(src TX capacity / src TX count,
// dst RX capacity / dst RX count), recomputed whenever the set of active
// transfers changes.  This captures the effect the paper's Table 2 hinges
// on: migrating toward a communication-busy workstation is slower.
//
// Two interfaces sit on top:
//   * transfer(src, dst, bytes)  — awaitable bulk move (MPI payloads, HPCM
//     state chunks); completes when the last byte lands.
//   * post(message)              — fire-and-forget datagram delivered into a
//     bound Endpoint's inbox (the rescheduler's XML/TCP control plane).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ars/host/host.hpp"
#include "ars/net/flowmeter.hpp"
#include "ars/obs/trace_ctx.hpp"
#include "ars/sim/channel.hpp"
#include "ars/sim/task.hpp"
#include "ars/sim/wait.hpp"

namespace ars::obs {
class MetricsRegistry;
class Tracer;
}  // namespace ars::obs

namespace ars::net {

class ShardRouter;

struct Message {
  std::string src_host;
  std::string dst_host;
  int dst_port = 0;
  std::string payload;           // wire content (XML for the control plane)
  std::uint64_t size_bytes = 0;  // defaults to payload size at post()
  double sent_at = 0.0;
  double delivered_at = 0.0;
  /// Causal context the payload's envelope carries (unset for untraced
  /// traffic).  Lets the network stamp net.send/net.recv instants without
  /// re-parsing the XML payload.
  obs::TraceCtx trace;
};

/// A bound (host, port): messages posted to it appear in `inbox`.
struct Endpoint {
  explicit Endpoint(sim::Engine& engine) : inbox(engine) {}
  sim::Channel<Message> inbox;
};

/// Per-link fault policy consulted by the network (chaos injection hook).
/// Implementations are not owned by the network; install with
/// Network::set_fault_policy and clear (nullptr) before destruction.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  struct PostVerdict {
    bool drop = false;        // discard the datagram entirely
    int duplicates = 0;       // extra copies delivered alongside the original
    double extra_delay = 0.0; // added seconds before the copy enters the NIC
  };

  /// Consulted once per post(); may advance internal (seeded) random state.
  virtual PostVerdict on_post(const Message& message) = 0;

  /// Bandwidth multiplier in [0, 1] applied to bulk transfers src -> dst.
  /// 0 stalls the transfer until the factor recovers (full partition); call
  /// Network::on_fault_change() whenever the answer changes over time.
  virtual double bandwidth_factor(const std::string& src,
                                  const std::string& dst) = 0;
};

class Network {
 public:
  struct Options {
    double latency = 0.0001;          // one-way propagation, seconds
    double bandwidth_bps = 12.5e6;    // per-NIC, bytes/second (100 Mb/s)
    std::uint64_t message_overhead = 64;  // headers added to each post()
    /// Optional metrics sink (not owned): datagram drops are counted as
    /// ars_net_dropped_total{reason=...}.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional tracer (not owned): messages whose envelope carries a
    /// TraceCtx get net.send/net.recv instants so the critical-path
    /// analyzer can attribute wire latency.  Untraced traffic is ignored —
    /// the hot path stays one branch.
    obs::Tracer* tracer = nullptr;
  };

  explicit Network(sim::Engine& engine);  // default options
  Network(sim::Engine& engine, Options options);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  /// Register a host; assigns it an IP address.  The host object must
  /// outlive the network.
  void attach(host::Host& h);

  [[nodiscard]] host::Host* find_host(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> host_names() const;

  /// Bind a port on a host; returns the endpoint whose inbox receives
  /// posted messages.  Throws if already bound or the host is unknown.
  Endpoint& bind(const std::string& hostname, int port);
  void unbind(const std::string& hostname, int port);
  [[nodiscard]] int allocate_port(const std::string& hostname);

  /// Fire-and-forget control message.  Unknown destinations or unbound
  /// ports drop the message with a warning (soft-state tolerates loss).
  /// With a shard router attached, destinations living on another shard are
  /// forwarded through the inter-shard fabric instead of dropped; the local
  /// fast path (destination attached here) is unchanged.
  void post(Message message);

  /// Destination side of a cross-shard datagram: the fabric already paid
  /// the wire cost, so deliver straight into the bound endpoint (stamping
  /// net.recv on this network's tracer).  Unbound ports drop as usual.
  /// Called by the shard router on this shard's thread.
  void deliver_local(Message message);

  /// Awaitable bulk transfer; returns elapsed seconds.  Loopback (src==dst)
  /// costs only latency and is not metered.
  [[nodiscard]] sim::Task<double> transfer(std::string src, std::string dst,
                                           double bytes);

  [[nodiscard]] const FlowMeter& tx_meter(const std::string& hostname) const;
  [[nodiscard]] const FlowMeter& rx_meter(const std::string& hostname) const;
  [[nodiscard]] double tx_rate_bps(const std::string& hostname,
                                   double window) const;
  [[nodiscard]] double rx_rate_bps(const std::string& hostname,
                                   double window) const;

  [[nodiscard]] sim::Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Number of in-flight bulk transfers (excluding loopback).
  [[nodiscard]] std::size_t active_transfers() const noexcept {
    return jobs_.size();
  }

  // -- fault injection (ars::chaos hook points) -----------------------------

  /// Install (or clear, with nullptr) the link fault policy.  Not owned; the
  /// policy must outlive the network or be cleared before it goes away.
  void set_fault_policy(FaultPolicy* policy) noexcept;
  [[nodiscard]] FaultPolicy* fault_policy() const noexcept {
    return fault_policy_;
  }

  /// Re-evaluate active transfer rates against the fault policy.  Call when
  /// a time-varying fault (partition heal, bandwidth degradation boundary)
  /// changes what bandwidth_factor would answer.
  void on_fault_change();

  // -- cross-shard routing (sharded runs; see net/shard_router.hpp) ---------

  /// Wire this network to the inter-shard fabric as shard `shard_id`; clear
  /// with nullptr.  Normally called by ShardRouter::attach, not directly.
  void set_shard_router(ShardRouter* router, std::size_t shard_id) noexcept {
    shard_router_ = router;
    shard_id_ = shard_id;
  }
  [[nodiscard]] ShardRouter* shard_router() const noexcept {
    return shard_router_;
  }
  [[nodiscard]] std::size_t shard_id() const noexcept { return shard_id_; }

  /// Datagrams dropped so far with `hostname` as the poster (all reasons:
  /// unknown destination, unbound port, injected fault).
  [[nodiscard]] std::uint64_t dropped_count(const std::string& hostname) const;
  /// Total datagrams dropped across all hosts and reasons.
  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_total_;
  }

 private:
  struct HostRecord {
    host::Host* host = nullptr;
    std::string ip;
    int tx_active = 0;
    int rx_active = 0;
    FlowMeter tx_meter;
    FlowMeter rx_meter;
    int next_port = 40000;
    std::uint64_t messages_dropped = 0;
  };

  struct TransferJob {
    TransferJob(sim::Engine& engine, HostRecord* src_rec, HostRecord* dst_rec,
                double total_bytes)
        : src(src_rec), dst(dst_rec), remaining(total_bytes), done(engine) {}
    HostRecord* src;
    HostRecord* dst;
    double remaining;
    double rate = 0.0;
    bool completed = false;
    sim::Trigger done;
  };

  HostRecord& record(const std::string& hostname);
  [[nodiscard]] const HostRecord& record(const std::string& hostname) const;

  void advance();
  void recompute_rates();
  void reschedule_completion();
  void on_completion_event();
  void register_job(TransferJob* job);
  void withdraw_job(TransferJob* job);
  /// Source side of a cross-shard post: fault verdict, then hand the copies
  /// to the router.  Returns false when the router does not know the
  /// destination (the caller then drops it as unknown_host).
  bool route_cross_shard(Message& message);
  /// Account one dropped datagram: per-poster count plus the labeled
  /// ars_net_dropped_total counter when a metrics sink is configured.
  void count_drop(const std::string& src_host, const char* reason);

  sim::Engine* engine_;
  Options options_;
  std::map<std::string, HostRecord> hosts_;
  std::map<std::pair<std::string, int>, std::unique_ptr<Endpoint>> endpoints_;
  std::vector<sim::Fiber> delivery_fibers_;  // in-flight post() deliveries
  std::vector<TransferJob*> jobs_;
  double last_update_ = 0.0;
  sim::Engine::EventHandle completion_event_;
  int next_ip_suffix_ = 1;
  FaultPolicy* fault_policy_ = nullptr;
  std::uint64_t dropped_total_ = 0;
  ShardRouter* shard_router_ = nullptr;
  std::size_t shard_id_ = 0;
};

}  // namespace ars::net
