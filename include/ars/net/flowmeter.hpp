#pragma once
// Per-host, per-direction traffic meter.  Transfers accrue byte segments
// with uniform rate over their active intervals; sensors then ask for the
// bytes (or average rate) inside an arbitrary trailing window — exactly what
// the paper's communication-flow rules (Policy 3) and Figures 6/8 plot.

#include "ars/support/ringbuffer.hpp"

namespace ars::net {

class FlowMeter {
 public:
  /// Accrue `bytes` spread uniformly over [t0, t1] (t1 > t0), or as an
  /// instantaneous burst when t1 == t0.
  void add(double t0, double t1, double bytes);

  /// Bytes that fell inside [t0, t1], counting proportional overlap.
  [[nodiscard]] double bytes_between(double t0, double t1) const noexcept;

  /// Average rate in bytes/second over the trailing `window` ending at `now`.
  [[nodiscard]] double rate_bps(double window, double now) const noexcept;

  [[nodiscard]] double total_bytes() const noexcept { return total_; }

  void set_retention(double seconds) noexcept { retention_ = seconds; }

 private:
  struct Segment {
    double begin = 0.0;
    double end = 0.0;
    double bytes = 0.0;
  };

  void prune(double now);

  support::RingBuffer<Segment> segments_;
  double total_ = 0.0;
  double retention_ = 3600.0;
};

}  // namespace ars::net
