#pragma once
// Communication load generator: sustained traffic between two hosts, like
// the paper's 2nd workstation "busy in communication with the 5th machine"
// at 6.71-7.78 MB/s, and the low-rate ambient traffic under Figure 6.

#include <string>
#include <vector>

#include "ars/net/network.hpp"
#include "ars/sim/task.hpp"

namespace ars::net {

class CommHog {
 public:
  struct Options {
    std::string src;
    std::string dst;
    double rate_bps = 7.0e6;    // target offered load per direction
    double period = 1.0;        // seconds per chunk
    bool bidirectional = true;  // also generate dst -> src
    int sockets = 2;            // ESTABLISHED sockets shown by netstat
    std::string name = "comm_hog";
  };

  CommHog(Network& network, Options options);
  ~CommHog() { stop(); }
  CommHog(const CommHog&) = delete;
  CommHog& operator=(const CommHog&) = delete;

  void start();
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  [[nodiscard]] sim::Task<> pump(std::string from, std::string to);

  Network* network_;
  Options options_;
  std::vector<sim::Fiber> fibers_;
  bool running_ = false;
};

}  // namespace ars::net
