#pragma once
// Rule-file parsing, in the exact `rl_*:` key/value format of the paper's
// Figures 3 and 4.  A file holds one or more rules; a new `rl_number:` line
// starts the next rule.
//
//   rl_number: 1                      rl_number: 5
//   rl_name: processorStatus         rl_name: cmp_rule
//   rl_type: simple                  rl_type: complex
//   rl_script: processorStatus.sh    rl_desc: A Complex Rule.
//   rl_desc: ...                     rl_ruleNo: 4 1 3 2
//   rl_operator: <                   rl_script: ( 40% * r_4 + 30% * r1 + 30% * r3 ) & r2
//   rl_param:
//   rl_busy: 50
//   rl_overLd: 45

#include <optional>
#include <string>
#include <vector>

#include "ars/support/expected.hpp"

namespace ars::rules {

enum class RuleKind { kSimple, kComplex };

enum class CompareOp { kLess, kGreater, kLessEqual, kGreaterEqual };

[[nodiscard]] support::Expected<CompareOp> compare_op_from_string(
    std::string_view token);
[[nodiscard]] std::string_view to_string(CompareOp op) noexcept;
[[nodiscard]] bool apply(CompareOp op, double lhs, double rhs) noexcept;

/// One parsed rule record.  For a simple rule, `script` names the sensor
/// command and `busy`/`overld` hold thresholds; for a complex rule, `script`
/// holds the combining expression and `rule_numbers` the firing order.
struct RuleSpec {
  int number = 0;
  std::string name;
  RuleKind kind = RuleKind::kSimple;
  std::string script;
  std::string description;
  CompareOp op = CompareOp::kLess;
  std::string param;               // passed to the sensor script
  double busy = 0.0;               // rl_busy threshold
  double overld = 0.0;             // rl_overLd threshold
  std::vector<int> rule_numbers;   // rl_ruleNo (complex rules)
};

/// Parse a rule file's full text.  Unknown `rl_` keys are rejected;
/// missing mandatory keys (per kind) are rejected with the rule number in
/// the message.
[[nodiscard]] support::Expected<std::vector<RuleSpec>> parse_rule_file(
    std::string_view text);

/// Render a RuleSpec back to the paper's file format (round-trip aid).
[[nodiscard]] std::string to_rule_file(const std::vector<RuleSpec>& rules);

/// The two example rules of Figure 3 and the complex rule of Figure 4,
/// verbatim — used by tests and the Table 1 bench.
[[nodiscard]] std::string paper_figure3_text();
[[nodiscard]] std::string paper_figure4_text();

}  // namespace ars::rules
