#pragma once
// Rule evaluation engine (paper Figure 2: gathering engines -> monitoring
// database -> rule evaluator).  Simple rules pull one value from a sensor
// (keyed by the rl_script command name plus its rl_param) and threshold it;
// complex rules combine other rules' severities through an expression.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ars/rules/expr.hpp"
#include "ars/rules/rulefile.hpp"
#include "ars/rules/state.hpp"
#include "ars/support/expected.hpp"

namespace ars::rules {

/// Supplies sensor readings to simple rules.  The monitor module implements
/// this over a simulated host; tests use MapSensorSource.
class SensorSource {
 public:
  virtual ~SensorSource() = default;

  /// `script` is the rl_script command (e.g. "processorStatus.sh"),
  /// `param` the rl_param (e.g. "ESTABLISHED").
  [[nodiscard]] virtual support::Expected<double> sample(
      const std::string& script, const std::string& param) = 0;
};

/// In-memory SensorSource keyed "script" or "script:param".
class MapSensorSource final : public SensorSource {
 public:
  void set(const std::string& script, double value) { values_[script] = value; }
  void set(const std::string& script, const std::string& param, double value) {
    values_[script + ":" + param] = value;
  }

  [[nodiscard]] support::Expected<double> sample(
      const std::string& script, const std::string& param) override;

 private:
  std::map<std::string, double> values_;
};

/// A loaded, cross-checked rule set ready for evaluation.
class RuleEngine {
 public:
  struct Options {
    double busy_threshold = 0.5;    // complex-score -> busy boundary
    double overld_threshold = 1.5;  // complex-score -> overloaded boundary
  };

  /// Build from parsed specs: parses complex expressions, verifies that
  /// every referenced rule number exists and that references are acyclic.
  [[nodiscard]] static support::Expected<RuleEngine> create(
      std::vector<RuleSpec> specs, Options options);
  [[nodiscard]] static support::Expected<RuleEngine> create(
      std::vector<RuleSpec> specs);

  /// Convenience: parse `rule_file_text` then create().
  [[nodiscard]] static support::Expected<RuleEngine> from_text(
      std::string_view rule_file_text, Options options);
  [[nodiscard]] static support::Expected<RuleEngine> from_text(
      std::string_view rule_file_text);

  /// Evaluate one rule by number.
  [[nodiscard]] support::Expected<SystemState> evaluate(
      int rule_number, SensorSource& sensors) const;

  /// Evaluate the whole policy: the state is the worst (max severity) of
  /// all top-level rules (rules not referenced by any complex rule).
  [[nodiscard]] support::Expected<SystemState> evaluate_all(
      SensorSource& sensors) const;

  [[nodiscard]] const std::vector<RuleSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] const RuleSpec* find(int rule_number) const;
  [[nodiscard]] std::vector<int> top_level_rules() const;

 private:
  RuleEngine() = default;

  [[nodiscard]] support::Expected<double> severity_of(
      int rule_number, SensorSource& sensors,
      std::set<int>& in_progress) const;

  std::vector<RuleSpec> specs_;
  std::map<int, std::size_t> by_number_;
  std::map<int, ExprPtr> expressions_;  // complex rules only
  Options options_;
};

}  // namespace ars::rules
