#pragma once
// The paper's three-state host classification (Table 1) plus the registry's
// soft-state "unavailable".  States map onto a numeric severity scale so
// complex rules can combine them arithmetically (§4): free=0, busy=1,
// overloaded=2.  The scale is deliberately open-ended — the paper notes the
// representation "can be easily reconfigured to a finer granularity".

#include <string>
#include <string_view>

#include "ars/support/expected.hpp"

namespace ars::rules {

enum class SystemState {
  kFree,
  kBusy,
  kOverloaded,
  kUnavailable,  // registry-side only: soft-state lease expired
};

/// Table 1 of the paper: what each state implies.
struct StateActions {
  bool loaded;
  bool migrate_in;
  bool migrate_out;
};

[[nodiscard]] constexpr StateActions actions_for(SystemState state) noexcept {
  switch (state) {
    case SystemState::kFree:
      return {.loaded = false, .migrate_in = true, .migrate_out = false};
    case SystemState::kBusy:
      return {.loaded = true, .migrate_in = false, .migrate_out = false};
    case SystemState::kOverloaded:
      return {.loaded = true, .migrate_in = false, .migrate_out = true};
    case SystemState::kUnavailable:
      return {.loaded = false, .migrate_in = false, .migrate_out = false};
  }
  return {false, false, false};
}

/// Severity score used by complex-rule arithmetic.
[[nodiscard]] constexpr double severity(SystemState state) noexcept {
  switch (state) {
    case SystemState::kFree:
      return 0.0;
    case SystemState::kBusy:
      return 1.0;
    case SystemState::kOverloaded:
    case SystemState::kUnavailable:
      return 2.0;
  }
  return 2.0;
}

/// Inverse mapping with the default thresholds (busy >= 0.5, overld >= 1.5).
[[nodiscard]] SystemState state_from_severity(double score,
                                              double busy_threshold = 0.5,
                                              double overld_threshold = 1.5);

[[nodiscard]] std::string_view to_string(SystemState state) noexcept;
[[nodiscard]] support::Expected<SystemState> state_from_string(
    std::string_view name);

/// "free->overloaded"-style label for state-transition trace events.
[[nodiscard]] std::string transition_label(SystemState from, SystemState to);

}  // namespace ars::rules
