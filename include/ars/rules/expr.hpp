#pragma once
// Complex-rule expression language (paper Figure 4):
//
//     ( 40% * r_4 + 30% * r1 + 30% * r3 ) & r2
//
// Grammar (lowest to highest precedence):
//     expr    := and_expr ( '|' and_expr )*
//     and_expr:= add_expr ( '&' add_expr )*
//     add_expr:= mul_expr ( '+' mul_expr )*
//     mul_expr:= factor ( '*' factor )*
//     factor  := RULE_REF | NUMBER [ '%' ] | '(' expr ')'
//     RULE_REF:= 'r' [ '_' ] DIGITS
//
// Semantics over the severity scale (free=0, busy=1, overloaded=2):
//     '&' = min (a host is only as bad as its *least* loaded criterion —
//           this reproduces the paper's worked example: busy&busy = busy,
//           busy&overloaded = busy),
//     '|' = max (any criterion can escalate),
//     '+'/'*' = arithmetic (weighted sums), NUMBER% = NUMBER/100.
// The resulting score is mapped back to a state with the engine's busy /
// overloaded thresholds (defaults 0.5 / 1.5).

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "ars/support/expected.hpp"

namespace ars::rules {

class Expr {
 public:
  enum class Kind { kRuleRef, kNumber, kAdd, kMul, kAnd, kOr };

  virtual ~Expr() = default;
  [[nodiscard]] virtual Kind kind() const noexcept = 0;

  /// Evaluate with `lookup` supplying severity scores for rule references.
  /// Lookup failures propagate.
  [[nodiscard]] virtual support::Expected<double> evaluate(
      const std::function<support::Expected<double>(int)>& lookup) const = 0;

  /// Rule numbers referenced anywhere in the expression.
  virtual void collect_refs(std::set<int>& refs) const = 0;

  /// Canonical textual form (for diagnostics and round-trip tests).
  [[nodiscard]] virtual std::string to_string() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Parse an expression; returns a detailed error on malformed input.
[[nodiscard]] support::Expected<ExprPtr> parse_expr(std::string_view text);

}  // namespace ars::rules
