#pragma once
// Migration policies (paper §5.3).  A policy has
//   * trigger conditions  — "migrate when ANY of these holds" on the source,
//   * destination conditions — "the destination must meet ALL of these",
//   * per-state monitoring frequencies (§4: "Monitoring Frequency for each
//     state").
// Conditions threshold named metrics of a host's DynamicStatus heartbeat.
//
// The three policies of Table 2 are provided as factories; arbitrary
// policies can be written in a small text format:
//
//     policy: policy3
//     trigger: load1 > 2
//     trigger: processes > 150
//     trigger: net_flow > 5000000
//     dest: load1 < 1
//     dest: processes < 100
//     dest: net_flow < 3000000
//     freq_free: 10
//     freq_busy: 10
//     freq_overloaded: 5
//     warmup: 60

#include <optional>
#include <string>
#include <vector>

#include "ars/rules/rulefile.hpp"
#include "ars/support/expected.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::rules {

/// Metrics addressable by policy conditions.
enum class Metric {
  kLoad1,
  kLoad5,
  kCpuUtil,
  kProcesses,
  kMemAvailablePct,
  kDiskAvailable,
  kNetIn,
  kNetOut,
  kNetFlow,  // max(in, out): "incoming/outgoing communication flow"
  kSockets,
};

[[nodiscard]] support::Expected<Metric> metric_from_string(
    std::string_view name);
[[nodiscard]] std::string_view to_string(Metric metric) noexcept;

/// Read a metric out of a status heartbeat.
[[nodiscard]] double metric_value(const xmlproto::DynamicStatus& status,
                                  Metric metric) noexcept;

struct MetricCondition {
  Metric metric = Metric::kLoad1;
  CompareOp op = CompareOp::kGreater;
  double threshold = 0.0;

  [[nodiscard]] bool holds(const xmlproto::DynamicStatus& status) const {
    return apply(op, metric_value(status, metric), threshold);
  }
  [[nodiscard]] std::string to_string() const;
};

class MigrationPolicy {
 public:
  struct Frequencies {
    double free = 10.0;
    double busy = 10.0;
    double overloaded = 5.0;
  };

  MigrationPolicy() = default;
  explicit MigrationPolicy(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void add_trigger(MetricCondition condition) {
    triggers_.push_back(condition);
  }
  /// Source gate: ALL gates must hold for a triggered migration to proceed
  /// (Policy 3's "communication flow is no more than 5 MB/s" — migrating out
  /// of a saturated NIC would be counter-productive).
  void add_source_gate(MetricCondition condition) {
    source_gates_.push_back(condition);
  }
  void add_dest_condition(MetricCondition condition) {
    dest_conditions_.push_back(condition);
  }
  void set_frequencies(Frequencies f) noexcept { frequencies_ = f; }
  void set_warmup(double seconds) noexcept { warmup_ = seconds; }

  /// Migration is triggered when ANY trigger condition holds (and the
  /// policy has at least one trigger — Policy 1 has none, so it never
  /// migrates).
  [[nodiscard]] bool should_offload(
      const xmlproto::DynamicStatus& status) const;

  /// A destination is acceptable when ALL destination conditions hold.
  [[nodiscard]] bool accepts_destination(
      const xmlproto::DynamicStatus& status) const;

  [[nodiscard]] const std::vector<MetricCondition>& triggers() const {
    return triggers_;
  }
  [[nodiscard]] const std::vector<MetricCondition>& source_gates() const {
    return source_gates_;
  }
  [[nodiscard]] const std::vector<MetricCondition>& dest_conditions() const {
    return dest_conditions_;
  }
  [[nodiscard]] const Frequencies& frequencies() const noexcept {
    return frequencies_;
  }

  /// Sustained-overload requirement before triggering (the paper's ~72 s
  /// "warm up" that avoids fault migrations on short tasks).
  [[nodiscard]] double warmup() const noexcept { return warmup_; }

  [[nodiscard]] std::string to_text() const;

 private:
  std::string name_ = "unnamed";
  std::vector<MetricCondition> triggers_;
  std::vector<MetricCondition> source_gates_;
  std::vector<MetricCondition> dest_conditions_;
  Frequencies frequencies_;
  double warmup_ = 60.0;
};

/// Parse the policy text format shown above.
[[nodiscard]] support::Expected<MigrationPolicy> parse_policy(
    std::string_view text);

/// Table 2's policies, verbatim thresholds.
[[nodiscard]] MigrationPolicy paper_policy1();  // no migration
[[nodiscard]] MigrationPolicy paper_policy2();  // load / process count only
[[nodiscard]] MigrationPolicy paper_policy3();  // + communication flow

}  // namespace ars::rules
