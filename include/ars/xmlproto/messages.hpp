#pragma once
// The rescheduler's wire protocol: typed messages encoded as XML documents,
// exchanged between monitor, registry/scheduler and commander entities over
// the simulated TCP transport (paper §3.3, "Entities of rescheduler").
//
// Each message is one XML element <ars type="..."> with typed children.
// decode() gives back a std::variant so entity loops can dispatch with
// std::visit and malformed input surfaces as an Expected error instead of a
// crash — the control plane must survive garbage.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "ars/obs/trace_ctx.hpp"
#include "ars/support/expected.hpp"

namespace ars::xmlproto {

/// One-time static registration payload (host birth certificate).
struct StaticInfo {
  std::string host;
  std::string ip;
  std::string os;
  std::uint64_t memory_bytes = 0;
  std::uint64_t disk_bytes = 0;
  double cpu_speed = 1.0;
  std::string byte_order;  // "big" | "little"
};

/// Periodic soft-state heartbeat from a monitor.
struct DynamicStatus {
  std::string host;
  std::string state;  // "free" | "busy" | "overloaded" (or finer grained)
  double load1 = 0.0;
  double load5 = 0.0;
  double cpu_util = 0.0;  // [0,1]
  int processes = 0;
  double mem_available_pct = 0.0;
  std::uint64_t disk_available = 0;
  double net_in_bps = 0.0;
  double net_out_bps = 0.0;
  int sockets_established = 0;
  double timestamp = 0.0;
};

/// Monitor -> registry: initial registration.
struct RegisterMsg {
  StaticInfo info;
  int monitor_port = 0;
  int commander_port = 0;
};

/// Monitor -> registry: heartbeat / state change.
struct UpdateMsg {
  DynamicStatus status;
};

/// Monitor -> registry: host is overloaded, request a migration decision.
/// The optional fields are filled when a registry escalates or routes the
/// consult across the hierarchy: they carry the child's process selection
/// and the source commander's return-path so a foreign domain can command
/// the migration without knowing the source host.
struct ConsultMsg {
  std::string host;
  std::string reason;
  std::string origin_registry;  // child registry that first escalated
  int pid = 0;                  // selected process (0: none carried)
  std::string process_name;
  std::string schema_name;
  int commander_port = 0;  // commander port on `host`
};

/// One compact lease renewal inside an UpdateBatchMsg: "nothing changed
/// since my last full status" — enough to refresh the soft-state lease
/// without re-encoding (or re-parsing) the full DynamicStatus.
struct LeaseRenewal {
  std::string host;
  std::string state;  // must match the registry's current view
  double timestamp = 0.0;
};

/// Monitor -> registry: batched delta heartbeat.  Monitors coalesce
/// unchanged-state cycles into renewals; a full UpdateMsg is still sent on
/// any state change and periodically as a keyframe.
struct UpdateBatchMsg {
  std::vector<LeaseRenewal> renewals;
};

/// Registry -> commander (of the overloaded host): migrate `pid` to dest.
struct MigrateCmd {
  int pid = 0;
  std::string process_name;
  std::string dest_host;
  std::string dest_ip;
  int dest_port = 0;
  std::string schema_name;
};

/// Commander/monitor -> registry: generic acknowledgement.
struct AckMsg {
  std::string of;  // message type being acknowledged
  bool ok = true;
  std::string detail;
};

/// Monitor -> registry: register a (migratable) process and its schema key.
struct ProcessRegisterMsg {
  std::string host;
  int pid = 0;
  std::string name;
  double start_time = 0.0;
  bool migration_enabled = false;
  std::string schema_name;
};

/// Monitor -> registry: a process finished or was migrated away.
struct ProcessDeregisterMsg {
  std::string host;
  int pid = 0;
};

/// Child registry -> parent registry: aggregated health (hierarchy, §3.2).
struct HealthReportMsg {
  std::string registry_host;
  int registry_port = 0;  // where the parent can send routed consults
  int free_hosts = 0;
  int busy_hosts = 0;
  int overloaded_hosts = 0;
  double timestamp = 0.0;
};

/// Parent registry -> child (or monitor): recommended destination, possibly
/// escalated from another domain.  `found == false` means no candidate.
struct RecommendMsg {
  bool found = false;
  std::string dest_host;
  std::string dest_ip;
  int dest_port = 0;  // commander port of the destination host
};

/// Administrator/monitor -> registry: migrate EVERY migration-enabled
/// process off `host` (planned shutdown, detected intrusion — the fault
/// tolerance use cases of the paper's §6) and stop assigning work to it.
struct EvacuateMsg {
  std::string host;
  std::string reason;
};

/// Registry -> commander of the *destination* host: bring a process that
/// was lost with its host back to life from its latest checkpoint.
struct RelaunchCmd {
  std::string process_name;  // name in the checkpoint store / middleware
  std::string lost_host;     // where it was running
  std::string schema_name;
};

/// Commander (source host) -> registry: terminal outcome of a migration
/// transaction.  "committed" credits back the registry's in-flight
/// placement debit; "aborted"/"rolled-back" additionally mark the failed
/// destination suspect and let the registry re-plan immediately.  The
/// reason/phase fields are only meaningful (and only encoded) for failures;
/// the precopy fields are only meaningful (and only encoded) when the
/// transaction ran iterative pre-copy rounds, so stop-and-copy outcomes —
/// and every pre-existing peer — keep the exact legacy wire form.
struct MigrationOutcomeMsg {
  std::string process;
  std::string source;
  std::string destination;
  std::string outcome;  // "committed" | "aborted" | "rolled-back"
  std::string reason;   // e.g. "init-timeout", "dest-failed"
  std::string phase;    // protocol phase the failure hit
  int precopy_rounds = 0;             // pre-copy rounds shipped (0: stop-and-copy)
  std::uint64_t precopy_bytes = 0;    // bytes moved outside the freeze window
};

/// Registry -> commander (of a malleable job's root host): grow or shrink
/// the job.  For an expand, `hosts` are the spawn targets (one new rank
/// each); for a shrink they are the hosts to vacate (ranks there retire at
/// the job's next poll-point).  `strategy` selects the DPM fan-out
/// ("sequential" | "tree"; empty keeps the job's default).
struct ResizeCmd {
  std::string job;
  std::string verb;  // "expand" | "shrink"
  int delta = 0;
  std::string strategy;
  std::vector<std::string> hosts;
};

/// Commander (root host) -> registry: terminal outcome of a resize
/// transaction.  "committed" credits back the registry's per-target
/// placement debits exactly like MigrationOutcomeMsg; "aborted" and
/// "partial-rollback" additionally mark the commanded targets suspect.
/// The reason/phase fields are only meaningful (and only encoded) for
/// failures.
struct ResizeOutcomeMsg {
  std::string job;
  std::string verb;     // "expand" | "shrink"
  int delta = 0;
  std::string outcome;  // "committed" | "aborted" | "partial-rollback"
  std::string reason;   // e.g. "spawn-timeout", "no-capacity"
  std::string phase;    // transaction phase the failure hit
  int ranks_after = 0;
};

/// Commander -> registry: one checkpoint-write I/O event for the central
/// I/O scheduler (DESIGN.md §17).  verb "request" asks for a write slot
/// (risk = elapsed-over-interval, how overdue the requester is); "done" and
/// "abort" release a previously granted slot.  bytes/risk are only
/// meaningful (and only encoded) on requests.
struct CkptIoRequestMsg {
  std::string host;
  std::string process;
  std::string verb;  // "request" | "done" | "abort"
  std::uint64_t bytes = 0;
  double risk = 0.0;
};

/// Registry -> commander: verdict on a CkptIoRequestMsg.  "admit" lets the
/// write proceed now; "defer" asks the requester to re-ask after
/// retry_after seconds; "preempt" tells the named process to abort its
/// in-flight write (it was evicted for a riskier peer) and back off.
struct CkptIoGrantMsg {
  std::string process;
  std::string verb;  // "admit" | "defer" | "preempt"
  double retry_after = 0.0;
};

using ProtocolMessage =
    std::variant<RegisterMsg, UpdateMsg, UpdateBatchMsg, ConsultMsg,
                 MigrateCmd, AckMsg, ProcessRegisterMsg, ProcessDeregisterMsg,
                 HealthReportMsg, RecommendMsg, EvacuateMsg, RelaunchCmd,
                 MigrationOutcomeMsg, ResizeCmd, ResizeOutcomeMsg,
                 CkptIoRequestMsg, CkptIoGrantMsg>;

/// Serialize any protocol message to its XML wire form.
[[nodiscard]] std::string encode(const ProtocolMessage& message);

/// Serialize with a causal trace context riding on the envelope.  The
/// context travels as root attributes (txn="..." pspan="...") that are
/// emitted only when set — an unset context yields byte-identical output
/// to the context-free encode(), so pre-v2 peers and byte-exact replay
/// are unaffected when tracing is off.
[[nodiscard]] std::string encode(const ProtocolMessage& message,
                                 const obs::TraceCtx& ctx);

/// A decoded message together with the causal context its envelope
/// carried (unset when the sender attached none).
struct Envelope {
  ProtocolMessage message;
  obs::TraceCtx trace;
};

/// Parse a wire document back into a typed message.
[[nodiscard]] support::Expected<ProtocolMessage> decode(
    std::string_view wire);

/// Parse a wire document, preserving the envelope's trace context.
[[nodiscard]] support::Expected<Envelope> decode_envelope(
    std::string_view wire);

/// Wire type tag of a message ("register", "update", ...).
[[nodiscard]] std::string message_type(const ProtocolMessage& message);

}  // namespace ars::xmlproto
