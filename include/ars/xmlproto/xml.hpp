#pragma once
// Minimal XML document model, writer and parser.
//
// The paper's rescheduler entities talk "a custom XML based protocol with
// TCP/IP sockets", and the application schema is "in a XML format".  This is
// a deliberately small XML subset — elements, attributes, text, escaping —
// enough to express those documents while staying easy to debug (one of the
// paper's stated reasons for choosing XML).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ars/support/expected.hpp"

namespace ars::xmlproto {

class XmlNode {
 public:
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void set_attr(const std::string& key, std::string value) {
    attrs_[key] = std::move(value);
  }
  [[nodiscard]] std::optional<std::string> attr(const std::string& key) const {
    const auto it = attrs_.find(key);
    return it == attrs_.end() ? std::nullopt
                              : std::optional<std::string>{it->second};
  }
  /// Attribute with a fallback value.
  [[nodiscard]] std::string attr_or(const std::string& key,
                                    std::string fallback) const {
    return attr(key).value_or(std::move(fallback));
  }
  [[nodiscard]] const std::map<std::string, std::string>& attrs() const {
    return attrs_;
  }

  /// Append and return a child element.
  XmlNode& add_child(std::string child_name);

  /// Append an already-built subtree.
  void adopt_child(std::unique_ptr<XmlNode> child) {
    children_.push_back(std::move(child));
  }

  [[nodiscard]] const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// First child with the given name, or nullptr.
  [[nodiscard]] const XmlNode* child(std::string_view child_name) const;
  [[nodiscard]] XmlNode* child(std::string_view child_name);

  /// All children with the given name.
  [[nodiscard]] std::vector<const XmlNode*> children_named(
      std::string_view child_name) const;

  /// Text content of a named child, or fallback.
  [[nodiscard]] std::string child_text_or(std::string_view child_name,
                                          std::string fallback) const;

  /// Serialize (compact, deterministic: attributes in key order).
  [[nodiscard]] std::string to_string() const;

 private:
  void write(std::string& out) const;

  std::string name_;
  std::string text_;
  std::map<std::string, std::string> attrs_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// Escape &<>"' for use in text or attribute values.
[[nodiscard]] std::string xml_escape(std::string_view raw);

/// Parse a single-root XML document.  Returns a detailed error on malformed
/// input (unterminated tags, mismatched close tags, bad entities, trailing
/// garbage).  Comments and XML declarations are skipped; CDATA, processing
/// instructions and DTDs are not supported.
[[nodiscard]] support::Expected<std::unique_ptr<XmlNode>> parse_xml(
    std::string_view input);

}  // namespace ars::xmlproto
