#pragma once
// Miniature MPI-2-style message-passing runtime over the simulated network.
//
// This is the substrate the paper assumes (LAM/MPI 6.5.9): communicators
// with isolated contexts, tagged point-to-point with ANY_SOURCE/ANY_TAG
// matching, the common collectives, and — crucially for migration — the
// MPI-2 dynamic process management subset: Comm_spawn, Open_port /
// Comm_connect / Comm_accept, and Intercomm_merge.  The paper specifically
// chose LAM because "MPICH-2 and Sun MPI do not support the dynamic process
// management"; the spawn path here carries a configurable startup cost to
// model LAM's slow DPM operations (§5.2 measures ~0.3 s).
//
// A logical MPI process (`Proc`) is location-independent: it has a stable
// global id and a *current* host.  HPCM migration relocates the Proc; any
// message launched toward the old host is forwarded, modeling HPCM's
// communication-state transfer.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ars/host/host.hpp"
#include "ars/net/network.hpp"
#include "ars/sim/channel.hpp"
#include "ars/sim/task.hpp"
#include "ars/sim/wait.hpp"

namespace ars::mpi {

class Proc;
class MpiSystem;

/// Stable global process id (survives migration).
using RankId = int;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// User tags must be non-negative; the library reserves negative tags for
/// collective traffic.
inline constexpr int kTagBarrier = -2;
inline constexpr int kTagBcast = -3;
inline constexpr int kTagReduce = -4;
inline constexpr int kTagGather = -5;
inline constexpr int kTagScatter = -6;
inline constexpr int kTagAllgather = -7;

/// MPI_UNDEFINED for comm_split.
inline constexpr int kUndefined = -1;

/// Reduction operations (MPI_SUM, MPI_MIN, MPI_MAX, MPI_PROD).
enum class ReduceOp { kSum, kMin, kMax, kProd };

using Bytes = std::vector<std::byte>;

struct MpiMessage {
  int context = 0;
  int src_rank = 0;  // rank within the communicator it was sent on
  int tag = 0;
  double size_bytes = 0.0;                // simulated wire size
  std::shared_ptr<const Bytes> data;      // optional real content
  std::vector<double> values;             // optional numeric content
};

/// Immutable communicator: a context id plus an ordered member list.  For an
/// intercommunicator, `remote` holds the other group and point-to-point
/// addresses remote ranks (MPI semantics).
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] int context() const noexcept { return state_->context; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(state_->members.size());
  }
  [[nodiscard]] bool is_inter() const noexcept { return state_->inter; }
  [[nodiscard]] int remote_size() const noexcept {
    return static_cast<int>(state_->remote.size());
  }

  /// Local rank of a member id, or -1.
  [[nodiscard]] int rank_of(RankId id) const noexcept;
  [[nodiscard]] RankId member(int rank) const { return state_->members.at(rank); }
  [[nodiscard]] RankId remote_member(int rank) const {
    return state_->remote.at(rank);
  }

 private:
  friend class MpiSystem;
  friend class Proc;
  struct State {
    int context = 0;
    std::vector<RankId> members;
    bool inter = false;
    std::vector<RankId> remote;
  };
  explicit Comm(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<const State> state_;
};

/// Application entry point: a coroutine over its Proc.
using AppMain = std::function<sim::Task<>(Proc&)>;

/// Thrown by the migration machinery to unwind a Proc's *fiber* on the
/// source host without terminating the logical process.
class ProcMoved : public sim::FiberExit {
 public:
  ProcMoved() : sim::FiberExit("proc migrated away") {}
};

/// A pending non-blocking operation.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool done() const noexcept { return !state_ || state_->fired(); }
  [[nodiscard]] sim::Task<> wait() {
    if (state_) {
      co_await state_->wait();
    }
  }

 private:
  friend class Proc;
  explicit Request(std::shared_ptr<sim::Trigger> state)
      : state_(std::move(state)) {}
  std::shared_ptr<sim::Trigger> state_;
};

struct SpawnResult {
  Comm intercomm;   // local group: {parent}; remote group: {children}
  std::vector<RankId> children;
};

/// How a multi-host spawn fans out (Martín-Álvarez et al.: the spawn step
/// is a first-order cost of malleability, worth engineering).
///  * kSequential — the parent creates every child itself, one after the
///    other: k spawn handshakes in series, O(k) latency.
///  * kTree — binomial tree: every already-created process spawns further
///    children in successive rounds, so all k children exist after
///    ceil(log2(k+1)) rounds, O(log k) latency.
enum class SpawnStrategy { kSequential, kTree };

[[nodiscard]] const char* spawn_strategy_name(SpawnStrategy strategy);
[[nodiscard]] std::optional<SpawnStrategy> spawn_strategy_from(
    std::string_view name);

/// Cooperative cancellation token for spawn_many: once `cancelled` flips
/// true, in-flight handshakes finish their current step and no further
/// children are created — spawn_many returns the partial group (via its
/// `progress` list) for the caller to reap.  The caller owns the token and
/// must keep it alive until spawn_many returns.
struct SpawnCancel {
  bool cancelled = false;
};

struct MultiSpawnResult {
  /// Child ids in `hosts` order (child i is named `name + "." + i`),
  /// regardless of strategy — the membership is strategy-independent,
  /// only the latency differs.
  std::vector<RankId> children;
  Comm intercomm;   // local group: {parent}; remote group: {children}
  /// Spawn handshakes on the critical path (sequential: k; tree: depth).
  int rounds = 0;
};

/// One logical MPI process.
class Proc {
 public:
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc();

  [[nodiscard]] RankId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] host::Host& host() const noexcept { return *host_; }
  [[nodiscard]] host::Pid pid() const noexcept { return pid_; }
  [[nodiscard]] const Comm& world() const noexcept { return world_; }
  [[nodiscard]] int world_rank() const { return world_.rank_of(id_); }

  /// For spawned processes: the intercommunicator back to the parent
  /// (MPI_Comm_get_parent); invalid for directly launched processes.
  [[nodiscard]] const Comm& parent_comm() const noexcept {
    return parent_comm_;
  }
  [[nodiscard]] MpiSystem& system() const noexcept { return *system_; }

  /// Burn CPU on the current host for `work` reference-seconds.
  [[nodiscard]] host::CpuModel::ComputeAwaiter compute(double work) {
    return host_->cpu().compute(work);
  }

  // -- point to point -------------------------------------------------------

  /// Blocking send: completes when the message is delivered (buffered-send
  /// timing: the full wire transfer is paid by the sender).
  [[nodiscard]] sim::Task<> send(Comm comm, int dest, int tag,
                                 double size_bytes, MpiMessage payload = {});

  /// Non-blocking send.
  Request isend(Comm comm, int dest, int tag, double size_bytes,
                MpiMessage payload = {});

  /// Blocking receive with MPI matching (source/tag wildcards, FIFO per
  /// (source, tag) pair).
  [[nodiscard]] sim::Task<MpiMessage> recv(Comm comm, int src = kAnySource,
                                           int tag = kAnyTag);

  /// Non-blocking probe: is a matching message already queued?
  [[nodiscard]] bool iprobe(const Comm& comm, int src = kAnySource,
                            int tag = kAnyTag) const;

  // -- collectives (intracommunicators) -------------------------------------

  [[nodiscard]] sim::Task<> barrier(Comm comm);

  /// Broadcast `size_bytes` (+values for the payload) from root; returns the
  /// broadcast values on every rank.
  [[nodiscard]] sim::Task<std::vector<double>> bcast(
      Comm comm, int root, double size_bytes, std::vector<double> values = {});

  /// Element-wise reduce to root (empty result on non-roots).
  [[nodiscard]] sim::Task<std::vector<double>> reduce(
      Comm comm, int root, std::vector<double> values, ReduceOp op,
      double size_bytes = 0);

  [[nodiscard]] sim::Task<std::vector<double>> reduce_sum(
      Comm comm, int root, std::vector<double> values, double size_bytes = 0);

  [[nodiscard]] sim::Task<std::vector<double>> allreduce(
      Comm comm, std::vector<double> values, ReduceOp op,
      double size_bytes = 0);

  [[nodiscard]] sim::Task<std::vector<double>> allreduce_sum(
      Comm comm, std::vector<double> values, double size_bytes = 0);

  /// Gather each rank's vector to root (concatenated in rank order).
  [[nodiscard]] sim::Task<std::vector<double>> gather(
      Comm comm, int root, std::vector<double> values, double size_bytes = 0);

  /// Scatter equal chunks from root; returns this rank's chunk.
  [[nodiscard]] sim::Task<std::vector<double>> scatter(
      Comm comm, int root, std::vector<double> values, int chunk,
      double size_bytes = 0);

  /// Gather everyone's vector to everyone (concatenated in rank order).
  [[nodiscard]] sim::Task<std::vector<double>> allgather(
      Comm comm, std::vector<double> values, double size_bytes = 0);

  /// Duplicate a communicator: same members, fresh context (collective —
  /// every member must call it; messages on the two contexts never mix).
  [[nodiscard]] sim::Task<Comm> comm_dup(Comm comm);

  /// Split a communicator by color (collective).  Members with the same
  /// color end up in one new communicator, ordered by (key, old rank);
  /// color < 0 (MPI_UNDEFINED) yields an invalid Comm for that caller.
  [[nodiscard]] sim::Task<Comm> comm_split(Comm comm, int color, int key);

  // -- MPI-2 dynamic process management --------------------------------------

  /// Spawn `count` children running `app` on `host_name`; pays the DPM
  /// startup cost.  Returns the parent/children intercommunicator.
  [[nodiscard]] sim::Task<SpawnResult> spawn(const std::string& host_name,
                                             AppMain app, std::string name,
                                             int count = 1);

  /// Spawn one child per entry of `hosts` (child i named `name + "." + i`),
  /// fanning out sequentially or over the binomial tree.  Every spawn
  /// handshake pays the full DPM cost (startup overhead + control
  /// round-trip) charged to the host performing it; with kTree those
  /// handshakes overlap across the already-created children.  Children are
  /// created suspended and started together once the whole group exists, so
  /// the resulting membership and application behaviour are byte-identical
  /// across strategies — only the completion time differs.  `progress`
  /// (optional, not owned) receives each child id as it is created, so a
  /// caller that abandons the operation mid-flight (resize spawn timeout)
  /// can reap the partial group.
  [[nodiscard]] sim::Task<MultiSpawnResult> spawn_many(
      std::vector<std::string> hosts, AppMain app, std::string name,
      SpawnStrategy strategy = SpawnStrategy::kSequential,
      std::vector<RankId>* progress = nullptr,
      std::shared_ptr<const struct SpawnCancel> cancel = nullptr);

  /// Open a named port (server side).
  [[nodiscard]] std::string open_port();
  void close_port(const std::string& port);

  /// Accept one connection on a port opened by this process.
  [[nodiscard]] sim::Task<Comm> accept(const std::string& port);

  /// Connect to a port anywhere in the system.
  [[nodiscard]] sim::Task<Comm> connect(const std::string& port);

  /// Merge an intercommunicator into an intracommunicator; the `high` group
  /// is ordered after the low one.  Must be called by both sides.
  [[nodiscard]] sim::Task<Comm> merge(Comm intercomm, bool high);

 private:
  friend class MpiSystem;

  Proc(MpiSystem& system, RankId id, host::Host& h, std::string name);

  /// One pending receive; lives on the suspended recv() coroutine frame and
  /// is linked intrusively into its mailbox bucket (O(1) unpost when the
  /// fiber is killed or migrated mid-receive).
  struct PostedRecv {
    int src = kAnySource;
    int tag = kAnyTag;
    bool matched = false;
    std::uint64_t seq = 0;  // post order, for wildcard-overlap tie-breaks
    MpiMessage message;
    std::unique_ptr<sim::Trigger> arrived;
    PostedRecv* prev = nullptr;
    PostedRecv* next = nullptr;
  };

  /// Per-context matching state.  Both directions are bucketed by the
  /// (source, tag) pair — wildcards are buckets of their own, keyed with -1 —
  /// so the hot concrete-source/concrete-tag path is O(1) instead of a
  /// linear scan over every queued message or pending receive:
  ///   * posted receives: intrusive FIFO per bucket; an arriving message
  ///     checks at most its 4 candidate buckets (src/ANY x tag/ANY) and takes
  ///     the oldest post among them;
  ///   * unexpected messages: pooled nodes chained into per-bucket FIFOs; a
  ///     wildcard receive takes the oldest arrival among matching bucket
  ///     fronts, identical to the order a front-to-back scan would find.
  struct Mailbox {
    static constexpr std::uint32_t kNil = 0xffffffffU;

    struct MsgNode {
      MpiMessage message;
      std::uint64_t seq = 0;
      std::uint32_t next = kNil;
    };
    struct MsgList {
      std::uint32_t head = kNil;
      std::uint32_t tail = kNil;
    };
    struct PostedList {
      PostedRecv* head = nullptr;
      PostedRecv* tail = nullptr;
    };

    void post(PostedRecv& recv);
    void unpost(PostedRecv& recv) noexcept;
    /// Unlink and return the oldest posted receive matching `message`, if any.
    PostedRecv* match_posted(const MpiMessage& message) noexcept;

    void stash(MpiMessage message);
    /// Pop the oldest unexpected message matching (src, tag), if any.
    std::optional<MpiMessage> claim(int src, int tag);
    [[nodiscard]] bool peek(int src, int tag) const noexcept;

    std::unordered_map<std::uint64_t, PostedList> posted;
    std::unordered_map<std::uint64_t, MsgList> unexpected;
    std::vector<MsgNode> pool;  // recycled through `free_node`
    std::uint32_t free_node = kNil;
    std::uint64_t next_seq = 0;
  };

  void deliver(MpiMessage message);

  MpiSystem* system_;
  RankId id_;
  host::Host* host_;
  std::vector<sim::Fiber> isend_fibers_;  // in-flight non-blocking sends
  host::Pid pid_ = 0;
  std::string name_;
  Comm world_;
  Comm parent_comm_;
  std::map<int, Mailbox> mailboxes_;
};

class MpiSystem {
 public:
  struct Options {
    /// LAM-style DPM startup latency per spawn (paper §5.2: ~0.3 s).
    double spawn_overhead = 0.3;
    /// connect/accept handshake latency.
    double connect_overhead = 0.05;
    /// Fixed per-message software overhead bytes (headers, matching).
    double message_overhead_bytes = 64.0;
  };

  MpiSystem(sim::Engine& engine, net::Network& network);
  MpiSystem(sim::Engine& engine, net::Network& network, Options options);
  MpiSystem(const MpiSystem&) = delete;
  MpiSystem& operator=(const MpiSystem&) = delete;
  ~MpiSystem();

  /// Launch an n-process world, one AppMain instance per (host) entry.
  /// Returns the member ids in rank order.
  std::vector<RankId> launch_world(const std::vector<std::string>& hosts,
                                   AppMain app, const std::string& name,
                                   bool migration_enabled = false,
                                   const std::string& schema_name = {});

  /// Launch a standalone single-process job (world of size 1).
  RankId launch(const std::string& host_name, AppMain app,
                const std::string& name, bool migration_enabled = false,
                const std::string& schema_name = {});

  /// Like launch(), but the process keeps `name` verbatim (no ".0" rank
  /// suffix) — used when relaunching a crashed process under its old name.
  RankId launch_exact(const std::string& host_name, AppMain app,
                      const std::string& name, bool migration_enabled = false,
                      const std::string& schema_name = {});

  /// Forcefully kill a process: the fiber dies where it is suspended and
  /// the logical process disappears (crash injection).  False if unknown.
  bool kill(RankId id);

  [[nodiscard]] Proc* find(RankId id) const;
  [[nodiscard]] Proc* find_by_pid(const std::string& host_name,
                                  host::Pid pid) const;

  /// Relocate a proc to another host (HPCM migration).  Re-registers it in
  /// the destination's process table; in-flight messages get forwarded.
  void relocate(Proc& proc, host::Host& destination);

  /// Terminate and destroy a logical process (normal exit).
  void terminate(RankId id);

  /// True while the logical process exists.
  [[nodiscard]] bool alive(RankId id) const { return find(id) != nullptr; }

  /// Await the end of a process (resolves immediately if already gone).
  [[nodiscard]] sim::Task<> wait_for_exit(RankId id);

  /// Deliver a message directly into a process's matching queues, bypassing
  /// the network (used by the migration middleware after it has accounted
  /// the wire cost itself).  No-op when the process is gone.
  void inject(RankId id, MpiMessage message);

  /// Start (or restart, after a migration) an application fiber for an
  /// existing logical process.
  void start_app(Proc& proc, AppMain app);

  [[nodiscard]] sim::Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] net::Network& network() const noexcept { return *network_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t live_procs() const noexcept {
    return procs_.size();
  }

  /// Create a fresh communicator over the given members.
  Comm make_comm(std::vector<RankId> members);
  Comm make_intercomm(std::vector<RankId> local, std::vector<RankId> remote);

  /// The two mirrored views of one intercommunicator (same context id):
  /// first = {local <-> remote}, second = {remote <-> local}.
  std::pair<Comm, Comm> make_intercomm_pair(std::vector<RankId> local,
                                            std::vector<RankId> remote);

 private:
  friend class Proc;

  struct PortState {
    PortState(sim::Engine& engine, RankId owner_id)
        : owner(owner_id), pending(engine) {}
    RankId owner;
    sim::Channel<RankId> pending;  // connecting procs
    std::unique_ptr<sim::Trigger> accepted;
    Comm connector_comm;  // filled by accept for the connector to pick up
  };

  /// Shared merged-communicator registry so both sides of an
  /// Intercomm_merge agree on the resulting context id.
  Comm merge_comm(int inter_context, std::vector<RankId> members);

  /// Rendezvous state for collective communicator operations (dup/split):
  /// all members of the parent communicator must arrive before results are
  /// published.
  struct CommOpState {
    explicit CommOpState(sim::Engine& engine) : done(engine) {}
    std::map<int, std::pair<int, int>> contributions;  // rank -> color,key
    int arrived = 0;
    bool published = false;
    std::map<int, Comm> results_by_color;
    Comm dup_result;
    sim::Trigger done;
  };

  Proc& create_proc(const std::string& host_name, std::string name,
                    bool migration_enabled, const std::string& schema_name);

  /// Shared bookkeeping of one in-flight spawn_many fan-out; node fibers
  /// hold references until they finish or notice cancellation.
  struct MultiSpawnState;
  /// One binomial-tree node's spawn loop (node 0 is the parent itself).
  [[nodiscard]] sim::Task<> tree_spawn_node(
      std::shared_ptr<MultiSpawnState> state, int node, int depth);

  /// Route `size_bytes` from the current host of `from` to the current host
  /// of `to`, following relocations (forwarding hops).
  [[nodiscard]] sim::Task<> route(RankId from, RankId to, double size_bytes);

  sim::Engine* engine_;
  net::Network* network_;
  Options options_;
  std::map<RankId, std::unique_ptr<Proc>> procs_;
  std::map<RankId, sim::Fiber> fibers_;  // live app fibers, killed on teardown
  std::map<RankId, std::unique_ptr<sim::Trigger>> exit_triggers_;
  std::map<std::string, std::unique_ptr<PortState>> ports_;
  std::map<int, Comm> merged_comms_;
  // Keyed by (parent context, operation epoch) so repeated dups/splits on
  // the same communicator stay separate.
  std::map<std::pair<int, int>, std::unique_ptr<CommOpState>> comm_ops_;
  std::map<int, int> comm_op_epoch_;
  RankId next_rank_ = 1;
  int next_context_ = 1;
  int next_port_ = 1;
};

}  // namespace ars::mpi
