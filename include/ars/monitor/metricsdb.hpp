#pragma once
// Monitoring information database (paper Figure 2): a bounded ring of
// status snapshots used for trend queries and the experiment plots.

#include <optional>
#include <vector>

#include "ars/support/ringbuffer.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::monitor {

class MetricsDb {
 public:
  explicit MetricsDb(std::size_t capacity = 1024) : capacity_(capacity) {}

  void record(xmlproto::DynamicStatus status);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] std::optional<xmlproto::DynamicStatus> latest() const;

  /// Samples with timestamp in [t0, t1], oldest first.
  [[nodiscard]] std::vector<xmlproto::DynamicStatus> between(
      double t0, double t1) const;

  /// Mean 1-minute load average over the trailing `window` seconds
  /// (ending at the newest sample); 0 when empty.
  [[nodiscard]] double mean_load1(double window) const;

  /// True if every sample in the trailing `window` satisfies `pred`
  /// (and at least one sample is present) — used for warm-up gating.
  template <typename Pred>
  [[nodiscard]] bool sustained(double window, Pred&& pred) const {
    if (samples_.empty()) {
      return false;
    }
    const double horizon = samples_.back().timestamp - window;
    bool any = false;
    for (std::size_t i = samples_.size(); i-- > 0;) {
      const xmlproto::DynamicStatus& sample = samples_[i];
      if (sample.timestamp < horizon) {
        break;
      }
      if (!pred(sample)) {
        return false;
      }
      any = true;
    }
    return any;
  }

 private:
  std::size_t capacity_;
  support::RingBuffer<xmlproto::DynamicStatus> samples_;
};

}  // namespace ars::monitor
