#pragma once
// Host-backed sensors.
//
// The paper's monitors run shell scripts (`vmstat`, `netstat`, `prstat`,
// `ps`) to read system state.  Here each script *name* is bound to a reading
// of the simulated host or network, so rule files written in the paper's
// format (Figure 3) evaluate against live simulation state unchanged.

#include <string>

#include "ars/host/host.hpp"
#include "ars/net/network.hpp"
#include "ars/rules/engine.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::monitor {

/// Script names understood by HostSensorSource.
inline constexpr const char* kScriptProcessorStatus = "processorStatus.sh";
inline constexpr const char* kScriptLoadAvg1 = "loadAvg1.sh";
inline constexpr const char* kScriptLoadAvg5 = "loadAvg5.sh";
inline constexpr const char* kScriptProcessCount = "nproc.sh";
inline constexpr const char* kScriptMemFree = "memFree.sh";
inline constexpr const char* kScriptDiskFree = "diskFree.sh";
inline constexpr const char* kScriptNetFlow = "netFlow.sh";  // param in|out
inline constexpr const char* kScriptNtStatIpv4 = "ntStatIpv4.sh";

class HostSensorSource final : public rules::SensorSource {
 public:
  HostSensorSource(host::Host& h, net::Network& network,
                   double window = 10.0)
      : host_(&h), network_(&network), window_(window) {}

  [[nodiscard]] support::Expected<double> sample(
      const std::string& script, const std::string& param) override;

  /// One full status snapshot (what the UPDATE heartbeat carries).
  [[nodiscard]] xmlproto::DynamicStatus snapshot();

  [[nodiscard]] double window() const noexcept { return window_; }

 private:
  host::Host* host_;
  net::Network* network_;
  double window_;
};

/// Static registration payload for a host.
[[nodiscard]] xmlproto::StaticInfo static_info_of(const host::Host& h,
                                                  const net::Network& network);

}  // namespace ars::monitor
