#pragma once
// Monitor entity (paper §3.1, Figure 2): gathers system information on a
// per-state frequency, classifies the host free/busy/overloaded, pushes
// soft-state heartbeats to the registry/scheduler, registers local
// migration-enabled processes, and consults the registry when the host has
// been overloaded long enough (warm-up) to justify a migration.

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "ars/monitor/metricsdb.hpp"
#include "ars/monitor/sensors.hpp"
#include "ars/obs/trace_ctx.hpp"
#include "ars/rules/policy.hpp"
#include "ars/rules/state.hpp"
#include "ars/sim/task.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::monitor {

/// Maps a status snapshot to a host state.  The default classifier derives
/// from a MigrationPolicy: policy triggers -> overloaded; busy when the CPU
/// has meaningful load; free otherwise.
using Classifier =
    std::function<rules::SystemState(const xmlproto::DynamicStatus&)>;

[[nodiscard]] Classifier classifier_from_policy(rules::MigrationPolicy policy,
                                                double busy_load = 0.5);

/// A classifier evaluating a paper-format rule file against live sensors.
[[nodiscard]] Classifier classifier_from_rules(
    std::shared_ptr<rules::RuleEngine> engine,
    std::shared_ptr<rules::SensorSource> sensors);

class Monitor {
 public:
  struct Config {
    std::string registry_host;
    int registry_port = 0;
    int monitor_port = 0;    // allocated if 0
    int commander_port = 0;  // advertised in the registration message
    rules::MigrationPolicy policy;
    Classifier classifier;   // defaults to classifier_from_policy(policy)
    double sensor_window = 10.0;
    /// Soft-state refresh: re-announce static info and the full process
    /// table every this many seconds (0 disables).  A registry that cold
    /// restarts rebuilds its tables purely from these announcements plus
    /// the regular heartbeats (paper §3's soft-state claim).
    double reregister_period = 0.0;
    /// CPU cost of one monitoring cycle (running the `vmstat`/`netstat`
    /// sensor scripts), in reference-CPU seconds — the source of the
    /// rescheduler's measurable overhead (paper §5.1, < 4 %).
    double cycle_cpu_cost = 0.0;
    /// Self-adjustment (the paper's §6 future work: "take feedbacks from
    /// the scheduling and performance history, and automatically improve
    /// its accuracy").  When enabled, the effective warm-up adapts to the
    /// workload: overload episodes that subside before the warm-up expires
    /// (short tasks — migrating would have been a "fault migration")
    /// lengthen it; episodes that outlast it (genuinely long tasks the
    /// monitor made wait) shorten it.
    bool adaptive_warmup = false;
    double warmup_min_factor = 0.5;  // bounds relative to the policy warmup
    double warmup_max_factor = 2.0;
    double warmup_gain = 0.2;        // multiplicative step per episode
    /// Coalesce unchanged-state heartbeats into compact UpdateBatchMsg
    /// lease renewals.  A full UpdateMsg is still sent on every state
    /// change and every `full_status_every` cycles as a keyframe (the
    /// registry rejects renewals from hosts it has expired, so a keyframe
    /// also re-admits after a partition).
    bool delta_heartbeats = false;
    int full_status_every = 6;
    /// Optional observability hooks (not owned): state-transition events
    /// and per-state transition counters.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  Monitor(host::Host& h, net::Network& network, Config config);
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Register with the registry and begin the monitoring loop.
  void start();
  void stop();

  [[nodiscard]] rules::SystemState state() const noexcept { return state_; }
  [[nodiscard]] const MetricsDb& db() const noexcept { return db_; }
  [[nodiscard]] HostSensorSource& sensors() noexcept { return sensors_; }
  [[nodiscard]] int port() const noexcept { return config_.monitor_port; }
  [[nodiscard]] const host::Host& host() const noexcept { return *host_; }

  /// Number of CONSULT messages sent so far.
  [[nodiscard]] int consults_sent() const noexcept { return consults_sent_; }
  /// Full UpdateMsg heartbeats sent (keyframes, when delta mode is on).
  [[nodiscard]] int updates_sent() const noexcept { return updates_sent_; }
  /// Compact lease renewals sent instead of full heartbeats.
  [[nodiscard]] int renewals_sent() const noexcept { return renewals_sent_; }

  /// The warm-up currently in effect (equals the policy's unless adaptive
  /// warm-up has adjusted it).
  [[nodiscard]] double effective_warmup() const noexcept {
    return effective_warmup_;
  }
  /// Overload episodes that ended before the warm-up elapsed (avoided
  /// fault migrations).
  [[nodiscard]] int absorbed_spikes() const noexcept {
    return absorbed_spikes_;
  }

 private:
  [[nodiscard]] sim::Task<> run();
  void push(xmlproto::ProtocolMessage message);
  void push(xmlproto::ProtocolMessage message, obs::TraceCtx ctx);
  [[nodiscard]] double frequency_for(rules::SystemState state) const;
  void sync_process_registrations(bool refresh);

  host::Host* host_;
  net::Network* network_;
  Config config_;
  HostSensorSource sensors_;
  MetricsDb db_;
  rules::SystemState state_ = rules::SystemState::kFree;
  double overloaded_since_ = -1.0;
  double last_consult_at_ = -1.0e9;
  double effective_warmup_ = 0.0;
  bool episode_consulted_ = false;
  int consults_sent_ = 0;
  int updates_sent_ = 0;
  int renewals_sent_ = 0;
  int cycles_since_full_ = 0;
  bool full_sent_ = false;  // at least one keyframe has gone out
  rules::SystemState last_sent_state_ = rules::SystemState::kFree;
  int absorbed_spikes_ = 0;
  std::map<host::Pid, bool> known_pids_;
  sim::Fiber fiber_;
  bool running_ = false;
};

}  // namespace ars::monitor
