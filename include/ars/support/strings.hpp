#pragma once
// String helpers shared by the rule-file and XML parsers.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ars::support {

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Split on a delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Split on runs of ASCII whitespace; no empty fields.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Case-insensitive ASCII comparison.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Lower-cased copy (ASCII).
[[nodiscard]] std::string to_lower(std::string_view text);

/// Parse helpers returning nullopt on any malformed input (no partial reads).
[[nodiscard]] std::optional<double> parse_double(std::string_view text);
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view text);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view separator);

/// printf-free "%.3f"-style formatting used by report tables.
[[nodiscard]] std::string format_fixed(double value, int decimals);

}  // namespace ars::support
