#pragma once
// Byte-order utilities backing HPCM's machine-independent state encoding.
//
// HPCM migrates processes across heterogeneous hosts, so captured state is
// encoded in a canonical (big-endian, fixed-width) form.  The simulated
// hosts carry a declared byte order; encode/decode go through these helpers
// regardless of the byte order of the machine running the simulation.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace ars::support {

enum class ByteOrder {
  kBigEndian,     // e.g. the paper's UltraSPARC workstations
  kLittleEndian,  // e.g. x86 hosts
};

[[nodiscard]] constexpr ByteOrder native_byte_order() noexcept {
  return std::endian::native == std::endian::big ? ByteOrder::kBigEndian
                                                 : ByteOrder::kLittleEndian;
}

[[nodiscard]] constexpr std::uint16_t byteswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
[[nodiscard]] constexpr std::uint32_t byteswap32(std::uint32_t v) noexcept {
  return (v << 24) | ((v & 0xff00U) << 8) | ((v >> 8) & 0xff00U) | (v >> 24);
}
[[nodiscard]] constexpr std::uint64_t byteswap64(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(byteswap32(static_cast<std::uint32_t>(v)))
          << 32) |
         byteswap32(static_cast<std::uint32_t>(v >> 32));
}

/// Append `value` to `out` in big-endian (canonical network) order.
void put_be16(std::vector<std::byte>& out, std::uint16_t value);
void put_be32(std::vector<std::byte>& out, std::uint32_t value);
void put_be64(std::vector<std::byte>& out, std::uint64_t value);
void put_be_double(std::vector<std::byte>& out, double value);

/// Read big-endian values; the span must hold at least the needed bytes
/// starting at `offset`.  Advances `offset`.
[[nodiscard]] std::uint16_t get_be16(std::span<const std::byte> in,
                                     std::size_t& offset);
[[nodiscard]] std::uint32_t get_be32(std::span<const std::byte> in,
                                     std::size_t& offset);
[[nodiscard]] std::uint64_t get_be64(std::span<const std::byte> in,
                                     std::size_t& offset);
[[nodiscard]] double get_be_double(std::span<const std::byte> in,
                                   std::size_t& offset);

}  // namespace ars::support
