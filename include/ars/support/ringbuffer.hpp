#pragma once
// Power-of-two ring buffer for the monitoring hot paths.
//
// The trailing-window structures (monitor::MetricsDb samples, net::FlowMeter
// traffic segments, host::CpuModel busy periods) all share one access
// pattern: push at the back, prune from the front, iterate a recent window.
// `std::deque` serves that pattern through chunk maps and per-chunk
// indirection; this ring serves it from one contiguous power-of-two array,
// so position math is a single mask (no modulo, no chunk lookup) and a
// pruned-and-refilled steady state never allocates.
//
// T must be default-constructible and move-assignable.  Capacity grows by
// doubling when push_back catches the head; bounded uses pop_front first.

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace ars::support {

template <typename T>
class RingBuffer {
 public:
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const RingBuffer* ring, std::size_t pos)
        : ring_(ring), pos_(pos) {}

    reference operator*() const { return (*ring_)[pos_]; }
    pointer operator->() const { return &(*ring_)[pos_]; }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++pos_;
      return old;
    }
    const_iterator& operator--() {
      --pos_;
      return *this;
    }
    const_iterator& operator+=(difference_type n) {
      pos_ += static_cast<std::size_t>(n);
      return *this;
    }
    friend const_iterator operator+(const_iterator it, difference_type n) {
      return it += n;
    }
    friend difference_type operator-(const const_iterator& a,
                                     const const_iterator& b) {
      return static_cast<difference_type>(a.pos_) -
             static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.pos_ != b.pos_;
    }

   private:
    const RingBuffer* ring_ = nullptr;
    std::size_t pos_ = 0;  // logical index: 0 is the oldest element
  };

  RingBuffer() = default;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Physical capacity (a power of two; grows on demand).
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }

  /// Logical index 0 is the oldest element, size()-1 the newest.
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[(head_ + i) & mask_];
  }
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    return data_[(head_ + i) & mask_];
  }

  [[nodiscard]] const T& front() const noexcept { return (*this)[0]; }
  [[nodiscard]] T& front() noexcept { return (*this)[0]; }
  [[nodiscard]] const T& back() const noexcept { return (*this)[count_ - 1]; }
  [[nodiscard]] T& back() noexcept { return (*this)[count_ - 1]; }

  void push_back(T value) {
    if (count_ == data_.size()) {
      grow();
    }
    data_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() noexcept {
    data_[head_] = T{};  // release any owned resources eagerly
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() noexcept {
    while (count_ > 0) {
      pop_front();
    }
    head_ = 0;
  }

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, count_);
  }

 private:
  void grow() {
    const std::size_t next_capacity = data_.empty() ? 8 : data_.size() * 2;
    std::vector<T> next(next_capacity);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(data_[(head_ + i) & mask_]);
    }
    data_ = std::move(next);
    mask_ = next_capacity - 1;
    head_ = 0;
  }

  std::vector<T> data_;   // size is zero or a power of two
  std::size_t mask_ = 0;  // data_.size() - 1 once allocated
  std::size_t head_ = 0;  // physical index of the oldest element
  std::size_t count_ = 0;
};

}  // namespace ars::support
