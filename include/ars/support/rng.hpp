#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (workload arrivals, random tree
// values, jitter) draws from an explicitly seeded generator so experiment
// runs are exactly reproducible.  xoshiro256** is small, fast, and has
// well-studied statistical quality; SplitMix64 expands a single seed into
// the four-word state.

#include <array>
#include <cstdint>

namespace ars::support {

/// SplitMix64 step: used for seeding and as a cheap standalone generator.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x3243f6a8885a308dULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Derive an independent child generator (stream splitting).
  constexpr Rng split() noexcept {
    return Rng{(*this)() ^ 0x9e3779b97f4a7c15ULL};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ars::support
