#pragma once
// Levelled logging with simulation-time stamps.
//
// The logger is deliberately tiny: a global sink with a level filter and an
// optional "simulation clock" hook so every record is stamped with virtual
// time instead of wall time.  Experiments set the hook once when the engine
// is created; modules log through ARS_LOG_* macros which compile down to a
// level check before any formatting happens.
//
// The logger is thread-safe: the level is atomic (checked lock-free by the
// macros) and a mutex serializes sink/clock/forward swaps against writes,
// so records never observe a half-replaced hook.

#include <atomic>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ars::support {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Human-readable name of a level ("TRACE", "DEBUG", ...).
std::string_view to_string(LogLevel level) noexcept;

class Logger {
 public:
  using ClockFn = std::function<double()>;
  using SinkFn = std::function<void(LogLevel, std::string_view component,
                                    std::string_view message, double sim_time)>;

  /// The process-wide logger used by the ARS_LOG_* macros.
  static Logger& global();

  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Install a virtual-time source; pass nullptr to revert to "no time".
  void set_clock(ClockFn clock);

  /// Replace the output sink (default: stderr).  Used by tests to capture.
  void set_sink(SinkFn sink);

  /// A secondary tap receiving every record that passes the level filter,
  /// in addition to the sink.  obs::LogBridge uses this to mirror log
  /// records into a Tracer timeline.  Pass nullptr to remove.
  void set_forward(SinkFn forward);

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger();

  std::atomic<LogLevel> level_{LogLevel::kWarn};
  mutable std::mutex mutex_;  // guards clock_/sink_/forward_ and writes
  ClockFn clock_;
  SinkFn sink_;
  SinkFn forward_;
};

}  // namespace ars::support

#define ARS_LOG_IMPL(level, component, expr)                              \
  do {                                                                    \
    if (::ars::support::Logger::global().enabled(level)) {                \
      std::ostringstream ars_log_oss_;                                    \
      ars_log_oss_ << expr;                                               \
      ::ars::support::Logger::global().write(level, component,            \
                                             ars_log_oss_.str());         \
    }                                                                     \
  } while (false)

#define ARS_LOG_TRACE(component, expr) \
  ARS_LOG_IMPL(::ars::support::LogLevel::kTrace, component, expr)
#define ARS_LOG_DEBUG(component, expr) \
  ARS_LOG_IMPL(::ars::support::LogLevel::kDebug, component, expr)
#define ARS_LOG_INFO(component, expr) \
  ARS_LOG_IMPL(::ars::support::LogLevel::kInfo, component, expr)
#define ARS_LOG_WARN(component, expr) \
  ARS_LOG_IMPL(::ars::support::LogLevel::kWarn, component, expr)
#define ARS_LOG_ERROR(component, expr) \
  ARS_LOG_IMPL(::ars::support::LogLevel::kError, component, expr)
