#pragma once
// A small Result/Expected type used across module boundaries where failure is
// a normal outcome (parsing, lookups, protocol decoding).  We avoid
// exceptions on those paths; exceptions remain for programming errors.

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace ars::support {

/// Error payload: a machine-checkable code plus human-readable detail.
struct Error {
  std::string code;
  std::string message;

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

/// Minimal expected<T, Error>.  `T` must be movable; `void` is supported via
/// the `Status` alias below.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    require_value();
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    if (has_value()) {
      throw std::logic_error("Expected::error() on a value");
    }
    return std::get<1>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(data_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void require_value() const {
    if (!has_value()) {
      throw std::logic_error("Expected::value() on error: " +
                             std::get<1>(data_).to_string());
    }
  }

  std::variant<T, Error> data_;
};

/// Success-or-error with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Error& error() const {
    if (is_ok()) {
      throw std::logic_error("Status::error() on OK status");
    }
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace ars::support
