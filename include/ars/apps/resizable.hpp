#pragma once
// Resizable variants of the paper's workloads.  The migratable apps in
// stencil.hpp / matmul.hpp fix their world size at launch; these factories
// map the same parameter spaces onto malleable::Workload — the
// block-decomposed SPMD shape the malleable engine can grow and shrink at
// iteration boundaries.

#include "ars/apps/matmul.hpp"
#include "ars/apps/stencil.hpp"
#include "ars/malleable/malleable.hpp"

namespace ars::apps {

/// 1-D Jacobi sweep as a malleable job: one block per former "rank's worth"
/// of cells, halo traffic folded into the per-iteration sync payload.
/// `blocks` sets the resize granularity (more blocks = finer rebalancing).
[[nodiscard]] malleable::Workload resizable_stencil(
    const Stencil1D::Params& params, int blocks = 32);

/// Blocked matmul as a malleable job: row blocks of C are the distribution
/// unit, k-panels of B are the iterations, and each owner holds its A and C
/// row blocks as named state.
[[nodiscard]] malleable::Workload resizable_matmul(const MatMul::Params& params);

}  // namespace ars::apps
