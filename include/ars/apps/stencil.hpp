#pragma once
// 1-D Jacobi stencil over an MPI world — the workload class the paper's
// system actually targets: a *parallel MPI program* whose individual ranks
// can be rescheduled while the others keep exchanging halos with them.
// Communication state transfer is exercised for real: messages sent toward
// a migrating rank are forwarded to its new host.

#include <cstdint>
#include <string>
#include <vector>

#include "ars/hpcm/migration.hpp"

namespace ars::apps {

class Stencil1D {
 public:
  struct Params {
    std::int64_t cells_per_rank = 4096;
    int iterations = 50;
    /// Reference-CPU seconds per cell update.
    double work_per_cell = 1.0e-4;
    /// Bytes exchanged per halo message.
    double halo_bytes = 8.0;
  };

  struct RankResult {
    bool finished = false;
    double local_sum = 0.0;
    std::string finished_on;
    int migrations = 0;
  };

  /// App run by every rank of the world.  `results` must have one slot per
  /// rank and outlive the run.
  [[nodiscard]] static hpcm::MigrationEngine::MigratableApp make(
      Params params, std::vector<RankResult>* results);

  /// The value every interior cell converges toward is irrelevant here;
  /// what matters is determinism: the per-rank sums of a run with
  /// migrations must equal those of an undisturbed run.
  [[nodiscard]] static std::vector<double> reference_sums(
      const Params& params, int ranks);

  [[nodiscard]] static double total_work_per_rank(const Params& params) {
    return static_cast<double>(params.cells_per_rank) *
           params.iterations * params.work_per_cell;
  }

  [[nodiscard]] static hpcm::ApplicationSchema schema(
      const Params& params, const std::string& name = "stencil1d");
};

}  // namespace ars::apps
