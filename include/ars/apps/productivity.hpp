#pragma once
// Productivity campaign: a job queue run through the full runtime twice —
// once with static worlds, once with the registry's resize planner enabled
// — to measure what malleability buys in makespan and cluster utilization
// (the DMR line of work's headline claim, grafted onto the paper's
// registry).

#include <string>
#include <vector>

#include "ars/core/runtime.hpp"
#include "ars/malleable/malleable.hpp"
#include "ars/support/expected.hpp"

namespace ars::apps {

struct QueueJob {
  std::string name;
  /// "stencil" | "matmul" | "custom" — presets fill the workload from the
  /// classic app parameter spaces; "custom" takes the workload verbatim.
  std::string kind = "custom";
  double arrival = 0.0;
  int initial_ranks = 2;
  int min_ranks = 1;
  int max_ranks = 16;
  malleable::Workload workload;
};

struct QueuePlan {
  int hosts = 8;
  double resize_cooldown = 10.0;
  int max_expand_step = 4;
  std::vector<QueueJob> jobs;
};

/// Parse a productivity plan from JSON text.  Unknown keys (top-level or
/// per-job) are errors, with the offending key path in the message.
[[nodiscard]] support::Expected<QueuePlan> load_queue_plan(
    const std::string& json_text);

struct CampaignResult {
  bool all_finished = false;
  double makespan = 0.0;     // time of the last job completion
  double utilization = 0.0;  // busy cpu-seconds / (hosts * makespan)
  int resizes_commanded = 0;
  int resizes_committed = 0;
  std::vector<double> finish_times;  // per job, plan order
};

/// Run the queue through a fresh runtime.  With `malleability` the registry
/// sweep may expand jobs into idle hosts and shrink them off overloaded
/// ones; without it every job keeps its initial world.
[[nodiscard]] CampaignResult run_queue(const QueuePlan& plan,
                                       bool malleability,
                                       double deadline = 36000.0);

}  // namespace ars::apps
