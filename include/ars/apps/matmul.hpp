#pragma once
// Blocked matrix multiplication — a second migration-enabled workload with
// a different state profile: large dense matrices (bulk state dominates)
// and row-block progress that maps naturally onto poll-points.

#include <cstdint>
#include <string>

#include "ars/hpcm/migration.hpp"

namespace ars::apps {

class MatMul {
 public:
  struct Params {
    int n = 128;               // square matrix dimension
    int block_rows = 8;        // rows multiplied between poll-points
    std::uint64_t seed = 7;
    /// Reference-CPU seconds per multiply-accumulate (scaled so a 128^3
    /// multiply lasts minutes on the reference workstation).
    double work_per_flop = 2.0e-5;
  };

  struct Result {
    bool finished = false;
    double checksum = 0.0;  // sum of C's entries
    std::string finished_on;
    double finished_at = 0.0;
    int migrations = 0;
  };

  [[nodiscard]] static hpcm::MigrationEngine::MigratableApp make(
      Params params, Result* out);

  /// Checksum the run must produce (migration invariant).
  [[nodiscard]] static double expected_checksum(const Params& params);

  [[nodiscard]] static double total_work(const Params& params) {
    const double n = params.n;
    return 2.0 * n * n * n * params.work_per_flop;
  }

  [[nodiscard]] static hpcm::ApplicationSchema schema(
      const Params& params, const std::string& name = "matmul");
};

}  // namespace ars::apps
