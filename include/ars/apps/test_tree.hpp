#pragma once
// The paper's evaluation workload: "a computational intensive
// migration-enabled application named 'test_tree', which creates binary
// trees with specified number of levels, assigns a random number to each
// node of the trees, sorts the trees and computes the sum of all the tree
// nodes."
//
// The tree is held as an implicit complete binary tree (value array).  The
// data operations are executed for real — the final sum is a migration
// invariant checked by the tests — while the CPU cost of each phase is
// charged to the simulated processor in poll-point-sized chunks.

#include <cstdint>
#include <string>

#include "ars/hpcm/migration.hpp"
#include "ars/support/rng.hpp"

namespace ars::apps {

class TestTree {
 public:
  struct Params {
    int levels = 18;          // nodes = 2^levels - 1
    std::uint64_t seed = 42;  // value assignment stream
    /// Reference-CPU seconds of work per 1000 nodes, per phase.
    double build_work_per_knode = 0.10;
    double fill_work_per_knode = 0.05;
    double sort_work_per_knode = 0.55;  // dominates, ~n log n flavor
    double sum_work_per_knode = 0.05;
    /// Compute chunk between poll-points (the paper observes ~1.4 s to
    /// reach the nearest poll-point).
    double chunk_work = 1.4;
    /// Bytes per tree node beyond the 8-byte value (pointers, padding) —
    /// migrated as opaque bulk state.
    std::uint64_t node_overhead_bytes = 24;
  };

  struct Result {
    bool finished = false;
    double sum = 0.0;
    bool sorted = false;      // values non-decreasing after SORT
    std::string finished_on;
    double finished_at = 0.0;
    int migrations = 0;
  };

  /// Build the migratable app coroutine.  `out` must outlive the run.
  [[nodiscard]] static hpcm::MigrationEngine::MigratableApp make(
      Params params, Result* out);

  /// The sum the run must produce (deterministic in seed and levels).
  [[nodiscard]] static double expected_sum(const Params& params);

  [[nodiscard]] static std::int64_t node_count(const Params& params) {
    return (std::int64_t{1} << params.levels) - 1;
  }

  /// Total reference-CPU work of a full run (for schema estimates).
  [[nodiscard]] static double total_work(const Params& params);

  /// A ready-made application schema for these parameters.
  [[nodiscard]] static hpcm::ApplicationSchema schema(
      const Params& params, const std::string& name = "test_tree");
};

}  // namespace ars::apps
