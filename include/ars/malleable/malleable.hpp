#pragma once
// ars::malleable — grow/shrink as a first-class scheduler action.
//
// The paper's registry can only *move* a process.  This subsystem adds the
// malleability verbs the DMR line of work argues for: expand(job, +k) spawns
// k new ranks over the MPI-2 DPM layer (sequential or binomial-tree
// fan-out), shrink(job, -k) retires k ranks at the job's next poll-point.
// Both run as transactions with the same rigor as hpcm migration: phased
// (plan -> spawn -> redistribute -> commit), per-phase timeouts, rollback on
// failure, and a terminal outcome the commander reports back to the registry
// so placement debits are credited exactly like MigrationOutcomeMsg.
//
// A malleable job is a block-decomposed iterative SPMD computation (stencil
// sweeps, blocked matmul): every iteration the root broadcasts a sync
// payload, each rank computes its contiguous block range, and workers check
// in with the root.  The iteration boundary is the poll-point: resizes are
// requested asynchronously but only take effect between iterations, so the
// membership is stable while a compute step is in flight.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ars/hpcm/stateregistry.hpp"
#include "ars/mpi/mpi.hpp"
#include "ars/obs/trace_ctx.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::malleable {

enum class ResizeVerb { kExpand, kShrink };

[[nodiscard]] const char* verb_name(ResizeVerb verb);
[[nodiscard]] std::optional<ResizeVerb> verb_from(std::string_view name);

/// Terminal outcome strings (wire values of ResizeOutcomeMsg.outcome).
inline constexpr const char* kCommitted = "committed";
inline constexpr const char* kAborted = "aborted";
inline constexpr const char* kPartialRollback = "partial-rollback";

/// The block-decomposed computation a malleable job runs.  `blocks` is the
/// unit of decomposition AND of state redistribution: each block carries
/// `bytes_per_block` of named state that must move when ownership changes.
struct Workload {
  int blocks = 64;
  /// Reference-CPU seconds per block per iteration (CpuModel units).
  double work_per_block = 0.2;
  double bytes_per_block = 1.0e6;  // state shard bytes per block
  int iterations = 10;
  double sync_bytes = 4096.0;  // per-iteration root broadcast payload
};

struct JobSpec {
  std::string name;
  Workload workload;
  int min_ranks = 1;
  int max_ranks = 64;
  mpi::SpawnStrategy strategy = mpi::SpawnStrategy::kTree;
};

/// Terminal record of one resize transaction (mirrors hpcm's
/// MigrationOutcome; feeds the registry's debit accounting).
struct ResizeOutcome {
  std::string job;
  ResizeVerb verb = ResizeVerb::kExpand;
  int delta = 0;
  std::vector<std::string> hosts;  // spawn targets / vacated hosts
  std::string outcome;             // kCommitted | kAborted | kPartialRollback
  std::string reason;              // set on failure ("spawn-timeout", ...)
  std::string phase;               // phase the failure hit
  int ranks_before = 0;
  int ranks_after = 0;
  double started_at = 0.0;
  double finished_at = 0.0;
  double spawn_seconds = 0.0;
  double redistribute_seconds = 0.0;
  double redistributed_bytes = 0.0;
  int spawn_rounds = 0;  // DPM rounds (sequential: k, tree: depth)
  obs::TraceCtx trace;
};

/// Phase-entry notification for fault injectors and tests.
struct ResizePhaseEvent {
  std::string job;
  ResizeVerb verb = ResizeVerb::kExpand;
  std::string phase;  // "plan" | "spawn" | "redistribute" | "commit"
  double at = 0.0;
  /// Spawn targets (expand) or hosts being vacated (shrink) — fault
  /// injectors aim at these.
  std::vector<std::string> hosts;
};

/// Runs malleable jobs and their resize transactions.  One engine per
/// cluster; jobs are identified by their spec name.
class MalleableEngine {
 public:
  struct Options {
    double spawn_timeout = 20.0;
    double redistribute_timeout = 30.0;
    /// Charged at commit for the intercommunicator merge, per DPM round.
    double merge_overhead_per_round = 0.05;
    /// Chaos: leave freshly spawned ranks alive after a failed
    /// redistribution instead of rolling them back (must trip the
    /// `no-lost-rank` invariant).
    bool sabotage_skip_resize_rollback = false;
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  using OutcomeListener = std::function<void(const ResizeOutcome&)>;
  using PhaseListener = std::function<void(const ResizePhaseEvent&)>;

  MalleableEngine(mpi::MpiSystem& mpi, net::Network& network);
  MalleableEngine(mpi::MpiSystem& mpi, net::Network& network,
                  Options options);
  ~MalleableEngine();
  MalleableEngine(const MalleableEngine&) = delete;
  MalleableEngine& operator=(const MalleableEngine&) = delete;

  /// Launch a resizable job with one rank per host (hosts[0] is the root,
  /// which never retires).  Returns the initial members in rank order.
  std::vector<mpi::RankId> launch(const JobSpec& spec,
                                  const std::vector<std::string>& hosts);

  /// Request a resize; it takes effect at the job's next poll-point.
  /// For an expand, `hosts` must name exactly `delta` spawn targets; for a
  /// shrink they are the hosts to vacate (empty: the engine picks the
  /// highest-rank non-root members).  Returns false when the request cannot
  /// even be queued (unknown/finished job, resize already pending, bad
  /// delta) — no outcome is emitted in that case.
  bool request_resize(const std::string& job, ResizeVerb verb, int delta,
                      std::vector<std::string> hosts = {},
                      std::optional<mpi::SpawnStrategy> strategy = {},
                      obs::TraceCtx trace = {});

  // -- introspection --------------------------------------------------------
  [[nodiscard]] bool known(const std::string& job) const;
  [[nodiscard]] int ranks(const std::string& job) const;
  [[nodiscard]] std::vector<std::string> rank_hosts(
      const std::string& job) const;
  [[nodiscard]] bool finished(const std::string& job) const;
  [[nodiscard]] bool failed(const std::string& job) const;
  [[nodiscard]] double finished_at(const std::string& job) const;
  [[nodiscard]] bool resizing(const std::string& job) const;
  [[nodiscard]] bool all_finished() const;
  /// Total block-iterations completed so far; equals
  /// blocks * iterations at finish when no rank was lost mid-iteration.
  [[nodiscard]] long long processed_blocks(const std::string& job) const;
  [[nodiscard]] double state_bytes(const std::string& job) const;
  [[nodiscard]] std::vector<std::string> job_names() const;
  [[nodiscard]] const std::vector<ResizeOutcome>& history() const {
    return history_;
  }
  /// Ground truth for the chaos no-lost-rank invariant: ranks found alive
  /// but outside their job's membership at the instant a terminal resize
  /// outcome was reported.  Always 0 for a correct protocol; the
  /// sabotage_skip_resize_rollback knob makes it count.
  [[nodiscard]] long long ghost_ranks() const noexcept { return ghost_ranks_; }

  // -- chaos hooks ----------------------------------------------------------
  /// Stall the named phase ("spawn" | "redistribute") by `seconds` at entry
  /// (drives the phase into its timeout).  Zero clears the stall.
  void set_phase_stall(const std::string& phase, double seconds);
  /// Kill an in-flight spawn toward `host` and abort the transaction with
  /// reason "no-capacity".  Returns false when no matching spawn is active.
  bool fail_resize_target(const std::string& job, const std::string& host);
  /// Host died: repair affected jobs at their next boundary; a dead root
  /// tears the whole job down.  Returns ranks lost.
  int on_host_failed(const std::string& host);

  void set_outcome_listener(OutcomeListener listener) {
    outcome_listener_ = std::move(listener);
  }
  void set_phase_listener(PhaseListener listener) {
    phase_listener_ = std::move(listener);
  }

  [[nodiscard]] sim::Engine& engine() const { return mpi_->engine(); }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Job;
  struct PendingResize;
  struct ResizeTx;

  [[nodiscard]] sim::Task<> member_main(std::shared_ptr<Job> job,
                                        mpi::Proc& proc);
  [[nodiscard]] sim::Task<> root_main(std::shared_ptr<Job> job,
                                      mpi::Proc& proc);
  [[nodiscard]] sim::Task<> worker_main(std::shared_ptr<Job> job,
                                        int join_iter, mpi::Proc& proc);
  [[nodiscard]] sim::Task<> execute_resize(std::shared_ptr<Job> job,
                                           mpi::Proc& proc);
  [[nodiscard]] sim::Task<> spawn_phase(std::shared_ptr<Job> job,
                                        mpi::Proc* proc);
  [[nodiscard]] sim::Task<> redistribute_phase(std::shared_ptr<Job> job);
  [[nodiscard]] sim::Task<bool> await_phase(Job& job, double timeout_seconds);

  void repair_membership(Job& job);
  void apply_assignment(Job& job);
  void finish_job(Job& job);
  void teardown_job(Job& job, const std::string& reason);
  void finish_resize(Job& job, const std::string& outcome,
                     const std::string& reason, const std::string& phase);
  void notify_phase(Job& job, const std::string& phase);
  [[nodiscard]] int live_workers(const Job& job) const;
  [[nodiscard]] std::string validate_resize(const Job& job,
                                            const ResizeTx& tx) const;
  [[nodiscard]] const Job* find_job(const std::string& name) const;
  [[nodiscard]] Job* find_job(const std::string& name);

  mpi::MpiSystem* mpi_;
  net::Network* network_;
  Options options_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::vector<ResizeOutcome> history_;
  long long ghost_ranks_ = 0;
  std::map<std::string, double> phase_stalls_;
  OutcomeListener outcome_listener_;
  PhaseListener phase_listener_;
};

/// Balanced contiguous block partition: rank r of n owns
/// [r*B/n, (r+1)*B/n) — the canonical re-decomposition used at every
/// resize.  Exposed for tests and the redistribution planner.
[[nodiscard]] std::vector<int> partition_blocks(int blocks, int ranks);

}  // namespace ars::malleable
