#pragma once
// Registry/scheduler entity (paper §3.2): global system-state manager and
// decision maker.
//
//   * Soft-state host table: monitors push REGISTER once and UPDATE
//     heartbeats; a lease sweeper marks silent hosts `unavailable`.
//   * Process registry: migration-enabled processes with start times and
//     application-schema keys.
//   * Decision making: on CONSULT from an overloaded host, select the
//     process with the *latest completion time* (start time + schema
//     estimate) and the *first-fit* destination — the first registered host
//     that is in the `free` state, passes the policy's destination
//     conditions, and satisfies the schema's resource requirements — then
//     command the source host's commander to migrate.
//   * Hierarchy: a registry may have a parent; when no local candidate
//     exists the consult escalates ("the migration destination is chosen
//     inside one's control domain" when possible).
//
// Scale: every `HostEntry` is threaded onto an intrusive per-`SystemState`
// list ordered by `registration_order`, maintained in place on every state
// transition, so a decision walks only the `free` list — O(eligible) — while
// the audited slow path keeps the full O(hosts) verdict trail.  See
// DESIGN.md §10.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ars/ckpt/strategy.hpp"
#include "ars/hpcm/schema.hpp"
#include "ars/net/network.hpp"
#include "ars/obs/trace_ctx.hpp"
#include "ars/rules/policy.hpp"
#include "ars/rules/state.hpp"
#include "ars/sim/task.hpp"
#include "ars/support/rng.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::registry {

struct HostEntry {
  xmlproto::StaticInfo info;
  xmlproto::DynamicStatus status;
  rules::SystemState state = rules::SystemState::kUnavailable;
  double last_update = -1.0;
  int monitor_port = 0;
  int commander_port = 0;
  int registration_order = 0;  // first-fit scans in this order
  bool draining = false;       // evacuated: never a destination again
  /// At least one full UpdateMsg has been applied since the host was last
  /// (re)admitted — until then `status` may be stale pre-crash data and the
  /// host must not be offered as a destination.
  bool status_seen = false;
  /// A migration to this host aborted or rolled back recently; it is not
  /// offered as a destination again until this (re-admission backoff)
  /// deadline passes.  Heartbeats keep flowing and refresh the lease.
  double suspect_until = -1.0;
  /// Intrusive links for the registry's per-state index.  Owned and
  /// maintained by the Registry; meaningless in copies of the entry.
  HostEntry* index_prev = nullptr;
  HostEntry* index_next = nullptr;
};

/// Destination-choice strategy.  The paper uses first-fit ("the
/// registry/scheduler chooses the first host, which is ready and owns all
/// the resources required"); best-fit and random-fit are provided for the
/// ablation benches.
enum class DestinationStrategy { kFirstFit, kBestFit, kRandomFit };

/// When to produce the per-host `CandidateAudit` trail.  The audited scan is
/// inherently O(hosts) (every host gets a verdict), so large clusters run
/// with the audit off and use the state index instead.
enum class AuditMode {
  kAuto,    // audit iff a tracer is configured (pre-index behaviour)
  kAlways,  // audit every decision even without a tracer
  kOff,     // never audit: always take the indexed fast path
};

struct ProcessEntry {
  std::string host;
  int pid = 0;
  std::string name;
  double start_time = 0.0;
  std::string schema_name;
  double last_migrated_at = -1.0e9;
};

/// Verdict on one host considered as a migration destination — the audit
/// trail of the first-fit scan.  Every registered host appears exactly once
/// per decision, in registration (scan) order.
struct CandidateAudit {
  std::string host;
  bool accepted = false;  // passed every destination condition
  /// "chosen (...)", "eligible (not chosen)", or the rejection cause
  /// ("source host", "draining", "state=busy (not free)", ...).
  std::string reason;
};

/// One scheduling decision, for the experiment logs.
struct Decision {
  double at = 0.0;
  std::string source;
  std::string destination;  // empty if none found
  int pid = 0;
  std::string process_name;
  double decision_latency = 0.0;
  bool escalated = false;
  bool restart = false;  // failure recovery rather than live migration
  /// Why each registered host was or was not the destination.
  std::vector<CandidateAudit> candidates;
};

/// One registered malleable job the resize planner manages: the registry
/// watches its state indexes for slack (free hosts -> expand) and pressure
/// (overloaded member hosts -> shrink) and commands the resize through the
/// job's root-host commander.  `ranks` is soft state, re-synced by every
/// ResizeOutcomeMsg.
struct MalleableJobEntry {
  std::string name;
  std::string root_host;
  int ranks = 0;
  int min_ranks = 1;
  int max_ranks = 64;
  std::string strategy;  // "sequential" | "tree" | "" (job default)
  double last_resize_at = -1.0e9;
  bool resizing = false;  // a command is in flight awaiting its outcome
  /// Expand targets of the in-flight command; marked suspect on failure.
  std::vector<std::string> pending_targets;
};

/// What a parent registry knows about one child domain, from the child's
/// periodic HealthReportMsg.  `routed_consults` counts consults forwarded to
/// the child since its last report — a conservative in-flight debit so
/// escalations spread across domains instead of piling onto the child that
/// reported the most free hosts.
struct ChildDomain {
  int port = 0;
  int free_hosts = 0;
  int busy_hosts = 0;
  int overloaded_hosts = 0;
  double last_report = -1.0;
  int routed_consults = 0;
};

class Registry {
 public:
  struct Config {
    int port = 0;  // allocated if 0
    rules::MigrationPolicy policy;  // destination conditions
    double lease_ttl = 35.0;        // ~3 missed 10 s heartbeats
    double sweep_period = 5.0;
    /// The paper measures ~0.002 s to make a migration decision.
    double decision_delay = 0.002;
    /// Minimum spacing between migrations of the same process.
    double per_process_cooldown = 30.0;
    /// Parent registry for hierarchical escalation (empty: none).
    std::string parent_host;
    int parent_port = 0;
    double health_report_period = 30.0;
    /// How the destination is chosen among eligible hosts.
    DestinationStrategy strategy = DestinationStrategy::kFirstFit;
    std::uint64_t random_seed = 1;  // for kRandomFit (deterministic runs)
    /// Processes with schema data-locality at or above this are not
    /// selected for migration (paper §5.3: "if a process involves a lot in
    /// a local data access, the process is not to be migrated").
    double locality_threshold = 0.5;
    /// When a host's soft-state lease expires (crash), command the
    /// relaunch of its registered processes on other hosts (from their
    /// checkpoints, via the destination commanders).
    bool auto_restart = false;
    /// Re-admission backoff after a MigrationOutcomeMsg reports a failed
    /// destination: the host is filtered from eligibility for this long.
    double suspect_backoff = 30.0;
    /// An in-flight placement debit whose outcome never arrives (lost
    /// report, dead commander) is dropped by the sweeper after this long.
    double placement_debit_ttl = 120.0;
    /// On an aborted migration (process still on the source), immediately
    /// issue a fresh consult for the source host instead of waiting for
    /// the monitor's next overload report.
    bool replan_on_abort = true;
    /// A commanded relaunch is fire-and-forget on the wire; if no monitor
    /// re-reports the process within this long, the registry re-parks it
    /// on the stranded list and retries (the middleware's single-consumer
    /// checkpoint park makes a duplicate command a harmless no-op).
    double relaunch_confirm_ttl = 15.0;
    /// Plan expand/shrink for registered malleable jobs during the sweep.
    bool enable_resize = false;
    /// Minimum spacing between commanded resizes of the same job.
    double resize_cooldown = 30.0;
    /// Upper bound on new ranks per expand command.
    int max_expand_step = 4;
    /// Current hosts of a malleable job (wired by the runtime): used to
    /// avoid doubling ranks onto member hosts and to pick pressure victims.
    std::function<std::vector<std::string>(const std::string&)> job_hosts;
    /// Cooperative checkpoint I/O scheduling (DESIGN.md §17): answer
    /// CkptIoRequestMsg with admit/defer/preempt grants so concurrent
    /// checkpoint writes do not saturate the shared store.
    bool enable_ckpt_io = false;
    /// Concurrent checkpoint writes admitted before deferring.
    int ckpt_max_concurrent = 2;
    /// Base defer backoff; scaled by store crowding.
    double ckpt_defer_retry = 5.0;
    /// Risk ratio at which a requester preempts the least-risky writer.
    double ckpt_preempt_risk = 2.0;
    /// Admitted slots reaped after this long without a done/abort.
    double ckpt_slot_ttl = 120.0;
    /// Per-host audit trail policy (see AuditMode).
    AuditMode audit = AuditMode::kAuto;
    /// Force the pre-index full-table scan even when no audit is wanted —
    /// the reference implementation for equivalence checks and benches.
    bool use_legacy_scan = false;
    /// Optional observability hooks (not owned): decision spans, audit
    /// events, and scheduler/lease metrics.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  Registry(host::Host& h, net::Network& network, Config config);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void start();
  void stop();

  /// Drop all soft state (host table, process registry, registration
  /// order, stranded-restart queue) — a cold restart.  Schemas and the
  /// decision log survive: they are configuration and audit trail, not
  /// soft state.  Call while stopped; the tables rebuild from subsequent
  /// monitor announcements.
  void clear_soft_state();

  [[nodiscard]] int port() const noexcept { return config_.port; }
  [[nodiscard]] const std::string& host_name() const {
    return host_->name();
  }

  /// Make an application schema known to the scheduler (resource
  /// requirements + execution-time estimates used by the selector).
  void register_schema(const hpcm::ApplicationSchema& schema);

  [[nodiscard]] const std::map<std::string, HostEntry>& hosts() const {
    return hosts_;
  }
  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] std::optional<rules::SystemState> host_state(
      const std::string& name) const;
  [[nodiscard]] std::size_t process_count() const {
    return processes_.size();
  }

  /// Apply one protocol message as if it had arrived over the wire from
  /// `from_host` — the serve loop routes through this; benches and tests
  /// use it to drive the registry without paying for network simulation.
  /// `ctx` is the causal context of the message's envelope (unset when the
  /// sender attached none).
  void deliver(const xmlproto::ProtocolMessage& message,
               const std::string& from_host, obs::TraceCtx ctx = {});

  /// Scheduling core, also callable directly by tests: pick a destination
  /// for a migration off `source_host` using the configured strategy
  /// (nullopt if no eligible host).  When `audit` is non-null it receives
  /// one verdict per registered host, in scan order.
  [[nodiscard]] std::optional<std::string> choose_destination(
      const std::string& source_host, const std::string& schema_name,
      std::vector<CandidateAudit>* audit = nullptr);

  /// The paper's default strategy, regardless of configuration.
  [[nodiscard]] std::optional<std::string> first_fit_destination(
      const std::string& source_host, const std::string& schema_name);

  /// Hosts eligible as destination, in registration order.  When `audit`
  /// is non-null it receives a verdict (with rejection reason) per host —
  /// the full-table reference scan.  With `audit == nullptr` (and the
  /// legacy scan not forced) only the `free` index list is walked; both
  /// paths yield the identical eligible sequence.
  [[nodiscard]] std::vector<const HostEntry*> eligible_destinations(
      const std::string& source_host, const std::string& schema_name,
      std::vector<CandidateAudit>* audit = nullptr) const;

  /// Selector: the migration-enabled process on `source_host` with the
  /// latest estimated completion time.
  [[nodiscard]] const ProcessEntry* select_process(
      const std::string& source_host);

  /// Fault-tolerance path (paper §6: "reschedule when the machine will
  /// shut down, intrusion is detected"): command every migration-enabled
  /// process off `host` and stop treating it as a destination.  Also
  /// reachable over the wire via an EvacuateMsg.
  void request_evacuation(const std::string& host, const std::string& reason);

  /// Number of evacuation commands issued so far.
  [[nodiscard]] int evacuations_commanded() const noexcept {
    return evacuations_commanded_;
  }

  /// Make a malleable job known to the resize planner (like schemas, job
  /// registrations are configuration and survive a cold restart; `ranks`
  /// re-syncs from outcome reports).
  void register_malleable_job(const std::string& name,
                              const std::string& root_host, int ranks,
                              int min_ranks, int max_ranks,
                              const std::string& strategy = "");
  [[nodiscard]] const std::map<std::string, MalleableJobEntry>&
  malleable_jobs() const {
    return malleable_jobs_;
  }
  /// Number of resize commands issued so far.
  [[nodiscard]] int resizes_commanded() const noexcept {
    return resizes_commanded_;
  }

  /// Canonical one-line-per-decision log (no audit trail) — byte-comparable
  /// across indexed and legacy runs of the same scenario.
  [[nodiscard]] std::string decision_log() const;

  // -- state-index introspection (tests, benches) ---------------------------
  /// Host names on the index list for `state`, in list order.
  [[nodiscard]] std::vector<std::string> indexed_hosts(
      rules::SystemState state) const;
  [[nodiscard]] std::size_t indexed_count(rules::SystemState state) const;
  /// Every host is on exactly the list matching its state, list sizes are
  /// right, links are coherent, and the free list is ordered by
  /// registration_order.
  [[nodiscard]] bool index_consistent() const;

  /// Lost processes waiting for capacity to restart (retried every sweep).
  [[nodiscard]] const std::vector<ProcessEntry>& stranded() const {
    return stranded_;
  }

  /// Child domains known from HealthReportMsg (parent registries only).
  [[nodiscard]] const std::map<std::string, ChildDomain>& children() const {
    return children_;
  }

  /// Migration placements commanded but not yet resolved by a
  /// MigrationOutcomeMsg (each debits its destination's capacity).
  [[nodiscard]] std::size_t inflight_placements() const {
    return inflight_.size();
  }

  /// Central checkpoint-write admission state (enable_ckpt_io).
  [[nodiscard]] const ckpt::IoScheduler& ckpt_io() const { return ckpt_io_; }

 private:
  /// In-flight placements of one recovery round: restarts already commanded
  /// count against a destination's capacity before its next heartbeat can
  /// reflect them, so a dead host's processes spread instead of piling onto
  /// the first free host.
  struct RecoveryRound {
    struct Debit {
      int placements = 0;
      std::uint64_t memory_bytes = 0;
      std::uint64_t disk_bytes = 0;
    };
    std::map<std::string, Debit> by_host;
  };

  /// One commanded live migration awaiting its terminal outcome.  While
  /// outstanding it debits the destination's capacity (resource
  /// requirements snapshotted at command time) exactly like a
  /// RecoveryRound placement, so simultaneous placements spread.
  struct PlacementDebit {
    std::string process;
    std::string dest;
    std::string schema_name;  // to rebuild the entry if the books lost it
    double at = 0.0;
    std::uint64_t memory_bytes = 0;
    std::uint64_t disk_bytes = 0;
  };

  /// A commanded relaunch awaiting confirmation: the destination monitor
  /// must re-report the process before `relaunch_confirm_ttl` lapses, or
  /// the registry assumes the command was lost and retries.
  struct PendingRelaunch {
    ProcessEntry process;
    std::string dest;
    double commanded_at = 0.0;
  };

  [[nodiscard]] sim::Task<> serve();
  [[nodiscard]] sim::Task<> sweep();
  [[nodiscard]] sim::Task<> report_health();
  void handle(const xmlproto::ProtocolMessage& message,
              const std::string& from_host, obs::TraceCtx ctx);
  [[nodiscard]] sim::Task<> decide(xmlproto::ConsultMsg consult,
                                   obs::TraceCtx ctx);
  [[nodiscard]] sim::Task<> evacuate(std::string drained_host,
                                     std::string reason);
  void restart_processes_of(const std::string& lost_host);
  /// Place one lost process (shared by the recovery round and the stranded
  /// retry drain).  Returns false when no destination exists; the process
  /// is parked on `stranded_` (`record_stranded` controls whether the
  /// failure is also logged as a decision — only the first time is).
  /// `cause` links the restart's fresh transaction to the one that killed
  /// the previous incarnation (rolled-back migrations) via a cause_txn
  /// attribute on the decision event.
  bool restart_process(const ProcessEntry& process, RecoveryRound& round,
                       bool record_stranded, obs::TraceCtx cause = {});
  void drain_stranded();
  /// Drop a process from the relaunch retry pipeline (stranded list and
  /// pending confirmations): it deregistered cleanly or a commander reported
  /// it already exited, so re-commanding its restart forever is wrong.
  void abandon_relaunch(const std::string& process_name,
                        const std::string& reason);
  /// Re-park commanded relaunches that no monitor has confirmed within
  /// `relaunch_confirm_ttl` (the RelaunchCmd was lost on the wire).
  void confirm_relaunches(double now);
  /// Record an in-flight placement debit for a freshly commanded migration
  /// (any older debit of the same process is superseded).
  void debit_placement(const std::string& process_name,
                       const std::string& dest,
                       const std::string& schema_name);
  /// Apply a commander's MigrationOutcomeMsg: credit the placement debit
  /// back, mark failed destinations suspect, and re-plan aborts.  `ctx` is
  /// the transaction the outcome closes; a replanned consult opens a new
  /// transaction linked to it by a cause_txn attribute.
  void on_migration_outcome(const xmlproto::MigrationOutcomeMsg& outcome,
                            obs::TraceCtx ctx);
  /// Resize planner: slack/pressure detection over the state indexes,
  /// one command per eligible job per sweep tick.
  void plan_resizes(double now);
  void command_resize(MalleableJobEntry& job, const std::string& verb,
                      std::vector<std::string> hosts, double now);
  /// Apply a commander's ResizeOutcomeMsg: credit the per-target placement
  /// debits, re-sync the job's rank count, and suspect failed targets —
  /// the malleable mirror of on_migration_outcome.
  void on_resize_outcome(const xmlproto::ResizeOutcomeMsg& outcome,
                         obs::TraceCtx ctx);
  /// Answer one checkpoint-write I/O event (enable_ckpt_io): request ->
  /// admit/defer grant (possibly preempting an active writer), done/abort
  /// -> slot release.  Grants route to the requesting host's commander.
  void on_ckpt_io_request(const xmlproto::CkptIoRequestMsg& request,
                          obs::TraceCtx ctx);
  /// Send a CkptIoGrantMsg to the commander of `host` (no-op for unknown
  /// hosts or hosts without a known commander port).
  void send_ckpt_grant(const std::string& host,
                       const xmlproto::CkptIoGrantMsg& grant,
                       obs::TraceCtx ctx);
  /// Summed in-flight debits against `host_name` (0/0 when none).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> inflight_debit(
      const std::string& host_name) const;
  /// Route an escalated consult to the child domain with the most reported
  /// free capacity (minus consults already routed there).  Returns false
  /// when no child can plausibly take it.
  bool route_to_child(const xmlproto::ConsultMsg& consult, obs::TraceCtx ctx);
  void send_to(const std::string& dst_host, int dst_port,
               const xmlproto::ProtocolMessage& message,
               obs::TraceCtx ctx = {});

  [[nodiscard]] bool want_audit() const;
  /// Find-or-create `hosts_[name]`, linking new entries into the
  /// `unavailable` index list.
  HostEntry& ensure_entry(const std::string& name);
  void index_insert(HostEntry& entry);
  void index_remove(HostEntry& entry);
  /// Transition `entry` to `next`, relinking it between index lists.
  void set_state(HostEntry& entry, rules::SystemState next);
  /// Re-sort `entry` within its current list after its
  /// `registration_order` changed (ghost entry adopted by a RegisterMsg).
  void reposition(HostEntry& entry);

  [[nodiscard]] std::vector<const HostEntry*> legacy_eligible(
      const std::string& source_host, const hpcm::ApplicationSchema* schema,
      const std::string& schema_name,
      std::vector<CandidateAudit>* audit) const;
  [[nodiscard]] std::vector<const HostEntry*> indexed_eligible(
      const std::string& source_host,
      const hpcm::ApplicationSchema* schema) const;

  struct StateList {
    HostEntry* head = nullptr;
    HostEntry* tail = nullptr;
    std::size_t size = 0;
  };
  static std::size_t state_slot(rules::SystemState state) noexcept {
    return static_cast<std::size_t>(state);
  }

  host::Host* host_;
  net::Network* network_;
  Config config_;
  net::Endpoint* endpoint_ = nullptr;
  std::map<std::string, HostEntry> hosts_;  // node-based: stable addresses
  StateList index_[4];
  std::map<std::string, ProcessEntry> processes_;  // key host:pid
  /// Synthetic pid for entries re-keyed to a migration destination before
  /// the destination's own ProcessRegisterMsg arrives (negative: can never
  /// collide with a real registration's key).
  int next_placeholder_pid_ = -1;
  std::map<std::string, hpcm::ApplicationSchema> schemas_;
  std::vector<Decision> decisions_;
  std::vector<ProcessEntry> stranded_;
  std::vector<PlacementDebit> inflight_;
  std::vector<PendingRelaunch> pending_relaunches_;
  std::map<std::string, ChildDomain> children_;
  std::map<std::string, MalleableJobEntry> malleable_jobs_;
  ckpt::IoScheduler ckpt_io_;
  int resizes_commanded_ = 0;
  int evacuations_commanded_ = 0;
  int next_registration_order_ = 0;
  support::Rng rng_{1};
  std::vector<sim::Fiber> fibers_;
  bool running_ = false;
};

}  // namespace ars::registry
