#pragma once
// Registry/scheduler entity (paper §3.2): global system-state manager and
// decision maker.
//
//   * Soft-state host table: monitors push REGISTER once and UPDATE
//     heartbeats; a lease sweeper marks silent hosts `unavailable`.
//   * Process registry: migration-enabled processes with start times and
//     application-schema keys.
//   * Decision making: on CONSULT from an overloaded host, select the
//     process with the *latest completion time* (start time + schema
//     estimate) and the *first-fit* destination — the first registered host
//     that is in the `free` state, passes the policy's destination
//     conditions, and satisfies the schema's resource requirements — then
//     command the source host's commander to migrate.
//   * Hierarchy: a registry may have a parent; when no local candidate
//     exists the consult escalates ("the migration destination is chosen
//     inside one's control domain" when possible).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ars/hpcm/schema.hpp"
#include "ars/net/network.hpp"
#include "ars/rules/policy.hpp"
#include "ars/rules/state.hpp"
#include "ars/sim/task.hpp"
#include "ars/support/rng.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::registry {

struct HostEntry {
  xmlproto::StaticInfo info;
  xmlproto::DynamicStatus status;
  rules::SystemState state = rules::SystemState::kUnavailable;
  double last_update = -1.0;
  int monitor_port = 0;
  int commander_port = 0;
  int registration_order = 0;  // first-fit scans in this order
  bool draining = false;       // evacuated: never a destination again
};

/// Destination-choice strategy.  The paper uses first-fit ("the
/// registry/scheduler chooses the first host, which is ready and owns all
/// the resources required"); best-fit and random-fit are provided for the
/// ablation benches.
enum class DestinationStrategy { kFirstFit, kBestFit, kRandomFit };

struct ProcessEntry {
  std::string host;
  int pid = 0;
  std::string name;
  double start_time = 0.0;
  std::string schema_name;
  double last_migrated_at = -1.0e9;
};

/// Verdict on one host considered as a migration destination — the audit
/// trail of the first-fit scan.  Every registered host appears exactly once
/// per decision, in registration (scan) order.
struct CandidateAudit {
  std::string host;
  bool accepted = false;  // passed every destination condition
  /// "chosen (...)", "eligible (not chosen)", or the rejection cause
  /// ("source host", "draining", "state=busy (not free)", ...).
  std::string reason;
};

/// One scheduling decision, for the experiment logs.
struct Decision {
  double at = 0.0;
  std::string source;
  std::string destination;  // empty if none found
  int pid = 0;
  std::string process_name;
  double decision_latency = 0.0;
  bool escalated = false;
  bool restart = false;  // failure recovery rather than live migration
  /// Why each registered host was or was not the destination.
  std::vector<CandidateAudit> candidates;
};

class Registry {
 public:
  struct Config {
    int port = 0;  // allocated if 0
    rules::MigrationPolicy policy;  // destination conditions
    double lease_ttl = 35.0;        // ~3 missed 10 s heartbeats
    double sweep_period = 5.0;
    /// The paper measures ~0.002 s to make a migration decision.
    double decision_delay = 0.002;
    /// Minimum spacing between migrations of the same process.
    double per_process_cooldown = 30.0;
    /// Parent registry for hierarchical escalation (empty: none).
    std::string parent_host;
    int parent_port = 0;
    double health_report_period = 30.0;
    /// How the destination is chosen among eligible hosts.
    DestinationStrategy strategy = DestinationStrategy::kFirstFit;
    std::uint64_t random_seed = 1;  // for kRandomFit (deterministic runs)
    /// Processes with schema data-locality at or above this are not
    /// selected for migration (paper §5.3: "if a process involves a lot in
    /// a local data access, the process is not to be migrated").
    double locality_threshold = 0.5;
    /// When a host's soft-state lease expires (crash), command the
    /// relaunch of its registered processes on other hosts (from their
    /// checkpoints, via the destination commanders).
    bool auto_restart = false;
    /// Optional observability hooks (not owned): decision spans, audit
    /// events, and scheduler/lease metrics.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  Registry(host::Host& h, net::Network& network, Config config);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void start();
  void stop();

  /// Drop all soft state (host table, process registry, registration
  /// order) — a cold restart.  Schemas and the decision log survive: they
  /// are configuration and audit trail, not soft state.  Call while
  /// stopped; the tables rebuild from subsequent monitor announcements.
  void clear_soft_state();

  [[nodiscard]] int port() const noexcept { return config_.port; }
  [[nodiscard]] const std::string& host_name() const {
    return host_->name();
  }

  /// Make an application schema known to the scheduler (resource
  /// requirements + execution-time estimates used by the selector).
  void register_schema(const hpcm::ApplicationSchema& schema);

  [[nodiscard]] const std::map<std::string, HostEntry>& hosts() const {
    return hosts_;
  }
  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] std::optional<rules::SystemState> host_state(
      const std::string& name) const;
  [[nodiscard]] std::size_t process_count() const {
    return processes_.size();
  }

  /// Scheduling core, also callable directly by tests: pick a destination
  /// for a migration off `source_host` using the configured strategy
  /// (nullopt if no eligible host).  When `audit` is non-null it receives
  /// one verdict per registered host, in scan order.
  [[nodiscard]] std::optional<std::string> choose_destination(
      const std::string& source_host, const std::string& schema_name,
      std::vector<CandidateAudit>* audit = nullptr);

  /// The paper's default strategy, regardless of configuration.
  [[nodiscard]] std::optional<std::string> first_fit_destination(
      const std::string& source_host, const std::string& schema_name);

  /// Hosts eligible as destination, in registration order.  When `audit`
  /// is non-null it receives a verdict (with rejection reason) per host.
  [[nodiscard]] std::vector<const HostEntry*> eligible_destinations(
      const std::string& source_host, const std::string& schema_name,
      std::vector<CandidateAudit>* audit = nullptr) const;

  /// Selector: the migration-enabled process on `source_host` with the
  /// latest estimated completion time.
  [[nodiscard]] const ProcessEntry* select_process(
      const std::string& source_host);

  /// Fault-tolerance path (paper §6: "reschedule when the machine will
  /// shut down, intrusion is detected"): command every migration-enabled
  /// process off `host` and stop treating it as a destination.  Also
  /// reachable over the wire via an EvacuateMsg.
  void request_evacuation(const std::string& host, const std::string& reason);

  /// Number of evacuation commands issued so far.
  [[nodiscard]] int evacuations_commanded() const noexcept {
    return evacuations_commanded_;
  }

 private:
  [[nodiscard]] sim::Task<> serve();
  [[nodiscard]] sim::Task<> sweep();
  [[nodiscard]] sim::Task<> report_health();
  void handle(const xmlproto::ProtocolMessage& message,
              const std::string& from_host);
  [[nodiscard]] sim::Task<> decide(std::string overloaded_host,
                                   std::string reason);
  [[nodiscard]] sim::Task<> evacuate(std::string drained_host,
                                     std::string reason);
  void restart_processes_of(const std::string& lost_host);
  void send_to(const std::string& dst_host, int dst_port,
               const xmlproto::ProtocolMessage& message);

  host::Host* host_;
  net::Network* network_;
  Config config_;
  net::Endpoint* endpoint_ = nullptr;
  std::map<std::string, HostEntry> hosts_;
  std::map<std::string, ProcessEntry> processes_;  // key host:pid
  std::map<std::string, hpcm::ApplicationSchema> schemas_;
  std::vector<Decision> decisions_;
  int evacuations_commanded_ = 0;
  int next_registration_order_ = 0;
  support::Rng rng_{1};
  std::vector<sim::Fiber> fibers_;
  bool running_ = false;
};

}  // namespace ars::registry
