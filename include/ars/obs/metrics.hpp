#pragma once
// Metrics registry for the rescheduler (obs pillar 2): named counters,
// gauges, and fixed-bucket histograms with percentile accessors, exportable
// as Prometheus-style text and as JSON.
//
// Instruments are created on first use and owned by the registry; the
// returned references stay valid for the registry's lifetime (node-based
// map storage), so hot paths can cache them.  Label sets distinguish series
// within one metric name (e.g. rules.state_transitions{to="busy"}).
//
// Like the Tracer, the registry is single-writer: everything runs on the
// simulation engine's thread.  Sharded runs confine one registry per shard
// (written only by that shard's worker) and fold them together afterwards
// with merge_from(); never share one registry across shards.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ars::obs {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(double delta = 1.0) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram.  `bounds` are the inclusive upper bounds of the
/// finite buckets, in increasing order; an implicit +Inf bucket catches the
/// rest.  Quantiles interpolate linearly inside the winning bucket (the
/// Prometheus convention), so their precision is the bucket resolution.
class Histogram {
 public:
  Histogram() : Histogram(default_bounds()) {}
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Estimated q-quantile, q in [0,1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; back() is the +Inf bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return buckets_;
  }

  /// Fold `other` into this histogram.  Requires identical bucket bounds
  /// (the per-shard registries all use the same pre-registered bounds);
  /// throws std::invalid_argument otherwise.
  void merge(const Histogram& other);

  /// 20 exponential buckets from 1 ms to ~500 s — wide enough for both
  /// decision latencies (~2 ms) and full migration times (tens of seconds).
  [[nodiscard]] static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (+Inf)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  The same (name, labels) always returns the same
  /// instrument; a name must not be reused across instrument kinds.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  /// Lookup without creating; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const Labels& labels = {}) const;

  [[nodiscard]] std::size_t series_count() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Fold another registry's series into this one (the per-shard merge
  /// step): counters add, histograms add bucket-wise (same bounds
  /// required), and gauges *add* too — per-shard gauges are disjoint
  /// population counts (hosts in a state, pending work), so summing is the
  /// cluster-wide reading.  Series missing here are created.
  void merge_from(const MetricsRegistry& other);

  /// Prometheus text exposition format.  Metric names are sanitized
  /// ('.' and '-' become '_'); histograms expand to _bucket/_sum/_count.
  [[nodiscard]] std::string to_prometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  template <typename T>
  struct Series {
    std::string name;
    Labels labels;
    T instrument;
  };

  /// "name{k=v,...}" — the registry key and the JSON export key.
  [[nodiscard]] static std::string series_key(const std::string& name,
                                              const Labels& labels);

  std::map<std::string, Series<Counter>> counters_;
  std::map<std::string, Series<Gauge>> gauges_;
  std::map<std::string, Series<Histogram>> histograms_;
};

}  // namespace ars::obs
