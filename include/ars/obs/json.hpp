#pragma once
// Minimal JSON support for the observability subsystem: a value type, a
// recursive-descent parser, and string escaping.  The exporters build their
// output with plain string concatenation (hot path, bounded cost); this
// parser exists so tests can load the exported documents back and assert
// structure, and so tooling that reads a dumped trace has an in-tree
// round-trip check.  It accepts strict JSON (RFC 8259) and nothing more.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "ars/support/expected.hpp"

namespace ars::obs {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}       // NOLINT
  JsonValue(bool b) : data_(b) {}                     // NOLINT
  JsonValue(double d) : data_(d) {}                   // NOLINT
  JsonValue(int i) : data_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}   // NOLINT
  JsonValue(const char* s) : data_(std::string(s)) {}  // NOLINT
  JsonValue(JsonArray a) : data_(std::move(a)) {}     // NOLINT
  JsonValue(JsonObject o) : data_(std::move(o)) {}    // NOLINT

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<JsonArray>(data_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<JsonObject>(data_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] double as_number() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(data_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return std::get<JsonArray>(data_);
  }
  [[nodiscard]] const JsonObject& as_object() const {
    return std::get<JsonObject>(data_);
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (!is_object()) {
      return nullptr;
    }
    const auto& object = as_object();
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Serialize back to compact JSON text (stable member order: std::map).
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      data_;
};

/// Parse one JSON document; trailing non-whitespace is an error.
[[nodiscard]] support::Expected<JsonValue> json_parse(std::string_view text);

/// Escape `raw` for embedding between double quotes in a JSON document.
[[nodiscard]] std::string json_escape(std::string_view raw);

/// Format a double the way the exporters do: integral values without a
/// fractional part, everything else with enough digits to round-trip.
[[nodiscard]] std::string json_number(double value);

}  // namespace ars::obs
