#pragma once
// Critical-path analysis over exported trace rings (tentpole part 2).
//
// A trace produced with causal contexts enabled tags every cross-host
// message and every remote span with the transaction it belongs to ("txn"
// attribute) and, when the emitter was itself working under a span, with
// that parent span id ("pspan").  This module reconstructs per-transaction
// DAGs from the flat JSONL export, validates them (every pspan reference
// resolves inside its transaction, parent chains are acyclic), and breaks
// the migration freeze window down by phase — init (spawn/connect),
// precopy (overlapped iterative rounds), collect, eager, ack, transfer,
// restore — so "where did the 2.1 s go?" has a per-seed and cross-seed
// answer.  Pre-copy rounds overlap application execution and are therefore
// reported separately, never folded into the freeze window.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ars/obs/json.hpp"
#include "ars/support/expected.hpp"

namespace ars::obs::critpath {

/// One parsed trace event (a JSONL line).  Causal attributes are hoisted
/// out of `attrs` for cheap access; the full object is kept for reporting.
struct Event {
  enum class Kind { kInstant, kBegin, kEnd };
  Kind kind = Kind::kInstant;
  double t = 0.0;
  std::string name;
  std::string category;
  std::string track;
  std::uint64_t span = 0;   // span id (begin/end events)
  std::uint64_t txn = 0;    // transaction ("txn" attr; 0 = untagged)
  std::uint64_t pspan = 0;  // parent span ("pspan" attr; 0 = none)
  std::uint64_t cause_txn = 0;  // causal link to a prior transaction
  JsonObject attrs;
};

/// A begin/end pair reconstructed inside one transaction.
struct Span {
  std::uint64_t id = 0;
  std::string name;
  std::string track;
  double begin = 0.0;
  double end = 0.0;
  bool closed = false;
  std::uint64_t pspan = 0;
  JsonObject attrs;  // begin attrs, with end attrs merged over them
};

/// All events sharing one txn id, with derived migration timings.
struct Transaction {
  std::uint64_t txn = 0;
  double begin = 0.0;
  double end = 0.0;
  std::string root_name;        // earliest event: the origination
  std::uint64_t cause_txn = 0;  // 0 unless some event linked a prior txn
  std::vector<Event> events;    // ring order (time-sorted by construction)
  std::vector<Span> spans;

  // Derived from the migration span tree, when present.
  bool has_migration = false;
  double migration_s = 0.0;  // end-to-end migration span
  double freeze_s = 0.0;     // init + collect + eager + ack (never precopy)
  std::string outcome;       // committed / aborted / rolled-back / ""
  std::map<std::string, double> phase_s;  // init/precopy/collect/eager/...
};

/// DAG validation verdict for one transaction.
struct Validation {
  bool ok = true;
  std::vector<std::string> problems;
};

/// Parse a JSONL trace export through the strict JSON parser.  Empty lines
/// are skipped; any malformed line fails the whole parse (a trace that
/// does not round-trip is a bug, not data).
[[nodiscard]] support::Expected<std::vector<Event>> parse_jsonl(
    std::string_view jsonl);

/// Group tagged events into transactions.  Span-end events carry no txn
/// attribute (only the begin is stamped); they are attributed through
/// their span id.  Untagged events are dropped.  Transactions are returned
/// in ascending txn order.
[[nodiscard]] std::vector<Transaction> group_transactions(
    const std::vector<Event>& events);

/// Validate one transaction's DAG: every pspan reference must resolve to a
/// span opened in the same transaction, parent chains must be acyclic, and
/// at most one migration span may exist (one migration attempt per txn).
[[nodiscard]] Validation validate(const Transaction& txn);

/// Wall-clock inside the migration span not covered by any phase span, in
/// seconds (0 when there is no migration).  The phase spans overlap
/// (transfer and restore run concurrently after commit), so this measures
/// the union's gap — unaccounted time the breakdown cannot explain.
[[nodiscard]] double coverage_gap_s(const Transaction& txn);

/// Cross-transaction (and cross-seed: feed it transactions from many
/// trace files) phase statistics.
struct PhaseStats {
  std::vector<double> samples;  // seconds, unsorted
  void add(double s) { samples.push_back(s); }
  [[nodiscard]] double percentile(double p) const;  // nearest-rank, p in [0,100]
  [[nodiscard]] double max() const;
};

struct Report {
  int transactions = 0;
  int migrations = 0;
  std::map<std::string, int> outcomes;
  std::map<std::string, PhaseStats> phases;  // + "freeze" and "total"
};

/// Fold a batch of transactions into `report` (call once per trace file).
void accumulate(Report& report, const std::vector<Transaction>& txns);

/// Human-readable percentile table (p50/p90/p99/max per phase).
[[nodiscard]] std::string format_report(const Report& report);

/// The same report as a JSON document (for CI smoke checks).
[[nodiscard]] JsonValue report_to_json(const Report& report);

}  // namespace ars::obs::critpath
