#pragma once
// Structured event tracing for the rescheduler (obs pillar 1).
//
// A Tracer records sim-time-stamped *instant events* and nestable *spans*
// (explicit begin/end pairs carrying key/value attributes) into a bounded
// in-memory ring.  Spans may cross coroutine suspension points — the id
// returned by begin_span() is plain data, so a migration span can open on
// the source host and close on the destination many virtual seconds later.
//
// Two exporters turn a recorded timeline into files:
//   * to_jsonl()        — one JSON object per line, grep/jq-friendly;
//   * to_chrome_trace() — the Chrome trace_event format (async "b"/"e"
//     events plus thread-name metadata), directly loadable in
//     chrome://tracing or https://ui.perfetto.dev, with one timeline row
//     ("thread") per track (host or process name).
//
// The tracer is single-writer by design: all simulated activity runs on the
// discrete-event engine's thread.  Cross-thread log forwarding (LogBridge)
// is serialized by the Logger's own mutex.
//
// Sharded runs (sim/shard.hpp) keep that rule by confinement: every shard
// owns a private Tracer written only by its worker thread, and the per-shard
// timelines are combined after the run with merged_jsonl(), which orders
// events by (timestamp, shard, recording order) — deterministic for a fixed
// shard count, and per-txn span pairs stay intact because a transaction's
// causal chain is already ordered by timestamp.  Never share one Tracer
// across shards.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "ars/obs/trace_ctx.hpp"

namespace ars::obs {

/// One key/value span or event attribute.
struct Attr {
  std::string key;
  std::variant<std::string, double, bool> value;

  Attr(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  Attr(std::string k, const char* v) : key(std::move(k)), value(std::string(v)) {}
  Attr(std::string k, double v) : key(std::move(k)), value(v) {}
  Attr(std::string k, int v) : key(std::move(k)), value(static_cast<double>(v)) {}
  Attr(std::string k, std::size_t v)
      : key(std::move(k)), value(static_cast<double>(v)) {}
  Attr(std::string k, bool v) : key(std::move(k)), value(v) {}
};

using Attrs = std::vector<Attr>;

enum class EventKind { kInstant, kSpanBegin, kSpanEnd };

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  double t = 0.0;          // sim time, seconds
  std::string name;        // e.g. "migration.spawn"
  std::string category;    // emitting subsystem, e.g. "hpcm"
  std::string track;       // timeline row: host or process name
  std::uint64_t span_id = 0;  // non-zero for kSpanBegin/kSpanEnd
  Attrs attrs;
};

/// A fully closed span, reassembled from its begin/end events.
struct CompletedSpan {
  std::uint64_t id = 0;
  std::string name;
  std::string category;
  std::string track;
  double begin = 0.0;
  double end = 0.0;
  Attrs attrs;  // begin attrs followed by end attrs

  [[nodiscard]] double duration() const { return end - begin; }
};

class Tracer {
 public:
  using ClockFn = std::function<double()>;

  struct Options {
    /// Maximum buffered events; the oldest are dropped beyond this.
    std::size_t capacity = 1 << 16;
    bool enabled = true;
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options options) : options_(options) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install the virtual-time source (normally sim::Engine::now).
  void set_clock(ClockFn clock) { clock_ = std::move(clock); }

  void set_enabled(bool enabled) noexcept { options_.enabled = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }

  /// Record an instant event.
  void instant(std::string name, std::string category, std::string track,
               Attrs attrs = {});

  /// Open a span; returns its id (0 when the tracer is disabled — safe to
  /// pass straight back to end_span, which ignores 0).
  [[nodiscard]] std::uint64_t begin_span(std::string name,
                                         std::string category,
                                         std::string track, Attrs attrs = {});

  /// Close a span opened by begin_span; extra attributes are attached to
  /// the end event.  id 0 is a no-op.
  void end_span(std::uint64_t id, Attrs attrs = {});

  /// Record an instant at an explicit timestamp (log forwarding keeps the
  /// record's own stamp instead of re-reading the clock).
  void instant_at(double t, std::string name, std::string category,
                  std::string track, Attrs attrs = {});

  /// Mint a transaction id for a new causal chain (one migration, relaunch
  /// or consult decision).  Deterministic: a plain counter, like span ids,
  /// so identically seeded runs mint identical ids.  Returns 0 when the
  /// tracer is disabled — a TraceCtx built from it stays unset and nothing
  /// downstream is stamped or encoded.
  [[nodiscard]] std::uint64_t new_txn() noexcept {
    return options_.enabled ? next_txn_id_++ : 0;
  }

  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Events evicted by the capacity bound since the last clear().
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  /// Spans begun but not yet ended.
  [[nodiscard]] std::size_t open_spans() const noexcept {
    return open_info_.size();
  }

  /// All fully closed spans, in end order.  Begin events evicted by the
  /// ring bound leave their ends unmatched (skipped).
  [[nodiscard]] std::vector<CompletedSpan> completed_spans() const;

  /// Closed spans with the given name, in end order.
  [[nodiscard]] std::vector<CompletedSpan> spans_named(
      const std::string& name) const;

  void clear();

  /// One JSON object per line: {"t":..,"kind":..,"name":..,...}.
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace_event JSON document (see header comment).
  [[nodiscard]] std::string to_chrome_trace() const;

 private:
  struct OpenSpan {
    std::string name;
    std::string category;
    std::string track;
  };

  void push(TraceEvent event);
  [[nodiscard]] double now() const { return clock_ ? clock_() : 0.0; }

  Options options_;
  ClockFn clock_;
  std::deque<TraceEvent> events_;
  std::map<std::uint64_t, OpenSpan> open_info_;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t next_txn_id_ = 1;
  std::size_t dropped_ = 0;
};

/// Merge per-shard timelines into one JSONL document, events ordered by
/// (timestamp, shard index, per-shard recording order).  With a single
/// tracer this is byte-identical to its to_jsonl() (per-shard order is
/// already non-decreasing in time), which is what the 1-shard == legacy
/// determinism tests lean on.  Span ids collide across shards only if the
/// tracers were written from the same id space — per-shard tracers mint
/// independent ids, so exporters downstream must treat (shard, span) as the
/// key; the critical-path tool keys on txn attrs, which stay globally
/// meaningful because each consult mints its txn on one shard.
[[nodiscard]] std::string merged_jsonl(const std::vector<const Tracer*>& shards);

/// Append the causal attrs ("txn", and "pspan" when known) to an attribute
/// list.  A no-op for an unset context, so call sites stay branch-free.
inline void stamp(Attrs& attrs, const TraceCtx& ctx) {
  if (!ctx.set()) {
    return;
  }
  attrs.emplace_back("txn", static_cast<std::size_t>(ctx.txn));
  if (ctx.parent_span != 0) {
    attrs.emplace_back("pspan", static_cast<std::size_t>(ctx.parent_span));
  }
}

/// True when `tracer` exists *and* is recording.  Hot paths must use this as
/// the call-site guard so a disabled tracer costs one branch — no attribute
/// vectors, no string formatting (instant()/begin_span() would discard the
/// fully built arguments otherwise).
[[nodiscard]] inline bool active(const Tracer* tracer) noexcept {
  return tracer != nullptr && tracer->enabled();
}

/// RAII span for straight-line (non-migrating) scopes.
class SpanGuard {
 public:
  SpanGuard(Tracer& tracer, std::string name, std::string category,
            std::string track, Attrs attrs = {})
      : tracer_(&tracer),
        id_(tracer.begin_span(std::move(name), std::move(category),
                              std::move(track), std::move(attrs))) {}
  ~SpanGuard() {
    if (tracer_ != nullptr) {
      tracer_->end_span(id_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  std::uint64_t id_;
};

/// While alive, forwards every support::Logger record into `tracer` as an
/// instant event (category "log", track = component) so logs and spans
/// share one timeline.  Install at most one at a time.
class LogBridge {
 public:
  explicit LogBridge(Tracer& tracer);
  ~LogBridge();
  LogBridge(const LogBridge&) = delete;
  LogBridge& operator=(const LogBridge&) = delete;
};

}  // namespace ars::obs
