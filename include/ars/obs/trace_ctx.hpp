#pragma once
// Causal trace context (obs v2).
//
// A TraceCtx names the *transaction* a piece of work belongs to — one
// migration, relaunch, or consult decision — plus the span on whose behalf
// the current message was sent.  It is plain data: entities copy it out of
// an incoming wire envelope, stamp their local spans/instants with it
// (attrs "txn" and "pspan"), and hand it to the next encode() so the causal
// chain survives host hops.
//
// txn == 0 means "no context": encoders emit nothing, tracers stamp
// nothing, and the wire byte-layout is identical to the pre-v2 protocol.
// This header is dependency-free on purpose — xmlproto and net include it
// without pulling in the tracer.

#include <cstdint>

namespace ars::obs {

struct TraceCtx {
  /// Transaction id, unique per Tracer (see Tracer::new_txn()).  0 = unset.
  std::uint64_t txn = 0;
  /// Span id of the causal parent (the span that sent the message or
  /// spawned the work).  0 = the transaction root itself.
  std::uint64_t parent_span = 0;

  [[nodiscard]] bool set() const noexcept { return txn != 0; }

  /// The same transaction viewed from a new parent span — what an entity
  /// passes downstream after opening its own span for the work.
  [[nodiscard]] TraceCtx child_of(std::uint64_t span_id) const noexcept {
    return TraceCtx{txn, span_id};
  }
};

}  // namespace ars::obs
