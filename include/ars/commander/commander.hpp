#pragma once
// Commander entity (paper §3.3): one per host.  Receives MIGRATE commands
// from the registry/scheduler, writes the destination address to a temp
// file, and raises the user-defined signal at the migrating process — the
// HPCM middleware's poll-point picks it up from there.

#include <string>
#include <vector>

#include "ars/hpcm/migration.hpp"
#include "ars/net/network.hpp"
#include "ars/sim/task.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::commander {

class Commander {
 public:
  struct Config {
    int port = 0;  // allocated if 0
    // Where acknowledgements go (the registry); acks are dropped if unset.
    std::string registry_host;
    int registry_port = 0;
    /// Optional observability hooks (not owned): signal-delivery events.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  Commander(host::Host& h, net::Network& network,
            hpcm::MigrationEngine& middleware, Config config);
  ~Commander();
  Commander(const Commander&) = delete;
  Commander& operator=(const Commander&) = delete;

  void start();
  void stop();

  [[nodiscard]] int port() const noexcept { return config_.port; }
  [[nodiscard]] int commands_received() const noexcept {
    return commands_received_;
  }
  [[nodiscard]] int commands_failed() const noexcept {
    return commands_failed_;
  }

 private:
  [[nodiscard]] sim::Task<> serve();

  host::Host* host_;
  net::Network* network_;
  hpcm::MigrationEngine* middleware_;
  Config config_;
  net::Endpoint* endpoint_ = nullptr;
  sim::Fiber fiber_;
  int commands_received_ = 0;
  int commands_failed_ = 0;
  bool running_ = false;
};

}  // namespace ars::commander
