#pragma once
// Commander entity (paper §3.3): one per host.  Receives MIGRATE commands
// from the registry/scheduler, writes the destination address to a temp
// file, and raises the user-defined signal at the migrating process — the
// HPCM middleware's poll-point picks it up from there.

#include <string>
#include <vector>

#include "ars/hpcm/migration.hpp"
#include "ars/net/network.hpp"
#include "ars/sim/task.hpp"
#include "ars/xmlproto/messages.hpp"

namespace ars::obs {
class Tracer;
class MetricsRegistry;
}  // namespace ars::obs

namespace ars::malleable {
class MalleableEngine;
}  // namespace ars::malleable

namespace ars::commander {

class Commander {
 public:
  struct Config {
    int port = 0;  // allocated if 0
    // Where acknowledgements go (the registry); acks are dropped if unset.
    std::string registry_host;
    int registry_port = 0;
    /// Bounded retry for failed MIGRATE deliveries: a command that finds no
    /// such pid is retried up to `retry_limit` more times with exponential
    /// backoff starting at `retry_backoff` seconds (covers the race where
    /// the command outruns the process's registration/launch).  The ack
    /// reports the final outcome; 0 disables retries.
    int retry_limit = 2;
    double retry_backoff = 0.25;
    /// Optional observability hooks (not owned): signal-delivery events.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
  };

  Commander(host::Host& h, net::Network& network,
            hpcm::MigrationEngine& middleware, Config config);
  ~Commander();
  Commander(const Commander&) = delete;
  Commander& operator=(const Commander&) = delete;

  void start();
  void stop();

  /// Forward a migration transaction's terminal outcome to the registry
  /// (fire-and-forget, like the migrate ack).  Dropped when the commander
  /// is stopped (its host failed) or no registry is configured.  `ctx`
  /// links the report to the migration transaction on the wire.
  void report_outcome(const xmlproto::MigrationOutcomeMsg& outcome,
                      obs::TraceCtx ctx = {});

  /// Forward a resize transaction's terminal outcome (same contract as
  /// report_outcome; the registry credits resize placement debits from it).
  void report_resize_outcome(const xmlproto::ResizeOutcomeMsg& outcome,
                             obs::TraceCtx ctx = {});

  /// Forward a checkpoint-write I/O event to the registry's I/O scheduler
  /// (same fire-and-forget contract; the scheduler's slot TTL covers lost
  /// done/abort reports and its grant covers lost requests via the
  /// middleware's grant timeout).
  void send_ckpt_request(const xmlproto::CkptIoRequestMsg& request,
                         obs::TraceCtx ctx = {});

  /// Wire the malleable engine RESIZE commands are forwarded to.  Unset,
  /// RESIZE commands are rejected with an immediate aborted outcome.
  void set_malleable(malleable::MalleableEngine* engine) {
    malleable_ = engine;
  }

  [[nodiscard]] int port() const noexcept { return config_.port; }
  [[nodiscard]] int commands_received() const noexcept {
    return commands_received_;
  }
  [[nodiscard]] int commands_failed() const noexcept {
    return commands_failed_;
  }
  /// Retry attempts made after a failed first delivery (any outcome).
  [[nodiscard]] int commands_retried() const noexcept {
    return commands_retried_;
  }

 private:
  [[nodiscard]] sim::Task<> serve();
  [[nodiscard]] sim::Task<> handle_migrate(xmlproto::MigrateCmd command,
                                           obs::TraceCtx ctx);

  void reject_resize(const xmlproto::ResizeCmd& command,
                     const std::string& reason, obs::TraceCtx ctx);

  host::Host* host_;
  net::Network* network_;
  hpcm::MigrationEngine* middleware_;
  malleable::MalleableEngine* malleable_ = nullptr;
  Config config_;
  net::Endpoint* endpoint_ = nullptr;
  sim::Fiber fiber_;
  std::vector<sim::Fiber> command_fibers_;  // in-flight migrate handlers
  int commands_received_ = 0;
  int commands_failed_ = 0;
  int commands_retried_ = 0;
  bool running_ = false;
};

}  // namespace ars::commander
