#pragma once
// Coroutine task types for simulated processes.
//
// `Task<T>` is a lazy coroutine: it starts when awaited and hands its result
// (or exception) back to the awaiter via symmetric transfer.  `Fiber` is a
// handle to a *top-level* spawned task — a simulated process or daemon — that
// the engine resumes via events and that can be killed externally while
// suspended.
//
// Cancellation discipline: every awaitable that registers external state
// (an engine event, a wait-queue node, a CPU job) deregisters it in its
// destructor.  Destroying a suspended fiber therefore unwinds all nested
// coroutine frames and removes every pending registration, so no dangling
// resumption can fire.

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ars/sim/engine.hpp"
#include "ars/support/log.hpp"

namespace ars::sim {

/// Thrown (or derived from) to terminate the current fiber from arbitrary
/// call depth; the fiber driver treats it as a clean exit.
class FiberExit : public std::exception {
 public:
  explicit FiberExit(std::string reason = "fiber exit")
      : reason_(std::move(reason)) {}
  [[nodiscard]] const char* what() const noexcept override {
    return reason_.c_str();
  }

 private:
  std::string reason_;
};

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> h) const noexcept;
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
    return {};
  }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename Promise>
std::coroutine_handle<> final_transfer(std::coroutine_handle<Promise> h) {
  auto& promise = h.promise();
  if (promise.continuation) {
    return promise.continuation;
  }
  return std::noop_coroutine();
}

}  // namespace detail

/// Lazy coroutine returning T (default void).  Movable, not copyable; owns
/// its frame and destroys it on destruction, recursively destroying any
/// nested awaited tasks held in the frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }

    struct FinalAwaiter : detail::PromiseBase::FinalAwaiter {
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        return detail::final_transfer(h);
      }
    };
    [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiter: starts the task and resumes the awaiter when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) {
          std::rethrow_exception(promise.exception);
        }
        return std::move(*promise.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  template <typename>
  friend class Task;
  friend class Fiber;

  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}

    struct FinalAwaiter : detail::PromiseBase::FinalAwaiter {
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        return detail::final_transfer(h);
      }
    };
    [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        auto& promise = handle.promise();
        if (promise.exception) {
          std::rethrow_exception(promise.exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Fiber;

  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Shared bookkeeping for a spawned fiber; outlives the coroutine frame so
/// handles stay valid after the fiber finishes.
struct FiberState {
  std::string name;
  std::coroutine_handle<> handle;  // null once finished or killed
  bool done = false;
  bool failed = false;
  std::string failure;
  std::vector<std::function<void()>> exit_listeners;

  void finish(bool with_failure, std::string reason);
};

/// Handle to a spawned top-level coroutine.  Copyable (shared state).
class Fiber {
 public:
  Fiber() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return !state_ || state_->done; }
  [[nodiscard]] bool failed() const noexcept {
    return state_ && state_->failed;
  }
  [[nodiscard]] const std::string& name() const;

  /// Destroy the fiber's coroutine frames if still suspended.  All pending
  /// registrations (events, waits, CPU jobs) are released via destructors.
  void kill();

  /// Invoke `fn` when the fiber finishes (immediately if already done).
  void on_exit(std::function<void()> fn);

  /// Spawn `task` as a top-level fiber; it starts at the engine's current
  /// time via a scheduled event, so creation order gives deterministic
  /// start order.
  static Fiber spawn(Engine& engine, Task<> task, std::string name = "fiber");

 private:
  explicit Fiber(std::shared_ptr<FiberState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<FiberState> state_;
};

/// Awaitable created by `delay(engine, dt)`: suspends the caller for `dt`
/// simulated seconds.  `dt == 0` still yields through the event queue.
class DelayAwaiter {
 public:
  DelayAwaiter(Engine& engine, SimTime dt) noexcept
      : engine_(&engine), dt_(dt) {}
  DelayAwaiter(const DelayAwaiter&) = delete;
  DelayAwaiter& operator=(const DelayAwaiter&) = delete;
  ~DelayAwaiter() { event_.cancel(); }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    event_ = engine_->schedule_after(dt_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine* engine_;
  SimTime dt_;
  Engine::EventHandle event_;
};

[[nodiscard]] inline DelayAwaiter delay(Engine& engine, SimTime dt) {
  return DelayAwaiter{engine, dt};
}

/// Yield control, resuming at the same virtual time after queued events.
[[nodiscard]] inline DelayAwaiter yield(Engine& engine) {
  return DelayAwaiter{engine, 0.0};
}

}  // namespace ars::sim
