#pragma once
// Discrete-event simulation engine.
//
// The engine owns the virtual clock and a time-ordered event queue.  All
// simulated activity — coroutine resumptions, CPU-model completions, network
// deliveries, monitor timers — is expressed as events.  Two events at the
// same timestamp run in scheduling (FIFO) order, which keeps every run
// deterministic.
//
// Internals (see DESIGN.md §8 for the full rationale):
//   * events live in a chunked slab of pooled, cache-line-sized `Slot`s
//     recycled through a free list, so steady-state scheduling performs zero
//     heap allocations and slab growth never moves live callables;
//   * the priority queue holds one entry per *distinct* timestamp; events
//     sharing a timestamp form an intrusive FIFO chain, so the pervasive
//     same-instant events (zero-delay wakeups, fiber starts, completion
//     fan-out) enqueue and dequeue in O(1) — FIFO order is structural, no
//     sequence-number tie-break needed;
//   * distinct timestamps are ordered by a 4-ary (cache-line-friendly) heap
//     and located on insert by an open-addressed hash index;
//   * an `EventHandle` is a generation-counted 8-byte id plus the engine
//     pointer: cancellation is O(1) (mark the slot, lazy unlink when it
//     reaches the front) and stale handles — fired, cancelled, or whose slot
//     was since reused — are harmlessly inert;
//   * callables are `sim::Callback` (small-buffer-optimized), not
//     `std::function`, so typical captures stay inline.

#include <cstdint>
#include <memory>
#include <vector>

#include "ars/sim/callback.hpp"

namespace ars::sim {

/// Virtual time in seconds since the start of the experiment.
using SimTime = double;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// A cancellable reference to a scheduled event.  Default-constructed
  /// handles are empty; cancelling an empty, already-fired, or stale handle
  /// is a harmless no-op (awaitable destructors rely on that).  Handles must
  /// not outlive their engine — they keep a raw pointer to it.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Prevent the event from running.  Safe to call at any point.
    void cancel() noexcept;

    [[nodiscard]] bool pending() const noexcept;

   private:
    friend class Engine;
    EventHandle(Engine* engine, std::uint64_t id) noexcept
        : engine_(engine), id_(id) {}

    Engine* engine_ = nullptr;
    /// Packed (generation << 32 | slot + 1); 0 means empty.
    std::uint64_t id_ = 0;
  };

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now, clamped otherwise).
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` after a relative delay (>= 0, clamped otherwise).
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Run the next pending event.  Returns false when the queue is empty or a
  /// stop was requested.
  bool step();

  /// Run until the queue drains or a stop is requested.  Returns the number
  /// of events executed.
  std::size_t run();

  /// Run every event with timestamp <= `until`, then advance the clock to
  /// `until`.  Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Timestamp of the earliest live pending event, +infinity when the queue
  /// is empty.  Settles cancelled fronts on the way, so repeated peeks stay
  /// O(1) amortized.  The conservative shard coordinator (sim/shard.hpp)
  /// uses this to derive each epoch's horizon.
  [[nodiscard]] SimTime next_event_at();

  /// Make run()/run_until() return after the current event finishes.
  void request_stop() noexcept { stop_requested_ = true; }
  void clear_stop() noexcept { stop_requested_ = false; }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return live_events_;
  }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

 private:
  static constexpr std::uint32_t kNone = 0x7fffffffU;
  static constexpr std::uint32_t kCancelledBit = 0x80000000U;
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1U << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  /// One pooled event, exactly one cache line.  `link` is the freelist next
  /// when free, or the next event of the same-timestamp FIFO chain (plus the
  /// cancelled bit) when scheduled.  `generation` is bumped whenever the
  /// slot's current schedule ends (fired or cancelled), invalidating
  /// outstanding handles.
  struct alignas(64) Slot {
    Callback fn;
    std::uint32_t generation = 0;
    std::uint32_t link = kNone;
  };
  static_assert(sizeof(Callback) <= 56, "Slot must stay one cache line");

  /// FIFO chain of events sharing one timestamp; referenced by heap entries
  /// and pooled/recycled like slots.
  struct TimeNode {
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
    std::uint32_t next_free = kNone;
  };

  /// Heap entries carry the timestamp so sift comparisons never touch the
  /// pools; `at` values in the heap are unique by construction.
  struct HeapEntry {
    SimTime at;
    std::uint32_t node;
  };

  /// Open-addressed hash index: timestamp bits -> TimeNode, so pushes find
  /// an existing chain in O(1).  Linear probing with backward-shift
  /// deletion; rehashes only on growth, so steady state never allocates.
  class TimeIndex {
   public:
    [[nodiscard]] std::uint32_t find(SimTime at) const noexcept;
    void insert(SimTime at, std::uint32_t node);
    void erase(SimTime at) noexcept;

   private:
    struct Cell {
      std::uint64_t key = 0;
      std::uint32_t node = kNone;
    };

    [[nodiscard]] static std::uint64_t key_bits(SimTime at) noexcept;
    void grow();

    std::vector<Cell> cells_;
    std::size_t used_ = 0;
  };

  [[nodiscard]] Slot& slot(std::uint32_t index) noexcept {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }

  bool pop_and_run(SimTime limit, bool bounded);
  /// Drop cancelled chain fronts and emptied timestamps; afterwards the heap
  /// head (if any) fronts a live event.
  void settle_head();

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) noexcept;
  std::uint32_t acquire_node();
  void release_node(std::uint32_t index) noexcept;

  // 4-ary heap over distinct timestamps.
  void heap_push(HeapEntry entry);
  void heap_pop_front();
  void sift_down(std::size_t pos) noexcept;

  [[nodiscard]] static std::uint64_t pack(std::uint32_t index,
                                          std::uint32_t generation) noexcept {
    return (static_cast<std::uint64_t>(generation) << 32) |
           (static_cast<std::uint64_t>(index) + 1);
  }
  /// The slot the id refers to, or nullptr when stale/empty.  A matching
  /// generation implies the slot is scheduled and not cancelled.
  [[nodiscard]] Slot* resolve(std::uint64_t id) noexcept;

  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_slot_ = kNone;
  std::vector<TimeNode> nodes_;
  std::uint32_t free_node_ = kNone;
  std::vector<HeapEntry> heap_;
  TimeIndex index_;
  std::size_t live_events_ = 0;
};

}  // namespace ars::sim
