#pragma once
// Discrete-event simulation engine.
//
// The engine owns the virtual clock and a time-ordered event queue.  All
// simulated activity — coroutine resumptions, CPU-model completions, network
// deliveries, monitor timers — is expressed as events.  Two events at the
// same timestamp run in scheduling (FIFO) order, which keeps every run
// deterministic.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace ars::sim {

/// Virtual time in seconds since the start of the experiment.
using SimTime = double;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// A cancellable reference to a scheduled event.  Default-constructed
  /// handles are empty; cancelling an empty or already-fired handle is a
  /// harmless no-op (awaitable destructors rely on that).
  class EventHandle {
   public:
    EventHandle() = default;

    /// Prevent the event from running.  Safe to call at any point.
    void cancel() noexcept;

    [[nodiscard]] bool pending() const noexcept;

    struct Record;  // implementation detail, defined below

   private:
    friend class Engine;
    explicit EventHandle(std::shared_ptr<Record> record)
        : record_(std::move(record)) {}
    std::shared_ptr<Record> record_;
  };

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now, clamped otherwise).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` after a relative delay (>= 0, clamped otherwise).
  EventHandle schedule_after(SimTime delay, std::function<void()> fn);

  /// Run the next pending event.  Returns false when the queue is empty or a
  /// stop was requested.
  bool step();

  /// Run until the queue drains or a stop is requested.  Returns the number
  /// of events executed.
  std::size_t run();

  /// Run every event with timestamp <= `until`, then advance the clock to
  /// `until`.  Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Make run()/run_until() return after the current event finishes.
  void request_stop() noexcept { stop_requested_ = true; }
  void clear_stop() noexcept { stop_requested_ = false; }

  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

 private:
  struct QueueEntry;
  bool pop_and_run(SimTime limit, bool bounded);
  void prune_cancelled_head();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;

  // The heap stores shared records so EventHandle cancellation works without
  // a queue scan; cancelled entries are skipped when they reach the head.
  std::vector<std::shared_ptr<EventHandle::Record>> heap_;
  std::size_t live_events_ = 0;
};

struct Engine::EventHandle::Record {
  SimTime at = 0.0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
  bool cancelled = false;
  bool fired = false;
};

}  // namespace ars::sim
