#pragma once
// Small-buffer-optimized, move-only callable for the event loop.
//
// Every simulated action is an event, and every event carries a callable.
// `std::function` heap-allocates for captures beyond ~16 bytes and drags in
// copy machinery the engine never uses; `Callback` instead guarantees inline
// storage for any nothrow-movable callable up to `kInlineSize` (48) bytes —
// which covers every scheduling call site in the runtime (coroutine-handle
// resumptions, `[this]` member timers, `shared_ptr` fiber starts) — so the
// steady-state event loop performs no heap allocation.  Larger or
// throwing-move callables transparently fall back to the heap.

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ars::sim {

class Callback {
 public:
  /// Callables up to this size/alignment (and nothrow-movable) are stored
  /// inline; pointer alignment covers every lambda capture in the runtime.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wrap any void() callable.  Intentionally implicit so existing
  /// `schedule_at(t, [..] { .. })` call sites read unchanged.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (storage()) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(fn)));
      ops_ = &boxed_ops<D>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the wrapped callable lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  void operator()() {
    ops_->invoke(storage());
  }

  /// Destroy the wrapped callable (releasing captured resources) and return
  /// to the empty state.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage());
      }
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-construct the callable from `src` storage into `dst` storage and
    // destroy the source (a destructive move, i.e. relocation).  nullptr
    // means "relocate by memcpy" — the hot path for trivially copyable
    // captures avoids an indirect call per move.
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr means "trivially destructible, nothing to do".
    void (*destroy)(void* self) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr Ops inline_ops{
      [](void* self) { (*static_cast<D*>(self))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              D* from = static_cast<D*>(src);
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* self) noexcept { static_cast<D*>(self)->~D(); },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops boxed_ops{
      [](void* self) { (**static_cast<D**>(self))(); },
      /*relocate=*/nullptr,  // moving the box is copying one pointer
      [](void* self) noexcept { delete *static_cast<D**>(self); },
      /*inline_storage=*/false,
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage(), other.storage());
      } else {
        std::memcpy(buffer_, other.buffer_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }

  [[nodiscard]] void* storage() noexcept { return buffer_; }
  [[nodiscard]] const void* storage() const noexcept { return buffer_; }

  alignas(kInlineAlign) std::byte buffer_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ars::sim
