#pragma once
// Suspension primitives: WaitQueue (condition-variable analogue) and Trigger
// (one-shot latch).  Notified coroutines are resumed through engine events at
// the current timestamp, never inline, which keeps interleavings FIFO and
// avoids reentrancy surprises; waiters must therefore re-check their
// predicate after waking (use a while-loop around `co_await wq.wait()`).

#include <cassert>
#include <coroutine>
#include <list>

#include "ars/sim/engine.hpp"
#include "ars/sim/task.hpp"

namespace ars::sim {

class WaitQueue {
 public:
  explicit WaitQueue(Engine& engine) noexcept : engine_(&engine) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  ~WaitQueue() { assert(waiters_.empty() && "WaitQueue destroyed with waiters"); }

  class Awaiter {
   public:
    explicit Awaiter(WaitQueue& queue) noexcept : queue_(&queue) {}
    Awaiter(const Awaiter&) = delete;
    Awaiter& operator=(const Awaiter&) = delete;
    ~Awaiter() {
      if (queued_) {
        queue_->waiters_.erase(position_);
      }
      wake_event_.cancel();
    }

    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle_ = h;
      queue_->waiters_.push_back(this);
      position_ = std::prev(queue_->waiters_.end());
      queued_ = true;
    }
    void await_resume() const noexcept {}

   private:
    friend class WaitQueue;
    WaitQueue* queue_;
    std::coroutine_handle<> handle_;
    std::list<Awaiter*>::iterator position_;
    bool queued_ = false;
    Engine::EventHandle wake_event_;
  };

  /// Suspend until notified.  Always pair with a predicate re-check.
  [[nodiscard]] Awaiter wait() noexcept { return Awaiter{*this}; }

  /// Wake the longest-waiting coroutine, if any.
  void notify_one() {
    if (waiters_.empty()) {
      return;
    }
    wake(waiters_.front());
  }

  /// Wake every currently queued coroutine.
  void notify_all() {
    while (!waiters_.empty()) {
      wake(waiters_.front());
    }
  }

  [[nodiscard]] std::size_t waiter_count() const noexcept {
    return waiters_.size();
  }
  [[nodiscard]] Engine& engine() const noexcept { return *engine_; }

 private:
  void wake(Awaiter* awaiter) {
    waiters_.erase(awaiter->position_);
    awaiter->queued_ = false;
    const std::coroutine_handle<> h = awaiter->handle_;
    awaiter->wake_event_ = engine_->schedule_after(0.0, [h] { h.resume(); });
  }

  Engine* engine_;
  std::list<Awaiter*> waiters_;
};

/// One-shot latch: `fire()` releases all current and future waiters.
class Trigger {
 public:
  explicit Trigger(Engine& engine) noexcept : queue_(engine) {}

  [[nodiscard]] bool fired() const noexcept { return fired_; }

  void fire() {
    if (!fired_) {
      fired_ = true;
      queue_.notify_all();
    }
  }

  [[nodiscard]] Task<> wait() {
    while (!fired_) {
      co_await queue_.wait();
    }
  }

 private:
  bool fired_ = false;
  WaitQueue queue_;
};

}  // namespace ars::sim
