#pragma once
// Conservative parallel discrete-event simulation: a group of independent
// engines (shards) advanced in lock-step epochs by worker threads.
//
// The synchronization protocol is the classic lookahead/window scheme
// (YAWNS-style adaptive barriers):
//
//   1. the coordinator peeks every shard's next event time and sets the
//      epoch horizon to  min(until, global_min_next_event + lookahead);
//   2. every shard runs its own engine up to the horizon — intra-shard
//      events execute lock-free on the ordinary slot-slab + 4-ary-heap
//      engine, no atomics on the hot path;
//   3. barrier; each shard drains the cross-shard mailboxes addressed to it
//      (sorted by (timestamp, source shard, sequence) so the merge order is
//      deterministic for a fixed shard count) and schedules the deliveries
//      into its own engine; barrier; repeat.
//
// Correctness rests on the lookahead contract: a cross-shard post made at
// source time t must be timestamped >= t + lookahead.  Every event executed
// inside an epoch has t >= the global minimum the horizon was derived from,
// so its posts land at or after the horizon — never in a peer's past.  The
// network's cross-shard fabric latency (net/shard_router.hpp) is the natural
// lookahead bound.
//
// Threading contract:
//   * shard s's engine (and everything hanging off it — hosts, networks,
//     tracers) is touched only by shard s's worker, or by the coordinating
//     thread while no epoch is in flight;
//   * post(src, ...) may be called from shard src's worker during an epoch,
//     or from the coordinating thread outside run_until (setup posts are
//     flushed before the first epoch);
//   * with one shard everything runs inline on the caller's thread — no
//     workers, no barriers, bit-identical to driving the engine directly.

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ars/sim/engine.hpp"

namespace ars::sim {

class ShardGroup {
 public:
  struct Options {
    /// Conservative synchronization bound, seconds: the minimum delay of any
    /// cross-shard post.  Must be > 0 (zero-lookahead would stall the epoch
    /// loop).
    double lookahead = 0.0001;
  };

  explicit ShardGroup(std::size_t shards);
  ShardGroup(std::size_t shards, Options options);
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;
  ~ShardGroup();

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }
  [[nodiscard]] Engine& engine(std::size_t shard) noexcept {
    return shards_[shard]->engine;
  }
  [[nodiscard]] double lookahead() const noexcept { return options_.lookahead; }

  /// Cross-shard event: run `fn` on shard `dst`'s engine at absolute time
  /// `at`.  src == dst degenerates to a plain schedule_at.  During an epoch
  /// `at` must honor the lookahead contract (>= source now + lookahead);
  /// delivery happens at the next epoch barrier.
  void post(std::size_t src, std::size_t dst, SimTime at, Callback fn);

  /// Advance every shard to `until` (events with t <= until execute, clocks
  /// land on `until`).  Returns the number of events executed across all
  /// shards.  Not reentrant; call from one coordinating thread.
  std::size_t run_until(SimTime until);

  /// Sum of events executed across shards.  Stable only while no epoch is
  /// in flight (i.e. outside run_until) — same as the other accessors.
  [[nodiscard]] std::uint64_t events_executed() const;
  /// Epoch barriers crossed by threaded run_until calls so far.
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  /// Cross-shard deliveries merged into destination engines so far.
  [[nodiscard]] std::uint64_t cross_events() const;
  /// True once worker threads exist (first multi-shard run_until).
  [[nodiscard]] bool threaded() const noexcept { return !workers_.empty(); }

 private:
  struct Pending {
    SimTime at = 0.0;
    std::uint64_t seq = 0;
    Callback fn;
  };

  /// One (src, dst) mailbox.  Written only by src's thread during the run
  /// phase, drained only by dst's thread during the exchange phase; the
  /// epoch barriers order the two.  Cache-line sized so neighbouring
  /// writers never share a line.
  struct alignas(64) Mailbox {
    std::vector<Pending> items;
    std::uint64_t next_seq = 0;
  };

  struct Incoming {
    SimTime at = 0.0;
    std::size_t src = 0;
    std::uint64_t seq = 0;
    Callback fn;
  };

  struct alignas(64) ShardState {
    Engine engine;
    std::vector<Incoming> scratch;  // exchange-phase merge buffer
    std::uint64_t cross_in = 0;     // deliveries merged into this shard
  };

  [[nodiscard]] Mailbox& outbox(std::size_t src, std::size_t dst) noexcept {
    return outbox_[src * shards_.size() + dst];
  }

  /// Run phase + exchange phase for one shard, separated by the barriers.
  void run_epoch(std::size_t shard, SimTime horizon);
  /// Drain every mailbox addressed to `dst` into its engine, deterministic
  /// (timestamp, source shard, sequence) order.
  void deliver_inbox(std::size_t dst);
  void ensure_workers();
  void worker_main(std::size_t shard);

  Options options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<Mailbox> outbox_;  // shards * shards, row-major by source
  std::uint64_t epochs_ = 0;

  // Epoch handshake: the coordinator publishes (round_, horizon_) under the
  // mutex and the two-phase barrier paces the round; workers park on the
  // condition variable between rounds.
  std::vector<std::thread> workers_;
  std::unique_ptr<std::barrier<>> barrier_;
  std::mutex mutex_;
  std::condition_variable round_start_;
  std::uint64_t round_ = 0;
  SimTime horizon_ = 0.0;
  bool exit_ = false;
};

}  // namespace ars::sim
