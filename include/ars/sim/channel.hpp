#pragma once
// Unbounded MPSC/MPMC channel connecting fibers.  `send` never blocks;
// `recv` suspends until an item or close arrives.  Channels back the
// simulated sockets, MPI matching queues, and entity mailboxes.

#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

#include "ars/sim/wait.hpp"

namespace ars::sim {

class ChannelClosed : public std::runtime_error {
 public:
  ChannelClosed() : std::runtime_error("channel closed") {}
};

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : waiters_(engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue an item.  Throws if the channel is closed.
  void send(T item) {
    if (closed_) {
      throw ChannelClosed{};
    }
    items_.push_back(std::move(item));
    waiters_.notify_one();
  }

  /// Receive the next item; throws ChannelClosed once closed and drained.
  [[nodiscard]] Task<T> recv() {
    while (items_.empty()) {
      if (closed_) {
        throw ChannelClosed{};
      }
      co_await waiters_.wait();
    }
    T item = std::move(items_.front());
    items_.pop_front();
    co_return item;
  }

  /// Receive variant that reports close as nullopt instead of throwing.
  [[nodiscard]] Task<std::optional<T>> recv_opt() {
    while (items_.empty()) {
      if (closed_) {
        co_return std::nullopt;
      }
      co_await waiters_.wait();
    }
    T item = std::move(items_.front());
    items_.pop_front();
    co_return std::optional<T>{std::move(item)};
  }

  /// Non-blocking poll.
  [[nodiscard]] std::optional<T> try_recv() {
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Close: queued items remain receivable; later receives observe close.
  void close() {
    if (!closed_) {
      closed_ = true;
      waiters_.notify_all();
    }
  }

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

 private:
  std::deque<T> items_;
  WaitQueue waiters_;
  bool closed_ = false;
};

}  // namespace ars::sim
