#pragma once
// Higher-level synchronization utilities on top of WaitQueue: counting
// semaphore and timed waits.

#include <optional>

#include "ars/sim/wait.hpp"

namespace ars::sim {

/// Counting semaphore for fibers (resource pools, bounded concurrency).
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial)
      : count_(initial), waiters_(engine) {}

  /// Acquire one unit, suspending while none are available.
  [[nodiscard]] Task<> acquire() {
    while (count_ == 0) {
      co_await waiters_.wait();
    }
    --count_;
  }

  /// Try to acquire without suspending.
  [[nodiscard]] bool try_acquire() noexcept {
    if (count_ == 0) {
      return false;
    }
    --count_;
    return true;
  }

  void release(std::size_t units = 1) {
    count_ += units;
    for (std::size_t i = 0; i < units; ++i) {
      waiters_.notify_one();
    }
  }

  [[nodiscard]] std::size_t available() const noexcept { return count_; }
  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.waiter_count();
  }

 private:
  std::size_t count_;
  WaitQueue waiters_;
};

/// Wait for a trigger with a deadline.  Returns true if the trigger fired,
/// false on timeout.
[[nodiscard]] inline Task<bool> wait_with_timeout(Engine& engine,
                                                  Trigger& trigger,
                                                  SimTime timeout) {
  const SimTime deadline = engine.now() + timeout;
  while (!trigger.fired()) {
    if (engine.now() >= deadline) {
      co_return false;
    }
    // Poll-free would need a multiplexed wait; a deadline-bounded re-check
    // at modest granularity keeps the primitive simple and deterministic.
    const SimTime step = std::min(deadline - engine.now(), timeout / 16.0);
    co_await delay(engine, std::max(step, 1e-6));
  }
  co_return true;
}

}  // namespace ars::sim
