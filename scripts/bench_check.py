#!/usr/bin/env python3
"""Compare google-benchmark JSON results against a committed baseline.

The micro benches emit google-benchmark JSON via their --json-out= flag
(see bench/common.hpp).  This script checks the measured throughput
(items_per_second / bytes_per_second, falling back to real_time) against
BENCH_micro.json and fails when a benchmark regressed beyond the tolerance
band.  Faster-than-baseline results always pass; refresh the baseline with
--update after intentional performance work.

Usage:
  # regenerate results
  build/bench/bench_micro_components --json-out=/tmp/components.json
  build/bench/bench_micro_simulation --json-out=/tmp/simulation.json
  # check
  scripts/bench_check.py /tmp/components.json /tmp/simulation.json
  # refresh the committed baseline
  scripts/bench_check.py --update /tmp/components.json /tmp/simulation.json
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_micro.json"

# Throughput metrics: bigger is better.  real_time (smaller is better) is
# the fallback for benchmarks that report neither.
THROUGHPUT_METRICS = ("items_per_second", "bytes_per_second")


def extract(results_path):
    """benchmark name -> {metric: value} from google-benchmark JSON."""
    with open(results_path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # keep per-run entries; aggregates would double-count
        name = bench["name"]
        metrics = {}
        for metric in THROUGHPUT_METRICS:
            if metric in bench:
                metrics[metric] = bench[metric]
        # real_time rides along even when a throughput metric exists: ratio
        # entries (e.g. the sharded speedup-vs-1-shard curve) compare wall
        # time between two benchmarks.
        if "real_time" in bench:
            metrics.setdefault("real_time", bench["real_time"])
        if metrics:
            out[name] = metrics
    return out


def merge_results(paths):
    merged = {}
    for path in paths:
        for name, metrics in extract(path).items():
            if name in merged:
                print(f"warning: {name} appears in more than one results file;"
                      " keeping the last occurrence", file=sys.stderr)
            merged[name] = metrics
    return merged


def check(baseline, measured, tolerance):
    """Returns (failures, warnings) as lists of human-readable strings."""
    failures = []
    warnings = []
    for name, base_metrics in sorted(baseline.get("benchmarks", {}).items()):
        if name not in measured:
            warnings.append(f"{name}: in baseline but not in results (skipped)")
            continue
        for metric, base_value in base_metrics.items():
            got = measured[name].get(metric)
            if got is None or base_value <= 0:
                continue
            if metric == "real_time":  # smaller is better
                ratio = base_value / got if got > 0 else 0.0
                bound_desc = f"<= {base_value * (1 + tolerance):.4g}"
                ok = got <= base_value * (1 + tolerance)
            else:  # throughput: bigger is better
                ratio = got / base_value
                bound_desc = f">= {base_value * (1 - tolerance):.4g}"
                ok = got >= base_value * (1 - tolerance)
            line = (f"{name} {metric}: measured {got:.4g} vs baseline "
                    f"{base_value:.4g} ({ratio:.2f}x, require {bound_desc})")
            if ok:
                print(f"  ok   {line}")
            else:
                failures.append(line)
    for name in sorted(set(measured) - set(baseline.get("benchmarks", {}))):
        warnings.append(f"{name}: measured but not in baseline "
                        "(add via --update)")
    return failures, warnings


def measured_ratio(entry, measured):
    """value(numerator)/value(denominator) for a ratio entry, or None."""
    metric = entry.get("metric", "real_time")
    num = measured.get(entry.get("numerator", ""), {}).get(metric)
    den = measured.get(entry.get("denominator", ""), {}).get(metric)
    if num is None or den is None or den == 0:
        return None
    return num / den


def check_ratios(baseline, measured, default_tolerance):
    """Derived-ratio entries: numerator/denominator of a metric across two
    benchmarks (e.g. speedup vs the 1-shard run).  Each entry carries its
    own tolerance, and `warn_only: true` downgrades a miss to a warning —
    parallel speedups depend on how many cores the runner actually grants.
    Returns (failures, warnings)."""
    failures = []
    warnings = []
    for name, entry in sorted(baseline.get("ratios", {}).items()):
        got = measured_ratio(entry, measured)
        if got is None:
            warnings.append(f"ratio {name}: operands not in results (skipped)")
            continue
        base_value = entry.get("value")
        if base_value is None or base_value <= 0:
            warnings.append(f"ratio {name}: no baseline value (skipped)")
            continue
        tolerance = entry.get("tolerance", default_tolerance)
        ok = got >= base_value * (1 - tolerance)
        line = (f"ratio {name}: measured {got:.3f} vs baseline "
                f"{base_value:.3f} (require >= "
                f"{base_value * (1 - tolerance):.3f})")
        if ok:
            print(f"  ok   {line}")
        elif entry.get("warn_only"):
            warnings.append(f"{line} [warn-only]")
        else:
            failures.append(line)
    return failures, warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+",
                        help="google-benchmark JSON files (from --json-out=)")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional regression "
                             "(default: baseline file's value, else 0.35)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 "
                             "(for noisy shared CI runners)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from these results")
    args = parser.parse_args()

    measured = merge_results(args.results)
    if not measured:
        print("error: no benchmark entries found in results", file=sys.stderr)
        return 2

    if args.update:
        baseline = {
            "schema": "ars-bench-baseline-v1",
            "tolerance": args.tolerance if args.tolerance is not None else 0.35,
            "benchmarks": {name: metrics
                           for name, metrics in sorted(measured.items())},
        }
        if args.baseline.exists():
            # Ratio entries are hand-authored; carry them over and refresh
            # each pinned value from the new results when both operands ran.
            previous = json.loads(args.baseline.read_text())
            ratios = previous.get("ratios", {})
            for entry in ratios.values():
                got = measured_ratio(entry, measured)
                if got is not None:
                    entry["value"] = got
            if ratios:
                baseline["ratios"] = ratios
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"wrote {args.baseline} ({len(measured)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found "
              "(create one with --update)", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = baseline.get("tolerance", 0.35)

    print(f"checking {len(measured)} measured benchmarks against "
          f"{args.baseline.name} (tolerance {tolerance:.0%})")
    failures, warnings = check(baseline, measured, tolerance)
    ratio_failures, ratio_warnings = check_ratios(baseline, measured, tolerance)
    failures += ratio_failures
    warnings += ratio_warnings
    for warning in warnings:
        print(f"  warn {warning}")
    for failure in failures:
        print(f"  FAIL {failure}")
    if failures:
        if args.warn_only:
            print(f"{len(failures)} regression(s) beyond tolerance "
                  "(ignored: --warn-only)")
            return 0
        print(f"{len(failures)} regression(s) beyond tolerance")
        return 1
    print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
