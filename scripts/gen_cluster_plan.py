#!/usr/bin/env python3
"""Generate a sharded-cluster plan JSON (core::load_cluster_plan format).

A cluster plan parameterizes core::ShardedCluster — the scaling scenario on
the parallel sharded DES core — without recompiling: fleet size, shard
count, registry topology, load mix, and chaos windows.  The committed
plans/huge-cluster.json (100k hosts) and plans/huge-cluster-smoke.json (CI
size) were produced by this script; regenerate or derive new ones with:

  scripts/gen_cluster_plan.py --hosts 100000 --shards 8 \
      --duration 120 --out plans/huge-cluster.json
  scripts/gen_cluster_plan.py --hosts 2000 --shards 4 --duration 30 \
      --name huge-cluster-smoke --out plans/huge-cluster-smoke.json

Unknown keys are ignored by the C++ loader, so plans written by newer
versions of this script stay loadable — which also means a typo in a
hand-edited plan silently becomes a default.  `--check FILE` closes that
gap: it validates a plan against the schema this script generates,
rejecting unknown top-level keys and reporting every error with the
offending key path ($.hots: unknown key).
"""

import argparse
import json
import numbers
import pathlib
import sys

def _is_int(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v) -> bool:
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


# Top-level plan schema: key -> (predicate, description).  Mirrors
# build_plan() below and core::load_cluster_plan's known keys.
_SCHEMA = {
    "name": (lambda v: isinstance(v, str) and v != "", "non-empty string"),
    "hosts": (lambda v: _is_int(v) and v >= 1, "integer >= 1"),
    "shards": (lambda v: _is_int(v) and v >= 1, "integer >= 1"),
    "duration": (
        lambda v: _is_num(v) and v > 0,
        "number > 0",
    ),
    "cross_latency": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
    "hierarchical": (lambda v: isinstance(v, bool), "boolean"),
    "delta_heartbeats": (lambda v: isinstance(v, bool), "boolean"),
    "seed": (lambda v: _is_int(v) and v >= 0, "integer >= 0"),
    "busy_fraction": (
        lambda v: _is_num(v) and 0 <= v <= 1,
        "number in [0, 1]",
    ),
    "overloaded_fraction": (
        lambda v: _is_num(v) and 0 <= v <= 1,
        "number in [0, 1]",
    ),
    "tracing": (lambda v: isinstance(v, bool), "boolean"),
    "trace_capacity": (
        lambda v: _is_int(v) and v >= 0,
        "integer >= 0",
    ),
    "generator": (lambda v: isinstance(v, str), "string"),
    "message_loss": (
        lambda v: _is_num(v) and 0 <= v <= 1,
        "number in [0, 1]",
    ),
    "loss_from": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
    "loss_until": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
    "crash_hosts": (
        lambda v: _is_int(v) and v >= 0,
        "integer >= 0",
    ),
    "crash_at": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
    "crash_until": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
    # Per-host crash-rate failure model (ckpt_campaign --plan=FILE): every
    # worker host draws exponential crash arrivals with this mean through
    # [mtbf_from, mtbf_until], rebooting reboot_after seconds later.
    "host_mtbf": (
        lambda v: _is_num(v) and v > 0,
        "number > 0 (seconds between crashes per host)",
    ),
    "mtbf_from": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
    "mtbf_until": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
    "reboot_after": (
        lambda v: _is_num(v) and v >= 0,
        "number >= 0",
    ),
}

_REQUIRED = ("name", "hosts", "shards", "duration")


def validate_plan(plan) -> list:
    """Schema errors as '$.key: what' strings; empty when the plan is valid."""
    if not isinstance(plan, dict):
        return ["$: expected a JSON object"]
    errors = []
    for key in sorted(plan):
        if key not in _SCHEMA:
            errors.append(f"$.{key}: unknown key")
    for key in _REQUIRED:
        if key not in plan:
            errors.append(f"$.{key}: required key is missing")
    for key, (accept, want) in _SCHEMA.items():
        if key in plan and not accept(plan[key]):
            errors.append(f"$.{key}: expected {want}, got {plan[key]!r}")
    return sorted(errors)


def build_plan(args: argparse.Namespace) -> dict:
    plan = {
        "name": args.name,
        "hosts": args.hosts,
        "shards": args.shards,
        "duration": args.duration,
        "cross_latency": args.cross_latency,
        "hierarchical": not args.flat,
        "delta_heartbeats": not args.full_heartbeats,
        "seed": args.seed,
        "busy_fraction": args.busy_fraction,
        "overloaded_fraction": args.overloaded_fraction,
        "tracing": not args.no_tracing,
        "trace_capacity": args.trace_capacity,
        "generator": "scripts/gen_cluster_plan.py",
    }
    if args.message_loss > 0:
        plan["message_loss"] = args.message_loss
        plan["loss_from"] = args.loss_from
        plan["loss_until"] = (
            args.loss_until if args.loss_until > 0 else args.duration
        )
    if args.crash_hosts > 0:
        plan["crash_hosts"] = args.crash_hosts
        plan["crash_at"] = args.crash_at
        plan["crash_until"] = (
            args.crash_until if args.crash_until > 0 else args.duration
        )
    if args.host_mtbf > 0:
        plan["host_mtbf"] = args.host_mtbf
        plan["mtbf_from"] = args.mtbf_from
        plan["mtbf_until"] = (
            args.mtbf_until if args.mtbf_until > 0 else args.duration
        )
        plan["reboot_after"] = args.reboot_after
    return plan


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--name", default=None, help="plan name (default: derived)")
    parser.add_argument("--hosts", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="virtual seconds to simulate")
    parser.add_argument("--cross-latency", type=float, default=0.005,
                        dest="cross_latency",
                        help="inter-shard fabric latency / lookahead, seconds")
    parser.add_argument("--flat", action="store_true",
                        help="single root registry (all heartbeats cross-shard)"
                        " instead of one child registry per shard")
    parser.add_argument("--full-heartbeats", action="store_true",
                        dest="full_heartbeats",
                        help="disable delta-heartbeat coalescing")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--busy-fraction", type=float, default=0.30,
                        dest="busy_fraction")
    parser.add_argument("--overloaded-fraction", type=float, default=0.05,
                        dest="overloaded_fraction")
    parser.add_argument("--message-loss", type=float, default=0.0,
                        dest="message_loss")
    parser.add_argument("--loss-from", type=float, default=0.0,
                        dest="loss_from")
    parser.add_argument("--loss-until", type=float, default=0.0,
                        dest="loss_until", help="default: plan duration")
    parser.add_argument("--crash-hosts", type=int, default=0,
                        dest="crash_hosts",
                        help="first N hosts of each shard crash")
    parser.add_argument("--crash-at", type=float, default=0.0,
                        dest="crash_at")
    parser.add_argument("--crash-until", type=float, default=0.0,
                        dest="crash_until", help="default: plan duration")
    parser.add_argument("--host-mtbf", type=float, default=0.0,
                        dest="host_mtbf",
                        help="per-host mean time between crashes, seconds"
                        " (0: no crash-rate model; consumed by"
                        " tools/ckpt_campaign --plan=FILE)")
    parser.add_argument("--mtbf-from", type=float, default=40.0,
                        dest="mtbf_from",
                        help="crash-rate window start, seconds")
    parser.add_argument("--mtbf-until", type=float, default=0.0,
                        dest="mtbf_until", help="default: plan duration")
    parser.add_argument("--reboot-after", type=float, default=30.0,
                        dest="reboot_after",
                        help="crashed hosts reboot after this many seconds")
    parser.add_argument("--no-tracing", action="store_true", dest="no_tracing",
                        help="disable tracing (cheaper bench runs)")
    parser.add_argument("--trace-capacity", type=int, default=4096,
                        dest="trace_capacity",
                        help="per-shard trace ring capacity")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output file (default: stdout)")
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        metavar="FILE",
                        help="validate an existing plan file against the"
                        " schema instead of generating one")
    args = parser.parse_args()

    if args.check is not None:
        try:
            plan = json.loads(args.check.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{args.check}: {exc}", file=sys.stderr)
            return 1
        errors = validate_plan(plan)
        for error in errors:
            print(f"{args.check}: {error}", file=sys.stderr)
        if not errors:
            print(f"{args.check}: ok", file=sys.stderr)
        return 1 if errors else 0

    if args.hosts < 1 or args.shards < 1:
        parser.error("--hosts and --shards must be >= 1")
    if args.name is None:
        args.name = f"cluster-{args.hosts}x{args.shards}"

    plan = build_plan(args)
    errors = validate_plan(plan)
    if errors:  # the generator drifting from its own schema is a bug
        for error in errors:
            print(f"generated plan: {error}", file=sys.stderr)
        return 1
    text = json.dumps(plan, indent=2, sort_keys=True) + "\n"
    if args.out is None:
        sys.stdout.write(text)
    else:
        args.out.write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
