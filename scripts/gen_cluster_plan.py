#!/usr/bin/env python3
"""Generate a sharded-cluster plan JSON (core::load_cluster_plan format).

A cluster plan parameterizes core::ShardedCluster — the scaling scenario on
the parallel sharded DES core — without recompiling: fleet size, shard
count, registry topology, load mix, and chaos windows.  The committed
plans/huge-cluster.json (100k hosts) and plans/huge-cluster-smoke.json (CI
size) were produced by this script; regenerate or derive new ones with:

  scripts/gen_cluster_plan.py --hosts 100000 --shards 8 \
      --duration 120 --out plans/huge-cluster.json
  scripts/gen_cluster_plan.py --hosts 2000 --shards 4 --duration 30 \
      --name huge-cluster-smoke --out plans/huge-cluster-smoke.json

Unknown keys are ignored by the C++ loader, so plans written by newer
versions of this script stay loadable.
"""

import argparse
import json
import pathlib
import sys


def build_plan(args: argparse.Namespace) -> dict:
    plan = {
        "name": args.name,
        "hosts": args.hosts,
        "shards": args.shards,
        "duration": args.duration,
        "cross_latency": args.cross_latency,
        "hierarchical": not args.flat,
        "delta_heartbeats": not args.full_heartbeats,
        "seed": args.seed,
        "busy_fraction": args.busy_fraction,
        "overloaded_fraction": args.overloaded_fraction,
        "tracing": not args.no_tracing,
        "trace_capacity": args.trace_capacity,
        "generator": "scripts/gen_cluster_plan.py",
    }
    if args.message_loss > 0:
        plan["message_loss"] = args.message_loss
        plan["loss_from"] = args.loss_from
        plan["loss_until"] = (
            args.loss_until if args.loss_until > 0 else args.duration
        )
    if args.crash_hosts > 0:
        plan["crash_hosts"] = args.crash_hosts
        plan["crash_at"] = args.crash_at
        plan["crash_until"] = (
            args.crash_until if args.crash_until > 0 else args.duration
        )
    return plan


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--name", default=None, help="plan name (default: derived)")
    parser.add_argument("--hosts", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="virtual seconds to simulate")
    parser.add_argument("--cross-latency", type=float, default=0.005,
                        dest="cross_latency",
                        help="inter-shard fabric latency / lookahead, seconds")
    parser.add_argument("--flat", action="store_true",
                        help="single root registry (all heartbeats cross-shard)"
                        " instead of one child registry per shard")
    parser.add_argument("--full-heartbeats", action="store_true",
                        dest="full_heartbeats",
                        help="disable delta-heartbeat coalescing")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--busy-fraction", type=float, default=0.30,
                        dest="busy_fraction")
    parser.add_argument("--overloaded-fraction", type=float, default=0.05,
                        dest="overloaded_fraction")
    parser.add_argument("--message-loss", type=float, default=0.0,
                        dest="message_loss")
    parser.add_argument("--loss-from", type=float, default=0.0,
                        dest="loss_from")
    parser.add_argument("--loss-until", type=float, default=0.0,
                        dest="loss_until", help="default: plan duration")
    parser.add_argument("--crash-hosts", type=int, default=0,
                        dest="crash_hosts",
                        help="first N hosts of each shard crash")
    parser.add_argument("--crash-at", type=float, default=0.0,
                        dest="crash_at")
    parser.add_argument("--crash-until", type=float, default=0.0,
                        dest="crash_until", help="default: plan duration")
    parser.add_argument("--no-tracing", action="store_true", dest="no_tracing",
                        help="disable tracing (cheaper bench runs)")
    parser.add_argument("--trace-capacity", type=int, default=4096,
                        dest="trace_capacity",
                        help="per-shard trace ring capacity")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output file (default: stdout)")
    args = parser.parse_args()

    if args.hosts < 1 or args.shards < 1:
        parser.error("--hosts and --shards must be >= 1")
    if args.name is None:
        args.name = f"cluster-{args.hosts}x{args.shards}"

    text = json.dumps(build_plan(args), indent=2, sort_keys=True) + "\n"
    if args.out is None:
        sys.stdout.write(text)
    else:
        args.out.write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
