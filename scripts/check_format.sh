#!/usr/bin/env sh
# Dry-run clang-format over every C++ source in the repo and fail if any
# file would be rewritten.  Intended for CI and pre-commit use:
#
#   $ scripts/check_format.sh            # check, non-zero exit on drift
#   $ scripts/check_format.sh --fix      # rewrite in place instead
#
# Exits 0 with a notice when clang-format is not installed, so the check is
# advisory on machines without the toolchain.
set -eu

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "$CLANG_FORMAT" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi
if [ -z "$CLANG_FORMAT" ]; then
  echo "check_format: clang-format not found; skipping (install it or set CLANG_FORMAT)" >&2
  exit 0
fi

MODE="--dry-run -Werror"
if [ "${1:-}" = "--fix" ]; then
  MODE="-i"
fi

# shellcheck disable=SC2086
find include src tests bench examples tools \
    -name '*.hpp' -o -name '*.cpp' | sort | \
  xargs "$CLANG_FORMAT" --style=file $MODE

echo "check_format: OK ($CLANG_FORMAT)"
