#!/usr/bin/env python3
"""Unit tests for gen_cluster_plan.py's schema validation.

Run directly (python3 scripts/test_gen_cluster_plan.py) or via ctest
(GenClusterPlan.SchemaValidation).
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import gen_cluster_plan as gcp

SCRIPT = pathlib.Path(gcp.__file__).resolve()


def minimal_plan() -> dict:
    return {"name": "t", "hosts": 100, "shards": 2, "duration": 30.0}


class ValidatePlanTest(unittest.TestCase):
    def test_minimal_plan_is_valid(self):
        self.assertEqual(gcp.validate_plan(minimal_plan()), [])

    def test_unknown_top_level_key_is_rejected_with_path(self):
        plan = minimal_plan()
        plan["hots"] = 5  # typo of "hosts"
        self.assertEqual(gcp.validate_plan(plan), ["$.hots: unknown key"])

    def test_every_error_names_the_offending_key(self):
        plan = minimal_plan()
        plan["busy_fraction"] = 1.5
        plan["shards"] = 0
        plan["bogus"] = True
        errors = gcp.validate_plan(plan)
        self.assertEqual(len(errors), 3)
        self.assertTrue(any(e.startswith("$.bogus: unknown key") for e in errors))
        self.assertTrue(
            any(e.startswith("$.busy_fraction: expected number in [0, 1]")
                for e in errors))
        self.assertTrue(
            any(e.startswith("$.shards: expected integer >= 1") for e in errors))

    def test_missing_required_key_is_reported(self):
        plan = minimal_plan()
        del plan["duration"]
        self.assertEqual(
            gcp.validate_plan(plan), ["$.duration: required key is missing"])

    def test_bool_does_not_pass_as_integer(self):
        plan = minimal_plan()
        plan["hosts"] = True  # JSON true; must not satisfy "integer >= 1"
        errors = gcp.validate_plan(plan)
        self.assertEqual(len(errors), 1)
        self.assertTrue(errors[0].startswith("$.hosts: expected integer >= 1"))

    def test_non_object_document_is_rejected(self):
        self.assertEqual(gcp.validate_plan([1, 2]),
                         ["$: expected a JSON object"])

    def test_generated_plans_validate(self):
        parser_args = ["--hosts", "2000", "--shards", "4", "--duration", "30",
                       "--message-loss", "0.05", "--crash-hosts", "3"]
        out = subprocess.run(
            [sys.executable, str(SCRIPT), *parser_args],
            capture_output=True, text=True, check=True)
        self.assertEqual(gcp.validate_plan(json.loads(out.stdout)), [])

    def test_host_mtbf_fields_are_emitted_and_validate(self):
        out = subprocess.run(
            [sys.executable, str(SCRIPT), "--hosts", "100", "--shards", "2",
             "--duration", "600", "--host-mtbf", "150",
             "--reboot-after", "25"],
            capture_output=True, text=True, check=True)
        plan = json.loads(out.stdout)
        self.assertEqual(gcp.validate_plan(plan), [])
        self.assertEqual(plan["host_mtbf"], 150.0)
        self.assertEqual(plan["mtbf_from"], 40.0)
        self.assertEqual(plan["mtbf_until"], 600.0)  # defaults to duration
        self.assertEqual(plan["reboot_after"], 25.0)

    def test_host_mtbf_must_be_positive(self):
        plan = minimal_plan()
        plan["host_mtbf"] = 0
        errors = gcp.validate_plan(plan)
        self.assertEqual(len(errors), 1)
        self.assertTrue(errors[0].startswith("$.host_mtbf: expected number > 0"))

    def test_mtbf_without_crash_rate_stays_absent(self):
        out = subprocess.run(
            [sys.executable, str(SCRIPT), "--hosts", "100", "--shards", "2",
             "--duration", "30"],
            capture_output=True, text=True, check=True)
        plan = json.loads(out.stdout)
        for key in ("host_mtbf", "mtbf_from", "mtbf_until", "reboot_after"):
            self.assertNotIn(key, plan)


class CheckModeTest(unittest.TestCase):
    def run_check(self, document: str):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as fh:
            fh.write(document)
            path = fh.name
        try:
            return subprocess.run(
                [sys.executable, str(SCRIPT), "--check", path],
                capture_output=True, text=True)
        finally:
            pathlib.Path(path).unlink()

    def test_check_accepts_a_valid_plan(self):
        result = self.run_check(json.dumps(minimal_plan()))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("ok", result.stderr)

    def test_check_rejects_unknown_keys_with_path(self):
        plan = minimal_plan()
        plan["craash_hosts"] = 3
        result = self.run_check(json.dumps(plan))
        self.assertEqual(result.returncode, 1)
        self.assertIn("$.craash_hosts: unknown key", result.stderr)

    def test_check_rejects_unparseable_json(self):
        result = self.run_check("{not json")
        self.assertEqual(result.returncode, 1)

    def test_committed_plans_pass_check(self):
        plans = sorted(
            (SCRIPT.parent.parent / "plans").glob("huge-cluster*.json"))
        self.assertTrue(plans)
        for plan in plans:
            result = subprocess.run(
                [sys.executable, str(SCRIPT), "--check", str(plan)],
                capture_output=True, text=True)
            self.assertEqual(result.returncode, 0,
                             f"{plan}: {result.stderr}")


if __name__ == "__main__":
    unittest.main()
