#include "ars/rules/engine.hpp"

#include <gtest/gtest.h>

namespace ars::rules {
namespace {

TEST(StateTable, Table1Semantics) {
  // Paper Table 1: System State Description.
  EXPECT_FALSE(actions_for(SystemState::kFree).loaded);
  EXPECT_TRUE(actions_for(SystemState::kFree).migrate_in);
  EXPECT_FALSE(actions_for(SystemState::kFree).migrate_out);

  EXPECT_TRUE(actions_for(SystemState::kBusy).loaded);
  EXPECT_FALSE(actions_for(SystemState::kBusy).migrate_in);
  EXPECT_FALSE(actions_for(SystemState::kBusy).migrate_out);

  EXPECT_TRUE(actions_for(SystemState::kOverloaded).loaded);
  EXPECT_FALSE(actions_for(SystemState::kOverloaded).migrate_in);
  EXPECT_TRUE(actions_for(SystemState::kOverloaded).migrate_out);
}

TEST(StateMapping, SeverityRoundTrip) {
  EXPECT_EQ(state_from_severity(severity(SystemState::kFree)),
            SystemState::kFree);
  EXPECT_EQ(state_from_severity(severity(SystemState::kBusy)),
            SystemState::kBusy);
  EXPECT_EQ(state_from_severity(severity(SystemState::kOverloaded)),
            SystemState::kOverloaded);
}

TEST(StateMapping, Thresholds) {
  EXPECT_EQ(state_from_severity(0.49), SystemState::kFree);
  EXPECT_EQ(state_from_severity(0.5), SystemState::kBusy);
  EXPECT_EQ(state_from_severity(1.49), SystemState::kBusy);
  EXPECT_EQ(state_from_severity(1.5), SystemState::kOverloaded);
}

TEST(StateNames, RoundTrip) {
  for (const SystemState s :
       {SystemState::kFree, SystemState::kBusy, SystemState::kOverloaded,
        SystemState::kUnavailable}) {
    const auto parsed = state_from_string(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(state_from_string("loaded").has_value());
}

class EngineFigure3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = RuleEngine::from_text(paper_figure3_text());
    ASSERT_TRUE(engine.has_value()) << engine.error().to_string();
    engine_ = std::make_unique<RuleEngine>(std::move(*engine));
  }

  std::unique_ptr<RuleEngine> engine_;
  MapSensorSource sensors_;
};

TEST_F(EngineFigure3Test, Rule1ProcessorStatusBands) {
  // Paper: idle < 45 -> overloaded; 45 <= idle < 50 -> busy; else free.
  sensors_.set("processorStatus.sh", 44.0);
  EXPECT_EQ(*engine_->evaluate(1, sensors_), SystemState::kOverloaded);
  sensors_.set("processorStatus.sh", 47.0);
  EXPECT_EQ(*engine_->evaluate(1, sensors_), SystemState::kBusy);
  sensors_.set("processorStatus.sh", 50.0);
  EXPECT_EQ(*engine_->evaluate(1, sensors_), SystemState::kFree);
  sensors_.set("processorStatus.sh", 95.0);
  EXPECT_EQ(*engine_->evaluate(1, sensors_), SystemState::kFree);
}

TEST_F(EngineFigure3Test, Rule2SocketBands) {
  // Paper: sockets > 900 -> overloaded; > 700 -> busy; else free.
  sensors_.set("ntStatIpv4.sh", "ESTABLISHED", 901.0);
  EXPECT_EQ(*engine_->evaluate(2, sensors_), SystemState::kOverloaded);
  sensors_.set("ntStatIpv4.sh", "ESTABLISHED", 800.0);
  EXPECT_EQ(*engine_->evaluate(2, sensors_), SystemState::kBusy);
  sensors_.set("ntStatIpv4.sh", "ESTABLISHED", 700.0);
  EXPECT_EQ(*engine_->evaluate(2, sensors_), SystemState::kFree);
}

TEST_F(EngineFigure3Test, EvaluateAllTakesWorstState) {
  sensors_.set("processorStatus.sh", 95.0);               // free
  sensors_.set("ntStatIpv4.sh", "ESTABLISHED", 950.0);    // overloaded
  EXPECT_EQ(*engine_->evaluate_all(sensors_), SystemState::kOverloaded);
  sensors_.set("ntStatIpv4.sh", "ESTABLISHED", 10.0);     // free
  EXPECT_EQ(*engine_->evaluate_all(sensors_), SystemState::kFree);
}

TEST_F(EngineFigure3Test, MissingSensorIsAnError) {
  const auto result = engine_->evaluate(1, sensors_);
  EXPECT_FALSE(result.has_value());
}

TEST(EngineComplex, PaperFigure4EndToEnd) {
  // Rules 1-4 simple (scripts s1..s4 with > thresholds at 1/2), rule 5 the
  // verbatim Figure 4 expression.
  const std::string text =
      "rl_number: 1\nrl_name: a\nrl_type: simple\nrl_script: s1\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 2\nrl_name: b\nrl_type: simple\nrl_script: s2\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 3\nrl_name: c\nrl_type: simple\nrl_script: s3\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 4\nrl_name: d\nrl_type: simple\nrl_script: s4\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 5\nrl_name: cmp_rule\nrl_type: complex\n"
      "rl_ruleNo: 4 1 3 2\n"
      "rl_script: ( 40% * r_4 + 30% * r1 + 30% * r3 ) & r2\n";
  auto engine = RuleEngine::from_text(text);
  ASSERT_TRUE(engine.has_value()) << engine.error().to_string();

  MapSensorSource sensors;
  // Everything busy (value 1.5: > busy threshold 1, not > overld 2).
  for (const char* s : {"s1", "s2", "s3", "s4"}) {
    sensors.set(s, 1.5);
  }
  EXPECT_EQ(*engine->evaluate(5, sensors), SystemState::kBusy);

  // Combination overloaded but r2 only busy -> busy (paper's wording).
  for (const char* s : {"s1", "s3", "s4"}) {
    sensors.set(s, 3.0);
  }
  EXPECT_EQ(*engine->evaluate(5, sensors), SystemState::kBusy);

  // r2 overloaded too -> overloaded.
  sensors.set("s2", 3.0);
  EXPECT_EQ(*engine->evaluate(5, sensors), SystemState::kOverloaded);

  // r2 free gates everything down to free.
  sensors.set("s2", 0.5);
  EXPECT_EQ(*engine->evaluate(5, sensors), SystemState::kFree);

  // Rule 5 is the only top-level rule (1-4 are referenced by it).
  EXPECT_EQ(engine->top_level_rules(), (std::vector<int>{5}));
}

TEST(EngineValidation, RejectsDanglingReference) {
  const std::string text =
      "rl_number: 5\nrl_name: c\nrl_type: complex\nrl_script: r1 & r2\n";
  EXPECT_FALSE(RuleEngine::from_text(text).has_value());
}

TEST(EngineValidation, RejectsDuplicateNumbers) {
  const std::string text =
      "rl_number: 1\nrl_name: a\nrl_type: simple\nrl_script: s\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 1\nrl_name: b\nrl_type: simple\nrl_script: s\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n";
  EXPECT_FALSE(RuleEngine::from_text(text).has_value());
}

TEST(EngineValidation, RejectsCyclicRules) {
  const std::string text =
      "rl_number: 1\nrl_name: a\nrl_type: complex\nrl_script: r2\n"
      "rl_number: 2\nrl_name: b\nrl_type: complex\nrl_script: r1\n";
  EXPECT_FALSE(RuleEngine::from_text(text).has_value());
}

TEST(EngineValidation, RejectsBadExpression) {
  const std::string text =
      "rl_number: 1\nrl_name: a\nrl_type: complex\nrl_script: r1 +\n";
  EXPECT_FALSE(RuleEngine::from_text(text).has_value());
}

TEST(EngineOptions, CustomThresholdsChangeMapping) {
  const std::string text =
      "rl_number: 1\nrl_name: a\nrl_type: simple\nrl_script: s1\n"
      "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n"
      "rl_number: 5\nrl_name: c\nrl_type: complex\nrl_script: 60% * r1\n";
  RuleEngine::Options strict;
  strict.busy_threshold = 0.4;
  strict.overld_threshold = 1.1;
  auto engine = RuleEngine::from_text(text, strict);
  ASSERT_TRUE(engine.has_value());
  MapSensorSource sensors;
  sensors.set("s1", 3.0);  // rule 1 overloaded -> 0.6 * 2 = 1.2 >= 1.1
  EXPECT_EQ(*engine->evaluate(5, sensors), SystemState::kOverloaded);
}

TEST(MapSensorSourceTest, ParamKeyedLookup) {
  MapSensorSource sensors;
  sensors.set("netstat.sh", "ESTABLISHED", 10.0);
  sensors.set("netstat.sh", "TIME_WAIT", 99.0);
  EXPECT_DOUBLE_EQ(*sensors.sample("netstat.sh", "ESTABLISHED"), 10.0);
  EXPECT_DOUBLE_EQ(*sensors.sample("netstat.sh", "TIME_WAIT"), 99.0);
  // Bare-script fallback.
  sensors.set("vmstat.sh", 50.0);
  EXPECT_DOUBLE_EQ(*sensors.sample("vmstat.sh", "ignored"), 50.0);
  EXPECT_FALSE(sensors.sample("nosuch.sh", "").has_value());
}

}  // namespace
}  // namespace ars::rules
