#include "ars/rules/expr.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ars::rules {
namespace {

using support::Expected;

std::function<Expected<double>(int)> table(std::map<int, double> values) {
  return [values = std::move(values)](int number) -> Expected<double> {
    const auto it = values.find(number);
    if (it == values.end()) {
      return support::make_error("test", "no rule r" + std::to_string(number));
    }
    return it->second;
  };
}

double eval(const std::string& text, std::map<int, double> values) {
  const auto expr = parse_expr(text);
  EXPECT_TRUE(expr.has_value()) << text << ": "
                                << (expr.has_value()
                                        ? ""
                                        : expr.error().to_string());
  const auto result = (*expr)->evaluate(table(std::move(values)));
  EXPECT_TRUE(result.has_value());
  return *result;
}

TEST(Expr, SingleRuleRef) {
  EXPECT_DOUBLE_EQ(eval("r1", {{1, 2.0}}), 2.0);
  EXPECT_DOUBLE_EQ(eval("r_1", {{1, 1.0}}), 1.0);
  EXPECT_DOUBLE_EQ(eval("R7", {{7, 0.0}}), 0.0);
}

TEST(Expr, PercentIsDividedBy100) {
  EXPECT_DOUBLE_EQ(eval("40% * r1", {{1, 2.0}}), 0.8);
  EXPECT_DOUBLE_EQ(eval("100% * r1", {{1, 1.0}}), 1.0);
}

TEST(Expr, PlainNumbersWork) {
  EXPECT_DOUBLE_EQ(eval("0.5 * r1", {{1, 2.0}}), 1.0);
  EXPECT_DOUBLE_EQ(eval("2 * r1", {{1, 1.0}}), 2.0);
}

TEST(Expr, WeightedSum) {
  // All three rules busy -> exactly 1.0 (busy).
  EXPECT_DOUBLE_EQ(eval("40% * r4 + 30% * r1 + 30% * r3",
                        {{4, 1.0}, {1, 1.0}, {3, 1.0}}),
                   1.0);
  // All overloaded -> 2.0.
  EXPECT_DOUBLE_EQ(eval("40% * r4 + 30% * r1 + 30% * r3",
                        {{4, 2.0}, {1, 2.0}, {3, 2.0}}),
                   2.0);
}

TEST(Expr, AndIsMinSeverity) {
  EXPECT_DOUBLE_EQ(eval("r1 & r2", {{1, 1.0}, {2, 1.0}}), 1.0);
  EXPECT_DOUBLE_EQ(eval("r1 & r2", {{1, 1.0}, {2, 2.0}}), 1.0);
  EXPECT_DOUBLE_EQ(eval("r1 & r2", {{1, 0.0}, {2, 2.0}}), 0.0);
}

TEST(Expr, OrIsMaxSeverity) {
  EXPECT_DOUBLE_EQ(eval("r1 | r2", {{1, 0.0}, {2, 2.0}}), 2.0);
  EXPECT_DOUBLE_EQ(eval("r1 | r2", {{1, 1.0}, {2, 0.0}}), 1.0);
}

TEST(Expr, PaperFigure4Expression) {
  const std::string figure4 = "( 40% * r_4 + 30% * r1 + 30% * r3 ) & r2";
  // Combination busy and r2 busy -> busy (1.0).
  EXPECT_DOUBLE_EQ(eval(figure4, {{4, 1.0}, {1, 1.0}, {3, 1.0}, {2, 1.0}}),
                   1.0);
  // Combination overloaded, r2 busy -> busy (min).
  EXPECT_DOUBLE_EQ(eval(figure4, {{4, 2.0}, {1, 2.0}, {3, 2.0}, {2, 1.0}}),
                   1.0);
  // Both overloaded -> overloaded.
  EXPECT_DOUBLE_EQ(eval(figure4, {{4, 2.0}, {1, 2.0}, {3, 2.0}, {2, 2.0}}),
                   2.0);
  // r2 free dominates the min -> free.
  EXPECT_DOUBLE_EQ(eval(figure4, {{4, 2.0}, {1, 2.0}, {3, 2.0}, {2, 0.0}}),
                   0.0);
}

TEST(Expr, PrecedenceAndBindsLooserThanPlus) {
  // r1 + r2 & r3 parses as (r1 + r2) & r3.
  EXPECT_DOUBLE_EQ(eval("r1 + r2 & r3", {{1, 1.0}, {2, 1.0}, {3, 0.5}}), 0.5);
}

TEST(Expr, PrecedenceOrBindsLooserThanAnd) {
  // r1 | r2 & r3 parses as r1 | (r2 & r3).
  EXPECT_DOUBLE_EQ(eval("r1 | r2 & r3", {{1, 2.0}, {2, 0.0}, {3, 1.0}}), 2.0);
}

TEST(Expr, ParenthesesOverridePrecedence) {
  EXPECT_DOUBLE_EQ(eval("(r1 | r2) & r3", {{1, 2.0}, {2, 0.0}, {3, 1.0}}),
                   1.0);
}

TEST(Expr, CollectRefs) {
  const auto expr = parse_expr("( 40% * r_4 + 30% * r1 + 30% * r3 ) & r2");
  ASSERT_TRUE(expr.has_value());
  std::set<int> refs;
  (*expr)->collect_refs(refs);
  EXPECT_EQ(refs, (std::set<int>{1, 2, 3, 4}));
}

TEST(Expr, ToStringReparses) {
  const auto expr = parse_expr("( 40% * r_4 + 30% * r1 ) & r2 | r3");
  ASSERT_TRUE(expr.has_value());
  const std::string text = (*expr)->to_string();
  const auto reparsed = parse_expr(text);
  ASSERT_TRUE(reparsed.has_value()) << text;
  const auto values = std::map<int, double>{{4, 2.0}, {1, 1.0}, {2, 1.0},
                                            {3, 0.0}};
  EXPECT_DOUBLE_EQ(*(*expr)->evaluate(table(values)),
                   *(*reparsed)->evaluate(table(values)));
}

TEST(Expr, LookupFailurePropagates) {
  const auto expr = parse_expr("r1 & r99");
  ASSERT_TRUE(expr.has_value());
  const auto result = (*expr)->evaluate(table({{1, 1.0}}));
  EXPECT_FALSE(result.has_value());
}

TEST(Expr, RejectsMalformedInput) {
  EXPECT_FALSE(parse_expr("").has_value());
  EXPECT_FALSE(parse_expr("r").has_value());
  EXPECT_FALSE(parse_expr("r_").has_value());
  EXPECT_FALSE(parse_expr("(r1").has_value());
  EXPECT_FALSE(parse_expr("r1 +").has_value());
  EXPECT_FALSE(parse_expr("r1 r2").has_value());
  EXPECT_FALSE(parse_expr("* r1").has_value());
  EXPECT_FALSE(parse_expr("r1 $ r2").has_value());
  EXPECT_FALSE(parse_expr("40%% * r1").has_value());
}

}  // namespace
}  // namespace ars::rules
