#include "ars/rules/policy.hpp"

#include <gtest/gtest.h>

namespace ars::rules {
namespace {

using xmlproto::DynamicStatus;

DynamicStatus idle_host() {
  DynamicStatus s;
  s.load1 = 0.2;
  s.processes = 60;
  s.net_in_bps = 1.0e3;
  s.net_out_bps = 1.0e3;
  return s;
}

TEST(MetricNames, RoundTrip) {
  for (const Metric m :
       {Metric::kLoad1, Metric::kLoad5, Metric::kCpuUtil, Metric::kProcesses,
        Metric::kMemAvailablePct, Metric::kDiskAvailable, Metric::kNetIn,
        Metric::kNetOut, Metric::kNetFlow, Metric::kSockets}) {
    const auto parsed = metric_from_string(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(metric_from_string("gpu_util").has_value());
}

TEST(MetricValues, ReadFromStatus) {
  DynamicStatus s;
  s.load1 = 2.52;
  s.load5 = 1.0;
  s.cpu_util = 0.97;
  s.processes = 151;
  s.mem_available_pct = 33.0;
  s.disk_available = 4096;
  s.net_in_bps = 6.71e6;
  s.net_out_bps = 7.78e6;
  s.sockets_established = 42;
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kLoad1), 2.52);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kProcesses), 151.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kNetFlow), 7.78e6);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kSockets), 42.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kDiskAvailable), 4096.0);
}

TEST(Policy1, NeverOffloads) {
  const MigrationPolicy policy = paper_policy1();
  DynamicStatus s = idle_host();
  s.load1 = 99.0;
  s.processes = 9999;
  EXPECT_FALSE(policy.should_offload(s));
  // And it accepts any destination trivially (no conditions).
  EXPECT_TRUE(policy.accepts_destination(idle_host()));
}

TEST(Policy2, TriggersOnLoadOrProcessCount) {
  const MigrationPolicy policy = paper_policy2();
  DynamicStatus s = idle_host();
  EXPECT_FALSE(policy.should_offload(s));
  s.load1 = 2.1;
  EXPECT_TRUE(policy.should_offload(s));
  s.load1 = 0.2;
  s.processes = 151;
  EXPECT_TRUE(policy.should_offload(s));
}

TEST(Policy2, DestinationRequiresAllConditions) {
  const MigrationPolicy policy = paper_policy2();
  DynamicStatus dest = idle_host();
  dest.load1 = 0.97;  // the paper's 2nd workstation: below the threshold
  dest.processes = 90;
  EXPECT_TRUE(policy.accepts_destination(dest));
  dest.load1 = 1.0;  // not < 1
  EXPECT_FALSE(policy.accepts_destination(dest));
  dest.load1 = 0.5;
  dest.processes = 100;  // not < 100
  EXPECT_FALSE(policy.accepts_destination(dest));
}

TEST(Policy2, IgnoresCommunication) {
  const MigrationPolicy policy = paper_policy2();
  DynamicStatus dest = idle_host();
  dest.load1 = 0.97;
  dest.net_in_bps = 7.0e6;  // busy in communication — policy 2 cannot see it
  dest.net_out_bps = 7.0e6;
  EXPECT_TRUE(policy.accepts_destination(dest));
}

TEST(Policy3, RejectsCommBusyDestination) {
  const MigrationPolicy policy = paper_policy3();
  DynamicStatus dest = idle_host();
  dest.load1 = 0.97;
  dest.net_in_bps = 7.0e6;  // > 3 MB/s
  EXPECT_FALSE(policy.accepts_destination(dest));
  dest.net_in_bps = 2.0e6;
  dest.net_out_bps = 2.5e6;
  EXPECT_TRUE(policy.accepts_destination(dest));
}

TEST(Policy3, SourceGateBlocksWhenNicSaturated) {
  const MigrationPolicy policy = paper_policy3();
  DynamicStatus s = idle_host();
  s.load1 = 3.0;  // triggered
  s.net_out_bps = 6.0e6;  // > 5 MB/s gate
  EXPECT_FALSE(policy.should_offload(s));
  s.net_out_bps = 4.0e6;
  EXPECT_TRUE(policy.should_offload(s));
}

TEST(PolicyParse, RoundTripThroughText) {
  const MigrationPolicy policy = paper_policy3();
  const auto reparsed = parse_policy(policy.to_text());
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed->name(), "policy3");
  EXPECT_EQ(reparsed->triggers().size(), 2U);
  EXPECT_EQ(reparsed->source_gates().size(), 1U);
  EXPECT_EQ(reparsed->dest_conditions().size(), 3U);
  DynamicStatus s = idle_host();
  s.processes = 200;
  EXPECT_EQ(reparsed->should_offload(s), policy.should_offload(s));
}

TEST(PolicyParse, FullDocument) {
  const auto policy = parse_policy(
      "# demo policy\n"
      "policy: demo\n"
      "trigger: load1 > 2\n"
      "gate: net_flow <= 5000000\n"
      "dest: load1 < 1\n"
      "freq_free: 12\n"
      "freq_busy: 8\n"
      "freq_overloaded: 4\n"
      "warmup: 72\n");
  ASSERT_TRUE(policy.has_value()) << policy.error().to_string();
  EXPECT_EQ(policy->name(), "demo");
  EXPECT_DOUBLE_EQ(policy->frequencies().free, 12.0);
  EXPECT_DOUBLE_EQ(policy->frequencies().busy, 8.0);
  EXPECT_DOUBLE_EQ(policy->frequencies().overloaded, 4.0);
  EXPECT_DOUBLE_EQ(policy->warmup(), 72.0);
}

TEST(PolicyParse, RejectsMalformedInput) {
  EXPECT_FALSE(parse_policy("").has_value());
  EXPECT_FALSE(parse_policy("trigger: load1 > 2\n").has_value());  // no name
  EXPECT_FALSE(parse_policy("policy: p\ntrigger: load1 >\n").has_value());
  EXPECT_FALSE(parse_policy("policy: p\ntrigger: bogus > 2\n").has_value());
  EXPECT_FALSE(parse_policy("policy: p\ntrigger: load1 ~ 2\n").has_value());
  EXPECT_FALSE(parse_policy("policy: p\nfreq_free: -1\n").has_value());
  EXPECT_FALSE(parse_policy("policy: p\nunknown: x\n").has_value());
  EXPECT_FALSE(parse_policy("policy: p\nno colon\n").has_value());
}

TEST(PolicyDefaults, FrequenciesMatchPaperSetup) {
  const MigrationPolicy policy = paper_policy2();
  // The paper samples performance data every 10 s.
  EXPECT_DOUBLE_EQ(policy.frequencies().free, 10.0);
  EXPECT_DOUBLE_EQ(policy.frequencies().busy, 10.0);
  // Overloaded hosts are watched more closely.
  EXPECT_LE(policy.frequencies().overloaded, 10.0);
  // ~72 s of sustained overload before the trigger fires (§5.2).
  EXPECT_GT(policy.warmup(), 0.0);
}

}  // namespace
}  // namespace ars::rules
