#include "ars/rules/rulefile.hpp"

#include <gtest/gtest.h>

namespace ars::rules {
namespace {

TEST(RuleFile, ParsesPaperFigure3) {
  const auto rules = parse_rule_file(paper_figure3_text());
  ASSERT_TRUE(rules.has_value()) << rules.error().to_string();
  ASSERT_EQ(rules->size(), 2U);

  const RuleSpec& r1 = (*rules)[0];
  EXPECT_EQ(r1.number, 1);
  EXPECT_EQ(r1.name, "processorStatus");
  EXPECT_EQ(r1.kind, RuleKind::kSimple);
  EXPECT_EQ(r1.script, "processorStatus.sh");
  EXPECT_EQ(r1.op, CompareOp::kLess);
  EXPECT_TRUE(r1.param.empty());
  EXPECT_DOUBLE_EQ(r1.busy, 50.0);
  EXPECT_DOUBLE_EQ(r1.overld, 45.0);

  const RuleSpec& r2 = (*rules)[1];
  EXPECT_EQ(r2.number, 2);
  EXPECT_EQ(r2.name, "ntStatIpv4");
  EXPECT_EQ(r2.op, CompareOp::kGreater);
  EXPECT_EQ(r2.param, "ESTABLISHED");
  EXPECT_DOUBLE_EQ(r2.busy, 700.0);
  EXPECT_DOUBLE_EQ(r2.overld, 900.0);
}

TEST(RuleFile, ParsesPaperFigure4ComplexRule) {
  const auto rules = parse_rule_file(paper_figure4_text());
  ASSERT_TRUE(rules.has_value()) << rules.error().to_string();
  ASSERT_EQ(rules->size(), 1U);
  const RuleSpec& r5 = (*rules)[0];
  EXPECT_EQ(r5.number, 5);
  EXPECT_EQ(r5.name, "cmp_rule");
  EXPECT_EQ(r5.kind, RuleKind::kComplex);
  EXPECT_EQ(r5.rule_numbers, (std::vector<int>{4, 1, 3, 2}));
  EXPECT_EQ(r5.script, "( 40% * r_4 + 30% * r1 + 30% * r3 ) & r2");
}

TEST(RuleFile, RoundTripsThroughWriter) {
  const auto rules = parse_rule_file(paper_figure3_text());
  ASSERT_TRUE(rules.has_value());
  const std::string rendered = to_rule_file(*rules);
  const auto reparsed = parse_rule_file(rendered);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().to_string();
  ASSERT_EQ(reparsed->size(), rules->size());
  for (std::size_t i = 0; i < rules->size(); ++i) {
    EXPECT_EQ((*reparsed)[i].number, (*rules)[i].number);
    EXPECT_EQ((*reparsed)[i].name, (*rules)[i].name);
    EXPECT_EQ((*reparsed)[i].script, (*rules)[i].script);
    EXPECT_DOUBLE_EQ((*reparsed)[i].busy, (*rules)[i].busy);
    EXPECT_DOUBLE_EQ((*reparsed)[i].overld, (*rules)[i].overld);
  }
}

TEST(RuleFile, CommentsAndBlankLinesIgnored) {
  const auto rules = parse_rule_file(
      "# leading comment\n\nrl_number: 7\nrl_name: x\nrl_type: simple\n"
      "rl_script: x.sh\nrl_operator: >\nrl_busy: 1\nrl_overLd: 2\n# done\n");
  ASSERT_TRUE(rules.has_value()) << rules.error().to_string();
  EXPECT_EQ((*rules)[0].number, 7);
}

TEST(RuleFile, RejectsMissingMandatoryKeys) {
  // Simple rule without thresholds.
  EXPECT_FALSE(parse_rule_file("rl_number: 1\nrl_name: x\nrl_type: simple\n"
                               "rl_script: x.sh\nrl_operator: >\n")
                   .has_value());
  // Missing script.
  EXPECT_FALSE(parse_rule_file("rl_number: 1\nrl_name: x\nrl_type: simple\n"
                               "rl_operator: >\nrl_busy: 1\nrl_overLd: 2\n")
                   .has_value());
  // Missing name.
  EXPECT_FALSE(parse_rule_file("rl_number: 1\nrl_type: simple\n"
                               "rl_script: x.sh\nrl_operator: >\n"
                               "rl_busy: 1\nrl_overLd: 2\n")
                   .has_value());
}

TEST(RuleFile, RejectsMalformedInput) {
  EXPECT_FALSE(parse_rule_file("").has_value());
  EXPECT_FALSE(parse_rule_file("rl_name: before-number\n").has_value());
  EXPECT_FALSE(parse_rule_file("rl_number: NaN\n").has_value());
  EXPECT_FALSE(parse_rule_file("rl_number: 1\nrl_bogus: x\n").has_value());
  EXPECT_FALSE(parse_rule_file("no colon line\n").has_value());
  EXPECT_FALSE(
      parse_rule_file("rl_number: 1\nrl_type: quantum\n").has_value());
}

TEST(RuleFile, ComplexRuleNeedsNoThresholds) {
  const auto rules = parse_rule_file(
      "rl_number: 9\nrl_name: c\nrl_type: complex\nrl_script: r1 & r2\n");
  ASSERT_TRUE(rules.has_value()) << rules.error().to_string();
  EXPECT_EQ((*rules)[0].kind, RuleKind::kComplex);
}

TEST(CompareOps, ParseAndApply) {
  EXPECT_TRUE(apply(CompareOp::kLess, 1.0, 2.0));
  EXPECT_FALSE(apply(CompareOp::kLess, 2.0, 2.0));
  EXPECT_TRUE(apply(CompareOp::kLessEqual, 2.0, 2.0));
  EXPECT_TRUE(apply(CompareOp::kGreater, 3.0, 2.0));
  EXPECT_TRUE(apply(CompareOp::kGreaterEqual, 2.0, 2.0));
  EXPECT_TRUE(compare_op_from_string(" < ").has_value());
  EXPECT_TRUE(compare_op_from_string(">=").has_value());
  EXPECT_FALSE(compare_op_from_string("!=").has_value());
  EXPECT_FALSE(compare_op_from_string("").has_value());
}

}  // namespace
}  // namespace ars::rules
