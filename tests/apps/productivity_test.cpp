// Productivity campaign: plan parsing (strict unknown-key rejection with
// key paths) and the headline claim — on the committed queue plan, enabling
// malleability strictly improves both makespan and utilization.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ars/apps/productivity.hpp"
#include "ars/apps/resizable.hpp"

namespace {

using ars::apps::load_queue_plan;
using ars::apps::run_queue;

std::string minimal_plan(const std::string& extra_top = "",
                         const std::string& extra_job = "") {
  std::ostringstream out;
  out << "{\"hosts\": 4" << extra_top << ", \"jobs\": [{\"name\": \"j1\", "
      << "\"kind\": \"custom\", \"blocks\": 8, \"iterations\": 4, "
      << "\"work_per_block\": 0.05" << extra_job << "}]}";
  return out.str();
}

TEST(QueuePlanParse, MinimalPlanLoads) {
  auto plan = load_queue_plan(minimal_plan());
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();
  EXPECT_EQ(plan.value().hosts, 4);
  ASSERT_EQ(plan.value().jobs.size(), 1U);
  EXPECT_EQ(plan.value().jobs[0].name, "j1");
  EXPECT_EQ(plan.value().jobs[0].workload.blocks, 8);
  EXPECT_DOUBLE_EQ(plan.value().jobs[0].workload.work_per_block, 0.05);
}

TEST(QueuePlanParse, UnknownTopLevelKeyIsRejectedWithPath) {
  auto plan = load_queue_plan(minimal_plan(", \"hots\": 9"));
  ASSERT_FALSE(plan.has_value());
  EXPECT_NE(plan.error().message.find("$.hots"), std::string::npos)
      << plan.error().to_string();
}

TEST(QueuePlanParse, UnknownJobKeyIsRejectedWithIndexedPath) {
  auto plan = load_queue_plan(minimal_plan("", ", \"blokcs\": 9"));
  ASSERT_FALSE(plan.has_value());
  EXPECT_NE(plan.error().message.find("$.jobs[0].blokcs"), std::string::npos)
      << plan.error().to_string();
}

TEST(QueuePlanParse, BadRankOrderingIsRejected) {
  auto plan = load_queue_plan(
      "{\"jobs\": [{\"name\": \"j\", \"min_ranks\": 4, \"initial_ranks\": 2, "
      "\"max_ranks\": 8}]}");
  ASSERT_FALSE(plan.has_value());
  EXPECT_NE(plan.error().message.find("min_ranks"), std::string::npos);
}

TEST(QueuePlanParse, UnknownKindIsRejected) {
  auto plan = load_queue_plan(
      "{\"jobs\": [{\"name\": \"j\", \"kind\": \"fft\"}]}");
  ASSERT_FALSE(plan.has_value());
  EXPECT_NE(plan.error().message.find("$.jobs[0].kind"), std::string::npos);
}

TEST(QueuePlanParse, PresetKindsFillTheWorkload) {
  auto plan = load_queue_plan(
      "{\"jobs\": [{\"name\": \"s\", \"kind\": \"stencil\"}, "
      "{\"name\": \"m\", \"kind\": \"matmul\"}]}");
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();
  const auto stencil = ars::apps::resizable_stencil(ars::apps::Stencil1D::Params{});
  EXPECT_DOUBLE_EQ(plan.value().jobs[0].workload.work_per_block,
                   stencil.work_per_block);
  const auto matmul = ars::apps::resizable_matmul(ars::apps::MatMul::Params{});
  EXPECT_DOUBLE_EQ(plan.value().jobs[1].workload.work_per_block,
                   matmul.work_per_block);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The committed plan is the experiment of record: with the resize planner
// on, the same queue must finish sooner AND keep the cluster busier.
TEST(ProductivityCampaign, MalleabilityStrictlyImprovesCommittedPlan) {
  const std::string text = read_file(ARS_SOURCE_DIR "/plans/productivity-queue.json");
  ASSERT_FALSE(text.empty());
  auto plan = load_queue_plan(text);
  ASSERT_TRUE(plan.has_value()) << plan.error().to_string();

  const auto rigid = run_queue(plan.value(), /*malleability=*/false);
  const auto malleable = run_queue(plan.value(), /*malleability=*/true);

  ASSERT_TRUE(rigid.all_finished);
  ASSERT_TRUE(malleable.all_finished);
  EXPECT_EQ(rigid.resizes_commanded, 0);
  EXPECT_GT(malleable.resizes_committed, 0);
  EXPECT_LT(malleable.makespan, rigid.makespan);
  EXPECT_GT(malleable.utilization, rigid.utilization);
}

// Same plan, same seed-free determinism: two runs of the malleable queue
// agree on every finish time.
TEST(ProductivityCampaign, QueueRunIsDeterministic) {
  const std::string text = read_file(ARS_SOURCE_DIR "/plans/productivity-queue.json");
  auto plan = load_queue_plan(text);
  ASSERT_TRUE(plan.has_value());
  const auto a = run_queue(plan.value(), true);
  const auto b = run_queue(plan.value(), true);
  EXPECT_EQ(a.finish_times, b.finish_times);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.resizes_commanded, b.resizes_commanded);
}

}  // namespace
