#include <gtest/gtest.h>

#include "ars/apps/matmul.hpp"
#include "ars/apps/stencil.hpp"
#include "ars/apps/test_tree.hpp"

namespace ars::apps {
namespace {

using sim::Engine;

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() : net_(engine_), mpi_(engine_, net_), hpcm_(mpi_) {
    for (const char* name : {"ws1", "ws2", "ws3", "ws4"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  Engine engine_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  mpi::MpiSystem mpi_;
  hpcm::MigrationEngine hpcm_;
};

TEST_F(AppsTest, TestTreeProducesExpectedSum) {
  TestTree::Params params;
  params.levels = 12;
  TestTree::Result result;
  hpcm_.launch("ws1", TestTree::make(params, &result), "tree",
               TestTree::schema(params));
  engine_.run_until(100.0);
  ASSERT_TRUE(result.finished);
  EXPECT_DOUBLE_EQ(result.sum, TestTree::expected_sum(params));
  EXPECT_TRUE(result.sorted);
}

TEST_F(AppsTest, TestTreeSumsDifferBySeed) {
  TestTree::Params a;
  a.levels = 10;
  a.seed = 1;
  TestTree::Params b = a;
  b.seed = 2;
  EXPECT_NE(TestTree::expected_sum(a), TestTree::expected_sum(b));
}

TEST_F(AppsTest, TestTreeWorkScalesWithLevels) {
  TestTree::Params small;
  small.levels = 10;
  TestTree::Params big;
  big.levels = 12;
  EXPECT_NEAR(TestTree::total_work(big) / TestTree::total_work(small), 4.0,
              0.1);
  EXPECT_EQ(TestTree::node_count(small), 1023);
}

TEST_F(AppsTest, TestTreeRuntimeTracksWorkEstimate) {
  TestTree::Params params;
  params.levels = 12;
  TestTree::Result result;
  hpcm_.launch("ws1", TestTree::make(params, &result), "tree",
               TestTree::schema(params));
  engine_.run_until(1000.0);
  ASSERT_TRUE(result.finished);
  EXPECT_NEAR(result.finished_at, TestTree::total_work(params),
              TestTree::total_work(params) * 0.2 + 1.0);
}

TEST_F(AppsTest, TestTreeSurvivesMigrationMidSort) {
  TestTree::Params params;
  params.levels = 14;  // ~12 s of work
  TestTree::Result result;
  const auto id = hpcm_.launch("ws1", TestTree::make(params, &result), "tree",
                               TestTree::schema(params));
  // The sort phase dominates; interrupt in the middle of it.
  engine_.schedule_at(6.0, [&] { hpcm_.request_migration(id, "ws2"); });
  engine_.run_until(1000.0);
  ASSERT_TRUE(result.finished);
  EXPECT_DOUBLE_EQ(result.sum, TestTree::expected_sum(params));
  EXPECT_TRUE(result.sorted);
  EXPECT_EQ(result.finished_on, "ws2");
  EXPECT_EQ(result.migrations, 1);
}

TEST_F(AppsTest, TestTreeSchemaDescribesFootprint) {
  TestTree::Params params;
  params.levels = 12;
  const auto schema = TestTree::schema(params);
  EXPECT_EQ(schema.name(), "test_tree");
  EXPECT_EQ(schema.characteristic(),
            hpcm::AppCharacteristic::kComputeIntensive);
  EXPECT_GT(schema.est_exec_time(), 0.0);
  EXPECT_EQ(schema.est_comm_bytes(),
            static_cast<std::uint64_t>(TestTree::node_count(params)) * 32);
}

TEST_F(AppsTest, MatMulChecksum) {
  MatMul::Params params;
  params.n = 32;
  MatMul::Result result;
  hpcm_.launch("ws1", MatMul::make(params, &result), "matmul",
               MatMul::schema(params));
  engine_.run_until(100.0);
  ASSERT_TRUE(result.finished);
  EXPECT_NEAR(result.checksum, MatMul::expected_checksum(params), 1e-9);
}

TEST_F(AppsTest, MatMulSurvivesMigration) {
  MatMul::Params params;
  params.n = 48;
  MatMul::Result result;
  const auto id = hpcm_.launch("ws1", MatMul::make(params, &result), "matmul",
                               MatMul::schema(params));
  engine_.schedule_at(2.0, [&] { hpcm_.request_migration(id, "ws3"); });
  engine_.run_until(1000.0);
  ASSERT_TRUE(result.finished);
  EXPECT_NEAR(result.checksum, MatMul::expected_checksum(params), 1e-9);
  EXPECT_EQ(result.finished_on, "ws3");
}

TEST_F(AppsTest, StencilMatchesSerialReference) {
  Stencil1D::Params params;
  params.iterations = 20;
  params.cells_per_rank = 256;
  constexpr int kRanks = 3;
  std::vector<Stencil1D::RankResult> results(kRanks);
  hpcm_.launch_world({"ws1", "ws2", "ws3"},
                     Stencil1D::make(params, &results), "stencil",
                     Stencil1D::schema(params));
  engine_.run_until(2000.0);
  const auto reference = Stencil1D::reference_sums(params, kRanks);
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(results[r].finished) << "rank " << r;
    EXPECT_NEAR(results[r].local_sum, reference[r], 1e-6) << "rank " << r;
  }
}

TEST_F(AppsTest, StencilRankMigratesWhileOthersCommunicate) {
  Stencil1D::Params params;
  params.iterations = 30;
  params.cells_per_rank = 256;
  params.work_per_cell = 1.0e-3;  // ~0.26 s per iteration, ~8 s total
  constexpr int kRanks = 3;
  std::vector<Stencil1D::RankResult> results(kRanks);
  const auto ids = hpcm_.launch_world({"ws1", "ws2", "ws3"},
                                      Stencil1D::make(params, &results),
                                      "stencil", Stencil1D::schema(params));
  // Migrate the middle rank (it exchanges halos with both neighbours).
  engine_.schedule_at(2.0, [&] { hpcm_.request_migration(ids[1], "ws4"); });
  engine_.run_until(5000.0);
  const auto reference = Stencil1D::reference_sums(params, kRanks);
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(results[r].finished) << "rank " << r;
    EXPECT_NEAR(results[r].local_sum, reference[r], 1e-6) << "rank " << r;
  }
  EXPECT_EQ(results[1].finished_on, "ws4");
  EXPECT_EQ(results[1].migrations, 1);
}

TEST_F(AppsTest, StencilSingleRankDegenerateCase) {
  Stencil1D::Params params;
  params.iterations = 5;
  params.cells_per_rank = 64;
  std::vector<Stencil1D::RankResult> results(1);
  hpcm_.launch_world({"ws1"}, Stencil1D::make(params, &results), "stencil",
                     Stencil1D::schema(params));
  engine_.run_until(100.0);
  ASSERT_TRUE(results[0].finished);
  EXPECT_NEAR(results[0].local_sum,
              Stencil1D::reference_sums(params, 1)[0], 1e-9);
}

}  // namespace
}  // namespace ars::apps
