#include "ars/chaos/faultplan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ars::chaos {
namespace {

TEST(FaultPlanTest, BuilderRecordsSpecsInOrder) {
  FaultPlan plan{"p"};
  plan.message_loss(10.0, 20.0, 0.5, "ws1", "ws2")
      .partition(30.0, 40.0, "ws3")
      .host_crash(50.0, 60.0, "ws2")
      .registry_crash(70.0, 80.0);
  ASSERT_EQ(plan.specs().size(), 4u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kMessageLoss);
  EXPECT_EQ(plan.specs()[0].host_a, "ws1");
  EXPECT_EQ(plan.specs()[0].host_b, "ws2");
  EXPECT_DOUBLE_EQ(plan.specs()[0].probability, 0.5);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::kPartition);
  EXPECT_EQ(plan.specs()[1].host_b, "*");
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::kHostCrash);
  EXPECT_EQ(plan.specs()[3].kind, FaultKind::kRegistryCrash);
  EXPECT_DOUBLE_EQ(plan.last_disruption_end(), 80.0);
}

TEST(FaultPlanTest, KindStringsRoundTrip) {
  for (const FaultKind kind :
       {FaultKind::kMessageLoss, FaultKind::kMessageDuplicate,
        FaultKind::kMessageDelay, FaultKind::kLinkDegrade,
        FaultKind::kPartition, FaultKind::kHostCrash, FaultKind::kCpuSlowdown,
        FaultKind::kMonitorStall, FaultKind::kRegistryCrash,
        FaultKind::kMigrationDestCrash, FaultKind::kMigrationLinkCut,
        FaultKind::kMigrationPrecopyStall, FaultKind::kResizeStall,
        FaultKind::kResizeTargetCrash}) {
    const auto parsed = fault_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(fault_kind_from_string("meteor_strike").has_value());
}

TEST(FaultPlanTest, JsonRoundTripIsExact) {
  for (const std::string& name : FaultPlan::builtin_names()) {
    const auto plan = FaultPlan::builtin(name);
    ASSERT_TRUE(plan.has_value()) << name;
    const std::string text = plan->to_json();
    const auto reparsed = FaultPlan::from_json(text);
    ASSERT_TRUE(reparsed.has_value()) << name;
    EXPECT_EQ(reparsed->name(), plan->name());
    EXPECT_EQ(reparsed->specs().size(), plan->specs().size());
    // Byte-identical re-serialization: plans/<name>.json is canonical.
    EXPECT_EQ(reparsed->to_json(), text) << name;
  }
}

TEST(FaultPlanTest, UnknownBuiltinIsAnError) {
  EXPECT_FALSE(FaultPlan::builtin("no-such-plan").has_value());
  const auto names = FaultPlan::builtin_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "control-loss"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "churn"), names.end());
}

TEST(FaultPlanTest, StrictParserRejectsBadDocuments) {
  // Not JSON at all.
  EXPECT_FALSE(FaultPlan::from_json("not json").has_value());
  // Root must be an object.
  EXPECT_FALSE(FaultPlan::from_json("[]").has_value());
  // Unknown root key.
  EXPECT_FALSE(
      FaultPlan::from_json(R"({"name":"p","faults":[],"extra":1})")
          .has_value());
  // Fault entries must be objects.
  EXPECT_FALSE(
      FaultPlan::from_json(R"({"name":"p","faults":[42]})").has_value());
  // Missing "kind".
  EXPECT_FALSE(
      FaultPlan::from_json(R"({"name":"p","faults":[{"at":1}]})")
          .has_value());
  // Missing "at".
  EXPECT_FALSE(FaultPlan::from_json(
                   R"({"name":"p","faults":[{"kind":"message_loss"}]})")
                   .has_value());
  // Unknown kind.
  EXPECT_FALSE(
      FaultPlan::from_json(
          R"({"name":"p","faults":[{"kind":"meteor_strike","at":1}]})")
          .has_value());
  // Unknown fault key.
  EXPECT_FALSE(
      FaultPlan::from_json(
          R"({"name":"p","faults":[{"kind":"partition","at":1,"wat":2}]})")
          .has_value());
  // Probability out of range.
  EXPECT_FALSE(FaultPlan::from_json(
                   R"({"name":"p","faults":[{"kind":"message_loss","at":1,)"
                   R"("probability":1.5}]})")
                   .has_value());
  // Negative factor.
  EXPECT_FALSE(FaultPlan::from_json(
                   R"({"name":"p","faults":[{"kind":"link_degrade","at":1,)"
                   R"("factor":-0.5}]})")
                   .has_value());
}

TEST(FaultPlanTest, PrecopyStallValidation) {
  // The builder stamps the fixed "precopy" phase.
  FaultPlan plan{"p"};
  plan.migration_precopy_stall(10.0, 50.0, 30.0);
  ASSERT_EQ(plan.specs().size(), 1u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::kMigrationPrecopyStall);
  EXPECT_EQ(plan.specs()[0].phase, "precopy");
  EXPECT_DOUBLE_EQ(plan.specs()[0].delay, 30.0);

  // Parsing defaults an omitted phase to "precopy"…
  const auto parsed = FaultPlan::from_json(
      R"({"name":"p","faults":[{"kind":"migration_precopy_stall",)"
      R"("at":1,"delay":20}]})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->specs()[0].phase, "precopy");
  // …and rejects any other phase.
  EXPECT_FALSE(FaultPlan::from_json(
                   R"({"name":"p","faults":[{"kind":"migration_precopy_stall",)"
                   R"("at":1,"phase":"eager"}]})")
                   .has_value());
  // Migration-window faults may now target the precopy phase.
  EXPECT_TRUE(FaultPlan::from_json(
                  R"({"name":"p","faults":[{"kind":"migration_dest_crash",)"
                  R"("at":1,"phase":"precopy"}]})")
                  .has_value());
}

TEST(FaultPlanTest, MinimalDocumentParsesWithDefaults) {
  const auto plan = FaultPlan::from_json(
      R"({"name":"tiny","faults":[{"kind":"partition","at":5}]})");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->name(), "tiny");
  ASSERT_EQ(plan->specs().size(), 1u);
  const FaultSpec& spec = plan->specs()[0];
  EXPECT_EQ(spec.kind, FaultKind::kPartition);
  EXPECT_DOUBLE_EQ(spec.at, 5.0);
  EXPECT_TRUE(spec.permanent());
  EXPECT_EQ(spec.host_a, "*");
  EXPECT_EQ(spec.host_b, "*");
  EXPECT_DOUBLE_EQ(spec.probability, 1.0);
}

}  // namespace
}  // namespace ars::chaos
