// Checkpoint I/O under a failure campaign (DESIGN.md §17): the ckpt-storm
// plan's exponential crash arrivals are deterministic, both checkpoint
// strategies hold every invariant through them, and a sabotaged store
// (torn commits) is caught by the no-torn-checkpoint invariant.

#include <gtest/gtest.h>

#include <string>

#include "ars/chaos/scenario.hpp"

namespace ars::chaos {
namespace {

ScenarioOptions storm_options(std::uint64_t seed, const std::string& strategy) {
  ScenarioOptions options;
  options.seed = seed;
  options.plan = *FaultPlan::builtin("ckpt-storm");
  options.ckpt_strategy = strategy;
  options.ckpt_mtbf = 150.0;  // matches the plan's injected crash rate
  options.ckpt_state_mb = 20.0;      // 1 s writes at the 20 MB/s host link
  options.ckpt_aggregate_mbps = 25.0;  // ~saturated with 2+ writers
  return options;
}

TEST(CkptStormTest, CrashRateArrivalsAreDeterministic) {
  const ScenarioOptions options = storm_options(5, "periodic");
  const ScenarioReport first = run_scenario(options);
  const ScenarioReport second = run_scenario(options);
  EXPECT_TRUE(first.ok()) << first.invariants.summary();
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.faults.rate_crashes, second.faults.rate_crashes);
  // A storm that crashed nobody would prove nothing.
  EXPECT_GT(first.faults.rate_crashes, 0);
}

TEST(CkptStormTest, PeriodicStrategySurvivesTheStorm) {
  // Seed 2: the storm's arrivals land while the apps still run, so the
  // waste ledger sees real lost work, not just write overhead.
  const ScenarioReport report = run_scenario(storm_options(2, "periodic"));
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  // Strategy-driven checkpoints actually flowed through the shared store,
  // and the crashes made the waste ledger earn its keep.
  EXPECT_GT(report.ckpt_commits, 0u);
  EXPECT_EQ(report.torn_restores, 0u);
  EXPECT_GT(report.waste_overhead_s, 0.0);
  EXPECT_GT(report.waste_total_s(), report.waste_overhead_s);
}

TEST(CkptStormTest, CooperativeStrategySurvivesTheStorm) {
  const ScenarioReport report = run_scenario(storm_options(2, "cooperative"));
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  EXPECT_GT(report.ckpt_commits, 0u);
  EXPECT_EQ(report.torn_restores, 0u);
}

TEST(CkptStormTest, TornCommitSabotageIsCaughtByTheChecker) {
  // A store without atomic rename: a crash racing an in-flight write
  // commits the torn partial, the relaunch restores it, and the
  // no-torn-checkpoint invariant must flag the run.  Big writes over a
  // narrow shared store keep a write in flight most of the time, so the
  // storm reliably catches one mid-write.
  ScenarioOptions options = storm_options(4, "periodic");
  options.ckpt_state_mb = 100.0;
  options.ckpt_aggregate_mbps = 10.0;
  options.sabotage_torn_checkpoint = true;
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok()) << "sabotaged store slipped past the checker";
  EXPECT_GT(report.torn_restores, 0u);
  bool torn_flagged = false;
  for (const Violation& violation : report.invariants.violations) {
    if (violation.invariant == "no-torn-checkpoint") {
      torn_flagged = true;
    }
  }
  EXPECT_TRUE(torn_flagged) << report.invariants.summary();
}

TEST(CkptStormTest, CleanStoreNeverTearsUnderTheSameStorm) {
  // The control for the sabotage test: identical pressure, atomic
  // shadow-commit on — zero torn restores and a green checker.
  ScenarioOptions options = storm_options(4, "periodic");
  options.ckpt_state_mb = 100.0;
  options.ckpt_aggregate_mbps = 10.0;
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  EXPECT_EQ(report.torn_restores, 0u);
  EXPECT_GT(report.ckpt_aborts, 0u);  // crashes did race writes...
  EXPECT_GT(report.ckpt_commits, 0u);
}

}  // namespace
}  // namespace ars::chaos
