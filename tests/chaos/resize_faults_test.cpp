// Resize-window fault injection: malleable jobs under the resize-storm
// plan (spawn stalls into timeout, spawn-target crashes with reboot,
// redistribution stalls into rollback) must never leak a rank, aborts must
// restore the original world size, replays are byte-identical, and the
// sabotage knob proves the no-lost-rank invariant is load-bearing.

#include <string>

#include <gtest/gtest.h>

#include "ars/chaos/flight_recorder.hpp"
#include "ars/chaos/scenario.hpp"

namespace ars::chaos {
namespace {

ScenarioOptions storm_options(std::uint64_t seed) {
  ScenarioOptions options;
  options.hosts = 8;
  options.malleable_jobs = 2;
  options.horizon = 700.0;
  options.seed = seed;
  auto plan = FaultPlan::builtin("resize-storm");
  EXPECT_TRUE(plan.has_value());
  options.plan = *plan;
  return options;
}

TEST(ResizeFaultTest, StormKeepsInvariantsCleanAcrossSeeds) {
  bool saw_failure_path = false;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const ScenarioReport report = run_scenario(storm_options(seed));
    EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n"
                             << report.invariants.summary();
    EXPECT_EQ(report.ghost_ranks, 0) << "seed " << seed;
    // The planner really resized under fire.
    EXPECT_GT(report.resizes_attempted, 0U) << "seed " << seed;
    if (report.resizes_aborted + report.resizes_rolled_back > 0) {
      saw_failure_path = true;
    }
  }
  // At least one seed drove a transaction into abort/rollback — otherwise
  // the storm never actually tested the failure machinery.
  EXPECT_TRUE(saw_failure_path);
}

TEST(ResizeFaultTest, StormReplayIsByteIdentical) {
  const ScenarioReport first = run_scenario(storm_options(7));
  const ScenarioReport second = run_scenario(storm_options(7));
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.resizes_attempted, second.resizes_attempted);
  EXPECT_EQ(first.resizes_committed, second.resizes_committed);
}

TEST(ResizeFaultTest, TargetCrashAbortsAtOriginalSize) {
  // A dedicated plan that only crashes spawn targets: every aborted expand
  // must leave the job at its pre-resize size (checked by the invariant)
  // and the crash counter proves the fault fired.
  ScenarioOptions options;
  options.hosts = 8;
  options.malleable_jobs = 2;
  options.horizon = 700.0;
  options.seed = 11;
  FaultPlan plan{"target-crash"};
  plan.resize_target_crash(/*at=*/40.0, /*until=*/400.0, "spawn",
                           /*probability=*/1.0, /*reboot_after=*/30.0);
  options.plan = plan;
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  EXPECT_GT(report.faults.resize_target_crashes, 0);
  EXPECT_GT(report.resizes_aborted, 0U);
  EXPECT_EQ(report.ghost_ranks, 0);
}

TEST(ResizeFaultTest, SabotageSkipRollbackTripsNoLostRank) {
  // Seed 1 drives a redistribute-stall rollback; with the sabotage knob
  // the spawned ranks leak and the invariant must catch it.
  ScenarioOptions options = storm_options(1);
  options.sabotage_resize_rollback = true;
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok());
  EXPECT_GT(report.ghost_ranks, 0);
  bool found = false;
  for (const Violation& violation : report.invariants.violations) {
    if (violation.invariant == "no-lost-rank") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.invariants.summary();
  // Black-box rule: the failing run kept its evidence.
  EXPECT_FALSE(report.trace_jsonl.empty());
}

TEST(ResizeFaultTest, FlightRecorderBundleReproducesStormFailure) {
  ScenarioOptions options = storm_options(1);
  options.sabotage_resize_rollback = true;
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok());
  const obs::JsonValue bundle = make_bundle(
      options, report, FlightTrigger{"invariant-violation", "no-lost-rank"});
  const auto replay = replay_bundle(bundle.dump());
  ASSERT_TRUE(replay.has_value()) << replay.error().to_string();
  EXPECT_TRUE(replay->reproduced())
      << "trace_identical=" << replay->trace_identical
      << " violations_match=" << replay->violations_match;
  // The malleable options really round-tripped through the bundle.
  EXPECT_GT(replay->report.ghost_ranks, 0);
}

}  // namespace
}  // namespace ars::chaos
