// Partition is not a crash: when a host is cut off from the registry past
// the lease TTL, its processes keep running locally and must NOT be
// relaunched elsewhere.  After the heal the host re-registers and becomes
// schedulable again, and the application finishes exactly once, in place.

#include <gtest/gtest.h>

#include "ars/chaos/injector.hpp"
#include "ars/core/runtime.hpp"

namespace ars::chaos {
namespace {

hpcm::MigrationEngine::MigratableApp counter_app(int iterations,
                                                 std::string* finished_on,
                                                 int* finish_count) {
  return [iterations, finished_on, finish_count](
             mpi::Proc& proc, hpcm::MigrationContext& ctx) -> sim::Task<> {
    std::int64_t i = ctx.restored() ? *ctx.state().get_int("i") : 0;
    ctx.on_save([&ctx, &i] { ctx.state().set_int("i", i); });
    for (; i < iterations; ++i) {
      co_await ctx.poll_point();
      if (i > 0 && i % 10 == 0) {
        co_await ctx.checkpoint();
      }
      co_await proc.compute(1.0);
    }
    *finished_on = proc.host().name();
    ++*finish_count;
  };
}

std::size_t relaunch_events(core::ReschedulerRuntime& runtime) {
  std::size_t count = 0;
  for (const obs::TraceEvent& event : runtime.tracer().events()) {
    if (event.kind == obs::EventKind::kInstant &&
        event.name == "process.relaunch") {
      ++count;
    }
  }
  return count;
}

TEST(PartitionRecoveryTest, PartitionedHostIsNotRelaunchedAndRejoins) {
  rules::MigrationPolicy policy = rules::paper_policy2();
  policy.set_warmup(20.0);
  core::ClusterConfig config = core::make_cluster(3, policy);
  config.auto_restart = true;  // the crash path IS armed — it must not fire
  config.lease_ttl = 25.0;
  config.monitor_reregister_period = 20.0;
  core::ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  std::string finished_on;
  int finish_count = 0;
  const auto id =
      runtime.launch_app("ws2", counter_app(140, &finished_on, &finish_count),
                         "app", hpcm::ApplicationSchema{"app"});

  // Cut ws2 off from everything (including the ws1 registry) well past the
  // lease TTL, then heal.
  FaultPlan plan{"partition"};
  plan.partition(40.0, 120.0, "ws2");
  FaultInjector injector{runtime, plan, 1};
  injector.arm();

  // Mid-partition: the lease has lapsed, so the registry has written the
  // host off...
  runtime.run_until(80.0);
  ASSERT_TRUE(runtime.scheduler().host_state("ws2").has_value());
  EXPECT_EQ(*runtime.scheduler().host_state("ws2"),
            rules::SystemState::kUnavailable);
  // ...but the process is alive on ws2 and was NOT resurrected elsewhere.
  const mpi::Proc* proc = runtime.mpi().find(id);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->host().name(), "ws2");
  EXPECT_EQ(relaunch_events(runtime), 0u);

  // After the heal: the host re-registers, escapes `unavailable`, and the
  // application finishes exactly once, where it always was.
  runtime.run_until(300.0);
  ASSERT_TRUE(runtime.scheduler().host_state("ws2").has_value());
  EXPECT_NE(*runtime.scheduler().host_state("ws2"),
            rules::SystemState::kUnavailable);
  EXPECT_EQ(finish_count, 1);
  EXPECT_EQ(finished_on, "ws2");
  EXPECT_EQ(relaunch_events(runtime), 0u);
}

}  // namespace
}  // namespace ars::chaos
