// Flight-recorder tests (tentpole part 3): an induced invariant violation
// produces a complete, self-contained post-mortem bundle that survives a
// disk round-trip and — because one ScenarioOptions value determines the
// whole run — replays to the very same violation, byte-identical trace
// included.  A tampered bundle must be called out, not rubber-stamped.

#include "ars/chaos/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "ars/obs/json.hpp"

namespace ars::chaos {
namespace {

/// The known-bad configuration from the migration-fault suite: rollback
/// sabotaged, destination crashed in init — the no-lost-process invariant
/// trips deterministically.
ScenarioOptions sabotaged_options() {
  ScenarioOptions options;
  options.seed = 9;
  options.horizon = 900.0;
  options.plan = FaultPlan{"dest-crash-init"};
  options.plan.migration_dest_crash(/*at=*/50.0, /*until=*/400.0, "init",
                                    /*probability=*/1.0,
                                    /*reboot_after=*/30.0);
  options.sabotage_migration_rollback = true;
  return options;
}

TEST(FlightRecorder, ViolationProducesACompleteBundle) {
  const ScenarioOptions options = sabotaged_options();
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok());
  // A failing run keeps its own evidence — no keep_trace, no re-run.
  ASSERT_FALSE(report.trace_jsonl.empty());
  ASSERT_FALSE(report.metrics_json.empty());

  const obs::JsonValue bundle = make_bundle(
      options, report,
      FlightTrigger{"invariant-violation", report.invariants.summary()});
  ASSERT_TRUE(bundle.is_object());
  const auto field = [&bundle](const char* key) {
    const obs::JsonValue* member = bundle.find(key);
    EXPECT_NE(member, nullptr) << key;
    return member;
  };
  EXPECT_EQ(field("trigger")->find("kind")->as_string(),
            "invariant-violation");
  EXPECT_EQ(field("scenario")->find("seed")->as_number(), 9.0);
  EXPECT_TRUE(field("scenario")
                  ->find("sabotage_migration_rollback")
                  ->as_bool());
  EXPECT_EQ(field("plan")->find("name")->as_string(), "dest-crash-init");
  EXPECT_FALSE(field("violations")->as_array().empty());
  EXPECT_EQ(field("trace_hash")->as_string(),
            std::to_string(report.trace_hash));
  EXPECT_NE(field("trace_jsonl"), nullptr);
  EXPECT_NE(field("metrics"), nullptr);
}

TEST(FlightRecorder, BundleSurvivesDiskAndReplaysToTheSameViolation) {
  const ScenarioOptions options = sabotaged_options();
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok());
  const obs::JsonValue bundle = make_bundle(
      options, report,
      FlightTrigger{"invariant-violation", report.invariants.summary()});

  const std::string path =
      ::testing::TempDir() + "/ars-flight/flight_recorder_test.bundle.json";
  const auto status = write_bundle(path, bundle);
  ASSERT_TRUE(status.is_ok()) << status.error().to_string();

  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();

  const auto replay = replay_bundle(text.str());
  ASSERT_TRUE(replay.has_value()) << replay.error().to_string();
  EXPECT_EQ(replay->trigger.kind, "invariant-violation");
  EXPECT_EQ(replay->recorded_trace_hash, report.trace_hash);
  EXPECT_EQ(replay->recorded_violations, report.invariants.summary());
  // The replay reproduced the recording: same trace bytes, same violation
  // summary, and the fresh run failed the same way.
  EXPECT_TRUE(replay->trace_identical);
  EXPECT_TRUE(replay->violations_match);
  EXPECT_TRUE(replay->reproduced());
  EXPECT_FALSE(replay->report.ok());
}

TEST(FlightRecorder, PassingRunBundleAlsoReproduces) {
  // The recorder is not failure-only: a clean run (keep_trace on, so the
  // evidence is captured) bundles and replays the same way.
  ScenarioOptions options;
  options.seed = 21;
  options.keep_trace = true;
  const ScenarioReport report = run_scenario(options);
  ASSERT_TRUE(report.ok()) << report.invariants.summary();
  ASSERT_FALSE(report.trace_jsonl.empty());

  const obs::JsonValue bundle =
      make_bundle(options, report, FlightTrigger{"manual", "keep-trace run"});
  const auto replay = replay_bundle(bundle.dump());
  ASSERT_TRUE(replay.has_value()) << replay.error().to_string();
  EXPECT_TRUE(replay->reproduced());
  EXPECT_TRUE(replay->report.ok());
}

TEST(FlightRecorder, TamperedTraceHashFailsTheReplayCheck) {
  const ScenarioOptions options = sabotaged_options();
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok());
  const obs::JsonValue bundle = make_bundle(
      options, report, FlightTrigger{"invariant-violation", "tamper test"});

  obs::JsonObject doctored = bundle.as_object();
  doctored.insert_or_assign(
      "trace_hash",
      obs::JsonValue{std::to_string(report.trace_hash + 1)});
  const auto replay = replay_bundle(obs::JsonValue{std::move(doctored)}.dump());
  ASSERT_TRUE(replay.has_value()) << replay.error().to_string();
  EXPECT_FALSE(replay->trace_identical);
  EXPECT_FALSE(replay->reproduced());
}

TEST(FlightRecorder, MalformedBundleIsRejected) {
  EXPECT_FALSE(replay_bundle("not json").has_value());
  EXPECT_FALSE(replay_bundle("[1,2,3]").has_value());
  EXPECT_FALSE(replay_bundle("{\"version\":1}").has_value());
}

}  // namespace
}  // namespace ars::chaos
