// Migration-window fault injection: the destination is crashed as the
// transaction enters each named phase, and every run must either abort
// (pre-commit, process rolls back to the source) or roll back to
// checkpoint-restart (post-commit) — never lose a process.  Replays are
// byte-identical, and the sabotage knob proves the no-lost-process
// invariant is load-bearing.

#include "ars/chaos/scenario.hpp"

#include <gtest/gtest.h>

namespace ars::chaos {
namespace {

/// Destination crashed (with a 30 s reboot) whenever a migration reaches
/// `phase` inside the scenario's migration window (~t=60-160, while the
/// CPU hog on ws1 drives processes off).
FaultPlan dest_crash_plan(const std::string& phase) {
  FaultPlan plan{"dest-crash-" + phase};
  plan.migration_dest_crash(/*at=*/50.0, /*until=*/400.0, phase,
                            /*probability=*/1.0, /*reboot_after=*/30.0);
  return plan;
}

class MigrationFaultTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MigrationFaultTest, DestCrashAtPhaseNeverLosesAProcess) {
  const std::string phase = GetParam();
  ScenarioOptions options;
  options.seed = 9;
  options.horizon = 900.0;  // room for 30 s reboots and full reruns
  options.plan = dest_crash_plan(phase);
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << "phase " << phase << ":\n"
                           << report.invariants.summary();
  // The fault actually fired and forced the transaction down its failure
  // path for this phase: aborts for pre-commit phases, rollbacks for the
  // post-commit restore window.
  EXPECT_GT(report.faults.migration_dest_crashes, 0) << "phase " << phase;
  if (phase == "restore") {
    EXPECT_GT(report.migrations_rolled_back, 0U);
  } else {
    EXPECT_GT(report.migrations_aborted, 0U) << "phase " << phase;
  }
  // Every application still finished exactly once.
  EXPECT_EQ(report.invariants.exits_seen, 3U) << "phase " << phase;
}

TEST_P(MigrationFaultTest, SameSeedReplaysByteIdentical) {
  ScenarioOptions options;
  options.seed = 13;
  options.horizon = 900.0;
  options.plan = dest_crash_plan(GetParam());
  options.keep_trace = true;
  const ScenarioReport first = run_scenario(options);
  const ScenarioReport second = run_scenario(options);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);  // byte-identical
}

INSTANTIATE_TEST_SUITE_P(Phases, MigrationFaultTest,
                         ::testing::Values("init", "eager", "ack", "restore"),
                         [](const auto& param_info) { return param_info.param; });

TEST(MigrationFaultSuiteTest, LinkCutDuringEagerHoldsInvariants) {
  FaultPlan plan{"eager-link-cut"};
  plan.migration_link_cut(/*at=*/50.0, /*until=*/400.0, "eager",
                          /*probability=*/1.0, /*heal_after=*/30.0);
  ScenarioOptions options;
  options.seed = 21;
  options.horizon = 900.0;
  options.plan = plan;
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  EXPECT_GT(report.faults.migration_link_cuts, 0);
}

TEST(MigrationFaultSuiteTest, SabotagedRollbackTripsNoLostProcess) {
  // With the abort path's rollback skipped, a destination crash loses the
  // logical process — the checker must flag exactly that.
  ScenarioOptions options;
  options.seed = 9;
  options.horizon = 900.0;
  options.plan = dest_crash_plan("init");
  options.sabotage_migration_rollback = true;
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok());
  bool lost_process = false;
  for (const Violation& violation : report.invariants.violations) {
    if (violation.invariant == "no-lost-process") {
      lost_process = true;
    }
  }
  EXPECT_TRUE(lost_process) << report.invariants.summary();
}

TEST(MigrationFaultSuiteTest, MigrationStormHoldsAllInvariants) {
  // The shipped plans/migration-storm.json shape: per-phase destination
  // crashes plus mid-eager link cuts layered over a CPU slowdown.
  FaultPlan plan{"migration-storm"};
  plan.cpu_slowdown(30.0, 90.0, 0.5, "ws2")
      .migration_dest_crash(50.0, 140.0, "init", 0.35, 30.0)
      .migration_dest_crash(50.0, 200.0, "eager", 0.35, 30.0)
      .migration_dest_crash(60.0, 260.0, "ack", 0.4, 30.0)
      .migration_dest_crash(50.0, 320.0, "restore", 0.5, 30.0)
      .migration_link_cut(50.0, 320.0, "eager", 0.25, 30.0);
  ScenarioOptions options;
  options.seed = 17;
  options.plan = plan;
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
}

TEST(MigrationFaultSuiteTest, DestCrashDuringPrecopyNeverLosesAProcess) {
  // Pre-ACK failure with rounds already shipped: everything pre-copied is
  // discarded and the source keeps computing — abort, never a lost process.
  ScenarioOptions options;
  options.seed = 9;
  options.horizon = 900.0;
  options.precopy = true;
  options.plan = dest_crash_plan("precopy");
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  EXPECT_GT(report.faults.migration_dest_crashes, 0);
  EXPECT_GT(report.migrations_aborted, 0U);
  EXPECT_EQ(report.invariants.exits_seen, 3U);
}

TEST(MigrationFaultSuiteTest, PrecopyStormHoldsAllInvariants) {
  // The shipped plans/precopy-storm.json: destination crashes while rounds
  // are in flight and through the freeze tail, link cuts mid-round, and
  // stalled rounds driven into their timeout.
  const auto plan = FaultPlan::builtin("precopy-storm");
  ASSERT_TRUE(plan.has_value());
  ScenarioOptions options;
  options.seed = 29;
  options.horizon = 900.0;
  options.precopy = true;
  options.plan = *plan;
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  // The run exercised real pre-copy rounds, not just stop-and-copy.
  EXPECT_GT(report.precopy_rounds, 0U);
}

TEST(MigrationFaultSuiteTest, PrecopyStormReplaysByteIdentical) {
  ScenarioOptions options;
  options.seed = 31;
  options.horizon = 900.0;
  options.precopy = true;
  options.plan = *FaultPlan::builtin("precopy-storm");
  options.keep_trace = true;
  const ScenarioReport first = run_scenario(options);
  const ScenarioReport second = run_scenario(options);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);  // byte-identical
}

TEST(MigrationFaultSuiteTest, PhaseFieldRoundTripsInJson) {
  FaultPlan plan{"p"};
  plan.migration_dest_crash(50.0, 140.0, "eager", 0.35, 30.0)
      .migration_link_cut(60.0, 200.0, "ack", 0.25, 5.0, "ws2");
  const std::string text = plan.to_json();
  const auto reparsed = FaultPlan::from_json(text);
  ASSERT_TRUE(reparsed.has_value());
  ASSERT_EQ(reparsed->specs().size(), 2U);
  EXPECT_EQ(reparsed->specs()[0].kind, FaultKind::kMigrationDestCrash);
  EXPECT_EQ(reparsed->specs()[0].phase, "eager");
  EXPECT_EQ(reparsed->specs()[1].kind, FaultKind::kMigrationLinkCut);
  EXPECT_EQ(reparsed->specs()[1].phase, "ack");
  EXPECT_EQ(reparsed->specs()[1].host_a, "ws2");
  EXPECT_EQ(reparsed->to_json(), text);  // byte-identical canonical form
  // Plans without migration faults never carry a "phase" key, keeping the
  // pre-existing plan files byte-identical.
  EXPECT_EQ(FaultPlan::builtin("churn")->to_json().find("phase"),
            std::string::npos);
}

TEST(MigrationFaultSuiteTest, UnknownPhaseIsRejected) {
  EXPECT_FALSE(
      FaultPlan::from_json(
          R"({"name":"p","faults":[{"kind":"migration_dest_crash","at":1,)"
          R"("phase":"warp"}]})")
          .has_value());
}

}  // namespace
}  // namespace ars::chaos
