// End-to-end chaos scenario: the shipped fault plans hold every invariant,
// a deliberately broken build is caught by the checker, and (plan, seed)
// fully determines the run down to the trace bytes.

#include "ars/chaos/scenario.hpp"

#include <gtest/gtest.h>

namespace ars::chaos {
namespace {

TEST(ChaosScenarioTest, FaultFreeBaselinePasses) {
  ScenarioOptions options;
  options.hosts = 3;
  options.apps = 2;
  options.horizon = 400.0;
  options.seed = 3;
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  EXPECT_EQ(report.invariants.exits_seen, 2u);
  EXPECT_EQ(report.messages_dropped, 0u);
}

TEST(ChaosScenarioTest, BuiltinPlansHoldAllInvariants) {
  for (const std::string& name : FaultPlan::builtin_names()) {
    const auto plan = FaultPlan::builtin(name);
    ASSERT_TRUE(plan.has_value());
    ScenarioOptions options;
    options.seed = 7;
    options.plan = *plan;
    const ScenarioReport report = run_scenario(options);
    EXPECT_TRUE(report.ok())
        << "plan " << name << ":\n"
        << report.invariants.summary();
    EXPECT_EQ(report.invariants.exits_seen, 3u) << "plan " << name;
  }
}

TEST(ChaosScenarioTest, ControlLossPlanActuallyDisturbsTheRun) {
  ScenarioOptions options;
  options.seed = 7;
  options.plan = *FaultPlan::builtin("control-loss");
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
  // The plan drops 30 % of control traffic for 160 s and crashes the
  // registry — a run that saw no disturbance would prove nothing.
  EXPECT_GT(report.faults.messages_dropped, 0u);
  EXPECT_GT(report.faults.messages_duplicated, 0u);
  EXPECT_EQ(report.faults.registry_crashes, 1);
  EXPECT_GT(report.messages_dropped, 0u);
}

TEST(ChaosScenarioTest, SabotagedLeaseExpiryIsCaughtByTheChecker) {
  // With lease expiry disabled, the crashed host's application is never
  // relaunched from its checkpoint — the build is broken and the invariant
  // checker must say so.
  ScenarioOptions options;
  options.seed = 1;
  options.plan = *FaultPlan::builtin("churn");
  options.sabotage_lease_expiry = true;
  const ScenarioReport report = run_scenario(options);
  ASSERT_FALSE(report.ok());
  bool unfinished_app = false;
  for (const Violation& violation : report.invariants.violations) {
    if (violation.invariant == "exactly-once-finish" ||
        violation.invariant == "deadlock-watchdog") {
      unfinished_app = true;
    }
  }
  EXPECT_TRUE(unfinished_app) << report.invariants.summary();
}

TEST(ChaosScenarioTest, SameSeedAndPlanReplayByteIdentical) {
  ScenarioOptions options;
  options.seed = 11;
  options.plan = *FaultPlan::builtin("control-loss");
  options.keep_trace = true;
  const ScenarioReport first = run_scenario(options);
  const ScenarioReport second = run_scenario(options);
  EXPECT_TRUE(first.ok()) << first.invariants.summary();
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);  // byte-identical

  ScenarioOptions other = options;
  other.seed = 12;
  const ScenarioReport third = run_scenario(other);
  EXPECT_NE(first.trace_hash, third.trace_hash);
}

TEST(ChaosScenarioTest, IndexedSchedulerMatchesLegacyScanByteForByte) {
  // Same seed and plan, the registry's scan mode the only difference
  // (audits off on both sides, since the audit itself forces the legacy
  // scan): the whole run — trace and decision log — must be identical.
  ScenarioOptions options;
  options.seed = 5;
  options.plan = *FaultPlan::builtin("churn");
  options.audit_decisions = false;
  const ScenarioReport indexed = run_scenario(options);
  options.legacy_scan = true;
  const ScenarioReport legacy = run_scenario(options);
  EXPECT_TRUE(indexed.ok()) << indexed.invariants.summary();
  EXPECT_GT(indexed.decisions, 0U);
  EXPECT_EQ(indexed.trace_hash, legacy.trace_hash);
  EXPECT_EQ(indexed.decisions, legacy.decisions);
  EXPECT_EQ(indexed.decision_log_hash, legacy.decision_log_hash);
  EXPECT_EQ(indexed.events_executed, legacy.events_executed);
}

TEST(ChaosScenarioTest, DeltaHeartbeatsHoldAllInvariants) {
  // Compact lease renewals between keyframes must not break liveness: the
  // registry still sees fresh leases through crashes and recoveries.
  ScenarioOptions options;
  options.seed = 3;
  options.plan = *FaultPlan::builtin("churn");
  options.delta_heartbeats = true;
  const ScenarioReport report = run_scenario(options);
  EXPECT_TRUE(report.ok()) << report.invariants.summary();
}

}  // namespace
}  // namespace ars::chaos
