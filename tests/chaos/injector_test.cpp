// FaultInjector behavior against a small, quiet runtime: message faults act
// on posted datagrams, host faults act on scheduled windows, and arming
// validates the plan against the actual cluster.

#include "ars/chaos/injector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ars/core/runtime.hpp"

namespace ars::chaos {
namespace {

core::ClusterConfig quiet_cluster(int hosts) {
  core::ClusterConfig config =
      core::make_cluster(hosts, rules::paper_policy2());
  return config;
}

net::Message wire(const std::string& src, const std::string& dst, int port) {
  net::Message message;
  message.src_host = src;
  message.dst_host = dst;
  message.dst_port = port;
  message.payload = "x";
  return message;
}

TEST(FaultInjectorTest, ArmRejectsUnknownHosts) {
  core::ReschedulerRuntime runtime{quiet_cluster(2)};
  FaultPlan plan{"bad"};
  plan.host_crash(10.0, 20.0, "ws9");
  FaultInjector injector{runtime, plan, 1};
  EXPECT_THROW(injector.arm(), std::invalid_argument);
}

TEST(FaultInjectorTest, ArmRejectsWildcardHostFaults) {
  core::ReschedulerRuntime runtime{quiet_cluster(2)};
  FaultPlan plan{"bad"};
  plan.cpu_slowdown(10.0, 20.0, 0.5, "*");
  FaultInjector injector{runtime, plan, 1};
  EXPECT_THROW(injector.arm(), std::invalid_argument);
}

TEST(FaultInjectorTest, PartitionCutsMatchingLinksOnly) {
  core::ReschedulerRuntime runtime{quiet_cluster(3)};
  net::Endpoint& ws2_inbox = runtime.network().bind("ws2", 7000);
  net::Endpoint& ws3_inbox = runtime.network().bind("ws3", 7000);

  FaultPlan plan{"partition"};
  plan.partition(0.0, 100.0, "ws2");
  FaultInjector injector{runtime, plan, 1};
  injector.arm();
  runtime.run_until(1.0);

  runtime.network().post(wire("ws1", "ws2", 7000));  // crosses the cut
  runtime.network().post(wire("ws1", "ws3", 7000));  // unaffected
  runtime.network().post(wire("ws2", "ws2", 7000));  // loopback, never cut
  runtime.run_until(10.0);

  int ws2_received = 0;
  while (ws2_inbox.inbox.try_recv()) {
    ++ws2_received;
  }
  EXPECT_EQ(ws2_received, 1);  // only the loopback datagram
  EXPECT_TRUE(ws3_inbox.inbox.try_recv().has_value());
  EXPECT_EQ(injector.stats().messages_dropped, 1u);

  // After the heal the link carries traffic again.
  runtime.run_until(101.0);
  runtime.network().post(wire("ws1", "ws2", 7000));
  runtime.run_until(110.0);
  EXPECT_TRUE(ws2_inbox.inbox.try_recv().has_value());
}

TEST(FaultInjectorTest, CertainMessageLossDropsEverythingInWindow) {
  core::ReschedulerRuntime runtime{quiet_cluster(2)};
  net::Endpoint& inbox = runtime.network().bind("ws2", 7000);

  FaultPlan plan{"loss"};
  plan.message_loss(0.0, 50.0, 1.0);
  FaultInjector injector{runtime, plan, 1};
  injector.arm();
  runtime.run_until(1.0);

  for (int i = 0; i < 5; ++i) {
    runtime.network().post(wire("ws1", "ws2", 7000));
  }
  runtime.run_until(10.0);
  EXPECT_FALSE(inbox.inbox.try_recv().has_value());
  EXPECT_EQ(injector.stats().messages_dropped, 5u);
  EXPECT_EQ(runtime.network().dropped_count("ws1"), 5u);
}

TEST(FaultInjectorTest, DuplicationDeliversTwice) {
  core::ReschedulerRuntime runtime{quiet_cluster(2)};
  net::Endpoint& inbox = runtime.network().bind("ws2", 7000);

  FaultPlan plan{"dup"};
  plan.message_duplicate(0.0, 50.0, 1.0);
  FaultInjector injector{runtime, plan, 1};
  injector.arm();
  runtime.run_until(1.0);

  runtime.network().post(wire("ws1", "ws2", 7000));
  runtime.run_until(10.0);
  int received = 0;
  while (inbox.inbox.try_recv()) {
    ++received;
  }
  EXPECT_EQ(received, 2);
  EXPECT_EQ(injector.stats().messages_duplicated, 1u);
}

TEST(FaultInjectorTest, CpuSlowdownAppliesAndRestores) {
  core::ReschedulerRuntime runtime{quiet_cluster(2)};
  const double base = runtime.host("ws2").cpu().speed();

  FaultPlan plan{"slow"};
  plan.cpu_slowdown(10.0, 20.0, 0.5, "ws2");
  FaultInjector injector{runtime, plan, 1};
  injector.arm();

  runtime.run_until(15.0);
  EXPECT_DOUBLE_EQ(runtime.host("ws2").cpu().speed(), base * 0.5);
  runtime.run_until(25.0);
  EXPECT_DOUBLE_EQ(runtime.host("ws2").cpu().speed(), base);
  EXPECT_EQ(injector.stats().cpu_slowdowns, 1);
}

TEST(FaultInjectorTest, DestructorUninstallsThePolicy) {
  core::ReschedulerRuntime runtime{quiet_cluster(2)};
  {
    FaultPlan plan{"loss"};
    plan.message_loss(0.0, 50.0, 1.0);
    FaultInjector injector{runtime, plan, 1};
    injector.arm();
    EXPECT_EQ(runtime.network().fault_policy(), &injector);
  }
  EXPECT_EQ(runtime.network().fault_policy(), nullptr);
}

}  // namespace
}  // namespace ars::chaos
