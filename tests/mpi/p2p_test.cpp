#include <gtest/gtest.h>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {
namespace {

using sim::Engine;
using sim::Task;

class MpiTest : public ::testing::Test {
 protected:
  MpiTest() : net_(engine_, net_options()), mpi_(engine_, net_) {
    for (const char* name : {"ws1", "ws2", "ws3", "ws4"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.001;
    options.bandwidth_bps = 12.5e6;
    options.message_overhead = 0;
    return options;
  }

  Engine engine_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  net::Network net_;
  MpiSystem mpi_;
};

TEST_F(MpiTest, PingPong) {
  std::vector<std::string> log;
  auto app = [&log](Proc& self) -> Task<> {
    const Comm world = self.world();
    if (self.world_rank() == 0) {
      co_await self.send(world, 1, 7, 1000.0);
      const MpiMessage reply = co_await self.recv(world, 1, 8);
      log.push_back("rank0 got reply tag " + std::to_string(reply.tag));
    } else {
      const MpiMessage message = co_await self.recv(world, 0, 7);
      log.push_back("rank1 got tag " + std::to_string(message.tag));
      co_await self.send(world, 0, 8, 1000.0);
    }
  };
  mpi_.launch_world({"ws1", "ws2"}, app, "pingpong");
  engine_.run_until(10.0);
  ASSERT_EQ(log.size(), 2U);
  EXPECT_EQ(log[0], "rank1 got tag 7");
  EXPECT_EQ(log[1], "rank0 got reply tag 8");
  EXPECT_EQ(mpi_.live_procs(), 0U);  // both exited
}

TEST_F(MpiTest, SendCarriesValues) {
  std::vector<double> received;
  auto app = [&received](Proc& self) -> Task<> {
    const Comm world = self.world();
    if (self.world_rank() == 0) {
      MpiMessage payload;
      payload.values = {1.5, 2.5, 3.0};
      co_await self.send(world, 1, 0, 24.0, std::move(payload));
    } else {
      const MpiMessage message = co_await self.recv(world);
      received = message.values;
    }
  };
  mpi_.launch_world({"ws1", "ws2"}, app, "values");
  engine_.run_until(10.0);
  EXPECT_EQ(received, (std::vector<double>{1.5, 2.5, 3.0}));
}

TEST_F(MpiTest, TagMatchingIsSelective) {
  std::vector<int> order;
  auto app = [&order](Proc& self) -> Task<> {
    const Comm world = self.world();
    if (self.world_rank() == 0) {
      co_await self.send(world, 1, 5, 10.0);
      co_await self.send(world, 1, 6, 10.0);
    } else {
      // Receive tag 6 first even though tag 5 arrives first.
      const MpiMessage m6 = co_await self.recv(world, 0, 6);
      order.push_back(m6.tag);
      const MpiMessage m5 = co_await self.recv(world, 0, 5);
      order.push_back(m5.tag);
    }
  };
  mpi_.launch_world({"ws1", "ws2"}, app, "tags");
  engine_.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{6, 5}));
}

TEST_F(MpiTest, AnySourceReceivesFromEither) {
  std::vector<int> sources;
  auto app = [&sources](Proc& self) -> Task<> {
    const Comm world = self.world();
    if (self.world_rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        const MpiMessage message = co_await self.recv(world, kAnySource, 1);
        sources.push_back(message.src_rank);
      }
    } else {
      co_await sim::delay(self.system().engine(),
                          0.01 * self.world_rank());
      co_await self.send(world, 0, 1, 10.0);
    }
  };
  mpi_.launch_world({"ws1", "ws2", "ws3"}, app, "anysrc");
  engine_.run_until(10.0);
  ASSERT_EQ(sources.size(), 2U);
  EXPECT_EQ(sources[0] + sources[1], 3);  // ranks 1 and 2 in some order
}

TEST_F(MpiTest, FifoPerSourceAndTag) {
  std::vector<double> got;
  auto app = [&got](Proc& self) -> Task<> {
    const Comm world = self.world();
    if (self.world_rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        MpiMessage payload;
        payload.values = {static_cast<double>(i)};
        co_await self.send(world, 1, 3, 8.0, std::move(payload));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        const MpiMessage message = co_await self.recv(world, 0, 3);
        got.push_back(message.values.at(0));
      }
    }
  };
  mpi_.launch_world({"ws1", "ws2"}, app, "fifo");
  engine_.run_until(10.0);
  EXPECT_EQ(got, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST_F(MpiTest, TransferTimeScalesWithSize) {
  double small_elapsed = 0.0;
  double big_elapsed = 0.0;
  auto app = [&](Proc& self) -> Task<> {
    const Comm world = self.world();
    auto& engine = self.system().engine();
    if (self.world_rank() == 0) {
      double t0 = engine.now();
      co_await self.send(world, 1, 0, 125000.0);  // 10 ms at 12.5 MB/s
      small_elapsed = engine.now() - t0;
      t0 = engine.now();
      co_await self.send(world, 1, 1, 1.25e6);  // 100 ms
      big_elapsed = engine.now() - t0;
    } else {
      (void)co_await self.recv(world, 0, 0);
      (void)co_await self.recv(world, 0, 1);
    }
  };
  mpi_.launch_world({"ws1", "ws2"}, app, "sized");
  engine_.run_until(10.0);
  EXPECT_GT(big_elapsed, small_elapsed * 5);
  EXPECT_NEAR(big_elapsed, 0.1, 0.02);
}

TEST_F(MpiTest, IsendOverlapsComputation) {
  double send_wait = -1.0;
  auto app = [&](Proc& self) -> Task<> {
    const Comm world = self.world();
    auto& engine = self.system().engine();
    if (self.world_rank() == 0) {
      const double t0 = engine.now();
      Request request = self.isend(world, 1, 0, 1.25e6);  // ~100 ms wire
      const double after_isend = engine.now() - t0;
      EXPECT_LT(after_isend, 0.01);  // isend returns immediately
      co_await request.wait();
      send_wait = engine.now() - t0;
    } else {
      (void)co_await self.recv(world, 0, 0);
    }
  };
  mpi_.launch_world({"ws1", "ws2"}, app, "isend");
  engine_.run_until(10.0);
  EXPECT_NEAR(send_wait, 0.1, 0.02);
}

TEST_F(MpiTest, IprobeSeesQueuedMessage) {
  bool before = true;
  bool after = false;
  auto app = [&](Proc& self) -> Task<> {
    const Comm world = self.world();
    if (self.world_rank() == 0) {
      co_await self.send(world, 1, 9, 10.0);
    } else {
      before = self.iprobe(world, 0, 9);
      co_await sim::delay(self.system().engine(), 1.0);
      after = self.iprobe(world, 0, 9);
      (void)co_await self.recv(world, 0, 9);
      EXPECT_FALSE(self.iprobe(world, 0, 9));
    }
  };
  mpi_.launch_world({"ws1", "ws2"}, app, "probe");
  engine_.run_until(10.0);
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST_F(MpiTest, ProcRegistersInHostProcessTable) {
  auto app = [](Proc& self) -> Task<> {
    co_await sim::delay(self.system().engine(), 5.0);
  };
  const auto ranks = mpi_.launch_world({"ws1"}, app, "registered");
  engine_.run_until(1.0);
  Proc* proc = mpi_.find(ranks[0]);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(hosts_[0]->processes().count(), 1U);
  const auto* info = hosts_[0]->processes().find(proc->pid());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "registered.0");
  engine_.run_until(10.0);
  EXPECT_EQ(hosts_[0]->processes().count(), 0U);  // deregistered on exit
}

TEST_F(MpiTest, WaitForExitResolves) {
  auto app = [](Proc& self) -> Task<> {
    co_await sim::delay(self.system().engine(), 3.0);
  };
  const RankId id = mpi_.launch("ws1", app, "waited");
  double exited_at = -1.0;
  auto waiter = [&](MpiSystem& system) -> Task<> {
    co_await system.wait_for_exit(id);
    exited_at = engine_.now();
  };
  sim::Fiber::spawn(engine_, waiter(mpi_));
  engine_.run_until(10.0);
  EXPECT_NEAR(exited_at, 3.0, 0.01);
  EXPECT_FALSE(mpi_.alive(id));
}

TEST_F(MpiTest, RelocateMovesProcessTableEntry) {
  auto app = [](Proc& self) -> Task<> {
    co_await sim::delay(self.system().engine(), 100.0);
  };
  const RankId id = mpi_.launch("ws1", app, "mover", true, "schema-x");
  engine_.run_until(1.0);
  Proc* proc = mpi_.find(id);
  ASSERT_NE(proc, nullptr);
  mpi_.relocate(*proc, *hosts_[3]);
  EXPECT_EQ(proc->host().name(), "ws4");
  EXPECT_EQ(hosts_[0]->processes().count(), 0U);
  EXPECT_EQ(hosts_[3]->processes().count(), 1U);
  const auto* info = hosts_[3]->processes().find(proc->pid());
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->migration_enabled);
  EXPECT_EQ(info->schema_name, "schema-x");
}

TEST_F(MpiTest, MessagesFollowRelocatedReceiver) {
  std::vector<double> got;
  const Comm shared = mpi_.make_comm({});  // placeholder, replaced below
  (void)shared;
  RankId receiver_id = 0;
  auto receiver = [&got](Proc& self) -> Task<> {
    const MpiMessage message = co_await self.recv(self.world());
    got = message.values;
  };
  auto app = [&](Proc& self) -> Task<> {
    if (self.world_rank() == 0) {
      // Big transfer toward a rank that moves mid-flight.
      MpiMessage payload;
      payload.values = {42.0};
      co_await self.send(self.world(), 1, 0, 6.25e6);  // ~0.5 s wire
      payload.values.clear();
    } else {
      receiver_id = self.id();
      const MpiMessage message = co_await self.recv(self.world(), 0, 0);
      got = message.values;
    }
    co_return;
  };
  (void)receiver;
  mpi_.launch_world({"ws1", "ws2"}, app, "chase");
  // Relocate the receiver while the transfer is in flight.
  engine_.schedule_at(0.2, [&] {
    Proc* proc = mpi_.find(receiver_id);
    ASSERT_NE(proc, nullptr);
    mpi_.relocate(*proc, *hosts_[2]);
  });
  engine_.run_until(20.0);
  // Message still arrives (forwarded), just later than the direct path.
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

}  // namespace
}  // namespace ars::mpi
