// MPI-2 dynamic process management tests: the operations the paper's
// migration protocol depends on.

#include <gtest/gtest.h>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {
namespace {

using sim::Engine;
using sim::Task;

class DpmTest : public ::testing::Test {
 protected:
  DpmTest() : net_(engine_, net_options()), mpi_(engine_, net_) {
    for (const char* name : {"ws1", "ws2", "ws3"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.001;
    options.message_overhead = 0;
    return options;
  }

  Engine engine_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  net::Network net_;
  MpiSystem mpi_;
};

TEST_F(DpmTest, SpawnCreatesChildOnTargetHost) {
  std::string child_host;
  bool child_ran = false;
  auto child = [&](Proc& self) -> Task<> {
    child_host = self.host().name();
    child_ran = true;
    co_return;
  };
  auto parent = [&](Proc& self) -> Task<> {
    const SpawnResult result =
        co_await self.spawn("ws2", child, "child");
    EXPECT_EQ(result.children.size(), 1U);
    EXPECT_TRUE(result.intercomm.is_inter());
    EXPECT_EQ(result.intercomm.size(), 1);
    EXPECT_EQ(result.intercomm.remote_size(), 1);
  };
  mpi_.launch("ws1", parent, "parent");
  engine_.run_until(10.0);
  EXPECT_TRUE(child_ran);
  EXPECT_EQ(child_host, "ws2");
}

TEST_F(DpmTest, SpawnPaysDpmOverhead) {
  double spawn_elapsed = -1.0;
  auto child = [](Proc&) -> Task<> { co_return; };
  auto parent = [&](Proc& self) -> Task<> {
    auto& engine = self.system().engine();
    const double t0 = engine.now();
    (void)co_await self.spawn("ws2", child, "child");
    spawn_elapsed = engine.now() - t0;
  };
  mpi_.launch("ws1", parent, "parent");
  engine_.run_until(10.0);
  // LAM's slow DPM: at least the configured 0.3 s (paper §5.2).
  EXPECT_GE(spawn_elapsed, mpi_.options().spawn_overhead);
  EXPECT_LT(spawn_elapsed, mpi_.options().spawn_overhead + 0.1);
}

TEST_F(DpmTest, ParentChildCommunicateOverIntercomm) {
  std::vector<double> child_got;
  std::vector<double> parent_got;
  auto child = [&](Proc& self) -> Task<> {
    const Comm parent_comm = self.parent_comm();
    EXPECT_TRUE(parent_comm.valid());
    const MpiMessage m = co_await self.recv(parent_comm, 0, 1);
    child_got = m.values;
    MpiMessage reply;
    reply.values = {m.values.at(0) * 2};
    co_await self.send(parent_comm, 0, 2, 8.0, std::move(reply));
  };
  auto parent = [&](Proc& self) -> Task<> {
    const SpawnResult result = co_await self.spawn("ws2", child, "child");
    MpiMessage payload;
    payload.values = {21.0};
    co_await self.send(result.intercomm, 0, 1, 8.0, std::move(payload));
    const MpiMessage reply = co_await self.recv(result.intercomm, 0, 2);
    parent_got = reply.values;
  };
  mpi_.launch("ws1", parent, "parent");
  engine_.run_until(10.0);
  EXPECT_EQ(child_got, (std::vector<double>{21.0}));
  EXPECT_EQ(parent_got, (std::vector<double>{42.0}));
}

TEST_F(DpmTest, SpawnMultipleChildrenShareAWorld) {
  int world_sizes_seen = 0;
  auto child = [&](Proc& self) -> Task<> {
    EXPECT_EQ(self.world().size(), 3);
    ++world_sizes_seen;
    co_await self.barrier(self.world());
  };
  auto parent = [&](Proc& self) -> Task<> {
    const SpawnResult result =
        co_await self.spawn("ws2", child, "flock", 3);
    EXPECT_EQ(result.children.size(), 3U);
    EXPECT_EQ(result.intercomm.remote_size(), 3);
  };
  mpi_.launch("ws1", parent, "parent");
  engine_.run_until(10.0);
  EXPECT_EQ(world_sizes_seen, 3);
}

TEST_F(DpmTest, ConnectAcceptBuildsIntercomm) {
  std::string port;
  std::vector<double> server_got;
  auto server = [&](Proc& self) -> Task<> {
    port = self.open_port();
    const Comm conn = co_await self.accept(port);
    EXPECT_TRUE(conn.is_inter());
    const MpiMessage m = co_await self.recv(conn, 0, 0);
    server_got = m.values;
    self.close_port(port);
  };
  auto client = [&](Proc& self) -> Task<> {
    // Wait for the server to have published its port.
    while (port.empty()) {
      co_await sim::delay(self.system().engine(), 0.01);
    }
    const Comm conn = co_await self.connect(port);
    MpiMessage payload;
    payload.values = {9.0};
    co_await self.send(conn, 0, 0, 8.0, std::move(payload));
  };
  mpi_.launch("ws1", server, "server");
  mpi_.launch("ws2", client, "client");
  engine_.run_until(10.0);
  EXPECT_EQ(server_got, (std::vector<double>{9.0}));
}

TEST_F(DpmTest, MergeProducesSharedIntracomm) {
  // The migration pattern: parent spawns child, both merge, then talk on
  // the merged intracommunicator.
  std::vector<double> child_got;
  auto child = [&](Proc& self) -> Task<> {
    const Comm merged = co_await self.merge(self.parent_comm(), true);
    EXPECT_EQ(merged.size(), 2);
    EXPECT_FALSE(merged.is_inter());
    // High side: child is rank 1.
    EXPECT_EQ(merged.rank_of(self.id()), 1);
    const MpiMessage m = co_await self.recv(merged, 0, 5);
    child_got = m.values;
  };
  auto parent = [&](Proc& self) -> Task<> {
    const SpawnResult result = co_await self.spawn("ws2", child, "child");
    const Comm merged = co_await self.merge(result.intercomm, false);
    EXPECT_EQ(merged.rank_of(self.id()), 0);
    MpiMessage payload;
    payload.values = {1.0, 2.0};
    co_await self.send(merged, 1, 5, 16.0, std::move(payload));
  };
  mpi_.launch("ws1", parent, "parent");
  engine_.run_until(10.0);
  EXPECT_EQ(child_got, (std::vector<double>{1.0, 2.0}));
}

TEST_F(DpmTest, MergeContextAgreesAcrossBothSides) {
  int child_context = -1;
  int parent_context = -2;
  auto child = [&](Proc& self) -> Task<> {
    const Comm merged = co_await self.merge(self.parent_comm(), true);
    child_context = merged.context();
  };
  auto parent = [&](Proc& self) -> Task<> {
    const SpawnResult result = co_await self.spawn("ws2", child, "child");
    const Comm merged = co_await self.merge(result.intercomm, false);
    parent_context = merged.context();
  };
  mpi_.launch("ws1", parent, "parent");
  engine_.run_until(10.0);
  EXPECT_EQ(child_context, parent_context);
}

TEST_F(DpmTest, ConnectUnknownPortThrows) {
  bool failed = false;
  auto client = [&](Proc& self) -> Task<> {
    try {
      (void)co_await self.connect("nowhere:1");
    } catch (const std::invalid_argument&) {
      failed = true;
    }
  };
  mpi_.launch("ws1", client, "client");
  engine_.run_until(5.0);
  EXPECT_TRUE(failed);
}

TEST_F(DpmTest, SpawnOnUnknownHostThrows) {
  bool failed = false;
  auto child = [](Proc&) -> Task<> { co_return; };
  auto parent = [&](Proc& self) -> Task<> {
    try {
      (void)co_await self.spawn("mars", child, "child");
    } catch (const std::out_of_range&) {
      failed = true;
    }
  };
  mpi_.launch("ws1", parent, "parent");
  engine_.run_until(5.0);
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace ars::mpi
