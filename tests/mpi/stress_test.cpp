// Property-style stress sweep for the MPI runtime: random communication
// storms must conserve messages and payloads, and identical seeds must
// produce identical virtual-time outcomes (determinism).

#include <gtest/gtest.h>

#include <numeric>

#include "ars/mpi/mpi.hpp"
#include "ars/support/rng.hpp"

namespace ars::mpi {
namespace {

using sim::Engine;
using sim::Task;

struct StormPlan {
  // messages[s][d]: how many messages rank s sends rank d; values carry a
  // deterministic payload so sums can be checked end-to-end.
  std::vector<std::vector<int>> messages;
  std::vector<double> expected_sum;  // per receiving rank
  int ranks = 0;
};

StormPlan make_plan(std::uint64_t seed, int ranks) {
  support::Rng rng{seed};
  StormPlan plan;
  plan.ranks = ranks;
  plan.messages.assign(ranks, std::vector<int>(ranks, 0));
  plan.expected_sum.assign(ranks, 0.0);
  for (int s = 0; s < ranks; ++s) {
    for (int d = 0; d < ranks; ++d) {
      if (s == d) {
        continue;
      }
      plan.messages[s][d] = static_cast<int>(rng.uniform_int(0, 5));
      for (int k = 0; k < plan.messages[s][d]; ++k) {
        plan.expected_sum[d] += s * 1000 + k;
      }
    }
  }
  return plan;
}

struct StormResult {
  std::vector<double> received_sum;
  std::vector<int> received_count;
  double finished_at = 0.0;
};

StormResult run_storm(std::uint64_t seed, int ranks) {
  const StormPlan plan = make_plan(seed, ranks);
  Engine engine;
  net::Network network{engine};
  std::vector<std::unique_ptr<host::Host>> hosts;
  std::vector<std::string> names;
  for (int i = 0; i < ranks; ++i) {
    host::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    network.attach(*hosts.back());
    names.push_back(spec.name);
  }
  MpiSystem mpi{engine, network};

  StormResult result;
  result.received_sum.assign(ranks, 0.0);
  result.received_count.assign(ranks, 0);

  auto app = [&plan, &result](Proc& self) -> Task<> {
    const Comm world = self.world();
    const int me = self.world_rank();
    // Fire all sends without blocking, then drain the expected receives.
    std::vector<Request> pending;
    for (int d = 0; d < plan.ranks; ++d) {
      for (int k = 0; k < plan.messages[me][d]; ++k) {
        MpiMessage payload;
        payload.values = {static_cast<double>(me * 1000 + k)};
        pending.push_back(
            self.isend(world, d, /*tag=*/k, 64.0, std::move(payload)));
      }
    }
    int expected = 0;
    for (int s = 0; s < plan.ranks; ++s) {
      expected += plan.messages[s][me];
    }
    for (int i = 0; i < expected; ++i) {
      const MpiMessage m = co_await self.recv(world, kAnySource, kAnyTag);
      result.received_sum[me] += m.values.at(0);
      ++result.received_count[me];
    }
    for (Request& request : pending) {
      co_await request.wait();
    }
    co_await self.barrier(world);
  };
  mpi.launch_world(names, app, "storm");
  while (mpi.live_procs() > 0) {
    engine.run_until(engine.now() + 10.0);
  }
  result.finished_at = engine.now();
  return result;
}

class MpiStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpiStorm, MessagesAndPayloadsAreConserved) {
  const int ranks = 3 + static_cast<int>(GetParam() % 4);  // 3..6
  const StormPlan plan = make_plan(GetParam(), ranks);
  const StormResult result = run_storm(GetParam(), ranks);
  for (int r = 0; r < ranks; ++r) {
    int expected = 0;
    for (int s = 0; s < ranks; ++s) {
      expected += plan.messages[s][r];
    }
    EXPECT_EQ(result.received_count[r], expected) << "rank " << r;
    EXPECT_DOUBLE_EQ(result.received_sum[r], plan.expected_sum[r])
        << "rank " << r;
  }
}

TEST_P(MpiStorm, IdenticalSeedsAreDeterministic) {
  const int ranks = 3 + static_cast<int>(GetParam() % 4);
  const StormResult a = run_storm(GetParam(), ranks);
  const StormResult b = run_storm(GetParam(), ranks);
  EXPECT_EQ(a.received_sum, b.received_sum);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpiStorm,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace ars::mpi
