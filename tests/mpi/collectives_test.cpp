#include <gtest/gtest.h>

#include <numeric>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {
namespace {

using sim::Engine;
using sim::Task;

/// Parameterized over world size: collectives must hold for any rank count.
class CollectiveTest : public ::testing::TestWithParam<int> {
 protected:
  CollectiveTest() : net_(engine_, net_options()), mpi_(engine_, net_) {
    for (int i = 0; i < GetParam(); ++i) {
      host::HostSpec spec;
      spec.name = "ws" + std::to_string(i + 1);
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
      host_names_.push_back(spec.name);
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.0001;
    options.message_overhead = 0;
    return options;
  }

  Engine engine_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::vector<std::string> host_names_;
  net::Network net_;
  MpiSystem mpi_;
};

TEST_P(CollectiveTest, BarrierSynchronizesAllRanks) {
  const int n = GetParam();
  std::vector<double> release_times;
  auto app = [&](Proc& self) -> Task<> {
    auto& engine = self.system().engine();
    // Stagger arrivals: the barrier must release nobody before the last.
    co_await sim::delay(engine, 0.1 * self.world_rank());
    co_await self.barrier(self.world());
    release_times.push_back(engine.now());
  };
  mpi_.launch_world(host_names_, app, "barrier");
  engine_.run_until(60.0);
  ASSERT_EQ(release_times.size(), static_cast<std::size_t>(n));
  const double last_arrival = 0.1 * (n - 1);
  for (const double t : release_times) {
    EXPECT_GE(t, last_arrival);
  }
}

TEST_P(CollectiveTest, BcastDeliversRootValues) {
  const int n = GetParam();
  std::vector<std::vector<double>> results(static_cast<std::size_t>(n));
  auto app = [&](Proc& self) -> Task<> {
    std::vector<double> values;
    if (self.world_rank() == 0) {
      values = {3.14, 2.71, 1.41};
    }
    const auto out = co_await self.bcast(self.world(), 0, 24.0, values);
    results[static_cast<std::size_t>(self.world_rank())] = out;
  };
  mpi_.launch_world(host_names_, app, "bcast");
  engine_.run_until(60.0);
  for (const auto& r : results) {
    EXPECT_EQ(r, (std::vector<double>{3.14, 2.71, 1.41}));
  }
}

TEST_P(CollectiveTest, BcastFromNonZeroRoot) {
  const int n = GetParam();
  const int root = n - 1;
  std::vector<std::vector<double>> results(static_cast<std::size_t>(n));
  auto app = [&](Proc& self) -> Task<> {
    std::vector<double> values;
    if (self.world_rank() == root) {
      values = {7.0};
    }
    const auto out = co_await self.bcast(self.world(), root, 8.0, values);
    results[static_cast<std::size_t>(self.world_rank())] = out;
  };
  mpi_.launch_world(host_names_, app, "bcast_root");
  engine_.run_until(60.0);
  for (const auto& r : results) {
    EXPECT_EQ(r, (std::vector<double>{7.0}));
  }
}

TEST_P(CollectiveTest, ReduceSumsElementwise) {
  const int n = GetParam();
  std::vector<double> root_result;
  auto app = [&](Proc& self) -> Task<> {
    const double r = self.world_rank();
    std::vector<double> mine{r, 2.0 * r};
    const auto out =
        co_await self.reduce_sum(self.world(), 0, std::move(mine), 16.0);
    if (self.world_rank() == 0) {
      root_result = out;
    } else {
      EXPECT_TRUE(out.empty());
    }
  };
  mpi_.launch_world(host_names_, app, "reduce");
  engine_.run_until(60.0);
  const double expected = n * (n - 1) / 2.0;
  ASSERT_EQ(root_result.size(), 2U);
  EXPECT_DOUBLE_EQ(root_result[0], expected);
  EXPECT_DOUBLE_EQ(root_result[1], 2.0 * expected);
}

TEST_P(CollectiveTest, AllreduceGivesEveryoneTheSum) {
  const int n = GetParam();
  std::vector<double> results(static_cast<std::size_t>(n), -1.0);
  auto app = [&](Proc& self) -> Task<> {
    std::vector<double> mine{static_cast<double>(self.world_rank() + 1)};
    const auto out =
        co_await self.allreduce_sum(self.world(), std::move(mine), 8.0);
    results[static_cast<std::size_t>(self.world_rank())] = out.at(0);
  };
  mpi_.launch_world(host_names_, app, "allreduce");
  engine_.run_until(60.0);
  const double expected = n * (n + 1) / 2.0;
  for (const double r : results) {
    EXPECT_DOUBLE_EQ(r, expected);
  }
}

TEST_P(CollectiveTest, GatherConcatenatesInRankOrder) {
  const int n = GetParam();
  std::vector<double> gathered;
  auto app = [&](Proc& self) -> Task<> {
    const double r = self.world_rank();
    std::vector<double> mine{10.0 * r, 10.0 * r + 1};
    const auto out =
        co_await self.gather(self.world(), 0, std::move(mine), 16.0);
    if (self.world_rank() == 0) {
      gathered = out;
    }
  };
  mpi_.launch_world(host_names_, app, "gather");
  engine_.run_until(60.0);
  ASSERT_EQ(gathered.size(), static_cast<std::size_t>(2 * n));
  for (int r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(2 * r)], 10.0 * r);
    EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(2 * r + 1)],
                     10.0 * r + 1);
  }
}

TEST_P(CollectiveTest, ScatterHandsOutChunks) {
  const int n = GetParam();
  std::vector<std::vector<double>> results(static_cast<std::size_t>(n));
  auto app = [&](Proc& self) -> Task<> {
    std::vector<double> source;
    if (self.world_rank() == 0) {
      source.resize(static_cast<std::size_t>(2 * n));
      std::iota(source.begin(), source.end(), 0.0);
    }
    const auto chunk =
        co_await self.scatter(self.world(), 0, source, 2, 16.0);
    results[static_cast<std::size_t>(self.world_rank())] = chunk;
  };
  mpi_.launch_world(host_names_, app, "scatter");
  engine_.run_until(60.0);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              (std::vector<double>{2.0 * r, 2.0 * r + 1}));
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace ars::mpi
