// Tests for communicator operations: allgather, comm_dup, comm_split.

#include <gtest/gtest.h>

#include "ars/mpi/mpi.hpp"

namespace ars::mpi {
namespace {

using sim::Engine;
using sim::Task;

class CommOpsTest : public ::testing::Test {
 protected:
  CommOpsTest() : net_(engine_, net_options()), mpi_(engine_, net_) {
    for (int i = 1; i <= 6; ++i) {
      host::HostSpec spec;
      spec.name = "ws" + std::to_string(i);
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
      names_.push_back(spec.name);
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.0001;
    options.message_overhead = 0;
    return options;
  }

  std::vector<std::string> hosts_for(int n) {
    return {names_.begin(), names_.begin() + n};
  }

  Engine engine_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::vector<std::string> names_;
  net::Network net_;
  MpiSystem mpi_;
};

TEST_F(CommOpsTest, AllgatherConcatenatesEverywhere) {
  constexpr int kRanks = 4;
  std::vector<std::vector<double>> results(kRanks);
  auto app = [&](Proc& self) -> Task<> {
    std::vector<double> mine{static_cast<double>(self.world_rank() * 10)};
    const auto out =
        co_await self.allgather(self.world(), std::move(mine), 8.0);
    results[static_cast<std::size_t>(self.world_rank())] = out;
  };
  mpi_.launch_world(hosts_for(kRanks), app, "ag");
  engine_.run_until(60.0);
  for (const auto& r : results) {
    EXPECT_EQ(r, (std::vector<double>{0.0, 10.0, 20.0, 30.0}));
  }
}

TEST_F(CommOpsTest, ReduceMinMaxProd) {
  constexpr int kRanks = 5;
  std::vector<double> mins(kRanks, -1.0);
  std::vector<double> maxs(kRanks, -1.0);
  std::vector<double> prods(kRanks, -1.0);
  auto app = [&](Proc& self) -> Task<> {
    const double r = self.world_rank() + 1;  // 1..5
    std::vector<double> a{r};
    mins[static_cast<std::size_t>(self.world_rank())] =
        (co_await self.allreduce(self.world(), std::move(a),
                                 ReduceOp::kMin, 8.0))
            .at(0);
    std::vector<double> b{r};
    maxs[static_cast<std::size_t>(self.world_rank())] =
        (co_await self.allreduce(self.world(), std::move(b),
                                 ReduceOp::kMax, 8.0))
            .at(0);
    std::vector<double> c{r};
    prods[static_cast<std::size_t>(self.world_rank())] =
        (co_await self.allreduce(self.world(), std::move(c),
                                 ReduceOp::kProd, 8.0))
            .at(0);
  };
  mpi_.launch_world(hosts_for(kRanks), app, "ops");
  engine_.run_until(60.0);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_DOUBLE_EQ(mins[static_cast<std::size_t>(r)], 1.0);
    EXPECT_DOUBLE_EQ(maxs[static_cast<std::size_t>(r)], 5.0);
    EXPECT_DOUBLE_EQ(prods[static_cast<std::size_t>(r)], 120.0);
  }
}

TEST_F(CommOpsTest, CommDupIsolatesTraffic) {
  std::vector<double> got_on_dup;
  std::vector<double> got_on_world;
  auto app = [&](Proc& self) -> Task<> {
    const Comm world = self.world();
    const Comm dup = co_await self.comm_dup(world);
    EXPECT_NE(dup.context(), world.context());
    EXPECT_EQ(dup.size(), world.size());
    if (self.world_rank() == 0) {
      MpiMessage a;
      a.values = {1.0};
      co_await self.send(dup, 1, 5, 8.0, std::move(a));
      MpiMessage b;
      b.values = {2.0};
      co_await self.send(world, 1, 5, 8.0, std::move(b));
    } else {
      // Same tag and source on both comms: contexts keep them apart.
      const MpiMessage w = co_await self.recv(world, 0, 5);
      got_on_world = w.values;
      const MpiMessage d = co_await self.recv(dup, 0, 5);
      got_on_dup = d.values;
    }
  };
  mpi_.launch_world(hosts_for(2), app, "dup");
  engine_.run_until(60.0);
  EXPECT_EQ(got_on_dup, (std::vector<double>{1.0}));
  EXPECT_EQ(got_on_world, (std::vector<double>{2.0}));
}

TEST_F(CommOpsTest, CommSplitByParity) {
  constexpr int kRanks = 6;
  std::vector<int> split_size(kRanks, -1);
  std::vector<int> split_rank(kRanks, -1);
  std::vector<double> group_sums(kRanks, 0.0);
  auto app = [&](Proc& self) -> Task<> {
    const int rank = self.world_rank();
    const Comm half = co_await self.comm_split(self.world(), rank % 2, rank);
    split_size[static_cast<std::size_t>(rank)] = half.size();
    split_rank[static_cast<std::size_t>(rank)] = half.rank_of(self.id());
    // Collectives work on the split communicator.
    std::vector<double> mine{static_cast<double>(rank)};
    const auto sum = co_await self.allreduce_sum(half, std::move(mine), 8.0);
    group_sums[static_cast<std::size_t>(rank)] = sum.at(0);
  };
  mpi_.launch_world(hosts_for(kRanks), app, "split");
  engine_.run_until(60.0);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(split_size[static_cast<std::size_t>(r)], 3) << r;
    EXPECT_EQ(split_rank[static_cast<std::size_t>(r)], r / 2) << r;
    // Evens sum 0+2+4 = 6, odds 1+3+5 = 9.
    EXPECT_DOUBLE_EQ(group_sums[static_cast<std::size_t>(r)],
                     r % 2 == 0 ? 6.0 : 9.0)
        << r;
  }
}

TEST_F(CommOpsTest, CommSplitKeyControlsOrdering) {
  constexpr int kRanks = 3;
  std::vector<int> new_rank(kRanks, -1);
  auto app = [&](Proc& self) -> Task<> {
    const int rank = self.world_rank();
    // Reverse the order: higher old rank -> lower key.
    const Comm reversed =
        co_await self.comm_split(self.world(), 0, kRanks - rank);
    new_rank[static_cast<std::size_t>(rank)] = reversed.rank_of(self.id());
  };
  mpi_.launch_world(hosts_for(kRanks), app, "rev");
  engine_.run_until(60.0);
  EXPECT_EQ(new_rank, (std::vector<int>{2, 1, 0}));
}

TEST_F(CommOpsTest, CommSplitUndefinedYieldsInvalidComm) {
  constexpr int kRanks = 3;
  std::vector<bool> valid(kRanks, true);
  auto app = [&](Proc& self) -> Task<> {
    const int rank = self.world_rank();
    const int color = rank == 0 ? kUndefined : 1;
    const Comm sub = co_await self.comm_split(self.world(), color, rank);
    valid[static_cast<std::size_t>(rank)] = sub.valid();
  };
  mpi_.launch_world(hosts_for(kRanks), app, "undef");
  engine_.run_until(60.0);
  EXPECT_FALSE(valid[0]);
  EXPECT_TRUE(valid[1]);
  EXPECT_TRUE(valid[2]);
}

TEST_F(CommOpsTest, RepeatedSplitsGetFreshContexts) {
  std::set<int> contexts;
  auto app = [&](Proc& self) -> Task<> {
    for (int round = 0; round < 3; ++round) {
      const Comm sub = co_await self.comm_split(self.world(), 0,
                                                self.world_rank());
      if (self.world_rank() == 0) {
        contexts.insert(sub.context());
      }
      co_await self.barrier(self.world());
    }
  };
  mpi_.launch_world(hosts_for(2), app, "rounds");
  engine_.run_until(60.0);
  EXPECT_EQ(contexts.size(), 3U);
}

}  // namespace
}  // namespace ars::mpi
