// Scheduler decision audit: every registered host gets a verdict, rejection
// reasons name the failing condition, and the audit surfaces both through
// Decision::candidates and as "scheduler.decision" trace events.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/registry/registry.hpp"

namespace ars::registry {
namespace {

using rules::SystemState;

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : net_(engine_) {
    for (const char* name : {"hub", "ws1", "ws2", "ws3", "ws4", "ws5"}) {
      host::HostSpec s;
      s.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, s));
      net_.attach(*hosts_.back());
    }
    tracer_.set_clock([this] { return engine_.now(); });
    Registry::Config config;
    config.policy = rules::paper_policy2();
    config.tracer = &tracer_;
    config.metrics = &metrics_;
    registry_ = std::make_unique<Registry>(*hosts_[0], net_, config);
    registry_->start();
  }

  void post(const std::string& from, const xmlproto::ProtocolMessage& m) {
    net::Message wire;
    wire.src_host = from;
    wire.dst_host = "hub";
    wire.dst_port = registry_->port();
    wire.payload = xmlproto::encode(m);
    net_.post(std::move(wire));
  }

  void register_host(const std::string& name,
                     std::uint64_t memory_bytes = 128ULL << 20) {
    xmlproto::RegisterMsg reg;
    reg.info.host = name;
    reg.info.memory_bytes = memory_bytes;
    reg.info.disk_bytes = 20ULL << 30;
    reg.info.cpu_speed = 1.0;
    reg.monitor_port = 5999;
    reg.commander_port = 6000;
    post(name, reg);
  }

  void update_host(const std::string& name, SystemState state,
                   double load1 = 0.2, int processes = 60) {
    xmlproto::UpdateMsg update;
    update.status.host = name;
    update.status.state = std::string(rules::to_string(state));
    update.status.load1 = load1;
    update.status.processes = processes;
    update.status.timestamp = engine_.now();
    post(name, update);
  }

  void register_process(const std::string& host, int pid,
                        const std::string& name,
                        const std::string& schema = "") {
    xmlproto::ProcessRegisterMsg msg;
    msg.host = host;
    msg.pid = pid;
    msg.name = name;
    msg.start_time = 0.0;
    msg.migration_enabled = true;
    msg.schema_name = schema;
    post(host, msg);
  }

  const CandidateAudit* verdict_for(const std::vector<CandidateAudit>& audit,
                                    const std::string& host) {
    for (const CandidateAudit& candidate : audit) {
      if (candidate.host == host) {
        return &candidate;
      }
    }
    return nullptr;
  }

  sim::Engine engine_;
  net::Network net_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::unique_ptr<Registry> registry_;
};

TEST_F(AuditTest, ChooseDestinationRecordsEveryVerdict) {
  // A schema whose memory floor ws3 cannot meet.
  hpcm::ApplicationSchema schema{"heavy"};
  hpcm::ResourceRequirements req;
  req.min_memory_bytes = 64ULL << 20;
  schema.set_requirements(req);
  registry_->register_schema(schema);

  register_host("ws1");                     // the (overloaded) source
  register_host("ws2");                     // busy -> not free
  register_host("ws3", /*memory=*/8 << 20); // free but too small
  register_host("ws4");                     // free and roomy -> chosen
  register_host("ws5");                     // also eligible, not first
  update_host("ws1", SystemState::kOverloaded, 2.8, 160);
  update_host("ws2", SystemState::kBusy, 1.2);
  update_host("ws3", SystemState::kFree);
  update_host("ws4", SystemState::kFree);
  update_host("ws5", SystemState::kFree);
  engine_.run_until(1.0);

  std::vector<CandidateAudit> audit;
  const auto destination =
      registry_->choose_destination("ws1", "heavy", &audit);
  ASSERT_TRUE(destination.has_value());
  EXPECT_EQ(*destination, "ws4");

  // One verdict per registered host, no duplicates.
  ASSERT_EQ(audit.size(), 5u);
  std::set<std::string> audited;
  for (const CandidateAudit& candidate : audit) {
    audited.insert(candidate.host);
  }
  EXPECT_EQ(audited.size(), 5u);

  const CandidateAudit* ws1 = verdict_for(audit, "ws1");
  ASSERT_NE(ws1, nullptr);
  EXPECT_FALSE(ws1->accepted);
  EXPECT_EQ(ws1->reason, "source host");

  const CandidateAudit* ws2 = verdict_for(audit, "ws2");
  ASSERT_NE(ws2, nullptr);
  EXPECT_FALSE(ws2->accepted);
  EXPECT_EQ(ws2->reason, "state=busy (not free)");

  const CandidateAudit* ws3 = verdict_for(audit, "ws3");
  ASSERT_NE(ws3, nullptr);
  EXPECT_FALSE(ws3->accepted);
  EXPECT_EQ(ws3->reason, "insufficient resources for schema heavy");

  const CandidateAudit* ws4 = verdict_for(audit, "ws4");
  ASSERT_NE(ws4, nullptr);
  EXPECT_TRUE(ws4->accepted);
  EXPECT_EQ(ws4->reason, "chosen (first-fit)");

  const CandidateAudit* ws5 = verdict_for(audit, "ws5");
  ASSERT_NE(ws5, nullptr);
  EXPECT_FALSE(ws5->accepted);  // eligible, but first-fit took ws4
  EXPECT_EQ(ws5->reason, "eligible (not chosen)");
}

TEST_F(AuditTest, DrainingHostIsRejectedWithReason) {
  register_host("ws1");
  register_host("ws2");
  update_host("ws1", SystemState::kOverloaded, 2.8, 160);
  update_host("ws2", SystemState::kFree);
  engine_.run_until(1.0);
  registry_->request_evacuation("ws2", "maintenance");
  engine_.run_until(2.0);

  std::vector<CandidateAudit> audit;
  const auto destination = registry_->choose_destination("ws1", "", &audit);
  EXPECT_FALSE(destination.has_value());
  const CandidateAudit* ws2 = verdict_for(audit, "ws2");
  ASSERT_NE(ws2, nullptr);
  EXPECT_EQ(ws2->reason, "draining (evacuated)");
}

TEST_F(AuditTest, ConsultProducesDecisionWithAuditAndTraceEvent) {
  register_host("ws1");
  register_host("ws2");
  register_host("ws3");
  update_host("ws1", SystemState::kOverloaded, 2.8, 160);
  update_host("ws2", SystemState::kBusy, 1.2);
  update_host("ws3", SystemState::kFree);
  register_process("ws1", 42, "tree");
  engine_.run_until(1.0);

  xmlproto::ConsultMsg consult;
  consult.host = "ws1";
  consult.reason = "overloaded for 80s";
  post("ws1", consult);
  engine_.run_until(2.0);

  ASSERT_EQ(registry_->decisions().size(), 1u);
  const Decision& decision = registry_->decisions().front();
  EXPECT_EQ(decision.destination, "ws3");
  ASSERT_EQ(decision.candidates.size(), 3u);
  EXPECT_EQ(verdict_for(decision.candidates, "ws2")->reason,
            "state=busy (not free)");
  EXPECT_EQ(verdict_for(decision.candidates, "ws3")->reason,
            "chosen (first-fit)");

  // The decision is also on the trace, with one candidate.<host> attribute
  // per scanned host.
  const obs::TraceEvent* decision_event = nullptr;
  for (const obs::TraceEvent& event : tracer_.events()) {
    if (event.name == "scheduler.decision") {
      decision_event = &event;
    }
  }
  ASSERT_NE(decision_event, nullptr);
  int candidate_attrs = 0;
  bool found_rejection = false;
  for (const obs::Attr& attr : decision_event->attrs) {
    if (attr.key.rfind("candidate.", 0) == 0) {
      ++candidate_attrs;
    }
    if (attr.key == "candidate.ws2" &&
        std::get<std::string>(attr.value) == "state=busy (not free)") {
      found_rejection = true;
    }
  }
  EXPECT_EQ(candidate_attrs, 3);
  EXPECT_TRUE(found_rejection);

  // And the scheduler.decide span + metrics recorded the consult.
  ASSERT_EQ(tracer_.spans_named("scheduler.decide").size(), 1u);
  EXPECT_DOUBLE_EQ(metrics_.counter("scheduler.consults").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics_.counter("scheduler.decisions", {{"outcome", "migrate"}})
          .value(),
      1.0);
  const obs::Histogram* latency =
      metrics_.find_histogram("scheduler.decision_latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);
  EXPECT_NEAR(latency->mean(), 0.002, 1e-9);
}

TEST_F(AuditTest, LeaseExpirationIsCountedAndTraced) {
  register_host("ws1");
  update_host("ws1", SystemState::kFree);
  engine_.run_until(1.0);
  engine_.run_until(120.0);  // default 35 s lease lapses, no heartbeats
  EXPECT_GE(metrics_.counter("registry.lease_expirations").value(), 1.0);
  bool traced = false;
  for (const obs::TraceEvent& event : tracer_.events()) {
    if (event.name == "registry.lease_expired") {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);
}

}  // namespace
}  // namespace ars::registry
