// Critical-path analyzer tests (tentpole part 2): the strict JSONL
// round-trip, transaction grouping, DAG validation, and the migration
// phase breakdown — first over a hand-built trace whose numbers are known
// exactly, then over a real autonomic-rescheduling run where every
// context-carrying event must land in exactly one valid transaction DAG.

#include "ars/obs/critpath.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/obs/tracer.hpp"

namespace ars::obs::critpath {
namespace {

/// A miniature but complete transaction: consult -> decision span ->
/// migration span with all six phase spans, with exact timings.
struct SyntheticTrace {
  Tracer tracer;
  double now = 0.0;
  std::uint64_t txn = 0;
  std::uint64_t decide = 0;
  std::uint64_t migration = 0;

  SyntheticTrace() {
    tracer.set_clock([this] { return now; });
    txn = tracer.new_txn();
    TraceCtx ctx{txn, 0};

    Attrs root{{"reason", "overloaded for 63.0s"}};
    stamp(root, ctx);
    tracer.instant("monitor.consult", "monitor", "ws1", std::move(root));

    now = 1.0;
    Attrs decide_attrs;
    stamp(decide_attrs, ctx);
    decide = tracer.begin_span("registry.decide", "registry", "hub",
                               std::move(decide_attrs));
    now = 2.0;
    tracer.end_span(decide, {{"dest", "ws4"}});

    Attrs mig_attrs{{"source", "ws1"}, {"dest", "ws4"}};
    stamp(mig_attrs, ctx.child_of(decide));
    migration = tracer.begin_span("migration", "hpcm", "test_tree.0",
                                  std::move(mig_attrs));
    const TraceCtx phase_ctx = ctx.child_of(migration);
    phase("migration.spawn", 2.0, 3.0, phase_ctx);
    phase("migration.collect", 3.0, 4.0, phase_ctx);
    phase("migration.eager", 4.0, 6.0, phase_ctx);
    phase("migration.ack", 6.0, 6.5, phase_ctx);
    // transfer and restore overlap (post-commit background work).
    const std::uint64_t transfer = begin_at("migration.transfer", 6.5,
                                            phase_ctx);
    const std::uint64_t restore = begin_at("migration.restore", 6.5,
                                           phase_ctx);
    now = 8.0;
    tracer.end_span(restore);
    now = 9.0;
    tracer.end_span(transfer);
    now = 10.0;
    tracer.end_span(migration, {{"outcome", "committed"}});
  }

  std::uint64_t begin_at(const char* name, double at, const TraceCtx& ctx) {
    now = at;
    Attrs attrs;
    stamp(attrs, ctx);
    return tracer.begin_span(name, "hpcm", "test_tree.0", std::move(attrs));
  }

  void phase(const char* name, double from, double to, const TraceCtx& ctx) {
    const std::uint64_t id = begin_at(name, from, ctx);
    now = to;
    tracer.end_span(id);
  }
};

TEST(CritpathParse, JsonlRoundTripsThroughStrictParser) {
  SyntheticTrace synth;
  const auto events = parse_jsonl(synth.tracer.to_jsonl());
  ASSERT_TRUE(events.has_value()) << events.error().to_string();
  // 1 instant + 8 spans (decide, migration, 6 phases) x begin/end.
  ASSERT_EQ(events->size(), 17u);

  const Event& root = events->front();
  EXPECT_EQ(root.kind, Event::Kind::kInstant);
  EXPECT_EQ(root.name, "monitor.consult");
  EXPECT_EQ(root.category, "monitor");
  EXPECT_EQ(root.track, "ws1");
  EXPECT_DOUBLE_EQ(root.t, 0.0);
  EXPECT_EQ(root.txn, synth.txn);
  EXPECT_EQ(root.pspan, 0u);

  // The migration begin carries its causal parent (the decision span).
  bool saw_migration_begin = false;
  for (const Event& event : *events) {
    if (event.kind == Event::Kind::kBegin && event.name == "migration") {
      saw_migration_begin = true;
      EXPECT_EQ(event.txn, synth.txn);
      EXPECT_EQ(event.pspan, synth.decide);
      EXPECT_EQ(event.span, synth.migration);
    }
  }
  EXPECT_TRUE(saw_migration_begin);
}

TEST(CritpathParse, MalformedLineFailsTheWholeParse) {
  EXPECT_TRUE(parse_jsonl("").has_value());
  EXPECT_TRUE(parse_jsonl("\n\n").has_value());
  EXPECT_FALSE(parse_jsonl("{\"t\":1,").has_value());
  EXPECT_FALSE(
      parse_jsonl("{\"t\":0,\"kind\":\"instant\",\"name\":\"a\"}\nnot json\n")
          .has_value());
}

TEST(CritpathGroup, ReconstructsOneTransactionWithExactPhaseBreakdown) {
  SyntheticTrace synth;
  const auto events = parse_jsonl(synth.tracer.to_jsonl());
  ASSERT_TRUE(events.has_value());
  const auto txns = group_transactions(*events);
  ASSERT_EQ(txns.size(), 1u);

  const Transaction& txn = txns.front();
  EXPECT_EQ(txn.txn, synth.txn);
  EXPECT_EQ(txn.root_name, "monitor.consult");
  EXPECT_EQ(txn.spans.size(), 8u);
  EXPECT_TRUE(txn.has_migration);
  EXPECT_EQ(txn.outcome, "committed");
  EXPECT_DOUBLE_EQ(txn.migration_s, 8.0);   // [2, 10]
  EXPECT_DOUBLE_EQ(txn.phase_s.at("init"), 1.0);
  EXPECT_DOUBLE_EQ(txn.phase_s.at("collect"), 1.0);
  EXPECT_DOUBLE_EQ(txn.phase_s.at("eager"), 2.0);
  EXPECT_DOUBLE_EQ(txn.phase_s.at("ack"), 0.5);
  EXPECT_DOUBLE_EQ(txn.phase_s.at("transfer"), 2.5);
  EXPECT_DOUBLE_EQ(txn.phase_s.at("restore"), 1.5);
  EXPECT_DOUBLE_EQ(txn.freeze_s, 4.5);      // init+collect+eager+ack

  // Phases cover [2, 9] of the [2, 10] migration: 1 s unaccounted.
  EXPECT_NEAR(coverage_gap_s(txn), 1.0, 1e-9);

  const Validation verdict = validate(txn);
  EXPECT_TRUE(verdict.ok) << verdict.problems.front();
}

TEST(CritpathGroup, PrecopyRoundsAreSplitOutOfTheFreezeWindow) {
  // A pre-copy migration: the overlapped rounds run under one
  // "migration.precopy" span [2, 7] while the application computes; only
  // the final collect/eager/ack [7, 7.7] stop the world.  There is no
  // migration.spawn span — init happens inside round 0.
  Tracer tracer;
  double now = 0.0;
  tracer.set_clock([&now] { return now; });
  const std::uint64_t txn = tracer.new_txn();
  const TraceCtx ctx{txn, 0};
  Attrs mig_attrs{{"source", "ws1"}, {"dest", "ws2"}};
  stamp(mig_attrs, ctx);
  now = 2.0;
  const std::uint64_t migration =
      tracer.begin_span("migration", "hpcm", "app.0", std::move(mig_attrs));
  const TraceCtx phase_ctx = ctx.child_of(migration);
  const auto phase = [&](const char* name, double from, double to) {
    now = from;
    Attrs attrs;
    stamp(attrs, phase_ctx);
    const auto id = tracer.begin_span(name, "hpcm", "app.0", std::move(attrs));
    now = to;
    tracer.end_span(id);
  };
  phase("migration.precopy", 2.0, 7.0);
  phase("migration.collect", 7.0, 7.2);
  phase("migration.eager", 7.2, 7.6);
  phase("migration.ack", 7.6, 7.7);
  phase("migration.transfer", 7.7, 7.8);
  phase("migration.restore", 7.7, 7.75);
  now = 7.8;
  tracer.end_span(migration, {{"outcome", "committed"}});

  const auto events = parse_jsonl(tracer.to_jsonl());
  ASSERT_TRUE(events.has_value());
  const auto txns = group_transactions(*events);
  ASSERT_EQ(txns.size(), 1u);
  const Transaction& t = txns.front();
  ASSERT_TRUE(t.has_migration);
  EXPECT_DOUBLE_EQ(t.phase_s.at("precopy"), 5.0);
  // The freeze window is only the stop-the-world tail: the 5 s of
  // overlapped rounds must NOT be charged to it.
  EXPECT_NEAR(t.freeze_s, 0.7, 1e-9);
  EXPECT_EQ(t.phase_s.count("init"), 0u);
  // The precopy span still explains the migration window for the
  // --check-sum-tolerance coverage check.
  EXPECT_NEAR(coverage_gap_s(t), 0.0, 1e-9);
  EXPECT_TRUE(validate(t).ok);

  Report report;
  accumulate(report, txns);
  EXPECT_NE(format_report(report).find("precopy"), std::string::npos);
}

TEST(CritpathValidate, OrphanParentSpanIsReported) {
  Tracer tracer;
  const std::uint64_t txn = tracer.new_txn();
  Attrs attrs;
  stamp(attrs, TraceCtx{txn, /*parent_span=*/999});  // no such span
  const auto id = tracer.begin_span("registry.decide", "registry", "hub",
                                    std::move(attrs));
  tracer.end_span(id);

  const auto events = parse_jsonl(tracer.to_jsonl());
  ASSERT_TRUE(events.has_value());
  const auto txns = group_transactions(*events);
  ASSERT_EQ(txns.size(), 1u);
  const Validation verdict = validate(txns.front());
  EXPECT_FALSE(verdict.ok);
  ASSERT_FALSE(verdict.problems.empty());
  EXPECT_NE(verdict.problems.front().find("unknown parent span"),
            std::string::npos)
      << verdict.problems.front();
}

TEST(CritpathValidate, TwoMigrationSpansInOneTransactionAreReported) {
  Tracer tracer;
  const std::uint64_t txn = tracer.new_txn();
  const TraceCtx ctx{txn, 0};
  for (int i = 0; i < 2; ++i) {
    Attrs attrs;
    stamp(attrs, ctx);
    const auto id =
        tracer.begin_span("migration", "hpcm", "app.0", std::move(attrs));
    tracer.end_span(id, {{"outcome", "committed"}});
  }
  const auto events = parse_jsonl(tracer.to_jsonl());
  ASSERT_TRUE(events.has_value());
  const auto txns = group_transactions(*events);
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_FALSE(validate(txns.front()).ok);
}

TEST(CritpathStats, NearestRankPercentilesAccumulateAcrossTransactions) {
  SyntheticTrace synth;
  const auto events = parse_jsonl(synth.tracer.to_jsonl());
  ASSERT_TRUE(events.has_value());
  Report report;
  accumulate(report, group_transactions(*events));
  accumulate(report, group_transactions(*events));  // "second seed"

  EXPECT_EQ(report.transactions, 2);
  EXPECT_EQ(report.migrations, 2);
  EXPECT_EQ(report.outcomes.at("committed"), 2);
  EXPECT_EQ(report.phases.at("freeze").samples.size(), 2u);
  EXPECT_DOUBLE_EQ(report.phases.at("freeze").percentile(50.0), 4.5);
  EXPECT_DOUBLE_EQ(report.phases.at("total").max(), 8.0);
  EXPECT_DOUBLE_EQ(report.phases.at("eager").percentile(99.0), 2.0);

  // The human table and the JSON form both carry the phase rows.
  const std::string table = format_report(report);
  EXPECT_NE(table.find("freeze"), std::string::npos);
  const std::string json = report_to_json(report).dump();
  EXPECT_NE(json.find("\"migrations\":2"), std::string::npos);
}

// -- end-to-end: a real autonomic migration forms valid DAGs ---------------

TEST(CritpathEndToEnd, ScenarioTraceReconstructsIntoValidTransactionDags) {
  auto config = core::make_cluster(3, rules::paper_policy2());
  core::ReschedulerRuntime runtime{std::move(config)};
  runtime.start_rescheduler();

  apps::TestTree::Params params;
  params.levels = 16;
  apps::TestTree::Result result;
  runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                     "test_tree", apps::TestTree::schema(params));
  host::CpuHog hog{runtime.host("ws1"),
                   {.threads = 3, .name = "additional"}};
  runtime.engine().schedule_at(20.0, [&] { hog.start(); });
  runtime.run_until(1200.0);
  ASSERT_TRUE(result.finished);
  ASSERT_EQ(result.migrations, 1);

  const auto events = parse_jsonl(runtime.tracer().to_jsonl());
  ASSERT_TRUE(events.has_value()) << events.error().to_string();
  const auto txns = group_transactions(*events);
  ASSERT_FALSE(txns.empty());

  // Every transaction's DAG must validate: no orphan pspan references, no
  // parent cycles, at most one migration attempt per transaction.
  for (const Transaction& txn : txns) {
    const Validation verdict = validate(txn);
    EXPECT_TRUE(verdict.ok)
        << "txn " << txn.txn << ": " << verdict.problems.front();
  }

  // No tagged event is orphaned: grouping accounts for every non-end event
  // that carries a txn (ends are attributed through their span ids).
  std::size_t tagged = 0;
  for (const Event& event : *events) {
    if (event.kind != Event::Kind::kEnd && event.txn != 0) {
      ++tagged;
    }
  }
  std::size_t grouped = 0;
  for (const Transaction& txn : txns) {
    for (const Event& event : txn.events) {
      if (event.kind != Event::Kind::kEnd) {
        ++grouped;
      }
    }
  }
  EXPECT_EQ(grouped, tagged);

  // Exactly one transaction carries the migration, rooted at the consult
  // that triggered it, and its phases account for the migration window.
  std::size_t migrations = 0;
  for (const Transaction& txn : txns) {
    if (!txn.has_migration) {
      continue;
    }
    ++migrations;
    EXPECT_EQ(txn.root_name, "monitor.consult");
    EXPECT_EQ(txn.outcome, "committed");
    EXPECT_GT(txn.freeze_s, 0.0);
    EXPECT_GT(txn.migration_s, 0.0);
    EXPECT_LE(coverage_gap_s(txn), 0.05 * txn.migration_s)
        << "phase spans leave unexplained time in the migration window";
  }
  EXPECT_EQ(migrations, 1u);
}

}  // namespace
}  // namespace ars::obs::critpath
