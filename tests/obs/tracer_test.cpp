// Tracer behavior: span identity across interleaving, event ordering, ring
// eviction, the disabled path, log forwarding, and both exporters (the
// Chrome trace_event document is parsed back with the obs JSON parser).

#include "ars/obs/tracer.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "ars/obs/json.hpp"
#include "ars/support/log.hpp"

namespace ars::obs {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  TracerTest() { tracer_.set_clock([this] { return now_; }); }

  Tracer tracer_;
  double now_ = 0.0;
};

TEST_F(TracerTest, InstantEventsCarryClockAndAttrs) {
  now_ = 1.5;
  tracer_.instant("tick", "test", "ws1", {{"n", 7}, {"ok", true}});
  ASSERT_EQ(tracer_.events().size(), 1u);
  const TraceEvent& event = tracer_.events().front();
  EXPECT_EQ(event.kind, EventKind::kInstant);
  EXPECT_DOUBLE_EQ(event.t, 1.5);
  EXPECT_EQ(event.name, "tick");
  EXPECT_EQ(event.track, "ws1");
  ASSERT_EQ(event.attrs.size(), 2u);
  EXPECT_DOUBLE_EQ(std::get<double>(event.attrs[0].value), 7.0);
  EXPECT_TRUE(std::get<bool>(event.attrs[1].value));
}

TEST_F(TracerTest, NestedAndInterleavedSpansKeepIdentity) {
  now_ = 10.0;
  const auto outer = tracer_.begin_span("outer", "test", "ws1");
  now_ = 11.0;
  const auto inner = tracer_.begin_span("inner", "test", "ws1");
  now_ = 12.0;
  const auto other = tracer_.begin_span("other", "test", "ws2");
  EXPECT_EQ(tracer_.open_spans(), 3u);

  // Close out of order: inner, outer, other.
  now_ = 13.0;
  tracer_.end_span(inner);
  now_ = 14.0;
  tracer_.end_span(outer, {{"result", "done"}});
  now_ = 15.0;
  tracer_.end_span(other);
  EXPECT_EQ(tracer_.open_spans(), 0u);

  const auto spans = tracer_.completed_spans();
  ASSERT_EQ(spans.size(), 3u);  // in end order
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_DOUBLE_EQ(spans[0].begin, 11.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 13.0);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_DOUBLE_EQ(spans[1].duration(), 4.0);
  ASSERT_EQ(spans[1].attrs.size(), 1u);  // end attrs folded in
  EXPECT_EQ(spans[1].attrs[0].key, "result");
  EXPECT_EQ(spans[2].track, "ws2");

  const auto named = tracer_.spans_named("outer");
  ASSERT_EQ(named.size(), 1u);
  EXPECT_DOUBLE_EQ(named[0].begin, 10.0);
}

TEST_F(TracerTest, EndSpanWithUnknownOrReusedIdIsANoOp) {
  const auto id = tracer_.begin_span("s", "test", "ws1");
  tracer_.end_span(9999);  // unknown
  tracer_.end_span(0);     // disabled-tracer sentinel
  tracer_.end_span(id);
  tracer_.end_span(id);  // double close
  EXPECT_EQ(tracer_.events().size(), 2u);
  EXPECT_EQ(tracer_.completed_spans().size(), 1u);
}

TEST_F(TracerTest, RingBoundEvictsOldestAndCountsDrops) {
  Tracer small{Tracer::Options{.capacity = 4, .enabled = true}};
  small.set_clock([this] { return now_; });
  for (int i = 0; i < 10; ++i) {
    small.instant("e" + std::to_string(i), "test", "ws1");
  }
  EXPECT_EQ(small.events().size(), 4u);
  EXPECT_EQ(small.dropped(), 6u);
  EXPECT_EQ(small.events().front().name, "e6");
  small.clear();
  EXPECT_EQ(small.events().size(), 0u);
  EXPECT_EQ(small.dropped(), 0u);
}

TEST_F(TracerTest, EvictedBeginLeavesEndUnmatched) {
  Tracer small{Tracer::Options{.capacity = 2, .enabled = true}};
  const auto id = small.begin_span("victim", "test", "ws1");
  small.instant("a", "test", "ws1");
  small.instant("b", "test", "ws1");  // begin event evicted here
  small.end_span(id);
  EXPECT_TRUE(small.completed_spans().empty());
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  tracer_.set_enabled(false);
  tracer_.instant("e", "test", "ws1");
  const auto id = tracer_.begin_span("s", "test", "ws1");
  EXPECT_EQ(id, 0u);
  tracer_.end_span(id);
  EXPECT_TRUE(tracer_.events().empty());
  EXPECT_EQ(tracer_.open_spans(), 0u);
}

TEST_F(TracerTest, JsonlExportIsOneValidObjectPerLine) {
  now_ = 2.0;
  const auto id = tracer_.begin_span("s", "test", "ws1", {{"k", "v"}});
  now_ = 3.0;
  tracer_.end_span(id);
  tracer_.instant("i", "test", "ws2", {{"x", 1.5}});

  std::istringstream lines{tracer_.to_jsonl()};
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const auto doc = json_parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_NE(doc->find("t"), nullptr);
    EXPECT_NE(doc->find("kind"), nullptr);
    EXPECT_NE(doc->find("attrs"), nullptr);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST_F(TracerTest, ChromeTraceRoundTripsAndPairsAsyncEvents) {
  now_ = 1.0;
  const auto id = tracer_.begin_span("migration", "hpcm", "proc/tree");
  now_ = 2.5;
  tracer_.instant("checkpoint", "hpcm", "ws1");
  now_ = 4.0;
  tracer_.end_span(id, {{"bytes", 1024}});

  const auto doc = json_parse(tracer_.to_chrome_trace());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int metadata = 0;
  int begins = 0;
  int ends = 0;
  int instants = 0;
  std::set<std::string> thread_names;
  std::string begin_id;
  std::string end_id;
  for (const JsonValue& event : events->as_array()) {
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      if (event.find("name")->as_string() == "thread_name") {
        thread_names.insert(
            event.find("args")->find("name")->as_string());
      }
      continue;
    }
    if (ph == "b") {
      ++begins;
      begin_id = event.find("id")->as_string();
      EXPECT_DOUBLE_EQ(event.find("ts")->as_number(), 1.0e6);  // micros
    } else if (ph == "e") {
      ++ends;
      end_id = event.find("id")->as_string();
      EXPECT_DOUBLE_EQ(
          event.find("args")->find("bytes")->as_number(), 1024.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(event.find("s")->as_string(), "t");
    }
    EXPECT_DOUBLE_EQ(event.find("pid")->as_number(), 1.0);
    EXPECT_NE(event.find("tid"), nullptr);
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(begin_id, end_id);  // async pair shares the id
  EXPECT_GE(metadata, 3);       // process_name + 2 thread_names
  EXPECT_TRUE(thread_names.contains("proc/tree"));
  EXPECT_TRUE(thread_names.contains("ws1"));
}

TEST_F(TracerTest, LogBridgeMirrorsLogRecords) {
  auto& logger = support::Logger::global();
  const auto saved_level = logger.level();
  logger.set_level(support::LogLevel::kInfo);
  logger.set_sink(
      [](support::LogLevel, std::string_view, std::string_view, double) {});
  logger.set_clock([] { return 42.0; });
  {
    LogBridge bridge{tracer_};
    ARS_LOG_INFO("hpcm", "migrating now");
    ARS_LOG_DEBUG("hpcm", "filtered out");
  }
  ARS_LOG_INFO("hpcm", "bridge removed");
  logger.set_clock(nullptr);
  logger.set_sink(nullptr);
  logger.set_level(saved_level);

  ASSERT_EQ(tracer_.events().size(), 1u);
  const TraceEvent& event = tracer_.events().front();
  EXPECT_EQ(event.name, "log");
  EXPECT_EQ(event.track, "hpcm");
  EXPECT_DOUBLE_EQ(event.t, 42.0);
  ASSERT_EQ(event.attrs.size(), 2u);
  EXPECT_EQ(std::get<std::string>(event.attrs[0].value), "INFO");
  EXPECT_EQ(std::get<std::string>(event.attrs[1].value), "migrating now");
}

TEST(MergedJsonlTest, SingleTracerMergeIsByteIdenticalToToJsonl) {
  Tracer tracer;
  double now = 0.0;
  tracer.set_clock([&now] { return now; });
  now = 1.0;
  tracer.instant("a", "test", "ws1", {{"n", 1}});
  const std::uint64_t span = tracer.begin_span("work", "test", "ws1");
  now = 2.5;
  tracer.end_span(span, {{"ok", true}});

  EXPECT_EQ(merged_jsonl({&tracer}), tracer.to_jsonl());
}

TEST(MergedJsonlTest, OrdersByTimestampThenShardThenRecordingOrder) {
  Tracer shard0;
  Tracer shard1;
  double t0 = 0.0;
  double t1 = 0.0;
  shard0.set_clock([&t0] { return t0; });
  shard1.set_clock([&t1] { return t1; });

  t1 = 1.0;
  shard1.instant("s1-first", "test", "b");
  shard1.instant("s1-second", "test", "b");  // same stamp: recording order
  t0 = 1.0;
  shard0.instant("s0-tied", "test", "a");  // ties break by shard index
  t0 = 2.0;
  shard0.instant("s0-late", "test", "a");

  const std::string merged = merged_jsonl({&shard0, &shard1});
  const auto pos = [&merged](const char* name) {
    const auto at = merged.find(name);
    EXPECT_NE(at, std::string::npos) << name;
    return at;
  };
  EXPECT_LT(pos("s0-tied"), pos("s1-first"));
  EXPECT_LT(pos("s1-first"), pos("s1-second"));
  EXPECT_LT(pos("s1-second"), pos("s0-late"));
}

TEST(MergedJsonlTest, SkipsNullShardsAndMergesEmptyToEmpty) {
  Tracer tracer;
  tracer.instant("only", "test", "ws1");
  EXPECT_EQ(merged_jsonl({nullptr, &tracer}), tracer.to_jsonl());
  EXPECT_EQ(merged_jsonl({}), "");
}

}  // namespace
}  // namespace ars::obs
