// The obs JSON value/parser: strict RFC 8259 acceptance, escape handling,
// and dump() round-trips.

#include "ars/obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ars::obs {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(json_parse("null")->is_null());
  EXPECT_TRUE(json_parse("true")->as_bool());
  EXPECT_FALSE(json_parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-2.5e3")->as_number(), -2500.0);
  EXPECT_EQ(json_parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  const auto doc = json_parse(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_TRUE(doc->find("c")->find("d")->is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  const auto doc = json_parse(R"("line\nbreak \"q\" back\\slash A")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "line\nbreak \"q\" back\\slash A");
}

TEST(JsonParseTest, UnicodeEscapeEncodesUtf8) {
  const auto doc = json_parse("\"\\u00e9\"");  // é
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse("[1,]").has_value());
  EXPECT_FALSE(json_parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(json_parse("'single'").has_value());
  EXPECT_FALSE(json_parse("nul").has_value());
  EXPECT_FALSE(json_parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(json_parse("{\"a\" 1}").has_value());
}

TEST(JsonParseTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) {
    deep += '[';
  }
  EXPECT_FALSE(json_parse(deep).has_value());
}

TEST(JsonDumpTest, RoundTripsThroughParse) {
  JsonObject object;
  object["name"] = "migration";
  object["count"] = 3;
  object["ratio"] = 0.125;
  object["ok"] = true;
  object["nothing"] = nullptr;
  object["list"] = JsonArray{1, "two", false};
  const JsonValue original{object};

  const auto reparsed = json_parse(original.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), original.dump());
  EXPECT_EQ(reparsed->find("name")->as_string(), "migration");
  EXPECT_DOUBLE_EQ(reparsed->find("ratio")->as_number(), 0.125);
}

TEST(JsonEscapeTest, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonNumberTest, IntegralAndFractionalFormatting) {
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-120.0), "-120");
  const auto parsed = json_parse(json_number(0.1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->as_number(), 0.1);  // full round-trip precision
  // Non-finite values are not representable in JSON; the exporters emit
  // null instead of producing an unparseable document.
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

}  // namespace
}  // namespace ars::obs
