// End-to-end observability: drive the quickstart scenario (overload ws1,
// autonomic migration to a free host) through ReschedulerRuntime and assert
// the trace contains every migration phase span, the scheduler decision
// audit, monitor state transitions, commander signal delivery, and that the
// Chrome trace export round-trips through the obs JSON parser.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/obs/json.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"
#include "ars/support/log.hpp"

namespace ars::core {
namespace {

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The LogBridge only mirrors records the level filter admits; HPCM
    // narrates migrations at INFO.
    saved_level_ = support::Logger::global().level();
    support::Logger::global().set_level(support::LogLevel::kInfo);
  }

  void TearDown() override {
    support::Logger::global().set_level(saved_level_);
  }

  // One full autonomic-rescheduling run, instrumented end to end.
  void run_scenario() {
    auto config = make_cluster(3, rules::paper_policy2());
    config.forward_logs_to_trace = true;
    runtime_ = std::make_unique<ReschedulerRuntime>(std::move(config));
    runtime_->start_rescheduler();

    apps::TestTree::Params params;
    params.levels = 16;
    runtime_->launch_app("ws1", apps::TestTree::make(params, &result_),
                         "test_tree", apps::TestTree::schema(params));
    hog_ = std::make_unique<host::CpuHog>(
        runtime_->host("ws1"),
        host::CpuHog::Options{.threads = 3, .name = "additional"});
    runtime_->engine().schedule_at(20.0, [this] { hog_->start(); });
    runtime_->run_until(1200.0);
    ASSERT_TRUE(result_.finished);
    ASSERT_EQ(result_.migrations, 1);
  }

  std::unique_ptr<ReschedulerRuntime> runtime_;
  std::unique_ptr<host::CpuHog> hog_;
  apps::TestTree::Result result_;
  support::LogLevel saved_level_ = support::LogLevel::kWarn;
};

TEST_F(ObsIntegrationTest, FullMigrationEmitsEveryPhaseSpan) {
  run_scenario();
  const obs::Tracer& tracer = runtime_->tracer();

  // Each HPCM phase produced >= 1 *completed* span for the migrated process.
  for (const char* phase :
       {"migration.signal", "migration.poll_point", "migration",
        "migration.spawn", "migration.collect", "migration.restore"}) {
    const auto spans = tracer.spans_named(phase);
    ASSERT_FALSE(spans.empty()) << phase;
    // The track is the MPI process name: app name + rank suffix.
    EXPECT_EQ(spans.front().track, "test_tree.0") << phase;
    EXPECT_GE(spans.front().duration(), 0.0) << phase;
  }

  // The envelope span names source and destination, and agrees with the
  // middleware's own migration history.
  const auto envelope = tracer.spans_named("migration");
  ASSERT_EQ(envelope.size(), 1u);
  std::string source;
  std::string dest;
  for (const obs::Attr& attr : envelope.front().attrs) {
    if (attr.key == "source") {
      source = std::get<std::string>(attr.value);
    } else if (attr.key == "dest") {
      dest = std::get<std::string>(attr.value);
    }
  }
  ASSERT_EQ(runtime_->middleware().history().size(), 1u);
  const auto& timeline = runtime_->middleware().history().front();
  EXPECT_EQ(source, timeline.source);
  EXPECT_EQ(dest, timeline.destination);
  EXPECT_EQ(source, "ws1");
  EXPECT_NE(dest, "ws1");

  // The phases nest inside the envelope.
  const auto spawn = tracer.spans_named("migration.spawn");
  EXPECT_GE(spawn.front().begin, envelope.front().begin);
  EXPECT_LE(spawn.front().end, envelope.front().end + 1e-9);

  // The destination resumed the process.
  bool resumed = false;
  for (const obs::TraceEvent& event : tracer.events()) {
    if (event.name == "migration.resumed") {
      resumed = true;
    }
  }
  EXPECT_TRUE(resumed);
}

TEST_F(ObsIntegrationTest, SchedulerMonitorAndCommanderAreOnTheTrace) {
  run_scenario();
  const obs::Tracer& tracer = runtime_->tracer();

  // At least one scheduler decision, auditing every scanned candidate.
  const obs::TraceEvent* decision = nullptr;
  bool transition_to_overloaded = false;
  bool commander_signal = false;
  bool bridged_log = false;
  for (const obs::TraceEvent& event : tracer.events()) {
    if (event.name == "scheduler.decision") {
      // Later consults find nothing left to migrate ("no-process"); the
      // interesting record is the one that picked a destination.
      for (const obs::Attr& attr : event.attrs) {
        if (attr.key == "kind" &&
            std::get<std::string>(attr.value) == "migrate") {
          decision = &event;
        }
      }
    } else if (event.name == "monitor.state_transition") {
      for (const obs::Attr& attr : event.attrs) {
        if (attr.key == "to" &&
            std::get<std::string>(attr.value) == "overloaded") {
          transition_to_overloaded = true;
        }
      }
    } else if (event.name == "commander.signal") {
      commander_signal = true;
    } else if (event.name == "log") {
      bridged_log = true;  // LogBridge mirrored ARS_LOG_* records
    }
  }
  ASSERT_NE(decision, nullptr);
  int candidates = 0;
  bool rejected_with_reason = false;
  std::string destination;
  for (const obs::Attr& attr : decision->attrs) {
    if (attr.key.rfind("candidate.", 0) == 0) {
      ++candidates;
      const auto& reason = std::get<std::string>(attr.value);
      if (reason.rfind("chosen", 0) != 0) {
        rejected_with_reason = !reason.empty();
      }
    } else if (attr.key == "destination") {
      destination = std::get<std::string>(attr.value);
    }
  }
  EXPECT_EQ(candidates, 3);  // every registered host got a verdict
  EXPECT_TRUE(rejected_with_reason);
  EXPECT_EQ(destination, runtime_->middleware().history().front().destination);
  EXPECT_TRUE(transition_to_overloaded);
  EXPECT_TRUE(commander_signal);
  EXPECT_TRUE(bridged_log);
  EXPECT_FALSE(tracer.spans_named("scheduler.decide").empty());
}

TEST_F(ObsIntegrationTest, MetricsCoverTheWholeLifecycle) {
  run_scenario();
  obs::MetricsRegistry& metrics = runtime_->metrics();

  EXPECT_GE(metrics.counter("migration.requests").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("migration.completed").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("migration.failures").value(), 0.0);
  EXPECT_GE(metrics.counter("scheduler.consults").value(), 1.0);
  EXPECT_GE(
      metrics.counter("scheduler.decisions", {{"outcome", "migrate"}}).value(),
      1.0);
  EXPECT_GE(metrics.counter("monitor.consults_sent").value(), 1.0);
  EXPECT_GE(metrics.counter("commander.commands_received").value(), 1.0);
  EXPECT_GE(
      metrics.counter("rules.state_transitions", {{"to", "overloaded"}})
          .value(),
      1.0);

  const obs::Histogram* total = metrics.find_histogram("migration.total_time");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 1u);
  EXPECT_GT(total->mean(), 0.0);
  const obs::Histogram* bytes = metrics.find_histogram("migration.data_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GT(bytes->sum(), 0.0);

  // Both exporters stay well-formed on real data.
  const std::string prom = metrics.to_prometheus();
  EXPECT_NE(prom.find("migration_completed 1\n"), std::string::npos);
  EXPECT_TRUE(obs::json_parse(metrics.to_json()).has_value());
}

TEST_F(ObsIntegrationTest, ChromeTraceExportRoundTripsWithMigrationStory) {
  run_scenario();
  const auto doc = obs::json_parse(runtime_->tracer().to_chrome_trace());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<std::string> begun;
  std::set<std::string> ended;
  bool decision_with_candidates = false;
  for (const obs::JsonValue& event : events->as_array()) {
    const std::string& ph = event.find("ph")->as_string();
    const std::string& name = event.find("name")->as_string();
    if (ph == "b") {
      begun.insert(name);
    } else if (ph == "e") {
      ended.insert(name);
    } else if (ph == "i" && name == "scheduler.decision") {
      const obs::JsonValue* args = event.find("args");
      ASSERT_NE(args, nullptr);
      int candidates = 0;
      for (const auto& [key, value] : args->as_object()) {
        if (key.rfind("candidate.", 0) == 0 && value.is_string()) {
          ++candidates;
        }
      }
      decision_with_candidates |= candidates == 3;
    }
  }
  for (const char* phase :
       {"migration.signal", "migration.poll_point", "migration",
        "migration.spawn", "migration.collect", "migration.restore"}) {
    EXPECT_TRUE(begun.contains(phase)) << phase;
    EXPECT_TRUE(ended.contains(phase)) << phase;
  }
  EXPECT_TRUE(decision_with_candidates);
}

}  // namespace
}  // namespace ars::core
