// Metrics registry: instrument identity by (name, labels), histogram
// bucket/percentile math, and the Prometheus/JSON exporters.

#include "ars/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ars/obs/json.hpp"

namespace ars::obs {
namespace {

TEST(CounterGaugeTest, BasicArithmetic) {
  Counter c;
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);

  Gauge g;
  g.set(10.0);
  g.add(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  registry.counter("migration.requests").inc();
  registry.counter("migration.requests").inc();
  EXPECT_DOUBLE_EQ(registry.counter("migration.requests").value(), 2.0);

  // Different label sets are distinct series under one name.
  registry.counter("rules.state_transitions", {{"to", "busy"}}).inc();
  registry.counter("rules.state_transitions", {{"to", "free"}}).inc(3.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("rules.state_transitions", {{"to", "busy"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("rules.state_transitions", {{"to", "free"}}).value(),
      3.0);
  EXPECT_EQ(registry.series_count(), 3u);

  EXPECT_NE(registry.find_counter("migration.requests"), nullptr);
  EXPECT_EQ(registry.find_counter("migration.requests", {{"to", "busy"}}),
            nullptr);
  EXPECT_EQ(registry.find_gauge("migration.requests"), nullptr);
}

TEST(HistogramTest, BucketAssignmentIsUpperBoundInclusive) {
  Histogram h{{1.0, 10.0, 100.0}};
  h.observe(1.0);    // first bucket (le=1)
  h.observe(1.001);  // second bucket
  h.observe(50.0);   // third bucket
  h.observe(1000.0); // +Inf
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1052.001);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, QuantilesInterpolateWithinTheWinningBucket) {
  Histogram h{{10.0, 20.0, 30.0, 40.0}};
  // 100 observations spread uniformly: 25 per finite bucket.
  for (int bucket = 0; bucket < 4; ++bucket) {
    for (int i = 0; i < 25; ++i) {
      h.observe(bucket * 10.0 + 5.0);
    }
  }
  // p50 -> target 50 of 100; cumulative hits 50 at the end of the second
  // bucket (10, 20], so interpolation lands on its upper edge.
  EXPECT_NEAR(h.quantile(0.50), 20.0, 1e-9);
  // p25 -> end of the first bucket.  Its lower edge is min()=5.
  EXPECT_NEAR(h.quantile(0.25), 10.0, 1e-9);
  // p95 -> 95 of 100: 20 of 25 through the last finite bucket (30, 40],
  // interpolating to 38 -- but no estimate may exceed the largest actual
  // observation, so the answer clamps to max() = 35.
  EXPECT_NEAR(h.quantile(0.95), 35.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.p50(), h.quantile(0.50));
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);

  // Everything in the +Inf bucket: the best point estimate is the largest
  // observation, whatever the quantile.
  Histogram overflow{{1.0}};
  overflow.observe(50.0);
  overflow.observe(70.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 70.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.99), 70.0);

  // A single observation answers every quantile with itself.
  Histogram single{{10.0, 20.0}};
  single.observe(15.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.01), single.quantile(0.99));
  EXPECT_LE(single.quantile(0.5), 20.0);
  EXPECT_GE(single.quantile(0.5), 15.0);
}

TEST(HistogramTest, UnsortedBoundsAreNormalized) {
  Histogram h{{100.0, 1.0, 10.0, 10.0}};
  ASSERT_EQ(h.bounds().size(), 3u);  // sorted, deduplicated
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 100.0);
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("migration.requests").inc(2.0);
  registry.gauge("scheduler.hosts-known").set(4.0);
  auto& h = registry.histogram("migration.total_time", {}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE migration_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("migration_requests 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scheduler_hosts_known gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("scheduler_hosts_known 4\n"), std::string::npos);
  // Histogram buckets are cumulative and close with +Inf, _sum, _count.
  EXPECT_NE(text.find("migration_total_time_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("migration_total_time_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("migration_total_time_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("migration_total_time_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("migration_total_time_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusLabelsAreQuoted) {
  MetricsRegistry registry;
  registry.counter("rules.state_transitions", {{"to", "busy"}}).inc();
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("rules_state_transitions{to=\"busy\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportParsesBack) {
  MetricsRegistry registry;
  registry.counter("a.count").inc(7.0);
  registry.gauge("b.level").set(-1.5);
  auto& h = registry.histogram("c.time");
  h.observe(0.004);
  h.observe(0.006);

  const auto doc = json_parse(registry.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->find("counters")->find("a.count")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc->find("gauges")->find("b.level")->as_number(), -1.5);
  const JsonValue* hist = doc->find("histograms")->find("c.time");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->as_number(), 0.01);
  EXPECT_GT(hist->find("p95")->as_number(), 0.0);

  registry.clear();
  EXPECT_EQ(registry.series_count(), 0u);
}

TEST(MetricsMergeTest, MergeFromFoldsAllInstrumentKinds) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("hits").inc(2);
  b.counter("hits").inc(3);
  b.counter("only_b", {{"shard", "1"}}).inc(1);
  a.gauge("hosts_free").set(4);   // per-shard population counts: sums are
  b.gauge("hosts_free").set(6);   // the cluster-wide reading
  a.histogram("lat", {}, {1.0, 2.0}).observe(0.5);
  b.histogram("lat", {}, {1.0, 2.0}).observe(1.5);
  b.histogram("lat", {}, {1.0, 2.0}).observe(9.0);

  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.find_counter("hits")->value(), 5.0);
  EXPECT_DOUBLE_EQ(a.find_counter("only_b", {{"shard", "1"}})->value(), 1.0);
  EXPECT_DOUBLE_EQ(a.find_gauge("hosts_free")->value(), 10.0);
  const Histogram* h = a.find_histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 11.0);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 9.0);
  EXPECT_EQ(h->bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(MetricsMergeTest, MergeFromIsDeterministicAcrossFoldOrder) {
  const auto fill = [](MetricsRegistry& r, double v) {
    r.counter("c").inc(v);
    r.histogram("h").observe(v);
  };
  MetricsRegistry s0;
  MetricsRegistry s1;
  fill(s0, 1.0);
  fill(s1, 2.0);

  MetricsRegistry forward;
  forward.merge_from(s0);
  forward.merge_from(s1);
  MetricsRegistry backward;
  backward.merge_from(s1);
  backward.merge_from(s0);
  EXPECT_EQ(forward.to_json(), backward.to_json());
}

TEST(MetricsMergeTest, HistogramMergeRejectsMismatchedBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace ars::obs
