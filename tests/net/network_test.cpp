#include "ars/net/network.hpp"

#include <gtest/gtest.h>

#include "ars/net/commhog.hpp"

namespace ars::net {
namespace {

using sim::Engine;
using sim::Fiber;
using sim::Task;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(engine_, make_options()) {
    for (const char* name : {"ws1", "ws2", "ws3"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  static Network::Options make_options() {
    Network::Options options;
    options.latency = 0.001;
    options.bandwidth_bps = 1000.0;  // round numbers for exact assertions
    options.message_overhead = 0;
    return options;
  }

  Engine engine_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  Network net_;
};

Task<> do_transfer(Network& net, std::string src, std::string dst,
                   double bytes, double* elapsed) {
  *elapsed = co_await net.transfer(std::move(src), std::move(dst), bytes);
}

TEST_F(NetworkTest, SingleTransferUsesFullBandwidth) {
  double elapsed = -1.0;
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws2", 2000.0, &elapsed));
  engine_.run_until(1000.0);
  EXPECT_NEAR(elapsed, 0.001 + 2.0, 1e-9);
}

TEST_F(NetworkTest, LoopbackCostsOnlyLatency) {
  double elapsed = -1.0;
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws1", 1.0e9, &elapsed));
  engine_.run_until(1000.0);
  EXPECT_NEAR(elapsed, 0.001, 1e-9);
}

TEST_F(NetworkTest, SharedSourceNicHalvesRates) {
  double elapsed_a = -1.0;
  double elapsed_b = -1.0;
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws2", 1000.0, &elapsed_a));
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws3", 1000.0, &elapsed_b));
  engine_.run_until(1000.0);
  // Both share ws1's TX: each runs at 500 B/s for 2 s.
  EXPECT_NEAR(elapsed_a, 0.001 + 2.0, 1e-6);
  EXPECT_NEAR(elapsed_b, 0.001 + 2.0, 1e-6);
}

TEST_F(NetworkTest, DistinctPathsDoNotInterfere) {
  double elapsed_a = -1.0;
  double elapsed_b = -1.0;
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws2", 1000.0, &elapsed_a));
  Fiber::spawn(engine_, do_transfer(net_, "ws3", "ws1", 1000.0, &elapsed_b));
  engine_.run_until(1000.0);
  // ws1 TX and ws1 RX are independent (full duplex).
  EXPECT_NEAR(elapsed_a, 0.001 + 1.0, 1e-6);
  EXPECT_NEAR(elapsed_b, 0.001 + 1.0, 1e-6);
}

TEST_F(NetworkTest, LateArrivalSlowsExistingTransfer) {
  double elapsed_a = -1.0;
  double elapsed_b = -1.0;
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws2", 2000.0, &elapsed_a));
  engine_.schedule_at(1.001, [&] {
    Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws3", 500.0, &elapsed_b));
  });
  engine_.run_until(1000.0);
  // A: 1000 B by t=1.001, then shares at 500 B/s for the rest.
  // B finishes 500 B at 500 B/s: elapsed = latency + 1.0.
  EXPECT_NEAR(elapsed_b, 0.001 + 1.0, 1e-6);
  // A: remaining 1000 B: 500 B shared (1 s), 500 B alone (0.5 s).
  EXPECT_NEAR(elapsed_a, 0.001 + 1.0 + 1.0 + 0.5, 1e-3);
}

TEST_F(NetworkTest, KilledTransferReleasesBandwidth) {
  double elapsed_a = -1.0;
  double elapsed_b = -1.0;
  Fiber victim =
      Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws2", 1.0e6, &elapsed_a));
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws3", 1000.0, &elapsed_b));
  engine_.schedule_at(1.001, [&] { victim.kill(); });
  engine_.run_until(1000.0);
  EXPECT_DOUBLE_EQ(elapsed_a, -1.0);
  // B: 500 B shared in the first second, remaining 500 B at full speed.
  EXPECT_NEAR(elapsed_b, 0.001 + 1.0 + 0.5, 1e-3);
  EXPECT_EQ(net_.active_transfers(), 0U);
}

TEST_F(NetworkTest, FlowMetersAccountTransferredBytes) {
  double elapsed = -1.0;
  Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws2", 2000.0, &elapsed));
  engine_.run_until(1000.0);
  EXPECT_NEAR(net_.tx_meter("ws1").total_bytes(), 2000.0, 1e-6);
  EXPECT_NEAR(net_.rx_meter("ws2").total_bytes(), 2000.0, 1e-6);
  EXPECT_NEAR(net_.tx_meter("ws2").total_bytes(), 0.0, 1e-9);
}

TEST_F(NetworkTest, RateQuerySeesLiveTransfer) {
  double elapsed = -1.0;
  Fiber fiber =
      Fiber::spawn(engine_, do_transfer(net_, "ws1", "ws2", 10000.0, &elapsed));
  engine_.run_until(5.0);
  // Mid-transfer at ~1000 B/s.
  EXPECT_NEAR(net_.tx_rate_bps("ws1", 2.0), 1000.0, 50.0);
  EXPECT_NEAR(net_.rx_rate_bps("ws2", 2.0), 1000.0, 50.0);
  fiber.kill();  // withdraw the transfer before the network is destroyed
}

TEST_F(NetworkTest, PostDeliversToBoundEndpoint) {
  Endpoint& endpoint = net_.bind("ws2", 5000);
  Message received;
  auto reader = [](Endpoint& ep, Message& out) -> Task<> {
    out = co_await ep.inbox.recv();
  };
  Fiber::spawn(engine_, reader(endpoint, received));
  Message msg;
  msg.src_host = "ws1";
  msg.dst_host = "ws2";
  msg.dst_port = 5000;
  msg.payload = "<hello/>";
  net_.post(msg);
  engine_.run_until(1000.0);
  EXPECT_EQ(received.payload, "<hello/>");
  EXPECT_EQ(received.src_host, "ws1");
  EXPECT_GT(received.delivered_at, 0.0);
}

TEST_F(NetworkTest, PostToUnboundPortIsDropped) {
  Message msg;
  msg.src_host = "ws1";
  msg.dst_host = "ws2";
  msg.dst_port = 9999;
  msg.payload = "x";
  net_.post(msg);
  engine_.run_until(1000.0);  // must not crash or leave dangling transfers
  EXPECT_EQ(net_.active_transfers(), 0U);
}

TEST_F(NetworkTest, DoubleBindThrows) {
  net_.bind("ws1", 5000);
  EXPECT_THROW(net_.bind("ws1", 5000), std::invalid_argument);
  net_.unbind("ws1", 5000);
  EXPECT_NO_THROW(net_.bind("ws1", 5000));
}

TEST_F(NetworkTest, BindUnknownHostThrows) {
  EXPECT_THROW(net_.bind("nosuch", 1), std::out_of_range);
}

TEST_F(NetworkTest, AllocatePortYieldsDistinctPorts) {
  const int a = net_.allocate_port("ws1");
  const int b = net_.allocate_port("ws1");
  EXPECT_NE(a, b);
}

TEST_F(NetworkTest, AttachAssignsDistinctIps) {
  EXPECT_EQ(net_.host_names().size(), 3U);
  host::HostSpec spec;
  spec.name = "ws1";
  host::Host duplicate{engine_, spec};
  EXPECT_THROW(net_.attach(duplicate), std::invalid_argument);
}

TEST(FlowMeter, WindowOverlapIsProportional) {
  FlowMeter meter;
  meter.add(0.0, 10.0, 1000.0);
  EXPECT_DOUBLE_EQ(meter.bytes_between(0.0, 10.0), 1000.0);
  EXPECT_DOUBLE_EQ(meter.bytes_between(0.0, 5.0), 500.0);
  EXPECT_DOUBLE_EQ(meter.bytes_between(9.0, 20.0), 100.0);
  EXPECT_DOUBLE_EQ(meter.bytes_between(10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(meter.rate_bps(10.0, 10.0), 100.0);
}

TEST(FlowMeter, InstantBurstCounting) {
  FlowMeter meter;
  meter.add(5.0, 5.0, 42.0);
  EXPECT_DOUBLE_EQ(meter.bytes_between(0.0, 10.0), 42.0);
  EXPECT_DOUBLE_EQ(meter.bytes_between(6.0, 10.0), 0.0);
}

TEST(FlowMeter, ZeroOrNegativeBytesIgnored) {
  FlowMeter meter;
  meter.add(0.0, 1.0, 0.0);
  meter.add(0.0, 1.0, -5.0);
  EXPECT_DOUBLE_EQ(meter.total_bytes(), 0.0);
}

class CommHogTest : public NetworkTest {};

TEST_F(CommHogTest, SustainsTargetRate) {
  CommHog::Options options;
  options.src = "ws1";
  options.dst = "ws2";
  options.rate_bps = 200.0;  // well under the 1000 B/s NIC
  options.period = 1.0;
  options.bidirectional = false;
  CommHog hog{net_, options};
  hog.start();
  engine_.run_until(100.0);
  EXPECT_NEAR(net_.tx_meter("ws1").total_bytes() / 100.0, 200.0, 20.0);
  hog.stop();
  const double frozen = net_.tx_meter("ws1").total_bytes();
  engine_.run_until(150.0);
  EXPECT_DOUBLE_EQ(net_.tx_meter("ws1").total_bytes(), frozen);
}

TEST_F(CommHogTest, BidirectionalAdjustsSockets) {
  CommHog::Options options;
  options.src = "ws1";
  options.dst = "ws2";
  options.rate_bps = 100.0;
  options.sockets = 2;
  CommHog hog{net_, options};
  hog.start();
  EXPECT_EQ(hosts_[0]->established_sockets(), 2);
  EXPECT_EQ(hosts_[1]->established_sockets(), 2);
  engine_.run_until(10.0);
  EXPECT_GT(net_.rx_meter("ws1").total_bytes(), 0.0);  // reverse direction
  hog.stop();
  EXPECT_EQ(hosts_[0]->established_sockets(), 0);
}

}  // namespace
}  // namespace ars::net
