// Conservation-law property sweeps for the fluid network model: random
// transfer mixes conserve bytes on the flow meters, never beat the physical
// minimum transfer time, and leave no residual bandwidth state behind.

#include <gtest/gtest.h>

#include "ars/net/network.hpp"
#include "ars/support/rng.hpp"

namespace ars::net {
namespace {

using sim::Engine;
using sim::Fiber;
using sim::Task;

struct TransferSpec {
  int src;
  int dst;
  double start;
  double bytes;
};

class NetConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetConservation, BytesAreConservedAndTimingIsPhysical) {
  support::Rng rng{GetParam()};
  Engine engine;
  Network::Options options;
  options.latency = 0.001;
  options.bandwidth_bps = 1.0e6;
  Network network{engine, options};
  constexpr int kHosts = 4;
  std::vector<std::unique_ptr<host::Host>> hosts;
  for (int i = 0; i < kHosts; ++i) {
    host::HostSpec spec;
    spec.name = "h" + std::to_string(i);
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    network.attach(*hosts.back());
  }

  const int transfers = static_cast<int>(rng.uniform_int(1, 20));
  std::vector<TransferSpec> specs;
  std::vector<double> tx_expected(kHosts, 0.0);
  std::vector<double> rx_expected(kHosts, 0.0);
  for (int i = 0; i < transfers; ++i) {
    TransferSpec spec;
    spec.src = static_cast<int>(rng.uniform_int(0, kHosts - 1));
    spec.dst = static_cast<int>(rng.uniform_int(0, kHosts - 1));
    while (spec.dst == spec.src) {
      spec.dst = static_cast<int>(rng.uniform_int(0, kHosts - 1));
    }
    spec.start = rng.uniform(0.0, 5.0);
    spec.bytes = rng.uniform(1.0e3, 2.0e6);
    tx_expected[spec.src] += spec.bytes;
    rx_expected[spec.dst] += spec.bytes;
    specs.push_back(spec);
  }

  std::vector<double> elapsed(specs.size(), -1.0);
  auto mover = [](Network& net, std::string src, std::string dst,
                  double bytes, double* out) -> Task<> {
    *out = co_await net.transfer(std::move(src), std::move(dst), bytes);
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TransferSpec& spec = specs[i];
    engine.schedule_at(spec.start, [&, i] {
      Fiber::spawn(engine,
                   mover(network, "h" + std::to_string(specs[i].src),
                         "h" + std::to_string(specs[i].dst), specs[i].bytes,
                         &elapsed[i]));
    });
  }
  engine.run_until(1.0e5);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_GT(elapsed[i], 0.0) << "transfer " << i << " never completed";
    // Physical lower bound: latency + bytes at full NIC speed.
    EXPECT_GE(elapsed[i] + 1e-6,
              options.latency + specs[i].bytes / options.bandwidth_bps)
        << "transfer " << i << " beat the NIC";
  }
  for (int h = 0; h < kHosts; ++h) {
    const std::string name = "h" + std::to_string(h);
    EXPECT_NEAR(network.tx_meter(name).total_bytes(), tx_expected[h],
                1.0 * transfers + 1.0)
        << name;
    EXPECT_NEAR(network.rx_meter(name).total_bytes(), rx_expected[h],
                1.0 * transfers + 1.0)
        << name;
  }
  EXPECT_EQ(network.active_transfers(), 0U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetConservation,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace ars::net
