// Drop accounting and the FaultPolicy hook on net::Network: every datagram
// the network abandons is counted (total, per source host, and as a labeled
// obs counter), and an installed policy can drop, duplicate, delay, and
// throttle traffic.

#include <gtest/gtest.h>

#include "ars/net/network.hpp"
#include "ars/obs/metrics.hpp"

namespace ars::net {
namespace {

using sim::Engine;
using sim::Fiber;
using sim::Task;

class NetFaultsTest : public ::testing::Test {
 protected:
  NetFaultsTest() : net_(engine_, make_options(&metrics_)) {
    for (const char* name : {"ws1", "ws2"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
    inbox_ = &net_.bind("ws2", 7000);
  }

  static Network::Options make_options(obs::MetricsRegistry* metrics) {
    Network::Options options;
    options.latency = 0.001;
    options.bandwidth_bps = 1000.0;
    options.message_overhead = 0;
    options.metrics = metrics;
    return options;
  }

  void post(const std::string& dst_host, int port,
            const std::string& payload = "x") {
    Message wire;
    wire.src_host = "ws1";
    wire.dst_host = dst_host;
    wire.dst_port = port;
    wire.payload = payload;
    net_.post(std::move(wire));
  }

  int drain() {
    int received = 0;
    while (inbox_->inbox.try_recv()) {
      ++received;
    }
    return received;
  }

  Engine engine_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  Network net_;
  Endpoint* inbox_ = nullptr;
};

/// Scriptable policy for the tests.
struct ScriptedPolicy final : FaultPolicy {
  PostVerdict verdict;
  double factor = 1.0;
  int posts_seen = 0;

  PostVerdict on_post(const Message&) override {
    ++posts_seen;
    return verdict;
  }
  double bandwidth_factor(const std::string&, const std::string&) override {
    return factor;
  }
};

TEST_F(NetFaultsTest, UnknownHostAndUnboundPortAreCounted) {
  post("nowhere", 7000);  // unknown destination host
  post("ws2", 9999);      // known host, nothing bound
  engine_.run_until(10.0);

  EXPECT_EQ(net_.dropped_total(), 2u);
  EXPECT_EQ(net_.dropped_count("ws1"), 2u);  // attributed to the source
  EXPECT_EQ(net_.dropped_count("ws2"), 0u);
  const obs::Counter* unknown = metrics_.find_counter(
      "ars_net_dropped_total", {{"reason", "unknown_host"}});
  ASSERT_NE(unknown, nullptr);
  EXPECT_DOUBLE_EQ(unknown->value(), 1.0);
  const obs::Counter* unbound = metrics_.find_counter(
      "ars_net_dropped_total", {{"reason", "unbound_port"}});
  ASSERT_NE(unbound, nullptr);
  EXPECT_DOUBLE_EQ(unbound->value(), 1.0);
}

TEST_F(NetFaultsTest, PolicyDropIsCountedWithFaultReason) {
  ScriptedPolicy policy;
  policy.verdict.drop = true;
  net_.set_fault_policy(&policy);
  post("ws2", 7000);
  engine_.run_until(10.0);

  EXPECT_EQ(drain(), 0);
  EXPECT_EQ(policy.posts_seen, 1);
  EXPECT_EQ(net_.dropped_total(), 1u);
  const obs::Counter* fault = metrics_.find_counter("ars_net_dropped_total",
                                                    {{"reason", "fault"}});
  ASSERT_NE(fault, nullptr);
  EXPECT_DOUBLE_EQ(fault->value(), 1.0);
  net_.set_fault_policy(nullptr);
}

TEST_F(NetFaultsTest, PolicyDuplicatesDeliverExtraCopies) {
  ScriptedPolicy policy;
  policy.verdict.duplicates = 2;
  net_.set_fault_policy(&policy);
  post("ws2", 7000);
  engine_.run_until(10.0);

  EXPECT_EQ(drain(), 3);  // the original plus two copies
  EXPECT_EQ(net_.dropped_total(), 0u);
  net_.set_fault_policy(nullptr);
}

TEST_F(NetFaultsTest, PolicyDelayHoldsTheMessage) {
  ScriptedPolicy policy;
  policy.verdict.extra_delay = 5.0;
  net_.set_fault_policy(&policy);
  post("ws2", 7000);
  engine_.run_until(4.9);
  EXPECT_EQ(drain(), 0);  // still held
  engine_.run_until(10.0);
  EXPECT_EQ(drain(), 1);
  net_.set_fault_policy(nullptr);
}

TEST_F(NetFaultsTest, BandwidthFactorScalesTransferTime) {
  ScriptedPolicy policy;
  policy.factor = 0.5;
  net_.set_fault_policy(&policy);
  double elapsed = -1.0;
  Fiber::spawn(engine_,
               [](Network& net, double* out) -> Task<> {
                 *out = co_await net.transfer("ws1", "ws2", 1000.0);
               }(net_, &elapsed));
  engine_.run_until(100.0);
  // 1000 B at an effective 500 B/s.
  EXPECT_NEAR(elapsed, 0.001 + 2.0, 1e-6);
  net_.set_fault_policy(nullptr);
}

TEST_F(NetFaultsTest, ZeroFactorStallsUntilHeal) {
  ScriptedPolicy policy;
  policy.factor = 0.0;
  net_.set_fault_policy(&policy);
  double elapsed = -1.0;
  Fiber::spawn(engine_,
               [](Network& net, double* out) -> Task<> {
                 *out = co_await net.transfer("ws1", "ws2", 1000.0);
               }(net_, &elapsed));
  engine_.run_until(50.0);
  EXPECT_DOUBLE_EQ(elapsed, -1.0);  // fully stalled
  // Heal: restore the link and re-rate in-flight transfers.
  policy.factor = 1.0;
  net_.on_fault_change();
  engine_.run_until(100.0);
  EXPECT_NEAR(elapsed, 50.0 + 1.0, 1e-6);
  net_.set_fault_policy(nullptr);
}

}  // namespace
}  // namespace ars::net
