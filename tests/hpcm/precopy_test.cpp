// Iterative pre-copy migration tests: multi-round convergence, the ≥5×
// freeze-window reduction vs. stop-and-copy, tombstone propagation for
// erase() racing the in-flight rounds, and the transactional semantics of
// DESIGN.md §12 surviving the overlap (abort-to-source pre-commit, rollback
// post-commit, per-round stall/crash fault hooks).

#include <memory>
#include <string>
#include <vector>

#include "ars/host/process.hpp"
#include "ars/hpcm/migration.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"

#include <gtest/gtest.h>

namespace ars::hpcm {
namespace {

using sim::Engine;
using sim::Task;

/// A workload with enough *encoded* state to make stop-and-copy hurt: a set
/// of 256 KiB double-vector blocks, a few of which are rewritten between
/// poll-points — the write set pre-copy must chase.
struct BlockApp {
  static constexpr int kBlockDoubles = 32 * 1024;  // 256 KiB per block

  int iterations = 30;
  int blocks = 8;
  int dirty_per_iter = 1;
  double chunk_work = 1.0;
  int erase_at = -1;  // erase the "tmp" entry at this iteration (-1: never)

  double final_sum = -1.0;
  std::string finished_on;
  int start_count = 0;
  bool was_restored = false;
  bool restored_contains_tmp = false;

  MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
      ++start_count;
      int i = 0;
      double sum = 0.0;
      bool tmp_live = true;
      std::vector<std::vector<double>> data(
          static_cast<std::size_t>(blocks),
          std::vector<double>(kBlockDoubles, 0.0));
      if (ctx.restored()) {
        was_restored = true;
        restored_contains_tmp = ctx.state().contains("tmp");
        tmp_live = restored_contains_tmp;
        i = static_cast<int>(*ctx.state().get_int("i"));
        sum = *ctx.state().get_double("sum");
        for (int b = 0; b < blocks; ++b) {
          data[static_cast<std::size_t>(b)] =
              *ctx.state().get_doubles("block" + std::to_string(b));
        }
      }
      ctx.on_save([this, &ctx, &i, &sum, &tmp_live, &data] {
        ctx.state().set_int("i", i);
        ctx.state().set_double("sum", sum);
        if (tmp_live) {
          ctx.state().set_string("tmp", "scratch");
        }
        // Re-registering every block each save is the precompiler-style
        // idiom; value-identical blocks must not re-dirty.
        for (int b = 0; b < blocks; ++b) {
          ctx.state().set_doubles("block" + std::to_string(b),
                                  data[static_cast<std::size_t>(b)]);
        }
      });
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        if (i == erase_at && tmp_live) {
          ctx.state().erase("tmp");
          tmp_live = false;
        }
        co_await proc.compute(chunk_work);
        for (int d = 0; d < dirty_per_iter; ++d) {
          auto& block =
              data[static_cast<std::size_t>((i + d) % blocks)];
          block[0] += 1.0;
        }
        sum += 1.0;
      }
      final_sum = sum;
      finished_on = proc.host().name();
    };
  }
};

struct Cluster {
  explicit Cluster(MigrationEngine::Options hpcm_options = {})
      : net(engine, net_options()),
        mpi(engine, net),
        hpcm(mpi, with_obs(hpcm_options, tracer, metrics)) {
    tracer.set_clock([this] { return engine.now(); });
    for (const char* name : {"ws1", "ws2", "ws3"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts.push_back(std::make_unique<host::Host>(engine, spec));
      net.attach(*hosts.back());
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.001;
    options.bandwidth_bps = 12.5e6;
    return options;
  }

  static MigrationEngine::Options with_obs(MigrationEngine::Options options,
                                           obs::Tracer& tracer,
                                           obs::MetricsRegistry& metrics) {
    options.tracer = &tracer;
    options.metrics = &metrics;
    return options;
  }

  void crash_dest_at_phase(const std::string& phase,
                           double extra_delay = 0.0) {
    hpcm.set_phase_listener([this, phase, extra_delay](const PhaseEvent& e) {
      if (e.phase != phase || crash_armed_) {
        return;
      }
      crash_armed_ = true;
      engine.schedule_after(
          extra_delay, [this, dest = e.destination] { hpcm.crash_host(dest); });
    });
  }

  Engine engine;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::vector<std::unique_ptr<host::Host>> hosts;
  net::Network net;
  mpi::MpiSystem mpi;
  MigrationEngine hpcm;
  bool crash_armed_ = false;
};

ApplicationSchema schema() {
  ApplicationSchema s{"blockapp"};
  s.set_est_exec_time(30.0);
  return s;
}

double counter_value(const obs::MetricsRegistry& metrics,
                     const std::string& name,
                     const obs::Labels& labels = {}) {
  const obs::Counter* c = metrics.find_counter(name, labels);
  return c == nullptr ? 0.0 : c->value();
}

MigrationEngine::Options precopy_options() {
  MigrationEngine::Options options;
  options.precopy = true;
  return options;
}

// ---- tentpole: multi-round pre-copy commits ------------------------------

TEST(PrecopyTest, ConvergesOverRoundsAndCommits) {
  Cluster c(precopy_options());
  BlockApp app;
  app.blocks = 32;  // 8 MiB encoded state
  app.dirty_per_iter = 1;
  const mpi::RankId id =
      c.hpcm.launch("ws1", app.make(), "blockapp", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 30.0);
  EXPECT_EQ(app.finished_on, "ws2");
  EXPECT_TRUE(app.was_restored);
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  const MigrationTimeline& t = c.hpcm.history()[0];
  EXPECT_TRUE(t.succeeded);
  EXPECT_EQ(t.outcome, "committed");
  EXPECT_GE(t.precopy_rounds, 1);
  EXPECT_GT(t.precopy_bytes, 8.0e6);  // at least the round-0 snapshot
  // The freeze opened strictly after the poll-point: rounds overlapped
  // execution.
  EXPECT_GT(t.freeze_begin_at, t.poll_point_at + 0.5);
  EXPECT_LT(t.freeze_window(), 0.5);
  // One umbrella pre-copy span, no stop-the-world spawn span.
  EXPECT_EQ(c.tracer.spans_named("migration.precopy").size(), 1U);
  EXPECT_TRUE(c.tracer.spans_named("migration.spawn").empty());
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

TEST(PrecopyTest, FreezeWindowAtLeastFiveTimesSmallerThanStopAndCopy) {
  const auto run = [](bool precopy) {
    MigrationEngine::Options options;
    options.precopy = precopy;
    Cluster c(options);
    BlockApp app;
    app.blocks = 32;
    app.dirty_per_iter = 1;
    const mpi::RankId id =
        c.hpcm.launch("ws1", app.make(), "blockapp", schema());
    c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
    c.engine.run_until(300.0);
    EXPECT_EQ(app.finished_on, "ws2");
    EXPECT_EQ(c.hpcm.history().size(), 1U);
    EXPECT_EQ(c.hpcm.history()[0].outcome, "committed");
    return c.hpcm.history()[0].freeze_window();
  };
  const double stop_and_copy = run(false);
  const double precopy = run(true);
  ASSERT_GT(precopy, 0.0);
  EXPECT_GE(stop_and_copy / precopy, 5.0)
      << "stop-and-copy froze " << stop_and_copy << " s, pre-copy "
      << precopy << " s";
}

// ---- satellite: erase() racing in-flight rounds --------------------------

TEST(PrecopyTest, EntryErasedMidMigrationIsAbsentAfterRestore) {
  MigrationEngine::Options options = precopy_options();
  options.precopy_max_rounds = 20;
  Cluster c(options);
  BlockApp app;
  app.blocks = 8;
  app.dirty_per_iter = 2;  // ~25% dirty per round: convergence chases it
  app.erase_at = 9;        // well inside the pre-copy window
  const mpi::RankId id =
      c.hpcm.launch("ws1", app.make(), "blockapp", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  EXPECT_EQ(app.finished_on, "ws2");
  EXPECT_TRUE(app.was_restored);
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  const MigrationTimeline& t = c.hpcm.history()[0];
  EXPECT_EQ(t.outcome, "committed");
  // Round 0 shipped "tmp"; the erase at iteration 9 raced the rounds.  The
  // tombstone in a later (or the final) delta must prevent resurrection.
  EXPECT_GE(t.precopy_rounds, 2);
  EXPECT_FALSE(app.restored_contains_tmp);
  EXPECT_DOUBLE_EQ(app.final_sum, 30.0);
}

// ---- transactional semantics survive the overlap -------------------------

TEST(PrecopyTest, DestCrashMidRoundAbortsToSource) {
  Cluster c(precopy_options());
  BlockApp app;
  app.blocks = 32;
  std::vector<MigrationOutcome> outcomes;
  c.hpcm.set_outcome_listener(
      [&](const MigrationOutcome& o) { outcomes.push_back(o); });
  c.crash_dest_at_phase("precopy");
  const mpi::RankId id =
      c.hpcm.launch("ws1", app.make(), "blockapp", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  // Pre-ACK failure: every pre-copied round is discarded and the source
  // keeps computing with its state intact — no restart, no lost work.
  EXPECT_DOUBLE_EQ(app.final_sum, 30.0);
  EXPECT_EQ(app.finished_on, "ws1");
  EXPECT_EQ(app.start_count, 1);
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  const MigrationTimeline& t = c.hpcm.history()[0];
  EXPECT_EQ(t.outcome, "aborted");
  EXPECT_EQ(t.abort_reason, "dest-failed");
  EXPECT_EQ(t.abort_phase, "precopy");
  ASSERT_EQ(outcomes.size(), 1U);
  EXPECT_EQ(outcomes[0].outcome, "aborted");
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

TEST(PrecopyTest, StalledRoundTimesOutAndAborts) {
  MigrationEngine::Options options = precopy_options();
  options.init_timeout = 2.0;
  options.eager_timeout = 3.0;
  Cluster c(options);
  BlockApp app;
  c.hpcm.set_phase_stall("precopy", 1000.0);  // chaos: wedge every round
  const mpi::RankId id =
      c.hpcm.launch("ws1", app.make(), "blockapp", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 30.0);
  EXPECT_EQ(app.finished_on, "ws1");
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "aborted");
  EXPECT_EQ(c.hpcm.history()[0].abort_reason, "precopy-timeout");
  EXPECT_EQ(c.hpcm.history()[0].abort_phase, "precopy");
  EXPECT_EQ(counter_value(c.metrics, "migration.aborts",
                          {{"reason", "precopy-timeout"}}),
            1.0);
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

TEST(PrecopyTest, PostCommitDestCrashRollsBackToRelaunch) {
  Cluster c(precopy_options());
  BlockApp app;
  app.blocks = 8;
  c.crash_dest_at_phase("restore");
  const mpi::RankId id =
      c.hpcm.launch("ws1", app.make(), "blockapp", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(60.0);
  // Post-ACK failure: unchanged semantics — rolled back to the
  // checkpoint-restart path, process parked, never silently lost.
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "rolled-back");
  EXPECT_EQ(c.hpcm.parked_for_relaunch(),
            std::vector<std::string>{"blockapp.0"});
  EXPECT_NE(c.hpcm.relaunch("blockapp.0", "ws3"), 0U);
  c.engine.run_until(300.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 30.0);
  EXPECT_EQ(app.finished_on, "ws3");
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

TEST(PrecopyTest, SecondRequestDuringPrecopyIsDropped) {
  MigrationEngine::Options options = precopy_options();
  options.precopy_max_rounds = 12;
  Cluster c(options);
  BlockApp app;
  app.blocks = 8;
  app.dirty_per_iter = 2;  // keeps the loop from converging too early
  const mpi::RankId id =
      c.hpcm.launch("ws1", app.make(), "blockapp", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.schedule_at(8.0, [&] { c.hpcm.request_migration(id, "ws3"); });
  c.engine.run_until(300.0);
  // One process migrates once at a time: the second request is dropped,
  // the first transaction commits to its destination.
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "committed");
  EXPECT_EQ(c.hpcm.history()[0].destination, "ws2");
  EXPECT_EQ(app.finished_on, "ws2");
  EXPECT_DOUBLE_EQ(app.final_sum, 30.0);
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

TEST(PrecopyTest, SourceExitMidPrecopyAbortsCleanly) {
  MigrationEngine::Options options = precopy_options();
  options.precopy_max_rounds = 50;
  Cluster c(options);
  BlockApp app;
  app.blocks = 8;
  app.dirty_per_iter = 4;  // 50% dirty per round: never converges
  app.iterations = 6;      // finishes before the round cap
  const mpi::RankId id =
      c.hpcm.launch("ws1", app.make(), "blockapp", schema());
  c.engine.schedule_at(2.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  // The app computed its result on the source mid-pre-copy; nothing left
  // to move, so the transaction aborts and nothing leaks.
  EXPECT_DOUBLE_EQ(app.final_sum, 6.0);
  EXPECT_EQ(app.finished_on, "ws1");
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "aborted");
  EXPECT_EQ(c.hpcm.history()[0].abort_reason, "source-exited");
  EXPECT_EQ(c.mpi.live_procs(), 0U);
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

}  // namespace
}  // namespace ars::hpcm
