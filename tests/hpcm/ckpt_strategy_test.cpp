// Checkpoint scheduling strategies (DESIGN.md §17): Young/Daly-driven
// maybe_checkpoint(), the asynchronous shared-store write path, atomic
// shadow-commit under crashes mid-write, and failure-waste accounting.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ars/hpcm/checkpoint.hpp"
#include "ars/hpcm/migration.hpp"

namespace ars::hpcm {
namespace {

using sim::Engine;
using sim::Task;

/// Counter app that defers all checkpoint timing to the engine's plan
/// (maybe_checkpoint at every poll) — the shape the chaos scenarios use.
struct StrategyApp {
  int iterations = 40;
  std::uint64_t opaque_bytes = 0;

  double final_sum = -1.0;
  std::string finished_on;
  bool was_restarted = false;

  MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
      std::int64_t i = 0;
      double sum = 0.0;
      if (ctx.restored()) {
        i = *ctx.state().get_int("i");
        sum = *ctx.state().get_double("sum");
        was_restarted = ctx.restarted_from_checkpoint();
      }
      ctx.on_save([&ctx, &i, &sum, this] {
        ctx.state().set_int("i", i);
        ctx.state().set_double("sum", sum);
        if (opaque_bytes > 0) {
          ctx.state().set_opaque("heap", opaque_bytes);
        }
      });
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        co_await ctx.maybe_checkpoint();
        co_await proc.compute(1.0);
        sum += static_cast<double>(i);
      }
      final_sum = sum;
      finished_on = proc.host().name();
    };
  }
};

class CkptStrategyTest : public ::testing::Test {
 protected:
  CkptStrategyTest() : net_(engine_), mpi_(engine_, net_) {
    for (const char* name : {"ws1", "ws2"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  MigrationEngine& make_hpcm(MigrationEngine::Options options) {
    hpcm_ = std::make_unique<MigrationEngine>(mpi_, options);
    return *hpcm_;
  }

  void run_to_completion(double step = 50.0) {
    while (mpi_.live_procs() > 0) {
      engine_.run_until(engine_.now() + step);
    }
  }

  Engine engine_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  mpi::MpiSystem mpi_;
  std::unique_ptr<MigrationEngine> hpcm_;
};

TEST_F(CkptStrategyTest, NoneStrategyNeverCheckpoints) {
  MigrationEngine::Options options;
  options.ckpt_strategy = "none";
  options.ckpt_mtbf = 10.0;
  MigrationEngine& hpcm = make_hpcm(options);
  StrategyApp app;
  app.iterations = 20;
  hpcm.launch("ws1", app.make(), "idle", ApplicationSchema{"idle"});
  run_to_completion();
  EXPECT_GE(app.final_sum, 0.0);
  EXPECT_EQ(hpcm.checkpoints().writes(), 0);
  EXPECT_EQ(hpcm.shared_store().commits(), 0);
}

TEST_F(CkptStrategyTest, PeriodicStrategyCheckpointsOnYoungDalyInterval) {
  MigrationEngine::Options options;
  options.ckpt_strategy = "periodic";
  options.checkpoint_store_bps = 20.0e6;
  options.ckpt_mtbf = 50.0;  // 40 MB -> C=2s, W=sqrt(2*2*50)~14.1s
  MigrationEngine& hpcm = make_hpcm(options);
  StrategyApp app;
  app.iterations = 40;
  app.opaque_bytes = 40'000'000;
  hpcm.launch("ws1", app.make(), "per", ApplicationSchema{"per"});
  run_to_completion();
  EXPECT_GE(app.final_sum, 0.0);
  // ~40 s of compute on a ~14 s interval: at least two committed writes,
  // each charged to the overhead side of the waste ledger.
  EXPECT_GE(hpcm.shared_store().commits(), 2);
  EXPECT_EQ(hpcm.shared_store().commits(), hpcm.checkpoints().writes());
  EXPECT_GT(hpcm.waste().of("per.0").overhead_s, 0.0);
  EXPECT_DOUBLE_EQ(hpcm.waste().of("per.0").lost_work_s, 0.0);
}

TEST_F(CkptStrategyTest, CrashMidWriteKeepsPreviousCheckpointRestorable) {
  MigrationEngine::Options options;
  options.ckpt_strategy = "none";  // explicit checkpoints: exact timing
  options.checkpoint_store_bps = 1.0e6;
  MigrationEngine& hpcm = make_hpcm(options);

  // 4 MB state -> 4 s writes.  Checkpoints at i=5 (commits ~9) and i=10
  // (in flight 10..14); the crash at t=13 races the second write.
  struct : StrategyApp {
    MigrationEngine::MigratableApp make_explicit() {
      return [this](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
        std::int64_t i = 0;
        double sum = 0.0;
        if (ctx.restored()) {
          i = *ctx.state().get_int("i");
          sum = *ctx.state().get_double("sum");
          was_restarted = ctx.restarted_from_checkpoint();
        }
        ctx.on_save([&ctx, &i, &sum, this] {
          ctx.state().set_int("i", i);
          ctx.state().set_double("sum", sum);
          ctx.state().set_opaque("heap", opaque_bytes);
        });
        for (; i < iterations; ++i) {
          co_await ctx.poll_point();
          if (i > 0 && i % 5 == 0) {
            co_await ctx.checkpoint();
          }
          co_await proc.compute(1.0);
          sum += static_cast<double>(i);
        }
        final_sum = sum;
        finished_on = proc.host().name();
      };
    }
  } app;
  app.iterations = 30;
  app.opaque_bytes = 4'000'000;

  const auto id = hpcm.launch("ws1", app.make_explicit(), "atomic",
                              ApplicationSchema{"atomic"});
  engine_.schedule_at(13.0, [&] {
    EXPECT_TRUE(hpcm.shared_store().writing("atomic.0"));
    EXPECT_TRUE(hpcm.checkpoints().shadow_pending("atomic.0"));
    EXPECT_TRUE(hpcm.crash(id));
    EXPECT_NE(hpcm.relaunch("atomic.0", "ws2"), 0);
  });
  run_to_completion();

  EXPECT_DOUBLE_EQ(app.final_sum, 435.0);  // sum 0..29
  EXPECT_TRUE(app.was_restarted);
  EXPECT_EQ(app.finished_on, "ws2");
  // The torn second write was dropped, not committed: the i=5 checkpoint
  // stayed the restorable one and nothing incomplete was ever visible.
  EXPECT_EQ(hpcm.checkpoints().aborted_shadows(), 1);
  EXPECT_EQ(hpcm.checkpoints().torn(), 0);
  EXPECT_EQ(hpcm.torn_restores(), 0);
  ASSERT_NE(hpcm.checkpoints().latest("atomic.0"), nullptr);
  EXPECT_TRUE(hpcm.checkpoints().latest("atomic.0")->complete);
  // Waste: the crash cost lost work (i=5..13) and a restart read-back.
  EXPECT_GT(hpcm.waste().of("atomic.0").lost_work_s, 0.0);
  EXPECT_GT(hpcm.waste().of("atomic.0").restart_s, 0.0);
}

TEST_F(CkptStrategyTest, SabotagedCommitRestoresTornCheckpoint) {
  MigrationEngine::Options options;
  options.ckpt_strategy = "periodic";
  options.checkpoint_store_bps = 1.0e6;
  options.ckpt_mtbf = 1.0;  // aggressive: first checkpoint due early
  options.ckpt_min_interval = 5.0;
  options.sabotage_torn_commit = true;
  MigrationEngine& hpcm = make_hpcm(options);
  StrategyApp app;
  app.iterations = 30;
  app.opaque_bytes = 4'000'000;  // 4 s writes: easy to crash mid-write
  const auto id = hpcm.launch("ws1", app.make(), "torn",
                              ApplicationSchema{"torn"});
  // First maybe_checkpoint lands ~t=5 (min_interval); its write runs ~4 s.
  engine_.schedule_at(7.5, [&] {
    ASSERT_TRUE(hpcm.shared_store().writing("torn.0"));
    EXPECT_TRUE(hpcm.crash(id));
    EXPECT_NE(hpcm.relaunch("torn.0", "ws2"), 0);
  });
  run_to_completion();
  // The sabotaged store replaced the (absent) previous checkpoint with the
  // torn partial, and the relaunch restored it — exactly what the chaos
  // no-torn-checkpoint invariant exists to catch.
  EXPECT_GE(hpcm.checkpoints().torn(), 1);
  EXPECT_EQ(hpcm.torn_restores(), 1);
  EXPECT_TRUE(app.was_restarted);
}

TEST_F(CkptStrategyTest, HostCrashAbortsAllItsWritesViaTheStore) {
  MigrationEngine::Options options;
  options.ckpt_strategy = "none";
  options.checkpoint_store_bps = 1.0e6;
  MigrationEngine& hpcm = make_hpcm(options);
  // Drive the store directly through the engine's instance: two fake
  // writes from ws1, one from ws2.
  int aborted = 0;
  int committed = 0;
  const auto on_commit = [&committed](const ckpt::WriteOutcome&) {
    ++committed;
  };
  const auto on_abort = [&aborted](const ckpt::WriteOutcome&) { ++aborted; };
  hpcm.shared_store().begin_write("x.0", "ws1", 4'000'000, on_commit,
                                  on_abort);
  hpcm.shared_store().begin_write("y.0", "ws1", 4'000'000, on_commit,
                                  on_abort);
  hpcm.shared_store().begin_write("z.0", "ws2", 4'000'000, on_commit,
                                  on_abort);
  engine_.schedule_at(1.0, [&] {
    EXPECT_EQ(hpcm.shared_store().abort_host_writes("ws1"), 2);
  });
  engine_.run_until(20.0);
  EXPECT_EQ(aborted, 2);
  EXPECT_EQ(committed, 1);
}

}  // namespace
}  // namespace ars::hpcm
