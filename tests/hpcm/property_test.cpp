// Property-style parameterized sweeps over the HPCM serialization layer
// and the migration protocol.

#include <gtest/gtest.h>

#include "ars/hpcm/migration.hpp"
#include "ars/hpcm/stateregistry.hpp"
#include "ars/support/rng.hpp"

namespace ars::hpcm {
namespace {

// ---- StateRegistry round-trip sweep ---------------------------------------

class StateRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StateRoundTrip, RandomRegistrySurvivesEncodeDecode) {
  support::Rng rng{GetParam()};
  StateRegistry reg;
  const int entries = static_cast<int>(rng.uniform_int(0, 24));
  for (int i = 0; i < entries; ++i) {
    const std::string name = "entry_" + std::to_string(i);
    switch (rng.uniform_int(0, 5)) {
      case 0:
        reg.set_int(name, rng.uniform_int(-1'000'000'000, 1'000'000'000));
        break;
      case 1:
        reg.set_double(name, rng.uniform(-1e9, 1e9));
        break;
      case 2: {
        std::string text;
        const int length = static_cast<int>(rng.uniform_int(0, 64));
        for (int c = 0; c < length; ++c) {
          text.push_back(static_cast<char>(rng.uniform_int(32, 126)));
        }
        reg.set_string(name, text);
        break;
      }
      case 3: {
        std::vector<double> values(
            static_cast<std::size_t>(rng.uniform_int(0, 100)));
        for (double& v : values) {
          v = rng.uniform(-1e6, 1e6);
        }
        reg.set_doubles(name, std::move(values));
        break;
      }
      case 4: {
        std::vector<std::int64_t> values(
            static_cast<std::size_t>(rng.uniform_int(0, 100)));
        for (auto& v : values) {
          v = rng.uniform_int(-1'000'000, 1'000'000);
        }
        reg.set_ints(name, std::move(values));
        break;
      }
      default:
        reg.set_opaque(name, static_cast<std::uint64_t>(
                                 rng.uniform_int(0, 1'000'000'000)));
        break;
    }
  }
  const auto origin = (GetParam() % 2 == 0) ? support::ByteOrder::kBigEndian
                                            : support::ByteOrder::kLittleEndian;
  const auto wire = reg.encode(origin);
  const auto decoded = StateRegistry::decode(wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_EQ(decoded->size(), reg.size());
  EXPECT_EQ(decoded->origin(), origin);
  EXPECT_EQ(decoded->opaque_bytes(), reg.opaque_bytes());
  // Re-encoding the decoded registry is byte-identical (canonical form).
  EXPECT_EQ(decoded->encode(origin), wire);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- migration invariant sweep --------------------------------------------

struct SweepCase {
  double opaque_mb;
  double request_at;
};

class MigrationSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MigrationSweep, ResultIndependentOfStateSizeAndTiming) {
  const SweepCase c = GetParam();
  sim::Engine engine;
  net::Network network{engine};
  std::vector<std::unique_ptr<host::Host>> hosts;
  for (const char* name : {"ws1", "ws2"}) {
    host::HostSpec spec;
    spec.name = name;
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    network.attach(*hosts.back());
  }
  mpi::MpiSystem mpi{engine, network};
  MigrationEngine middleware{mpi};

  double final_sum = -1.0;
  std::string finished_on;
  auto app = [&](mpi::Proc& proc, MigrationContext& ctx) -> sim::Task<> {
    std::int64_t i = 0;
    double sum = 0.0;
    if (ctx.restored()) {
      i = *ctx.state().get_int("i");
      sum = *ctx.state().get_double("sum");
    }
    ctx.on_save([&ctx, &i, &sum, &c] {
      ctx.state().set_int("i", i);
      ctx.state().set_double("sum", sum);
      ctx.state().set_opaque("bulk",
                             static_cast<std::uint64_t>(c.opaque_mb * 1e6));
    });
    for (; i < 25; ++i) {
      co_await ctx.poll_point();
      co_await proc.compute(1.0);
      sum += static_cast<double>(i);
    }
    final_sum = sum;
    finished_on = proc.host().name();
  };
  ApplicationSchema schema{"sweep"};
  const auto id = middleware.launch("ws1", app, "sweep", schema);
  engine.schedule_at(c.request_at,
                     [&] { middleware.request_migration(id, "ws2"); });
  while (mpi.live_procs() > 0) {
    engine.run_until(engine.now() + 50.0);
  }
  // sum of 0..24 regardless of when/what migrated.
  EXPECT_DOUBLE_EQ(final_sum, 300.0);
  EXPECT_EQ(finished_on, "ws2");
  ASSERT_EQ(middleware.history().size(), 1U);
  const MigrationTimeline& t = middleware.history()[0];
  EXPECT_TRUE(t.succeeded);
  EXPECT_LE(t.resumed_at, t.completed_at);
  EXPECT_NEAR(t.state_bytes, c.opaque_mb * 1e6, c.opaque_mb * 1e4 + 2048);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MigrationSweep,
    ::testing::Values(SweepCase{0.01, 3.0}, SweepCase{0.01, 17.5},
                      SweepCase{1.0, 3.0}, SweepCase{10.0, 11.0},
                      SweepCase{50.0, 22.2}, SweepCase{120.0, 7.7}),
    [](const auto& param_info) {
      return "mb" +
             std::to_string(static_cast<int>(param_info.param.opaque_mb)) +
             "_at" +
             std::to_string(static_cast<int>(param_info.param.request_at));
    });

}  // namespace
}  // namespace ars::hpcm
