// Concurrent migration stress: several processes migrating at once, in
// both directions, sharing NICs — the protocol must never mix up state or
// identities.

#include <gtest/gtest.h>

#include "ars/hpcm/migration.hpp"

namespace ars::hpcm {
namespace {

using sim::Engine;
using sim::Task;

struct Worker {
  int iterations = 40;
  double opaque_bytes = 8.0e6;
  double seed_value = 0.0;  // distinguishes the workers' states
  double final_value = -1.0;
  std::string finished_on;
  int migrations = 0;

  MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
      std::int64_t i = 0;
      double value = seed_value;
      if (ctx.restored()) {
        i = *ctx.state().get_int("i");
        value = *ctx.state().get_double("value");
      }
      ctx.on_save([&ctx, &i, &value, this] {
        ctx.state().set_int("i", i);
        ctx.state().set_double("value", value);
        ctx.state().set_opaque("bulk",
                               static_cast<std::uint64_t>(opaque_bytes));
      });
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        co_await proc.compute(0.5);
        value += seed_value;  // value = seed * (1 + iterations) at the end
      }
      final_value = value;
      finished_on = proc.host().name();
      migrations = ctx.migrations();
    };
  }
};

TEST(ConcurrentMigrations, FourProcessesCrossMigrateSimultaneously) {
  Engine engine;
  net::Network network{engine};
  std::vector<std::unique_ptr<host::Host>> hosts;
  for (const char* name : {"ws1", "ws2", "ws3", "ws4"}) {
    host::HostSpec spec;
    spec.name = name;
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    network.attach(*hosts.back());
  }
  mpi::MpiSystem mpi{engine, network};
  MigrationEngine middleware{mpi};

  constexpr int kWorkers = 4;
  std::vector<Worker> workers(kWorkers);
  std::vector<mpi::RankId> ids;
  const char* starts[] = {"ws1", "ws2", "ws1", "ws2"};
  for (int i = 0; i < kWorkers; ++i) {
    workers[i].seed_value = (i + 1) * 100.0;
    ids.push_back(middleware.launch(
        starts[i], workers[i].make(), "w" + std::to_string(i),
        ApplicationSchema{"w" + std::to_string(i)}));
  }
  // All four migrate within the same second, two in each direction plus
  // two to fresh hosts: transfers share NICs.
  engine.schedule_at(5.0, [&] {
    middleware.request_migration(ids[0], "ws2");  // ws1 -> ws2
    middleware.request_migration(ids[1], "ws1");  // ws2 -> ws1
  });
  engine.schedule_at(5.3, [&] {
    middleware.request_migration(ids[2], "ws3");  // ws1 -> ws3
    middleware.request_migration(ids[3], "ws4");  // ws2 -> ws4
  });
  while (mpi.live_procs() > 0) {
    engine.run_until(engine.now() + 25.0);
  }

  const char* expected_hosts[] = {"ws2", "ws1", "ws3", "ws4"};
  for (int i = 0; i < kWorkers; ++i) {
    const Worker& w = workers[i];
    EXPECT_DOUBLE_EQ(w.final_value, (i + 1) * 100.0 * 41.0) << "worker " << i;
    EXPECT_EQ(w.finished_on, expected_hosts[i]) << "worker " << i;
    EXPECT_EQ(w.migrations, 1) << "worker " << i;
  }
  ASSERT_EQ(middleware.history().size(), 4U);
  for (const auto& t : middleware.history()) {
    EXPECT_TRUE(t.succeeded);
    EXPECT_LE(t.resumed_at, t.completed_at);
  }
}

TEST(ConcurrentMigrations, SameDestinationSerializesOnTheNic) {
  Engine engine;
  net::Network network{engine};
  std::vector<std::unique_ptr<host::Host>> hosts;
  for (const char* name : {"ws1", "ws2", "ws3"}) {
    host::HostSpec spec;
    spec.name = name;
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    network.attach(*hosts.back());
  }
  mpi::MpiSystem mpi{engine, network};
  MigrationEngine middleware{mpi};

  Worker a;
  a.seed_value = 100.0;
  a.opaque_bytes = 30.0e6;
  Worker b;
  b.seed_value = 200.0;
  b.opaque_bytes = 30.0e6;
  const auto id_a = middleware.launch("ws1", a.make(), "a",
                                      ApplicationSchema{"a"});
  const auto id_b = middleware.launch("ws2", b.make(), "b",
                                      ApplicationSchema{"b"});
  engine.schedule_at(4.0, [&] {
    middleware.request_migration(id_a, "ws3");
    middleware.request_migration(id_b, "ws3");
  });
  while (mpi.live_procs() > 0) {
    engine.run_until(engine.now() + 25.0);
  }
  EXPECT_DOUBLE_EQ(a.final_value, 100.0 * 41.0);
  EXPECT_DOUBLE_EQ(b.final_value, 200.0 * 41.0);
  EXPECT_EQ(a.finished_on, "ws3");
  EXPECT_EQ(b.finished_on, "ws3");
  ASSERT_EQ(middleware.history().size(), 2U);
  // Two simultaneous 30 MB inbound transfers share ws3's NIC: each takes
  // longer than it would alone (~2.4 s), but both complete.
  for (const auto& t : middleware.history()) {
    EXPECT_TRUE(t.succeeded);
    EXPECT_GT(t.total(), 2.4);
  }
}

}  // namespace
}  // namespace ars::hpcm
