#include "ars/hpcm/schema.hpp"

#include <gtest/gtest.h>

namespace ars::hpcm {
namespace {

ApplicationSchema tree_schema() {
  ApplicationSchema schema{"test_tree"};
  schema.set_characteristic(AppCharacteristic::kComputeIntensive);
  schema.set_est_comm_bytes(40 * 1024 * 1024);
  schema.set_est_exec_time(600.0);
  schema.set_data_locality(0.1);
  ResourceRequirements req;
  req.min_memory_bytes = 64 * 1024 * 1024;
  req.min_disk_bytes = 0;
  req.min_cpu_speed = 0.5;
  schema.set_requirements(req);
  return schema;
}

TEST(Schema, XmlRoundTrip) {
  const ApplicationSchema schema = tree_schema();
  const std::string xml = schema.to_xml();
  const auto back = ApplicationSchema::from_xml(xml);
  ASSERT_TRUE(back.has_value()) << back.error().to_string();
  EXPECT_EQ(back->name(), "test_tree");
  EXPECT_EQ(back->characteristic(), AppCharacteristic::kComputeIntensive);
  EXPECT_EQ(back->est_comm_bytes(), 40U * 1024 * 1024);
  EXPECT_DOUBLE_EQ(back->est_exec_time(), 600.0);
  EXPECT_NEAR(back->data_locality(), 0.1, 1e-9);
  EXPECT_EQ(back->requirements().min_memory_bytes, 64U * 1024 * 1024);
  EXPECT_DOUBLE_EQ(back->requirements().min_cpu_speed, 0.5);
}

TEST(Schema, CharacteristicNamesRoundTrip) {
  for (const AppCharacteristic c :
       {AppCharacteristic::kComputeIntensive,
        AppCharacteristic::kCommunicationIntensive,
        AppCharacteristic::kDataIntensive}) {
    const auto parsed = characteristic_from_string(to_string(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(characteristic_from_string("io-bound").has_value());
}

TEST(Schema, FirstObservationSeedsEstimate) {
  ApplicationSchema schema{"fresh"};
  EXPECT_DOUBLE_EQ(schema.est_exec_time(), 0.0);
  schema.record_execution(500.0);
  EXPECT_DOUBLE_EQ(schema.est_exec_time(), 500.0);
  EXPECT_EQ(schema.observed_runs(), 1);
}

TEST(Schema, EstimateSmoothsTowardObservations) {
  ApplicationSchema schema = tree_schema();  // est 600
  schema.record_execution(1000.0);
  EXPECT_GT(schema.est_exec_time(), 600.0);
  EXPECT_LT(schema.est_exec_time(), 1000.0);
  // Repeated observations converge.
  for (int i = 0; i < 50; ++i) {
    schema.record_execution(1000.0);
  }
  EXPECT_NEAR(schema.est_exec_time(), 1000.0, 1.0);
}

TEST(Schema, FromXmlRejectsMalformedInput) {
  EXPECT_FALSE(ApplicationSchema::from_xml("").has_value());
  EXPECT_FALSE(ApplicationSchema::from_xml("<other/>").has_value());
  EXPECT_FALSE(
      ApplicationSchema::from_xml("<application_schema/>").has_value());
  EXPECT_FALSE(ApplicationSchema::from_xml(
                   "<application_schema name=\"x\">"
                   "<est_comm_bytes>lots</est_comm_bytes>"
                   "</application_schema>")
                   .has_value());
  EXPECT_FALSE(ApplicationSchema::from_xml(
                   "<application_schema name=\"x\">"
                   "<characteristic>psychic</characteristic>"
                   "</application_schema>")
                   .has_value());
}

TEST(Schema, DefaultsAreUsable) {
  const auto schema = ApplicationSchema::from_xml(
      "<application_schema name=\"minimal\"/>");
  ASSERT_TRUE(schema.has_value()) << schema.error().to_string();
  EXPECT_EQ(schema->name(), "minimal");
  EXPECT_EQ(schema->characteristic(), AppCharacteristic::kComputeIntensive);
  EXPECT_EQ(schema->est_comm_bytes(), 0U);
}

}  // namespace
}  // namespace ars::hpcm
