// Transactional-migration tests: per-phase timeouts, abort-and-rollback to
// the source, post-commit rollback to checkpoint-restart, outcome
// reporting, destination validation at the poll-point, and signal-span
// hygiene on crash/exit (DESIGN.md §12).

#include <memory>
#include <string>
#include <vector>

#include "ars/host/process.hpp"
#include "ars/hpcm/migration.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"

#include <gtest/gtest.h>

namespace ars::hpcm {
namespace {

using sim::Engine;
using sim::Task;

/// Same miniature workload as migration_test.cpp: accumulates `iterations`
/// compute chunks into `sum`, with a poll-point between chunks.
struct CounterApp {
  int iterations = 20;
  double chunk_work = 1.0;
  double opaque_bytes = 1.0e6;
  double final_sum = -1.0;
  std::string finished_on;
  int start_count = 0;

  MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
      ++start_count;
      int i = 0;
      double sum = 0.0;
      if (ctx.restored()) {
        i = static_cast<int>(*ctx.state().get_int("i"));
        sum = *ctx.state().get_double("sum");
      }
      ctx.on_save([&ctx, &i, &sum, this] {
        ctx.state().set_int("i", i);
        ctx.state().set_double("sum", sum);
        ctx.state().set_opaque("heap", static_cast<std::uint64_t>(opaque_bytes));
      });
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        co_await proc.compute(chunk_work);
        sum += 1.0;
      }
      final_sum = sum;
      finished_on = proc.host().name();
    };
  }
};

/// A three-host cluster with observability wired into the migration engine,
/// so tests can tune MPI and transaction options per case.
struct Cluster {
  explicit Cluster(mpi::MpiSystem::Options mpi_options = {},
                   MigrationEngine::Options hpcm_options = {})
      : net(engine, net_options()),
        mpi(engine, net, mpi_options),
        hpcm(mpi, with_obs(hpcm_options, tracer, metrics)) {
    tracer.set_clock([this] { return engine.now(); });
    host::HostSpec big;
    big.name = "ws1";
    host::HostSpec little;
    little.name = "ws2";
    little.byte_order = support::ByteOrder::kLittleEndian;
    host::HostSpec third;
    third.name = "ws3";
    for (const auto& spec : {big, little, third}) {
      hosts.push_back(std::make_unique<host::Host>(engine, spec));
      net.attach(*hosts.back());
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.001;
    options.bandwidth_bps = 12.5e6;
    return options;
  }

  static MigrationEngine::Options with_obs(MigrationEngine::Options options,
                                           obs::Tracer& tracer,
                                           obs::MetricsRegistry& metrics) {
    options.tracer = &tracer;
    options.metrics = &metrics;
    return options;
  }

  /// Crash the destination when the transaction enters `phase`.  The
  /// listener must not reenter the engine inline, so the crash is
  /// scheduled as a zero-delay event (plus `extra_delay` for post-commit
  /// cases that want to hit the middle of the background restore).
  void crash_dest_at_phase(const std::string& phase, double extra_delay = 0.0) {
    hpcm.set_phase_listener([this, phase, extra_delay](const PhaseEvent& e) {
      if (e.phase != phase || crash_armed_) {
        return;
      }
      crash_armed_ = true;
      engine.schedule_after(extra_delay,
                            [this, dest = e.destination] { hpcm.crash_host(dest); });
    });
  }

  Engine engine;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::vector<std::unique_ptr<host::Host>> hosts;
  net::Network net;
  mpi::MpiSystem mpi;
  MigrationEngine hpcm;
  bool crash_armed_ = false;
};

ApplicationSchema schema() {
  ApplicationSchema s{"counter"};
  s.set_est_exec_time(20.0);
  return s;
}

double counter_value(const obs::MetricsRegistry& metrics,
                     const std::string& name, const obs::Labels& labels = {}) {
  const obs::Counter* c = metrics.find_counter(name, labels);
  return c == nullptr ? 0.0 : c->value();
}

std::string attr_string(const obs::CompletedSpan& span, const std::string& key) {
  for (const auto& attr : span.attrs) {
    if (attr.key == key) {
      if (const auto* s = std::get_if<std::string>(&attr.value)) {
        return *s;
      }
    }
  }
  return "";
}

// ---- satellite: signal-span hygiene -------------------------------------

TEST(TransactionTest, SignalSpanClosedOnCrash) {
  Cluster c;
  CounterApp app;
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  // Signal delivered mid-chunk; the process is crashed before it reaches
  // the next poll-point, so the delivery span must be closed by the crash
  // path, not leak forever.
  c.engine.schedule_at(0.4, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.schedule_at(0.5, [&] { c.hpcm.crash(id); });
  c.engine.run_until(50.0);
  EXPECT_EQ(c.tracer.open_spans(), 0U);
  const auto spans = c.tracer.spans_named("migration.signal");
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_EQ(attr_string(spans[0], "closed_by"), "crash");
  EXPECT_EQ(c.hpcm.parked_for_relaunch(), std::vector<std::string>{"counter.0"});
}

TEST(TransactionTest, SignalSpanClosedOnExit) {
  Cluster c;
  CounterApp app;
  app.iterations = 2;
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  // Last poll-point is at ~1.0 s, exit at ~2.0 s: a signal delivered in
  // between is never polled and must be closed when the process exits.
  c.engine.schedule_at(1.5, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(50.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 2.0);
  EXPECT_EQ(app.finished_on, "ws1");
  EXPECT_TRUE(c.hpcm.history().empty());
  EXPECT_EQ(c.tracer.open_spans(), 0U);
  const auto spans = c.tracer.spans_named("migration.signal");
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_EQ(attr_string(spans[0], "closed_by"), "exit");
}

// ---- satellite: destination validation at the poll-point ----------------

TEST(TransactionTest, MalformedDestinationFileKeepsComputingOnSource) {
  Cluster c;
  CounterApp app;
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.run_until(0.5);
  const mpi::Proc* proc = c.mpi.find(id);
  ASSERT_NE(proc, nullptr);
  const host::Pid pid = proc->pid();
  const std::string key = "hpcm.migrate." + std::to_string(pid);
  // A commander bug or corrupted temp file must not start (or crash) the
  // protocol: validate up front, count it, keep computing on the source.
  const std::vector<std::string> garbage = {"", "   \t ", "ws2:abc",
                                            ":5002", "ws 2"};
  double when = 2.5;
  for (const auto& raw : garbage) {
    c.engine.schedule_at(when, [&c, key, pid, raw] {
      c.hosts[0]->tmpfiles().write(key, raw);
      EXPECT_TRUE(c.hosts[0]->processes().raise(pid, host::kSigMigrate));
    });
    when += 2.0;
  }
  c.engine.run_until(100.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  EXPECT_TRUE(c.hpcm.history().empty());
  EXPECT_EQ(counter_value(c.metrics, "migration.bad_destination"),
            static_cast<double>(garbage.size()));
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

TEST(TransactionTest, UnknownDestinationCountsBadDestination) {
  Cluster c;
  CounterApp app;
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(0.5, [&] {
    EXPECT_TRUE(c.hpcm.request_migration(id, "ghost-host"));
  });
  c.engine.run_until(100.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  EXPECT_TRUE(c.hpcm.history().empty());
  EXPECT_EQ(counter_value(c.metrics, "migration.bad_destination"), 1.0);
}

TEST(TransactionTest, PortSuffixedDestinationIsAccepted) {
  Cluster c;
  CounterApp app;
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.run_until(0.5);
  const mpi::Proc* proc = c.mpi.find(id);
  ASSERT_NE(proc, nullptr);
  const host::Pid pid = proc->pid();
  c.engine.schedule_at(2.5, [&c, pid] {
    // "host:port" with surrounding whitespace is the commander's native
    // temp-file format; the numeric port is validated then dropped.
    c.hosts[0]->tmpfiles().write("hpcm.migrate." + std::to_string(pid),
                                 "  ws2:5002 ");
    c.hosts[0]->processes().raise(pid, host::kSigMigrate);
  });
  c.engine.run_until(200.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws2");
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_TRUE(c.hpcm.history()[0].succeeded);
  EXPECT_EQ(counter_value(c.metrics, "migration.bad_destination"), 0.0);
}

// ---- tentpole: abort-and-rollback before the commit point ---------------

TEST(TransactionTest, CommittedOutcomeIsReported) {
  Cluster c;
  CounterApp app;
  std::vector<MigrationOutcome> outcomes;
  c.hpcm.set_outcome_listener(
      [&](const MigrationOutcome& o) { outcomes.push_back(o); });
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(200.0);
  EXPECT_EQ(app.finished_on, "ws2");
  ASSERT_EQ(outcomes.size(), 1U);
  EXPECT_EQ(outcomes[0].process, "counter.0");
  EXPECT_EQ(outcomes[0].source, "ws1");
  EXPECT_EQ(outcomes[0].destination, "ws2");
  EXPECT_EQ(outcomes[0].outcome, "committed");
  EXPECT_TRUE(outcomes[0].reason.empty());
  EXPECT_TRUE(outcomes[0].phase.empty());
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "committed");
}

TEST(TransactionTest, DestCrashDuringInitAbortsToSource) {
  Cluster c;
  CounterApp app;
  std::vector<MigrationOutcome> outcomes;
  c.hpcm.set_outcome_listener(
      [&](const MigrationOutcome& o) { outcomes.push_back(o); });
  c.crash_dest_at_phase("init");
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(200.0);
  // The source stayed authoritative: no iterations lost, no restart.
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  EXPECT_EQ(app.start_count, 1);
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  const MigrationTimeline& t = c.hpcm.history()[0];
  EXPECT_FALSE(t.succeeded);
  EXPECT_EQ(t.outcome, "aborted");
  EXPECT_EQ(t.abort_reason, "dest-failed");
  EXPECT_EQ(t.abort_phase, "init");
  ASSERT_EQ(outcomes.size(), 1U);
  EXPECT_EQ(outcomes[0].outcome, "aborted");
  EXPECT_EQ(outcomes[0].reason, "dest-failed");
  EXPECT_EQ(counter_value(c.metrics, "migration.aborts",
                          {{"reason", "dest-failed"}}),
            1.0);
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

TEST(TransactionTest, DestCrashDuringAckAbortsToSource) {
  Cluster c;
  CounterApp app;
  c.crash_dest_at_phase("ack");
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(200.0);
  // The crash landed before the resume ACK — still pre-commit, so the
  // process rolls back to source execution with its state intact.
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  EXPECT_EQ(app.start_count, 1);
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "aborted");
  EXPECT_EQ(c.hpcm.history()[0].abort_reason, "dest-failed");
  EXPECT_EQ(c.hpcm.history()[0].abort_phase, "ack");
}

TEST(TransactionTest, InitTimeoutAbortsToSource) {
  mpi::MpiSystem::Options slow_spawn;
  slow_spawn.spawn_overhead = 50.0;  // far beyond the phase budget
  MigrationEngine::Options options;
  options.init_timeout = 2.0;
  Cluster c(slow_spawn, options);
  CounterApp app;
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "aborted");
  EXPECT_EQ(c.hpcm.history()[0].abort_reason, "init-timeout");
  EXPECT_EQ(counter_value(c.metrics, "migration.aborts",
                          {{"reason", "init-timeout"}}),
            1.0);
}

TEST(TransactionTest, EagerTimeoutAbortsToSource) {
  MigrationEngine::Options options;
  options.eager_bytes = 10.0e6;  // ~0.8 s of eager transfer...
  options.eager_timeout = 0.1;   // ...into a 100 ms budget
  Cluster c({}, options);
  CounterApp app;
  app.opaque_bytes = 20.0e6;  // enough state to fill the eager window
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "aborted");
  EXPECT_EQ(c.hpcm.history()[0].abort_reason, "eager-timeout");
}

TEST(TransactionTest, AckTimeoutAbortsToSource) {
  MigrationEngine::Options options;
  options.ack_timeout = 0.5;     // smaller than the destination's
  options.restore_delay = 1.0;   // restore latency before it can ACK
  Cluster c({}, options);
  CounterApp app;
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(300.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "aborted");
  EXPECT_EQ(c.hpcm.history()[0].abort_reason, "ack-timeout");
  EXPECT_EQ(c.hpcm.history()[0].abort_phase, "ack");
}

// ---- tentpole: post-commit rollback to checkpoint-restart ---------------

TEST(TransactionTest, PostCommitDestCrashRollsBackToRelaunch) {
  Cluster c;
  CounterApp app;
  app.opaque_bytes = 50.0e6;  // ~4 s of background restore after resume
  std::vector<MigrationOutcome> outcomes;
  c.hpcm.set_outcome_listener(
      [&](const MigrationOutcome& o) { outcomes.push_back(o); });
  c.crash_dest_at_phase("restore", /*extra_delay=*/1.0);
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(60.0);
  // The destination died after the commit point: the transaction must be
  // rolled back (not silently lost) and the process parked for relaunch.
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "rolled-back");
  EXPECT_EQ(c.hpcm.history()[0].abort_reason, "restore-interrupted");
  ASSERT_EQ(outcomes.size(), 1U);
  EXPECT_EQ(outcomes[0].outcome, "rolled-back");
  EXPECT_EQ(c.hpcm.parked_for_relaunch(), std::vector<std::string>{"counter.0"});
  EXPECT_EQ(counter_value(c.metrics, "migration.rollbacks"), 1.0);
  // Checkpoint-restart path: relaunch elsewhere and run to completion (no
  // checkpoint exists, so this restarts from scratch — partial results
  // lost, process preserved).
  EXPECT_NE(c.hpcm.relaunch("counter.0", "ws3"), 0U);
  c.engine.run_until(200.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws3");
  EXPECT_EQ(app.start_count, 3);  // source + resumed-on-dest + relaunch
  EXPECT_EQ(c.tracer.open_spans(), 0U);
}

// ---- sabotage knob: prove the rollback is load-bearing ------------------

TEST(TransactionTest, SabotageSkipRollbackLosesTheProcess) {
  MigrationEngine::Options options;
  options.sabotage_skip_rollback = true;
  Cluster c({}, options);
  CounterApp app;
  c.crash_dest_at_phase("init");
  const mpi::RankId id = c.hpcm.launch("ws1", app.make(), "counter", schema());
  c.engine.schedule_at(5.0, [&] { c.hpcm.request_migration(id, "ws2"); });
  c.engine.run_until(200.0);
  // With the rollback skipped, the aborted migration loses the logical
  // process: it never finishes, is gone from MPI, and is NOT parked — the
  // exact bug class the chaos no-lost-process invariant exists to catch.
  EXPECT_DOUBLE_EQ(app.final_sum, -1.0);
  EXPECT_EQ(c.mpi.find(id), nullptr);
  EXPECT_TRUE(c.hpcm.parked_for_relaunch().empty());
  ASSERT_EQ(c.hpcm.history().size(), 1U);
  EXPECT_EQ(c.hpcm.history()[0].outcome, "aborted");
}

}  // namespace
}  // namespace ars::hpcm
