// End-to-end HPCM migration tests: the full paper protocol — signal at a
// poll-point, MPI-2 spawn/merge, state transfer with overlapped restore,
// and resumption on the destination with identical results.

#include "ars/hpcm/migration.hpp"

#include <gtest/gtest.h>

namespace ars::hpcm {
namespace {

using sim::Engine;
using sim::Task;

/// A miniature migratable workload: accumulates `iterations` compute chunks
/// into `sum`, with a poll-point between chunks.
struct CounterApp {
  int iterations = 20;
  double chunk_work = 1.0;
  double opaque_bytes = 1.0e6;
  // Observed results:
  double final_sum = -1.0;
  std::string finished_on;
  int start_count = 0;

  MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
      ++start_count;
      int i = 0;
      double sum = 0.0;
      if (ctx.restored()) {
        i = static_cast<int>(*ctx.state().get_int("i"));
        sum = *ctx.state().get_double("sum");
      }
      ctx.on_save([&ctx, &i, &sum, this] {
        ctx.state().set_int("i", i);
        ctx.state().set_double("sum", sum);
        ctx.state().set_opaque("heap", static_cast<std::uint64_t>(opaque_bytes));
      });
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        co_await proc.compute(chunk_work);
        sum += 1.0;
      }
      final_sum = sum;
      finished_on = proc.host().name();
    };
  }
};

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : net_(engine_, net_options()), mpi_(engine_, net_), hpcm_(mpi_) {
    host::HostSpec big;
    big.name = "ws1";
    host::HostSpec little;
    little.name = "ws2";
    little.byte_order = support::ByteOrder::kLittleEndian;  // heterogeneous
    host::HostSpec third;
    third.name = "ws3";
    for (const auto& spec : {big, little, third}) {
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.001;
    options.bandwidth_bps = 12.5e6;
    return options;
  }

  ApplicationSchema schema() {
    ApplicationSchema s{"counter"};
    s.set_est_exec_time(20.0);
    return s;
  }

  Engine engine_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  net::Network net_;
  mpi::MpiSystem mpi_;
  MigrationEngine hpcm_;
};

TEST_F(MigrationTest, RunsToCompletionWithoutMigration) {
  CounterApp app;
  hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.run_until(100.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
  EXPECT_EQ(app.start_count, 1);
  EXPECT_TRUE(hpcm_.history().empty());
}

TEST_F(MigrationTest, MigratesAndPreservesResult) {
  CounterApp app;
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] {
    EXPECT_TRUE(hpcm_.request_migration(id, "ws2"));
  });
  engine_.run_until(200.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);       // no iterations lost or redone
  EXPECT_EQ(app.finished_on, "ws2");           // finished on the destination
  EXPECT_EQ(app.start_count, 2);               // one restart after migration
  ASSERT_EQ(hpcm_.history().size(), 1U);
  EXPECT_TRUE(hpcm_.history()[0].succeeded);
}

TEST_F(MigrationTest, TimelinePhasesAreOrdered) {
  CounterApp app;
  app.opaque_bytes = 20.0e6;  // ~1.6 s of background transfer
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] { hpcm_.request_migration(id, "ws2"); });
  engine_.run_until(300.0);
  ASSERT_EQ(hpcm_.history().size(), 1U);
  const MigrationTimeline& t = hpcm_.history()[0];
  EXPECT_TRUE(t.succeeded);
  EXPECT_EQ(t.source, "ws1");
  EXPECT_EQ(t.destination, "ws2");
  // requested <= poll point <= init <= eager <= resumed <= completed
  EXPECT_NEAR(t.requested_at, 5.0, 1e-9);
  EXPECT_GE(t.poll_point_at, t.requested_at);
  EXPECT_GE(t.init_done_at, t.poll_point_at);
  EXPECT_GE(t.eager_done_at, t.init_done_at);
  EXPECT_GE(t.resumed_at, t.eager_done_at);
  EXPECT_GE(t.completed_at, t.resumed_at);
  // DPM spawn cost is visible in the initialization phase.
  EXPECT_GE(t.initialization(), mpi_.options().spawn_overhead);
  // The poll-point is reached within one compute chunk (~1 s).
  EXPECT_LE(t.reach_poll_point(), 1.5);
  EXPECT_NEAR(t.state_bytes, 20.0e6, 1e5);
}

TEST_F(MigrationTest, ResumeOverlapsBackgroundRestore) {
  CounterApp app;
  app.opaque_bytes = 50.0e6;  // ~4 s of background bulk
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] { hpcm_.request_migration(id, "ws2"); });
  engine_.run_until(300.0);
  ASSERT_EQ(hpcm_.history().size(), 1U);
  const MigrationTimeline& t = hpcm_.history()[0];
  // The paper's key §5.2 observation: the process resumes execution at the
  // destination BEFORE the migration (background restore) ends.
  EXPECT_LT(t.resumed_at, t.completed_at - 1.0);
}

TEST_F(MigrationTest, HeterogeneousMigrationDecodesState) {
  // ws1 is big-endian (UltraSPARC-like), ws2 little-endian.  State crosses
  // through the canonical encoding either way.
  CounterApp app;
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] { hpcm_.request_migration(id, "ws2"); });
  engine_.run_until(200.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  // And back again, little-endian -> big-endian.
  CounterApp app2;
  const mpi::RankId id2 =
      hpcm_.launch("ws2", app2.make(), "counter2", schema());
  engine_.schedule_at(210.0, [&] { hpcm_.request_migration(id2, "ws1"); });
  engine_.run_until(500.0);
  EXPECT_DOUBLE_EQ(app2.final_sum, 20.0);
  EXPECT_EQ(app2.finished_on, "ws1");
}

TEST_F(MigrationTest, DoubleMigration) {
  CounterApp app;
  app.iterations = 40;
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] { hpcm_.request_migration(id, "ws2"); });
  engine_.schedule_at(25.0, [&] { hpcm_.request_migration(id, "ws3"); });
  engine_.run_until(400.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 40.0);
  EXPECT_EQ(app.finished_on, "ws3");
  ASSERT_EQ(hpcm_.history().size(), 2U);
  EXPECT_TRUE(hpcm_.history()[0].succeeded);
  EXPECT_TRUE(hpcm_.history()[1].succeeded);
}

TEST_F(MigrationTest, FailedMigrationKeepsRunningOnSource) {
  CounterApp app;
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] {
    // Unknown destination: the migration fails but the app survives.
    hpcm_.request_migration(id, "ghost-host");
  });
  engine_.run_until(200.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws1");
}

TEST_F(MigrationTest, SelfMigrationIsIgnored) {
  CounterApp app;
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] { hpcm_.request_migration(id, "ws1"); });
  engine_.run_until(200.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_TRUE(hpcm_.history().empty());
}

TEST_F(MigrationTest, PreInitializedDaemonSkipsSpawnCost) {
  hpcm_.pre_initialize_on("ws2");
  engine_.run_until(1.0);  // let the daemon open its port
  ASSERT_TRUE(hpcm_.has_pre_initialized("ws2"));

  CounterApp app;
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.schedule_at(5.0, [&] { hpcm_.request_migration(id, "ws2"); });
  engine_.run_until(300.0);
  EXPECT_DOUBLE_EQ(app.final_sum, 20.0);
  EXPECT_EQ(app.finished_on, "ws2");
  ASSERT_EQ(hpcm_.history().size(), 1U);
  // Initialization avoided the DPM spawn overhead.
  EXPECT_LT(hpcm_.history()[0].initialization(),
            mpi_.options().spawn_overhead);
}

TEST_F(MigrationTest, SchemaStatsAreUpdatedOnExit) {
  CounterApp app;
  hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.run_until(100.0);
  const ApplicationSchema* s = hpcm_.schema("counter");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->observed_runs(), 1);
  // 20 chunks of 1 ref-second on an idle reference host: ~20 s.
  EXPECT_NEAR(s->est_exec_time(), 20.0, 2.0);
}

TEST_F(MigrationTest, RequestByHostAndPid) {
  CounterApp app;
  const mpi::RankId id = hpcm_.launch("ws1", app.make(), "counter", schema());
  engine_.run_until(1.0);
  const mpi::Proc* proc = mpi_.find(id);
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(hpcm_.request_migration("ws1", proc->pid(), "ws2"));
  EXPECT_FALSE(hpcm_.request_migration("ws1", 99999, "ws2"));
  engine_.run_until(200.0);
  EXPECT_EQ(app.finished_on, "ws2");
}

TEST_F(MigrationTest, InFlightMessagesAreForwarded) {
  // An MPI peer keeps sending to the migrating process; no message is lost.
  CounterApp unused;
  (void)unused;
  int received = 0;
  bool done = false;
  mpi::RankId worker_id = 0;

  // Worker: receives 10 messages from the feeder, with poll-points.
  auto worker = [&](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
    int i = ctx.restored() ? static_cast<int>(*ctx.state().get_int("i")) : 0;
    ctx.on_save([&ctx, &i] { ctx.state().set_int("i", i); });
    for (; i < 10; ++i) {
      co_await ctx.poll_point();
      (void)co_await proc.recv(proc.world(), mpi::kAnySource, 1);
      ++received;
    }
    done = true;
  };
  // Feeder: a plain fiber injecting via the MPI system's world comm.
  worker_id = hpcm_.launch("ws1", worker, "worker", schema());
  auto feeder = [&]() -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await sim::delay(engine_, 1.0);
      mpi::Proc* proc = mpi_.find(worker_id);
      if (proc == nullptr) {
        co_return;
      }
      mpi::MpiMessage m;
      m.context = proc->world().context();
      m.src_rank = 0;
      m.tag = 1;
      m.size_bytes = 100.0;
      mpi_.inject(worker_id, std::move(m));
    }
  };
  sim::Fiber::spawn(engine_, feeder(), "feeder");
  engine_.schedule_at(3.5, [&] { hpcm_.request_migration(worker_id, "ws2"); });
  engine_.run_until(300.0);
  EXPECT_TRUE(done);
  EXPECT_EQ(received, 10);
}

}  // namespace
}  // namespace ars::hpcm
