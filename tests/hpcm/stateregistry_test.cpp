#include "ars/hpcm/stateregistry.hpp"

#include <gtest/gtest.h>

namespace ars::hpcm {
namespace {

using support::ByteOrder;

TEST(StateRegistry, ScalarRoundTrips) {
  StateRegistry reg;
  reg.set_int("phase", 3);
  reg.set_double("progress", 0.75);
  reg.set_string("label", "sort");
  EXPECT_EQ(*reg.get_int("phase"), 3);
  EXPECT_DOUBLE_EQ(*reg.get_double("progress"), 0.75);
  EXPECT_EQ(*reg.get_string("label"), "sort");
}

TEST(StateRegistry, VectorRoundTrips) {
  StateRegistry reg;
  reg.set_doubles("values", {1.0, -2.5, 3e100});
  reg.set_ints("indices", {-1, 0, 42});
  EXPECT_EQ(*reg.get_doubles("values"),
            (std::vector<double>{1.0, -2.5, 3e100}));
  EXPECT_EQ(*reg.get_ints("indices"),
            (std::vector<std::int64_t>{-1, 0, 42}));
}

TEST(StateRegistry, MissingAndWrongTypeLookups) {
  StateRegistry reg;
  reg.set_int("x", 1);
  EXPECT_FALSE(reg.get_int("y").has_value());
  EXPECT_FALSE(reg.get_double("x").has_value());
  EXPECT_FALSE(reg.get_string("x").has_value());
}

TEST(StateRegistry, OverwriteReplacesTypeAndValue) {
  StateRegistry reg;
  reg.set_int("v", 1);
  reg.set_double("v", 2.5);
  EXPECT_FALSE(reg.get_int("v").has_value());
  EXPECT_DOUBLE_EQ(*reg.get_double("v"), 2.5);
  EXPECT_EQ(reg.size(), 1U);
}

TEST(StateRegistry, EncodeDecodeRoundTrip) {
  StateRegistry reg;
  reg.set_int("phase", -7);
  reg.set_double("sum", 123.456);
  reg.set_string("app", "test_tree");
  reg.set_doubles("tree", {9.0, 8.0, 7.0});
  reg.set_ints("levels", {20});
  reg.set_opaque("heap", 40 * 1024 * 1024);

  const auto wire = reg.encode(ByteOrder::kBigEndian);
  const auto decoded = StateRegistry::decode(wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_EQ(*decoded->get_int("phase"), -7);
  EXPECT_DOUBLE_EQ(*decoded->get_double("sum"), 123.456);
  EXPECT_EQ(*decoded->get_string("app"), "test_tree");
  EXPECT_EQ(*decoded->get_doubles("tree"),
            (std::vector<double>{9.0, 8.0, 7.0}));
  EXPECT_EQ(*decoded->get_ints("levels"), (std::vector<std::int64_t>{20}));
  EXPECT_EQ(*decoded->get_opaque_size("heap"), 40U * 1024 * 1024);
  EXPECT_EQ(decoded->size(), reg.size());
}

TEST(StateRegistry, HeterogeneousOriginIsRecorded) {
  // The canonical encoding must decode identically whatever the declared
  // origin architecture — that is HPCM's heterogeneity contract.
  StateRegistry reg;
  reg.set_double("pi", 3.14159);
  const auto from_sparc = reg.encode(ByteOrder::kBigEndian);
  const auto from_x86 = reg.encode(ByteOrder::kLittleEndian);
  // Same payload bytes except the origin marker.
  ASSERT_EQ(from_sparc.size(), from_x86.size());
  const auto a = StateRegistry::decode(from_sparc);
  const auto b = StateRegistry::decode(from_x86);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->origin(), ByteOrder::kBigEndian);
  EXPECT_EQ(b->origin(), ByteOrder::kLittleEndian);
  EXPECT_DOUBLE_EQ(*a->get_double("pi"), *b->get_double("pi"));
}

TEST(StateRegistry, TransferAccounting) {
  StateRegistry reg;
  reg.set_opaque("a", 1000);
  reg.set_opaque("b", 500);
  reg.set_int("phase", 1);
  EXPECT_EQ(reg.opaque_bytes(), 1500U);
  EXPECT_GT(reg.encoded_bytes(), 0U);
  EXPECT_EQ(reg.total_transfer_bytes(),
            reg.encoded_bytes() + reg.opaque_bytes());
}

TEST(StateRegistry, DecodeRejectsCorruption) {
  StateRegistry reg;
  reg.set_int("x", 1);
  auto wire = reg.encode();
  // Truncation.
  auto truncated = wire;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(StateRegistry::decode(truncated).has_value());
  // Bad magic.
  auto bad_magic = wire;
  bad_magic[0] = std::byte{0xff};
  EXPECT_FALSE(StateRegistry::decode(bad_magic).has_value());
  // Trailing garbage.
  auto trailing = wire;
  trailing.push_back(std::byte{0});
  EXPECT_FALSE(StateRegistry::decode(trailing).has_value());
  // Empty.
  EXPECT_FALSE(StateRegistry::decode({}).has_value());
}

TEST(StateRegistry, EmptyRegistryRoundTrips) {
  StateRegistry reg;
  const auto decoded = StateRegistry::decode(reg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 0U);
}

TEST(StateRegistry, EraseAndClear) {
  StateRegistry reg;
  reg.set_int("a", 1);
  reg.set_int("b", 2);
  reg.erase("a");
  EXPECT_FALSE(reg.contains("a"));
  EXPECT_TRUE(reg.contains("b"));
  reg.clear();
  EXPECT_EQ(reg.size(), 0U);
}

}  // namespace
}  // namespace ars::hpcm
