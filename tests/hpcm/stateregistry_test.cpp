#include "ars/hpcm/stateregistry.hpp"

#include <gtest/gtest.h>

#include "ars/support/byteorder.hpp"
#include "ars/support/rng.hpp"

namespace ars::hpcm {
namespace {

using support::ByteOrder;

TEST(StateRegistry, ScalarRoundTrips) {
  StateRegistry reg;
  reg.set_int("phase", 3);
  reg.set_double("progress", 0.75);
  reg.set_string("label", "sort");
  EXPECT_EQ(*reg.get_int("phase"), 3);
  EXPECT_DOUBLE_EQ(*reg.get_double("progress"), 0.75);
  EXPECT_EQ(*reg.get_string("label"), "sort");
}

TEST(StateRegistry, VectorRoundTrips) {
  StateRegistry reg;
  reg.set_doubles("values", {1.0, -2.5, 3e100});
  reg.set_ints("indices", {-1, 0, 42});
  EXPECT_EQ(*reg.get_doubles("values"),
            (std::vector<double>{1.0, -2.5, 3e100}));
  EXPECT_EQ(*reg.get_ints("indices"),
            (std::vector<std::int64_t>{-1, 0, 42}));
}

TEST(StateRegistry, MissingAndWrongTypeLookups) {
  StateRegistry reg;
  reg.set_int("x", 1);
  EXPECT_FALSE(reg.get_int("y").has_value());
  EXPECT_FALSE(reg.get_double("x").has_value());
  EXPECT_FALSE(reg.get_string("x").has_value());
}

TEST(StateRegistry, OverwriteReplacesTypeAndValue) {
  StateRegistry reg;
  reg.set_int("v", 1);
  reg.set_double("v", 2.5);
  EXPECT_FALSE(reg.get_int("v").has_value());
  EXPECT_DOUBLE_EQ(*reg.get_double("v"), 2.5);
  EXPECT_EQ(reg.size(), 1U);
}

TEST(StateRegistry, EncodeDecodeRoundTrip) {
  StateRegistry reg;
  reg.set_int("phase", -7);
  reg.set_double("sum", 123.456);
  reg.set_string("app", "test_tree");
  reg.set_doubles("tree", {9.0, 8.0, 7.0});
  reg.set_ints("levels", {20});
  reg.set_opaque("heap", 40 * 1024 * 1024);

  const auto wire = reg.encode(ByteOrder::kBigEndian);
  const auto decoded = StateRegistry::decode(wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
  EXPECT_EQ(*decoded->get_int("phase"), -7);
  EXPECT_DOUBLE_EQ(*decoded->get_double("sum"), 123.456);
  EXPECT_EQ(*decoded->get_string("app"), "test_tree");
  EXPECT_EQ(*decoded->get_doubles("tree"),
            (std::vector<double>{9.0, 8.0, 7.0}));
  EXPECT_EQ(*decoded->get_ints("levels"), (std::vector<std::int64_t>{20}));
  EXPECT_EQ(*decoded->get_opaque_size("heap"), 40U * 1024 * 1024);
  EXPECT_EQ(decoded->size(), reg.size());
}

TEST(StateRegistry, HeterogeneousOriginIsRecorded) {
  // The canonical encoding must decode identically whatever the declared
  // origin architecture — that is HPCM's heterogeneity contract.
  StateRegistry reg;
  reg.set_double("pi", 3.14159);
  const auto from_sparc = reg.encode(ByteOrder::kBigEndian);
  const auto from_x86 = reg.encode(ByteOrder::kLittleEndian);
  // Same payload bytes except the origin marker.
  ASSERT_EQ(from_sparc.size(), from_x86.size());
  const auto a = StateRegistry::decode(from_sparc);
  const auto b = StateRegistry::decode(from_x86);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->origin(), ByteOrder::kBigEndian);
  EXPECT_EQ(b->origin(), ByteOrder::kLittleEndian);
  EXPECT_DOUBLE_EQ(*a->get_double("pi"), *b->get_double("pi"));
}

TEST(StateRegistry, TransferAccounting) {
  StateRegistry reg;
  reg.set_opaque("a", 1000);
  reg.set_opaque("b", 500);
  reg.set_int("phase", 1);
  EXPECT_EQ(reg.opaque_bytes(), 1500U);
  EXPECT_GT(reg.encoded_bytes(), 0U);
  EXPECT_EQ(reg.total_transfer_bytes(),
            reg.encoded_bytes() + reg.opaque_bytes());
}

TEST(StateRegistry, DecodeRejectsCorruption) {
  StateRegistry reg;
  reg.set_int("x", 1);
  auto wire = reg.encode();
  // Truncation.
  auto truncated = wire;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(StateRegistry::decode(truncated).has_value());
  // Bad magic.
  auto bad_magic = wire;
  bad_magic[0] = std::byte{0xff};
  EXPECT_FALSE(StateRegistry::decode(bad_magic).has_value());
  // Trailing garbage.
  auto trailing = wire;
  trailing.push_back(std::byte{0});
  EXPECT_FALSE(StateRegistry::decode(trailing).has_value());
  // Empty.
  EXPECT_FALSE(StateRegistry::decode({}).has_value());
}

TEST(StateRegistry, EmptyRegistryRoundTrips) {
  StateRegistry reg;
  const auto decoded = StateRegistry::decode(reg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 0U);
}

TEST(StateRegistry, EraseAndClear) {
  StateRegistry reg;
  reg.set_int("a", 1);
  reg.set_int("b", 2);
  reg.erase("a");
  EXPECT_FALSE(reg.contains("a"));
  EXPECT_TRUE(reg.contains("b"));
  reg.clear();
  EXPECT_EQ(reg.size(), 0U);
}

// ---- advertised size vs. wire size (regression: encoded_bytes drift) ------

TEST(StateRegistry, EncodedBytesMatchesEncodeExactlyAcrossAllTypes) {
  // The network is charged from encoded_bytes(); the decoder parses
  // encode(). They must agree byte-for-byte for every entry type,
  // including the degenerate empty payloads.
  StateRegistry reg;
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());  // empty registry
  reg.set_int("i", -42);
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_double("d", 2.718281828);
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_string("s", "hello");
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_string("s_empty", "");
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_doubles("dv", {1.0, 2.0, 3.0});
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_doubles("dv_empty", {});
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_ints("iv", {7, 8});
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_ints("iv_empty", {});
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_opaque("blob", 123456789);
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_opaque("blob_empty", 0);
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
  reg.set_string("", "unnamed entry");  // empty name is legal on the wire
  EXPECT_EQ(reg.encoded_bytes(), reg.encode().size());
}

TEST(StateRegistry, EncodeIntoMatchesEncodeAndReusesBuffer) {
  StateRegistry reg;
  reg.set_doubles("grid", std::vector<double>(1000, 3.25));
  reg.set_ints("index", {-9, 0, 9});
  reg.set_string("tag", "precopy");
  const auto canonical = reg.encode(ByteOrder::kLittleEndian);
  std::vector<std::byte> buffer;
  reg.encode_into(buffer, ByteOrder::kLittleEndian);
  EXPECT_EQ(buffer, canonical);
  // Reuse with stale contents: must be cleared, not appended to.
  reg.encode_into(buffer, ByteOrder::kLittleEndian);
  EXPECT_EQ(buffer, canonical);
}

// ---- decode() hardening (regression: malformed wire) -----------------------

std::vector<std::byte> single_entry_wire(const StateRegistry& reg) {
  return reg.encode();
}

TEST(StateRegistry, DecodeRejectsDuplicateKeys) {
  StateRegistry reg;
  reg.set_int("x", 1);
  const auto wire = single_entry_wire(reg);
  // Rebuild the frame with the same entry twice: magic + origin + count=2
  // followed by the entry bytes repeated.
  std::vector<std::byte> dup(wire.begin(), wire.begin() + 5);
  std::vector<std::byte> count;
  support::put_be32(count, 2);
  dup.insert(dup.end(), count.begin(), count.end());
  dup.insert(dup.end(), wire.begin() + 9, wire.end());
  dup.insert(dup.end(), wire.begin() + 9, wire.end());
  const auto decoded = StateRegistry::decode(dup);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().message.find("duplicate"), std::string::npos);
}

TEST(StateRegistry, DecodeRejectsUnknownEntryType) {
  StateRegistry reg;
  reg.set_int("x", 1);
  auto wire = single_entry_wire(reg);
  // Frame: magic(4) origin(1) count(4) name-len(4) name("x",1) type(1)...
  wire[9 + 4 + 1] = std::byte{0x7f};
  const auto decoded = StateRegistry::decode(wire);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().message.find("unknown entry type"),
            std::string::npos);
}

TEST(StateRegistry, DecodeRejectsVectorLengthOverrunningBuffer) {
  StateRegistry reg;
  reg.set_ints("v", {1});
  auto wire = single_entry_wire(reg);
  // Patch the vector length prefix (after name-len(4)+name(1)+type(1)) to a
  // value far larger than the remaining buffer; a naive decoder would
  // reserve gigabytes or walk off the end.
  const std::size_t len_at = 9 + 4 + 1 + 1;
  wire[len_at] = std::byte{0xff};
  wire[len_at + 1] = std::byte{0xff};
  wire[len_at + 2] = std::byte{0xff};
  wire[len_at + 3] = std::byte{0xff};
  const auto decoded = StateRegistry::decode(wire);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().message.find("overruns"), std::string::npos);
}

TEST(StateRegistry, DecodeRejectsStringLengthOverrunningBuffer) {
  StateRegistry reg;
  reg.set_string("s", "ab");
  auto wire = single_entry_wire(reg);
  const std::size_t len_at = 9 + 4 + 1 + 1;  // string payload length prefix
  wire[len_at] = std::byte{0x7f};
  wire[len_at + 1] = std::byte{0xff};
  const auto decoded = StateRegistry::decode(wire);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().message.find("overruns"), std::string::npos);
}

TEST(StateRegistry, EveryTruncationFailsCleanly) {
  // No prefix of a valid frame may decode; each must produce a typed error,
  // never a crash or a partially-populated registry.
  StateRegistry reg;
  reg.set_int("i", 1);
  reg.set_string("s", "abc");
  reg.set_doubles("d", {1.5, 2.5});
  reg.set_ints("v", {10, 20, 30});
  reg.set_opaque("o", 4096);
  const auto wire = reg.encode();
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const auto decoded =
        StateRegistry::decode(std::span(wire.data(), n));
    EXPECT_FALSE(decoded.has_value()) << "prefix of " << n << " bytes decoded";
  }
}

// ---- fuzz-style round trips ------------------------------------------------

StateRegistry random_registry(support::Rng& rng, int max_entries) {
  StateRegistry reg;
  const int entries = static_cast<int>(rng.uniform_int(0, max_entries));
  for (int i = 0; i < entries; ++i) {
    const std::string name = "e" + std::to_string(i);
    switch (rng.uniform_int(0, 5)) {
      case 0:
        reg.set_int(name, rng.uniform_int(-1'000'000, 1'000'000));
        break;
      case 1:
        reg.set_double(name, rng.uniform(-1e12, 1e12));
        break;
      case 2: {
        std::string text;
        const int length = static_cast<int>(rng.uniform_int(0, 48));
        for (int c = 0; c < length; ++c) {
          text.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        }
        reg.set_string(name, std::move(text));
        break;
      }
      case 3: {
        std::vector<double> values(
            static_cast<std::size_t>(rng.uniform_int(0, 64)));
        for (double& v : values) v = rng.uniform(-1e6, 1e6);
        reg.set_doubles(name, std::move(values));
        break;
      }
      case 4: {
        std::vector<std::int64_t> values(
            static_cast<std::size_t>(rng.uniform_int(0, 64)));
        for (auto& v : values) v = rng.uniform_int(-1'000'000, 1'000'000);
        reg.set_ints(name, std::move(values));
        break;
      }
      default:
        reg.set_opaque(name,
                       static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 22)));
        break;
    }
  }
  return reg;
}

class StateFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StateFuzz, RoundTripAndAdvertisedSizeBothOrigins) {
  support::Rng rng{GetParam() * 7919 + 13};
  for (int iter = 0; iter < 20; ++iter) {
    const StateRegistry reg = random_registry(rng, 24);
    for (const auto origin :
         {ByteOrder::kBigEndian, ByteOrder::kLittleEndian}) {
      const auto wire = reg.encode(origin);
      ASSERT_EQ(reg.encoded_bytes(), wire.size());
      const auto decoded = StateRegistry::decode(wire);
      ASSERT_TRUE(decoded.has_value()) << decoded.error().to_string();
      EXPECT_EQ(decoded->size(), reg.size());
      EXPECT_EQ(decoded->origin(), origin);
      EXPECT_EQ(decoded->encode(origin), wire);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---- dirty tracking / pre-copy deltas --------------------------------------

TEST(StateRegistryDirty, GenerationAdvancesOnlyOnRealChange) {
  StateRegistry reg;
  EXPECT_EQ(reg.snapshot_generation(), 0U);
  reg.set_int("i", 1);
  const auto g1 = reg.snapshot_generation();
  EXPECT_GT(g1, 0U);
  reg.set_int("i", 1);  // value-identical: an on_save rewriting every
  EXPECT_EQ(reg.snapshot_generation(), g1);  // variable must not re-dirty
  reg.set_int("i", 2);
  EXPECT_GT(reg.snapshot_generation(), g1);
  reg.set_opaque("heap", 1024);
  const auto g2 = reg.snapshot_generation();
  reg.set_opaque("heap", 1024);  // same size: no-op
  EXPECT_EQ(reg.snapshot_generation(), g2);
  reg.set_opaque("heap", 2048);  // resize: whole entry dirty
  EXPECT_GT(reg.snapshot_generation(), g2);
}

TEST(StateRegistryDirty, DirtySinceScopesToSnapshot) {
  StateRegistry reg;
  reg.set_int("a", 1);
  reg.set_int("b", 2);
  const auto snap = reg.snapshot_generation();
  EXPECT_TRUE(reg.dirty_since(snap).empty());
  reg.set_int("b", 3);
  reg.set_string("c", "new");
  const auto dirty = reg.dirty_since(snap);
  EXPECT_EQ(dirty, (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(reg.dirty_since(0).size(), 3U);
}

TEST(StateRegistryDirty, TouchOpaqueChargesRegionGranularity) {
  StateRegistry reg;
  const std::uint64_t region = StateRegistry::kOpaqueRegionBytes;
  reg.set_opaque("heap", 10 * region);
  const auto snap = reg.snapshot_generation();
  EXPECT_EQ(reg.delta_bytes_since(snap), 0U);
  // One byte dirties exactly one region.
  reg.touch_opaque("heap", 5, 1);
  auto delta = reg.collect_delta(snap);
  EXPECT_EQ(delta.dirty_opaque_bytes, region);
  // A straddling touch dirties two.
  reg.touch_opaque("heap", region - 1, 2);
  delta = reg.collect_delta(snap);
  EXPECT_EQ(delta.dirty_opaque_bytes, 2 * region);
  // Touching past the end clamps; unknown and non-opaque names are no-ops.
  reg.touch_opaque("heap", 100 * region, 1);
  reg.touch_opaque("nope", 0, 1);
  reg.set_int("i", 1);
  reg.touch_opaque("i", 0, 1);
  EXPECT_EQ(reg.collect_delta(snap).dirty_opaque_bytes, 2 * region);
  // A whole-entry re-register charges everything.
  reg.set_opaque("heap", 12 * region);
  EXPECT_EQ(reg.collect_delta(snap).dirty_opaque_bytes, 12 * region);
}

TEST(StateRegistryDirty, DeltaAppliesOnTopOfBaseSnapshot) {
  StateRegistry src;
  src.set_int("iter", 10);
  src.set_doubles("grid", {1.0, 2.0});
  src.set_string("phase", "compute");
  src.set_opaque("heap", 1 << 20);

  // Destination stages the round-0 full snapshot.
  auto staged = StateRegistry::decode(src.encode());
  ASSERT_TRUE(staged.has_value());
  const auto snap = src.snapshot_generation();

  // Source keeps computing: mutates, adds, erases.
  src.set_int("iter", 11);
  src.set_doubles("grid", {3.0, 4.0});
  src.set_ints("born", {7});
  src.erase("phase");

  const auto delta = src.collect_delta(snap);
  EXPECT_EQ(delta.entries, 3U);
  EXPECT_EQ(delta.tombstones, 1U);
  const auto status = staged->apply_delta(delta.wire);
  ASSERT_TRUE(status.is_ok()) << status.error().to_string();
  EXPECT_EQ(*staged->get_int("iter"), 11);
  EXPECT_EQ(*staged->get_doubles("grid"), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(*staged->get_ints("born"), (std::vector<std::int64_t>{7}));
  EXPECT_FALSE(staged->contains("phase"));  // tombstone propagated
  EXPECT_EQ(staged->encode(), src.encode());
}

TEST(StateRegistryDirty, EraseThenReSetDropsTombstone) {
  StateRegistry reg;
  reg.set_int("x", 1);
  const auto snap = reg.snapshot_generation();
  reg.erase("x");
  EXPECT_EQ(reg.tombstones_since(snap), (std::vector<std::string>{"x"}));
  reg.set_int("x", 2);
  EXPECT_TRUE(reg.tombstones_since(snap).empty());
  EXPECT_EQ(reg.dirty_since(snap), (std::vector<std::string>{"x"}));
}

TEST(StateRegistryDirty, ClearTombstonesEveryName) {
  StateRegistry reg;
  reg.set_int("a", 1);
  reg.set_int("b", 2);
  const auto snap = reg.snapshot_generation();
  reg.clear();
  EXPECT_EQ(reg.tombstones_since(snap),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_GT(reg.delta_bytes_since(snap), 0U);
}

TEST(StateRegistryDirty, DeltaBytesSinceMatchesCollectedDelta) {
  support::Rng rng{1234};
  StateRegistry reg = random_registry(rng, 16);
  const auto snap = reg.snapshot_generation();
  EXPECT_EQ(reg.delta_bytes_since(snap), 0U);
  reg.set_int("fresh", 5);
  reg.set_opaque("bulk", 3 * StateRegistry::kOpaqueRegionBytes);
  reg.touch_opaque("bulk", 0, 1);
  const auto delta = reg.collect_delta(snap);
  EXPECT_EQ(reg.delta_bytes_since(snap),
            delta.wire.size() + delta.dirty_opaque_bytes);
}

TEST(StateRegistryDirty, ApplyDeltaIsAllOrNothing) {
  StateRegistry src;
  src.set_int("a", 1);
  const auto snap = src.snapshot_generation();
  src.set_int("a", 2);
  src.set_string("b", "late");
  src.erase("missing-anyway");
  auto delta = src.collect_delta(snap);

  StateRegistry dst;
  dst.set_int("a", 1);
  const auto before = dst.encode();
  // Truncated frame: nothing may be applied.
  auto truncated = delta.wire;
  truncated.resize(truncated.size() - 2);
  EXPECT_FALSE(dst.apply_delta(truncated).is_ok());
  EXPECT_EQ(dst.encode(), before);
  // Wrong magic (a full-snapshot frame is not a delta).
  EXPECT_FALSE(dst.apply_delta(src.encode()).is_ok());
  EXPECT_EQ(dst.encode(), before);
  // Trailing garbage.
  auto trailing = delta.wire;
  trailing.push_back(std::byte{0});
  EXPECT_FALSE(dst.apply_delta(trailing).is_ok());
  EXPECT_EQ(dst.encode(), before);
  // The intact frame applies.
  ASSERT_TRUE(dst.apply_delta(delta.wire).is_ok());
  EXPECT_EQ(*dst.get_int("a"), 2);
  EXPECT_EQ(*dst.get_string("b"), "late");
}

TEST(StateRegistryDirty, FuzzDeltaConvergesToSourceBothOrigins) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    support::Rng rng{seed};
    StateRegistry src = random_registry(rng, 12);
    const auto origin = (seed % 2 == 0) ? ByteOrder::kBigEndian
                                        : ByteOrder::kLittleEndian;
    auto staged = StateRegistry::decode(src.encode(origin));
    ASSERT_TRUE(staged.has_value());
    std::uint64_t shipped = src.snapshot_generation();
    // Several pre-copy rounds of random churn, each followed by a delta.
    for (int round = 0; round < 4; ++round) {
      const int mutations = static_cast<int>(rng.uniform_int(0, 8));
      for (int m = 0; m < mutations; ++m) {
        const std::string name = "e" + std::to_string(rng.uniform_int(0, 14));
        switch (rng.uniform_int(0, 3)) {
          case 0:
            src.set_int(name, rng.uniform_int(-100, 100));
            break;
          case 1:
            src.set_string(name, std::string(
                static_cast<std::size_t>(rng.uniform_int(0, 9)), 'z'));
            break;
          case 2:
            src.erase(name);
            break;
          default:
            src.set_doubles(name, {rng.uniform(0.0, 1.0)});
            break;
        }
      }
      const auto delta = src.collect_delta(shipped, origin);
      shipped = delta.to_generation;
      const auto status = staged->apply_delta(delta.wire);
      ASSERT_TRUE(status.is_ok()) << status.error().to_string();
    }
    EXPECT_EQ(staged->encode(origin), src.encode(origin))
        << "seed " << seed << " diverged";
    EXPECT_EQ(src.delta_bytes_since(shipped), 0U);
  }
}

}  // namespace
}  // namespace ars::hpcm
