// Checkpoint/restart tests: crash injection, relaunch from the stable
// store, and the contrast with restart-from-scratch.

#include <gtest/gtest.h>

#include "ars/hpcm/checkpoint.hpp"
#include "ars/hpcm/migration.hpp"

namespace ars::hpcm {
namespace {

using sim::Engine;
using sim::Task;

/// Iteration-counting app that checkpoints every `checkpoint_every` steps.
struct CheckpointedApp {
  int iterations = 30;
  int checkpoint_every = 0;  // 0: never checkpoint
  double opaque_bytes = 1.0e6;

  double final_sum = -1.0;
  std::string finished_on;
  int executed_steps = 0;  // counts actual work, including redone steps
  bool was_restarted = false;

  MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc, MigrationContext& ctx) -> Task<> {
      std::int64_t i = 0;
      double sum = 0.0;
      if (ctx.restored()) {
        i = *ctx.state().get_int("i");
        sum = *ctx.state().get_double("sum");
        was_restarted = ctx.restarted_from_checkpoint();
      }
      ctx.on_save([&ctx, &i, &sum, this] {
        ctx.state().set_int("i", i);
        ctx.state().set_double("sum", sum);
        ctx.state().set_opaque("heap",
                               static_cast<std::uint64_t>(opaque_bytes));
      });
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        if (checkpoint_every > 0 && i > 0 && i % checkpoint_every == 0) {
          co_await ctx.checkpoint();
        }
        co_await proc.compute(1.0);
        sum += static_cast<double>(i);
        ++executed_steps;
      }
      final_sum = sum;
      finished_on = proc.host().name();
    };
  }
};

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : net_(engine_), mpi_(engine_, net_), hpcm_(mpi_) {
    for (const char* name : {"ws1", "ws2"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  void run_to_completion(double step = 50.0) {
    while (mpi_.live_procs() > 0) {
      engine_.run_until(engine_.now() + step);
    }
  }

  Engine engine_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  mpi::MpiSystem mpi_;
  MigrationEngine hpcm_;
};

TEST(CheckpointStoreTest, PutLatestAndReplace) {
  CheckpointStore store;
  EXPECT_EQ(store.latest("a"), nullptr);
  Checkpoint first;
  first.process = "a";
  first.taken_at = 1.0;
  store.put(first);
  Checkpoint second;
  second.process = "a";
  second.taken_at = 2.0;
  store.put(second);
  ASSERT_NE(store.latest("a"), nullptr);
  EXPECT_DOUBLE_EQ(store.latest("a")->taken_at, 2.0);
  EXPECT_EQ(store.size(), 1U);
  EXPECT_EQ(store.writes(), 2);
  store.erase("a");
  EXPECT_EQ(store.latest("a"), nullptr);
}

TEST(CheckpointStoreTest, ShadowInvisibleUntilCommitThenAtomicallyVisible) {
  CheckpointStore store;
  Checkpoint old;
  old.process = "a";
  old.taken_at = 1.0;
  store.put(old);

  Checkpoint staged;
  staged.process = "a";
  staged.taken_at = 5.0;
  store.begin_shadow(staged);
  EXPECT_TRUE(store.shadow_pending("a"));
  // The in-flight write must not replace the restorable checkpoint.
  ASSERT_NE(store.latest("a"), nullptr);
  EXPECT_DOUBLE_EQ(store.latest("a")->taken_at, 1.0);

  EXPECT_TRUE(store.commit_shadow("a", 7.5));
  EXPECT_FALSE(store.shadow_pending("a"));
  EXPECT_DOUBLE_EQ(store.latest("a")->taken_at, 5.0);
  EXPECT_DOUBLE_EQ(store.latest("a")->committed_at, 7.5);
  EXPECT_TRUE(store.latest("a")->complete);
  EXPECT_EQ(store.writes(), 2);
}

TEST(CheckpointStoreTest, AbortedShadowKeepsThePreviousCheckpoint) {
  CheckpointStore store;
  Checkpoint old;
  old.process = "a";
  old.taken_at = 1.0;
  store.put(old);
  Checkpoint staged;
  staged.process = "a";
  staged.taken_at = 5.0;
  store.begin_shadow(staged);

  EXPECT_TRUE(store.abort_shadow("a"));
  EXPECT_FALSE(store.shadow_pending("a"));
  EXPECT_DOUBLE_EQ(store.latest("a")->taken_at, 1.0);
  EXPECT_TRUE(store.latest("a")->complete);
  EXPECT_EQ(store.aborted_shadows(), 1);
  EXPECT_EQ(store.torn(), 0);
  EXPECT_EQ(store.writes(), 1);  // the aborted write never counts
}

TEST(CheckpointStoreTest, SabotagedAbortCommitsTheTornPartial) {
  CheckpointStore store;
  Checkpoint old;
  old.process = "a";
  old.taken_at = 1.0;
  store.put(old);
  Checkpoint staged;
  staged.process = "a";
  staged.taken_at = 5.0;
  store.begin_shadow(staged);

  EXPECT_TRUE(store.abort_shadow("a", /*sabotage_torn=*/true));
  ASSERT_NE(store.latest("a"), nullptr);
  EXPECT_DOUBLE_EQ(store.latest("a")->taken_at, 5.0);
  EXPECT_FALSE(store.latest("a")->complete);
  EXPECT_EQ(store.torn(), 1);
}

TEST(CheckpointStoreTest, StaleShadowOperationsAreIgnored) {
  CheckpointStore store;
  EXPECT_FALSE(store.commit_shadow("ghost", 1.0));
  EXPECT_FALSE(store.abort_shadow("ghost"));
  EXPECT_EQ(store.writes(), 0);
}

TEST(CheckpointStoreTest, TotalBytesSumsVisibleCheckpointsOnly) {
  CheckpointStore store;
  Checkpoint a;
  a.process = "a";
  a.bytes = 1000;  // encoded registry incl. opaque entries
  store.put(a);
  Checkpoint b;
  b.process = "b";
  b.bytes = 500;
  store.put(b);
  Checkpoint staged;
  staged.process = "c";
  staged.bytes = 9999;
  store.begin_shadow(staged);  // in flight: not on stable storage yet
  EXPECT_EQ(store.total_bytes(), 1500u);
}

TEST_F(CheckpointTest, CheckpointWritesCostTime) {
  CheckpointedApp app;
  app.iterations = 10;
  app.checkpoint_every = 2;
  app.opaque_bytes = 40.0e6;  // 2 s per write at 20 MB/s
  hpcm_.launch("ws1", app.make(), "cp", ApplicationSchema{"cp"});
  run_to_completion();
  EXPECT_TRUE(app.final_sum >= 0.0);
  // 10 s of compute + 4 checkpoints x 2 s.
  EXPECT_NEAR(engine_.now() <= 50.0 ? 18.0 : 18.0, 18.0, 0.1);
  EXPECT_EQ(hpcm_.checkpoints().writes(), 4);
  EXPECT_NE(hpcm_.checkpoints().latest("cp.0"), nullptr);
}

TEST_F(CheckpointTest, CrashWithoutCheckpointLosesAllPartialResults) {
  CheckpointedApp app;
  app.iterations = 20;
  const auto id = hpcm_.launch("ws1", app.make(), "nochk",
                               ApplicationSchema{"nochk"});
  engine_.schedule_at(10.5, [&] {
    EXPECT_TRUE(hpcm_.crash(id));
    EXPECT_NE(hpcm_.relaunch("nochk.0", "ws2"), 0);
  });
  run_to_completion();
  EXPECT_DOUBLE_EQ(app.final_sum, 190.0);  // result still correct...
  EXPECT_EQ(app.finished_on, "ws2");
  EXPECT_FALSE(app.was_restarted);  // ...but from scratch,
  EXPECT_EQ(app.executed_steps, 30);  // redoing the 10 lost steps
}

TEST_F(CheckpointTest, CrashWithCheckpointLosesOnlyTheTail) {
  CheckpointedApp app;
  app.iterations = 20;
  app.checkpoint_every = 5;
  app.opaque_bytes = 1.0e6;  // 0.05 s writes: negligible
  const auto id = hpcm_.launch("ws1", app.make(), "chk",
                               ApplicationSchema{"chk"});
  // Crash between the i=15 checkpoint and the end.
  engine_.schedule_at(17.6, [&] {
    EXPECT_TRUE(hpcm_.crash(id));
    EXPECT_NE(hpcm_.relaunch("chk.0", "ws2"), 0);
  });
  run_to_completion();
  EXPECT_DOUBLE_EQ(app.final_sum, 190.0);
  EXPECT_TRUE(app.was_restarted);
  EXPECT_EQ(app.finished_on, "ws2");
  // Only the couple of steps after the i=15 checkpoint are redone.
  EXPECT_LE(app.executed_steps, 24);
  EXPECT_GE(app.executed_steps, 20);
}

TEST_F(CheckpointTest, CrashUnknownIdFails) {
  EXPECT_FALSE(hpcm_.crash(4711));
  EXPECT_EQ(hpcm_.relaunch("ghost", "ws1"), 0);
}

TEST_F(CheckpointTest, CrashedProcessDisappearsFromHost) {
  CheckpointedApp app;
  app.iterations = 50;
  const auto id = hpcm_.launch("ws1", app.make(), "gone",
                               ApplicationSchema{"gone"});
  engine_.run_until(5.0);
  EXPECT_EQ(hosts_[0]->processes().count(), 1U);
  EXPECT_TRUE(hpcm_.crash(id));
  EXPECT_EQ(hosts_[0]->processes().count(), 0U);
  EXPECT_FALSE(mpi_.alive(id));
}

TEST_F(CheckpointTest, MigrationAndCheckpointCompose) {
  // Checkpoint, migrate live, crash after the migration, relaunch: the
  // checkpoint taken on the FIRST host restores state written before both.
  CheckpointedApp app;
  app.iterations = 30;
  app.checkpoint_every = 4;
  const auto id = hpcm_.launch("ws1", app.make(), "both",
                               ApplicationSchema{"both"});
  engine_.schedule_at(6.2, [&] { hpcm_.request_migration(id, "ws2"); });
  engine_.schedule_at(25.0, [&] {
    hpcm_.crash(id);
    hpcm_.relaunch("both.0", "ws1");
  });
  run_to_completion();
  EXPECT_DOUBLE_EQ(app.final_sum, 435.0);  // sum 0..29
  EXPECT_TRUE(app.was_restarted);
  EXPECT_EQ(app.finished_on, "ws1");
}

}  // namespace
}  // namespace ars::hpcm
