#include "ars/xmlproto/xml.hpp"

#include <gtest/gtest.h>

namespace ars::xmlproto {
namespace {

TEST(XmlWriter, EmptyElementSelfCloses) {
  XmlNode node{"ping"};
  EXPECT_EQ(node.to_string(), "<ping/>");
}

TEST(XmlWriter, AttributesAreSortedAndEscaped) {
  XmlNode node{"msg"};
  node.set_attr("b", "two");
  node.set_attr("a", "o<n>e");
  EXPECT_EQ(node.to_string(), "<msg a=\"o&lt;n&gt;e\" b=\"two\"/>");
}

TEST(XmlWriter, TextAndChildren) {
  XmlNode node{"host"};
  node.add_child("name").set_text("ws1");
  node.add_child("load").set_text("0.256");
  EXPECT_EQ(node.to_string(),
            "<host><name>ws1</name><load>0.256</load></host>");
}

TEST(XmlEscape, AllSpecials) {
  EXPECT_EQ(xml_escape("a&b<c>d\"e'f"),
            "a&amp;b&lt;c&gt;d&quot;e&apos;f");
  EXPECT_EQ(xml_escape("plain"), "plain");
}

TEST(XmlParser, ParsesSimpleDocument) {
  const auto doc = parse_xml("<ars type=\"update\"><host>ws1</host></ars>");
  ASSERT_TRUE(doc.has_value());
  const XmlNode& root = **doc;
  EXPECT_EQ(root.name(), "ars");
  EXPECT_EQ(root.attr("type").value_or(""), "update");
  ASSERT_NE(root.child("host"), nullptr);
  EXPECT_EQ(root.child("host")->text(), "ws1");
}

TEST(XmlParser, SelfClosingAndWhitespace) {
  const auto doc = parse_xml("  <a>\n  <b/>\n  <c x='1'/>\n</a>  ");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)->children().size(), 2U);
  EXPECT_EQ((*doc)->child("c")->attr("x").value_or(""), "1");
}

TEST(XmlParser, SkipsDeclarationAndComments) {
  const auto doc = parse_xml(
      "<?xml version=\"1.0\"?><!-- header --><root><!-- inner -->"
      "<x>1</x></root><!-- trailer -->");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)->child("x")->text(), "1");
}

TEST(XmlParser, DecodesEntities) {
  const auto doc = parse_xml("<t a=\"x&amp;y\">1 &lt; 2 &gt; 0</t>");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)->attr("a").value_or(""), "x&y");
  EXPECT_EQ((*doc)->text(), "1 < 2 > 0");
}

TEST(XmlParser, RoundTripsWriterOutput) {
  XmlNode node{"schema"};
  node.set_attr("name", "test_tree");
  node.add_child("char").set_text("computing-intensive");
  XmlNode& req = node.add_child("requirements");
  req.add_child("memory").set_text("8388608");
  req.add_child("disk").set_text("0");
  const std::string wire = node.to_string();
  const auto doc = parse_xml(wire);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)->to_string(), wire);
}

TEST(XmlParser, RejectsMismatchedCloseTag) {
  const auto doc = parse_xml("<a><b></a></b>");
  ASSERT_FALSE(doc.has_value());
  EXPECT_EQ(doc.error().code, "xml_parse");
}

TEST(XmlParser, RejectsUnterminatedElement) {
  EXPECT_FALSE(parse_xml("<a><b>").has_value());
  EXPECT_FALSE(parse_xml("<a").has_value());
  EXPECT_FALSE(parse_xml("<a x=>").has_value());
}

TEST(XmlParser, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_xml("<a/>junk").has_value());
  EXPECT_FALSE(parse_xml("<a/><b/>").has_value());
}

TEST(XmlParser, RejectsUnknownEntity) {
  EXPECT_FALSE(parse_xml("<a>&nbsp;</a>").has_value());
}

TEST(XmlParser, RejectsEmptyAndNonXml) {
  EXPECT_FALSE(parse_xml("").has_value());
  EXPECT_FALSE(parse_xml("hello world").has_value());
}

TEST(XmlParser, NestedStructure) {
  const auto doc =
      parse_xml("<a><b><c><d>deep</d></c></b></a>");
  ASSERT_TRUE(doc.has_value());
  const XmlNode* d = (*doc)->child("b")->child("c")->child("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->text(), "deep");
}

TEST(XmlNodeQueries, ChildrenNamedAndFallbacks) {
  XmlNode node{"list"};
  node.add_child("item").set_text("1");
  node.add_child("item").set_text("2");
  node.add_child("other").set_text("x");
  EXPECT_EQ(node.children_named("item").size(), 2U);
  EXPECT_EQ(node.child_text_or("other", "?"), "x");
  EXPECT_EQ(node.child_text_or("missing", "?"), "?");
  EXPECT_EQ(node.attr_or("nope", "dflt"), "dflt");
}

}  // namespace
}  // namespace ars::xmlproto
