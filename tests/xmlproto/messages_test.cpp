#include "ars/xmlproto/messages.hpp"

#include <gtest/gtest.h>

namespace ars::xmlproto {
namespace {

template <typename T>
T round_trip(const T& message) {
  const std::string wire = encode(ProtocolMessage{message});
  auto decoded = decode(wire);
  EXPECT_TRUE(decoded.has_value()) << wire;
  EXPECT_TRUE(std::holds_alternative<T>(*decoded)) << wire;
  return std::get<T>(*decoded);
}

TEST(Messages, RegisterRoundTrip) {
  RegisterMsg m;
  m.info.host = "ws1";
  m.info.ip = "10.0.0.1";
  m.info.os = "SunOS 5.8";
  m.info.memory_bytes = 128ULL * 1024 * 1024;
  m.info.disk_bytes = 20ULL * 1024 * 1024 * 1024;
  m.info.cpu_speed = 1.0;
  m.info.byte_order = "big";
  m.monitor_port = 5001;
  m.commander_port = 5002;
  const RegisterMsg back = round_trip(m);
  EXPECT_EQ(back.info.host, "ws1");
  EXPECT_EQ(back.info.ip, "10.0.0.1");
  EXPECT_EQ(back.info.os, "SunOS 5.8");
  EXPECT_EQ(back.info.memory_bytes, m.info.memory_bytes);
  EXPECT_EQ(back.info.disk_bytes, m.info.disk_bytes);
  EXPECT_EQ(back.info.byte_order, "big");
  EXPECT_EQ(back.monitor_port, 5001);
  EXPECT_EQ(back.commander_port, 5002);
}

TEST(Messages, UpdateRoundTrip) {
  UpdateMsg m;
  m.status.host = "ws2";
  m.status.state = "overloaded";
  m.status.load1 = 2.52;
  m.status.load5 = 1.75;
  m.status.cpu_util = 0.97;
  m.status.processes = 151;
  m.status.mem_available_pct = 42.5;
  m.status.disk_available = 1234567;
  m.status.net_in_bps = 6.71e6;
  m.status.net_out_bps = 7.78e6;
  m.status.sockets_established = 703;
  m.status.timestamp = 280.0;
  const UpdateMsg back = round_trip(m);
  EXPECT_EQ(back.status.host, "ws2");
  EXPECT_EQ(back.status.state, "overloaded");
  EXPECT_NEAR(back.status.load1, 2.52, 1e-6);
  EXPECT_NEAR(back.status.cpu_util, 0.97, 1e-6);
  EXPECT_EQ(back.status.processes, 151);
  EXPECT_NEAR(back.status.net_in_bps, 6.71e6, 1.0);
  EXPECT_EQ(back.status.sockets_established, 703);
}

TEST(Messages, ConsultRoundTrip) {
  ConsultMsg m;
  m.host = "ws1";
  m.reason = "load1>2";
  const ConsultMsg back = round_trip(m);
  EXPECT_EQ(back.host, "ws1");
  EXPECT_EQ(back.reason, "load1>2");
}

TEST(Messages, EscalatedConsultRoundTrip) {
  // The optional routing fields an escalated consult carries: process
  // selection and the command return-path.
  ConsultMsg m;
  m.host = "ws1";
  m.reason = "overloaded (escalated by ws2)";
  m.origin_registry = "ws2";
  m.pid = 1042;
  m.process_name = "test_tree";
  m.schema_name = "tree20";
  m.commander_port = 5002;
  const ConsultMsg back = round_trip(m);
  EXPECT_EQ(back.origin_registry, "ws2");
  EXPECT_EQ(back.pid, 1042);
  EXPECT_EQ(back.process_name, "test_tree");
  EXPECT_EQ(back.schema_name, "tree20");
  EXPECT_EQ(back.commander_port, 5002);
}

TEST(Messages, PlainConsultOmitsRoutingFields) {
  // A monitor's plain consult must keep its original wire shape: the
  // routing fields are encoded only when set.
  ConsultMsg m;
  m.host = "ws1";
  m.reason = "load1>2";
  const std::string wire = encode(ProtocolMessage{m});
  EXPECT_EQ(wire.find("origin_registry"), std::string::npos);
  EXPECT_EQ(wire.find("commander_port"), std::string::npos);
  EXPECT_EQ(wire.find("pid"), std::string::npos);
  const ConsultMsg back = round_trip(m);
  EXPECT_EQ(back.pid, 0);
  EXPECT_EQ(back.commander_port, 0);
  EXPECT_TRUE(back.origin_registry.empty());
}

TEST(Messages, UpdateBatchRoundTrip) {
  UpdateBatchMsg m;
  for (int i = 1; i <= 3; ++i) {
    LeaseRenewal renewal;
    renewal.host = "ws" + std::to_string(i);
    renewal.state = i == 2 ? "busy" : "free";
    renewal.timestamp = 100.0 + i;
    m.renewals.push_back(renewal);
  }
  const UpdateBatchMsg back = round_trip(m);
  ASSERT_EQ(back.renewals.size(), 3U);
  EXPECT_EQ(back.renewals[0].host, "ws1");
  EXPECT_EQ(back.renewals[1].state, "busy");
  EXPECT_DOUBLE_EQ(back.renewals[2].timestamp, 103.0);
}

TEST(Messages, EmptyUpdateBatchRoundTrip) {
  const UpdateBatchMsg back = round_trip(UpdateBatchMsg{});
  EXPECT_TRUE(back.renewals.empty());
}

TEST(Messages, MigrateRoundTrip) {
  MigrateCmd m;
  m.pid = 1042;
  m.process_name = "test_tree";
  m.dest_host = "ws4";
  m.dest_ip = "10.0.0.4";
  m.dest_port = 5002;
  m.schema_name = "tree20";
  const MigrateCmd back = round_trip(m);
  EXPECT_EQ(back.pid, 1042);
  EXPECT_EQ(back.process_name, "test_tree");
  EXPECT_EQ(back.dest_host, "ws4");
  EXPECT_EQ(back.dest_port, 5002);
  EXPECT_EQ(back.schema_name, "tree20");
}

TEST(Messages, AckRoundTrip) {
  AckMsg m;
  m.of = "migrate";
  m.ok = false;
  m.detail = "no such pid";
  const AckMsg back = round_trip(m);
  EXPECT_EQ(back.of, "migrate");
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.detail, "no such pid");
}

TEST(Messages, ProcessRegisterRoundTrip) {
  ProcessRegisterMsg m;
  m.host = "ws1";
  m.pid = 1001;
  m.name = "test_tree";
  m.start_time = 280.0;
  m.migration_enabled = true;
  m.schema_name = "tree20";
  const ProcessRegisterMsg back = round_trip(m);
  EXPECT_EQ(back.pid, 1001);
  EXPECT_TRUE(back.migration_enabled);
  EXPECT_DOUBLE_EQ(back.start_time, 280.0);
}

TEST(Messages, ProcessDeregisterRoundTrip) {
  ProcessDeregisterMsg m;
  m.host = "ws1";
  m.pid = 1001;
  const ProcessDeregisterMsg back = round_trip(m);
  EXPECT_EQ(back.host, "ws1");
  EXPECT_EQ(back.pid, 1001);
}

TEST(Messages, HealthRoundTrip) {
  HealthReportMsg m;
  m.registry_host = "cluster-a";
  m.registry_port = 5050;
  m.free_hosts = 3;
  m.busy_hosts = 2;
  m.overloaded_hosts = 1;
  m.timestamp = 99.5;
  const HealthReportMsg back = round_trip(m);
  EXPECT_EQ(back.registry_port, 5050);
  EXPECT_EQ(back.free_hosts, 3);
  EXPECT_EQ(back.overloaded_hosts, 1);
}

TEST(Messages, RecommendRoundTrip) {
  RecommendMsg m;
  m.found = true;
  m.dest_host = "ws4";
  m.dest_ip = "10.0.0.4";
  m.dest_port = 5002;
  const RecommendMsg back = round_trip(m);
  EXPECT_TRUE(back.found);
  EXPECT_EQ(back.dest_host, "ws4");
}

TEST(Messages, RecommendNotFound) {
  RecommendMsg m;
  m.found = false;
  const RecommendMsg back = round_trip(m);
  EXPECT_FALSE(back.found);
  EXPECT_TRUE(back.dest_host.empty());
}

TEST(Messages, MigrationOutcomeRoundTrip) {
  MigrationOutcomeMsg m;
  m.process = "test_tree";
  m.source = "ws1";
  m.destination = "ws4";
  m.outcome = "aborted";
  m.reason = "dest-failed";
  m.phase = "eager";
  const MigrationOutcomeMsg back = round_trip(m);
  EXPECT_EQ(back.process, "test_tree");
  EXPECT_EQ(back.source, "ws1");
  EXPECT_EQ(back.destination, "ws4");
  EXPECT_EQ(back.outcome, "aborted");
  EXPECT_EQ(back.reason, "dest-failed");
  EXPECT_EQ(back.phase, "eager");
}

TEST(Messages, CommittedOutcomeOmitsFailureDetail) {
  // A committed outcome keeps the compact wire shape: reason/phase are
  // encoded only when non-empty.
  MigrationOutcomeMsg m;
  m.process = "test_tree";
  m.source = "ws1";
  m.destination = "ws4";
  m.outcome = "committed";
  const std::string wire = encode(ProtocolMessage{m});
  EXPECT_EQ(wire.find("reason"), std::string::npos);
  EXPECT_EQ(wire.find("phase"), std::string::npos);
  const MigrationOutcomeMsg back = round_trip(m);
  EXPECT_EQ(back.outcome, "committed");
  EXPECT_TRUE(back.reason.empty());
  EXPECT_TRUE(back.phase.empty());
}

TEST(Messages, PrecopyAccountingRoundTripsWhenRoundsShipped) {
  MigrationOutcomeMsg m;
  m.process = "test_tree";
  m.source = "ws1";
  m.destination = "ws4";
  m.outcome = "committed";
  m.precopy_rounds = 3;
  m.precopy_bytes = 12582912;  // 12 MiB moved outside the freeze window
  const MigrationOutcomeMsg back = round_trip(m);
  EXPECT_EQ(back.precopy_rounds, 3);
  EXPECT_EQ(back.precopy_bytes, 12582912U);
}

TEST(Messages, StopAndCopyOutcomeOmitsPrecopyFields) {
  // Zero rounds means a stop-and-copy transaction: the wire form must stay
  // byte-compatible with pre-precopy peers, so the fields are absent — and
  // a decoder reading a legacy document defaults them to zero.
  MigrationOutcomeMsg m;
  m.process = "test_tree";
  m.source = "ws1";
  m.destination = "ws4";
  m.outcome = "committed";
  const std::string wire = encode(ProtocolMessage{m});
  EXPECT_EQ(wire.find("precopy"), std::string::npos);
  const MigrationOutcomeMsg back = round_trip(m);
  EXPECT_EQ(back.precopy_rounds, 0);
  EXPECT_EQ(back.precopy_bytes, 0U);
}

TEST(Messages, MigrationOutcomeRejectsMissingFields) {
  // Every routing field is mandatory: the registry keys its debit-credit
  // bookkeeping on (process, source, destination, outcome).
  EXPECT_FALSE(decode("<ars type=\"migration_outcome\"/>").has_value());
  EXPECT_FALSE(decode("<ars type=\"migration_outcome\">"
                      "<process>p</process><source>ws1</source>"
                      "<destination>ws4</destination></ars>")
                   .has_value());
}

TEST(Messages, ResizeCmdRoundTrip) {
  ResizeCmd m;
  m.job = "stencil";
  m.verb = "expand";
  m.delta = 3;
  m.strategy = "tree";
  m.hosts = {"ws4", "ws5", "ws6"};
  const ResizeCmd back = round_trip(m);
  EXPECT_EQ(back.job, "stencil");
  EXPECT_EQ(back.verb, "expand");
  EXPECT_EQ(back.delta, 3);
  EXPECT_EQ(back.strategy, "tree");
  EXPECT_EQ(back.hosts, m.hosts);
}

TEST(Messages, ShrinkCmdWithoutHostsRoundTrip) {
  ResizeCmd m;
  m.job = "stencil";
  m.verb = "shrink";
  m.delta = 2;
  const ResizeCmd back = round_trip(m);
  EXPECT_EQ(back.verb, "shrink");
  EXPECT_EQ(back.delta, 2);
  EXPECT_TRUE(back.hosts.empty());
  EXPECT_TRUE(back.strategy.empty());
}

TEST(Messages, ResizeOutcomeRoundTrip) {
  ResizeOutcomeMsg m;
  m.job = "stencil";
  m.verb = "expand";
  m.delta = 3;
  m.outcome = "aborted";
  m.reason = "spawn-timeout";
  m.phase = "spawn";
  m.ranks_after = 4;
  const ResizeOutcomeMsg back = round_trip(m);
  EXPECT_EQ(back.job, "stencil");
  EXPECT_EQ(back.verb, "expand");
  EXPECT_EQ(back.delta, 3);
  EXPECT_EQ(back.outcome, "aborted");
  EXPECT_EQ(back.reason, "spawn-timeout");
  EXPECT_EQ(back.phase, "spawn");
  EXPECT_EQ(back.ranks_after, 4);
}

TEST(Messages, CommittedResizeOutcomeOmitsFailureDetail) {
  ResizeOutcomeMsg m;
  m.job = "stencil";
  m.verb = "shrink";
  m.delta = 1;
  m.outcome = "committed";
  m.ranks_after = 3;
  const std::string wire = encode(ProtocolMessage{m});
  EXPECT_EQ(wire.find("reason"), std::string::npos);
  EXPECT_EQ(wire.find("phase"), std::string::npos);
  const ResizeOutcomeMsg back = round_trip(m);
  EXPECT_EQ(back.outcome, "committed");
  EXPECT_TRUE(back.reason.empty());
  EXPECT_EQ(back.ranks_after, 3);
}

TEST(Messages, ResizeRejectsMissingFields) {
  EXPECT_FALSE(decode("<ars type=\"resize\"/>").has_value());
  EXPECT_FALSE(decode("<ars type=\"resize_outcome\"/>").has_value());
  EXPECT_FALSE(decode("<ars type=\"resize\">"
                      "<job>j</job><verb>expand</verb></ars>")
                   .has_value());
}

TEST(Messages, MessageTypeNames) {
  EXPECT_EQ(message_type(ProtocolMessage{RegisterMsg{}}), "register");
  EXPECT_EQ(message_type(ProtocolMessage{UpdateMsg{}}), "update");
  EXPECT_EQ(message_type(ProtocolMessage{MigrateCmd{}}), "migrate");
  EXPECT_EQ(message_type(ProtocolMessage{RecommendMsg{}}), "recommend");
  EXPECT_EQ(message_type(ProtocolMessage{ResizeCmd{}}), "resize");
  EXPECT_EQ(message_type(ProtocolMessage{ResizeOutcomeMsg{}}),
            "resize_outcome");
}

TEST(Messages, DecodeRejectsGarbage) {
  EXPECT_FALSE(decode("not xml").has_value());
  EXPECT_FALSE(decode("<other/>").has_value());
  EXPECT_FALSE(decode("<ars/>").has_value());
  EXPECT_FALSE(decode("<ars type=\"nosuch\"/>").has_value());
}

TEST(Messages, DecodeRejectsMissingFields) {
  // A consult without its mandatory <host>.
  EXPECT_FALSE(decode("<ars type=\"consult\"/>").has_value());
  // An update whose load1 is not numeric.
  const std::string wire = encode(ProtocolMessage{UpdateMsg{}});
  std::string broken = wire;
  const auto pos = broken.find("<load1>");
  broken.replace(pos, broken.find("</load1>") - pos + 8,
                 "<load1>abc</load1>");
  EXPECT_FALSE(decode(broken).has_value());
}

TEST(Messages, CkptIoRequestRoundTrip) {
  CkptIoRequestMsg m;
  m.host = "ws3";
  m.process = "job2.0";
  m.verb = "request";
  m.bytes = 40'000'000;
  m.risk = 1.75;
  const CkptIoRequestMsg back = round_trip(m);
  EXPECT_EQ(back.host, "ws3");
  EXPECT_EQ(back.process, "job2.0");
  EXPECT_EQ(back.verb, "request");
  EXPECT_EQ(back.bytes, 40'000'000u);
  EXPECT_DOUBLE_EQ(back.risk, 1.75);
}

TEST(Messages, CkptIoDoneOmitsOptionalFields) {
  CkptIoRequestMsg m;
  m.host = "ws1";
  m.process = "job1.0";
  m.verb = "done";
  const std::string wire = encode(ProtocolMessage{m});
  // Compact wire rule: zero bytes/risk are not serialized at all.
  EXPECT_EQ(wire.find("<bytes>"), std::string::npos);
  EXPECT_EQ(wire.find("<risk>"), std::string::npos);
  const CkptIoRequestMsg back = round_trip(m);
  EXPECT_EQ(back.verb, "done");
  EXPECT_EQ(back.bytes, 0u);
  EXPECT_DOUBLE_EQ(back.risk, 0.0);
}

TEST(Messages, CkptIoGrantRoundTrip) {
  CkptIoGrantMsg m;
  m.process = "job2.0";
  m.verb = "defer";
  m.retry_after = 7.5;
  const CkptIoGrantMsg back = round_trip(m);
  EXPECT_EQ(back.process, "job2.0");
  EXPECT_EQ(back.verb, "defer");
  EXPECT_DOUBLE_EQ(back.retry_after, 7.5);

  CkptIoGrantMsg admit;
  admit.process = "job1.0";
  admit.verb = "admit";
  const std::string wire = encode(ProtocolMessage{admit});
  EXPECT_EQ(wire.find("<retry_after>"), std::string::npos);
  const CkptIoGrantMsg admit_back = round_trip(admit);
  EXPECT_EQ(admit_back.verb, "admit");
  EXPECT_DOUBLE_EQ(admit_back.retry_after, 0.0);
}

TEST(Messages, CkptIoDecodeRejectsMissingFields) {
  EXPECT_FALSE(decode("<ars type=\"ckpt_io_request\"/>").has_value());
  EXPECT_FALSE(decode("<ars type=\"ckpt_io_grant\"/>").has_value());
}

TEST(Messages, EscapedContentSurvives) {
  AckMsg m;
  m.of = "migrate";
  m.detail = "reason: <load & sockets>";
  const AckMsg back = round_trip(m);
  EXPECT_EQ(back.detail, "reason: <load & sockets>");
}

}  // namespace
}  // namespace ars::xmlproto
