// Property-style sweeps for the XML layer: randomly generated documents
// must round-trip writer -> parser -> writer byte-identically, and random
// byte mutations of valid documents must never crash the parser.

#include <gtest/gtest.h>

#include "ars/support/rng.hpp"
#include "ars/support/strings.hpp"
#include "ars/xmlproto/messages.hpp"
#include "ars/xmlproto/xml.hpp"

namespace ars::xmlproto {
namespace {

std::string random_name(support::Rng& rng) {
  static const char* kNames[] = {"host", "load", "status", "cfg", "item",
                                 "rule", "x", "metric", "node", "entry"};
  return kNames[rng.uniform_int(0, 9)];
}

std::string random_text(support::Rng& rng) {
  std::string text;
  const int length = static_cast<int>(rng.uniform_int(0, 24));
  for (int i = 0; i < length; ++i) {
    // Includes the XML special characters to exercise escaping.
    static const char kAlphabet[] =
        "abc XYZ0123456789&<>\"'._-";
    text.push_back(
        kAlphabet[rng.uniform_int(0, sizeof kAlphabet - 2)]);
  }
  return text;
}

void build_random(XmlNode& node, support::Rng& rng, int depth) {
  const int attrs = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < attrs; ++i) {
    node.set_attr("a" + std::to_string(i), random_text(rng));
  }
  if (depth <= 0 || rng.uniform() < 0.4) {
    // The parser canonicalizes element text by trimming surrounding
    // whitespace, so generate pre-trimmed text for byte-exact round trips.
    node.set_text(std::string(support::trim(random_text(rng))));
    return;
  }
  const int children = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < children; ++i) {
    build_random(node.add_child(random_name(rng)), rng, depth - 1);
  }
}

class XmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlFuzz, RandomDocumentRoundTrips) {
  support::Rng rng{GetParam()};
  XmlNode root{random_name(rng)};
  build_random(root, rng, 4);
  const std::string wire = root.to_string();
  const auto parsed = parse_xml(wire);
  ASSERT_TRUE(parsed.has_value())
      << wire << " -> " << parsed.error().to_string();
  EXPECT_EQ((*parsed)->to_string(), wire);
}

TEST_P(XmlFuzz, MutatedDocumentNeverCrashesParser) {
  support::Rng rng{GetParam() ^ 0xabcdef};
  XmlNode root{random_name(rng)};
  build_random(root, rng, 3);
  std::string wire = root.to_string();
  // Apply a handful of random mutations; the parser must either succeed or
  // return an error, never crash or hang.
  for (int mutation = 0; mutation < 16; ++mutation) {
    std::string mutated = wire;
    const auto position = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        mutated[position] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:
        mutated.erase(position, 1);
        break;
      default:
        mutated.insert(position, 1,
                       static_cast<char>(rng.uniform_int(32, 126)));
        break;
    }
    const auto result = parse_xml(mutated);
    if (result.has_value()) {
      // If it still parses, it must re-serialize without crashing.
      (void)(*result)->to_string();
    }
  }
}

TEST_P(XmlFuzz, MutatedProtocolMessagesNeverCrashDecoder) {
  support::Rng rng{GetParam() ^ 0x1234};
  UpdateMsg update;
  update.status.host = "ws1";
  update.status.state = "busy";
  update.status.load1 = 1.5;
  std::string wire = encode(ProtocolMessage{update});
  for (int mutation = 0; mutation < 16; ++mutation) {
    std::string mutated = wire;
    const auto position = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[position] = static_cast<char>(rng.uniform_int(32, 126));
    (void)decode(mutated);  // must not crash; error results are fine
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ars::xmlproto
