// Envelope trace-context tests (obs v2): the causal TraceCtx rides on the
// wire envelope as root attributes, round-trips through decode_envelope,
// and — crucially — changes NOTHING when unset.  Byte-identical output for
// an unset context is what keeps pre-v2 wire layouts and the chaos
// byte-exact replay unchanged when tracing is off.

#include "ars/xmlproto/messages.hpp"

#include <gtest/gtest.h>

#include "ars/obs/trace_ctx.hpp"

namespace ars::xmlproto {
namespace {

ConsultMsg sample_consult() {
  ConsultMsg consult;
  consult.host = "ws1";
  consult.reason = "overloaded for 63.0s";
  return consult;
}

std::vector<ProtocolMessage> sample_messages() {
  std::vector<ProtocolMessage> messages;
  messages.emplace_back(sample_consult());
  UpdateMsg update;
  update.status.host = "ws2";
  update.status.state = "busy";
  update.status.load1 = 0.97;
  messages.emplace_back(update);
  MigrateCmd command;
  command.pid = 12;
  command.process_name = "test_tree.0";
  command.dest_host = "ws4";
  messages.emplace_back(command);
  MigrationOutcomeMsg outcome;
  outcome.process = "test_tree.0";
  outcome.outcome = "committed";
  messages.emplace_back(outcome);
  return messages;
}

TEST(EnvelopeTraceCtx, UnsetContextIsByteIdenticalToPlainEncode) {
  for (const ProtocolMessage& message : sample_messages()) {
    EXPECT_EQ(encode(message), encode(message, obs::TraceCtx{}))
        << message_type(message);
  }
}

TEST(EnvelopeTraceCtx, PlainDocumentDecodesToUnsetContext) {
  for (const ProtocolMessage& message : sample_messages()) {
    const auto envelope = decode_envelope(encode(message));
    ASSERT_TRUE(envelope.has_value()) << message_type(message);
    EXPECT_FALSE(envelope->trace.set()) << message_type(message);
    EXPECT_EQ(envelope->trace.txn, 0u);
    EXPECT_EQ(envelope->trace.parent_span, 0u);
    EXPECT_EQ(message_type(envelope->message), message_type(message));
  }
}

TEST(EnvelopeTraceCtx, FullContextRoundTrips) {
  const obs::TraceCtx ctx{/*txn=*/7, /*parent_span=*/3};
  for (const ProtocolMessage& message : sample_messages()) {
    const std::string wire = encode(message, ctx);
    const auto envelope = decode_envelope(wire);
    ASSERT_TRUE(envelope.has_value()) << wire;
    EXPECT_EQ(envelope->trace.txn, 7u) << message_type(message);
    EXPECT_EQ(envelope->trace.parent_span, 3u) << message_type(message);
    EXPECT_EQ(message_type(envelope->message), message_type(message));
  }
}

TEST(EnvelopeTraceCtx, RootOnlyContextOmitsParentSpan) {
  // pspan is emitted only when nonzero: a transaction-root message carries
  // just the txn attribute.
  const ProtocolMessage message{sample_consult()};
  const std::string wire = encode(message, obs::TraceCtx{/*txn=*/42});
  EXPECT_NE(wire.find("txn"), std::string::npos);
  EXPECT_EQ(wire.find("pspan"), std::string::npos) << wire;

  const auto envelope = decode_envelope(wire);
  ASSERT_TRUE(envelope.has_value());
  EXPECT_EQ(envelope->trace.txn, 42u);
  EXPECT_EQ(envelope->trace.parent_span, 0u);
}

TEST(EnvelopeTraceCtx, ContextSurvivesTypedPayloadIntact) {
  const obs::TraceCtx ctx{/*txn=*/9, /*parent_span=*/5};
  const auto envelope = decode_envelope(encode(sample_consult(), ctx));
  ASSERT_TRUE(envelope.has_value());
  const auto* consult = std::get_if<ConsultMsg>(&envelope->message);
  ASSERT_NE(consult, nullptr);
  EXPECT_EQ(consult->host, "ws1");
  EXPECT_EQ(consult->reason, "overloaded for 63.0s");
}

}  // namespace
}  // namespace ars::xmlproto
