// Registry-driven malleability: the sweep plans expand commands into free
// capacity and shrink commands off overloaded member hosts, the commander
// forwards them to the malleable engine, and the terminal outcome credits
// the resize placement debits — the full closed loop.

#include <gtest/gtest.h>

#include <algorithm>

#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/rules/policy.hpp"

namespace ars::core {
namespace {

malleable::JobSpec long_job(const std::string& name) {
  malleable::JobSpec spec;
  spec.name = name;
  spec.workload.blocks = 32;
  spec.workload.work_per_block = 0.4;
  spec.workload.bytes_per_block = 1.0e5;
  spec.workload.iterations = 60;
  spec.min_ranks = 1;
  spec.max_ranks = 16;
  return spec;
}

TEST(ResizePlanner, ExpandsIntoFreeCapacity) {
  ClusterConfig config = make_cluster(6, rules::paper_policy2());
  config.enable_resize_planner = true;
  config.resize_cooldown = 10.0;
  ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();
  runtime.launch_malleable_job(long_job("job"), {"ws1", "ws2"});
  runtime.run_until(120.0);

  // The sweep found idle workstations and grew the job into them.
  EXPECT_GT(runtime.scheduler().resizes_commanded(), 0);
  EXPECT_GT(runtime.malleable().ranks("job"), 2);
  const auto& history = runtime.malleable().history();
  const bool committed_expand = std::any_of(
      history.begin(), history.end(), [](const malleable::ResizeOutcome& o) {
        return o.verb == malleable::ResizeVerb::kExpand &&
               o.outcome == malleable::kCommitted;
      });
  EXPECT_TRUE(committed_expand);
  // The registry's view of the live job tracked the outcome reports.
  {
    const auto& jobs = runtime.scheduler().malleable_jobs();
    ASSERT_EQ(jobs.count("job"), 1U);
    EXPECT_EQ(jobs.at("job").ranks, runtime.malleable().ranks("job"));
  }

  runtime.run_until(600.0);
  EXPECT_TRUE(runtime.malleable().finished("job"));
  // Once the commander reports the job finished, the registry forgets it —
  // a stale entry would read its last world as occupied forever.
  EXPECT_EQ(runtime.scheduler().malleable_jobs().count("job"), 0U);
  // Every resize debit was credited back by its outcome.
  EXPECT_EQ(runtime.scheduler().inflight_placements(), 0U);
}

TEST(ResizePlanner, ShrinksOffOverloadedMemberHosts) {
  ClusterConfig config = make_cluster(4, rules::paper_policy2());
  config.enable_resize_planner = true;
  config.resize_cooldown = 10.0;
  ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();
  auto spec = long_job("job");
  spec.max_ranks = 3;  // no expand headroom: isolate the shrink path
  runtime.launch_malleable_job(spec, {"ws1", "ws2", "ws3"});
  // External load storms ws3: the planner must shed the job's rank there.
  host::CpuHog hog{runtime.host("ws3"), {.threads = 3}};
  runtime.engine().schedule_at(30.0, [&] { hog.start(); });
  runtime.run_until(600.0);

  const auto& history = runtime.malleable().history();
  const bool committed_shrink = std::any_of(
      history.begin(), history.end(), [](const malleable::ResizeOutcome& o) {
        return o.verb == malleable::ResizeVerb::kShrink &&
               o.outcome == malleable::kCommitted;
      });
  EXPECT_TRUE(committed_shrink);
  const auto hosts = runtime.malleable().rank_hosts("job");
  EXPECT_EQ(std::find(hosts.begin(), hosts.end(), "ws3"), hosts.end());
  EXPECT_EQ(runtime.scheduler().inflight_placements(), 0U);
}

TEST(ResizePlanner, DisabledPlannerNeverCommands) {
  ClusterConfig config = make_cluster(6, rules::paper_policy2());
  config.enable_resize_planner = false;  // default, but explicit here
  ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();
  auto spec = long_job("job");
  spec.workload.iterations = 20;
  runtime.launch_malleable_job(spec, {"ws1", "ws2"});
  runtime.run_until(400.0);
  EXPECT_EQ(runtime.scheduler().resizes_commanded(), 0);
  EXPECT_EQ(runtime.malleable().ranks("job"), 2);
}

TEST(ResizePlanner, MalleableMetricsExportAtZero) {
  // A runtime that never resizes still exports the full malleable.* and
  // registry resize schema (stable dashboards, PR 5 convention).
  ClusterConfig config = make_cluster(2, rules::paper_policy2());
  ReschedulerRuntime runtime{config};
  const std::string json = runtime.metrics().to_json();
  for (const char* name :
       {"malleable.resizes", "malleable.resize_failures",
        "malleable.ranks_spawned", "registry.resizes_commanded",
        "registry.resize_outcomes"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace ars::core
