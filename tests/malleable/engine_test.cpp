// ars::malleable engine tests: launch-to-finish, expand/shrink commits,
// abort paths (spawn timeout, failed target, failed redistribution), the
// no-ghost-rank guarantee, and the sequential-vs-tree spawn comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ars/malleable/malleable.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/obs/tracer.hpp"

namespace ars::malleable {
namespace {

using sim::Engine;

class MalleableTest : public ::testing::Test {
 protected:
  static constexpr int kHosts = 40;

  MalleableTest() : net_(engine_, net_options()), mpi_(engine_, net_) {
    for (int i = 1; i <= kHosts; ++i) {
      host::HostSpec spec;
      spec.name = "ws" + std::to_string(i);
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
  }

  static net::Network::Options net_options() {
    net::Network::Options options;
    options.latency = 0.001;
    options.message_overhead = 0;
    return options;
  }

  [[nodiscard]] std::vector<std::string> host_names(int from, int count) {
    std::vector<std::string> names;
    for (int i = from; i < from + count; ++i) {
      names.push_back("ws" + std::to_string(i));
    }
    return names;
  }

  [[nodiscard]] static JobSpec small_job(const std::string& name) {
    JobSpec spec;
    spec.name = name;
    spec.workload.blocks = 16;
    spec.workload.work_per_block = 0.05;
    spec.workload.bytes_per_block = 1.0e5;
    spec.workload.iterations = 6;
    spec.min_ranks = 1;
    spec.max_ranks = 64;
    return spec;
  }

  Engine engine_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  net::Network net_;
  mpi::MpiSystem mpi_;
};

TEST(PartitionBlocks, BalancedContiguous) {
  const auto counts = partition_blocks(10, 3);
  ASSERT_EQ(counts.size(), 3U);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 10);
  for (const int c : counts) {
    EXPECT_GE(c, 3);
    EXPECT_LE(c, 4);
  }
  EXPECT_TRUE(partition_blocks(5, 0).empty());
  const auto more_ranks = partition_blocks(2, 4);
  EXPECT_EQ(std::count(more_ranks.begin(), more_ranks.end(), 0), 2);
}

TEST_F(MalleableTest, JobRunsToCompletionWithoutResizes) {
  MalleableEngine malleable(mpi_, net_);
  const auto members = malleable.launch(small_job("job"), host_names(1, 4));
  EXPECT_EQ(members.size(), 4U);
  EXPECT_EQ(malleable.ranks("job"), 4);
  engine_.run_until(200.0);
  EXPECT_TRUE(malleable.finished("job"));
  EXPECT_FALSE(malleable.failed("job"));
  // Every block of every iteration was computed exactly once.
  EXPECT_EQ(malleable.processed_blocks("job"), 16LL * 6);
  // Clean exit leaves no procs behind.
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, ExpandCommitsAndAddsRanks) {
  MalleableEngine malleable(mpi_, net_);
  auto spec = small_job("job");
  spec.workload.iterations = 10;
  malleable.launch(spec, host_names(1, 2));
  engine_.run_until(0.5);  // first iteration under way
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 2,
                                       {"ws10", "ws11"}));
  EXPECT_TRUE(malleable.resizing("job"));
  engine_.run_until(400.0);
  EXPECT_TRUE(malleable.finished("job"));
  ASSERT_EQ(malleable.history().size(), 1U);
  const ResizeOutcome& outcome = malleable.history().front();
  EXPECT_EQ(outcome.outcome, kCommitted);
  EXPECT_EQ(outcome.ranks_before, 2);
  EXPECT_EQ(outcome.ranks_after, 4);
  EXPECT_GT(outcome.spawn_seconds, 0.0);
  EXPECT_GT(outcome.redistributed_bytes, 0.0);
  EXPECT_EQ(malleable.processed_blocks("job"), 16LL * 10);
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, ShrinkCommitsAndRetiresRanks) {
  MalleableEngine malleable(mpi_, net_);
  auto spec = small_job("job");
  spec.workload.iterations = 10;
  malleable.launch(spec, host_names(1, 4));
  engine_.run_until(0.5);
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kShrink, 2));
  engine_.run_until(400.0);
  EXPECT_TRUE(malleable.finished("job"));
  ASSERT_EQ(malleable.history().size(), 1U);
  const ResizeOutcome& outcome = malleable.history().front();
  EXPECT_EQ(outcome.outcome, kCommitted);
  EXPECT_EQ(outcome.ranks_before, 4);
  EXPECT_EQ(outcome.ranks_after, 2);
  EXPECT_EQ(malleable.processed_blocks("job"), 16LL * 10);
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, ShrinkVacatesNamedHosts) {
  MalleableEngine malleable(mpi_, net_);
  auto spec = small_job("job");
  spec.workload.iterations = 10;
  malleable.launch(spec, host_names(1, 4));
  engine_.run_until(0.5);
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kShrink, 1,
                                       {"ws3"}));
  engine_.run_until(400.0);
  EXPECT_TRUE(malleable.finished("job"));
  ASSERT_EQ(malleable.history().size(), 1U);
  EXPECT_EQ(malleable.history().front().outcome, kCommitted);
  const auto hosts = malleable.rank_hosts("job");
  EXPECT_EQ(std::find(hosts.begin(), hosts.end(), "ws3"), hosts.end());
}

TEST_F(MalleableTest, SpawnTimeoutAbortsAtOriginalSizeWithNoGhosts) {
  MalleableEngine::Options options;
  options.spawn_timeout = 1.0;  // sequential spawn of 8 takes ~2.4 s
  MalleableEngine malleable(mpi_, net_, options);
  auto spec = small_job("job");
  spec.workload.iterations = 10;
  spec.strategy = mpi::SpawnStrategy::kSequential;
  malleable.launch(spec, host_names(1, 2));
  engine_.run_until(0.5);
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 8,
                                       host_names(10, 8)));
  engine_.run_until(400.0);
  EXPECT_TRUE(malleable.finished("job"));
  ASSERT_EQ(malleable.history().size(), 1U);
  const ResizeOutcome& outcome = malleable.history().front();
  EXPECT_EQ(outcome.outcome, kAborted);
  EXPECT_EQ(outcome.reason, "spawn-timeout");
  EXPECT_EQ(outcome.phase, "spawn");
  // The job finished at its ORIGINAL size and the partial spawn group was
  // reaped: no ghost ranks anywhere.
  EXPECT_EQ(outcome.ranks_after, 2);
  EXPECT_EQ(malleable.processed_blocks("job"), 16LL * 10);
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, FailedTargetAbortsSpawn) {
  MalleableEngine::Options options;
  options.spawn_timeout = 60.0;
  MalleableEngine malleable(mpi_, net_, options);
  auto spec = small_job("job");
  spec.workload.iterations = 20;
  spec.workload.work_per_block = 0.2;
  spec.strategy = mpi::SpawnStrategy::kSequential;
  malleable.launch(spec, host_names(1, 2));
  // Stall the spawn so the fault window is easy to hit.
  malleable.set_phase_stall("spawn", 5.0);
  engine_.run_until(0.5);
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 4,
                                       host_names(10, 4)));
  bool failed = false;
  while (engine_.now() < 400.0 && !failed) {
    engine_.run_until(engine_.now() + 0.5);
    if (malleable.resizing("job")) {
      failed = malleable.fail_resize_target("job", "ws12");
    }
  }
  EXPECT_TRUE(failed);
  engine_.run_until(800.0);
  EXPECT_TRUE(malleable.finished("job"));
  ASSERT_EQ(malleable.history().size(), 1U);
  const ResizeOutcome& outcome = malleable.history().front();
  EXPECT_EQ(outcome.outcome, kAborted);
  EXPECT_EQ(outcome.reason, "no-capacity");
  EXPECT_EQ(outcome.ranks_after, 2);
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, RedistributionTimeoutRollsBackExpand) {
  MalleableEngine::Options options;
  options.redistribute_timeout = 2.0;
  MalleableEngine malleable(mpi_, net_, options);
  auto spec = small_job("job");
  spec.workload.iterations = 10;
  malleable.launch(spec, host_names(1, 2));
  malleable.set_phase_stall("redistribute", 10.0);
  engine_.run_until(0.5);
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 2,
                                       {"ws10", "ws11"}));
  engine_.run_until(400.0);
  EXPECT_TRUE(malleable.finished("job"));
  ASSERT_EQ(malleable.history().size(), 1U);
  const ResizeOutcome& outcome = malleable.history().front();
  EXPECT_EQ(outcome.outcome, kPartialRollback);
  EXPECT_EQ(outcome.reason, "redistribution-failed");
  EXPECT_EQ(outcome.ranks_after, 2);  // spawned ranks rolled back
  EXPECT_EQ(malleable.processed_blocks("job"), 16LL * 10);
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, SabotageSkipsRollbackAndLeaksRanks) {
  MalleableEngine::Options options;
  options.redistribute_timeout = 2.0;
  options.sabotage_skip_resize_rollback = true;
  MalleableEngine malleable(mpi_, net_, options);
  auto spec = small_job("job");
  spec.workload.iterations = 10;
  malleable.launch(spec, host_names(1, 2));
  malleable.set_phase_stall("redistribute", 10.0);
  // Ghost ranks are visible at the instant the failed resize reports: the
  // rolled-back spawn group must be dead, yet sabotage leaves it alive.
  std::size_t live_at_outcome = 0;
  malleable.set_outcome_listener([&](const ResizeOutcome& outcome) {
    if (outcome.outcome == kPartialRollback) {
      live_at_outcome = mpi_.live_procs();
    }
  });
  engine_.run_until(0.5);
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 2,
                                       {"ws10", "ws11"}));
  engine_.run_until(400.0);
  EXPECT_TRUE(malleable.finished("job"));
  // 2 members + 2 leaked spawns — what the chaos no-lost-rank invariant
  // must catch.  (An honest rollback reports with exactly 2 procs alive.)
  EXPECT_EQ(live_at_outcome, 4U);
}

TEST_F(MalleableTest, ExpandBeyondMaxRanksAborts) {
  MalleableEngine malleable(mpi_, net_);
  auto spec = small_job("job");
  spec.max_ranks = 3;
  spec.workload.iterations = 6;
  malleable.launch(spec, host_names(1, 2));
  engine_.run_until(0.5);
  ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 2,
                                       {"ws10", "ws11"}));
  engine_.run_until(200.0);
  ASSERT_EQ(malleable.history().size(), 1U);
  EXPECT_EQ(malleable.history().front().outcome, kAborted);
  EXPECT_EQ(malleable.history().front().phase, "plan");
  EXPECT_EQ(malleable.ranks("job"), 2);
}

TEST_F(MalleableTest, OneResizeAtATime) {
  MalleableEngine malleable(mpi_, net_);
  malleable.launch(small_job("job"), host_names(1, 2));
  EXPECT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 1,
                                       {"ws10"}));
  EXPECT_FALSE(malleable.request_resize("job", ResizeVerb::kExpand, 1,
                                        {"ws11"}));
  EXPECT_FALSE(malleable.request_resize("nope", ResizeVerb::kExpand, 1,
                                        {"ws10"}));
  EXPECT_FALSE(malleable.request_resize("job", ResizeVerb::kShrink, 0));
}

TEST_F(MalleableTest, RequestAfterFinishIsRejected) {
  MalleableEngine malleable(mpi_, net_);
  malleable.launch(small_job("job"), host_names(1, 2));
  engine_.run_until(200.0);
  ASSERT_TRUE(malleable.finished("job"));
  EXPECT_FALSE(malleable.request_resize("job", ResizeVerb::kExpand, 1,
                                        {"ws10"}));
}

TEST_F(MalleableTest, HostFailureRepairsMembership) {
  MalleableEngine malleable(mpi_, net_);
  auto spec = small_job("job");
  spec.workload.iterations = 12;
  malleable.launch(spec, host_names(1, 4));
  engine_.run_until(1.0);
  const int lost = malleable.on_host_failed("ws3");
  EXPECT_EQ(lost, 1);
  engine_.run_until(400.0);
  EXPECT_TRUE(malleable.finished("job"));
  EXPECT_FALSE(malleable.failed("job"));
  EXPECT_EQ(malleable.ranks("job"), 3);
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, RootFailureTearsDownJob) {
  MalleableEngine malleable(mpi_, net_);
  malleable.launch(small_job("job"), host_names(1, 4));
  engine_.run_until(1.0);
  (void)malleable.on_host_failed("ws1");
  EXPECT_TRUE(malleable.failed("job"));
  EXPECT_TRUE(malleable.finished("job"));
  EXPECT_EQ(mpi_.live_procs(), 0U);
}

TEST_F(MalleableTest, MetricsPreRegisteredAtZero) {
  obs::MetricsRegistry metrics;
  MalleableEngine::Options options;
  options.metrics = &metrics;
  MalleableEngine malleable(mpi_, net_, options);
  const std::string json = metrics.to_json();
  // The full malleable.* schema is present before any resize ran.
  for (const char* name :
       {"malleable.resizes", "malleable.resize_failures",
        "malleable.spawn_ms", "malleable.redistribute_ms",
        "malleable.redistributed_bytes", "malleable.ranks_spawned",
        "malleable.ranks_retired", "malleable.ranks_lost",
        "malleable.jobs_completed", "malleable.jobs_failed"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_NE(json.find("spawn-timeout"), std::string::npos);
  EXPECT_NE(json.find("partial-rollback"), std::string::npos);
}

TEST_F(MalleableTest, TreeSpawnBeatsSequentialAt32Ranks) {
  double spawn_seconds[2] = {0.0, 0.0};
  int rounds[2] = {0, 0};
  const mpi::SpawnStrategy strategies[2] = {mpi::SpawnStrategy::kSequential,
                                            mpi::SpawnStrategy::kTree};
  for (int s = 0; s < 2; ++s) {
    Engine engine;
    net::Network net(engine, net_options());
    std::vector<std::unique_ptr<host::Host>> hosts;
    for (int i = 1; i <= kHosts; ++i) {
      host::HostSpec spec;
      spec.name = "ws" + std::to_string(i);
      hosts.push_back(std::make_unique<host::Host>(engine, spec));
      net.attach(*hosts.back());
    }
    mpi::MpiSystem mpi(engine, net);
    MalleableEngine::Options options;
    options.spawn_timeout = 120.0;
    MalleableEngine malleable(mpi, net, options);
    auto spec = small_job("job");
    spec.workload.iterations = 4;
    spec.workload.work_per_block = 1.0;
    spec.workload.blocks = 64;
    spec.strategy = strategies[s];
    malleable.launch(spec, {"ws1", "ws2"});
    engine.run_until(0.5);
    std::vector<std::string> targets;
    for (int i = 3; i < 35; ++i) {
      targets.push_back("ws" + std::to_string(i));
    }
    ASSERT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 32,
                                         targets));
    engine.run_until(2000.0);
    ASSERT_EQ(malleable.history().size(), 1U);
    ASSERT_EQ(malleable.history().front().outcome, kCommitted);
    spawn_seconds[s] = malleable.history().front().spawn_seconds;
    rounds[s] = malleable.history().front().spawn_rounds;
  }
  // Tree fan-out is logarithmic in the group size; sequential is linear.
  // At 32 ranks the difference must be decisive (paper's DPM cost model).
  EXPECT_LT(spawn_seconds[1], spawn_seconds[0] / 3.0)
      << "tree=" << spawn_seconds[1] << " sequential=" << spawn_seconds[0];
  EXPECT_EQ(rounds[0], 32);
  EXPECT_LT(rounds[1], 8);
}

/// Run one full resize-heavy scenario and return the trace (determinism
/// fixture: the whole run must be byte-identical across repeats).
std::string traced_run(mpi::SpawnStrategy strategy, std::uint64_t seed) {
  Engine engine;
  net::Network::Options net_options;
  net_options.latency = 0.001;
  net::Network net(engine, net_options);
  std::vector<std::unique_ptr<host::Host>> hosts;
  for (int i = 1; i <= 16; ++i) {
    host::HostSpec spec;
    spec.name = "ws" + std::to_string(i);
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    net.attach(*hosts.back());
  }
  mpi::MpiSystem mpi(engine, net);
  obs::Tracer tracer;
  tracer.set_clock([&engine] { return engine.now(); });
  MalleableEngine::Options options;
  options.tracer = &tracer;
  MalleableEngine malleable(mpi, net, options);
  JobSpec spec;
  spec.name = "job";
  spec.workload.blocks = 24;
  spec.workload.work_per_block = 0.1;
  spec.workload.iterations = 12;
  spec.strategy = strategy;
  malleable.launch(spec, {"ws1", "ws2", "ws3"});
  // The seed perturbs request timing, so each seed exercises a different
  // interleaving of requests against iteration boundaries.
  const double skew = static_cast<double>(seed % 97) * 0.037;
  engine.run_until(0.5 + skew);
  EXPECT_TRUE(malleable.request_resize("job", ResizeVerb::kExpand, 3,
                                       {"ws4", "ws5", "ws6"}));
  engine.run_until(30.0 + skew);
  (void)malleable.request_resize("job", ResizeVerb::kShrink, 2);
  engine.run_until(60.0 + 2.0 * skew);
  (void)malleable.request_resize("job", ResizeVerb::kExpand, 2,
                                 {"ws7", "ws8"});
  engine.run_until(600.0);
  EXPECT_TRUE(malleable.finished("job"));
  return tracer.to_jsonl();
}

TEST(MalleableDeterminism, SequentialSpawnByteIdenticalAcrossRuns) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    const std::string first = traced_run(mpi::SpawnStrategy::kSequential, seed);
    const std::string second =
        traced_run(mpi::SpawnStrategy::kSequential, seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_FALSE(first.empty());
  }
}

TEST(MalleableDeterminism, TreeSpawnByteIdenticalAcrossRuns) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    const std::string first = traced_run(mpi::SpawnStrategy::kTree, seed);
    const std::string second = traced_run(mpi::SpawnStrategy::kTree, seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_FALSE(first.empty());
  }
}

}  // namespace
}  // namespace ars::malleable
