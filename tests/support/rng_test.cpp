#include "ars/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace ars::support {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int identical = 0;
  for (int i = 0; i < 100; ++i) {
    identical += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(identical, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng{3};
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) {
    EXPECT_GT(count, 700);  // roughly uniform
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{5};
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 3.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{99};
  Rng child = a.split();
  // The child must not replay the parent's sequence.
  Rng a2{99};
  (void)a2();  // parent consumed one draw for the split
  int identical = 0;
  for (int i = 0; i < 100; ++i) {
    identical += (child() == a2()) ? 1 : 0;
  }
  EXPECT_LT(identical, 3);
}

TEST(Rng, SplitMix64IsDeterministic) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace ars::support
