#include "ars/support/strings.hpp"

#include <gtest/gtest.h>

namespace ars::support {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nhello world\r "), "hello world");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWhitespaceDropsEmptyFields) {
  EXPECT_EQ(split_whitespace("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_whitespace("   ").empty());
  EXPECT_TRUE(split_whitespace("").empty());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("rl_name: x", "rl_name"));
  EXPECT_FALSE(starts_with("rl", "rl_name"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("Free", "FREE"));
  EXPECT_TRUE(iequals("overloaded", "OverLoaded"));
  EXPECT_FALSE(iequals("busy", "busyy"));
  EXPECT_FALSE(iequals("busy", "bus"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("ESTABLISHED"), "established");
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(Strings, ParseDoubleAcceptsOnlyCompleteNumbers) {
  EXPECT_EQ(parse_double("45"), 45.0);
  EXPECT_EQ(parse_double(" 2.52 "), 2.52);
  EXPECT_EQ(parse_double("-1.5"), -1.5);
  EXPECT_FALSE(parse_double("45x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("one").has_value());
}

TEST(Strings, ParseIntAcceptsOnlyCompleteIntegers) {
  EXPECT_EQ(parse_int("700"), 700);
  EXPECT_EQ(parse_int(" -3 "), -3);
  EXPECT_FALSE(parse_int("7.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12abc").has_value());
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(983.6, 1), "983.6");
  EXPECT_EQ(format_fixed(0.002, 3), "0.002");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
}

}  // namespace
}  // namespace ars::support
