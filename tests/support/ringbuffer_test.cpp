#include "ars/support/ringbuffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace {

using ars::support::RingBuffer;

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0U);
  EXPECT_EQ(ring.capacity(), 0U);
  EXPECT_EQ(ring.begin(), ring.end());
}

TEST(RingBuffer, PushBackPreservesFifoOrder) {
  RingBuffer<int> ring;
  for (int i = 0; i < 20; ++i) {
    ring.push_back(i);
  }
  ASSERT_EQ(ring.size(), 20U);
  EXPECT_EQ(ring.front(), 0);
  EXPECT_EQ(ring.back(), 19);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i));
  }
}

TEST(RingBuffer, CapacityIsPowerOfTwo) {
  RingBuffer<int> ring;
  ring.push_back(1);
  EXPECT_EQ(ring.capacity(), 8U);
  for (int i = 0; i < 8; ++i) {
    ring.push_back(i);
  }
  EXPECT_EQ(ring.capacity(), 16U);
  EXPECT_EQ(ring.capacity() & (ring.capacity() - 1), 0U);
}

TEST(RingBuffer, WrapsWithoutGrowingWhenPruned) {
  RingBuffer<int> ring;
  for (int i = 0; i < 8; ++i) {
    ring.push_back(i);
  }
  const std::size_t capacity = ring.capacity();
  // Steady state: pop one, push one, many times around the ring.
  for (int i = 8; i < 1000; ++i) {
    ring.pop_front();
    ring.push_back(i);
    ASSERT_EQ(ring.size(), 8U);
    ASSERT_EQ(ring.front(), i - 7);
    ASSERT_EQ(ring.back(), i);
  }
  EXPECT_EQ(ring.capacity(), capacity);
}

TEST(RingBuffer, GrowReordersWrappedContents) {
  RingBuffer<int> ring;
  for (int i = 0; i < 8; ++i) {
    ring.push_back(i);
  }
  for (int i = 0; i < 5; ++i) {
    ring.pop_front();
  }
  // head is physically mid-array; pushing past capacity must relinearize.
  for (int i = 8; i < 20; ++i) {
    ring.push_back(i);
  }
  ASSERT_EQ(ring.size(), 15U);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i) + 5);
  }
}

TEST(RingBuffer, PopFrontReleasesOwnedResources) {
  RingBuffer<std::shared_ptr<int>> ring;
  auto value = std::make_shared<int>(42);
  std::weak_ptr<int> watch = value;
  ring.push_back(std::move(value));
  ring.pop_front();
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(watch.expired()) << "pop_front must not pin the element";
}

TEST(RingBuffer, IterationMatchesIndexing) {
  RingBuffer<std::string> ring;
  for (int i = 0; i < 10; ++i) {
    ring.push_back("v" + std::to_string(i));
  }
  ring.pop_front();
  ring.pop_front();
  std::vector<std::string> seen;
  for (const std::string& s : ring) {
    seen.push_back(s);
  }
  ASSERT_EQ(seen.size(), ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(seen[i], ring[i]);
  }
  EXPECT_EQ(seen.front(), "v2");
  EXPECT_EQ(seen.back(), "v9");
}

TEST(RingBuffer, ClearResetsToEmpty) {
  RingBuffer<int> ring;
  for (int i = 0; i < 12; ++i) {
    ring.push_back(i);
  }
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back(7);
  EXPECT_EQ(ring.front(), 7);
  EXPECT_EQ(ring.back(), 7);
}

}  // namespace
