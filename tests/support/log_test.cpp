#include "ars/support/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace ars::support {
namespace {

struct CapturedRecord {
  LogLevel level;
  std::string component;
  std::string message;
  double sim_time;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& logger = Logger::global();
    saved_level_ = logger.level();
    logger.set_level(LogLevel::kTrace);
    logger.set_sink([this](LogLevel level, std::string_view component,
                           std::string_view message, double sim_time) {
      records_.push_back(CapturedRecord{level, std::string(component),
                                        std::string(message), sim_time});
    });
  }

  void TearDown() override {
    auto& logger = Logger::global();
    logger.set_level(saved_level_);
    logger.set_sink(nullptr);
    logger.set_clock(nullptr);
    logger.set_forward(nullptr);
    // Restore a default stderr sink for later tests.
    logger.set_sink([](LogLevel, std::string_view, std::string_view, double) {});
  }

  std::vector<CapturedRecord> records_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, MacroWritesThroughSink) {
  ARS_LOG_INFO("test", "value=" << 42);
  ASSERT_EQ(records_.size(), 1U);
  EXPECT_EQ(records_[0].level, LogLevel::kInfo);
  EXPECT_EQ(records_[0].component, "test");
  EXPECT_EQ(records_[0].message, "value=42");
}

TEST_F(LogTest, LevelFilterSuppressesLowerLevels) {
  Logger::global().set_level(LogLevel::kWarn);
  ARS_LOG_DEBUG("test", "hidden");
  ARS_LOG_WARN("test", "visible");
  ASSERT_EQ(records_.size(), 1U);
  EXPECT_EQ(records_[0].message, "visible");
}

TEST_F(LogTest, ClockStampsSimTime) {
  Logger::global().set_clock([] { return 123.5; });
  ARS_LOG_ERROR("test", "stamped");
  ASSERT_EQ(records_.size(), 1U);
  EXPECT_DOUBLE_EQ(records_[0].sim_time, 123.5);
}

TEST_F(LogTest, NoClockYieldsNegativeTime) {
  ARS_LOG_ERROR("test", "no clock");
  ASSERT_EQ(records_.size(), 1U);
  EXPECT_LT(records_[0].sim_time, 0.0);
}

TEST_F(LogTest, ForwardTapSeesEveryRecordTheSinkSees) {
  std::vector<CapturedRecord> forwarded;
  Logger::global().set_forward(
      [&forwarded](LogLevel level, std::string_view component,
                   std::string_view message, double sim_time) {
        forwarded.push_back(CapturedRecord{level, std::string(component),
                                           std::string(message), sim_time});
      });
  ARS_LOG_WARN("test", "to both");
  ASSERT_EQ(records_.size(), 1U);
  ASSERT_EQ(forwarded.size(), 1U);
  EXPECT_EQ(forwarded[0].message, "to both");
  EXPECT_EQ(forwarded[0].component, "test");

  Logger::global().set_forward(nullptr);
  ARS_LOG_WARN("test", "sink only");
  EXPECT_EQ(records_.size(), 2U);
  EXPECT_EQ(forwarded.size(), 1U);  // tap removed: unchanged
}

TEST_F(LogTest, ForwardTapRespectsLevelFilter) {
  std::vector<CapturedRecord> forwarded;
  Logger::global().set_forward(
      [&forwarded](LogLevel level, std::string_view component,
                   std::string_view message, double sim_time) {
        forwarded.push_back(CapturedRecord{level, std::string(component),
                                           std::string(message), sim_time});
      });
  Logger::global().set_level(LogLevel::kError);
  ARS_LOG_INFO("test", "filtered");
  ARS_LOG_ERROR("test", "passes");
  ASSERT_EQ(forwarded.size(), 1U);
  EXPECT_EQ(forwarded[0].message, "passes");
}

TEST_F(LogTest, ParallelWritersAreSerialized) {
  // The sink appends to an unsynchronized vector; the logger's own mutex
  // must make that safe and lose no records.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        ARS_LOG_WARN("mt", "record " << i);
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(records_.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(LogTest, HookSwapsDuringWritesAreSafe) {
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ARS_LOG_WARN("mt", "spin");
    }
  });
  auto& logger = Logger::global();
  for (int i = 0; i < 200; ++i) {
    logger.set_clock([] { return 1.0; });
    logger.set_forward(
        [](LogLevel, std::string_view, std::string_view, double) {});
    logger.set_clock(nullptr);
    logger.set_forward(nullptr);
  }
  stop.store(true);
  writer.join();
}

TEST(LogLevelNames, ToString) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace ars::support
