#include "ars/support/expected.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ars::support {
namespace {

Expected<int> parse_positive(int v) {
  if (v > 0) {
    return v;
  }
  return make_error("not_positive", "value must be > 0");
}

TEST(Expected, HoldsValue) {
  const Expected<int> e = parse_positive(3);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e.value(), 3);
  EXPECT_EQ(*e, 3);
}

TEST(Expected, HoldsError) {
  const Expected<int> e = parse_positive(-1);
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, "not_positive");
  EXPECT_EQ(e.error().to_string(), "not_positive: value must be > 0");
}

TEST(Expected, ValueOnErrorThrows) {
  const Expected<int> e = parse_positive(0);
  EXPECT_THROW((void)e.value(), std::logic_error);
}

TEST(Expected, ErrorOnValueThrows) {
  const Expected<int> e = parse_positive(1);
  EXPECT_THROW((void)e.error(), std::logic_error);
}

TEST(Expected, ValueOr) {
  EXPECT_EQ(parse_positive(5).value_or(-1), 5);
  EXPECT_EQ(parse_positive(-5).value_or(-1), -1);
}

TEST(Expected, MoveOnlyPayload) {
  Expected<std::unique_ptr<int>> e{std::make_unique<int>(9)};
  ASSERT_TRUE(e.has_value());
  const std::unique_ptr<int> owned = std::move(e).value();
  EXPECT_EQ(*owned, 9);
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> e{std::string{"hello"}};
  EXPECT_EQ(e->size(), 5U);
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_THROW((void)s.error(), std::logic_error);
}

TEST(Status, CarriesError) {
  const Status s = make_error("io", "boom");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code, "io");
}

}  // namespace
}  // namespace ars::support
