#include "ars/support/byteorder.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace ars::support {
namespace {

TEST(ByteOrder, Swap16) {
  EXPECT_EQ(byteswap16(0x1234), 0x3412);
  EXPECT_EQ(byteswap16(0x0000), 0x0000);
  EXPECT_EQ(byteswap16(0xffff), 0xffff);
}

TEST(ByteOrder, Swap32) {
  EXPECT_EQ(byteswap32(0x12345678U), 0x78563412U);
}

TEST(ByteOrder, Swap64) {
  EXPECT_EQ(byteswap64(0x0102030405060708ULL), 0x0807060504030201ULL);
}

TEST(ByteOrder, BigEndianLayoutIsCanonical) {
  std::vector<std::byte> out;
  put_be32(out, 0x11223344U);
  ASSERT_EQ(out.size(), 4U);
  EXPECT_EQ(out[0], std::byte{0x11});
  EXPECT_EQ(out[1], std::byte{0x22});
  EXPECT_EQ(out[2], std::byte{0x33});
  EXPECT_EQ(out[3], std::byte{0x44});
}

TEST(ByteOrder, RoundTrip16) {
  for (std::uint32_t v : {0U, 1U, 0x1234U, 0xffffU}) {
    std::vector<std::byte> out;
    put_be16(out, static_cast<std::uint16_t>(v));
    std::size_t offset = 0;
    EXPECT_EQ(get_be16(out, offset), v);
    EXPECT_EQ(offset, 2U);
  }
}

TEST(ByteOrder, RoundTrip64) {
  const std::uint64_t cases[] = {0ULL, 1ULL, 0xdeadbeefcafebabeULL,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    std::vector<std::byte> out;
    put_be64(out, v);
    std::size_t offset = 0;
    EXPECT_EQ(get_be64(out, offset), v);
  }
}

TEST(ByteOrder, RoundTripDouble) {
  for (double v : {0.0, 1.0, -2.5, 983.6, 1e-300, -1e300}) {
    std::vector<std::byte> out;
    put_be_double(out, v);
    std::size_t offset = 0;
    EXPECT_EQ(get_be_double(out, offset), v);
  }
}

TEST(ByteOrder, SequentialReadsAdvanceOffset) {
  std::vector<std::byte> out;
  put_be16(out, 7);
  put_be32(out, 8);
  put_be64(out, 9);
  put_be_double(out, 2.5);
  std::size_t offset = 0;
  EXPECT_EQ(get_be16(out, offset), 7U);
  EXPECT_EQ(get_be32(out, offset), 8U);
  EXPECT_EQ(get_be64(out, offset), 9U);
  EXPECT_EQ(get_be_double(out, offset), 2.5);
  EXPECT_EQ(offset, out.size());
}

TEST(ByteOrder, UnderrunThrows) {
  std::vector<std::byte> out;
  put_be16(out, 7);
  std::size_t offset = 0;
  EXPECT_THROW((void)get_be32(out, offset), std::out_of_range);
  // Offset is untouched on failure.
  EXPECT_EQ(offset, 0U);
}

TEST(ByteOrder, NativeOrderDetection) {
  // Whatever the build machine is, the helper must agree with std::endian.
  if constexpr (std::endian::native == std::endian::little) {
    EXPECT_EQ(native_byte_order(), ByteOrder::kLittleEndian);
  } else {
    EXPECT_EQ(native_byte_order(), ByteOrder::kBigEndian);
  }
}

}  // namespace
}  // namespace ars::support
