#include "ars/sim/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ars::sim {
namespace {

TEST(Channel, SendThenRecv) {
  Engine engine;
  Channel<int> channel{engine};
  channel.send(7);
  int got = 0;
  auto reader = [](Channel<int>& ch, int& out) -> Task<> {
    out = co_await ch.recv();
  };
  Fiber::spawn(engine, reader(channel, got));
  engine.run();
  EXPECT_EQ(got, 7);
}

TEST(Channel, RecvBlocksUntilSend) {
  Engine engine;
  Channel<int> channel{engine};
  double recv_time = -1.0;
  auto reader = [](Channel<int>& ch, Engine& e, double& out) -> Task<> {
    (void)co_await ch.recv();
    out = e.now();
  };
  Fiber::spawn(engine, reader(channel, engine, recv_time));
  engine.schedule_at(4.0, [&] { channel.send(1); });
  engine.run();
  EXPECT_DOUBLE_EQ(recv_time, 4.0);
}

TEST(Channel, PreservesFifoOrder) {
  Engine engine;
  Channel<int> channel{engine};
  std::vector<int> got;
  auto reader = [](Channel<int>& ch, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      out.push_back(co_await ch.recv());
    }
  };
  Fiber::spawn(engine, reader(channel, got));
  for (int i = 0; i < 5; ++i) {
    channel.send(i);
  }
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, TwoReadersShareItems) {
  Engine engine;
  Channel<int> channel{engine};
  std::vector<int> got;
  auto reader = [](Channel<int>& ch, std::vector<int>& out) -> Task<> {
    out.push_back(co_await ch.recv());
  };
  Fiber::spawn(engine, reader(channel, got));
  Fiber::spawn(engine, reader(channel, got));
  engine.schedule_at(1.0, [&] {
    channel.send(10);
    channel.send(20);
  });
  engine.run();
  ASSERT_EQ(got.size(), 2U);
  EXPECT_EQ(got[0] + got[1], 30);
}

TEST(Channel, CloseDrainsThenThrows) {
  Engine engine;
  Channel<std::string> channel{engine};
  channel.send("last");
  channel.close();
  std::vector<std::string> events;
  auto reader = [](Channel<std::string>& ch,
                   std::vector<std::string>& out) -> Task<> {
    out.push_back(co_await ch.recv());
    try {
      (void)co_await ch.recv();
    } catch (const ChannelClosed&) {
      out.push_back("<closed>");
    }
  };
  Fiber::spawn(engine, reader(channel, events));
  engine.run();
  EXPECT_EQ(events, (std::vector<std::string>{"last", "<closed>"}));
}

TEST(Channel, CloseWakesBlockedReceiver) {
  Engine engine;
  Channel<int> channel{engine};
  bool saw_close = false;
  auto reader = [](Channel<int>& ch, bool& flag) -> Task<> {
    const auto item = co_await ch.recv_opt();
    flag = !item.has_value();
  };
  Fiber::spawn(engine, reader(channel, saw_close));
  engine.schedule_at(2.0, [&] { channel.close(); });
  engine.run();
  EXPECT_TRUE(saw_close);
}

TEST(Channel, SendAfterCloseThrows) {
  Engine engine;
  Channel<int> channel{engine};
  channel.close();
  EXPECT_THROW(channel.send(1), ChannelClosed);
}

TEST(Channel, TryRecvDoesNotBlock) {
  Engine engine;
  Channel<int> channel{engine};
  EXPECT_FALSE(channel.try_recv().has_value());
  channel.send(5);
  const auto item = channel.try_recv();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 5);
  EXPECT_TRUE(channel.empty());
}

TEST(Channel, RecvOptReturnsValues) {
  Engine engine;
  Channel<int> channel{engine};
  channel.send(9);
  std::optional<int> got;
  auto reader = [](Channel<int>& ch, std::optional<int>& out) -> Task<> {
    out = co_await ch.recv_opt();
  };
  Fiber::spawn(engine, reader(channel, got));
  engine.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 9);
}

TEST(Channel, KilledReceiverDoesNotConsume) {
  Engine engine;
  Channel<int> channel{engine};
  auto reader = [](Channel<int>& ch) -> Task<> { (void)co_await ch.recv(); };
  Fiber blocked = Fiber::spawn(engine, reader(channel));
  engine.run_until(1.0);
  blocked.kill();
  channel.send(42);
  int got = 0;
  auto reader2 = [](Channel<int>& ch, int& out) -> Task<> {
    out = co_await ch.recv();
  };
  Fiber::spawn(engine, reader2(channel, got));
  engine.run();
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace ars::sim
