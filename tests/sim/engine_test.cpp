#include "ars/sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ars::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.pending_events(), 0U);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(10.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(Engine, PastTimesClampToNow) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(10.0, [&] {
    engine.schedule_at(3.0, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  auto handle = engine.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterFireIsNoOp) {
  Engine engine;
  int runs = 0;
  auto handle = engine.schedule_at(1.0, [&] { ++runs; });
  engine.run();
  handle.cancel();  // must not crash or double-run
  engine.run();
  EXPECT_EQ(runs, 1);
}

TEST(Engine, EmptyHandleCancelIsNoOp) {
  Engine::EventHandle handle;
  handle.cancel();
  EXPECT_FALSE(handle.pending());
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine engine;
  std::vector<double> fired;
  engine.schedule_at(1.0, [&] { fired.push_back(1.0); });
  engine.schedule_at(2.0, [&] { fired.push_back(2.0); });
  engine.schedule_at(5.0, [&] { fired.push_back(5.0); });
  engine.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  engine.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 5.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, EventAtBoundaryRunsInRunUntil) {
  Engine engine;
  bool ran = false;
  engine.schedule_at(3.0, [&] { ran = true; });
  engine.run_until(3.0);
  EXPECT_TRUE(ran);
}

// -- clamping / edge semantics (pinned before the queue rewrite) -------------

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(4.0, [&] {
    engine.schedule_after(-2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Engine, NegativeAbsoluteTimeClampsToNow) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(-7.0, [&] { fired_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 0.0);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Engine, NegativeZeroTimeJoinsTimeZeroChain) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(0.0, [&] { order.push_back(1); });
  engine.schedule_at(-0.0, [&] { order.push_back(2); });  // same instant
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Engine, EventScheduledAtBoundaryFromInsideRunUntilStillRuns) {
  Engine engine;
  std::vector<double> fired;
  engine.schedule_at(3.0, [&] {
    fired.push_back(engine.now());
    // Same-timestamp reschedule from inside the boundary event: still <=
    // until, so it must run in this run_until call, after this event.
    engine.schedule_at(3.0, [&] { fired.push_back(engine.now()); });
  });
  EXPECT_EQ(engine.run_until(3.0), 2U);
  EXPECT_EQ(fired, (std::vector<double>{3.0, 3.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, RunUntilLeavesLaterEventsPending) {
  Engine engine;
  bool ran = false;
  engine.schedule_at(3.5, [&] { ran = true; });
  EXPECT_EQ(engine.run_until(3.0), 0U);
  EXPECT_FALSE(ran);
  EXPECT_EQ(engine.pending_events(), 1U);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, RunUntilInThePastDoesNotRewindClock) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.run_until(2.0);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(Engine, StaleHandleAfterSlotReuseDoesNotCancelNewEvent) {
  Engine engine;
  auto stale = engine.schedule_at(1.0, [] {});
  engine.run();  // fires; its slot returns to the free list
  bool ran = false;
  auto fresh = engine.schedule_at(2.0, [&] { ran = true; });
  // `stale` likely refers to the same recycled slot as `fresh`; the
  // generation counter must make it inert.
  stale.cancel();
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  engine.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, CancelFromInsideOwnCallbackIsNoOp) {
  Engine engine;
  Engine::EventHandle self;
  int runs = 0;
  self = engine.schedule_at(1.0, [&] {
    ++runs;
    self.cancel();  // running event is already stale: must be harmless
  });
  engine.run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(engine.pending_events(), 0U);
}

TEST(Engine, CancelMiddleOfSameTimeChainPreservesFifo) {
  Engine engine;
  std::vector<int> order;
  std::vector<Engine::EventHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(engine.schedule_at(2.0, [&order, i] {
      order.push_back(i);
    }));
  }
  handles[0].cancel();  // chain head
  handles[3].cancel();  // middle
  handles[5].cancel();  // tail (next append must keep the cancelled mark)
  bool appended = false;
  engine.schedule_at(2.0, [&] { appended = true; });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4}));
  EXPECT_TRUE(appended);
}

TEST(Engine, CancelEveryEventLeavesCleanQueue) {
  Engine engine;
  std::vector<Engine::EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(
        engine.schedule_at(static_cast<double>(i % 3), [] { FAIL(); }));
  }
  for (auto& handle : handles) {
    handle.cancel();
  }
  EXPECT_EQ(engine.pending_events(), 0U);
  EXPECT_EQ(engine.run(), 0U);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);  // no live event: clock untouched
}

TEST(Engine, StopRequestHaltsRun) {
  Engine engine;
  int runs = 0;
  engine.schedule_at(1.0, [&] {
    ++runs;
    engine.request_stop();
  });
  engine.schedule_at(2.0, [&] { ++runs; });
  engine.run();
  EXPECT_EQ(runs, 1);
  engine.clear_stop();
  engine.run();
  EXPECT_EQ(runs, 2);
}

TEST(Engine, StepRunsExactlyOneEvent) {
  Engine engine;
  int runs = 0;
  engine.schedule_at(1.0, [&] { ++runs; });
  engine.schedule_at(2.0, [&] { ++runs; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(runs, 2);
  EXPECT_FALSE(engine.step());
}

TEST(Engine, EventsExecutedCounter) {
  Engine engine;
  for (int i = 0; i < 7; ++i) {
    engine.schedule_at(i, [] {});
  }
  engine.run();
  EXPECT_EQ(engine.events_executed(), 7U);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      engine.schedule_after(1.0, chain);
    }
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(engine.now(), 99.0);
}

TEST(Engine, PendingEventsExcludesCancelled) {
  Engine engine;
  auto a = engine.schedule_at(1.0, [] {});
  auto b = engine.schedule_at(2.0, [] {});
  (void)b;
  EXPECT_EQ(engine.pending_events(), 2U);
  a.cancel();
  EXPECT_EQ(engine.pending_events(), 1U);
}

}  // namespace
}  // namespace ars::sim
