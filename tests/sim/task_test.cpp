#include "ars/sim/task.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ars/sim/wait.hpp"

namespace ars::sim {
namespace {

TEST(Fiber, RunsToCompletion) {
  Engine engine;
  bool ran = false;
  auto body = [](Engine& e, bool& flag) -> Task<> {
    co_await delay(e, 1.0);
    flag = true;
  };
  Fiber fiber = Fiber::spawn(engine, body(engine, ran), "t");
  EXPECT_FALSE(fiber.done());
  engine.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(fiber.done());
  EXPECT_FALSE(fiber.failed());
}

TEST(Fiber, DelayAdvancesVirtualTime) {
  Engine engine;
  std::vector<double> stamps;
  auto body = [](Engine& e, std::vector<double>& out) -> Task<> {
    out.push_back(e.now());
    co_await delay(e, 2.5);
    out.push_back(e.now());
    co_await delay(e, 0.5);
    out.push_back(e.now());
  };
  Fiber::spawn(engine, body(engine, stamps));
  engine.run();
  ASSERT_EQ(stamps.size(), 3U);
  EXPECT_DOUBLE_EQ(stamps[0], 0.0);
  EXPECT_DOUBLE_EQ(stamps[1], 2.5);
  EXPECT_DOUBLE_EQ(stamps[2], 3.0);
}

TEST(Fiber, NestedTasksPropagateValues) {
  Engine engine;
  int result = 0;
  auto inner = [](Engine& e) -> Task<int> {
    co_await delay(e, 1.0);
    co_return 21;
  };
  auto outer = [&inner](Engine& e, int& out) -> Task<> {
    const int a = co_await inner(e);
    const int b = co_await inner(e);
    out = a + b;
  };
  Fiber::spawn(engine, outer(engine, result));
  engine.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Fiber, ExceptionsPropagateAcrossNesting) {
  Engine engine;
  bool reached_after = false;
  auto thrower = [](Engine& e) -> Task<int> {
    co_await delay(e, 1.0);
    throw std::runtime_error("inner failure");
  };
  auto outer = [&](Engine& e) -> Task<> {
    try {
      (void)co_await thrower(e);
    } catch (const std::runtime_error& err) {
      EXPECT_STREQ(err.what(), "inner failure");
      reached_after = true;
    }
  };
  Fiber fiber = Fiber::spawn(engine, outer(engine));
  engine.run();
  EXPECT_TRUE(reached_after);
  EXPECT_FALSE(fiber.failed());
}

TEST(Fiber, UncaughtExceptionMarksFiberFailed) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> {
    co_await delay(e, 1.0);
    throw std::runtime_error("boom");
  };
  Fiber fiber = Fiber::spawn(engine, body(engine));
  engine.run();
  EXPECT_TRUE(fiber.done());
  EXPECT_TRUE(fiber.failed());
}

TEST(Fiber, FiberExitIsCleanTermination) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> {
    co_await delay(e, 1.0);
    throw FiberExit{"done early"};
  };
  Fiber fiber = Fiber::spawn(engine, body(engine));
  engine.run();
  EXPECT_TRUE(fiber.done());
  EXPECT_FALSE(fiber.failed());
}

TEST(Fiber, KillWhileSuspendedCancelsPendingWork) {
  Engine engine;
  bool after_delay = false;
  auto body = [](Engine& e, bool& flag) -> Task<> {
    co_await delay(e, 100.0);
    flag = true;
  };
  Fiber fiber = Fiber::spawn(engine, body(engine, after_delay));
  engine.run_until(1.0);  // fiber started, now suspended in delay
  EXPECT_FALSE(fiber.done());
  fiber.kill();
  EXPECT_TRUE(fiber.done());
  engine.run();
  EXPECT_FALSE(after_delay);
  // The cancelled delay event must not leak a resumption.
  EXPECT_EQ(engine.pending_events(), 0U);
}

TEST(Fiber, KillBeforeStartIsSafe) {
  Engine engine;
  bool ran = false;
  auto body = [](bool& flag) -> Task<> {
    flag = true;
    co_return;
  };
  Fiber fiber = Fiber::spawn(engine, body(ran));
  fiber.kill();  // before the start event fires
  engine.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(fiber.done());
}

TEST(Fiber, KillTwiceIsIdempotent) {
  Engine engine;
  auto body = [](Engine& e) -> Task<> { co_await delay(e, 10.0); };
  Fiber fiber = Fiber::spawn(engine, body(engine));
  engine.run_until(1.0);
  fiber.kill();
  fiber.kill();
  EXPECT_TRUE(fiber.done());
}

TEST(Fiber, KillUnwindsNestedFrames) {
  Engine engine;
  // Destructor observers in both frames prove full unwinding.
  struct Probe {
    bool* flag;
    ~Probe() { *flag = true; }
  };
  bool inner_destroyed = false;
  bool outer_destroyed = false;
  auto inner = [](Engine& e, bool* flag) -> Task<> {
    Probe probe{flag};
    co_await delay(e, 100.0);
  };
  auto outer = [&inner](Engine& e, bool* in_flag, bool* out_flag) -> Task<> {
    Probe probe{out_flag};
    co_await inner(e, in_flag);
  };
  Fiber fiber = Fiber::spawn(engine, outer(engine, &inner_destroyed,
                                           &outer_destroyed));
  engine.run_until(1.0);
  fiber.kill();
  EXPECT_TRUE(inner_destroyed);
  EXPECT_TRUE(outer_destroyed);
}

TEST(Fiber, OnExitFiresAtCompletion) {
  Engine engine;
  std::vector<std::string> events;
  auto body = [](Engine& e, std::vector<std::string>& out) -> Task<> {
    co_await delay(e, 1.0);
    out.push_back("body");
  };
  Fiber fiber = Fiber::spawn(engine, body(engine, events));
  fiber.on_exit([&] { events.push_back("exit"); });
  engine.run();
  EXPECT_EQ(events, (std::vector<std::string>{"body", "exit"}));
}

TEST(Fiber, OnExitAfterDoneFiresImmediately) {
  Engine engine;
  auto body = []() -> Task<> { co_return; };
  Fiber fiber = Fiber::spawn(engine, body());
  engine.run();
  bool fired = false;
  fiber.on_exit([&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(Fiber, SpawnOrderDeterminesStartOrder) {
  Engine engine;
  std::vector<int> order;
  auto body = [](std::vector<int>& out, int id) -> Task<> {
    out.push_back(id);
    co_return;
  };
  for (int i = 0; i < 5; ++i) {
    Fiber::spawn(engine, body(order, i));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Trigger, ReleasesWaiters) {
  Engine engine;
  Trigger trigger{engine};
  std::vector<double> wake_times;
  auto waiter = [](Trigger& t, Engine& e, std::vector<double>& out) -> Task<> {
    co_await t.wait();
    out.push_back(e.now());
  };
  Fiber::spawn(engine, waiter(trigger, engine, wake_times));
  Fiber::spawn(engine, waiter(trigger, engine, wake_times));
  engine.schedule_at(5.0, [&] { trigger.fire(); });
  engine.run();
  ASSERT_EQ(wake_times.size(), 2U);
  EXPECT_DOUBLE_EQ(wake_times[0], 5.0);
  EXPECT_DOUBLE_EQ(wake_times[1], 5.0);
}

TEST(Trigger, WaitAfterFireReturnsImmediately) {
  Engine engine;
  Trigger trigger{engine};
  trigger.fire();
  bool resumed = false;
  auto waiter = [](Trigger& t, bool& flag) -> Task<> {
    co_await t.wait();
    flag = true;
  };
  Fiber::spawn(engine, waiter(trigger, resumed));
  engine.run();
  EXPECT_TRUE(resumed);
}

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  Engine engine;
  WaitQueue queue{engine};
  std::vector<int> woke;
  auto waiter = [](WaitQueue& q, std::vector<int>& out, int id) -> Task<> {
    co_await q.wait();
    out.push_back(id);
  };
  Fiber::spawn(engine, waiter(queue, woke, 0));
  Fiber::spawn(engine, waiter(queue, woke, 1));
  Fiber::spawn(engine, waiter(queue, woke, 2));
  engine.schedule_at(1.0, [&] { queue.notify_one(); });
  engine.schedule_at(2.0, [&] { queue.notify_one(); });
  engine.schedule_at(3.0, [&] { queue.notify_one(); });
  engine.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, KilledWaiterLeavesQueueConsistent) {
  Engine engine;
  WaitQueue queue{engine};
  std::vector<int> woke;
  auto waiter = [](WaitQueue& q, std::vector<int>& out, int id) -> Task<> {
    co_await q.wait();
    out.push_back(id);
  };
  Fiber f0 = Fiber::spawn(engine, waiter(queue, woke, 0));
  Fiber f1 = Fiber::spawn(engine, waiter(queue, woke, 1));
  (void)f1;
  engine.run_until(0.5);
  EXPECT_EQ(queue.waiter_count(), 2U);
  f0.kill();
  EXPECT_EQ(queue.waiter_count(), 1U);
  queue.notify_one();
  engine.run();
  EXPECT_EQ(woke, (std::vector<int>{1}));
}

}  // namespace
}  // namespace ars::sim
