// ShardGroup (ISSUE 7): conservative multi-threaded epochs over per-shard
// engines.  The properties pinned here are the ones the sharded runtime
// builds on: the one-shard path is plain Engine::run_until (no threads), the
// cross-shard merge order is (timestamp, source shard, sequence), posts obey
// the lookahead contract, and a fixed shard count replays byte-identically.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ars/sim/shard.hpp"

namespace ars::sim {
namespace {

constexpr double kLookahead = 0.001;

/// Per-shard execution log: "t<time>:s<shard>:<tag>" lines, written only by
/// the owning shard's thread, concatenated (by shard) after the run.
struct Logs {
  explicit Logs(std::size_t shards) : per_shard(shards) {}
  std::vector<std::vector<std::string>> per_shard;

  void record(ShardGroup& group, std::size_t shard, const std::string& tag) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "t%.6f:s%zu:%s",
                  group.engine(shard).now(), shard, tag.c_str());
    per_shard[shard].emplace_back(buf);
  }

  [[nodiscard]] std::string merged() const {
    std::string out;
    for (const auto& lines : per_shard) {
      for (const auto& line : lines) {
        out += line;
        out += "\n";
      }
    }
    return out;
  }
};

TEST(ShardGroup, SingleShardRunsInlineWithoutThreads) {
  ShardGroup group{1, {.lookahead = kLookahead}};
  std::vector<int> order;
  group.engine(0).schedule_at(1.0, [&] { order.push_back(1); });
  group.post(0, 0, 2.0, [&] { order.push_back(2); });
  const std::size_t executed = group.run_until(5.0);
  EXPECT_EQ(executed, 2U);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(group.threaded());
  EXPECT_EQ(group.epochs(), 0U);
  EXPECT_DOUBLE_EQ(group.engine(0).now(), 5.0);
}

TEST(ShardGroup, SetupPostsAreFlushedBeforeTheFirstEpoch) {
  ShardGroup group{2, {.lookahead = kLookahead}};
  std::vector<int> seen;
  group.post(0, 1, 0.5, [&] { seen.push_back(1); });
  group.post(1, 0, 0.25, [&] { seen.push_back(0); });
  group.run_until(1.0);
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], 0);  // earlier timestamp first, across shards
  EXPECT_EQ(seen[1], 1);
  EXPECT_DOUBLE_EQ(group.engine(0).now(), 1.0);
  EXPECT_DOUBLE_EQ(group.engine(1).now(), 1.0);
}

TEST(ShardGroup, CrossShardMergeOrderIsTimestampSourceSequence) {
  ShardGroup group{3, {.lookahead = kLookahead}};
  std::vector<std::string> order;  // written only by shard 0's owner
  // All three sources post two same-timestamp events each into shard 0
  // during the first epoch; the merge must interleave them (t, src, seq).
  for (std::size_t src : {2UL, 1UL, 0UL}) {
    group.engine(src).schedule_at(0.1, [&group, &order, src] {
      for (int i = 0; i < 2; ++i) {
        const std::string tag =
            "s" + std::to_string(src) + "#" + std::to_string(i);
        group.post(src, 0, 0.1 + kLookahead,
                   [&order, tag] { order.push_back(tag); });
      }
    });
  }
  group.run_until(1.0);
  EXPECT_EQ(order,
            (std::vector<std::string>{"s0#0", "s0#1", "s1#0", "s1#1", "s2#0",
                                      "s2#1"}));
  EXPECT_EQ(group.cross_events(), 4U);  // shard 0's own posts go direct
  EXPECT_TRUE(group.threaded());
  EXPECT_GE(group.epochs(), 1U);
}

TEST(ShardGroup, PingPongAcrossShardsAdvancesInLookaheadEpochs) {
  ShardGroup group{2, {.lookahead = kLookahead}};
  int hops = 0;
  // Relay a token: each hop re-posts to the other shard one lookahead
  // later.  40 hops => the run needs at least 40 epochs and the token's
  // timestamps must be exact multiples of the lookahead.
  struct Relay {
    ShardGroup* group;
    int* hops;
    void hop(std::size_t from, int remaining) const {
      ++*hops;
      if (remaining == 0) {
        return;
      }
      const std::size_t to = 1 - from;
      Relay self = *this;
      group->post(from, to, group->engine(from).now() + kLookahead,
                  [self, to, remaining] { self.hop(to, remaining - 1); });
    }
  };
  Relay relay{&group, &hops};
  group.engine(0).schedule_at(0.0, [relay] { relay.hop(0, 40); });
  group.run_until(1.0);
  EXPECT_EQ(hops, 41);
  EXPECT_GE(group.epochs(), 40U);
  EXPECT_EQ(group.cross_events(), 40U);
}

TEST(ShardGroup, FixedShardCountReplaysByteIdentically) {
  const auto run_once = [] {
    ShardGroup group{4, {.lookahead = kLookahead}};
    auto logs = std::make_shared<Logs>(4);
    // Each shard runs a periodic local tick and fans a post out to every
    // other shard with per-source timing, so the merged log exercises
    // same-timestamp collisions from distinct sources.
    for (std::size_t shard = 0; shard < 4; ++shard) {
      struct Ticker {
        ShardGroup* group;
        std::shared_ptr<Logs> logs;
        std::size_t shard;
        void tick(int remaining) const {
          logs->record(*group, shard, "tick");
          for (std::size_t dst = 0; dst < 4; ++dst) {
            if (dst == shard) {
              continue;
            }
            Ticker self = *this;
            group->post(shard, dst,
                        group->engine(shard).now() + kLookahead * 2,
                        [self, dst] {
                          self.logs->record(*self.group, dst,
                                            "from" + std::to_string(self.shard));
                        });
          }
          if (remaining > 0) {
            Ticker self = *this;
            group->engine(shard).schedule_after(
                0.0103 + 0.001 * static_cast<double>(shard),
                [self, remaining] { self.tick(remaining - 1); });
          }
        }
      };
      Ticker ticker{&group, logs, shard};
      group.engine(shard).schedule_at(0.0, [ticker] { ticker.tick(12); });
    }
    group.run_until(0.5);
    return logs->merged() + "events=" +
           std::to_string(group.events_executed()) +
           " cross=" + std::to_string(group.cross_events());
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_GT(first.size(), 100U);
  EXPECT_EQ(first, second)
      << "same shard count, different merged timeline: the cross-shard "
         "merge is not deterministic";
}

TEST(ShardGroup, RepeatedRunUntilWindowsCompose) {
  ShardGroup group{2, {.lookahead = kLookahead}};
  int fired = 0;
  group.engine(0).schedule_at(0.2, [&group, &fired] {
    ++fired;
    group.post(0, 1, 0.2 + kLookahead, [&fired] { ++fired; });
  });
  group.engine(1).schedule_at(0.9, [&fired] { ++fired; });
  group.run_until(0.5);
  EXPECT_EQ(fired, 2);
  group.run_until(1.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(group.engine(0).now(), 1.0);
  EXPECT_DOUBLE_EQ(group.engine(1).now(), 1.0);
}

TEST(ShardGroup, RejectsZeroShardsAndZeroLookahead) {
  EXPECT_THROW(ShardGroup(0, {}), std::invalid_argument);
  EXPECT_THROW(ShardGroup(2, {.lookahead = 0.0}), std::invalid_argument);
  EXPECT_THROW(ShardGroup(2, {.lookahead = -1.0}), std::invalid_argument);
}

// Dense concurrent load; primarily a ThreadSanitizer target (the CI TSan job
// runs this label) — every shard hammers its own engine while cross posts
// flow through every mailbox pair.
TEST(ShardGroup, ConcurrentStressStaysCoherent) {
  ShardGroup group{4, {.lookahead = kLookahead}};
  std::vector<std::uint64_t> local(4, 0);
  std::vector<std::uint64_t> remote(4, 0);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    struct Worker {
      ShardGroup* group;
      std::uint64_t* local;
      std::uint64_t* remote;
      std::size_t shard;
      void spin(int remaining) const {
        ++*local;
        const std::size_t dst = (shard + 1) % 4;
        Worker self = *this;
        group->post(shard, dst, group->engine(shard).now() + kLookahead,
                    [self] { ++self.remote[0]; });
        if (remaining > 0) {
          group->engine(shard).schedule_after(
              kLookahead / 4, [self, remaining] { self.spin(remaining - 1); });
        }
      }
    };
    Worker worker{&group, &local[shard], &remote[(shard + 1) % 4], shard};
    group.engine(shard).schedule_at(0.0, [worker] { worker.spin(500); });
  }
  group.run_until(2.0);
  for (std::size_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(local[shard], 501U);
    EXPECT_EQ(remote[shard], 501U);
  }
  EXPECT_EQ(group.cross_events(), 4U * 501U);
}

TEST(EngineNextEventAt, PeeksEarliestLiveEvent) {
  Engine engine;
  EXPECT_TRUE(std::isinf(engine.next_event_at()));
  auto first = engine.schedule_at(2.0, [] {});
  engine.schedule_at(5.0, [] {});
  EXPECT_DOUBLE_EQ(engine.next_event_at(), 2.0);
  first.cancel();
  EXPECT_DOUBLE_EQ(engine.next_event_at(), 5.0);
  engine.run_until(10.0);
  EXPECT_TRUE(std::isinf(engine.next_event_at()));
}

}  // namespace
}  // namespace ars::sim
