#include "ars/sim/sync.hpp"

#include <gtest/gtest.h>

namespace ars::sim {
namespace {

TEST(Semaphore, LimitsConcurrency) {
  Engine engine;
  Semaphore semaphore{engine, 2};
  int active = 0;
  int peak = 0;
  auto worker = [](Engine& e, Semaphore& s, int& act, int& pk) -> Task<> {
    co_await s.acquire();
    ++act;
    pk = std::max(pk, act);
    co_await delay(e, 1.0);
    --act;
    s.release();
  };
  for (int i = 0; i < 6; ++i) {
    Fiber::spawn(engine, worker(engine, semaphore, active, peak));
  }
  engine.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(semaphore.available(), 2U);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);  // 6 jobs, 2 at a time, 1 s each
}

TEST(Semaphore, TryAcquireNeverSuspends) {
  Engine engine;
  Semaphore semaphore{engine, 1};
  EXPECT_TRUE(semaphore.try_acquire());
  EXPECT_FALSE(semaphore.try_acquire());
  semaphore.release();
  EXPECT_TRUE(semaphore.try_acquire());
}

TEST(Semaphore, ReleaseManyWakesMany) {
  Engine engine;
  Semaphore semaphore{engine, 0};
  int through = 0;
  auto worker = [](Semaphore& s, int& n) -> Task<> {
    co_await s.acquire();
    ++n;
  };
  for (int i = 0; i < 3; ++i) {
    Fiber::spawn(engine, worker(semaphore, through));
  }
  engine.run_until(1.0);
  EXPECT_EQ(through, 0);
  EXPECT_EQ(semaphore.waiting(), 3U);
  semaphore.release(3);
  engine.run_until(2.0);
  EXPECT_EQ(through, 3);
}

TEST(WaitWithTimeout, FiresBeforeDeadline) {
  Engine engine;
  Trigger trigger{engine};
  bool result = false;
  double resumed_at = -1.0;
  auto waiter = [](Engine& e, Trigger& t, bool& out, double& at) -> Task<> {
    out = co_await wait_with_timeout(e, t, 100.0);
    at = e.now();
  };
  Fiber::spawn(engine, waiter(engine, trigger, result, resumed_at));
  engine.schedule_at(5.0, [&] { trigger.fire(); });
  engine.run_until(200.0);
  EXPECT_TRUE(result);
  EXPECT_LT(resumed_at, 15.0);  // woke near the firing, not the deadline
}

TEST(WaitWithTimeout, TimesOut) {
  Engine engine;
  Trigger trigger{engine};
  bool result = true;
  double resumed_at = -1.0;
  auto waiter = [](Engine& e, Trigger& t, bool& out, double& at) -> Task<> {
    out = co_await wait_with_timeout(e, t, 10.0);
    at = e.now();
  };
  Fiber::spawn(engine, waiter(engine, trigger, result, resumed_at));
  engine.run_until(100.0);
  EXPECT_FALSE(result);
  EXPECT_NEAR(resumed_at, 10.0, 1.0);
}

}  // namespace
}  // namespace ars::sim
