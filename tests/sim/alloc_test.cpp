// Proof of the zero-allocation steady state (ISSUE 2 acceptance): global
// operator new/delete are replaced with counting wrappers *in this binary
// only*, and the tests assert that a warmed-up `sim::Engine` schedules,
// cancels, and executes events without a single heap allocation.
//
// This lives in its own test executable (test_alloc) so the counters don't
// interfere with — or get confused by — the rest of the suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "ars/sim/engine.hpp"

namespace {

std::atomic<std::size_t> g_alloc_count{0};

std::size_t allocations() { return g_alloc_count.load(); }

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_alloc_count;
  if (size % align != 0) {
    size += align - size % align;  // aligned_alloc requires a multiple
  }
  if (void* p = std::aligned_alloc(align, size)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

// Every replaceable form the engine (or the standard library underneath it)
// could reach; deletes are deliberately not counted — the assertion is about
// acquiring memory in steady state.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using ars::sim::Engine;

constexpr int kBatch = 1000;

/// Schedule-and-drain one batch with the mixed-timestamp pattern the micro
/// bench uses (97 distinct times, chained same-time events).
void run_batch(Engine& engine) {
  for (int i = 0; i < kBatch; ++i) {
    engine.schedule_after(static_cast<double>(i % 97), [] {});
  }
  while (engine.step()) {
  }
}

TEST(EngineAllocation, SteadyStateStepIsAllocationFree) {
  Engine engine;
  // Warm-up: grows the slot slab, timestamp pool, heap, and hash index to
  // their steady-state footprint (these growths DO allocate, by design).
  run_batch(engine);
  run_batch(engine);

  const std::size_t before = allocations();
  run_batch(engine);
  EXPECT_EQ(allocations() - before, 0U)
      << "schedule_after/step must not allocate once the pools are warm";
}

TEST(EngineAllocation, InlineCallbackCapturesAreAllocationFree) {
  Engine engine;
  run_batch(engine);
  run_batch(engine);

  // 40 bytes of capture: inside Callback's 48-byte inline buffer.
  struct Payload {
    double a[5];
  } payload{{1, 2, 3, 4, 5}};
  double sink = 0.0;

  const std::size_t before = allocations();
  for (int i = 0; i < kBatch; ++i) {
    engine.schedule_after(static_cast<double>(i % 97),
                          [payload, &sink] { sink += payload.a[0]; });
  }
  while (engine.step()) {
  }
  EXPECT_EQ(allocations() - before, 0U)
      << "captures up to 48 bytes must stay in the inline buffer";
  EXPECT_EQ(sink, kBatch * 1.0);
}

TEST(EngineAllocation, CancellationIsAllocationFree) {
  Engine engine;
  std::vector<Engine::EventHandle> handles(kBatch);
  // Warm-up includes the cancel pattern so the freelist is primed.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kBatch; ++i) {
      handles[i] =
          engine.schedule_after(static_cast<double>(i % 97), [] {});
    }
    for (int i = 0; i < kBatch; i += 2) {
      handles[i].cancel();
    }
    while (engine.step()) {
    }
  }

  const std::size_t before = allocations();
  for (int i = 0; i < kBatch; ++i) {
    handles[i] = engine.schedule_after(static_cast<double>(i % 97), [] {});
  }
  for (int i = 0; i < kBatch; i += 2) {
    handles[i].cancel();
  }
  while (engine.step()) {
  }
  EXPECT_EQ(allocations() - before, 0U)
      << "cancel() and lazy removal must not allocate";
}

TEST(EngineAllocation, SelfReschedulingTimerIsAllocationFree) {
  Engine engine;
  // A periodic timer re-arming itself from inside its own callback — the
  // monitor/heartbeat shape that dominates long idle stretches.
  struct Timer {
    Engine* engine;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) {
        engine->schedule_after(0.5, *this);
      }
    }
  };
  int remaining = 64;
  engine.schedule_after(0.5, Timer{&engine, &remaining});
  while (engine.step()) {
  }

  remaining = 4096;
  const std::size_t before = allocations();
  engine.schedule_after(0.5, Timer{&engine, &remaining});
  while (engine.step()) {
  }
  EXPECT_EQ(allocations() - before, 0U);
  EXPECT_EQ(remaining, 0);
}

TEST(EngineAllocation, OversizedCallbackFallsBackToHeap) {
  // Sanity check on the fixture itself: a capture beyond the inline buffer
  // must be visible to the counters (otherwise the zero-allocation results
  // above would be vacuous).
  Engine engine;
  struct Big {
    double a[9];  // 72 bytes > 48-byte inline buffer
  } big{};
  const std::size_t before = allocations();
  engine.schedule_after(0.0, [big] { (void)big; });
  EXPECT_GT(allocations() - before, 0U);
  while (engine.step()) {
  }
}

}  // namespace
