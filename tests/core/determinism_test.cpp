// Determinism regression test (ISSUE 2): the Figure-7 migration scenario,
// run twice with identical configuration, must produce a byte-identical
// observability trace — every span and instant event, in order, with
// identical virtual timestamps — plus identical engine event counts.
//
// This pins the FIFO guarantee of the event queue across rewrites: any
// reordering of same-timestamp events (scheduler decisions, MPI deliveries,
// monitor ticks) shows up as a trace diff long before it corrupts results.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ars/apps/test_tree.hpp"
#include "ars/chaos/scenario.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/rules/policy.hpp"

namespace ars::core {
namespace {

struct Fingerprint {
  std::string trace_jsonl;          // full obs timeline, one event per line
  std::uint64_t events_executed = 0;
  double final_now = 0.0;
  std::size_t migrations = 0;
  bool migrated = false;
};

/// FNV-1a, so failure messages can show a compact digest of the timelines.
std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Compact Figure-7 shape: a migration-enabled app starts, a CPU hog then
/// overloads its workstation, and the rescheduler migrates the app away.
Fingerprint run_figure7_scenario() {
  rules::MigrationPolicy policy = rules::paper_policy2();
  policy.set_warmup(20.0);
  ReschedulerRuntime runtime{make_cluster(2, policy)};
  runtime.start_rescheduler();
  runtime.trace().start(10.0);

  // The Figure-7 bench's workload, scaled down (2^16 nodes instead of 2^18)
  // to keep the test quick.  The tree must still be mid-SORT when the hog
  // arrives at t=60 — smaller trees finish before the overload and nothing
  // migrates.
  apps::TestTree::Params params;
  params.levels = 16;
  params.build_work_per_knode = 0.20;
  params.fill_work_per_knode = 0.10;
  params.sort_work_per_knode = 1.13;
  params.sum_work_per_knode = 0.10;
  params.chunk_work = 0.6;
  params.node_overhead_bytes = 220;
  apps::TestTree::Result result;
  runtime.engine().schedule_at(30.0, [&] {
    runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                       "test_tree", apps::TestTree::schema(params));
  });
  host::CpuHog hog{runtime.host("ws1"),
                   {.threads = 3, .duration = 300.0, .name = "additional"}};
  runtime.engine().schedule_at(60.0, [&] { hog.start(); });

  runtime.run_until(500.0);

  Fingerprint fp;
  fp.trace_jsonl = runtime.tracer().to_jsonl();
  fp.events_executed = runtime.engine().events_executed();
  fp.final_now = runtime.engine().now();
  fp.migrations = runtime.middleware().history().size();
  fp.migrated = !runtime.middleware().history().empty() &&
                runtime.middleware().history().front().succeeded;
  return fp;
}

TEST(DeterminismFigure7, TraceAndEventSequenceAreByteIdentical) {
  const Fingerprint first = run_figure7_scenario();
  const Fingerprint second = run_figure7_scenario();

  // The scenario must actually exercise the interesting machinery —
  // otherwise identical traces would be a vacuous guarantee.
  EXPECT_TRUE(first.migrated) << "scenario did not migrate; widen the load";
  EXPECT_GT(first.trace_jsonl.size(), 0U);
  // Causal contexts are ON in this trace (txn-tagged events present), so
  // byte-identity covers the obs-v2 tagging, not just the bare timeline.
  EXPECT_NE(first.trace_jsonl.find("\"txn\""), std::string::npos)
      << "trace carries no causal contexts; determinism check is vacuous";

  EXPECT_EQ(fnv1a(first.trace_jsonl), fnv1a(second.trace_jsonl));
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "same seed, different timeline: event ordering is not deterministic";
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_DOUBLE_EQ(first.final_now, second.final_now);
  EXPECT_EQ(first.migrations, second.migrations);
}

// Chaos extension (ISSUE 3): determinism must survive fault injection.
// The same seed and the same FaultPlan — probabilistic message loss, a
// monitor stall, a registry cold restart — must replay to a byte-identical
// trace; a different seed must not.
TEST(DeterminismChaos, SameSeedAndFaultPlanAreByteIdentical) {
  chaos::ScenarioOptions options;
  options.seed = 5;
  options.plan = *chaos::FaultPlan::builtin("control-loss");
  options.keep_trace = true;

  const chaos::ScenarioReport first = chaos::run_scenario(options);
  const chaos::ScenarioReport second = chaos::run_scenario(options);

  // Vacuity guard: the faults must actually have fired.
  EXPECT_GT(first.faults.messages_dropped, 0U);
  EXPECT_EQ(first.faults.registry_crashes, 1);

  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl)
      << "same seed + same fault plan, different timeline: fault injection "
         "is not deterministic";
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_DOUBLE_EQ(first.final_time, second.final_time);

  chaos::ScenarioOptions reseeded = options;
  reseeded.seed = 6;
  const chaos::ScenarioReport third = chaos::run_scenario(reseeded);
  EXPECT_NE(first.trace_hash, third.trace_hash)
      << "different seeds produced identical runs: the seed is not wired "
         "through the injector";
}

}  // namespace
}  // namespace ars::core
