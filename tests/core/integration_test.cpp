// Cross-cutting integration tests: rule-file-driven monitors, runtime
// evacuation, trace export, and whole-run determinism.

#include <gtest/gtest.h>

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/rules/rulefile.hpp"

namespace ars::core {
namespace {

TEST(RuleDrivenMonitor, Figure3FileClassifiesLiveHost) {
  // Wire a monitor whose classifier evaluates the paper's verbatim Figure 3
  // rule file against the live simulated host.
  ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy2())};
  auto engine_or = rules::RuleEngine::from_text(rules::paper_figure3_text());
  ASSERT_TRUE(engine_or.has_value());
  auto rule_engine =
      std::make_shared<rules::RuleEngine>(std::move(*engine_or));
  auto sensors = std::make_shared<monitor::HostSensorSource>(
      runtime.host("ws1"), runtime.network());

  monitor::Monitor::Config config;
  config.registry_host = "ws1";
  config.registry_port = runtime.scheduler().port();
  config.policy = rules::paper_policy2();
  config.classifier = monitor::classifier_from_rules(rule_engine, sensors);
  monitor::Monitor rule_monitor{runtime.host("ws1"), runtime.network(),
                                config};
  runtime.scheduler().start();
  rule_monitor.start();

  runtime.run_until(30.0);
  EXPECT_EQ(rule_monitor.state(), rules::SystemState::kFree);

  // Saturate the CPU: idle% -> 0 < 45 -> the file says overloaded.
  host::CpuHog hog{runtime.host("ws1"), {.threads = 1}};
  hog.start();
  runtime.run_until(100.0);
  EXPECT_EQ(rule_monitor.state(), rules::SystemState::kOverloaded);

  // Release it: idle% -> 100 -> free again.
  hog.stop();
  runtime.run_until(150.0);
  EXPECT_EQ(rule_monitor.state(), rules::SystemState::kFree);
}

TEST(RuntimeEvacuation, DrainsAHostEndToEnd) {
  ReschedulerRuntime runtime{make_cluster(3, rules::paper_policy2())};
  runtime.start_rescheduler();
  apps::TestTree::Params params;
  params.levels = 16;
  apps::TestTree::Result result;
  runtime.launch_app("ws2", apps::TestTree::make(params, &result),
                     "test_tree", apps::TestTree::schema(params));
  runtime.engine().schedule_at(15.0,
                               [&] { runtime.evacuate_host("ws2", "test"); });
  runtime.run_until(1000.0);
  EXPECT_TRUE(result.finished);
  EXPECT_NE(result.finished_on, "ws2");
  EXPECT_EQ(result.migrations, 1);
  EXPECT_DOUBLE_EQ(result.sum, apps::TestTree::expected_sum(params));
  EXPECT_EQ(runtime.scheduler().evacuations_commanded(), 1);
  EXPECT_THROW(runtime.evacuate_host("nosuch", "x"), std::out_of_range);
}

TEST(TraceCsv, ExportsHeaderAndRows) {
  ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy2())};
  runtime.trace().start(10.0);
  runtime.run_until(35.0);
  const std::string csv = runtime.trace().to_csv();
  EXPECT_EQ(csv.rfind("t,host,load1,load5,cpu_util,tx_bps,rx_bps,processes\n",
                      0),
            0U);
  // 3 sampling instants x 2 hosts + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  EXPECT_NE(csv.find("ws1"), std::string::npos);
  EXPECT_NE(csv.find("ws2"), std::string::npos);
}

TEST(Determinism, IdenticalRunsProduceIdenticalTraces) {
  const auto run_once = [] {
    ReschedulerRuntime runtime{make_cluster(3, rules::paper_policy2())};
    runtime.start_rescheduler();
    runtime.trace().start(10.0);
    apps::TestTree::Params params;
    params.levels = 15;
    apps::TestTree::Result result;
    runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                       "test_tree", apps::TestTree::schema(params));
    host::CpuHog hog{runtime.host("ws1"), {.threads = 3}};
    runtime.engine().schedule_at(10.0, [&] { hog.start(); });
    runtime.run_until(600.0);
    return std::make_pair(runtime.trace().to_csv(),
                          runtime.middleware().history().size());
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);    // byte-identical traces
  EXPECT_EQ(first.second, second.second);  // same migration count
}

TEST(Determinism, EventCountsAreStable) {
  const auto run_once = [] {
    ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy2())};
    runtime.start_rescheduler();
    runtime.run_until(300.0);
    return runtime.engine().events_executed();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ars::core
