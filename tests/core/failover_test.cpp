// Autonomic failure recovery, end to end: a host dies without warning; the
// registry's soft-state lease lapses; with auto_restart the lost processes
// are relaunched elsewhere from their latest checkpoints.

#include <gtest/gtest.h>

#include "ars/core/runtime.hpp"

namespace ars::core {
namespace {

/// Checkpointing counter app.
struct FailoverApp {
  int iterations = 60;
  int checkpoint_every = 10;
  bool finished = false;
  std::string finished_on;
  int executed = 0;
  bool restarted_from_checkpoint = false;

  hpcm::MigrationEngine::MigratableApp make() {
    return [this](mpi::Proc& proc, hpcm::MigrationContext& ctx)
               -> sim::Task<> {
      std::int64_t i = ctx.restored() ? *ctx.state().get_int("i") : 0;
      if (ctx.restored()) {
        restarted_from_checkpoint = ctx.restarted_from_checkpoint();
      }
      ctx.on_save([&ctx, &i] { ctx.state().set_int("i", i); });
      for (; i < iterations; ++i) {
        co_await ctx.poll_point();
        if (checkpoint_every > 0 && i > 0 && i % checkpoint_every == 0) {
          co_await ctx.checkpoint();
        }
        co_await proc.compute(1.0);
        ++executed;
      }
      finished = true;
      finished_on = proc.host().name();
    };
  }
};

ClusterConfig failover_cluster() {
  ClusterConfig config = make_cluster(3, rules::paper_policy2());
  config.auto_restart = true;
  config.lease_ttl = 25.0;
  return config;
}

TEST(Failover, HostDeathTriggersRelaunchFromCheckpoint) {
  // Registry must not be on the failing host.
  ClusterConfig config = failover_cluster();
  config.registry_host = "ws1";
  ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  FailoverApp app;
  runtime.launch_app("ws2", app.make(), "job",
                     hpcm::ApplicationSchema{"job"});
  runtime.engine().schedule_at(35.0, [&] {
    EXPECT_EQ(runtime.fail_host("ws2"), 1);
  });
  runtime.run_until(500.0);

  EXPECT_TRUE(app.finished);
  EXPECT_NE(app.finished_on, "ws2");
  EXPECT_TRUE(app.restarted_from_checkpoint);
  // Checkpointed at i=10,20,30; died at ~35; only ~5 steps redone.
  EXPECT_LE(app.executed, 70);
  EXPECT_GE(app.executed, 60);
  // The registry recorded a restart decision.
  bool saw_restart_decision = false;
  for (const auto& d : runtime.scheduler().decisions()) {
    saw_restart_decision = saw_restart_decision || d.restart;
  }
  EXPECT_TRUE(saw_restart_decision);
  EXPECT_EQ(runtime.scheduler().host_state("ws2"),
            rules::SystemState::kUnavailable);
}

TEST(Failover, WithoutCheckpointsRestartLosesWork) {
  ClusterConfig config = failover_cluster();
  ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  FailoverApp app;
  app.checkpoint_every = 0;  // never checkpoints
  runtime.launch_app("ws2", app.make(), "job",
                     hpcm::ApplicationSchema{"job"});
  runtime.engine().schedule_at(35.0, [&] { runtime.fail_host("ws2"); });
  runtime.run_until(500.0);

  EXPECT_TRUE(app.finished);
  EXPECT_FALSE(app.restarted_from_checkpoint);
  // All ~35 pre-crash steps redone from scratch.
  EXPECT_GE(app.executed, 90);
}

TEST(Failover, NoAutoRestartLeavesProcessDead) {
  ClusterConfig config = failover_cluster();
  config.auto_restart = false;
  ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();

  FailoverApp app;
  runtime.launch_app("ws2", app.make(), "job",
                     hpcm::ApplicationSchema{"job"});
  runtime.engine().schedule_at(35.0, [&] { runtime.fail_host("ws2"); });
  runtime.run_until(500.0);
  EXPECT_FALSE(app.finished);
  EXPECT_EQ(runtime.scheduler().host_state("ws2"),
            rules::SystemState::kUnavailable);
}

TEST(Failover, FailedHostNeverChosenAsDestination) {
  ClusterConfig config = failover_cluster();
  ReschedulerRuntime runtime{config};
  runtime.start_rescheduler();
  runtime.run_until(40.0);
  runtime.fail_host("ws3");
  runtime.run_until(100.0);
  // Every placement query avoids ws3 now.
  for (int i = 0; i < 3; ++i) {
    const auto destination = runtime.scheduler().choose_destination("ws1", "");
    ASSERT_TRUE(destination.has_value());
    EXPECT_NE(*destination, "ws3");
  }
}

}  // namespace
}  // namespace ars::core
