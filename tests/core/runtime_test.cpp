// End-to-end tests of the full autonomic loop: load appears -> monitor
// detects sustained overload -> registry decides -> commander signals ->
// HPCM migrates -> application finishes elsewhere, faster.

#include "ars/core/runtime.hpp"

#include <gtest/gtest.h>

#include "ars/apps/test_tree.hpp"
#include "ars/host/hog.hpp"

namespace ars::core {
namespace {

TEST(ClusterConfigTest, MakeClusterDefaults) {
  const ClusterConfig config = make_cluster(5, rules::paper_policy2());
  EXPECT_EQ(config.hosts.size(), 5U);
  EXPECT_EQ(config.hosts[0].name, "ws1");
  EXPECT_EQ(config.hosts[4].name, "ws5");
  EXPECT_DOUBLE_EQ(config.ambient_runnable, 0.26);
}

TEST(RuntimeTest, ConstructionWiresEverything) {
  ReschedulerRuntime runtime{make_cluster(3, rules::paper_policy2())};
  EXPECT_EQ(runtime.host_names().size(), 3U);
  EXPECT_NO_THROW((void)runtime.host("ws2"));
  EXPECT_THROW((void)runtime.host("ws9"), std::out_of_range);
  EXPECT_FALSE(runtime.rescheduler_running());
}

TEST(RuntimeTest, EmptyClusterRejected) {
  ClusterConfig config;
  EXPECT_THROW(ReschedulerRuntime{config}, std::invalid_argument);
}

TEST(RuntimeTest, MonitorsRegisterWithRegistry) {
  ReschedulerRuntime runtime{make_cluster(4, rules::paper_policy2())};
  runtime.start_rescheduler();
  runtime.run_until(30.0);
  EXPECT_EQ(runtime.scheduler().hosts().size(), 4U);
  for (const auto& name : runtime.host_names()) {
    const auto state = runtime.scheduler().host_state(name);
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, rules::SystemState::kFree);
  }
}

TEST(RuntimeTest, TraceRecorderSamplesAllHosts) {
  ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy2())};
  runtime.trace().start(10.0);
  runtime.run_until(55.0);
  EXPECT_EQ(runtime.trace().series("ws1").size(), 5U);
  EXPECT_EQ(runtime.trace().series("ws2").size(), 5U);
  // Ambient runnable shows up in the sampled load averages.
  EXPECT_NEAR(runtime.trace().series("ws1").back().load1, 0.26, 0.05);
}

TEST(RuntimeTest, AppRunsWithoutReschedulerUndisturbed) {
  ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy2())};
  apps::TestTree::Params params;
  params.levels = 12;  // small: ~3 s of work
  apps::TestTree::Result result;
  runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                     "test_tree", apps::TestTree::schema(params));
  runtime.run_until(100.0);
  EXPECT_TRUE(result.finished);
  EXPECT_DOUBLE_EQ(result.sum, apps::TestTree::expected_sum(params));
  EXPECT_TRUE(result.sorted);
  EXPECT_EQ(result.finished_on, "ws1");
  EXPECT_EQ(result.migrations, 0);
}

TEST(RuntimeTest, AutonomicMigrationEndToEnd) {
  // The §5.2 scenario: app starts, a heavy additional task arrives, the
  // rescheduler detects the overload and migrates the app automatically.
  ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy2())};
  runtime.start_rescheduler();

  apps::TestTree::Params params;
  params.levels = 16;  // ~49 s of solo work
  apps::TestTree::Result result;
  runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                     "test_tree", apps::TestTree::schema(params));

  host::CpuHog hog{runtime.host("ws1"),
                   {.threads = 3, .ambient_process_delta = 0}};
  runtime.engine().schedule_at(20.0, [&] { hog.start(); });

  runtime.run_until(1000.0);
  EXPECT_TRUE(result.finished);
  EXPECT_DOUBLE_EQ(result.sum, apps::TestTree::expected_sum(params));
  EXPECT_EQ(result.finished_on, "ws2");
  EXPECT_EQ(result.migrations, 1);
  ASSERT_EQ(runtime.middleware().history().size(), 1U);
  const hpcm::MigrationTimeline& t = runtime.middleware().history()[0];
  EXPECT_TRUE(t.succeeded);
  EXPECT_EQ(t.source, "ws1");
  EXPECT_EQ(t.destination, "ws2");
  // Detection respects the warm-up: the load lands at t=20, the load
  // average must climb past the trigger, and 60 s of sustained overload
  // must elapse before the consult.
  EXPECT_GE(t.requested_at, 80.0);
  ASSERT_FALSE(runtime.scheduler().decisions().empty());
  EXPECT_EQ(runtime.scheduler().decisions()[0].destination, "ws2");
}

TEST(RuntimeTest, NoMigrationUnderPolicy1) {
  ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy1())};
  runtime.start_rescheduler();
  apps::TestTree::Params params;
  params.levels = 16;
  apps::TestTree::Result result;
  runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                     "test_tree", apps::TestTree::schema(params));
  host::CpuHog hog{runtime.host("ws1"), {.threads = 3}};
  runtime.engine().schedule_at(20.0, [&] { hog.start(); });
  runtime.run_until(1000.0);
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.finished_on, "ws1");
  EXPECT_EQ(result.migrations, 0);
  EXPECT_TRUE(runtime.middleware().history().empty());
}

TEST(RuntimeTest, MigrationSpeedsUpLoadedRun) {
  apps::TestTree::Params params;
  params.levels = 16;

  const auto run_with = [&](rules::MigrationPolicy policy) {
    ReschedulerRuntime runtime{make_cluster(2, std::move(policy))};
    runtime.start_rescheduler();
    apps::TestTree::Result result;
    runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                       "test_tree", apps::TestTree::schema(params));
    host::CpuHog hog{runtime.host("ws1"), {.threads = 3}};
    runtime.engine().schedule_at(10.0, [&] { hog.start(); });
    runtime.run_until(2000.0);
    EXPECT_TRUE(result.finished);
    return result.finished_at;
  };

  const double stay_time = run_with(rules::paper_policy1());
  const double migrate_time = run_with(rules::paper_policy2());
  EXPECT_LT(migrate_time, stay_time * 0.8);
}

TEST(RuntimeTest, CommanderStatsCountCommands) {
  ReschedulerRuntime runtime{make_cluster(2, rules::paper_policy2())};
  runtime.start_rescheduler();
  apps::TestTree::Params params;
  params.levels = 16;
  apps::TestTree::Result result;
  runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                     "test_tree", apps::TestTree::schema(params));
  host::CpuHog hog{runtime.host("ws1"), {.threads = 3}};
  runtime.engine().schedule_at(10.0, [&] { hog.start(); });
  runtime.run_until(1000.0);
  EXPECT_GE(runtime.commander_on("ws1").commands_received(), 1);
  EXPECT_EQ(runtime.commander_on("ws1").commands_failed(), 0);
}

}  // namespace
}  // namespace ars::core
