// ShardedCluster determinism and cross-shard behavior (ISSUE 7).
//
// The three determinism contracts the sharded core promises:
//   (a) shards=1 runs inline (no threads, no epochs) and repeats
//       byte-identically — the legacy single-engine composition;
//   (b) a fixed shard count repeats byte-identically across runs, in both
//       the hierarchical and the flat (cross-shard-heavy) registry shapes;
//   (c) chaos (seeded message loss, crash windows) replays byte-identically
//       under N shards for the same seed and diverges for a different one.
//
// These tests also double as the obs-confinement regression: every N-shard
// run writes per-shard tracers/metrics from worker threads and folds them
// with merged_jsonl()/merge_from(), so the sharding-labelled TSan CI job
// race-checks exactly this merge.

#include "ars/core/sharded_cluster.hpp"

#include <gtest/gtest.h>

namespace ars {
namespace {

core::ShardedClusterOptions small_options() {
  core::ShardedClusterOptions options;
  options.hosts = 16;
  options.duration = 100.0;  // past the policy warmup: consults happen
  options.overloaded_fraction = 0.10;
  options.busy_fraction = 0.25;
  return options;
}

core::ShardedClusterReport run_once(const core::ShardedClusterOptions& o) {
  core::ShardedCluster cluster(o);
  return cluster.run();
}

void expect_identical(const core::ShardedClusterReport& a,
                      const core::ShardedClusterReport& b) {
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.merged_trace, b.merged_trace);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.shard_events, b.shard_events);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.cross_messages, b.cross_messages);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.consults, b.consults);
  EXPECT_EQ(a.registered_hosts, b.registered_hosts);
}

TEST(ShardedCluster, SingleShardRunsInlineAndRepeatsByteIdentically) {
  core::ShardedClusterOptions options = small_options();
  options.shards = 1;
  options.hierarchical = false;

  core::ShardedCluster cluster(options);
  const core::ShardedClusterReport a = cluster.run();
  EXPECT_FALSE(cluster.group().threaded());  // contract (a): inline path
  EXPECT_EQ(a.epochs, 0u);
  EXPECT_EQ(a.cross_messages, 0u);
  EXPECT_EQ(a.registered_hosts, options.hosts);
  EXPECT_GT(a.consults, 0);
  EXPECT_GT(a.trace_events, 0u);

  expect_identical(a, run_once(options));
}

TEST(ShardedCluster, HierarchicalFourShardsRepeatByteIdentically) {
  core::ShardedClusterOptions options = small_options();
  options.shards = 4;
  options.hosts = 32;
  options.hierarchical = true;

  core::ShardedCluster cluster(options);
  const core::ShardedClusterReport a = cluster.run();
  EXPECT_GT(a.epochs, 0u);
  // Heartbeats stay shard-local; the children's periodic health reports to
  // the root are the only fabric traffic.
  EXPECT_GT(a.cross_messages, 0u);
  EXPECT_EQ(a.registered_hosts, options.hosts);
  EXPECT_GT(a.consults, 0);
  EXPECT_EQ(a.shard_events.size(), 4u);

  expect_identical(a, run_once(options));
}

TEST(ShardedCluster, FlatModeHeartbeatsCrossTheFabric) {
  core::ShardedClusterOptions options = small_options();
  options.shards = 4;
  options.duration = 50.0;
  options.hierarchical = false;

  core::ShardedCluster cluster(options);
  const core::ShardedClusterReport a = cluster.run();
  // Three of the four shards reach the root registry through the router.
  EXPECT_GT(a.cross_messages, 0u);
  EXPECT_EQ(a.registered_hosts, options.hosts);
  EXPECT_EQ(&cluster.shard_registry(2), &cluster.root_registry());

  expect_identical(a, run_once(options));
}

TEST(ShardedCluster, ChaosReplayIsSeedStableUnderShards) {
  core::ShardedClusterOptions options = small_options();
  options.shards = 4;
  options.duration = 60.0;
  options.hierarchical = false;  // most datagrams face the loss policy
  options.message_loss = 0.25;
  options.loss_from = 5.0;
  options.loss_until = 40.0;
  options.seed = 7;

  const core::ShardedClusterReport a = run_once(options);
  EXPECT_GT(a.dropped, 0u);
  expect_identical(a, run_once(options));  // contract (c): same seed

  core::ShardedClusterOptions reseeded = options;
  reseeded.seed = 8;
  const core::ShardedClusterReport c = run_once(reseeded);
  EXPECT_NE(a.merged_trace, c.merged_trace);
}

TEST(ShardedCluster, CrashWindowSilencesMonitorsDeterministically) {
  core::ShardedClusterOptions options = small_options();
  options.shards = 2;
  options.hosts = 8;
  options.duration = 80.0;
  options.crash_hosts = 2;  // the first two hosts of each shard
  options.crash_at = 20.0;
  options.crash_until = 45.0;

  const core::ShardedClusterReport a = run_once(options);
  expect_identical(a, run_once(options));

  core::ShardedClusterOptions healthy = options;
  healthy.crash_hosts = 0;
  const core::ShardedClusterReport c = run_once(healthy);
  EXPECT_NE(a.merged_trace, c.merged_trace);
}

TEST(ShardedClusterPlan, ParsesOverridesAndIgnoresUnknownKeys) {
  const std::string text = R"({
    "name": "huge", "hosts": 1000, "shards": 8, "duration": 30.5,
    "cross_latency": 0.01, "hierarchical": false, "delta_heartbeats": false,
    "seed": 42, "busy_fraction": 0.2, "overloaded_fraction": 0.1,
    "message_loss": 0.05, "loss_from": 1.0, "loss_until": 2.0,
    "crash_hosts": 3, "crash_at": 4.0, "crash_until": 5.0,
    "tracing": false, "trace_capacity": 64,
    "generator": "scripts/gen_cluster_plan.py"
  })";
  const auto loaded = core::load_cluster_plan(text);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().to_string();
  const core::ShardedClusterOptions& o = loaded.value();
  EXPECT_EQ(o.name, "huge");
  EXPECT_EQ(o.hosts, 1000);
  EXPECT_EQ(o.shards, 8);
  EXPECT_DOUBLE_EQ(o.duration, 30.5);
  EXPECT_DOUBLE_EQ(o.cross_latency, 0.01);
  EXPECT_FALSE(o.hierarchical);
  EXPECT_FALSE(o.delta_heartbeats);
  EXPECT_EQ(o.seed, 42u);
  EXPECT_DOUBLE_EQ(o.message_loss, 0.05);
  EXPECT_EQ(o.crash_hosts, 3);
  EXPECT_FALSE(o.tracing);
  EXPECT_EQ(o.trace_capacity, 64u);
}

TEST(ShardedClusterPlan, RejectsMalformedPlans) {
  EXPECT_FALSE(core::load_cluster_plan("not json").has_value());
  EXPECT_FALSE(core::load_cluster_plan("[1,2]").has_value());
  EXPECT_FALSE(core::load_cluster_plan(R"({"shards": 0})").has_value());
  EXPECT_FALSE(core::load_cluster_plan(R"({"hosts": 0})").has_value());
}

TEST(ShardedClusterPlan, DefaultsSurviveAnEmptyPlan) {
  const auto loaded = core::load_cluster_plan("{}");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded.value().shards, 1);
  EXPECT_EQ(loaded.value().hosts, 64);
  EXPECT_TRUE(loaded.value().hierarchical);
}

}  // namespace
}  // namespace ars
