#include "ars/commander/commander.hpp"

#include <gtest/gtest.h>

#include "ars/xmlproto/messages.hpp"

namespace ars::commander {
namespace {

using sim::Engine;
using sim::Task;

class CommanderTest : public ::testing::Test {
 protected:
  CommanderTest() : net_(engine_), mpi_(engine_, net_), hpcm_(mpi_) {
    for (const char* name : {"ws1", "ws2", "hub"}) {
      host::HostSpec spec;
      spec.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, spec));
      net_.attach(*hosts_.back());
    }
    registry_inbox_ = &net_.bind("hub", 5000);
    Commander::Config config;
    config.registry_host = "hub";
    config.registry_port = 5000;
    commander_ = std::make_unique<Commander>(*hosts_[0], net_, hpcm_, config);
    commander_->start();
  }

  void post(const xmlproto::ProtocolMessage& message) {
    net::Message wire;
    wire.src_host = "hub";
    wire.dst_host = "ws1";
    wire.dst_port = commander_->port();
    wire.payload = xmlproto::encode(message);
    net_.post(std::move(wire));
  }

  std::optional<xmlproto::AckMsg> next_ack() {
    while (auto wire = registry_inbox_->inbox.try_recv()) {
      auto message = xmlproto::decode(wire->payload);
      if (message.has_value()) {
        if (const auto* ack = std::get_if<xmlproto::AckMsg>(&*message)) {
          return *ack;
        }
      }
    }
    return std::nullopt;
  }

  Engine engine_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  mpi::MpiSystem mpi_;
  hpcm::MigrationEngine hpcm_;
  net::Endpoint* registry_inbox_ = nullptr;
  std::unique_ptr<Commander> commander_;
};

/// A trivially migratable app for command targets.
hpcm::MigrationEngine::MigratableApp looper(std::string* finished_on) {
  return [finished_on](mpi::Proc& proc,
                       hpcm::MigrationContext& ctx) -> Task<> {
    std::int64_t i = ctx.restored() ? *ctx.state().get_int("i") : 0;
    ctx.on_save([&ctx, &i] { ctx.state().set_int("i", i); });
    for (; i < 15; ++i) {
      co_await ctx.poll_point();
      co_await proc.compute(1.0);
    }
    *finished_on = proc.host().name();
  };
}

TEST_F(CommanderTest, MigrateCommandSignalsTheProcess) {
  std::string finished_on;
  const auto id = hpcm_.launch("ws1", looper(&finished_on), "app",
                               hpcm::ApplicationSchema{"app"});
  engine_.run_until(2.0);
  const mpi::Proc* proc = mpi_.find(id);
  ASSERT_NE(proc, nullptr);

  xmlproto::MigrateCmd command;
  command.pid = proc->pid();
  command.process_name = "app.0";
  command.dest_host = "ws2";
  post(command);
  engine_.run_until(100.0);

  EXPECT_EQ(finished_on, "ws2");
  EXPECT_EQ(commander_->commands_received(), 1);
  EXPECT_EQ(commander_->commands_failed(), 0);
  const auto ack = next_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->ok);
  EXPECT_EQ(ack->of, "migrate");
}

TEST_F(CommanderTest, UnknownPidIsAckedNegative) {
  xmlproto::MigrateCmd command;
  command.pid = 31337;
  command.dest_host = "ws2";
  post(command);
  engine_.run_until(5.0);
  EXPECT_EQ(commander_->commands_received(), 1);
  EXPECT_EQ(commander_->commands_failed(), 1);
  const auto ack = next_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_FALSE(ack->ok);
}

TEST_F(CommanderTest, RelaunchCommandRevivesCrashedProcess) {
  std::string finished_on;
  const auto id = hpcm_.launch("ws2", looper(&finished_on), "app",
                               hpcm::ApplicationSchema{"app"});
  engine_.run_until(3.0);
  ASSERT_TRUE(hpcm_.crash(id));

  // Command the ws1 commander to relaunch it locally.
  xmlproto::RelaunchCmd command;
  command.process_name = "app.0";
  command.lost_host = "ws2";
  post(command);
  engine_.run_until(100.0);
  EXPECT_EQ(finished_on, "ws1");
}

TEST_F(CommanderTest, GarbageAndWrongTypesAreIgnored) {
  net::Message wire;
  wire.src_host = "hub";
  wire.dst_host = "ws1";
  wire.dst_port = commander_->port();
  wire.payload = "<<<garbage>>>";
  net_.post(wire);
  // Wrong message type for a commander.
  xmlproto::ConsultMsg consult;
  consult.host = "ws1";
  post(consult);
  engine_.run_until(5.0);  // no crash
  EXPECT_EQ(commander_->commands_received(), 0);
}

TEST_F(CommanderTest, RetryRecoversWhenTargetAppearsLate) {
  // The command names a pid that does not exist yet — the first delivery
  // attempt fails, and the target process launches before the backoff
  // expires, so the bounded retry succeeds.
  std::string finished_a;
  const auto id = hpcm_.launch("ws1", looper(&finished_a), "early",
                               hpcm::ApplicationSchema{"early"});
  engine_.run_until(2.0);
  const mpi::Proc* proc = mpi_.find(id);
  ASSERT_NE(proc, nullptr);

  xmlproto::MigrateCmd command;
  command.pid = proc->pid() + 1;  // the NEXT pid ws1 will hand out
  command.process_name = "late.0";
  command.dest_host = "ws2";
  post(command);
  engine_.run_until(2.1);  // first attempt has failed; retry still pending

  std::string finished_b;
  hpcm_.launch("ws1", looper(&finished_b), "late",
               hpcm::ApplicationSchema{"late"});
  engine_.run_until(100.0);

  EXPECT_EQ(finished_b, "ws2");
  EXPECT_GE(commander_->commands_retried(), 1);
  EXPECT_EQ(commander_->commands_failed(), 0);
  const auto ack = next_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->ok);
}

TEST_F(CommanderTest, RetriesAreBoundedAndFailureIsCountedOnce) {
  xmlproto::MigrateCmd command;
  command.pid = 31337;
  command.dest_host = "ws2";
  post(command);
  engine_.run_until(50.0);
  // Default config: 2 retries (0.25 s backoff, doubling), then give up.
  EXPECT_EQ(commander_->commands_retried(), 2);
  EXPECT_EQ(commander_->commands_failed(), 1);
  const auto ack = next_ack();
  ASSERT_TRUE(ack.has_value());
  EXPECT_FALSE(ack->ok);
}

TEST_F(CommanderTest, StopUnbindsThePort) {
  commander_->stop();
  xmlproto::MigrateCmd command;
  command.pid = 1;
  command.dest_host = "ws2";
  post(command);
  engine_.run_until(5.0);  // dropped at the unbound port, no crash
  EXPECT_EQ(commander_->commands_received(), 0);
}

}  // namespace
}  // namespace ars::commander
