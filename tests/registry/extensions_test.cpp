// Tests for the scheduling extensions: evacuation (fault tolerance),
// destination strategies, and the data-locality selector rule.

#include <gtest/gtest.h>

#include "ars/registry/registry.hpp"

namespace ars::registry {
namespace {

using rules::SystemState;
using sim::Engine;

class ExtensionsTest : public ::testing::Test {
 protected:
  void build(Registry::Config config) {
    for (const char* name : {"hub", "ws1", "ws2", "ws3"}) {
      host::HostSpec s;
      s.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, s));
      net_->attach(*hosts_.back());
    }
    config.policy = rules::paper_policy2();
    registry_ = std::make_unique<Registry>(*hosts_[0], *net_, config);
    registry_->start();
  }

  void post(const std::string& from, const xmlproto::ProtocolMessage& m) {
    net::Message wire;
    wire.src_host = from;
    wire.dst_host = "hub";
    wire.dst_port = registry_->port();
    wire.payload = xmlproto::encode(m);
    net_->post(std::move(wire));
  }

  void register_host(const std::string& name, double load1 = 0.2) {
    xmlproto::RegisterMsg reg;
    reg.info.host = name;
    reg.info.cpu_speed = 1.0;
    reg.commander_port = 6000;
    post(name, reg);
    xmlproto::UpdateMsg update;
    update.status.host = name;
    update.status.state = "free";
    update.status.load1 = load1;
    update.status.processes = 60;
    post(name, update);
  }

  void register_process(const std::string& host, int pid,
                        const std::string& name,
                        const std::string& schema = "") {
    xmlproto::ProcessRegisterMsg msg;
    msg.host = host;
    msg.pid = pid;
    msg.name = name;
    msg.migration_enabled = true;
    msg.schema_name = schema;
    post(host, msg);
  }

  Engine engine_;
  std::unique_ptr<net::Network> net_ = std::make_unique<net::Network>(engine_);
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::unique_ptr<Registry> registry_;
};

TEST_F(ExtensionsTest, EvacuationMigratesEveryProcess) {
  build({});
  net::Endpoint& commander = net_->bind("ws1", 6000);
  register_host("ws1");
  register_host("ws2");
  register_process("ws1", 100, "app_a");
  register_process("ws1", 101, "app_b");
  engine_.run_until(1.0);

  registry_->request_evacuation("ws1", "planned shutdown");
  engine_.run_until(10.0);

  std::set<int> commanded_pids;
  while (auto wire = commander.inbox.try_recv()) {
    const auto message = xmlproto::decode(wire->payload);
    ASSERT_TRUE(message.has_value());
    const auto* command = std::get_if<xmlproto::MigrateCmd>(&*message);
    ASSERT_NE(command, nullptr);
    EXPECT_EQ(command->dest_host, "ws2");
    commanded_pids.insert(command->pid);
  }
  EXPECT_EQ(commanded_pids, (std::set<int>{100, 101}));
  EXPECT_EQ(registry_->evacuations_commanded(), 2);
}

TEST_F(ExtensionsTest, EvacuatedHostIsNeverADestinationAgain) {
  build({});
  register_host("ws1");
  register_host("ws2");
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->choose_destination("ws3", ""), "ws1");
  registry_->request_evacuation("ws1", "intrusion detected");
  engine_.run_until(2.0);
  EXPECT_EQ(registry_->choose_destination("ws3", ""), "ws2");
  // Even after fresh, healthy heartbeats.
  register_host("ws1");
  engine_.run_until(3.0);
  EXPECT_EQ(registry_->choose_destination("ws3", ""), "ws2");
}

TEST_F(ExtensionsTest, EvacuationViaWireMessage) {
  build({});
  net::Endpoint& commander = net_->bind("ws1", 6000);
  register_host("ws1");
  register_host("ws2");
  register_process("ws1", 100, "app");
  engine_.run_until(1.0);
  xmlproto::EvacuateMsg evac;
  evac.host = "ws1";
  evac.reason = "maintenance";
  post("hub", evac);
  engine_.run_until(5.0);
  EXPECT_TRUE(commander.inbox.try_recv().has_value());
}

TEST_F(ExtensionsTest, EvacuationWithNoDestinationLeavesProcess) {
  build({});
  net::Endpoint& commander = net_->bind("ws1", 6000);
  register_host("ws1");  // the only host
  register_process("ws1", 100, "app");
  engine_.run_until(1.0);
  registry_->request_evacuation("ws1", "shutdown");
  engine_.run_until(5.0);
  EXPECT_FALSE(commander.inbox.try_recv().has_value());
  EXPECT_EQ(registry_->evacuations_commanded(), 0);
  // The decision log still records the attempt.
  ASSERT_FALSE(registry_->decisions().empty());
  EXPECT_TRUE(registry_->decisions()[0].destination.empty());
}

TEST_F(ExtensionsTest, FirstFitIgnoresLoadDifferences) {
  Registry::Config config;
  config.strategy = DestinationStrategy::kFirstFit;
  build(config);
  register_host("ws1", 0.9);  // eligible but loaded (still < 1)
  register_host("ws2", 0.1);  // nearly idle
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->choose_destination("src", ""), "ws1");
}

TEST_F(ExtensionsTest, BestFitPicksLeastLoaded) {
  Registry::Config config;
  config.strategy = DestinationStrategy::kBestFit;
  build(config);
  register_host("ws1", 0.9);
  register_host("ws2", 0.1);
  register_host("ws3", 0.5);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->choose_destination("src", ""), "ws2");
}

TEST_F(ExtensionsTest, RandomFitIsDeterministicPerSeed) {
  Registry::Config config;
  config.strategy = DestinationStrategy::kRandomFit;
  config.random_seed = 7;
  build(config);
  register_host("ws1");
  register_host("ws2");
  register_host("ws3");
  engine_.run_until(1.0);
  // All picks must be eligible hosts; the sequence is deterministic.
  std::vector<std::string> picks;
  for (int i = 0; i < 8; ++i) {
    const auto pick = registry_->choose_destination("src", "");
    ASSERT_TRUE(pick.has_value());
    EXPECT_TRUE(*pick == "ws1" || *pick == "ws2" || *pick == "ws3");
    picks.push_back(*pick);
  }
  // With 8 draws over 3 hosts, at least two distinct destinations show up.
  EXPECT_GT(std::set<std::string>(picks.begin(), picks.end()).size(), 1U);
}

TEST_F(ExtensionsTest, HighLocalityProcessIsNotSelected) {
  build({});
  hpcm::ApplicationSchema pinned{"pinned"};
  pinned.set_data_locality(0.9);
  pinned.set_est_exec_time(10000.0);  // would otherwise win the selector
  hpcm::ApplicationSchema mobile{"mobile"};
  mobile.set_data_locality(0.1);
  mobile.set_est_exec_time(100.0);
  registry_->register_schema(pinned);
  registry_->register_schema(mobile);
  register_process("ws1", 100, "pinned_app", "pinned");
  register_process("ws1", 101, "mobile_app", "mobile");
  engine_.run_until(1.0);
  const ProcessEntry* chosen = registry_->select_process("ws1");
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->name, "mobile_app");
}

TEST_F(ExtensionsTest, AllPinnedMeansNoMigration) {
  build({});
  hpcm::ApplicationSchema pinned{"pinned"};
  pinned.set_data_locality(1.0);
  registry_->register_schema(pinned);
  register_process("ws1", 100, "pinned_app", "pinned");
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->select_process("ws1"), nullptr);
}

}  // namespace
}  // namespace ars::registry
