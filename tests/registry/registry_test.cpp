#include "ars/registry/registry.hpp"

#include <gtest/gtest.h>

namespace ars::registry {
namespace {

using rules::SystemState;
using sim::Engine;

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : net_(engine_) {
    for (const char* name : {"hub", "ws1", "ws2", "ws3", "ws4"}) {
      host::HostSpec s;
      s.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, s));
      net_.attach(*hosts_.back());
    }
    Registry::Config config;
    config.policy = rules::paper_policy2();
    config.lease_ttl = 25.0;
    registry_ = std::make_unique<Registry>(*hosts_[0], net_, config);
    registry_->start();
  }

  /// Post a message into the registry as if from `from`.
  void post(const std::string& from, const xmlproto::ProtocolMessage& m) {
    net::Message wire;
    wire.src_host = from;
    wire.dst_host = "hub";
    wire.dst_port = registry_->port();
    wire.payload = xmlproto::encode(m);
    net_.post(std::move(wire));
  }

  void register_host(const std::string& name, int commander_port = 6000) {
    xmlproto::RegisterMsg reg;
    reg.info.host = name;
    reg.info.memory_bytes = 128ULL << 20;
    reg.info.disk_bytes = 20ULL << 30;
    reg.info.cpu_speed = 1.0;
    reg.monitor_port = 5999;
    reg.commander_port = commander_port;
    post(name, reg);
  }

  void update_host(const std::string& name, SystemState state,
                   double load1 = 0.2, int processes = 60,
                   double net_flow = 0.0) {
    xmlproto::UpdateMsg update;
    update.status.host = name;
    update.status.state = std::string(rules::to_string(state));
    update.status.load1 = load1;
    update.status.processes = processes;
    update.status.net_in_bps = net_flow;
    update.status.net_out_bps = net_flow;
    update.status.timestamp = engine_.now();
    post(name, update);
  }

  void register_process(const std::string& host, int pid,
                        const std::string& name, double start,
                        const std::string& schema = "") {
    xmlproto::ProcessRegisterMsg msg;
    msg.host = host;
    msg.pid = pid;
    msg.name = name;
    msg.start_time = start;
    msg.migration_enabled = true;
    msg.schema_name = schema;
    post(host, msg);
  }

  Engine engine_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::unique_ptr<Registry> registry_;
};

TEST_F(RegistryTest, RegistrationPopulatesTable) {
  register_host("ws1");
  register_host("ws2");
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->hosts().size(), 2U);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kFree);
  EXPECT_FALSE(registry_->host_state("ws9").has_value());
}

TEST_F(RegistryTest, UpdatesChangeState) {
  register_host("ws1");
  update_host("ws1", SystemState::kOverloaded, 2.8, 160);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kOverloaded);
}

TEST_F(RegistryTest, SoftStateLeaseExpires) {
  register_host("ws1");
  update_host("ws1", SystemState::kFree);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kFree);
  // No more heartbeats: the 25 s lease lapses.
  engine_.run_until(60.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kUnavailable);
  // A fresh heartbeat revives it.
  update_host("ws1", SystemState::kFree);
  engine_.run_until(61.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kFree);
}

TEST_F(RegistryTest, FirstFitPrefersEarlierRegistration) {
  register_host("ws1");
  register_host("ws2");
  register_host("ws3");
  for (const char* h : {"ws1", "ws2", "ws3"}) {
    update_host(h, SystemState::kFree);
  }
  engine_.run_until(1.0);
  // First fit from ws3: ws1 registered first.
  EXPECT_EQ(registry_->first_fit_destination("ws3", ""), "ws1");
  // Source host itself is excluded.
  EXPECT_EQ(registry_->first_fit_destination("ws1", ""), "ws2");
}

TEST_F(RegistryTest, FirstFitSkipsBusyAndUnavailable) {
  register_host("ws1");
  register_host("ws2");
  register_host("ws3");
  update_host("ws1", SystemState::kBusy, 1.5);
  update_host("ws2", SystemState::kOverloaded, 3.0);
  update_host("ws3", SystemState::kFree);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->first_fit_destination("ws4", ""), "ws3");
}

TEST_F(RegistryTest, FirstFitAppliesPolicyDestinationConditions) {
  register_host("ws1");
  register_host("ws2");
  // ws1 says "free" but its heartbeat load is 1.2 (>= policy threshold 1).
  update_host("ws1", SystemState::kFree, 1.2);
  update_host("ws2", SystemState::kFree, 0.3);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->first_fit_destination("src", ""), "ws2");
}

TEST_F(RegistryTest, FirstFitChecksSchemaRequirements) {
  hpcm::ApplicationSchema schema{"bigapp"};
  hpcm::ResourceRequirements req;
  req.min_memory_bytes = 256ULL << 20;  // more than ws1's 128 MB
  schema.set_requirements(req);
  registry_->register_schema(schema);

  register_host("ws1");
  register_host("ws2");
  engine_.run_until(0.5);
  // Make ws2 big enough.
  xmlproto::RegisterMsg reg;
  reg.info.host = "ws2";
  reg.info.memory_bytes = 512ULL << 20;
  reg.info.cpu_speed = 1.0;
  post("ws2", reg);
  update_host("ws1", SystemState::kFree);
  update_host("ws2", SystemState::kFree);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->first_fit_destination("src", "bigapp"), "ws2");
  EXPECT_EQ(registry_->first_fit_destination("src", ""), "ws1");
}

TEST_F(RegistryTest, NoDestinationWhenAllLoaded) {
  register_host("ws1");
  update_host("ws1", SystemState::kBusy, 1.5);
  engine_.run_until(1.0);
  EXPECT_FALSE(registry_->first_fit_destination("src", "").has_value());
}

TEST_F(RegistryTest, SelectorPicksLatestCompletingProcess) {
  hpcm::ApplicationSchema long_schema{"long"};
  long_schema.set_est_exec_time(1000.0);
  hpcm::ApplicationSchema short_schema{"short"};
  short_schema.set_est_exec_time(100.0);
  registry_->register_schema(long_schema);
  registry_->register_schema(short_schema);
  register_process("ws1", 100, "early_long", 0.0, "long");     // ends 1000
  register_process("ws1", 101, "late_short", 50.0, "short");   // ends 150
  register_process("ws2", 102, "other_host", 0.0, "long");
  engine_.run_until(1.0);
  const ProcessEntry* chosen = registry_->select_process("ws1");
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->name, "early_long");
  EXPECT_EQ(registry_->select_process("ws9"), nullptr);
}

TEST_F(RegistryTest, ConsultProducesMigrateCommand) {
  // Commander endpoint on ws1 to capture the command.
  net::Endpoint& commander = net_.bind("ws1", 6000);
  register_host("ws1", 6000);
  register_host("ws4", 6000);
  update_host("ws1", SystemState::kOverloaded, 2.8, 160);
  update_host("ws4", SystemState::kFree);
  register_process("ws1", 100, "test_tree", 0.0);
  engine_.run_until(1.0);

  xmlproto::ConsultMsg consult;
  consult.host = "ws1";
  consult.reason = "test";
  post("ws1", consult);
  engine_.run_until(2.0);

  auto wire = commander.inbox.try_recv();
  ASSERT_TRUE(wire.has_value());
  const auto message = xmlproto::decode(wire->payload);
  ASSERT_TRUE(message.has_value());
  const auto* command = std::get_if<xmlproto::MigrateCmd>(&*message);
  ASSERT_NE(command, nullptr);
  EXPECT_EQ(command->pid, 100);
  EXPECT_EQ(command->dest_host, "ws4");
  ASSERT_EQ(registry_->decisions().size(), 1U);
  EXPECT_EQ(registry_->decisions()[0].destination, "ws4");
  EXPECT_GE(registry_->decisions()[0].at, 0.002);  // decision latency
}

TEST_F(RegistryTest, ConsultWithoutCandidateRecordsEmptyDecision) {
  register_host("ws1", 6000);
  update_host("ws1", SystemState::kOverloaded, 3.0, 200);
  register_process("ws1", 100, "app", 0.0);
  engine_.run_until(0.5);
  xmlproto::ConsultMsg consult;
  consult.host = "ws1";
  post("ws1", consult);
  engine_.run_until(1.5);
  ASSERT_EQ(registry_->decisions().size(), 1U);
  EXPECT_TRUE(registry_->decisions()[0].destination.empty());
}

TEST_F(RegistryTest, ProcessCooldownAvoidsThrashing) {
  net::Endpoint& commander = net_.bind("ws1", 6000);
  register_host("ws1", 6000);
  register_host("ws4", 6000);
  update_host("ws1", SystemState::kOverloaded, 3.0, 200);
  update_host("ws4", SystemState::kFree);
  register_process("ws1", 100, "app", 0.0);
  engine_.run_until(0.5);
  for (int i = 0; i < 3; ++i) {
    xmlproto::ConsultMsg consult;
    consult.host = "ws1";
    post("ws1", consult);
  }
  engine_.run_until(5.0);
  int commands = 0;
  while (commander.inbox.try_recv().has_value()) {
    ++commands;
  }
  EXPECT_EQ(commands, 1);  // cooldown suppressed the repeats
}

TEST_F(RegistryTest, GarbageMessagesAreIgnored) {
  net::Message wire;
  wire.src_host = "ws1";
  wire.dst_host = "hub";
  wire.dst_port = registry_->port();
  wire.payload = "<<<not xml>>>";
  net_.post(wire);
  engine_.run_until(1.0);  // no crash
  EXPECT_TRUE(registry_->hosts().empty());
}

TEST_F(RegistryTest, HierarchicalEscalationToParent) {
  // Parent registry on ws4.
  Registry::Config parent_config;
  parent_config.policy = rules::paper_policy2();
  Registry parent{*hosts_[4], net_, parent_config};
  parent.start();

  // Child registry escalates when it has no local candidate.
  Registry::Config child_config;
  child_config.policy = rules::paper_policy2();
  child_config.parent_host = "ws4";
  child_config.parent_port = parent.port();
  Registry child{*hosts_[2], net_, child_config};
  child.start();

  // Child knows only the overloaded source; parent knows a free host.
  xmlproto::RegisterMsg reg;
  reg.info.host = "ws2";
  reg.commander_port = 6000;
  reg.info.cpu_speed = 1.0;
  net::Message to_child;
  to_child.src_host = "ws2";
  to_child.dst_host = "ws2";  // child registry host
  to_child.dst_port = child.port();
  to_child.payload = xmlproto::encode(xmlproto::ProtocolMessage{reg});
  net_.post(to_child);

  xmlproto::UpdateMsg update;
  update.status.host = "ws2";
  update.status.state = "overloaded";
  update.status.load1 = 3.0;
  net::Message update_wire;
  update_wire.src_host = "ws2";
  update_wire.dst_host = "ws2";
  update_wire.dst_port = child.port();
  update_wire.payload = xmlproto::encode(xmlproto::ProtocolMessage{update});
  net_.post(update_wire);

  // Parent-side: a free host with a commander endpoint, plus the source's
  // process registration and commander so the parent can command it.
  net::Endpoint& src_commander = net_.bind("ws2", 6000);
  xmlproto::RegisterMsg parent_src = reg;
  net::Message w1;
  w1.src_host = "ws2";
  w1.dst_host = "ws4";
  w1.dst_port = parent.port();
  w1.payload = xmlproto::encode(xmlproto::ProtocolMessage{parent_src});
  net_.post(w1);
  xmlproto::RegisterMsg free_host;
  free_host.info.host = "ws3";
  free_host.info.cpu_speed = 1.0;
  free_host.commander_port = 6000;
  net::Message w2;
  w2.src_host = "ws3";
  w2.dst_host = "ws4";
  w2.dst_port = parent.port();
  w2.payload = xmlproto::encode(xmlproto::ProtocolMessage{free_host});
  net_.post(w2);
  xmlproto::ProcessRegisterMsg proc;
  proc.host = "ws2";
  proc.pid = 100;
  proc.name = "app";
  proc.migration_enabled = true;
  // The monitor registers the process with its own (child) registry; the
  // parent learns of it through the escalated consult path, so both get it.
  for (const auto& [dst, port] :
       std::vector<std::pair<std::string, int>>{{"ws4", parent.port()},
                                                {"ws2", child.port()}}) {
    net::Message w3;
    w3.src_host = "ws2";
    w3.dst_host = dst;
    w3.dst_port = port;
    w3.payload = xmlproto::encode(xmlproto::ProtocolMessage{proc});
    net_.post(w3);
  }
  engine_.run_until(1.0);

  // Consult the child: it has no destination, so it escalates; the parent
  // finds ws3 and commands ws2's commander.
  xmlproto::ConsultMsg consult;
  consult.host = "ws2";
  consult.reason = "overloaded";
  net::Message w4;
  w4.src_host = "ws2";
  w4.dst_host = "ws2";
  w4.dst_port = child.port();
  w4.payload = xmlproto::encode(xmlproto::ProtocolMessage{consult});
  net_.post(w4);
  engine_.run_until(3.0);

  ASSERT_FALSE(child.decisions().empty());
  EXPECT_TRUE(child.decisions()[0].escalated);
  auto wire = src_commander.inbox.try_recv();
  ASSERT_TRUE(wire.has_value());
  const auto message = xmlproto::decode(wire->payload);
  ASSERT_TRUE(message.has_value());
  const auto* command = std::get_if<xmlproto::MigrateCmd>(&*message);
  ASSERT_NE(command, nullptr);
  EXPECT_EQ(command->dest_host, "ws3");
}

}  // namespace
}  // namespace ars::registry
