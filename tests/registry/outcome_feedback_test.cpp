// Registry side of the transactional-migration feedback loop (DESIGN.md
// §12): every commanded migration debits an in-flight placement; the
// commander's MigrationOutcomeMsg credits it back, marks failed
// destinations suspect with a re-admission backoff, re-plans aborts, and
// commands a checkpoint-restart for post-commit (rolled-back) losses.

#include <set>
#include <string>

#include "ars/obs/metrics.hpp"
#include "ars/registry/registry.hpp"

#include <gtest/gtest.h>

namespace ars::registry {
namespace {

using rules::SystemState;
using sim::Engine;

class OutcomeFeedbackTest : public ::testing::Test {
 protected:
  void build(Registry::Config config) {
    for (const char* name : {"hub", "ws1", "ws2", "ws3"}) {
      host::HostSpec s;
      s.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, s));
      net_.attach(*hosts_.back());
    }
    config.policy = rules::paper_policy2();
    config.metrics = &metrics_;
    registry_ = std::make_unique<Registry>(*hosts_[0], net_, config);
    registry_->start();
  }

  void post(const std::string& from, const xmlproto::ProtocolMessage& m) {
    net::Message wire;
    wire.src_host = from;
    wire.dst_host = "hub";
    wire.dst_port = registry_->port();
    wire.payload = xmlproto::encode(m);
    net_.post(std::move(wire));
  }

  void register_host(const std::string& name, const std::string& state = "free",
                     double load1 = 0.2, int processes = 60) {
    xmlproto::RegisterMsg reg;
    reg.info.host = name;
    reg.info.cpu_speed = 1.0;
    reg.commander_port = 6000;
    post(name, reg);
    heartbeat(name, state, load1, processes);
  }

  void heartbeat(const std::string& name, const std::string& state = "free",
                 double load1 = 0.2, int processes = 60) {
    xmlproto::UpdateMsg update;
    update.status.host = name;
    update.status.state = state;
    update.status.load1 = load1;
    update.status.processes = processes;
    update.status.timestamp = engine_.now();
    post(name, update);
  }

  void register_process(const std::string& host, int pid,
                        const std::string& name) {
    xmlproto::ProcessRegisterMsg msg;
    msg.host = host;
    msg.pid = pid;
    msg.name = name;
    msg.migration_enabled = true;
    post(host, msg);
  }

  /// The overloaded-ws1 + free-ws2/ws3 setup every test starts from, with
  /// one migratable process and a captured commander endpoint per host.
  void overloaded_source() {
    for (const char* h : {"ws1", "ws2", "ws3"}) {
      commanders_[h] = &net_.bind(h, 6000);
    }
    register_host("ws1", "overloaded", 2.8, 160);
    register_host("ws2");
    register_host("ws3");
    register_process("ws1", 100, "app");
    engine_.run_until(1.0);
  }

  void consult() {
    xmlproto::ConsultMsg m;
    m.host = "ws1";
    m.reason = "load1>2";
    post("ws1", m);
  }

  /// Outcome report as the source commander would send it.
  xmlproto::MigrationOutcomeMsg outcome_msg(const std::string& outcome,
                                            const std::string& reason = "",
                                            const std::string& phase = "") {
    xmlproto::MigrationOutcomeMsg m;
    m.process = "app";
    m.source = "ws1";
    m.destination = "ws2";
    m.outcome = outcome;
    m.reason = reason;
    m.phase = phase;
    return m;
  }

  /// Drain every captured commander inbox; returns decoded messages of T.
  template <typename T>
  std::vector<std::pair<std::string, T>> commands() {
    std::vector<std::pair<std::string, T>> out;
    for (auto& [host, endpoint] : commanders_) {
      while (auto wire = endpoint->inbox.try_recv()) {
        const auto message = xmlproto::decode(wire->payload);
        if (message.has_value()) {
          if (const auto* cmd = std::get_if<T>(&*message)) {
            out.emplace_back(host, *cmd);
          }
        }
      }
    }
    return out;
  }

  double counter_value(const std::string& name,
                       const obs::Labels& labels = {}) {
    const obs::Counter* c = metrics_.find_counter(name, labels);
    return c == nullptr ? 0.0 : c->value();
  }

  double gauge_value(const std::string& name) {
    const obs::Gauge* g = metrics_.find_gauge(name);
    return g == nullptr ? 0.0 : g->value();
  }

  Engine engine_;
  net::Network net_{engine_};
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::map<std::string, net::Endpoint*> commanders_;
  std::unique_ptr<Registry> registry_;
};

TEST_F(OutcomeFeedbackTest, MigrateCommandDebitsPlacement) {
  build({});
  overloaded_source();
  consult();
  engine_.run_until(2.0);
  const auto migrates = commands<xmlproto::MigrateCmd>();
  ASSERT_EQ(migrates.size(), 1U);
  EXPECT_EQ(migrates[0].first, "ws1");
  EXPECT_EQ(migrates[0].second.dest_host, "ws2");  // first fit
  EXPECT_EQ(registry_->inflight_placements(), 1U);
  EXPECT_EQ(gauge_value("registry.placements_inflight"), 1.0);
}

TEST_F(OutcomeFeedbackTest, AbortCreditsDebitSuspectsDestAndReplans) {
  build({});
  overloaded_source();
  consult();
  engine_.run_until(2.0);
  ASSERT_EQ(registry_->inflight_placements(), 1U);
  (void)commands<xmlproto::MigrateCmd>();  // drain the first command

  post("ws1", outcome_msg("aborted", "dest-failed", "init"));
  engine_.run_until(4.0);
  // The in-flight debit is credited back...
  EXPECT_EQ(counter_value("registry.placements_credited"), 1.0);
  EXPECT_EQ(counter_value("registry.migration_outcomes",
                          {{"outcome", "aborted"}}),
            1.0);
  // ...the failed destination is suspect...
  EXPECT_EQ(counter_value("registry.hosts_suspected"), 1.0);
  // ...and the immediate re-plan routed around it: a fresh MigrateCmd to
  // ws3, which holds the (single) new in-flight debit.
  const auto replanned = commands<xmlproto::MigrateCmd>();
  ASSERT_EQ(replanned.size(), 1U);
  EXPECT_EQ(replanned[0].second.dest_host, "ws3");
  EXPECT_EQ(registry_->inflight_placements(), 1U);
}

TEST_F(OutcomeFeedbackTest, SuspectDestinationReadmittedAfterBackoff) {
  Registry::Config config;
  config.suspect_backoff = 10.0;
  build(config);
  overloaded_source();
  ASSERT_EQ(registry_->choose_destination("ws1", ""), "ws2");
  // No in-flight debit needed: a stray outcome still applies the backoff.
  post("ws1", outcome_msg("aborted", "dest-failed", "eager"));
  engine_.run_until(2.0);
  EXPECT_EQ(registry_->choose_destination("ws1", ""), "ws3");
  // Past the backoff (with live leases) ws2 is first-fit eligible again.
  engine_.run_until(12.0);
  heartbeat("ws2");
  heartbeat("ws3");
  engine_.run_until(13.0);
  EXPECT_EQ(registry_->choose_destination("ws1", ""), "ws2");
}

TEST_F(OutcomeFeedbackTest, CommittedOutcomeOnlyCredits) {
  build({});
  overloaded_source();
  consult();
  engine_.run_until(2.0);
  (void)commands<xmlproto::MigrateCmd>();
  post("ws1", outcome_msg("committed"));
  engine_.run_until(4.0);
  EXPECT_EQ(registry_->inflight_placements(), 0U);
  EXPECT_EQ(counter_value("registry.placements_credited"), 1.0);
  EXPECT_EQ(gauge_value("registry.placements_inflight"), 0.0);
  EXPECT_EQ(counter_value("registry.hosts_suspected"), 0.0);
  // No re-plan, and ws2 is still a destination.
  EXPECT_TRUE(commands<xmlproto::MigrateCmd>().empty());
  EXPECT_EQ(registry_->choose_destination("ws1", ""), "ws2");
}

TEST_F(OutcomeFeedbackTest, RolledBackOutcomeCommandsCheckpointRestart) {
  build({});
  overloaded_source();
  ASSERT_EQ(registry_->process_count(), 1U);
  // Post-commit destination loss: the registry still lists the process on
  // the live source (the dead destination's monitor never reported the
  // arrival), so no lease will ever lapse for it — the restart must be
  // commanded directly.
  post("ws1", outcome_msg("rolled-back", "restore-interrupted", "restore"));
  engine_.run_until(3.0);
  EXPECT_EQ(counter_value("registry.rollback_restarts"), 1.0);
  EXPECT_EQ(registry_->process_count(), 0U);  // stale entry dropped
  const auto relaunches = commands<xmlproto::RelaunchCmd>();
  ASSERT_EQ(relaunches.size(), 1U);
  EXPECT_EQ(relaunches[0].second.process_name, "app");
  // ws2 (the failed destination) is suspect; the relaunch goes elsewhere.
  EXPECT_NE(relaunches[0].first, "ws2");
}

TEST_F(OutcomeFeedbackTest, UnconfirmedRelaunchIsRetried) {
  build({});
  overloaded_source();
  post("ws1", outcome_msg("rolled-back", "restore-interrupted", "restore"));
  engine_.run_until(3.0);
  ASSERT_EQ(commands<xmlproto::RelaunchCmd>().size(), 1U);
  // Nobody confirms the relaunch (the RelaunchCmd could have been lost on
  // the wire): past relaunch_confirm_ttl the registry re-parks and
  // retries it.
  engine_.run_until(30.0);
  EXPECT_GE(counter_value("registry.relaunches_retried"), 1.0);
  EXPECT_FALSE(commands<xmlproto::RelaunchCmd>().empty());
}

TEST_F(OutcomeFeedbackTest, ConfirmedRelaunchIsNotRetried) {
  build({});
  overloaded_source();
  post("ws1", outcome_msg("rolled-back", "restore-interrupted", "restore"));
  engine_.run_until(3.0);
  const auto relaunches = commands<xmlproto::RelaunchCmd>();
  ASSERT_EQ(relaunches.size(), 1U);
  // The destination monitor re-reports the relaunched process: confirmed,
  // never retried.
  register_process(relaunches[0].first, 2000, "app");
  engine_.run_until(40.0);
  EXPECT_EQ(counter_value("registry.relaunches_retried"), 0.0);
  EXPECT_TRUE(commands<xmlproto::RelaunchCmd>().empty());
  EXPECT_EQ(registry_->process_count(), 1U);
}

TEST_F(OutcomeFeedbackTest,
       CommittedOutcomeRebuildsTheEntryWhenRegistrationWasLost) {
  Registry::Config config;
  config.auto_restart = true;
  build(config);
  overloaded_source();
  consult();
  engine_.run_until(2.0);
  (void)commands<xmlproto::MigrateCmd>();
  // Worst-case bookkeeping race: the source monitor deregisters the
  // migrated-away process before the commit report arrives, and the
  // destination's own ProcessRegisterMsg is lost on the wire.  Without
  // the commit-time re-key the process would be on nobody's books.
  xmlproto::ProcessDeregisterMsg dereg;
  dereg.host = "ws1";
  dereg.pid = 100;
  post("ws1", dereg);
  engine_.run_until(3.0);
  ASSERT_EQ(registry_->process_count(), 0U);
  post("ws1", outcome_msg("committed"));
  engine_.run_until(4.0);
  // The commit outcome rebuilt the entry on the destination's books.
  EXPECT_EQ(registry_->process_count(), 1U);
  // ws2 dies silently; the lease lapse must still relaunch the process
  // even though ws2's monitor never managed to report it.
  for (double t = 8.0; t <= 64.0; t += 4.0) {
    engine_.run_until(t);
    heartbeat("ws1", "overloaded", 2.8, 160);
    heartbeat("ws3");
  }
  const auto relaunches = commands<xmlproto::RelaunchCmd>();
  ASSERT_GE(relaunches.size(), 1U);  // >1: unconfirmed-relaunch retries
  EXPECT_EQ(relaunches[0].second.process_name, "app");
  EXPECT_NE(relaunches[0].first, "ws2");
}

TEST_F(OutcomeFeedbackTest, ExpiredDebitWithNoBookEntryRelaunches) {
  // Total information loss: the outcome report AND the destination's
  // registration both vanish, the source deregisters, and every host
  // stays healthy — so no lease ever expires for the process.  The
  // expired placement debit is the only remaining witness that the
  // migration happened; its expiry must trigger the relaunch.
  Registry::Config config;
  config.auto_restart = true;
  build(config);
  overloaded_source();
  consult();
  engine_.run_until(2.0);
  (void)commands<xmlproto::MigrateCmd>();
  xmlproto::ProcessDeregisterMsg dereg;
  dereg.host = "ws1";
  dereg.pid = 100;
  post("ws1", dereg);
  engine_.run_until(3.0);
  ASSERT_EQ(registry_->process_count(), 0U);
  ASSERT_EQ(registry_->inflight_placements(), 1U);
  // Everyone keeps heartbeating through the debit TTL (120 s).
  for (double t = 8.0; t <= 140.0; t += 4.0) {
    engine_.run_until(t);
    heartbeat("ws1", "overloaded", 2.8, 160);
    heartbeat("ws2");
    heartbeat("ws3");
  }
  EXPECT_EQ(counter_value("registry.debit_orphan_restarts"), 1.0);
  const auto relaunches = commands<xmlproto::RelaunchCmd>();
  ASSERT_GE(relaunches.size(), 1U);
  EXPECT_EQ(relaunches[0].second.process_name, "app");
  EXPECT_NE(relaunches[0].first, "ws1");  // overloaded source not eligible
}

TEST_F(OutcomeFeedbackTest, SilentOutcomeDebitExpiresAfterTtl) {
  Registry::Config config;
  config.placement_debit_ttl = 10.0;
  build(config);
  overloaded_source();
  consult();
  engine_.run_until(2.0);
  ASSERT_EQ(registry_->inflight_placements(), 1U);
  // The source commander dies before reporting: the sweeper drops the
  // debit after the TTL so the destination's capacity is not leaked.
  engine_.run_until(30.0);
  EXPECT_EQ(registry_->inflight_placements(), 0U);
  EXPECT_EQ(counter_value("registry.placements_expired"), 1.0);
  EXPECT_EQ(counter_value("registry.placements_credited"), 0.0);
  EXPECT_EQ(gauge_value("registry.placements_inflight"), 0.0);
}

}  // namespace
}  // namespace ars::registry
