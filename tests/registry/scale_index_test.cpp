// Tests for the registry's per-state index and the stale-state decision
// bugfix regressions:
//
//   * the index tracks every state transition and keeps the free list in
//     registration order (the first-fit scan order);
//   * the indexed fast path and the audited legacy full-table scan yield
//     byte-identical decisions under churn;
//   * re-admission after a lease expiry must not reuse pre-crash status;
//   * restarts of one crashed host's processes spread across free hosts;
//   * Update-before-Register ghosts are never command targets (no message
//     is ever posted to port 0);
//   * restarts with no capacity park on a retry list the sweeper drains.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ars/obs/metrics.hpp"
#include "ars/registry/registry.hpp"
#include "ars/support/rng.hpp"

namespace ars::registry {
namespace {

using rules::SystemState;
using sim::Engine;

double counter_value(const obs::MetricsRegistry& metrics,
                     const std::string& name,
                     const obs::Labels& labels = {}) {
  const obs::Counter* counter = metrics.find_counter(name, labels);
  return counter == nullptr ? 0.0 : counter->value();
}

class ScaleIndexTest : public ::testing::Test {
 protected:
  void build(Registry::Config config = {}) {
    net::Network::Options net_options;
    net_options.metrics = &metrics_;
    net_ = std::make_unique<net::Network>(engine_, net_options);
    for (const char* name : {"hub", "ws1", "ws2", "ws3", "ws4", "ws5"}) {
      host::HostSpec s;
      s.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, s));
      net_->attach(*hosts_.back());
    }
    config.policy = rules::paper_policy2();
    config.lease_ttl = 25.0;
    config.metrics = &metrics_;
    registry_ = std::make_unique<Registry>(*hosts_[0], *net_, config);
    registry_->start();
  }

  void post(const std::string& from, const xmlproto::ProtocolMessage& m) {
    net::Message wire;
    wire.src_host = from;
    wire.dst_host = "hub";
    wire.dst_port = registry_->port();
    wire.payload = xmlproto::encode(m);
    net_->post(std::move(wire));
  }

  static xmlproto::RegisterMsg register_msg(const std::string& name,
                                            int commander_port = 6000) {
    xmlproto::RegisterMsg reg;
    reg.info.host = name;
    reg.info.memory_bytes = 128ULL << 20;
    reg.info.disk_bytes = 20ULL << 30;
    reg.info.cpu_speed = 1.0;
    reg.monitor_port = 5999;
    reg.commander_port = commander_port;
    return reg;
  }

  xmlproto::UpdateMsg update_msg(const std::string& name, SystemState state,
                                 double load1 = 0.2) {
    xmlproto::UpdateMsg update;
    update.status.host = name;
    update.status.state = std::string(rules::to_string(state));
    update.status.load1 = load1;
    update.status.processes = 60;
    update.status.timestamp = engine_.now();
    return update;
  }

  void register_host(const std::string& name, int commander_port = 6000) {
    post(name, register_msg(name, commander_port));
  }

  void update_host(const std::string& name, SystemState state,
                   double load1 = 0.2) {
    post(name, update_msg(name, state, load1));
  }

  void register_process(const std::string& host, int pid,
                        const std::string& name) {
    xmlproto::ProcessRegisterMsg msg;
    msg.host = host;
    msg.pid = pid;
    msg.name = name;
    msg.migration_enabled = true;
    post(host, msg);
  }

  void consult(const std::string& from) {
    xmlproto::ConsultMsg msg;
    msg.host = from;
    msg.reason = "test";
    post(from, msg);
  }

  /// RelaunchCmd/MigrateCmd/ConsultMsg counts drained from an endpoint.
  static int drain_count(net::Endpoint& endpoint, const char* type) {
    int count = 0;
    while (auto wire = endpoint.inbox.try_recv()) {
      const auto message = xmlproto::decode(wire->payload);
      if (message.has_value() && xmlproto::message_type(*message) == type) {
        ++count;
      }
    }
    return count;
  }

  Engine engine_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::unique_ptr<Registry> registry_;
};

TEST_F(ScaleIndexTest, IndexTracksEveryStateTransition) {
  build();
  register_host("ws1");
  register_host("ws2");
  register_host("ws3");
  engine_.run_until(0.5);
  // Register-only hosts are admitted optimistically as free.
  EXPECT_EQ(registry_->indexed_count(SystemState::kFree), 3U);
  EXPECT_TRUE(registry_->index_consistent());

  update_host("ws2", SystemState::kBusy, 1.5);
  update_host("ws3", SystemState::kOverloaded, 3.0);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->indexed_hosts(SystemState::kFree),
            std::vector<std::string>{"ws1"});
  EXPECT_EQ(registry_->indexed_hosts(SystemState::kBusy),
            std::vector<std::string>{"ws2"});
  EXPECT_EQ(registry_->indexed_hosts(SystemState::kOverloaded),
            std::vector<std::string>{"ws3"});
  EXPECT_TRUE(registry_->index_consistent());

  update_host("ws2", SystemState::kFree);
  engine_.run_until(1.5);
  EXPECT_EQ(registry_->indexed_count(SystemState::kFree), 2U);

  // All leases lapse: everything migrates to the unavailable list.
  engine_.run_until(60.0);
  EXPECT_EQ(registry_->indexed_count(SystemState::kFree), 0U);
  EXPECT_EQ(registry_->indexed_count(SystemState::kUnavailable), 3U);
  EXPECT_TRUE(registry_->index_consistent());
}

TEST_F(ScaleIndexTest, FreeListFollowsRegistrationOrderNotName) {
  build();
  // ws3 registers before ws1: the free list (= first-fit order) must not
  // fall back to the host table's name order.
  register_host("ws3");
  engine_.run_until(0.2);
  register_host("ws1");
  update_host("ws3", SystemState::kFree);
  update_host("ws1", SystemState::kFree);
  engine_.run_until(0.5);
  EXPECT_EQ(registry_->indexed_hosts(SystemState::kFree),
            (std::vector<std::string>{"ws3", "ws1"}));
  EXPECT_EQ(registry_->first_fit_destination("src", ""), "ws3");
}

TEST_F(ScaleIndexTest, IndexedAndLegacyEligiblesAgreeUnderChurn) {
  build();
  const int kHosts = 40;
  std::vector<std::string> names;
  for (int i = 0; i < kHosts; ++i) {
    names.push_back("n" + std::to_string(100 + i));
    registry_->deliver(register_msg(names.back()), names.back());
    registry_->deliver(update_msg(names.back(), SystemState::kFree),
                       names.back());
  }
  support::Rng rng{7};
  const SystemState states[] = {SystemState::kFree, SystemState::kBusy,
                                SystemState::kOverloaded};
  for (int round = 0; round < 50; ++round) {
    for (int flip = 0; flip < 6; ++flip) {
      const auto& name =
          names[static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1))];
      const SystemState state = states[rng.uniform_int(0, 2)];
      registry_->deliver(update_msg(name, state), name);
    }
    ASSERT_TRUE(registry_->index_consistent());
    const auto& source =
        names[static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1))];
    // Same registry, both paths: audited legacy scan vs indexed walk.
    std::vector<CandidateAudit> audit;
    const auto legacy = registry_->eligible_destinations(source, "", &audit);
    const auto indexed = registry_->eligible_destinations(source, "");
    ASSERT_EQ(legacy.size(), indexed.size()) << "round " << round;
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(legacy[i]->info.host, indexed[i]->info.host)
          << "round " << round << " position " << i;
    }
  }
}

TEST_F(ScaleIndexTest, IndexedAndLegacyDecisionLogsAreByteIdentical) {
  build();  // indexed: no tracer, audit auto -> fast path
  Registry::Config legacy_config;
  legacy_config.policy = rules::paper_policy2();
  legacy_config.lease_ttl = 25.0;
  legacy_config.use_legacy_scan = true;
  Registry legacy{*hosts_[0], *net_, legacy_config};
  legacy.start();

  const auto both = [&](const xmlproto::ProtocolMessage& m,
                        const std::string& from) {
    registry_->deliver(m, from);
    legacy.deliver(m, from);
  };

  const int kHosts = 24;
  std::vector<std::string> names;
  for (int i = 0; i < kHosts; ++i) {
    names.push_back("n" + std::to_string(100 + i));
    both(register_msg(names.back()), names.back());
    both(update_msg(names.back(), SystemState::kFree), names.back());
    xmlproto::ProcessRegisterMsg proc;
    proc.host = names.back();
    proc.pid = 500 + i;
    proc.name = "app" + std::to_string(i);
    proc.migration_enabled = true;
    both(proc, names.back());
  }
  support::Rng rng{11};
  const SystemState states[] = {SystemState::kFree, SystemState::kBusy,
                                SystemState::kOverloaded};
  double t = 0.0;
  for (int round = 0; round < 30; ++round) {
    for (int flip = 0; flip < 4; ++flip) {
      const auto& name =
          names[static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1))];
      both(update_msg(name, states[rng.uniform_int(0, 2)]), name);
    }
    xmlproto::ConsultMsg msg;
    msg.host = names[static_cast<std::size_t>(rng.uniform_int(0, kHosts - 1))];
    msg.reason = "churn";
    both(msg, msg.host);
    t += 1.0;
    engine_.run_until(t);
  }
  EXPECT_FALSE(registry_->decisions().empty());
  EXPECT_EQ(registry_->decision_log(), legacy.decision_log());
}

// Bugfix regression: a host whose lease expired (crash) and that then
// re-registers (reboot) used to flip straight back to `free` with its
// pre-crash status — and could win the very next consult on stale data.
TEST_F(ScaleIndexTest, ReAdmissionAfterExpiryWaitsForFreshStatus) {
  build();
  register_host("ws1");
  update_host("ws1", SystemState::kOverloaded, 3.0);
  register_process("ws1", 100, "app");
  register_host("ws2");
  update_host("ws2", SystemState::kFree);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->host_state("ws2"), SystemState::kFree);

  // ws2 crashes: its lease lapses.  ws1 keeps heart-beating.
  engine_.run_until(20.0);
  update_host("ws1", SystemState::kOverloaded, 3.0);
  engine_.run_until(40.0);
  EXPECT_EQ(registry_->host_state("ws2"), SystemState::kUnavailable);

  // Reboot: the monitor re-announces static info before its first status
  // cycle.  The stale pre-crash "free" status must not make ws2 eligible.
  register_host("ws2");
  engine_.run_until(41.0);
  EXPECT_EQ(registry_->host_state("ws2"), SystemState::kUnavailable);
  EXPECT_FALSE(registry_->first_fit_destination("ws1", "").has_value());

  // Consult in the reboot window: no destination, not a stale migrate.
  consult("ws1");
  engine_.run_until(42.0);
  ASSERT_EQ(registry_->decisions().size(), 1U);
  EXPECT_TRUE(registry_->decisions()[0].destination.empty());

  // The first fresh heartbeat restores eligibility.
  update_host("ws2", SystemState::kFree);
  engine_.run_until(43.0);
  EXPECT_EQ(registry_->host_state("ws2"), SystemState::kFree);
  EXPECT_EQ(registry_->first_fit_destination("ws1", ""), "ws2");
}

// A brand-new host (no status ever seen) is still admitted optimistically
// on registration alone — only RE-admission is held back.
TEST_F(ScaleIndexTest, FreshRegistrationIsStillAdmittedOptimistically) {
  build();
  register_host("ws1");
  engine_.run_until(0.5);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kFree);
  EXPECT_EQ(registry_->first_fit_destination("src", ""), "ws1");
}

// Bugfix regression: all processes of a crashed host used to be relaunched
// onto the same first-fit destination because the in-flight placements were
// invisible until the destination's next heartbeat.
TEST_F(ScaleIndexTest, RestartsSpreadAcrossFreeHosts) {
  Registry::Config config;
  config.auto_restart = true;
  build(config);
  net::Endpoint& ws2_commander = net_->bind("ws2", 6000);
  net::Endpoint& ws3_commander = net_->bind("ws3", 6000);
  register_host("ws1");
  update_host("ws1", SystemState::kBusy, 1.5);
  for (int pid = 1; pid <= 4; ++pid) {
    register_process("ws1", pid, "rank" + std::to_string(pid));
  }
  register_host("ws2");
  update_host("ws2", SystemState::kFree);
  register_host("ws3");
  update_host("ws3", SystemState::kFree);
  engine_.run_until(20.0);
  // Keep the destinations' leases fresh while ws1 goes silent.
  update_host("ws2", SystemState::kFree);
  update_host("ws3", SystemState::kFree);
  engine_.run_until(40.0);

  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kUnavailable);
  EXPECT_EQ(drain_count(ws2_commander, "relaunch"), 2);
  EXPECT_EQ(drain_count(ws3_commander, "relaunch"), 2);
  EXPECT_TRUE(registry_->stranded().empty());
}

// Bugfix regression: an UpdateMsg arriving before any RegisterMsg creates a
// ghost entry with port 0; such a host used to win consults, and the
// migrate command was then posted to port 0 and silently dropped.
TEST_F(ScaleIndexTest, GhostHostIsNeverADestination) {
  build();
  register_host("ws1");
  update_host("ws1", SystemState::kOverloaded, 3.0);
  register_process("ws1", 100, "app");
  // ws2's Update overtakes its Register: a free ghost with no ports.
  update_host("ws2", SystemState::kFree);
  engine_.run_until(1.0);
  EXPECT_EQ(registry_->host_state("ws2"), SystemState::kFree);
  EXPECT_FALSE(registry_->first_fit_destination("ws1", "").has_value());

  consult("ws1");
  engine_.run_until(2.0);
  ASSERT_EQ(registry_->decisions().size(), 1U);
  EXPECT_TRUE(registry_->decisions()[0].destination.empty());
  EXPECT_EQ(counter_value(metrics_, "ars_net_dropped_total",
                          {{"reason", "unbound_port"}}),
            0.0);

  // The late RegisterMsg supplies the ports; ws2 becomes a real candidate.
  register_host("ws2");
  engine_.run_until(3.0);
  EXPECT_EQ(registry_->first_fit_destination("ws1", ""), "ws2");
}

// Ghost on the SOURCE side: the consulting host itself has no known
// commander port, so the migrate command cannot be routed anywhere.
TEST_F(ScaleIndexTest, GhostSourceConsultDoesNotPostToPortZero) {
  build();
  update_host("ws1", SystemState::kOverloaded, 3.0);  // ghost source
  register_process("ws1", 100, "app");
  register_host("ws2");
  update_host("ws2", SystemState::kFree);
  engine_.run_until(1.0);

  consult("ws1");
  engine_.run_until(2.0);
  ASSERT_EQ(registry_->decisions().size(), 1U);
  EXPECT_EQ(registry_->decisions()[0].destination, "ws2");
  EXPECT_EQ(counter_value(metrics_, "registry.commands_unroutable"), 1.0);
  EXPECT_EQ(counter_value(metrics_, "ars_net_dropped_total",
                          {{"reason", "unbound_port"}}),
            0.0);
}

// Bugfix regression: a lost process with no eligible destination used to be
// dropped on the floor with only a log line.  It must park on the retry
// list and restart as soon as capacity returns.
TEST_F(ScaleIndexTest, StrandedRestartsRetryWhenCapacityReturns) {
  Registry::Config config;
  config.auto_restart = true;
  build(config);
  register_host("ws1");
  update_host("ws1", SystemState::kBusy, 1.5);
  register_process("ws1", 100, "app");
  engine_.run_until(1.0);

  // ws1 dies with no other host in the system: the restart is stranded.
  engine_.run_until(40.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kUnavailable);
  ASSERT_EQ(registry_->stranded().size(), 1U);
  EXPECT_EQ(registry_->stranded()[0].name, "app");
  EXPECT_EQ(counter_value(metrics_, "registry.restarts_stranded"), 1.0);
  // The failure is logged as a decision exactly once, not once per sweep.
  ASSERT_EQ(registry_->decisions().size(), 1U);
  EXPECT_TRUE(registry_->decisions()[0].destination.empty());
  EXPECT_TRUE(registry_->decisions()[0].restart);

  // Capacity returns: the next sweep drains the retry list.
  net::Endpoint& ws2_commander = net_->bind("ws2", 6000);
  register_host("ws2");
  update_host("ws2", SystemState::kFree);
  engine_.run_until(50.0);
  EXPECT_TRUE(registry_->stranded().empty());
  EXPECT_EQ(drain_count(ws2_commander, "relaunch"), 1);
  EXPECT_EQ(counter_value(metrics_, "registry.stranded_recovered"), 1.0);
  ASSERT_EQ(registry_->decisions().size(), 2U);
  EXPECT_EQ(registry_->decisions()[1].destination, "ws2");
}

// Compact lease renewals refresh leases but can never (re)admit a host.
TEST_F(ScaleIndexTest, LeaseRenewalsRefreshButNeverAdmit) {
  build();
  register_host("ws1");
  update_host("ws1", SystemState::kFree);
  engine_.run_until(1.0);

  const auto renew = [&](const std::string& name) {
    xmlproto::UpdateBatchMsg batch;
    xmlproto::LeaseRenewal renewal;
    renewal.host = name;
    renewal.state = "free";
    renewal.timestamp = engine_.now();
    batch.renewals.push_back(renewal);
    registry_->deliver(batch, name);
  };

  // Renewals alone keep ws1 alive well past the lease TTL.
  for (double t = 10.0; t <= 60.0; t += 10.0) {
    renew("ws1");
    engine_.run_until(t);
  }
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kFree);
  EXPECT_GE(counter_value(metrics_, "registry.renewals_applied"), 5.0);

  // A renewal for an unknown host is rejected, not a ghost admission.
  renew("ws9");
  engine_.run_until(61.0);
  EXPECT_FALSE(registry_->host_state("ws9").has_value());
  EXPECT_GE(counter_value(metrics_, "registry.renewals_rejected"), 1.0);

  // After an expiry, renewals are rejected until a full UpdateMsg.
  engine_.run_until(100.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kUnavailable);
  renew("ws1");
  engine_.run_until(101.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kUnavailable);
  update_host("ws1", SystemState::kFree);
  engine_.run_until(102.0);
  EXPECT_EQ(registry_->host_state("ws1"), SystemState::kFree);
}

// Escalated consults are balanced across child domains by their reported
// free capacity minus the consults already routed there.
TEST_F(ScaleIndexTest, EscalationsSpreadAcrossChildDomains) {
  build();
  net::Endpoint& child1 = net_->bind("ws1", 7000);
  net::Endpoint& child2 = net_->bind("ws2", 7100);
  const auto report = [&](const std::string& name, int port, int free) {
    xmlproto::HealthReportMsg health;
    health.registry_host = name;
    health.registry_port = port;
    health.free_hosts = free;
    health.timestamp = engine_.now();
    post(name, health);
  };
  report("ws1", 7000, 2);
  report("ws2", 7100, 2);
  engine_.run_until(0.5);
  ASSERT_EQ(registry_->children().size(), 2U);

  // Four escalated consults from an unknown domain: 2 free + 2 free means
  // a 2/2 split, not four piled onto whichever child reported first.
  for (int i = 0; i < 4; ++i) {
    xmlproto::ConsultMsg msg;
    msg.host = "remote" + std::to_string(i);
    msg.reason = "escalated";
    msg.origin_registry = "elsewhere";
    msg.pid = 900 + i;
    msg.process_name = "job" + std::to_string(i);
    msg.commander_port = 6000;
    registry_->deliver(msg, msg.host);
  }
  engine_.run_until(2.0);
  EXPECT_EQ(drain_count(child1, "consult"), 2);
  EXPECT_EQ(drain_count(child2, "consult"), 2);
  EXPECT_EQ(counter_value(metrics_, "registry.consults_routed"), 4.0);

  // Capacity exhausted: the fifth consult is a plain no-destination.
  xmlproto::ConsultMsg extra;
  extra.host = "remote9";
  extra.reason = "escalated";
  extra.origin_registry = "elsewhere";
  extra.pid = 999;
  extra.commander_port = 6000;
  registry_->deliver(extra, extra.host);
  engine_.run_until(3.0);
  EXPECT_EQ(counter_value(metrics_, "registry.consults_routed"), 4.0);
  EXPECT_EQ(drain_count(child1, "consult"), 0);
  EXPECT_EQ(drain_count(child2, "consult"), 0);

  // A fresh health report resets the in-flight debit.
  report("ws1", 7000, 1);
  engine_.run_until(3.5);
  registry_->deliver(extra, extra.host);
  engine_.run_until(4.0);
  EXPECT_EQ(drain_count(child1, "consult"), 1);
}

}  // namespace
}  // namespace ars::registry
