#include "ars/host/host.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ars/host/hog.hpp"
#include "ars/sim/task.hpp"

namespace ars::host {
namespace {

using sim::Engine;
using sim::Fiber;
using sim::Task;

HostSpec blade(const std::string& name) {
  HostSpec spec;
  spec.name = name;
  return spec;
}

TEST(LoadAverage, IdleHostStaysAtZero) {
  Engine engine;
  Host host{engine, blade("ws1")};
  engine.run_until(600.0);
  EXPECT_DOUBLE_EQ(host.loadavg().one_minute(), 0.0);
  EXPECT_DOUBLE_EQ(host.loadavg().five_minute(), 0.0);
}

TEST(LoadAverage, SingleBusyJobConvergesToOne) {
  Engine engine;
  Host host{engine, blade("ws1")};
  auto burner = [](Host& h) -> Task<> {
    while (true) {
      co_await h.cpu().compute(1.0);
    }
  };
  Fiber fiber = Fiber::spawn(engine, burner(host));
  engine.run_until(600.0);  // 10 minutes: 1-min EMA fully converged
  EXPECT_NEAR(host.loadavg().one_minute(), 1.0, 0.02);
  EXPECT_NEAR(host.loadavg().five_minute(), 1.0, 0.15);
  fiber.kill();
}

TEST(LoadAverage, TwoBusyJobsConvergeToTwo) {
  Engine engine;
  Host host{engine, blade("ws1")};
  CpuHog hog{host, {.threads = 2}};
  hog.start();
  engine.run_until(600.0);
  EXPECT_NEAR(host.loadavg().one_minute(), 2.0, 0.05);
}

TEST(LoadAverage, OneMinuteReactsFasterThanFiveMinute) {
  Engine engine;
  Host host{engine, blade("ws1")};
  CpuHog hog{host, {.threads = 1}};
  hog.start();
  engine.run_until(60.0);
  EXPECT_GT(host.loadavg().one_minute(), host.loadavg().five_minute());
}

TEST(LoadAverage, AmbientRunnableRaisesBaseline) {
  Engine engine;
  Host host{engine, blade("ws1")};
  host.loadavg().set_ambient_runnable(0.26);
  engine.run_until(900.0);
  EXPECT_NEAR(host.loadavg().one_minute(), 0.26, 0.01);
}

TEST(LoadAverage, DecaysAfterLoadStops) {
  Engine engine;
  Host host{engine, blade("ws1")};
  CpuHog hog{host, {.threads = 1, .duration = 300.0}};
  hog.start();
  engine.run_until(300.0);
  const double at_peak = host.loadavg().one_minute();
  engine.run_until(600.0);
  EXPECT_LT(host.loadavg().one_minute(), at_peak / 4.0);
}

TEST(HostUtilization, IdleIsZeroBusyIsOne) {
  Engine engine;
  Host host{engine, blade("ws1")};
  engine.run_until(100.0);
  EXPECT_DOUBLE_EQ(host.cpu_utilization(10.0), 0.0);
  EXPECT_DOUBLE_EQ(host.cpu_idle_percent(10.0), 100.0);
  CpuHog hog{host, {.threads = 1}};
  hog.start();
  engine.run_until(200.0);
  EXPECT_NEAR(host.cpu_utilization(10.0), 1.0, 1e-9);
  EXPECT_NEAR(host.cpu_idle_percent(10.0), 0.0, 1e-6);
}

TEST(HostUtilization, PartialWindow) {
  Engine engine;
  Host host{engine, blade("ws1")};
  auto burner = [](Host& h) -> Task<> { co_await h.cpu().compute(5.0); };
  engine.schedule_at(10.0, [&] { Fiber::spawn(engine, burner(host)); });
  engine.run_until(20.0);
  // Busy on [10, 15] -> 50% of the trailing 10 s window.
  EXPECT_NEAR(host.cpu_utilization(10.0), 0.5, 1e-9);
}

TEST(ProcessTable, RegistrationAndLookup) {
  ProcessTable table;
  const Pid pid = table.register_process("test_tree", 28.0, true, "tree");
  const ProcessInfo* info = table.find(pid);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "test_tree");
  EXPECT_DOUBLE_EQ(info->start_time, 28.0);
  EXPECT_TRUE(info->migration_enabled);
  EXPECT_EQ(info->schema_name, "tree");
  EXPECT_EQ(table.count(), 1U);
  table.deregister(pid);
  EXPECT_EQ(table.find(pid), nullptr);
  EXPECT_EQ(table.count(), 0U);
}

TEST(ProcessTable, PidsAreUnique) {
  ProcessTable table;
  const Pid a = table.register_process("a", 0.0);
  const Pid b = table.register_process("b", 0.0);
  EXPECT_NE(a, b);
}

TEST(ProcessTable, SignalPendingAndConsume) {
  ProcessTable table;
  const Pid pid = table.register_process("app", 0.0);
  EXPECT_FALSE(table.consume_signal(pid, kSigMigrate));
  EXPECT_TRUE(table.raise(pid, kSigMigrate));
  EXPECT_TRUE(table.consume_signal(pid, kSigMigrate));
  EXPECT_FALSE(table.consume_signal(pid, kSigMigrate));  // one-shot
}

TEST(ProcessTable, SignalHandlerIsInvokedDirectly) {
  ProcessTable table;
  const Pid pid = table.register_process("app", 0.0);
  int received = -1;
  table.set_signal_handler(pid, [&](int signo) { received = signo; });
  EXPECT_TRUE(table.raise(pid, kSigMigrate));
  EXPECT_EQ(received, kSigMigrate);
  // Handled signals do not also become pending.
  EXPECT_FALSE(table.consume_signal(pid, kSigMigrate));
}

TEST(ProcessTable, RaiseOnUnknownPidFails) {
  ProcessTable table;
  EXPECT_FALSE(table.raise(4711, kSigMigrate));
}

TEST(MemoryAccount, ReserveAndRelease) {
  MemoryAccount account{1000};
  EXPECT_TRUE(account.reserve(600));
  EXPECT_EQ(account.available(), 400U);
  EXPECT_FALSE(account.reserve(500));
  EXPECT_EQ(account.available(), 400U);  // failed reserve leaves no trace
  account.release(600);
  EXPECT_EQ(account.available(), 1000U);
  EXPECT_DOUBLE_EQ(account.percent_available(), 100.0);
}

TEST(MemoryAccount, ReleaseClampsAtZeroUsed) {
  MemoryAccount account{100};
  account.release(50);  // over-release must not underflow
  EXPECT_EQ(account.used(), 0U);
}

TEST(DiskAccount, MountPoints) {
  DiskAccount disk;
  disk.add_mount("/", 1000);
  disk.add_mount("/export", 5000);
  EXPECT_TRUE(disk.has_mount("/"));
  EXPECT_FALSE(disk.has_mount("/opt"));
  EXPECT_TRUE(disk.mount("/export").reserve(1500));
  EXPECT_EQ(disk.total_available(), 4500U);
  EXPECT_THROW((void)disk.mount("/opt"), std::out_of_range);
}

TEST(KvStore, TempFileSemantics) {
  KvStore store;
  EXPECT_FALSE(store.contains("migrate_dest"));
  store.write("migrate_dest", "ws4:5000");
  EXPECT_TRUE(store.contains("migrate_dest"));
  EXPECT_EQ(store.read("migrate_dest"), "ws4:5000");
  store.erase("migrate_dest");
  EXPECT_THROW((void)store.read("migrate_dest"), std::out_of_range);
}

TEST(Host, SpecDefaultsMatchSunBlade100) {
  Engine engine;
  Host host{engine, blade("ws1")};
  EXPECT_EQ(host.spec().memory_bytes, 128ULL * 1024 * 1024);
  EXPECT_EQ(host.spec().byte_order, support::ByteOrder::kBigEndian);
  EXPECT_DOUBLE_EQ(host.spec().cpu_speed, 1.0);
  EXPECT_TRUE(host.disk().has_mount("/"));
}

TEST(Host, ProcessAndSocketCounters) {
  Engine engine;
  Host host{engine, blade("ws1")};
  host.set_ambient_process_count(80);
  host.processes().register_process("a", 0.0);
  EXPECT_EQ(host.total_process_count(), 81);
  host.adjust_established_sockets(+3);
  host.adjust_established_sockets(-1);
  EXPECT_EQ(host.established_sockets(), 2);
}

TEST(CpuHog, StopRemovesLoadAndProcesses) {
  Engine engine;
  Host host{engine, blade("ws1")};
  CpuHog hog{host, {.threads = 3, .ambient_process_delta = 100}};
  hog.start();
  engine.run_until(10.0);
  EXPECT_EQ(host.cpu().runnable_count(), 3U);
  EXPECT_EQ(host.total_process_count(), 103);
  hog.stop();
  EXPECT_EQ(host.cpu().runnable_count(), 0U);
  EXPECT_EQ(host.total_process_count(), 0);
}

TEST(CpuHog, BoundedDurationEndsByItself) {
  Engine engine;
  Host host{engine, blade("ws1")};
  CpuHog hog{host, {.threads = 1, .duration = 50.0}};
  hog.start();
  engine.run_until(49.0);
  EXPECT_EQ(host.cpu().runnable_count(), 1U);
  engine.run_until(60.0);
  EXPECT_EQ(host.cpu().runnable_count(), 0U);
}

}  // namespace
}  // namespace ars::host
