#include "ars/host/cpu.hpp"

#include <gtest/gtest.h>

#include "ars/sim/task.hpp"

namespace ars::host {
namespace {

using sim::Engine;
using sim::Fiber;
using sim::Task;

Task<> run_compute(CpuModel& cpu, double work, double* finished_at) {
  co_await cpu.compute(work);
  *finished_at = cpu.engine().now();
}

TEST(CpuModel, SingleJobRunsAtFullSpeed) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done = -1.0;
  Fiber::spawn(engine, run_compute(cpu, 10.0, &done));
  engine.run();
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST(CpuModel, FasterCpuFinishesSooner) {
  Engine engine;
  CpuModel cpu{engine, 2.0};
  double done = -1.0;
  Fiber::spawn(engine, run_compute(cpu, 10.0, &done));
  engine.run();
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(CpuModel, TwoEqualJobsShareTheProcessor) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done_a = -1.0;
  double done_b = -1.0;
  Fiber::spawn(engine, run_compute(cpu, 5.0, &done_a));
  Fiber::spawn(engine, run_compute(cpu, 5.0, &done_b));
  engine.run();
  // Both share the CPU for the whole run: each takes 10 s of wall time.
  EXPECT_DOUBLE_EQ(done_a, 10.0);
  EXPECT_DOUBLE_EQ(done_b, 10.0);
}

TEST(CpuModel, UnequalJobsFinishAtProcessorSharingTimes) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done_small = -1.0;
  double done_big = -1.0;
  Fiber::spawn(engine, run_compute(cpu, 2.0, &done_small));
  Fiber::spawn(engine, run_compute(cpu, 6.0, &done_big));
  engine.run();
  // Shared until the small job ends: it needs 2 units at rate 1/2 -> t=4.
  EXPECT_DOUBLE_EQ(done_small, 4.0);
  // Big job: 2 units done by t=4, remaining 4 at full speed -> t=8.
  EXPECT_DOUBLE_EQ(done_big, 8.0);
}

TEST(CpuModel, LateArrivalSlowsExistingJob) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done_first = -1.0;
  double done_second = -1.0;
  Fiber::spawn(engine, run_compute(cpu, 10.0, &done_first));
  engine.schedule_at(5.0, [&] {
    Fiber::spawn(engine, run_compute(cpu, 10.0, &done_second));
  });
  engine.run();
  // First job: 5 done by t=5, then shares; needs 5 more at 1/2 -> t=15.
  EXPECT_DOUBLE_EQ(done_first, 15.0);
  // Second: 5 done by t=15 (shared), 5 more at full speed -> t=20.
  EXPECT_DOUBLE_EQ(done_second, 20.0);
}

TEST(CpuModel, RunnableCountTracksMembership) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done = -1.0;
  EXPECT_EQ(cpu.runnable_count(), 0U);
  Fiber::spawn(engine, run_compute(cpu, 10.0, &done));
  engine.run_until(1.0);
  EXPECT_EQ(cpu.runnable_count(), 1U);
  engine.run();
  EXPECT_EQ(cpu.runnable_count(), 0U);
}

TEST(CpuModel, ZeroWorkCompletesImmediately) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done = -1.0;
  Fiber::spawn(engine, run_compute(cpu, 0.0, &done));
  engine.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(CpuModel, KilledJobReleasesTheProcessor) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done_victim = -1.0;
  double done_other = -1.0;
  Fiber victim = Fiber::spawn(engine, run_compute(cpu, 100.0, &done_victim));
  Fiber::spawn(engine, run_compute(cpu, 10.0, &done_other));
  engine.schedule_at(4.0, [&] { victim.kill(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_victim, -1.0);
  // Other job: 2 units done by t=4 (shared), 8 more alone -> t=12.
  EXPECT_DOUBLE_EQ(done_other, 12.0);
  EXPECT_EQ(cpu.runnable_count(), 0U);
}

TEST(CpuModel, CumulativeBusyIntegratesBusyTime) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done = -1.0;
  engine.schedule_at(5.0, [&] {
    Fiber::spawn(engine, run_compute(cpu, 3.0, &done));
  });
  engine.run();
  EXPECT_DOUBLE_EQ(cpu.cumulative_busy(), 3.0);
}

TEST(CpuModel, BusyBetweenWindowsAreExact) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done = -1.0;
  engine.schedule_at(2.0, [&] {
    Fiber::spawn(engine, run_compute(cpu, 4.0, &done));
  });
  engine.run_until(20.0);
  // Busy exactly on [2, 6].
  EXPECT_DOUBLE_EQ(cpu.busy_between(0.0, 20.0), 4.0);
  EXPECT_DOUBLE_EQ(cpu.busy_between(0.0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(cpu.busy_between(5.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cpu.busy_between(7.0, 10.0), 0.0);
}

TEST(CpuModel, BusyBetweenSeesOngoingWork) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  double done = -1.0;
  Fiber fiber = Fiber::spawn(engine, run_compute(cpu, 100.0, &done));
  engine.run_until(10.0);
  EXPECT_NEAR(cpu.busy_between(0.0, 10.0), 10.0, 1e-9);
  fiber.kill();  // release the CPU job before the model is destroyed
}

TEST(CpuModel, ManyJobsShareFairly) {
  Engine engine;
  CpuModel cpu{engine, 1.0};
  constexpr int kJobs = 8;
  std::vector<double> done(kJobs, -1.0);
  for (int i = 0; i < kJobs; ++i) {
    Fiber::spawn(engine, run_compute(cpu, 1.0, &done[static_cast<std::size_t>(i)]));
  }
  engine.run();
  for (const double d : done) {
    EXPECT_DOUBLE_EQ(d, static_cast<double>(kJobs));
  }
}

}  // namespace
}  // namespace ars::host
