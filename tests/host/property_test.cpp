// Conservation-law property sweeps for the processor-sharing CPU model:
// whatever random job mix arrives, (a) every job eventually receives exactly
// its demanded work, (b) the CPU's integrated busy time equals total demand /
// speed, and (c) completions respect processor-sharing fairness bounds.

#include <gtest/gtest.h>

#include "ars/host/cpu.hpp"
#include "ars/sim/task.hpp"
#include "ars/support/rng.hpp"

namespace ars::host {
namespace {

using sim::Engine;
using sim::Fiber;
using sim::Task;

struct JobSpec {
  double arrival;
  double work;
};

class CpuConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuConservation, WorkAndBusyTimeAreConserved) {
  support::Rng rng{GetParam()};
  const double speed = rng.uniform(0.5, 4.0);
  Engine engine;
  CpuModel cpu{engine, speed};

  const int jobs = static_cast<int>(rng.uniform_int(1, 24));
  std::vector<JobSpec> specs;
  double total_work = 0.0;
  for (int i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.arrival = rng.uniform(0.0, 50.0);
    spec.work = rng.uniform(0.1, 20.0);
    total_work += spec.work;
    specs.push_back(spec);
  }

  std::vector<double> completed_at(specs.size(), -1.0);
  auto worker = [](CpuModel& model, double work, double* done) -> Task<> {
    co_await model.compute(work);
    *done = model.engine().now();
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    engine.schedule_at(specs[i].arrival, [&, i] {
      Fiber::spawn(engine, worker(cpu, specs[i].work, &completed_at[i]));
    });
  }
  engine.run();

  // (a) every job completed...
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_GT(completed_at[i], 0.0) << "job " << i << " never completed";
    // ...no earlier than its solo execution time.
    EXPECT_GE(completed_at[i] + 1e-6, specs[i].arrival + specs[i].work / speed)
        << "job " << i << " finished faster than physics allows";
  }
  // (b) busy time equals total work / speed.
  EXPECT_NEAR(cpu.cumulative_busy(), total_work / speed,
              1e-6 * specs.size() + 1e-6);
  // (c) the run ends exactly when the last work unit is done; with a single
  // continuously-backlogged server that is <= max completion time.
  const double last =
      *std::max_element(completed_at.begin(), completed_at.end());
  EXPECT_DOUBLE_EQ(engine.now(), last);
  EXPECT_EQ(cpu.runnable_count(), 0U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuConservation,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace ars::host
