#include "ars/monitor/monitor.hpp"

#include <gtest/gtest.h>

#include "ars/host/hog.hpp"
#include "ars/net/commhog.hpp"
#include "ars/rules/rulefile.hpp"

namespace ars::monitor {
namespace {

using rules::SystemState;
using sim::Engine;

class SensorTest : public ::testing::Test {
 protected:
  SensorTest() : net_(engine_), host_(engine_, spec()), sensors_(host_, net_) {
    net_.attach(host_);
  }

  static host::HostSpec spec() {
    host::HostSpec s;
    s.name = "ws1";
    return s;
  }

  Engine engine_;
  net::Network net_;
  host::Host host_;
  HostSensorSource sensors_;
};

TEST_F(SensorTest, ProcessorStatusReportsIdlePercent) {
  engine_.run_until(50.0);
  EXPECT_DOUBLE_EQ(*sensors_.sample(kScriptProcessorStatus, ""), 100.0);
  host::CpuHog hog{host_, {.threads = 1}};
  hog.start();
  engine_.run_until(100.0);
  EXPECT_NEAR(*sensors_.sample(kScriptProcessorStatus, ""), 0.0, 1.0);
}

TEST_F(SensorTest, LoadAverageSensors) {
  host::CpuHog hog{host_, {.threads = 2}};
  hog.start();
  engine_.run_until(600.0);
  EXPECT_NEAR(*sensors_.sample(kScriptLoadAvg1, ""), 2.0, 0.1);
  EXPECT_GT(*sensors_.sample(kScriptLoadAvg5, ""), 1.0);
}

TEST_F(SensorTest, ProcessAndSocketSensors) {
  host_.set_ambient_process_count(148);
  host_.processes().register_process("x", 0.0);
  EXPECT_DOUBLE_EQ(*sensors_.sample(kScriptProcessCount, ""), 149.0);
  host_.set_established_sockets(701);
  EXPECT_DOUBLE_EQ(*sensors_.sample(kScriptNtStatIpv4, "ESTABLISHED"), 701.0);
  EXPECT_DOUBLE_EQ(*sensors_.sample(kScriptNtStatIpv4, "TIME_WAIT"), 0.0);
}

TEST_F(SensorTest, MemoryAndDiskSensors) {
  EXPECT_DOUBLE_EQ(*sensors_.sample(kScriptMemFree, ""), 100.0);
  host_.memory().reserve(host_.memory().total() / 2);
  EXPECT_DOUBLE_EQ(*sensors_.sample(kScriptMemFree, ""), 50.0);
  EXPECT_GT(*sensors_.sample(kScriptDiskFree, ""), 0.0);
}

TEST_F(SensorTest, UnknownScriptFails) {
  EXPECT_FALSE(sensors_.sample("made_up.sh", "").has_value());
  EXPECT_FALSE(sensors_.sample(kScriptNetFlow, "sideways").has_value());
}

TEST_F(SensorTest, SnapshotIsSelfConsistent) {
  host_.set_ambient_process_count(60);
  engine_.run_until(20.0);
  const auto status = sensors_.snapshot();
  EXPECT_EQ(status.host, "ws1");
  EXPECT_EQ(status.processes, 60);
  EXPECT_DOUBLE_EQ(status.timestamp, 20.0);
}

TEST_F(SensorTest, Figure3RulesEvaluateAgainstLiveHost) {
  // The paper's verbatim rule file classifies this simulated host.
  auto engine = rules::RuleEngine::from_text(rules::paper_figure3_text());
  ASSERT_TRUE(engine.has_value());
  engine_.run_until(50.0);
  // Idle host: 100% idle, 0 sockets -> free.
  EXPECT_EQ(*engine->evaluate_all(sensors_), SystemState::kFree);
  // Saturate the CPU: idle -> 0% (< 45) -> overloaded.
  host::CpuHog hog{host_, {.threads = 1}};
  hog.start();
  engine_.run_until(100.0);
  EXPECT_EQ(*engine->evaluate_all(sensors_), SystemState::kOverloaded);
}

TEST(MetricsDbTest, RecordAndQuery) {
  MetricsDb db{4};
  for (int i = 0; i < 6; ++i) {
    xmlproto::DynamicStatus s;
    s.timestamp = i * 10.0;
    s.load1 = i;
    db.record(s);
  }
  EXPECT_EQ(db.size(), 4U);  // capacity bound
  ASSERT_TRUE(db.latest().has_value());
  EXPECT_DOUBLE_EQ(db.latest()->timestamp, 50.0);
  EXPECT_EQ(db.between(30.0, 50.0).size(), 3U);
  // Mean over the last 20 s: samples at 30,40,50 -> loads 3,4,5.
  EXPECT_NEAR(db.mean_load1(20.0), 4.0, 1e-9);
}

TEST(MetricsDbTest, SustainedPredicate) {
  MetricsDb db;
  for (int i = 0; i < 5; ++i) {
    xmlproto::DynamicStatus s;
    s.timestamp = i * 10.0;
    s.load1 = i >= 2 ? 3.0 : 0.1;
    db.record(s);
  }
  EXPECT_TRUE(db.sustained(
      20.0, [](const xmlproto::DynamicStatus& s) { return s.load1 > 2.0; }));
  EXPECT_FALSE(db.sustained(
      45.0, [](const xmlproto::DynamicStatus& s) { return s.load1 > 2.0; }));
  MetricsDb empty;
  EXPECT_FALSE(empty.sustained(
      10.0, [](const xmlproto::DynamicStatus&) { return true; }));
}

TEST(ClassifierTest, PolicyClassifierBands) {
  const Classifier classify =
      classifier_from_policy(rules::paper_policy2());
  xmlproto::DynamicStatus idle;
  idle.load1 = 0.2;
  idle.processes = 60;
  EXPECT_EQ(classify(idle), SystemState::kFree);
  xmlproto::DynamicStatus busy = idle;
  busy.load1 = 1.2;
  EXPECT_EQ(classify(busy), SystemState::kBusy);
  xmlproto::DynamicStatus overloaded = idle;
  overloaded.load1 = 2.5;
  EXPECT_EQ(classify(overloaded), SystemState::kOverloaded);
}

class MonitorEntityTest : public ::testing::Test {
 protected:
  MonitorEntityTest() : net_(engine_) {
    for (const char* name : {"ws1", "registry"}) {
      host::HostSpec s;
      s.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, s));
      net_.attach(*hosts_.back());
    }
    registry_endpoint_ = &net_.bind("registry", 5000);
  }

  Monitor::Config config() {
    Monitor::Config c;
    c.registry_host = "registry";
    c.registry_port = 5000;
    c.commander_port = 5001;
    c.policy = rules::paper_policy2();
    return c;
  }

  /// Drain the registry inbox into typed messages.
  std::vector<xmlproto::ProtocolMessage> drain() {
    std::vector<xmlproto::ProtocolMessage> out;
    while (auto wire = registry_endpoint_->inbox.try_recv()) {
      auto message = xmlproto::decode(wire->payload);
      if (message.has_value()) {
        out.push_back(std::move(*message));
      }
    }
    return out;
  }

  Engine engine_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  net::Endpoint* registry_endpoint_ = nullptr;
};

TEST_F(MonitorEntityTest, RegistersThenHeartbeats) {
  Monitor monitor{*hosts_[0], net_, config()};
  monitor.start();
  engine_.run_until(35.0);
  const auto messages = drain();
  ASSERT_GE(messages.size(), 3U);
  EXPECT_TRUE(std::holds_alternative<xmlproto::RegisterMsg>(messages[0]));
  int updates = 0;
  for (const auto& m : messages) {
    updates += std::holds_alternative<xmlproto::UpdateMsg>(m) ? 1 : 0;
  }
  // 10 s frequency on a free host: updates at ~0,10,20,30.
  EXPECT_GE(updates, 3);
  EXPECT_EQ(monitor.state(), SystemState::kFree);
}

TEST_F(MonitorEntityTest, DeltaHeartbeatsCoalesceUnchangedState) {
  Monitor::Config c = config();
  c.delta_heartbeats = true;
  c.full_status_every = 6;
  Monitor monitor{*hosts_[0], net_, c};
  monitor.start();
  // Idle host, 10 s cycles: ~10 cycles by t=95 with no state change.
  engine_.run_until(95.0);
  EXPECT_GE(monitor.renewals_sent(), 6);
  // Keyframes only on the first cycle and every 6th after it.
  EXPECT_LE(monitor.updates_sent(), 3);
  int full = 0;
  int renewals = 0;
  for (const auto& m : drain()) {
    if (std::holds_alternative<xmlproto::UpdateMsg>(m)) {
      ++full;
    } else if (const auto* batch =
                   std::get_if<xmlproto::UpdateBatchMsg>(&m)) {
      ASSERT_EQ(batch->renewals.size(), 1U);
      EXPECT_EQ(batch->renewals[0].host, "ws1");
      EXPECT_EQ(batch->renewals[0].state, "free");
      ++renewals;
    }
  }
  EXPECT_EQ(full, monitor.updates_sent());
  EXPECT_EQ(renewals, monitor.renewals_sent());
}

TEST_F(MonitorEntityTest, DeltaHeartbeatsKeyframeOnStateChange) {
  Monitor::Config c = config();
  c.delta_heartbeats = true;
  c.full_status_every = 1000;  // keyframes only via state changes here
  Monitor monitor{*hosts_[0], net_, c};
  monitor.start();
  host::CpuHog hog{*hosts_[0], {.threads = 3}};
  engine_.schedule_at(50.0, [&] { hog.start(); });
  engine_.run_until(250.0);
  EXPECT_NE(monitor.state(), SystemState::kFree);
  // Every renewal's state must match the latest keyframe: a state change
  // always goes out as a full UpdateMsg, never as a compact renewal.
  std::string keyframe_state;
  for (const auto& m : drain()) {
    if (const auto* update = std::get_if<xmlproto::UpdateMsg>(&m)) {
      keyframe_state = update->status.state;
    } else if (const auto* batch =
                   std::get_if<xmlproto::UpdateBatchMsg>(&m)) {
      ASSERT_EQ(batch->renewals.size(), 1U);
      EXPECT_EQ(batch->renewals[0].state, keyframe_state);
    }
  }
  EXPECT_GE(monitor.updates_sent(), 2);  // initial + the transitions
}

TEST_F(MonitorEntityTest, ConsultsAfterSustainedOverload) {
  Monitor monitor{*hosts_[0], net_, config()};
  monitor.start();
  host::CpuHog hog{*hosts_[0], {.threads = 3}};
  engine_.schedule_at(50.0, [&] { hog.start(); });
  // Policy warm-up is 60 s; load averages also need time to rise past 2.
  engine_.run_until(250.0);
  EXPECT_EQ(monitor.state(), SystemState::kOverloaded);
  EXPECT_GE(monitor.consults_sent(), 1);
  bool saw_consult = false;
  for (const auto& m : drain()) {
    if (const auto* consult = std::get_if<xmlproto::ConsultMsg>(&m)) {
      saw_consult = true;
      EXPECT_EQ(consult->host, "ws1");
    }
  }
  EXPECT_TRUE(saw_consult);
}

TEST_F(MonitorEntityTest, NoConsultBeforeWarmup) {
  Monitor monitor{*hosts_[0], net_, config()};
  monitor.start();
  host::CpuHog hog{*hosts_[0], {.threads = 3}};
  engine_.schedule_at(10.0, [&] { hog.start(); });
  // By t=60 the load average may cross 2, but the warm-up (60 s of
  // *sustained* overload) cannot have elapsed yet.
  engine_.run_until(60.0);
  EXPECT_EQ(monitor.consults_sent(), 0);
}

TEST_F(MonitorEntityTest, ShortSpikeIsAbsorbed) {
  // A short task raises load briefly; the warm-up avoids fault migration.
  Monitor monitor{*hosts_[0], net_, config()};
  monitor.start();
  host::CpuHog hog{*hosts_[0], {.threads = 3, .duration = 40.0}};
  engine_.schedule_at(30.0, [&] { hog.start(); });
  engine_.run_until(400.0);
  EXPECT_EQ(monitor.consults_sent(), 0);
  EXPECT_NE(monitor.state(), SystemState::kOverloaded);
}

TEST_F(MonitorEntityTest, RegistersMigratableProcesses) {
  hosts_[0]->processes().register_process("test_tree", 5.0, true, "tree");
  hosts_[0]->processes().register_process("daemon", 1.0, false);
  Monitor monitor{*hosts_[0], net_, config()};
  monitor.start();
  engine_.run_until(15.0);
  int process_registrations = 0;
  for (const auto& m : drain()) {
    if (const auto* preg = std::get_if<xmlproto::ProcessRegisterMsg>(&m)) {
      ++process_registrations;
      EXPECT_EQ(preg->name, "test_tree");
      EXPECT_EQ(preg->schema_name, "tree");
    }
  }
  EXPECT_EQ(process_registrations, 1);  // only the migration-enabled one
}

TEST_F(MonitorEntityTest, DeregistersGoneProcesses) {
  const auto pid =
      hosts_[0]->processes().register_process("test_tree", 5.0, true, "t");
  Monitor monitor{*hosts_[0], net_, config()};
  monitor.start();
  engine_.run_until(15.0);
  (void)drain();
  hosts_[0]->processes().deregister(pid);
  engine_.run_until(30.0);
  bool saw_dereg = false;
  for (const auto& m : drain()) {
    if (const auto* dereg = std::get_if<xmlproto::ProcessDeregisterMsg>(&m)) {
      saw_dereg = true;
      EXPECT_EQ(dereg->pid, pid);
    }
  }
  EXPECT_TRUE(saw_dereg);
}

TEST_F(MonitorEntityTest, StopHaltsTraffic) {
  Monitor monitor{*hosts_[0], net_, config()};
  monitor.start();
  engine_.run_until(25.0);
  monitor.stop();
  (void)drain();
  engine_.run_until(100.0);
  EXPECT_TRUE(drain().empty());
}

}  // namespace
}  // namespace ars::monitor
