// MetricsDb bounded-ring behavior, in particular the capacity wrap-around:
// once the ring is full every record() evicts the oldest sample, and the
// trend queries (between, mean_load1) must only ever see the survivors.

#include "ars/monitor/metricsdb.hpp"

#include <gtest/gtest.h>

namespace ars::monitor {
namespace {

xmlproto::DynamicStatus sample(double t, double load1) {
  xmlproto::DynamicStatus status;
  status.timestamp = t;
  status.load1 = load1;
  return status;
}

TEST(MetricsDbTest, EmptyDbAnswersNeutrally) {
  const MetricsDb db{4};
  EXPECT_TRUE(db.empty());
  EXPECT_FALSE(db.latest().has_value());
  EXPECT_TRUE(db.between(0.0, 1e9).empty());
  EXPECT_DOUBLE_EQ(db.mean_load1(60.0), 0.0);
}

TEST(MetricsDbTest, BetweenIsInclusiveAndOldestFirst) {
  MetricsDb db{8};
  for (int i = 0; i <= 4; ++i) {
    db.record(sample(10.0 * i, static_cast<double>(i)));
  }
  const auto window = db.between(10.0, 30.0);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.front().timestamp, 10.0);
  EXPECT_DOUBLE_EQ(window.back().timestamp, 30.0);
}

TEST(MetricsDbTest, CapacityEvictsOldestOnWrap) {
  MetricsDb db{4};
  for (int i = 0; i < 10; ++i) {
    db.record(sample(static_cast<double>(i), static_cast<double>(i)));
  }
  EXPECT_EQ(db.size(), 4u);
  // The full-range query only sees the surviving tail t=6..9.
  const auto all = db.between(0.0, 100.0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_DOUBLE_EQ(all.front().timestamp, 6.0);
  EXPECT_DOUBLE_EQ(all.back().timestamp, 9.0);
  // A query entirely inside the evicted prefix finds nothing.
  EXPECT_TRUE(db.between(0.0, 5.0).empty());
  ASSERT_TRUE(db.latest().has_value());
  EXPECT_DOUBLE_EQ(db.latest()->timestamp, 9.0);
}

TEST(MetricsDbTest, MeanLoad1IgnoresEvictedSamples) {
  MetricsDb db{3};
  // Three high-load samples that will be pushed out by three low ones.
  for (int i = 0; i < 3; ++i) {
    db.record(sample(static_cast<double>(i), 100.0));
  }
  for (int i = 3; i < 6; ++i) {
    db.record(sample(static_cast<double>(i), 1.0));
  }
  // A window spanning the db's whole history averages the survivors only —
  // the evicted 100.0 samples must not leak into the trend.
  EXPECT_DOUBLE_EQ(db.mean_load1(1000.0), 1.0);
}

TEST(MetricsDbTest, MeanLoad1WindowBoundary) {
  MetricsDb db{8};
  db.record(sample(0.0, 10.0));
  db.record(sample(5.0, 2.0));
  db.record(sample(10.0, 4.0));
  // horizon = newest - window; samples at the horizon are included.
  EXPECT_DOUBLE_EQ(db.mean_load1(5.0), 3.0);   // t=5 and t=10
  EXPECT_DOUBLE_EQ(db.mean_load1(0.0), 4.0);   // newest only
  EXPECT_DOUBLE_EQ(db.mean_load1(100.0), 16.0 / 3.0);
}

TEST(MetricsDbTest, SustainedRespectsWrapAround) {
  MetricsDb db{2};
  db.record(sample(0.0, 9.0));  // will be evicted
  db.record(sample(1.0, 1.0));
  db.record(sample(2.0, 1.0));
  EXPECT_TRUE(db.sustained(10.0, [](const xmlproto::DynamicStatus& s) {
    return s.load1 < 2.0;
  }));
}

}  // namespace
}  // namespace ars::monitor
