// Tests for the self-adjusting monitor (paper §6 future work): the
// effective warm-up adapts to the observed overload history.

#include <gtest/gtest.h>

#include "ars/host/hog.hpp"
#include "ars/monitor/monitor.hpp"

namespace ars::monitor {
namespace {

using sim::Engine;

class AdaptiveTest : public ::testing::Test {
 protected:
  AdaptiveTest() : net_(engine_) {
    for (const char* name : {"ws1", "registry"}) {
      host::HostSpec s;
      s.name = name;
      hosts_.push_back(std::make_unique<host::Host>(engine_, s));
      net_.attach(*hosts_.back());
    }
    net_.bind("registry", 5000);
  }

  Monitor::Config config(bool adaptive) {
    Monitor::Config c;
    c.registry_host = "registry";
    c.registry_port = 5000;
    c.policy = rules::paper_policy2();  // warmup 60 s
    c.adaptive_warmup = adaptive;
    return c;
  }

  Engine engine_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
};

TEST_F(AdaptiveTest, StaticWarmupStaysPut) {
  Monitor monitor{*hosts_[0], net_, config(false)};
  monitor.start();
  // Two short spikes.
  host::CpuHog spike1{*hosts_[0], {.threads = 3, .duration = 90.0}};
  engine_.schedule_at(50.0, [&] { spike1.start(); });
  host::CpuHog spike2{*hosts_[0], {.threads = 3, .duration = 90.0}};
  engine_.schedule_at(400.0, [&] { spike2.start(); });
  engine_.run_until(800.0);
  EXPECT_DOUBLE_EQ(monitor.effective_warmup(), 60.0);
}

TEST_F(AdaptiveTest, ShortSpikesLengthenTheWarmup) {
  Monitor monitor{*hosts_[0], net_, config(true)};
  monitor.start();
  // Repeated near-miss spikes: overloaded for a while, but below warm-up.
  std::vector<std::unique_ptr<host::CpuHog>> spikes;
  for (int i = 0; i < 4; ++i) {
    spikes.push_back(std::make_unique<host::CpuHog>(
        *hosts_[0], host::CpuHog::Options{.threads = 3, .duration = 80.0}));
    engine_.schedule_at(100.0 + 350.0 * i,
                        [&, i] { spikes[static_cast<std::size_t>(i)]->start(); });
  }
  engine_.run_until(1600.0);
  EXPECT_EQ(monitor.consults_sent(), 0);
  EXPECT_GE(monitor.absorbed_spikes(), 2);
  EXPECT_GT(monitor.effective_warmup(), 60.0);
  EXPECT_LE(monitor.effective_warmup(), 120.0);  // bounded at 2x
}

TEST_F(AdaptiveTest, PersistentOverloadsShortenTheWarmup) {
  Monitor monitor{*hosts_[0], net_, config(true)};
  monitor.start();
  // Long overloads that each trigger a consult, then subside.
  std::vector<std::unique_ptr<host::CpuHog>> loads;
  for (int i = 0; i < 3; ++i) {
    loads.push_back(std::make_unique<host::CpuHog>(
        *hosts_[0], host::CpuHog::Options{.threads = 3, .duration = 300.0}));
    engine_.schedule_at(100.0 + 600.0 * i,
                        [&, i] { loads[static_cast<std::size_t>(i)]->start(); });
  }
  engine_.run_until(2000.0);
  EXPECT_GE(monitor.consults_sent(), 2);
  EXPECT_LT(monitor.effective_warmup(), 60.0);
  EXPECT_GE(monitor.effective_warmup(), 30.0);  // bounded at 0.5x
}

TEST_F(AdaptiveTest, BoundsAreRespectedUnderManyEpisodes) {
  Monitor::Config c = config(true);
  c.warmup_gain = 0.5;  // aggressive, to hit the bounds fast
  Monitor monitor{*hosts_[0], net_, c};
  monitor.start();
  std::vector<std::unique_ptr<host::CpuHog>> spikes;
  for (int i = 0; i < 8; ++i) {
    spikes.push_back(std::make_unique<host::CpuHog>(
        *hosts_[0], host::CpuHog::Options{.threads = 3, .duration = 70.0}));
    engine_.schedule_at(100.0 + 300.0 * i,
                        [&, i] { spikes[static_cast<std::size_t>(i)]->start(); });
  }
  engine_.run_until(2800.0);
  EXPECT_LE(monitor.effective_warmup(), 120.0 + 1e-9);
}

}  // namespace
}  // namespace ars::monitor
