// Shared checkpoint I/O store: fluid-flow bandwidth sharing, abort paths,
// the cooperative admission scheduler, Young/Daly intervals, and the
// failure-waste ledger (DESIGN.md §17).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ars/ckpt/io.hpp"
#include "ars/ckpt/strategy.hpp"
#include "ars/obs/metrics.hpp"
#include "ars/sim/engine.hpp"

namespace ars::ckpt {
namespace {

struct StoreFixture : ::testing::Test {
  sim::Engine engine;
  std::vector<WriteOutcome> committed;
  std::vector<WriteOutcome> aborted;

  SharedStore make_store(double per_host_bps, double aggregate_bps) {
    IoOptions options;
    options.per_host_bps = per_host_bps;
    options.aggregate_bps = aggregate_bps;
    return SharedStore{engine, options};
  }

  SharedStore::OutcomeFn commit_sink() {
    return [this](const WriteOutcome& o) { committed.push_back(o); };
  }
  SharedStore::OutcomeFn abort_sink() {
    return [this](const WriteOutcome& o) { aborted.push_back(o); };
  }
};

TEST_F(StoreFixture, SingleWriteRunsAtPerHostRate) {
  SharedStore store = make_store(10.0e6, 100.0e6);
  ASSERT_TRUE(
      store.begin_write("a.0", "ws1", 20'000'000, commit_sink(), abort_sink()));
  EXPECT_TRUE(store.writing("a.0"));
  engine.run_until(10.0);
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_DOUBLE_EQ(committed[0].finished_at, 2.0);  // 20 MB at 10 MB/s
  EXPECT_DOUBLE_EQ(committed[0].duration(), 2.0);
  EXPECT_EQ(store.commits(), 1);
  EXPECT_FALSE(store.writing("a.0"));
}

TEST_F(StoreFixture, ConcurrentWritesShareAggregateBandwidth) {
  // Aggregate 10 MB/s, per-host 10 MB/s: two writers get 5 MB/s each.
  SharedStore store = make_store(10.0e6, 10.0e6);
  store.begin_write("a.0", "ws1", 10'000'000, commit_sink(), abort_sink());
  store.begin_write("b.0", "ws2", 10'000'000, commit_sink(), abort_sink());
  EXPECT_DOUBLE_EQ(store.current_rate(), 5.0e6);
  engine.run_until(10.0);
  ASSERT_EQ(committed.size(), 2u);
  // Both 10 MB writes share the store: 20 MB total at 10 MB/s aggregate.
  EXPECT_DOUBLE_EQ(committed[0].finished_at, 2.0);
  EXPECT_DOUBLE_EQ(committed[1].finished_at, 2.0);
}

TEST_F(StoreFixture, LateArrivalStretchesTheEarlierWrite) {
  SharedStore store = make_store(10.0e6, 10.0e6);
  store.begin_write("a.0", "ws1", 10'000'000, commit_sink(), abort_sink());
  engine.schedule_at(0.5, [&] {
    store.begin_write("b.0", "ws2", 10'000'000, commit_sink(), abort_sink());
  });
  engine.run_until(10.0);
  ASSERT_EQ(committed.size(), 2u);
  // a.0: 5 MB alone in [0, 0.5), then 5 MB at the shared 5 MB/s → t=1.5.
  EXPECT_EQ(committed[0].process, "a.0");
  EXPECT_NEAR(committed[0].finished_at, 1.5, 1e-9);
  // b.0: shares until 1.5 (5 MB done), then full rate → t=2.0.
  EXPECT_EQ(committed[1].process, "b.0");
  EXPECT_NEAR(committed[1].finished_at, 2.0, 1e-9);
}

TEST_F(StoreFixture, ZeroAggregateDisablesSharing) {
  SharedStore store = make_store(10.0e6, 0.0);
  store.begin_write("a.0", "ws1", 10'000'000, commit_sink(), abort_sink());
  store.begin_write("b.0", "ws2", 10'000'000, commit_sink(), abort_sink());
  EXPECT_DOUBLE_EQ(store.current_rate(), 10.0e6);
  engine.run_until(10.0);
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_DOUBLE_EQ(committed[0].finished_at, 1.0);
  EXPECT_DOUBLE_EQ(committed[1].finished_at, 1.0);
}

TEST_F(StoreFixture, AbortDropsTheWriteAndFiresAbortCallback) {
  SharedStore store = make_store(10.0e6, 0.0);
  store.begin_write("a.0", "ws1", 10'000'000, commit_sink(), abort_sink());
  engine.schedule_at(0.4, [&] { EXPECT_TRUE(store.abort_write("a.0")); });
  engine.run_until(10.0);
  EXPECT_TRUE(committed.empty());
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_NEAR(aborted[0].finished_at, 0.4, 1e-9);
  EXPECT_EQ(store.aborts(), 1);
  EXPECT_FALSE(store.abort_write("a.0"));  // already gone
}

TEST_F(StoreFixture, HostAbortDropsOnlyThatHostsWrites) {
  SharedStore store = make_store(10.0e6, 0.0);
  store.begin_write("a.0", "ws1", 10'000'000, commit_sink(), abort_sink());
  store.begin_write("b.0", "ws1", 10'000'000, commit_sink(), abort_sink());
  store.begin_write("c.0", "ws2", 10'000'000, commit_sink(), abort_sink());
  engine.schedule_at(0.2, [&] { EXPECT_EQ(store.abort_host_writes("ws1"), 2); });
  engine.run_until(10.0);
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].process, "c.0");
  EXPECT_EQ(aborted.size(), 2u);
}

TEST_F(StoreFixture, DuplicateWriteForSameProcessIsRejected) {
  SharedStore store = make_store(10.0e6, 0.0);
  EXPECT_TRUE(
      store.begin_write("a.0", "ws1", 1'000'000, commit_sink(), abort_sink()));
  EXPECT_FALSE(
      store.begin_write("a.0", "ws1", 1'000'000, commit_sink(), abort_sink()));
  engine.run_until(10.0);
  EXPECT_EQ(committed.size(), 1u);
}

TEST_F(StoreFixture, RateWithOneMoreSignalsSaturation) {
  SharedStore store = make_store(10.0e6, 20.0e6);
  EXPECT_DOUBLE_EQ(store.rate_with_one_more(), 10.0e6);  // empty: full rate
  store.begin_write("a.0", "ws1", 50'000'000, commit_sink(), abort_sink());
  store.begin_write("b.0", "ws2", 50'000'000, commit_sink(), abort_sink());
  // A third write would drop everyone to 20/3 MB/s.
  EXPECT_NEAR(store.rate_with_one_more(), 20.0e6 / 3.0, 1.0);
}

TEST_F(StoreFixture, PreRegistersZeroValuedMetrics) {
  IoOptions options;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  SharedStore store{engine, options};
  ASSERT_NE(metrics.find_counter("ars_ckpt.writes"), nullptr);
  ASSERT_NE(metrics.find_counter("ars_ckpt.bytes"), nullptr);
  ASSERT_NE(metrics.find_counter("ars_ckpt.aborted"), nullptr);
  EXPECT_DOUBLE_EQ(metrics.find_counter("ars_ckpt.writes")->value(), 0.0);
  // The prometheus render carries them even before any write happens.
  EXPECT_NE(metrics.to_prometheus().find("ars_ckpt_writes"), std::string::npos);
}

// -- Young/Daly --------------------------------------------------------------

TEST(YoungDalyTest, IntervalIsSqrtTwoCM) {
  EXPECT_DOUBLE_EQ(young_daly_interval(450.0, 4.0), 60.0);
  EXPECT_DOUBLE_EQ(young_daly_interval(200.0, 1.0), 20.0);
}

TEST(YoungDalyTest, NonPositiveInputsNeverComeDue) {
  EXPECT_TRUE(std::isinf(young_daly_interval(0.0, 4.0)));
  EXPECT_TRUE(std::isinf(young_daly_interval(300.0, 0.0)));
  EXPECT_TRUE(std::isinf(young_daly_interval(-1.0, -1.0)));
}

// -- cooperative admission ---------------------------------------------------

TEST(IoSchedulerTest, AdmitsUpToMaxConcurrentThenDefers) {
  IoScheduler sched{{.max_concurrent = 2}};
  EXPECT_EQ(sched.request("a.0", "ws1", 0.5, 0.0).verb,
            Admission::Verb::kAdmit);
  EXPECT_EQ(sched.request("b.0", "ws2", 0.5, 0.0).verb,
            Admission::Verb::kAdmit);
  const Admission third = sched.request("c.0", "ws3", 0.6, 0.0);
  EXPECT_EQ(third.verb, Admission::Verb::kDefer);
  EXPECT_GT(third.retry_after, 0.0);
  EXPECT_EQ(sched.active(), 2u);
  EXPECT_EQ(sched.admitted(), 2);
  EXPECT_EQ(sched.deferred(), 1);
}

TEST(IoSchedulerTest, ReleaseFreesTheSlotIdempotently) {
  IoScheduler sched{{.max_concurrent = 1}};
  sched.request("a.0", "ws1", 0.5, 0.0);
  EXPECT_TRUE(sched.holds_slot("a.0"));
  sched.release("a.0");
  sched.release("a.0");  // stale duplicate done-report: harmless
  EXPECT_FALSE(sched.holds_slot("a.0"));
  EXPECT_EQ(sched.request("b.0", "ws2", 0.5, 1.0).verb,
            Admission::Verb::kAdmit);
}

TEST(IoSchedulerTest, OverdueRequesterPreemptsTheLeastRiskyWrite) {
  IoScheduler sched{{.max_concurrent = 2, .preempt_risk_ratio = 2.0}};
  sched.request("calm.0", "ws1", 0.4, 0.0);
  sched.request("mid.0", "ws2", 0.9, 0.0);
  // risk 1.5 >= 2 * 0.4 and > 1.0: preempt the calm writer, admit us.
  const Admission verdict = sched.request("late.0", "ws3", 1.5, 1.0);
  EXPECT_EQ(verdict.verb, Admission::Verb::kPreempt);
  EXPECT_EQ(verdict.preempt_victim, "calm.0");
  EXPECT_EQ(verdict.victim_host, "ws1");
  EXPECT_TRUE(sched.holds_slot("late.0"));
  EXPECT_FALSE(sched.holds_slot("calm.0"));
  EXPECT_EQ(sched.preemptions(), 1);
}

TEST(IoSchedulerTest, RiskBelowOneNeverPreempts) {
  IoScheduler sched{{.max_concurrent = 1, .preempt_risk_ratio = 2.0}};
  sched.request("a.0", "ws1", 0.1, 0.0);
  // 0.9 >= 2 * 0.1 but the requester is not even overdue — defer.
  EXPECT_EQ(sched.request("b.0", "ws2", 0.9, 0.0).verb,
            Admission::Verb::kDefer);
}

TEST(IoSchedulerTest, ExpiryReapsLeakedSlots) {
  IoScheduler sched{{.max_concurrent = 1, .slot_ttl = 60.0}};
  sched.request("lost.0", "ws1", 0.5, 10.0);
  EXPECT_TRUE(sched.expire(50.0).empty());
  const std::vector<std::string> reaped = sched.expire(80.0);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0], "lost.0");
  EXPECT_EQ(sched.request("next.0", "ws2", 0.5, 81.0).verb,
            Admission::Verb::kAdmit);
}

// -- waste ledger ------------------------------------------------------------

TEST(WasteLedgerTest, AccumulatesPerProcessAndClusterWide) {
  WasteLedger ledger;
  ledger.record_overhead("a.0", 2.0);
  ledger.record_overhead("a.0", 3.0);
  ledger.record_lost_work("a.0", 7.0);
  ledger.record_restart("b.0", 1.5);
  EXPECT_DOUBLE_EQ(ledger.of("a.0").overhead_s, 5.0);
  EXPECT_DOUBLE_EQ(ledger.of("a.0").lost_work_s, 7.0);
  EXPECT_DOUBLE_EQ(ledger.of("a.0").total(), 12.0);
  EXPECT_DOUBLE_EQ(ledger.of("b.0").restart_s, 1.5);
  EXPECT_DOUBLE_EQ(ledger.of("ghost.0").total(), 0.0);
  const Waste cluster = ledger.cluster();
  EXPECT_DOUBLE_EQ(cluster.overhead_s, 5.0);
  EXPECT_DOUBLE_EQ(cluster.lost_work_s, 7.0);
  EXPECT_DOUBLE_EQ(cluster.restart_s, 1.5);
  EXPECT_DOUBLE_EQ(cluster.total(), 13.5);
}

}  // namespace
}  // namespace ars::ckpt
