file(REMOVE_RECURSE
  "libars_monitor.a"
)
