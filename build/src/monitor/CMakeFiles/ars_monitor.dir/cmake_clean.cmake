file(REMOVE_RECURSE
  "CMakeFiles/ars_monitor.dir/metricsdb.cpp.o"
  "CMakeFiles/ars_monitor.dir/metricsdb.cpp.o.d"
  "CMakeFiles/ars_monitor.dir/monitor.cpp.o"
  "CMakeFiles/ars_monitor.dir/monitor.cpp.o.d"
  "CMakeFiles/ars_monitor.dir/sensors.cpp.o"
  "CMakeFiles/ars_monitor.dir/sensors.cpp.o.d"
  "libars_monitor.a"
  "libars_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
