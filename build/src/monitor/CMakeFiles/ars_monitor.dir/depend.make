# Empty dependencies file for ars_monitor.
# This may be replaced when dependencies are built.
