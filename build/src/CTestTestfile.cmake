# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sim")
subdirs("host")
subdirs("net")
subdirs("xmlproto")
subdirs("rules")
subdirs("mpi")
subdirs("hpcm")
subdirs("monitor")
subdirs("registry")
subdirs("commander")
subdirs("core")
subdirs("apps")
