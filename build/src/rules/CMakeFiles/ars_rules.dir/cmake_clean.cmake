file(REMOVE_RECURSE
  "CMakeFiles/ars_rules.dir/engine.cpp.o"
  "CMakeFiles/ars_rules.dir/engine.cpp.o.d"
  "CMakeFiles/ars_rules.dir/expr.cpp.o"
  "CMakeFiles/ars_rules.dir/expr.cpp.o.d"
  "CMakeFiles/ars_rules.dir/policy.cpp.o"
  "CMakeFiles/ars_rules.dir/policy.cpp.o.d"
  "CMakeFiles/ars_rules.dir/rulefile.cpp.o"
  "CMakeFiles/ars_rules.dir/rulefile.cpp.o.d"
  "CMakeFiles/ars_rules.dir/state.cpp.o"
  "CMakeFiles/ars_rules.dir/state.cpp.o.d"
  "libars_rules.a"
  "libars_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
