file(REMOVE_RECURSE
  "libars_rules.a"
)
