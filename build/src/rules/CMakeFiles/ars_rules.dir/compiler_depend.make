# Empty compiler generated dependencies file for ars_rules.
# This may be replaced when dependencies are built.
