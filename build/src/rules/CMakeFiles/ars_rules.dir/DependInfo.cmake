
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/engine.cpp" "src/rules/CMakeFiles/ars_rules.dir/engine.cpp.o" "gcc" "src/rules/CMakeFiles/ars_rules.dir/engine.cpp.o.d"
  "/root/repo/src/rules/expr.cpp" "src/rules/CMakeFiles/ars_rules.dir/expr.cpp.o" "gcc" "src/rules/CMakeFiles/ars_rules.dir/expr.cpp.o.d"
  "/root/repo/src/rules/policy.cpp" "src/rules/CMakeFiles/ars_rules.dir/policy.cpp.o" "gcc" "src/rules/CMakeFiles/ars_rules.dir/policy.cpp.o.d"
  "/root/repo/src/rules/rulefile.cpp" "src/rules/CMakeFiles/ars_rules.dir/rulefile.cpp.o" "gcc" "src/rules/CMakeFiles/ars_rules.dir/rulefile.cpp.o.d"
  "/root/repo/src/rules/state.cpp" "src/rules/CMakeFiles/ars_rules.dir/state.cpp.o" "gcc" "src/rules/CMakeFiles/ars_rules.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xmlproto/CMakeFiles/ars_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ars_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
