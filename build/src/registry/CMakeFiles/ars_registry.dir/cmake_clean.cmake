file(REMOVE_RECURSE
  "CMakeFiles/ars_registry.dir/registry.cpp.o"
  "CMakeFiles/ars_registry.dir/registry.cpp.o.d"
  "libars_registry.a"
  "libars_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
