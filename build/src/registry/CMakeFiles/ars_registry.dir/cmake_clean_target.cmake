file(REMOVE_RECURSE
  "libars_registry.a"
)
