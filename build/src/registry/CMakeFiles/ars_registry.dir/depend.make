# Empty dependencies file for ars_registry.
# This may be replaced when dependencies are built.
