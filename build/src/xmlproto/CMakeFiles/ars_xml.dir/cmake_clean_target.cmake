file(REMOVE_RECURSE
  "libars_xml.a"
)
