file(REMOVE_RECURSE
  "CMakeFiles/ars_xml.dir/messages.cpp.o"
  "CMakeFiles/ars_xml.dir/messages.cpp.o.d"
  "CMakeFiles/ars_xml.dir/xml.cpp.o"
  "CMakeFiles/ars_xml.dir/xml.cpp.o.d"
  "libars_xml.a"
  "libars_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
