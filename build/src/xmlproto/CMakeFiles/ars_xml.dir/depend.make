# Empty dependencies file for ars_xml.
# This may be replaced when dependencies are built.
