file(REMOVE_RECURSE
  "libars_host.a"
)
