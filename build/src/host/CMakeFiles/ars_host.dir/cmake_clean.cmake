file(REMOVE_RECURSE
  "CMakeFiles/ars_host.dir/cpu.cpp.o"
  "CMakeFiles/ars_host.dir/cpu.cpp.o.d"
  "CMakeFiles/ars_host.dir/hog.cpp.o"
  "CMakeFiles/ars_host.dir/hog.cpp.o.d"
  "CMakeFiles/ars_host.dir/host.cpp.o"
  "CMakeFiles/ars_host.dir/host.cpp.o.d"
  "CMakeFiles/ars_host.dir/loadavg.cpp.o"
  "CMakeFiles/ars_host.dir/loadavg.cpp.o.d"
  "CMakeFiles/ars_host.dir/process.cpp.o"
  "CMakeFiles/ars_host.dir/process.cpp.o.d"
  "libars_host.a"
  "libars_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
