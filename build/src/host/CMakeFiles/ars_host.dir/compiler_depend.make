# Empty compiler generated dependencies file for ars_host.
# This may be replaced when dependencies are built.
