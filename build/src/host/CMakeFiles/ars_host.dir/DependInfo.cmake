
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/cpu.cpp" "src/host/CMakeFiles/ars_host.dir/cpu.cpp.o" "gcc" "src/host/CMakeFiles/ars_host.dir/cpu.cpp.o.d"
  "/root/repo/src/host/hog.cpp" "src/host/CMakeFiles/ars_host.dir/hog.cpp.o" "gcc" "src/host/CMakeFiles/ars_host.dir/hog.cpp.o.d"
  "/root/repo/src/host/host.cpp" "src/host/CMakeFiles/ars_host.dir/host.cpp.o" "gcc" "src/host/CMakeFiles/ars_host.dir/host.cpp.o.d"
  "/root/repo/src/host/loadavg.cpp" "src/host/CMakeFiles/ars_host.dir/loadavg.cpp.o" "gcc" "src/host/CMakeFiles/ars_host.dir/loadavg.cpp.o.d"
  "/root/repo/src/host/process.cpp" "src/host/CMakeFiles/ars_host.dir/process.cpp.o" "gcc" "src/host/CMakeFiles/ars_host.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ars_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ars_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
