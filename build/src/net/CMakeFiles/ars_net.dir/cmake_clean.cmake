file(REMOVE_RECURSE
  "CMakeFiles/ars_net.dir/commhog.cpp.o"
  "CMakeFiles/ars_net.dir/commhog.cpp.o.d"
  "CMakeFiles/ars_net.dir/flowmeter.cpp.o"
  "CMakeFiles/ars_net.dir/flowmeter.cpp.o.d"
  "CMakeFiles/ars_net.dir/network.cpp.o"
  "CMakeFiles/ars_net.dir/network.cpp.o.d"
  "libars_net.a"
  "libars_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
