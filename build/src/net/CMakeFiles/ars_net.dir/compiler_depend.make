# Empty compiler generated dependencies file for ars_net.
# This may be replaced when dependencies are built.
