file(REMOVE_RECURSE
  "libars_net.a"
)
