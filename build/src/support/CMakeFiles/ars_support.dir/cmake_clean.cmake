file(REMOVE_RECURSE
  "CMakeFiles/ars_support.dir/byteorder.cpp.o"
  "CMakeFiles/ars_support.dir/byteorder.cpp.o.d"
  "CMakeFiles/ars_support.dir/log.cpp.o"
  "CMakeFiles/ars_support.dir/log.cpp.o.d"
  "CMakeFiles/ars_support.dir/rng.cpp.o"
  "CMakeFiles/ars_support.dir/rng.cpp.o.d"
  "CMakeFiles/ars_support.dir/strings.cpp.o"
  "CMakeFiles/ars_support.dir/strings.cpp.o.d"
  "libars_support.a"
  "libars_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
