file(REMOVE_RECURSE
  "libars_support.a"
)
