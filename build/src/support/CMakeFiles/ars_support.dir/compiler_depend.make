# Empty compiler generated dependencies file for ars_support.
# This may be replaced when dependencies are built.
