file(REMOVE_RECURSE
  "libars_hpcm.a"
)
