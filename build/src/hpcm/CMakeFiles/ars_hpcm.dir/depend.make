# Empty dependencies file for ars_hpcm.
# This may be replaced when dependencies are built.
