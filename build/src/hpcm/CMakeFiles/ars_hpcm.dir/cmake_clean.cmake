file(REMOVE_RECURSE
  "CMakeFiles/ars_hpcm.dir/checkpoint.cpp.o"
  "CMakeFiles/ars_hpcm.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ars_hpcm.dir/migration.cpp.o"
  "CMakeFiles/ars_hpcm.dir/migration.cpp.o.d"
  "CMakeFiles/ars_hpcm.dir/schema.cpp.o"
  "CMakeFiles/ars_hpcm.dir/schema.cpp.o.d"
  "CMakeFiles/ars_hpcm.dir/stateregistry.cpp.o"
  "CMakeFiles/ars_hpcm.dir/stateregistry.cpp.o.d"
  "libars_hpcm.a"
  "libars_hpcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_hpcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
