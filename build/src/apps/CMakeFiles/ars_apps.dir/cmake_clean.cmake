file(REMOVE_RECURSE
  "CMakeFiles/ars_apps.dir/matmul.cpp.o"
  "CMakeFiles/ars_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/ars_apps.dir/stencil.cpp.o"
  "CMakeFiles/ars_apps.dir/stencil.cpp.o.d"
  "CMakeFiles/ars_apps.dir/test_tree.cpp.o"
  "CMakeFiles/ars_apps.dir/test_tree.cpp.o.d"
  "libars_apps.a"
  "libars_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
