# Empty compiler generated dependencies file for ars_apps.
# This may be replaced when dependencies are built.
