
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/matmul.cpp" "src/apps/CMakeFiles/ars_apps.dir/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/ars_apps.dir/matmul.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/apps/CMakeFiles/ars_apps.dir/stencil.cpp.o" "gcc" "src/apps/CMakeFiles/ars_apps.dir/stencil.cpp.o.d"
  "/root/repo/src/apps/test_tree.cpp" "src/apps/CMakeFiles/ars_apps.dir/test_tree.cpp.o" "gcc" "src/apps/CMakeFiles/ars_apps.dir/test_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hpcm/CMakeFiles/ars_hpcm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ars_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ars_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlproto/CMakeFiles/ars_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ars_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ars_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ars_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
