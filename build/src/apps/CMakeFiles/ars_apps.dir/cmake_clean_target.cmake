file(REMOVE_RECURSE
  "libars_apps.a"
)
