# Empty dependencies file for ars_apps.
# This may be replaced when dependencies are built.
