file(REMOVE_RECURSE
  "libars_core.a"
)
