file(REMOVE_RECURSE
  "CMakeFiles/ars_core.dir/runtime.cpp.o"
  "CMakeFiles/ars_core.dir/runtime.cpp.o.d"
  "CMakeFiles/ars_core.dir/trace.cpp.o"
  "CMakeFiles/ars_core.dir/trace.cpp.o.d"
  "libars_core.a"
  "libars_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
