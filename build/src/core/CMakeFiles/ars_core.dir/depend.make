# Empty dependencies file for ars_core.
# This may be replaced when dependencies are built.
