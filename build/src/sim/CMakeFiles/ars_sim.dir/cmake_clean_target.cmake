file(REMOVE_RECURSE
  "libars_sim.a"
)
