# Empty compiler generated dependencies file for ars_sim.
# This may be replaced when dependencies are built.
