file(REMOVE_RECURSE
  "CMakeFiles/ars_sim.dir/engine.cpp.o"
  "CMakeFiles/ars_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ars_sim.dir/fiber.cpp.o"
  "CMakeFiles/ars_sim.dir/fiber.cpp.o.d"
  "libars_sim.a"
  "libars_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
