file(REMOVE_RECURSE
  "libars_mpi.a"
)
