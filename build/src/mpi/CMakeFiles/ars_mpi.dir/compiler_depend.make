# Empty compiler generated dependencies file for ars_mpi.
# This may be replaced when dependencies are built.
