file(REMOVE_RECURSE
  "CMakeFiles/ars_mpi.dir/collectives.cpp.o"
  "CMakeFiles/ars_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/ars_mpi.dir/dpm.cpp.o"
  "CMakeFiles/ars_mpi.dir/dpm.cpp.o.d"
  "CMakeFiles/ars_mpi.dir/proc.cpp.o"
  "CMakeFiles/ars_mpi.dir/proc.cpp.o.d"
  "CMakeFiles/ars_mpi.dir/system.cpp.o"
  "CMakeFiles/ars_mpi.dir/system.cpp.o.d"
  "libars_mpi.a"
  "libars_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
