# Empty dependencies file for ars_commander.
# This may be replaced when dependencies are built.
