file(REMOVE_RECURSE
  "CMakeFiles/ars_commander.dir/commander.cpp.o"
  "CMakeFiles/ars_commander.dir/commander.cpp.o.d"
  "libars_commander.a"
  "libars_commander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ars_commander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
