file(REMOVE_RECURSE
  "libars_commander.a"
)
