# Empty compiler generated dependencies file for bench_table1_states.
# This may be replaced when dependencies are built.
