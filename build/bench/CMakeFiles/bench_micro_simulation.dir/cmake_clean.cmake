file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simulation.dir/bench_micro_simulation.cpp.o"
  "CMakeFiles/bench_micro_simulation.dir/bench_micro_simulation.cpp.o.d"
  "bench_micro_simulation"
  "bench_micro_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
