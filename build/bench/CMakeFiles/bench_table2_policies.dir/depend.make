# Empty dependencies file for bench_table2_policies.
# This may be replaced when dependencies are built.
