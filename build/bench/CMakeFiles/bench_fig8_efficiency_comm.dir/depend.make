# Empty dependencies file for bench_fig8_efficiency_comm.
# This may be replaced when dependencies are built.
