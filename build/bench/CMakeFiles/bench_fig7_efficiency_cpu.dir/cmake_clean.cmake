file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_efficiency_cpu.dir/bench_fig7_efficiency_cpu.cpp.o"
  "CMakeFiles/bench_fig7_efficiency_cpu.dir/bench_fig7_efficiency_cpu.cpp.o.d"
  "bench_fig7_efficiency_cpu"
  "bench_fig7_efficiency_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_efficiency_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
