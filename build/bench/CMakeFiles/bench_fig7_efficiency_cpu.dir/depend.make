# Empty dependencies file for bench_fig7_efficiency_cpu.
# This may be replaced when dependencies are built.
