# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_xmlproto[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_hpcm[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_registry[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_commander[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
