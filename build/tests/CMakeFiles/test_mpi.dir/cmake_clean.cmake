file(REMOVE_RECURSE
  "CMakeFiles/test_mpi.dir/mpi/collectives_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/collectives_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/commops_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/commops_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/dpm_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/dpm_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/p2p_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/p2p_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/stress_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/stress_test.cpp.o.d"
  "test_mpi"
  "test_mpi.pdb"
  "test_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
