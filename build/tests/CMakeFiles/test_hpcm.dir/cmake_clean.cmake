file(REMOVE_RECURSE
  "CMakeFiles/test_hpcm.dir/hpcm/checkpoint_test.cpp.o"
  "CMakeFiles/test_hpcm.dir/hpcm/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_hpcm.dir/hpcm/concurrent_test.cpp.o"
  "CMakeFiles/test_hpcm.dir/hpcm/concurrent_test.cpp.o.d"
  "CMakeFiles/test_hpcm.dir/hpcm/migration_test.cpp.o"
  "CMakeFiles/test_hpcm.dir/hpcm/migration_test.cpp.o.d"
  "CMakeFiles/test_hpcm.dir/hpcm/property_test.cpp.o"
  "CMakeFiles/test_hpcm.dir/hpcm/property_test.cpp.o.d"
  "CMakeFiles/test_hpcm.dir/hpcm/schema_test.cpp.o"
  "CMakeFiles/test_hpcm.dir/hpcm/schema_test.cpp.o.d"
  "CMakeFiles/test_hpcm.dir/hpcm/stateregistry_test.cpp.o"
  "CMakeFiles/test_hpcm.dir/hpcm/stateregistry_test.cpp.o.d"
  "test_hpcm"
  "test_hpcm.pdb"
  "test_hpcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
