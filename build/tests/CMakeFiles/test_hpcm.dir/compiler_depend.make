# Empty compiler generated dependencies file for test_hpcm.
# This may be replaced when dependencies are built.
