# Empty compiler generated dependencies file for test_xmlproto.
# This may be replaced when dependencies are built.
