file(REMOVE_RECURSE
  "CMakeFiles/test_xmlproto.dir/xmlproto/fuzz_test.cpp.o"
  "CMakeFiles/test_xmlproto.dir/xmlproto/fuzz_test.cpp.o.d"
  "CMakeFiles/test_xmlproto.dir/xmlproto/messages_test.cpp.o"
  "CMakeFiles/test_xmlproto.dir/xmlproto/messages_test.cpp.o.d"
  "CMakeFiles/test_xmlproto.dir/xmlproto/xml_test.cpp.o"
  "CMakeFiles/test_xmlproto.dir/xmlproto/xml_test.cpp.o.d"
  "test_xmlproto"
  "test_xmlproto.pdb"
  "test_xmlproto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xmlproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
