
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/monitor/adaptive_test.cpp" "tests/CMakeFiles/test_monitor.dir/monitor/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/test_monitor.dir/monitor/adaptive_test.cpp.o.d"
  "/root/repo/tests/monitor/monitor_test.cpp" "tests/CMakeFiles/test_monitor.dir/monitor/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/test_monitor.dir/monitor/monitor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/ars_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/ars_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ars_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ars_host.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlproto/CMakeFiles/ars_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ars_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ars_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
