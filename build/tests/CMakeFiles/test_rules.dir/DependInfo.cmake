
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rules/engine_test.cpp" "tests/CMakeFiles/test_rules.dir/rules/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_rules.dir/rules/engine_test.cpp.o.d"
  "/root/repo/tests/rules/expr_test.cpp" "tests/CMakeFiles/test_rules.dir/rules/expr_test.cpp.o" "gcc" "tests/CMakeFiles/test_rules.dir/rules/expr_test.cpp.o.d"
  "/root/repo/tests/rules/policy_test.cpp" "tests/CMakeFiles/test_rules.dir/rules/policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_rules.dir/rules/policy_test.cpp.o.d"
  "/root/repo/tests/rules/rulefile_test.cpp" "tests/CMakeFiles/test_rules.dir/rules/rulefile_test.cpp.o" "gcc" "tests/CMakeFiles/test_rules.dir/rules/rulefile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/ars_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlproto/CMakeFiles/ars_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ars_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
