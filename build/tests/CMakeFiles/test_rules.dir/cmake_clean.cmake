file(REMOVE_RECURSE
  "CMakeFiles/test_rules.dir/rules/engine_test.cpp.o"
  "CMakeFiles/test_rules.dir/rules/engine_test.cpp.o.d"
  "CMakeFiles/test_rules.dir/rules/expr_test.cpp.o"
  "CMakeFiles/test_rules.dir/rules/expr_test.cpp.o.d"
  "CMakeFiles/test_rules.dir/rules/policy_test.cpp.o"
  "CMakeFiles/test_rules.dir/rules/policy_test.cpp.o.d"
  "CMakeFiles/test_rules.dir/rules/rulefile_test.cpp.o"
  "CMakeFiles/test_rules.dir/rules/rulefile_test.cpp.o.d"
  "test_rules"
  "test_rules.pdb"
  "test_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
