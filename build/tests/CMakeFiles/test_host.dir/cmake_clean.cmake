file(REMOVE_RECURSE
  "CMakeFiles/test_host.dir/host/cpu_test.cpp.o"
  "CMakeFiles/test_host.dir/host/cpu_test.cpp.o.d"
  "CMakeFiles/test_host.dir/host/host_test.cpp.o"
  "CMakeFiles/test_host.dir/host/host_test.cpp.o.d"
  "CMakeFiles/test_host.dir/host/property_test.cpp.o"
  "CMakeFiles/test_host.dir/host/property_test.cpp.o.d"
  "test_host"
  "test_host.pdb"
  "test_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
