file(REMOVE_RECURSE
  "CMakeFiles/test_commander.dir/commander/commander_test.cpp.o"
  "CMakeFiles/test_commander.dir/commander/commander_test.cpp.o.d"
  "test_commander"
  "test_commander.pdb"
  "test_commander[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
