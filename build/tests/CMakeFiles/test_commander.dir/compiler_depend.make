# Empty compiler generated dependencies file for test_commander.
# This may be replaced when dependencies are built.
