
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/policy_lab.cpp" "examples/CMakeFiles/policy_lab.dir/policy_lab.cpp.o" "gcc" "examples/CMakeFiles/policy_lab.dir/policy_lab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ars_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ars_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/ars_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/commander/CMakeFiles/ars_commander.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/ars_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/ars_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcm/CMakeFiles/ars_hpcm.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlproto/CMakeFiles/ars_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ars_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ars_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ars_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ars_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ars_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
