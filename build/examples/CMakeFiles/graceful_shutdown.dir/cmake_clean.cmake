file(REMOVE_RECURSE
  "CMakeFiles/graceful_shutdown.dir/graceful_shutdown.cpp.o"
  "CMakeFiles/graceful_shutdown.dir/graceful_shutdown.cpp.o.d"
  "graceful_shutdown"
  "graceful_shutdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graceful_shutdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
