# Empty dependencies file for graceful_shutdown.
# This may be replaced when dependencies are built.
