file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_grid.dir/hierarchical_grid.cpp.o"
  "CMakeFiles/hierarchical_grid.dir/hierarchical_grid.cpp.o.d"
  "hierarchical_grid"
  "hierarchical_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
