# Empty compiler generated dependencies file for hierarchical_grid.
# This may be replaced when dependencies are built.
