// parallel_stencil: rescheduling one rank of a *parallel MPI program* —
// the workload class the paper's title promises.  A 4-rank 1-D Jacobi
// stencil exchanges halos every iteration; the rescheduler migrates the
// rank whose host becomes overloaded, while its neighbours keep sending to
// it (communication state transfer: in-flight halos are forwarded).
//
//   $ ./parallel_stencil

#include <cstdio>

#include "ars/apps/stencil.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"

using namespace ars;

int main() {
  core::ReschedulerRuntime runtime{
      core::make_cluster(5, rules::paper_policy2())};
  runtime.start_rescheduler();

  apps::Stencil1D::Params params;
  params.cells_per_rank = 2048;
  params.iterations = 120;
  params.work_per_cell = 1.0e-3;  // ~2 s per iteration per rank
  constexpr int kRanks = 4;
  std::vector<apps::Stencil1D::RankResult> results(kRanks);

  // One rank per workstation; ws5 stays empty as the migration target.
  const hpcm::ApplicationSchema schema = apps::Stencil1D::schema(params);
  runtime.scheduler().register_schema(schema);
  runtime.middleware().launch_world(
      {"ws1", "ws2", "ws3", "ws4"}, apps::Stencil1D::make(params, &results),
      "stencil", schema);

  // ws3 (rank 2, with neighbours on both sides) gets overloaded.
  host::CpuHog load{runtime.host("ws3"), {.threads = 3}};
  runtime.engine().schedule_at(30.0, [&] { load.start(); });

  runtime.run_until(4000.0);

  const auto reference = apps::Stencil1D::reference_sums(params, kRanks);
  bool numerics_ok = true;
  std::printf("%-6s %-10s %-10s %-12s %s\n", "rank", "finished", "host",
              "migrations", "sum check");
  for (int r = 0; r < kRanks; ++r) {
    const auto& res = results[static_cast<std::size_t>(r)];
    const bool match =
        res.finished && std::abs(res.local_sum - reference[r]) < 1e-6;
    numerics_ok = numerics_ok && match;
    std::printf("%-6d %-10s %-10s %-12d %s\n", r,
                res.finished ? "yes" : "NO", res.finished_on.c_str(),
                res.migrations, match ? "exact" : "MISMATCH");
  }

  int total_migrations = 0;
  for (const auto& r : results) {
    total_migrations += r.migrations;
  }
  for (const auto& t : runtime.middleware().history()) {
    std::printf("\nmigrated %s: %s -> %s in %.2f s while its neighbours "
                "kept exchanging halos\n",
                t.process.c_str(), t.source.c_str(), t.destination.c_str(),
                t.total());
  }
  const bool ok = numerics_ok && total_migrations >= 1;
  std::printf("\n%s\n",
              ok ? "OK - a rank of a live MPI job was rescheduled without "
                   "disturbing the numerics"
                 : "FAILED - see above");
  return ok ? 0 : 1;
}
