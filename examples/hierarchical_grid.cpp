// hierarchical_grid: the paper's §3.2 hierarchy — "each local system has
// its own registry/scheduler and each registry/scheduler has its own upper
// level registry/scheduler", e.g. one per cluster plus one per Virtual
// Organization.
//
// Two clusters (A: ws_a1..ws_a2, B: ws_b1..ws_b2) each run a local
// registry; both report health to an organization-level registry on the
// head node.  Cluster A is fully loaded, so its registry cannot place the
// overloaded application locally and escalates the consult to the parent,
// which knows cluster B's free hosts.
//
//   $ ./hierarchical_grid

#include <cstdio>

#include "ars/apps/test_tree.hpp"
#include "ars/commander/commander.hpp"
#include "ars/host/hog.hpp"
#include "ars/monitor/monitor.hpp"
#include "ars/registry/registry.hpp"

using namespace ars;

int main() {
  sim::Engine engine;
  net::Network network{engine};

  std::vector<std::unique_ptr<host::Host>> hosts;
  for (const char* name : {"head", "ws_a1", "ws_a2", "ws_b1", "ws_b2"}) {
    host::HostSpec spec;
    spec.name = name;
    hosts.push_back(std::make_unique<host::Host>(engine, spec));
    hosts.back()->set_ambient_process_count(60);
    network.attach(*hosts.back());
  }
  const auto host_of = [&](const std::string& name) -> host::Host& {
    for (auto& h : hosts) {
      if (h->name() == name) {
        return *h;
      }
    }
    throw std::out_of_range(name);
  };

  mpi::MpiSystem mpi{engine, network};
  hpcm::MigrationEngine middleware{mpi};
  const rules::MigrationPolicy policy = rules::paper_policy2();

  // Organization-level registry on the head node.
  registry::Registry::Config org_config;
  org_config.policy = policy;
  registry::Registry org{host_of("head"), network, org_config};
  org.start();

  // Per-cluster registries, children of the organization registry.
  const auto make_cluster_registry = [&](const std::string& on) {
    registry::Registry::Config config;
    config.policy = policy;
    config.parent_host = "head";
    config.parent_port = org.port();
    auto reg = std::make_unique<registry::Registry>(host_of(on), network,
                                                    config);
    reg->start();
    return reg;
  };
  auto registry_a = make_cluster_registry("ws_a1");
  auto registry_b = make_cluster_registry("ws_b1");

  // Monitors and commanders: cluster A hosts report to registry A, cluster
  // B hosts to registry B — and additionally to the organization registry,
  // which needs global knowledge to serve escalations.
  std::vector<std::unique_ptr<commander::Commander>> commanders;
  std::vector<std::unique_ptr<monitor::Monitor>> monitors;
  const auto deploy = [&](const std::string& on, registry::Registry& local) {
    commander::Commander::Config commander_config;
    auto cmd = std::make_unique<commander::Commander>(host_of(on), network,
                                                      middleware,
                                                      commander_config);
    cmd->start();
    for (registry::Registry* target : {&local, &org}) {
      monitor::Monitor::Config mc;
      mc.registry_host = target->host_name();
      mc.registry_port = target->port();
      mc.commander_port = cmd->port();
      mc.policy = policy;
      monitors.push_back(std::make_unique<monitor::Monitor>(host_of(on),
                                                            network, mc));
      monitors.back()->start();
    }
    commanders.push_back(std::move(cmd));
  };
  deploy("ws_a1", *registry_a);
  deploy("ws_a2", *registry_a);
  deploy("ws_b1", *registry_b);
  deploy("ws_b2", *registry_b);

  // Application on ws_a1; the whole of cluster A then becomes busy.
  apps::TestTree::Params params;
  params.levels = 16;
  apps::TestTree::Result result;
  const hpcm::ApplicationSchema schema = apps::TestTree::schema(params);
  org.register_schema(schema);
  registry_a->register_schema(schema);
  middleware.launch("ws_a1", apps::TestTree::make(params, &result),
                    "test_tree", schema);
  host::CpuHog load_a1{host_of("ws_a1"), {.threads = 3}};
  host::CpuHog load_a2{host_of("ws_a2"), {.threads = 2}};
  engine.schedule_at(20.0, [&] {
    load_a1.start();
    load_a2.start();
  });

  engine.run_until(1500.0);

  bool escalated = false;
  for (const auto& d : registry_a->decisions()) {
    escalated = escalated || d.escalated;
  }
  std::printf("cluster A registry decisions: %zu (escalated: %s)\n",
              registry_a->decisions().size(), escalated ? "yes" : "no");
  std::printf("test_tree finished on %s at %.1f s, sum %s, migrations %d\n",
              result.finished_on.c_str(), result.finished_at,
              result.sum == apps::TestTree::expected_sum(params) ? "correct"
                                                                 : "WRONG",
              result.migrations);

  const bool crossed_domain =
      result.finished_on == "ws_b1" || result.finished_on == "ws_b2";
  const bool ok = result.finished && escalated && crossed_domain &&
                  result.sum == apps::TestTree::expected_sum(params);
  std::printf("\n%s\n",
              ok ? "OK - consult escalated to the organization registry and "
                   "the process crossed control domains"
                 : "FAILED - see above");
  return ok ? 0 : 1;
}
