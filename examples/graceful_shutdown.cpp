// graceful_shutdown: the fault-tolerance use case from the paper's
// conclusion — "reschedule when the machine will shut down, intrusion is
// detected" — as an administrative evacuation.
//
// Two long-running applications compute on ws2.  At t=60 the operator
// announces ws2 is going down for maintenance; the registry migrates both
// processes away (each to a first-fit destination) and never places work
// on ws2 again.  Both applications finish elsewhere with correct results.
//
//   $ ./graceful_shutdown

#include <cstdio>

#include "ars/apps/matmul.hpp"
#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"

using namespace ars;

int main() {
  core::ReschedulerRuntime runtime{
      core::make_cluster(3, rules::paper_policy2())};
  runtime.start_rescheduler();

  apps::TestTree::Params tree_params;
  tree_params.levels = 17;  // ~98 s of work
  apps::TestTree::Result tree_result;
  runtime.launch_app("ws2", apps::TestTree::make(tree_params, &tree_result),
                     "test_tree", apps::TestTree::schema(tree_params));

  apps::MatMul::Params matmul_params;
  matmul_params.n = 96;  // ~35 s of work
  apps::MatMul::Result matmul_result;
  runtime.launch_app("ws2", apps::MatMul::make(matmul_params, &matmul_result),
                     "matmul", apps::MatMul::schema(matmul_params));

  runtime.engine().schedule_at(20.0, [&] {
    std::printf("[%.0f s] operator: ws2 is going down for maintenance\n",
                runtime.engine().now());
    runtime.evacuate_host("ws2", "planned shutdown");
  });

  runtime.run_until(2000.0);

  std::printf("test_tree: finished=%s on %s, sum %s, migrations=%d\n",
              tree_result.finished ? "yes" : "NO",
              tree_result.finished_on.c_str(),
              tree_result.sum == apps::TestTree::expected_sum(tree_params)
                  ? "correct"
                  : "WRONG",
              tree_result.migrations);
  std::printf("matmul:    finished=%s on %s, checksum %s, migrations=%d\n",
              matmul_result.finished ? "yes" : "NO",
              matmul_result.finished_on.c_str(),
              matmul_result.checksum ==
                      apps::MatMul::expected_checksum(matmul_params)
                  ? "correct"
                  : "WRONG",
              matmul_result.migrations);
  std::printf("ws2 process table after evacuation: %zu entries\n",
              runtime.host("ws2").processes().count());

  const bool ok =
      tree_result.finished && matmul_result.finished &&
      tree_result.finished_on != "ws2" && matmul_result.finished_on != "ws2" &&
      tree_result.sum == apps::TestTree::expected_sum(tree_params) &&
      matmul_result.checksum == apps::MatMul::expected_checksum(matmul_params);
  std::printf("\n%s\n", ok ? "OK - host drained without losing any work"
                           : "FAILED - see above");
  return ok ? 0 : 1;
}
