// Quickstart: the whole system in ~80 lines.
//
// Builds a 3-workstation cluster, deploys the autonomic rescheduler,
// launches the paper's "test_tree" application on ws1, then floods ws1 with
// competing work.  The monitor detects the sustained overload, the
// registry/scheduler picks a free destination, the commander signals the
// process, and HPCM migrates it — the program just watches it happen.
//
//   $ ./quickstart
//   $ ARS_TRACE_OUT=quickstart.trace.json ./quickstart   # + Perfetto trace

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"

using namespace ars;

int main() {
  // 1. A cluster of three Sun-Blade-like workstations with the paper's
  //    Policy 2 (migrate on load > 2 or > 150 processes).
  core::ReschedulerRuntime runtime{
      core::make_cluster(3, rules::paper_policy2())};
  runtime.start_rescheduler();

  // 2. A migration-enabled application: binary tree build/fill/sort/sum.
  apps::TestTree::Params params;
  params.levels = 16;  // ~49 s of work on an idle reference CPU
  apps::TestTree::Result result;
  runtime.launch_app("ws1", apps::TestTree::make(params, &result),
                     "test_tree", apps::TestTree::schema(params));

  // 3. At t=20 s, an "additional application" makes ws1 very busy.
  host::CpuHog additional{runtime.host("ws1"),
                          {.threads = 3, .name = "additional"}};
  runtime.engine().schedule_at(20.0, [&] { additional.start(); });

  // 4. Let the virtual cluster run for up to 20 minutes.
  runtime.run_until(1200.0);

  // 5. Report.
  std::printf("test_tree finished:   %s\n", result.finished ? "yes" : "NO");
  std::printf("finished on host:     %s\n", result.finished_on.c_str());
  std::printf("finished at:          %.2f s\n", result.finished_at);
  std::printf("tree sum:             %.0f (expected %.0f)\n", result.sum,
              apps::TestTree::expected_sum(params));
  std::printf("migrations:           %d\n", result.migrations);

  for (const auto& t : runtime.middleware().history()) {
    std::printf("\nmigration %s -> %s\n", t.source.c_str(),
                t.destination.c_str());
    std::printf("  signalled at        %.2f s\n", t.requested_at);
    std::printf("  poll-point reached  +%.2f s\n", t.reach_poll_point());
    std::printf("  initialized process +%.2f s (MPI-2 spawn & merge)\n",
                t.initialization());
    std::printf("  resumed on dest     +%.2f s\n",
                t.resumed_at - t.requested_at);
    std::printf("  fully migrated      +%.2f s (%.1f MB of state)\n",
                t.total(), t.state_bytes / 1e6);
  }
  // 6. Optional: dump the structured event trace (migration phase spans,
  //    scheduler decision audit, monitor state transitions) for
  //    chrome://tracing or https://ui.perfetto.dev.
  const char* path = std::getenv("ARS_TRACE_OUT");
  if (path != nullptr && *path != '\0') {
    std::ofstream out{path};
    out << runtime.tracer().to_chrome_trace();
    if (out) {
      std::printf("\nwrote Chrome trace to %s (%zu events)\n", path,
                  runtime.tracer().events().size());
    } else {
      std::fprintf(stderr, "\nFAILED to write Chrome trace to %s\n", path);
    }
  }

  const bool ok = result.finished && result.migrations == 1 &&
                  result.sum == apps::TestTree::expected_sum(params);
  std::printf("\n%s\n", ok ? "OK - autonomic rescheduling worked"
                           : "FAILED - see above");
  return ok ? 0 : 1;
}
