// policy_lab: author your own migration policy in the text format, load it,
// and compare it against the paper's built-in policies on a contended
// cluster.  Demonstrates the rule/policy machinery as a user would drive
// it: parse_policy(), custom thresholds, per-state monitoring frequencies.
//
//   $ ./policy_lab

#include <cstdio>
#include <string>
#include <vector>

#include "ars/apps/test_tree.hpp"
#include "ars/core/runtime.hpp"
#include "ars/host/hog.hpp"
#include "ars/net/commhog.hpp"

using namespace ars;

namespace {

struct Outcome {
  std::string policy;
  bool finished = false;
  double total = 0.0;
  std::string destination = "-";
};

Outcome evaluate(rules::MigrationPolicy policy) {
  Outcome outcome;
  outcome.policy = policy.name();

  core::ReschedulerRuntime runtime{core::make_cluster(4, std::move(policy))};
  runtime.start_rescheduler();

  // ws2 is communication-busy; ws3 moderately loaded; ws4 free.
  net::CommHog comm{runtime.network(),
                    {.src = "ws2", .dst = "ws3", .rate_bps = 6.0e6}};
  comm.start();
  host::CpuHog ws3_load{runtime.host("ws3"), {.threads = 1}};
  ws3_load.start();

  apps::TestTree::Params params;
  params.levels = 17;
  apps::TestTree::Result app;
  runtime.launch_app("ws1", apps::TestTree::make(params, &app), "test_tree",
                     apps::TestTree::schema(params));
  host::CpuHog additional{runtime.host("ws1"), {.threads = 3}};
  runtime.engine().schedule_at(15.0, [&] { additional.start(); });

  runtime.run_until(3000.0);
  outcome.finished = app.finished;
  outcome.total = app.finished_at;
  for (const auto& t : runtime.middleware().history()) {
    if (t.succeeded) {
      outcome.destination = t.destination;
      break;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  // A user-authored policy: trigger earlier than the paper's (load > 1.5),
  // demand an almost-idle destination, and monitor overloaded hosts twice
  // a second... I mean every 4 seconds.
  const char* custom_text =
      "policy: eager-and-picky\n"
      "trigger: load1 > 1.5\n"
      "trigger: processes > 120\n"
      "gate: net_flow <= 4000000\n"
      "dest: load1 < 0.5\n"
      "dest: net_flow <= 1000000\n"
      "freq_free: 10\n"
      "freq_busy: 8\n"
      "freq_overloaded: 4\n"
      "warmup: 30\n";
  auto custom = rules::parse_policy(custom_text);
  if (!custom.has_value()) {
    std::printf("policy parse error: %s\n",
                custom.error().to_string().c_str());
    return 1;
  }
  std::printf("loaded custom policy:\n%s\n", custom->to_text().c_str());

  const std::vector<Outcome> outcomes = {
      evaluate(rules::paper_policy1()),
      evaluate(rules::paper_policy2()),
      evaluate(rules::paper_policy3()),
      evaluate(*custom),
  };

  std::printf("%-16s %-10s %-14s %s\n", "policy", "finished",
              "total time (s)", "migrated to");
  for (const Outcome& o : outcomes) {
    std::printf("%-16s %-10s %-14.2f %s\n", o.policy.c_str(),
                o.finished ? "yes" : "NO", o.total, o.destination.c_str());
  }

  // The eager policy should migrate sooner and therefore finish no later
  // than the paper's Policy 3 here.
  const bool ok = outcomes[3].finished &&
                  outcomes[3].total <= outcomes[0].total &&
                  outcomes[3].destination == "ws4";
  std::printf("\n%s\n", ok ? "OK - custom policy beats staying put"
                           : "unexpected outcome - inspect the table");
  return ok ? 0 : 1;
}
