// heterogeneous_migration: HPCM's headline feature — migrating a running
// process between architectures with different byte orders and speeds.
//
// ws_sparc is a big-endian, 1.0x reference workstation (the paper's
// UltraSPARC).  ws_x86 is a little-endian machine twice as fast.  A matrix
// multiplication starts on the SPARC box; mid-run we command a migration.
// The state crosses through HPCM's canonical (big-endian, type-tagged)
// encoding, resumes on the x86 host, and the final checksum is bit-exact.
//
//   $ ./heterogeneous_migration

#include <cstdio>

#include "ars/apps/matmul.hpp"
#include "ars/hpcm/migration.hpp"

using namespace ars;

int main() {
  sim::Engine engine;
  net::Network network{engine};

  host::HostSpec sparc;
  sparc.name = "ws_sparc";
  sparc.byte_order = support::ByteOrder::kBigEndian;
  sparc.os = "SunOS 5.8";
  sparc.cpu_speed = 1.0;
  host::Host sparc_host{engine, sparc};
  network.attach(sparc_host);

  host::HostSpec x86;
  x86.name = "ws_x86";
  x86.byte_order = support::ByteOrder::kLittleEndian;
  x86.os = "Linux 2.4";
  x86.cpu_speed = 2.0;  // twice the reference speed
  host::Host x86_host{engine, x86};
  network.attach(x86_host);

  mpi::MpiSystem mpi{engine, network};
  hpcm::MigrationEngine middleware{mpi};

  apps::MatMul::Params params;
  params.n = 96;
  apps::MatMul::Result result;
  const mpi::RankId id =
      middleware.launch("ws_sparc", apps::MatMul::make(params, &result),
                        "matmul", apps::MatMul::schema(params));

  // Let it compute for a while on the SPARC box, then move it.
  engine.schedule_at(10.0, [&] {
    std::printf("[%.1f s] requesting migration ws_sparc -> ws_x86\n",
                engine.now());
    middleware.request_migration(id, "ws_x86");
  });

  while (mpi.live_procs() > 0) {
    engine.run_until(engine.now() + 10.0);
  }

  const double expected = apps::MatMul::expected_checksum(params);
  std::printf("matmul(%dx%d) finished on %s at %.2f s\n", params.n, params.n,
              result.finished_on.c_str(), result.finished_at);
  std::printf("checksum: %.12g (expected %.12g) -> %s\n", result.checksum,
              expected,
              result.checksum == expected ? "bit-exact" : "MISMATCH");
  for (const auto& t : middleware.history()) {
    std::printf("state moved: %.2f MB, big-endian canonical form, "
                "migration took %.2f s\n",
                t.state_bytes / 1e6, t.total());
  }

  // The run must beat an un-migrated SPARC-only estimate: remaining work
  // completed twice as fast on the x86 host.
  const bool ok = result.finished && result.checksum == expected &&
                  result.finished_on == "ws_x86" && result.migrations == 1;
  std::printf("\n%s\n",
              ok ? "OK - heterogeneous migration preserved the computation"
                 : "FAILED");
  return ok ? 0 : 1;
}
