// trace_critpath: reconstruct per-transaction DAGs from JSONL trace exports
// and report the migration freeze-window breakdown per phase.
//
// Pre-copy traces carry a "migration.precopy" span for the overlapped
// iterative rounds; it is reported as its own phase and excluded from the
// freeze aggregate (freeze = init + collect + eager + ack — the
// stop-the-world phases only).
//
// Each input file is one trace export (one run / one seed); feeding the tool
// a whole campaign's trace directory yields cross-seed percentiles.
//
// Usage:
//   trace_critpath [--json] [--per-txn] [--check-dags]
//                  [--check-sum-tolerance=FRAC] trace.jsonl...
//
// --check-dags         exit 1 if any transaction fails DAG validation
//                      (orphaned pspan references, parent cycles, more than
//                      one migration span per transaction).
// --check-sum-tolerance=FRAC
//                      exit 1 if, for any committed migration, the phase
//                      spans leave more than FRAC of the end-to-end
//                      migration span's wall clock uncovered — the phase
//                      breakdown must explain the whole span.
// --per-txn            print one line per migration transaction.
// --json               emit the aggregate report as JSON instead of text.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ars/obs/critpath.hpp"

namespace {

namespace critpath = ars::obs::critpath;

std::optional<std::string> arg_value(const std::string& arg,
                                     const std::string& flag) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return arg.substr(prefix.size());
  }
  return std::nullopt;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "trace_critpath: " << message << "\n"
            << "usage: trace_critpath [--json] [--per-txn] [--check-dags]\n"
            << "         [--check-sum-tolerance=FRAC] trace.jsonl...\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool per_txn = false;
  bool check_dags = false;
  double sum_tolerance = -1.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--per-txn") {
      per_txn = true;
    } else if (arg == "--check-dags") {
      check_dags = true;
    } else if (auto value = arg_value(arg, "--check-sum-tolerance")) {
      sum_tolerance = std::stod(*value);
      if (sum_tolerance < 0.0) {
        usage_error("--check-sum-tolerance must be >= 0");
      }
    } else if (!arg.empty() && arg.front() == '-') {
      usage_error("unknown argument: " + arg);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage_error("no trace files given");
  }

  critpath::Report report;
  int invalid_dags = 0;
  int coverage_failures = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "trace_critpath: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto events = critpath::parse_jsonl(text.str());
    if (!events.has_value()) {
      std::cerr << "trace_critpath: " << path << ": "
                << events.error().to_string() << "\n";
      return 2;
    }
    const auto txns = critpath::group_transactions(*events);
    for (const critpath::Transaction& txn : txns) {
      const critpath::Validation verdict = critpath::validate(txn);
      if (!verdict.ok) {
        ++invalid_dags;
        for (const std::string& problem : verdict.problems) {
          std::cerr << path << ": txn " << txn.txn << ": " << problem << "\n";
        }
      }
      if (sum_tolerance >= 0.0 && txn.has_migration &&
          txn.outcome == "committed" && txn.migration_s > 0.0) {
        const double gap = critpath::coverage_gap_s(txn);
        if (gap > sum_tolerance * txn.migration_s) {
          ++coverage_failures;
          std::cerr << path << ": txn " << txn.txn << ": phase spans leave "
                    << gap << "s of a " << txn.migration_s
                    << "s migration unexplained\n";
        }
      }
      if (per_txn && txn.has_migration) {
        std::cout << "txn " << txn.txn << " root=" << txn.root_name;
        if (txn.cause_txn != 0) {
          std::cout << " cause_txn=" << txn.cause_txn;
        }
        std::cout << " outcome=" << (txn.outcome.empty() ? "?" : txn.outcome)
                  << " total=" << txn.migration_s * 1e3 << "ms"
                  << " freeze=" << txn.freeze_s * 1e3 << "ms";
        for (const auto& [phase, seconds] : txn.phase_s) {
          std::cout << " " << phase << "=" << seconds * 1e3 << "ms";
        }
        std::cout << "\n";
      }
    }
    critpath::accumulate(report, txns);
  }

  if (json) {
    std::cout << critpath::report_to_json(report).dump() << "\n";
  } else {
    std::cout << critpath::format_report(report);
  }
  if (check_dags && invalid_dags > 0) {
    std::cerr << "trace_critpath: " << invalid_dags
              << " transactions failed DAG validation\n";
    return 1;
  }
  if (coverage_failures > 0) {
    std::cerr << "trace_critpath: " << coverage_failures
              << " migrations failed the phase-coverage check\n";
    return 1;
  }
  return 0;
}
