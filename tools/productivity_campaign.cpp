// Productivity campaign driver: run a job-queue plan through the runtime
// twice — static worlds vs. the registry's resize planner — and print the
// makespan / utilization comparison.
//
//   productivity_campaign [--plan plans/productivity-queue.json] [--deadline S]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ars/apps/productivity.hpp"

namespace {

void print_row(const char* label, const ars::apps::CampaignResult& r) {
  std::printf("%-16s %9.1f s   %6.1f %%   %4d commanded   %4d committed   %s\n",
              label, r.makespan, 100.0 * r.utilization, r.resizes_commanded,
              r.resizes_committed, r.all_finished ? "all finished" : "TIMEOUT");
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_path = "plans/productivity-queue.json";
  double deadline = 36000.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--plan" && i + 1 < argc) {
      plan_path = argv[++i];
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--plan FILE.json] [--deadline SECONDS]\n",
                   argv[0]);
      return 2;
    }
  }

  std::ifstream in(plan_path);
  if (!in) {
    std::fprintf(stderr, "cannot open plan: %s\n", plan_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto plan = ars::apps::load_queue_plan(buffer.str());
  if (!plan) {
    std::fprintf(stderr, "bad plan: %s\n", plan.error().to_string().c_str());
    return 2;
  }

  std::printf("plan %s: %zu jobs on %d hosts\n", plan_path.c_str(),
              plan.value().jobs.size(), plan.value().hosts);
  const auto rigid = ars::apps::run_queue(plan.value(), false, deadline);
  const auto malleable = ars::apps::run_queue(plan.value(), true, deadline);

  std::printf("%-16s %11s   %8s   %-16s %-16s\n", "mode", "makespan",
              "util", "resizes", "");
  print_row("rigid", rigid);
  print_row("malleable", malleable);

  if (rigid.makespan > 0.0) {
    std::printf("makespan improvement: %.1f %%   utilization delta: %+.1f pp\n",
                100.0 * (rigid.makespan - malleable.makespan) / rigid.makespan,
                100.0 * (malleable.utilization - rigid.utilization));
  }

  const bool improved = malleable.all_finished && rigid.all_finished &&
                        malleable.makespan < rigid.makespan &&
                        malleable.utilization > rigid.utilization;
  return improved ? 0 : 1;
}
