// chaos_campaign: seed-sweep driver for the ars::chaos subsystem.
//
// Runs the standard chaos scenario (scenario.hpp) over a seed range for each
// requested fault plan, checks the invariants after every run, and re-runs a
// sample of seeds (always every failing seed) to prove the simulation replays
// byte-identically.  Emits a human summary on stdout and, with --out, a JSON
// report.  Exit status is nonzero iff any invariant was violated or any
// replay diverged.
//
// Usage:
//   chaos_campaign [--seeds=N] [--seed-base=N] [--plan=<builtin|file.json>]...
//                  [--hosts=N] [--apps=N] [--horizon=T] [--replay-passing=N]
//                  [--sabotage-lease-expiry] [--sabotage-migration-rollback]
//                  [--verify-scan-equivalence] [--delta-heartbeats]
//                  [--precopy]
//                  [--out=report.json] [--bundle-dir=DIR] [--trace-dir=DIR]
//                  [--trace-out=FILE] [--metrics-out=FILE]
//                  [--replay-bundle=FILE] [--list-plans]
//
// --bundle-dir writes a flight-recorder bundle (scenario + seed + fault plan
// + violations + trace ring + metrics snapshot, one JSON file) for every
// failing seed; --replay-bundle re-runs such a bundle and exits 0 iff it
// reproduces the recorded trace hash and violations.  --trace-dir exports
// every seed's trace as JSONL for trace_critpath.
//
// The uniform bench flags are honoured too (with ARS_TRACE_OUT /
// ARS_METRICS_OUT as environment fallbacks): --trace-out=FILE writes each
// seed's JSONL trace to FILE with a "<plan>_seed<N>" label spliced before
// the extension, and --metrics-out=FILE does the same with the scenario's
// metrics snapshot (JSON).
//
// --plan may be given multiple times; the default sweep covers every builtin
// plan plus a fault-free baseline.
//
// --verify-scan-equivalence runs every seed a second time with the registry
// forced onto its pre-index full-table scan (audits off in both runs, so the
// scan mode is the only difference) and requires the trace hash AND the
// canonical decision log to match byte-for-byte — the indexed scheduler must
// be observationally identical to the reference scan, under faults.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ars/chaos/faultplan.hpp"
#include "ars/chaos/flight_recorder.hpp"
#include "ars/chaos/scenario.hpp"
#include "ars/obs/json.hpp"
#include "ars/support/log.hpp"

#include "../bench/common.hpp"  // uniform --trace-out/--metrics-out handling

namespace {

using ars::chaos::FaultPlan;
using ars::chaos::ScenarioOptions;
using ars::chaos::ScenarioReport;

struct CampaignOptions {
  int seeds = 20;
  std::uint64_t seed_base = 1;
  std::vector<std::string> plans;  // builtin names or JSON file paths
  int hosts = 4;
  int apps = 3;
  double horizon = 700.0;
  int replay_passing = 3;  // additionally replay this many passing seeds
  bool sabotage_lease_expiry = false;
  bool sabotage_migration_rollback = false;
  int malleable_jobs = 0;
  bool sabotage_resize_rollback = false;
  bool verify_scan_equivalence = false;
  bool delta_heartbeats = false;
  bool precopy = false;  // iterative pre-copy migration + heavy-state apps
  std::string out_path;
  std::string bundle_dir;  // flight-recorder bundles for failing seeds
  std::string trace_dir;   // per-seed JSONL exports for trace_critpath
};

struct SeedResult {
  std::uint64_t seed = 0;
  bool ok = false;
  std::string violations;  // summary() when not ok
  std::uint64_t trace_hash = 0;
  std::uint64_t events_executed = 0;
  std::size_t migrations_succeeded = 0;
  std::size_t migrations_aborted = 0;
  std::size_t migrations_rolled_back = 0;
  std::size_t resizes_committed = 0;
  std::size_t resizes_aborted = 0;
  std::size_t resizes_rolled_back = 0;
  std::uint64_t messages_dropped = 0;
  std::size_t decisions = 0;
  std::uint64_t decision_log_hash = 0;
  bool replayed = false;
  bool replay_identical = true;
  bool scan_checked = false;
  bool scan_equivalent = true;
};

struct PlanResult {
  std::string plan_name;
  std::vector<SeedResult> seeds;
  int failures = 0;
  int replay_mismatches = 0;
  int scan_mismatches = 0;
  std::vector<std::string> bundles;  // flight-recorder bundle paths written
};

std::optional<std::string> arg_value(const std::string& arg,
                                     const std::string& flag) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return arg.substr(prefix.size());
  }
  return std::nullopt;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "chaos_campaign: " << message << "\n"
            << "usage: chaos_campaign [--seeds=N] [--seed-base=N]\n"
            << "         [--plan=<builtin|file.json>]... [--hosts=N]\n"
            << "         [--apps=N] [--horizon=T] [--replay-passing=N]\n"
            << "         [--sabotage-lease-expiry]\n"
            << "         [--sabotage-migration-rollback]\n"
            << "         [--malleable-jobs=N] [--sabotage-resize-rollback]\n"
            << "         [--verify-scan-equivalence]\n"
            << "         [--delta-heartbeats] [--precopy]\n"
            << "         [--out=report.json]\n"
            << "         [--bundle-dir=DIR] [--trace-dir=DIR]\n"
            << "         [--trace-out=FILE] [--metrics-out=FILE]\n"
            << "         [--replay-bundle=FILE] [--list-plans]\n";
  std::exit(2);
}

FaultPlan load_plan(const std::string& spec) {
  if (spec == "none") {
    return FaultPlan{"none"};
  }
  if (auto builtin = FaultPlan::builtin(spec); builtin.has_value()) {
    return *std::move(builtin);
  }
  std::ifstream in(spec);
  if (!in) {
    std::cerr << "chaos_campaign: --plan=" << spec
              << " is neither a builtin plan nor a readable file\n";
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto plan = FaultPlan::from_json(text.str());
  if (!plan.has_value()) {
    std::cerr << "chaos_campaign: " << spec << ": " << plan.error().message
              << "\n";
    std::exit(2);
  }
  return *std::move(plan);
}

ScenarioOptions make_scenario(const CampaignOptions& options,
                              const FaultPlan& plan, std::uint64_t seed,
                              bool legacy_scan = false) {
  ScenarioOptions scenario;
  scenario.hosts = options.hosts;
  scenario.apps = options.apps;
  scenario.horizon = options.horizon;
  scenario.seed = seed;
  scenario.plan = plan;
  scenario.sabotage_lease_expiry = options.sabotage_lease_expiry;
  scenario.sabotage_migration_rollback = options.sabotage_migration_rollback;
  scenario.malleable_jobs = options.malleable_jobs;
  scenario.sabotage_resize_rollback = options.sabotage_resize_rollback;
  scenario.delta_heartbeats = options.delta_heartbeats;
  scenario.precopy = options.precopy;
  scenario.legacy_scan = legacy_scan;
  // Equivalence runs compare the two scan modes, so the audit (which itself
  // forces the legacy scan) must be off for both sides.
  scenario.audit_decisions = !options.verify_scan_equivalence;
  // Trace exports and replay-mismatch bundles need the bytes, not just the
  // hash (failing runs keep their trace regardless).
  scenario.keep_trace = !options.trace_dir.empty() ||
                        !options.bundle_dir.empty() ||
                        !ars::bench::obs_export().trace_out.empty() ||
                        !ars::bench::obs_export().metrics_out.empty();
  return scenario;
}

ScenarioReport run_once(const CampaignOptions& options, const FaultPlan& plan,
                        std::uint64_t seed, bool legacy_scan = false) {
  return ars::chaos::run_scenario(
      make_scenario(options, plan, seed, legacy_scan));
}

/// Write one flight-recorder bundle; returns the path (empty on failure).
std::string record_bundle(const CampaignOptions& options,
                          const FaultPlan& plan, std::uint64_t seed,
                          const ScenarioReport& report,
                          const ars::chaos::FlightTrigger& trigger) {
  const std::string path = options.bundle_dir + "/bundle_" + plan.name() +
                           "_seed" + std::to_string(seed) + ".json";
  const auto bundle =
      ars::chaos::make_bundle(make_scenario(options, plan, seed), report,
                              trigger);
  if (const auto status = ars::chaos::write_bundle(path, bundle);
      !status.is_ok()) {
    std::cerr << "chaos_campaign: " << status.error().to_string() << "\n";
    return {};
  }
  std::cout << "  flight recorder: " << path << "\n";
  return path;
}

PlanResult sweep_plan(const CampaignOptions& options, const FaultPlan& plan) {
  PlanResult result;
  result.plan_name = plan.name();
  int passing_replays_left = options.replay_passing;
  for (int i = 0; i < options.seeds; ++i) {
    const std::uint64_t seed = options.seed_base + static_cast<std::uint64_t>(i);
    const ScenarioReport report = run_once(options, plan, seed);
    SeedResult seed_result;
    seed_result.seed = seed;
    seed_result.ok = report.ok();
    seed_result.trace_hash = report.trace_hash;
    seed_result.events_executed = report.events_executed;
    seed_result.migrations_succeeded = report.migrations_succeeded;
    seed_result.migrations_aborted = report.migrations_aborted;
    seed_result.migrations_rolled_back = report.migrations_rolled_back;
    seed_result.resizes_committed = report.resizes_committed;
    seed_result.resizes_aborted = report.resizes_aborted;
    seed_result.resizes_rolled_back = report.resizes_rolled_back;
    seed_result.messages_dropped = report.messages_dropped;
    seed_result.decisions = report.decisions;
    seed_result.decision_log_hash = report.decision_log_hash;
    if (!options.trace_dir.empty() && !report.trace_jsonl.empty()) {
      const std::string path = options.trace_dir + "/trace_" + plan.name() +
                               "_seed" + std::to_string(seed) + ".jsonl";
      std::filesystem::create_directories(options.trace_dir);
      std::ofstream trace_out(path);
      if (trace_out) {
        trace_out << report.trace_jsonl;
      } else {
        std::cerr << "chaos_campaign: cannot write " << path << "\n";
      }
    }
    // Uniform bench flags: one labelled file per plan/seed.
    const ars::bench::ObsExport& obs = ars::bench::obs_export();
    const std::string seed_label =
        plan.name() + "_seed" + std::to_string(seed);
    if (!obs.trace_out.empty() && !report.trace_jsonl.empty()) {
      const std::string path =
          ars::bench::labelled_path(obs.trace_out, seed_label);
      ars::bench::ensure_parent_dir(path);
      std::ofstream out(path);
      if (out) {
        out << report.trace_jsonl;
      } else {
        std::cerr << "chaos_campaign: cannot write " << path << "\n";
      }
    }
    if (!obs.metrics_out.empty() && !report.metrics_json.empty()) {
      const std::string path =
          ars::bench::labelled_path(obs.metrics_out, seed_label);
      ars::bench::ensure_parent_dir(path);
      std::ofstream out(path);
      if (out) {
        out << report.metrics_json << "\n";
      } else {
        std::cerr << "chaos_campaign: cannot write " << path << "\n";
      }
    }
    if (!report.ok()) {
      ++result.failures;
      seed_result.violations = report.invariants.summary();
      std::cout << "  seed " << seed << " FAIL\n";
      for (const ars::chaos::Violation& violation :
           report.invariants.violations) {
        std::cout << "    " << violation.invariant << " ["
                  << violation.subject << "]: " << violation.detail << "\n";
      }
      if (!options.bundle_dir.empty()) {
        const std::string path = record_bundle(
            options, plan, seed, report,
            {"invariant-violation", report.invariants.summary()});
        if (!path.empty()) {
          result.bundles.push_back(path);
        }
      }
    }
    // Replay every failing seed (a reproducer must reproduce) and the first
    // few passing ones; the rerun must be byte-identical.
    const bool replay = !report.ok() || passing_replays_left > 0;
    if (replay) {
      if (report.ok()) {
        --passing_replays_left;
      }
      const ScenarioReport again = run_once(options, plan, seed);
      seed_result.replayed = true;
      seed_result.replay_identical =
          again.trace_hash == report.trace_hash &&
          again.events_executed == report.events_executed;
      if (!seed_result.replay_identical) {
        ++result.replay_mismatches;
        std::cout << "  seed " << seed << " REPLAY MISMATCH: trace "
                  << report.trace_hash << " vs " << again.trace_hash << "\n";
        if (!options.bundle_dir.empty()) {
          const std::string path = record_bundle(
              options, plan, seed, report,
              {"replay-mismatch",
               "trace " + std::to_string(report.trace_hash) + " vs " +
                   std::to_string(again.trace_hash)});
          if (!path.empty()) {
            result.bundles.push_back(path);
          }
        }
      }
    }
    if (options.verify_scan_equivalence) {
      // Same seed, registry forced onto the reference full-table scan: the
      // run must be indistinguishable — trace and decision log included.
      const ScenarioReport legacy = run_once(options, plan, seed, true);
      seed_result.scan_checked = true;
      seed_result.scan_equivalent =
          legacy.trace_hash == report.trace_hash &&
          legacy.decisions == report.decisions &&
          legacy.decision_log_hash == report.decision_log_hash;
      if (!seed_result.scan_equivalent) {
        ++result.scan_mismatches;
        std::cout << "  seed " << seed << " SCAN MISMATCH: indexed decisions "
                  << report.decisions << " (log " << report.decision_log_hash
                  << ", trace " << report.trace_hash << ") vs legacy "
                  << legacy.decisions << " (log " << legacy.decision_log_hash
                  << ", trace " << legacy.trace_hash << ")\n";
      }
    }
    result.seeds.push_back(std::move(seed_result));
  }
  return result;
}

ars::obs::JsonValue to_json(const PlanResult& result) {
  ars::obs::JsonObject plan_object;
  plan_object["plan"] = ars::obs::JsonValue{result.plan_name};
  plan_object["failures"] =
      ars::obs::JsonValue{static_cast<double>(result.failures)};
  plan_object["replay_mismatches"] =
      ars::obs::JsonValue{static_cast<double>(result.replay_mismatches)};
  plan_object["scan_mismatches"] =
      ars::obs::JsonValue{static_cast<double>(result.scan_mismatches)};
  ars::obs::JsonArray seeds;
  for (const SeedResult& seed : result.seeds) {
    ars::obs::JsonObject seed_object;
    seed_object["seed"] =
        ars::obs::JsonValue{static_cast<double>(seed.seed)};
    seed_object["ok"] = ars::obs::JsonValue{seed.ok};
    if (!seed.violations.empty()) {
      seed_object["violations"] = ars::obs::JsonValue{seed.violations};
    }
    seed_object["trace_hash"] =
        ars::obs::JsonValue{std::to_string(seed.trace_hash)};
    seed_object["events_executed"] =
        ars::obs::JsonValue{static_cast<double>(seed.events_executed)};
    seed_object["migrations_succeeded"] = ars::obs::JsonValue{
        static_cast<double>(seed.migrations_succeeded)};
    seed_object["migrations_aborted"] = ars::obs::JsonValue{
        static_cast<double>(seed.migrations_aborted)};
    seed_object["migrations_rolled_back"] = ars::obs::JsonValue{
        static_cast<double>(seed.migrations_rolled_back)};
    seed_object["resizes_committed"] = ars::obs::JsonValue{
        static_cast<double>(seed.resizes_committed)};
    seed_object["resizes_aborted"] =
        ars::obs::JsonValue{static_cast<double>(seed.resizes_aborted)};
    seed_object["resizes_rolled_back"] = ars::obs::JsonValue{
        static_cast<double>(seed.resizes_rolled_back)};
    seed_object["messages_dropped"] =
        ars::obs::JsonValue{static_cast<double>(seed.messages_dropped)};
    seed_object["decisions"] =
        ars::obs::JsonValue{static_cast<double>(seed.decisions)};
    seed_object["decision_log_hash"] =
        ars::obs::JsonValue{std::to_string(seed.decision_log_hash)};
    if (seed.replayed) {
      seed_object["replay_identical"] =
          ars::obs::JsonValue{seed.replay_identical};
    }
    if (seed.scan_checked) {
      seed_object["scan_equivalent"] =
          ars::obs::JsonValue{seed.scan_equivalent};
    }
    seeds.push_back(ars::obs::JsonValue{std::move(seed_object)});
  }
  plan_object["seeds"] = ars::obs::JsonValue{std::move(seeds)};
  if (!result.bundles.empty()) {
    ars::obs::JsonArray bundles;
    for (const std::string& path : result.bundles) {
      bundles.push_back(ars::obs::JsonValue{path});
    }
    plan_object["bundles"] = ars::obs::JsonValue{std::move(bundles)};
  }
  return ars::obs::JsonValue{std::move(plan_object)};
}

/// --replay-bundle: re-run one flight-recorder bundle and report whether it
/// reproduces.  Exit 0 iff it does.
int replay_bundle_main(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "chaos_campaign: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto replay = ars::chaos::replay_bundle(text.str());
  if (!replay.has_value()) {
    std::cerr << "chaos_campaign: " << path << ": "
              << replay.error().to_string() << "\n";
    return 2;
  }
  std::cout << "bundle " << path << " (trigger: " << replay->trigger.kind
            << ")\n"
            << "  trace " << (replay->trace_identical ? "identical" : "DIVERGED")
            << " (" << replay->report.trace_hash << " vs recorded "
            << replay->recorded_trace_hash << ")\n"
            << "  violations "
            << (replay->violations_match ? "reproduced" : "DIFFER") << ": "
            << replay->report.invariants.summary() << "\n";
  if (!replay->reproduced()) {
    std::cout << "BUNDLE DOES NOT REPRODUCE\n";
    return 1;
  }
  std::cout << "BUNDLE REPRODUCES\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Hundreds of runs, each of which legitimately drops messages and crashes
  // hosts — the per-event warnings would swamp the campaign summary.
  ars::support::Logger::global().set_level(ars::support::LogLevel::kOff);
  CampaignOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-plans") {
      for (const std::string& name : FaultPlan::builtin_names()) {
        std::cout << name << "\n";
      }
      std::cout << "none\n";
      return 0;
    }
    if (auto dump = arg_value(arg, "--dump-plan")) {
      std::cout << load_plan(*dump).to_json() << "\n";
      return 0;
    }
    if (arg == "--sabotage-lease-expiry") {
      options.sabotage_lease_expiry = true;
    } else if (arg == "--sabotage-migration-rollback") {
      options.sabotage_migration_rollback = true;
    } else if (arg == "--sabotage-resize-rollback") {
      options.sabotage_resize_rollback = true;
    } else if (auto mjobs = arg_value(arg, "--malleable-jobs")) {
      options.malleable_jobs = std::stoi(*mjobs);
    } else if (arg == "--verify-scan-equivalence") {
      options.verify_scan_equivalence = true;
    } else if (arg == "--delta-heartbeats") {
      options.delta_heartbeats = true;
    } else if (arg == "--precopy") {
      options.precopy = true;
    } else if (auto value = arg_value(arg, "--seeds")) {
      options.seeds = std::stoi(*value);
    } else if (auto value2 = arg_value(arg, "--seed-base")) {
      options.seed_base = std::stoull(*value2);
    } else if (auto value3 = arg_value(arg, "--plan")) {
      options.plans.push_back(*value3);
    } else if (auto value4 = arg_value(arg, "--hosts")) {
      options.hosts = std::stoi(*value4);
    } else if (auto value5 = arg_value(arg, "--apps")) {
      options.apps = std::stoi(*value5);
    } else if (auto value6 = arg_value(arg, "--horizon")) {
      options.horizon = std::stod(*value6);
    } else if (auto value7 = arg_value(arg, "--replay-passing")) {
      options.replay_passing = std::stoi(*value7);
    } else if (auto value8 = arg_value(arg, "--out")) {
      options.out_path = *value8;
    } else if (auto value9 = arg_value(arg, "--bundle-dir")) {
      options.bundle_dir = *value9;
    } else if (auto value10 = arg_value(arg, "--trace-dir")) {
      options.trace_dir = *value10;
    } else if (auto value11 = arg_value(arg, "--replay-bundle")) {
      return replay_bundle_main(*value11);
    } else if (ars::bench::consume_obs_flag(arg)) {
      // --trace-out= / --metrics-out= recorded in bench::obs_export()
    } else {
      usage_error("unknown argument: " + arg);
    }
  }
  if (options.seeds <= 0) {
    usage_error("--seeds must be positive");
  }
  if (options.plans.empty()) {
    options.plans = FaultPlan::builtin_names();
    options.plans.push_back("none");
  }

  std::vector<PlanResult> results;
  int total_failures = 0;
  int total_mismatches = 0;
  int total_scan_mismatches = 0;
  for (const std::string& spec : options.plans) {
    const FaultPlan plan = load_plan(spec);
    std::cout << "plan \"" << plan.name() << "\": " << options.seeds
              << " seeds from " << options.seed_base << "\n";
    PlanResult result = sweep_plan(options, plan);
    std::cout << "  " << (options.seeds - result.failures) << "/"
              << options.seeds << " clean, " << result.replay_mismatches
              << " replay mismatches";
    if (options.verify_scan_equivalence) {
      std::cout << ", " << result.scan_mismatches << " scan mismatches";
    }
    std::cout << "\n";
    total_failures += result.failures;
    total_mismatches += result.replay_mismatches;
    total_scan_mismatches += result.scan_mismatches;
    results.push_back(std::move(result));
  }

  if (!options.out_path.empty()) {
    ars::obs::JsonObject report;
    report["seeds"] = ars::obs::JsonValue{static_cast<double>(options.seeds)};
    report["seed_base"] =
        ars::obs::JsonValue{static_cast<double>(options.seed_base)};
    report["hosts"] = ars::obs::JsonValue{static_cast<double>(options.hosts)};
    report["apps"] = ars::obs::JsonValue{static_cast<double>(options.apps)};
    report["horizon"] = ars::obs::JsonValue{options.horizon};
    report["failures"] = ars::obs::JsonValue{static_cast<double>(total_failures)};
    report["replay_mismatches"] =
        ars::obs::JsonValue{static_cast<double>(total_mismatches)};
    report["scan_mismatches"] =
        ars::obs::JsonValue{static_cast<double>(total_scan_mismatches)};
    ars::obs::JsonArray plans;
    for (const PlanResult& result : results) {
      plans.push_back(to_json(result));
    }
    report["plans"] = ars::obs::JsonValue{std::move(plans)};
    std::ofstream out(options.out_path);
    if (!out) {
      std::cerr << "chaos_campaign: cannot write " << options.out_path << "\n";
      return 2;
    }
    out << ars::obs::JsonValue{std::move(report)}.dump() << "\n";
  }

  if (total_failures > 0 || total_mismatches > 0 || total_scan_mismatches > 0) {
    std::cout << "CAMPAIGN FAIL: " << total_failures << " violations, "
              << total_mismatches << " replay mismatches, "
              << total_scan_mismatches << " scan mismatches\n";
    return 1;
  }
  std::cout << "CAMPAIGN OK\n";
  return 0;
}
