// ckpt_campaign: failure-waste sweep for the shared checkpoint store
// (DESIGN.md §17).
//
// Sweeps crash rate (host MTBF) x checkpoint strategy (periodic |
// cooperative) x job count over a seed range.  Every run is strict on the
// chaos invariants (no torn checkpoint restored, no lost process, ...) and
// a sample of seeds (always every failing one) is re-run to prove
// byte-identical replay.  Waste — checkpoint overhead, lost work, restart
// cost — is aggregated per configuration cell so the two strategies can be
// compared under identical failure pressure.
//
// Usage:
//   ckpt_campaign [--seeds=N] [--seed-base=N] [--mtbf=M1,M2,...]
//                 [--apps=A1,A2,...] [--hosts=N] [--horizon=T]
//                 [--iterations=N] [--state-mb=MB] [--aggregate-mbps=MBPS]
//                 [--replay-passing=N] [--require-coop-win]
//                 [--out=report.json]
//
// The interference knob is --aggregate-mbps: the shared store bandwidth all
// concurrent writes split fluid-flow style.  Once enough jobs checkpoint
// into a narrow store, uncoordinated (periodic) writes stretch each other
// out; the cooperative I/O scheduler serializes them and the per-cell waste
// table shows the difference.  --require-coop-win turns that comparison
// into the exit status: every swept cell must show cooperative total waste
// strictly below periodic's (CI runs one saturating cell with this flag;
// without it the comparison is informational).

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ars/chaos/faultplan.hpp"
#include "ars/chaos/scenario.hpp"
#include "ars/obs/json.hpp"
#include "ars/support/log.hpp"

#include "../bench/common.hpp"  // uniform --trace-out/--metrics-out handling

namespace {

using ars::chaos::FaultPlan;
using ars::chaos::ScenarioOptions;
using ars::chaos::ScenarioReport;

struct CampaignOptions {
  int seeds = 20;
  std::uint64_t seed_base = 1;
  std::vector<double> mtbfs = {120.0, 300.0};
  std::vector<int> apps = {3};
  int hosts = 4;
  double horizon = 1000.0;
  int iterations = 60;
  double state_mb = 60.0;       // 3 s snapshots, minutes of drain time
  double aggregate_mbps = 12.0;  // saturated the moment 2 jobs overlap
  // Crash-arrival window + reboot delay; overridden by --plan=FILE (a
  // scripts/gen_cluster_plan.py plan with host_mtbf fields).
  double crash_from = 40.0;
  double crash_until = 400.0;
  double reboot_after = 30.0;
  int replay_passing = 2;
  bool require_coop_win = false;
  std::string out_path;
};

struct SeedResult {
  std::uint64_t seed = 0;
  bool ok = false;
  std::string violations;
  std::uint64_t trace_hash = 0;
  std::uint64_t events_executed = 0;
  int rate_crashes = 0;
  std::size_t ckpt_commits = 0;
  std::size_t ckpt_aborts = 0;
  std::size_t ckpt_deferred = 0;
  std::size_t ckpt_preempted = 0;
  std::size_t torn_restores = 0;
  double waste_overhead_s = 0.0;
  double waste_lost_work_s = 0.0;
  double waste_restart_s = 0.0;
  bool replayed = false;
  bool replay_identical = true;
};

/// One cell of the sweep: (mtbf, job count, strategy) over all seeds.
struct CellResult {
  double mtbf = 0.0;
  int apps = 0;
  std::string strategy;
  std::vector<SeedResult> seeds;
  int failures = 0;
  int replay_mismatches = 0;
  double total_waste_s = 0.0;  // cluster waste summed over all seeds
  double overhead_s = 0.0;
  double lost_work_s = 0.0;
  double restart_s = 0.0;
};

std::optional<std::string> arg_value(const std::string& arg,
                                     const std::string& flag) {
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return arg.substr(prefix.size());
  }
  return std::nullopt;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "ckpt_campaign: " << message << "\n"
            << "usage: ckpt_campaign [--seeds=N] [--seed-base=N]\n"
            << "         [--mtbf=M1,M2,...] [--plan=cluster-plan.json]\n"
            << "         [--apps=A1,A2,...]\n"
            << "         [--hosts=N] [--horizon=T] [--iterations=N]\n"
            << "         [--state-mb=MB] [--aggregate-mbps=MBPS]\n"
            << "         [--replay-passing=N] [--require-coop-win]\n"
            << "         [--out=report.json]\n";
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > start) {
      items.push_back(text.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return items;
}

/// The ckpt-storm shape with the crash rate swept: every worker host draws
/// exponential arrivals at 1/mtbf over the crash window (default
/// [40, 400]), so a longer --horizon buys pure drain time — the last
/// relaunch always gets a quiet stretch to redo its lost work and finish.
FaultPlan make_plan(const CampaignOptions& options, double mtbf) {
  FaultPlan plan{"ckpt-sweep"};
  plan.host_crash_rate(options.crash_from,
                       std::min(options.horizon - 300.0, options.crash_until),
                       mtbf, "*", options.reboot_after)
      .message_loss(60.0, 300.0, 0.05);
  return plan;
}

/// Pull the per-host crash-rate fields out of a cluster plan written by
/// scripts/gen_cluster_plan.py --host-mtbf: its host_mtbf becomes the sole
/// swept failure rate and the window/reboot knobs replace the defaults.
void apply_plan_file(const std::string& path, CampaignOptions& options) {
  std::ifstream in(path);
  if (!in) {
    usage_error("cannot read plan file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto document = ars::obs::json_parse(text.str());
  if (!document.has_value()) {
    usage_error(path + ": " + document.error().message);
  }
  const ars::obs::JsonValue* mtbf = document->find("host_mtbf");
  if (mtbf == nullptr || !mtbf->is_number() || mtbf->as_number() <= 0.0) {
    usage_error(path + ": no usable host_mtbf field (generate the plan "
                       "with gen_cluster_plan.py --host-mtbf)");
  }
  options.mtbfs = {mtbf->as_number()};
  const auto number = [&](const char* key, double fallback) {
    const ars::obs::JsonValue* value = document->find(key);
    return value != nullptr && value->is_number() ? value->as_number()
                                                  : fallback;
  };
  options.crash_from = number("mtbf_from", options.crash_from);
  options.crash_until = number("mtbf_until", options.crash_until);
  options.reboot_after = number("reboot_after", options.reboot_after);
}

ScenarioOptions make_scenario(const CampaignOptions& options, double mtbf,
                              int apps, const std::string& strategy,
                              std::uint64_t seed) {
  ScenarioOptions scenario;
  scenario.hosts = options.hosts;
  scenario.apps = apps;
  scenario.iterations = options.iterations;
  scenario.horizon = options.horizon;
  scenario.seed = seed;
  scenario.plan = make_plan(options, mtbf);
  scenario.ckpt_strategy = strategy;
  scenario.ckpt_mtbf = mtbf;  // Young/Daly sees the true failure rate
  scenario.ckpt_state_mb = options.state_mb;
  scenario.ckpt_aggregate_mbps = options.aggregate_mbps;
  return scenario;
}

CellResult sweep_cell(const CampaignOptions& options, double mtbf, int apps,
                      const std::string& strategy) {
  CellResult cell;
  cell.mtbf = mtbf;
  cell.apps = apps;
  cell.strategy = strategy;
  int passing_replays_left = options.replay_passing;
  for (int i = 0; i < options.seeds; ++i) {
    const std::uint64_t seed =
        options.seed_base + static_cast<std::uint64_t>(i);
    const ScenarioOptions scenario =
        make_scenario(options, mtbf, apps, strategy, seed);
    const ScenarioReport report = ars::chaos::run_scenario(scenario);
    SeedResult result;
    result.seed = seed;
    result.ok = report.ok();
    result.trace_hash = report.trace_hash;
    result.events_executed = report.events_executed;
    result.rate_crashes = report.faults.rate_crashes;
    result.ckpt_commits = report.ckpt_commits;
    result.ckpt_aborts = report.ckpt_aborts;
    result.ckpt_deferred = report.ckpt_deferred;
    result.ckpt_preempted = report.ckpt_preempted;
    result.torn_restores = report.torn_restores;
    result.waste_overhead_s = report.waste_overhead_s;
    result.waste_lost_work_s = report.waste_lost_work_s;
    result.waste_restart_s = report.waste_restart_s;
    cell.overhead_s += report.waste_overhead_s;
    cell.lost_work_s += report.waste_lost_work_s;
    cell.restart_s += report.waste_restart_s;
    cell.total_waste_s += report.waste_total_s();
    if (!report.ok()) {
      ++cell.failures;
      result.violations = report.invariants.summary();
      std::cout << "  seed " << seed << " FAIL\n";
      for (const ars::chaos::Violation& violation :
           report.invariants.violations) {
        std::cout << "    " << violation.invariant << " ["
                  << violation.subject << "]: " << violation.detail << "\n";
      }
    }
    // Replay every failing seed (a reproducer must reproduce) plus the
    // first few passing ones; the rerun must be byte-identical.
    if (!report.ok() || passing_replays_left > 0) {
      if (report.ok()) {
        --passing_replays_left;
      }
      const ScenarioReport again = ars::chaos::run_scenario(scenario);
      result.replayed = true;
      result.replay_identical =
          again.trace_hash == report.trace_hash &&
          again.events_executed == report.events_executed;
      if (!result.replay_identical) {
        ++cell.replay_mismatches;
        std::cout << "  seed " << seed << " REPLAY MISMATCH: trace "
                  << report.trace_hash << " vs " << again.trace_hash << "\n";
      }
    }
    cell.seeds.push_back(std::move(result));
  }
  return cell;
}

ars::obs::JsonValue to_json(const CellResult& cell) {
  ars::obs::JsonObject object;
  object["mtbf"] = ars::obs::JsonValue{cell.mtbf};
  object["apps"] = ars::obs::JsonValue{static_cast<double>(cell.apps)};
  object["strategy"] = ars::obs::JsonValue{cell.strategy};
  object["failures"] =
      ars::obs::JsonValue{static_cast<double>(cell.failures)};
  object["replay_mismatches"] =
      ars::obs::JsonValue{static_cast<double>(cell.replay_mismatches)};
  object["waste_total_s"] = ars::obs::JsonValue{cell.total_waste_s};
  object["waste_overhead_s"] = ars::obs::JsonValue{cell.overhead_s};
  object["waste_lost_work_s"] = ars::obs::JsonValue{cell.lost_work_s};
  object["waste_restart_s"] = ars::obs::JsonValue{cell.restart_s};
  ars::obs::JsonArray seeds;
  for (const SeedResult& seed : cell.seeds) {
    ars::obs::JsonObject seed_object;
    seed_object["seed"] = ars::obs::JsonValue{static_cast<double>(seed.seed)};
    seed_object["ok"] = ars::obs::JsonValue{seed.ok};
    if (!seed.violations.empty()) {
      seed_object["violations"] = ars::obs::JsonValue{seed.violations};
    }
    seed_object["trace_hash"] =
        ars::obs::JsonValue{std::to_string(seed.trace_hash)};
    seed_object["events_executed"] =
        ars::obs::JsonValue{static_cast<double>(seed.events_executed)};
    seed_object["rate_crashes"] =
        ars::obs::JsonValue{static_cast<double>(seed.rate_crashes)};
    seed_object["ckpt_commits"] =
        ars::obs::JsonValue{static_cast<double>(seed.ckpt_commits)};
    seed_object["ckpt_aborts"] =
        ars::obs::JsonValue{static_cast<double>(seed.ckpt_aborts)};
    seed_object["ckpt_deferred"] =
        ars::obs::JsonValue{static_cast<double>(seed.ckpt_deferred)};
    seed_object["ckpt_preempted"] =
        ars::obs::JsonValue{static_cast<double>(seed.ckpt_preempted)};
    seed_object["torn_restores"] =
        ars::obs::JsonValue{static_cast<double>(seed.torn_restores)};
    seed_object["waste_overhead_s"] =
        ars::obs::JsonValue{seed.waste_overhead_s};
    seed_object["waste_lost_work_s"] =
        ars::obs::JsonValue{seed.waste_lost_work_s};
    seed_object["waste_restart_s"] =
        ars::obs::JsonValue{seed.waste_restart_s};
    if (seed.replayed) {
      seed_object["replay_identical"] =
          ars::obs::JsonValue{seed.replay_identical};
    }
    seeds.push_back(ars::obs::JsonValue{std::move(seed_object)});
  }
  object["seeds"] = ars::obs::JsonValue{std::move(seeds)};
  return ars::obs::JsonValue{std::move(object)};
}

}  // namespace

int main(int argc, char** argv) {
  // Hundreds of runs, each of which legitimately crashes hosts and drops
  // messages — the per-event warnings would swamp the waste table.
  ars::support::Logger::global().set_level(ars::support::LogLevel::kOff);
  CampaignOptions options;
  std::string plan_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-coop-win") {
      options.require_coop_win = true;
    } else if (auto plan = arg_value(arg, "--plan")) {
      plan_path = *plan;
    } else if (auto value = arg_value(arg, "--seeds")) {
      options.seeds = std::stoi(*value);
    } else if (auto value2 = arg_value(arg, "--seed-base")) {
      options.seed_base = std::stoull(*value2);
    } else if (auto value3 = arg_value(arg, "--mtbf")) {
      options.mtbfs.clear();
      for (const std::string& item : split_list(*value3)) {
        options.mtbfs.push_back(std::stod(item));
      }
    } else if (auto value4 = arg_value(arg, "--apps")) {
      options.apps.clear();
      for (const std::string& item : split_list(*value4)) {
        options.apps.push_back(std::stoi(item));
      }
    } else if (auto value5 = arg_value(arg, "--hosts")) {
      options.hosts = std::stoi(*value5);
    } else if (auto value6 = arg_value(arg, "--horizon")) {
      options.horizon = std::stod(*value6);
    } else if (auto value7 = arg_value(arg, "--iterations")) {
      options.iterations = std::stoi(*value7);
    } else if (auto value8 = arg_value(arg, "--state-mb")) {
      options.state_mb = std::stod(*value8);
    } else if (auto value9 = arg_value(arg, "--aggregate-mbps")) {
      options.aggregate_mbps = std::stod(*value9);
    } else if (auto value10 = arg_value(arg, "--replay-passing")) {
      options.replay_passing = std::stoi(*value10);
    } else if (auto value11 = arg_value(arg, "--out")) {
      options.out_path = *value11;
    } else if (ars::bench::consume_obs_flag(arg)) {
      // --trace-out= / --metrics-out= accepted for flag uniformity
    } else {
      usage_error("unknown argument: " + arg);
    }
  }
  if (!plan_path.empty()) {
    apply_plan_file(plan_path, options);
  }
  if (options.seeds <= 0) {
    usage_error("--seeds must be positive");
  }
  if (options.mtbfs.empty() || options.apps.empty()) {
    usage_error("--mtbf and --apps need at least one value");
  }
  if (options.horizon <= 340.0) {
    usage_error("--horizon must exceed 340 (the crash window needs room)");
  }

  const std::vector<std::string> strategies = {"periodic", "cooperative"};
  std::vector<CellResult> cells;
  int total_failures = 0;
  int total_mismatches = 0;
  int coop_losses = 0;
  for (const double mtbf : options.mtbfs) {
    for (const int apps : options.apps) {
      const CellResult* periodic_cell = nullptr;
      for (const std::string& strategy : strategies) {
        std::cout << "mtbf " << mtbf << "s, " << apps << " jobs, "
                  << strategy << ": " << options.seeds << " seeds from "
                  << options.seed_base << "\n";
        CellResult cell = sweep_cell(options, mtbf, apps, strategy);
        std::cout << "  " << (options.seeds - cell.failures) << "/"
                  << options.seeds << " clean, " << cell.replay_mismatches
                  << " replay mismatches, waste " << cell.total_waste_s
                  << " s (overhead " << cell.overhead_s << ", lost "
                  << cell.lost_work_s << ", restart " << cell.restart_s
                  << ")\n";
        total_failures += cell.failures;
        total_mismatches += cell.replay_mismatches;
        cells.push_back(std::move(cell));
        if (strategy == "periodic") {
          periodic_cell = &cells.back();
        } else if (periodic_cell != nullptr) {
          const double saved =
              periodic_cell->total_waste_s - cells.back().total_waste_s;
          const bool win = saved > 0.0;
          std::cout << "  cooperative vs periodic: "
                    << (win ? "saves " : "LOSES ")
                    << (win ? saved : -saved) << " s total waste\n";
          if (!win) {
            ++coop_losses;
          }
        }
      }
    }
  }

  if (!options.out_path.empty()) {
    ars::obs::JsonObject report;
    report["seeds"] =
        ars::obs::JsonValue{static_cast<double>(options.seeds)};
    report["seed_base"] =
        ars::obs::JsonValue{static_cast<double>(options.seed_base)};
    report["hosts"] =
        ars::obs::JsonValue{static_cast<double>(options.hosts)};
    report["horizon"] = ars::obs::JsonValue{options.horizon};
    report["state_mb"] = ars::obs::JsonValue{options.state_mb};
    report["aggregate_mbps"] = ars::obs::JsonValue{options.aggregate_mbps};
    report["failures"] =
        ars::obs::JsonValue{static_cast<double>(total_failures)};
    report["replay_mismatches"] =
        ars::obs::JsonValue{static_cast<double>(total_mismatches)};
    report["coop_losses"] =
        ars::obs::JsonValue{static_cast<double>(coop_losses)};
    ars::obs::JsonArray cell_array;
    for (const CellResult& cell : cells) {
      cell_array.push_back(to_json(cell));
    }
    report["cells"] = ars::obs::JsonValue{std::move(cell_array)};
    std::ofstream out(options.out_path);
    if (!out) {
      std::cerr << "ckpt_campaign: cannot write " << options.out_path
                << "\n";
      return 2;
    }
    out << ars::obs::JsonValue{std::move(report)}.dump() << "\n";
  }

  const bool coop_gate_failed = options.require_coop_win && coop_losses > 0;
  if (total_failures > 0 || total_mismatches > 0 || coop_gate_failed) {
    std::cout << "CAMPAIGN FAIL: " << total_failures << " violations, "
              << total_mismatches << " replay mismatches";
    if (options.require_coop_win) {
      std::cout << ", " << coop_losses << " cells where cooperative lost";
    }
    std::cout << "\n";
    return 1;
  }
  std::cout << "CAMPAIGN OK\n";
  return 0;
}
